#!/usr/bin/env python3
"""Repo lint: concurrency hygiene and include hygiene.

Run from the repository root (CI does):  python3 tools/lint.py

Rules
-----
raw-sync      std::mutex / std::condition_variable / std::lock_guard /
              std::unique_lock / std::scoped_lock / std::shared_mutex /
              std::shared_lock are banned everywhere except the annotated
              wrappers themselves (src/util/sync.hpp) and the lock-order
              detector (src/util/lockorder.cpp), whose own lock must not
              instrument itself. Use dac::Mutex / dac::CondVar /
              dac::ScopedLock / dac::UniqueLock / dac::SharedMutex instead —
              they feed Clang's thread-safety analysis and the runtime
              lock-order detector.

detach        std::thread::detach() is banned: every thread must be joined
              so shutdown is deterministic and sanitizers see the full
              lifetime.

sleep-poll    sleep_for in tests is a polling smell; new tests must
              synchronize on condition variables, queues, or the fabric's
              ordering guarantees. Existing offenders are grandfathered in
              SLEEP_ALLOWLIST; the list may only shrink.

nondet-seed   std::random_device (and time-seeded RNGs) are banned: every
              random stream must take an explicit seed so fault traces,
              jitter schedules, and benchmark runs replay bit-identically
              (the src/faults determinism contract).

include       headers must start with #pragma once; no "../" relative
              includes (use the src/-rooted path).

Exit status is nonzero when any violation is found; diagnostics are
file:line: rule: message, one per line.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

SCAN_DIRS = ["src", "tests", "bench", "examples"]
EXTS = {".hpp", ".cpp", ".h", ".cc"}

# The only files allowed to touch the raw primitives: the annotated wrappers
# and the detector (its internal lock must not report to itself).
RAW_SYNC_ALLOWLIST = {
    "src/util/sync.hpp",
    "src/util/lockorder.cpp",
}

# Grandfathered sleep_for users in tests, from before the no-polling rule.
# Shrink-only: never add to this list; fix the test instead.
SLEEP_ALLOWLIST = {
    "tests/core/jobcontext_test.cpp",
    "tests/core/malleable_test.cpp",
    "tests/core/soak_test.cpp",
    "tests/maui/aging_test.cpp",
    "tests/minimpi/dpm_extra_test.cpp",
    "tests/minimpi/dpm_test.cpp",
    "tests/minimpi/nonblocking_test.cpp",
    "tests/minimpi/p2p_test.cpp",
    "tests/svc/svc_test.cpp",
    "tests/torque/fault_test.cpp",
    "tests/torque/mom_test.cpp",
    "tests/torque/server_test.cpp",
    "tests/vnet/fabric_test.cpp",
    "tests/vnet/stress_test.cpp",
}

RAW_SYNC_RE = re.compile(
    r"std::(mutex|condition_variable(_any)?|lock_guard|unique_lock|"
    r"scoped_lock|shared_mutex|shared_timed_mutex|shared_lock)\b"
)
DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")
NONDET_SEED_RE = re.compile(
    r"std::random_device|mt19937(_64)?\s*\(\s*\)"
)
SLEEP_RE = re.compile(r"\bsleep_for\s*\(")
REL_INCLUDE_RE = re.compile(r'#\s*include\s*"\.\./')

# std::cv_status and std::condition_variable appear in sync.hpp signatures;
# mentions inside comments or strings are fine everywhere.
COMMENT_RE = re.compile(r"//.*$")


def strip_comment(line: str) -> str:
    return COMMENT_RE.sub("", line)


def lint_file(rel: str, text: str):
    violations = []
    lines = text.splitlines()
    is_header = rel.endswith((".hpp", ".h"))
    is_test = rel.startswith("tests/")

    if is_header:
        meaningful = [
            ln
            for ln in lines
            if ln.strip() and not ln.lstrip().startswith("//")
        ]
        if not meaningful or meaningful[0].strip() != "#pragma once":
            violations.append(
                (1, "include", "header must start with #pragma once")
            )

    for i, raw_line in enumerate(lines, start=1):
        line = strip_comment(raw_line)
        if not line.strip():
            continue

        if rel not in RAW_SYNC_ALLOWLIST:
            m = RAW_SYNC_RE.search(line)
            if m:
                violations.append(
                    (
                        i,
                        "raw-sync",
                        f"{m.group(0)} is banned; use the dac:: wrappers "
                        "from util/sync.hpp",
                    )
                )

        if DETACH_RE.search(line) and "thread" in line:
            violations.append(
                (i, "detach", "detached threads are banned; join them")
            )

        if NONDET_SEED_RE.search(line):
            violations.append(
                (
                    i,
                    "nondet-seed",
                    "nondeterministic RNG seeding is banned; pass an "
                    "explicit seed (fault traces must replay identically)",
                )
            )

        if is_test and rel not in SLEEP_ALLOWLIST and SLEEP_RE.search(line):
            violations.append(
                (
                    i,
                    "sleep-poll",
                    "sleep_for polling in tests is banned; synchronize on "
                    "an event (see docs/ANALYSIS.md)",
                )
            )

        if REL_INCLUDE_RE.search(line):
            violations.append(
                (i, "include", 'no "../" includes; use the src/-rooted path')
            )

    return violations


def main() -> int:
    failed = False
    checked = 0
    for d in SCAN_DIRS:
        base = ROOT / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in EXTS or not path.is_file():
                continue
            rel = path.relative_to(ROOT).as_posix()
            checked += 1
            text = path.read_text(encoding="utf-8")
            for line_no, rule, msg in lint_file(rel, text):
                print(f"{rel}:{line_no}: {rule}: {msg}")
                failed = True
    # Allowlist entries whose files no longer sleep (or no longer exist)
    # must be removed — the allowlist only shrinks.
    for rel in sorted(SLEEP_ALLOWLIST):
        path = ROOT / rel
        if not path.is_file() or not SLEEP_RE.search(
            path.read_text(encoding="utf-8")
        ):
            print(f"{rel}:1: sleep-poll: stale allowlist entry; remove it "
                  "from tools/lint.py")
            failed = True
    if failed:
        return 1
    print(f"lint: {checked} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
