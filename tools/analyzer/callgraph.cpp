// Call-graph fixpoints over the tree-wide index (index.cpp) and the three
// whole-program rules built on them:
//
//   blocking-reachable-under-lock  may-block propagated bottom-up; any call
//                                  site under a live dac guard that reaches
//                                  a blocker transitively is flagged.
//   lock-order-static              acquired-while-holding edges (guard
//                                  nesting + calls into lock-acquiring
//                                  functions) form a graph that must be
//                                  acyclic; every edge feeds the DOT dump.
//   clock-visibility               native waits reachable from actor roots.
//
// Call resolution is by base name and precision-first: a call site with
// several same-name definitions only contributes when *all* of them agree
// (may-block) or is skipped (lock-sets, actor reachability) — the analyzer
// would rather miss a path than cry wolf on `stop()`.
#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyzer/wholeprogram.hpp"

namespace dac::analyzer::internal {

namespace {

// True when every definition of `name` may block; `witness` gets the first
// one (for the diagnostic chain). False for unknown names — an unresolved
// call contributes nothing rather than guessing.
bool callee_blocks(const Index& index, const std::string& name,
                   const Function** witness) {
  const auto it = index.by_name.find(name);
  if (it == index.by_name.end() || it->second.empty()) return false;
  for (const Function* f : it->second) {
    if (!f->may_block) return false;
  }
  *witness = it->second.front();
  return true;
}

// Unique-definition resolution for the lock-set and actor passes.
Function* resolve_unique(const Index& index, const std::string& name) {
  const auto it = index.by_name.find(name);
  if (it == index.by_name.end() || it->second.size() != 1) return nullptr;
  return it->second.front();
}

bool in_simtime(const Function& fn) {
  const std::string& path = fn.file->src->path;
  return path.rfind("src/simtime/", 0) == 0 ||
         path.find("/src/simtime/") != std::string::npos;
}

std::string capped_chain(const std::string& chain) {
  constexpr std::size_t kMax = 160;
  if (chain.size() <= kMax) return chain;
  return chain.substr(0, kMax) + "...";
}

}  // namespace

void propagate(Index& index) {
  // may_block: bottom-up fixpoint. Direct blockers seed it; a call site
  // propagates when every same-name definition blocks.
  for (auto& fn : index.functions) {
    if (!fn.direct_blocks.empty()) {
      fn.may_block = true;
      fn.block_witness = fn.direct_blocks.front().what;
    }
    fn.acquires_trans.insert(fn.acquires.begin(), fn.acquires.end());
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& fn : index.functions) {
      if (!fn.may_block) {
        for (const auto& call : fn.calls) {
          const Function* w = nullptr;
          if (callee_blocks(index, call.callee, &w) && w != &fn) {
            fn.may_block = true;
            fn.block_witness =
                capped_chain(w->qualified + " -> " + w->block_witness);
            changed = true;
            break;
          }
        }
      }
      // Transitive acquired-mutex sets, through uniquely resolved calls.
      for (const auto& call : fn.calls) {
        const Function* callee = resolve_unique(index, call.callee);
        if (callee == nullptr || callee == &fn) continue;
        for (const auto& id : callee->acquires_trans) {
          if (fn.acquires_trans.insert(id).second) changed = true;
        }
      }
    }
  }
  // Actor-context reachability: BFS from spawn roots through uniquely
  // resolved calls. The root itself is actor-adjacent (its entry lambdas
  // attribute to it).
  std::deque<Function*> queue;
  for (auto& fn : index.functions) {
    if (fn.is_actor_root) {
      fn.actor_reachable = true;
      fn.actor_witness = fn.qualified;
      queue.push_back(&fn);
    }
  }
  while (!queue.empty()) {
    Function* fn = queue.front();
    queue.pop_front();
    for (const auto& call : fn->calls) {
      Function* callee = resolve_unique(index, call.callee);
      if (callee == nullptr || callee->actor_reachable) continue;
      callee->actor_reachable = true;
      callee->actor_witness = fn->actor_witness;
      queue.push_back(callee);
    }
  }
}

namespace {

struct EdgeWitness {
  CleanFile* file = nullptr;
  int line = 0;
};

bool witness_less(const EdgeWitness& a, const EdgeWitness& b) {
  if (a.file->src->path != b.file->src->path) {
    return a.file->src->path < b.file->src->path;
  }
  return a.line < b.line;
}

// Tarjan strongly-connected components over the mutex-id graph (iterative).
std::map<std::string, int> scc_of(
    const std::set<std::string>& nodes,
    const std::map<std::string, std::set<std::string>>& adj) {
  std::map<std::string, int> scc;
  std::map<std::string, int> idx;
  std::map<std::string, int> low;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  int next_index = 0;
  int next_scc = 0;
  struct Frame {
    std::string node;
    std::set<std::string>::const_iterator it;
    std::set<std::string>::const_iterator end;
  };
  static const std::set<std::string> kEmpty;
  for (const auto& start : nodes) {
    if (idx.count(start) != 0) continue;
    std::vector<Frame> frames;
    const auto& edges0 = adj.count(start) != 0 ? adj.at(start) : kEmpty;
    idx[start] = low[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    frames.push_back({start, edges0.begin(), edges0.end()});
    while (!frames.empty()) {
      Frame& top = frames.back();
      if (top.it != top.end) {
        const std::string next = *top.it++;
        if (idx.count(next) == 0) {
          const auto& edges = adj.count(next) != 0 ? adj.at(next) : kEmpty;
          idx[next] = low[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back({next, edges.begin(), edges.end()});
        } else if (on_stack[next]) {
          low[top.node] = std::min(low[top.node], idx[next]);
        }
      } else {
        const std::string done = top.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] = std::min(low[frames.back().node],
                                             low[done]);
        }
        if (low[done] == idx[done]) {
          while (true) {
            const std::string member = stack.back();
            stack.pop_back();
            on_stack[member] = false;
            scc[member] = next_scc;
            if (member == done) break;
          }
          ++next_scc;
        }
      }
    }
  }
  return scc;
}

}  // namespace

void check_wholeprogram(Index& index, Sink& sink,
                        std::vector<LockEdge>* edges) {
  // ---- blocking-reachable-under-lock ---------------------------------------
  for (auto& fn : index.functions) {
    for (const auto& call : fn.calls) {
      if (call.held_count == 0) continue;
      const Function* w = nullptr;
      if (!callee_blocks(index, call.callee, &w)) continue;
      if (w == &fn) continue;  // self-recursion; scope-local rule owns it
      sink.report(*fn.file, call.line, Rule::kBlockingReachableUnderLock,
                  "'" + call.callee + "' may block (" +
                      capped_chain(w->qualified + " -> " + w->block_witness) +
                      ") but is called from " + fn.qualified +
                      " while guard '" + call.held_guard +
                      "' (declared on line " +
                      std::to_string(call.held_guard_line) + ") is live");
    }
  }

  // ---- lock-order-static ---------------------------------------------------
  // Edge set: direct guard nesting plus call sites whose (uniquely resolved)
  // callee transitively acquires while the caller holds. Self-edges are
  // skipped: identity is the declared name string, which cannot tell two
  // instances of the same class apart (e.g. per-node mutexes).
  std::map<std::pair<std::string, std::string>, EdgeWitness> edge_map;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      CleanFile* file, int line) {
    if (from == to) return;
    const EdgeWitness witness{file, line};
    auto [it, inserted] = edge_map.emplace(std::make_pair(from, to), witness);
    if (!inserted && witness_less(witness, it->second)) {
      it->second = witness;
    }
  };
  for (auto& fn : index.functions) {
    for (const auto& e : fn.intra_edges) {
      add_edge(e.from, e.to, fn.file, e.line);
    }
    for (const auto& call : fn.calls) {
      if (call.held.empty()) continue;
      const Function* callee = resolve_unique(index, call.callee);
      if (callee == nullptr || callee == &fn) continue;
      for (const auto& held : call.held) {
        for (const auto& acquired : callee->acquires_trans) {
          add_edge(held, acquired, fn.file, call.line);
        }
      }
    }
  }
  std::set<std::string> nodes;
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [key, witness] : edge_map) {
    nodes.insert(key.first);
    nodes.insert(key.second);
    adj[key.first].insert(key.second);
  }
  const std::map<std::string, int> scc = scc_of(nodes, adj);
  std::map<int, int> scc_sizes;
  for (const auto& [node, id] : scc) ++scc_sizes[id];
  // One diagnostic per cyclic component, anchored at its smallest witness.
  std::map<int, std::pair<EdgeWitness, std::set<std::string>>> cycles;
  for (const auto& [key, witness] : edge_map) {
    const int from_scc = scc.at(key.first);
    const bool cyclic =
        from_scc == scc.at(key.second) && scc_sizes.at(from_scc) > 1;
    if (edges != nullptr) {
      edges->push_back({key.first, key.second, witness.file->src->path,
                        witness.line, cyclic});
    }
    if (!cyclic) continue;
    auto [it, inserted] = cycles.emplace(
        from_scc, std::make_pair(witness, std::set<std::string>{}));
    if (!inserted && witness_less(witness, it->second.first)) {
      it->second.first = witness;
    }
    it->second.second.insert(key.first);
    it->second.second.insert(key.second);
  }
  for (const auto& [id, cycle] : cycles) {
    std::string members;
    for (const auto& m : cycle.second) {
      if (!members.empty()) members += ", ";
      members += m;
    }
    sink.report(*cycle.first.file, cycle.first.line, Rule::kLockOrderStatic,
                "static lock-order cycle among mutexes {" + members +
                    "}; some interleaving of these acquisition chains "
                    "deadlocks (see --lock-dot for the full graph)");
  }

  // ---- clock-visibility ----------------------------------------------------
  for (auto& fn : index.functions) {
    if (!fn.actor_reachable || in_simtime(fn)) continue;
    for (const auto& wait : fn.native_waits) {
      if (wait.is_join && fn.has_external_wait_scope) continue;
      sink.report(*fn.file, wait.line, Rule::kClockVisibility,
                  wait.what + " in " + fn.qualified +
                      " is invisible to the discrete-event clock but "
                      "reachable from actor context (spawned via " +
                      fn.actor_witness +
                      "); use the dac:: equivalent or wrap the join in "
                      "simtime::ExternalWaitScope");
    }
  }
}

}  // namespace dac::analyzer::internal

namespace dac::analyzer {

namespace {

std::string dot_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string format_lock_dot(const std::vector<LockEdge>& edges) {
  std::string out;
  out += "digraph lock_order {\n";
  out += "  rankdir=LR;\n";
  out += "  node [shape=box, fontname=\"monospace\"];\n";
  for (const auto& e : edges) {
    out += "  \"" + dot_escape(e.from) + "\" -> \"" + dot_escape(e.to) +
           "\" [label=\"" + dot_escape(e.file) + ":" +
           std::to_string(e.line) + "\"";
    if (e.in_cycle) out += ", color=red, penwidth=2.0";
    out += "];\n";
  }
  out += "}\n";
  return out;
}

std::string format_json(const Report& report) {
  std::string out;
  out += "{\n";
  out += "  \"files_scanned\": " + std::to_string(report.files_scanned) +
         ",\n";
  out += std::string("  \"clean\": ") + (report.clean() ? "true" : "false") +
         ",\n";
  out += "  \"diagnostics\": [";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": \"" + json_escape(d.file) +
           "\", \"line\": " + std::to_string(d.line) + ", \"rule\": \"" +
           rule_id(d.rule) + "\", \"message\": \"" + json_escape(d.message) +
           "\"}";
  }
  out += report.diagnostics.empty() ? "],\n" : "\n  ],\n";
  out += "  \"suppressions\": {";
  bool first = true;
  for (const auto& [id, count] : report.suppressions) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(id) + "\": " + std::to_string(count);
  }
  out += report.suppressions.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace dac::analyzer
