// Interprocedural layer: a tree-wide symbol index (function and method
// definitions with body extents, resolved-by-name call sites, lock-guard
// acquisitions and mutex identities as dataflow facts) and the call-graph
// fixpoint that propagates "may block", "may acquire", and actor-context
// reachability across it. The three whole-program rules —
// blocking-reachable-under-lock, lock-order-static, clock-visibility — are
// emitted from these facts. Internal to the analyzer; nothing here is part
// of the public surface in analyzer.hpp.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer/internal.hpp"

namespace dac::analyzer::internal {

// A blocking operation performed directly in a function body (the same kinds
// the scope-local blocking-under-lock rule matches).
struct DirectBlock {
  int line = 0;
  std::string what;        // "Caller::call", "BlockingQueue pop", ...
  bool is_cond_wait = false;  // waits release their own lock; see the rules
};

// A native synchronization primitive the discrete-event clock cannot see.
struct NativeWait {
  int line = 0;
  std::string what;  // "std::latch", "native join of std::thread 'thread_'"
  bool is_join = false;  // joins are exempt under an ExternalWaitScope
};

// A call site, resolved later by callee base name against the index. Held
// guard state is snapshotted at the call so the interprocedural rules can
// reason about locks without re-walking the body.
struct CallSite {
  int line = 0;
  std::string callee;               // base name after any . -> :: qualifier
  std::vector<std::string> held;    // resolved mutex ids live at the call
  int held_count = 0;               // live guards incl. unresolved ones
  std::string held_guard;           // innermost live guard variable name
  int held_guard_line = 0;          // its declaration line
};

// Mutex B acquired while mutex A's guard is live in the same body.
struct IntraLockEdge {
  int line = 0;
  std::string from;  // held mutex id
  std::string to;    // newly acquired mutex id
};

// One function or method definition.
struct Function {
  std::string name;       // base name ("assign")
  std::string cls;        // owning class ("" for free functions)
  std::string qualified;  // "NodeDb::assign" when the class is known
  CleanFile* file = nullptr;
  CleanFile* body_file = nullptr;  // file holding the body (== file today)
  int line = 0;             // 1-based definition line
  int body_begin_line = 0;  // 1-based line of the opening '{'
  int body_begin_col = 0;   // 0-based column of the opening '{'
  int body_end_line = 0;    // 1-based line of the closing '}'
  std::vector<DirectBlock> direct_blocks;
  std::vector<CallSite> calls;
  std::vector<NativeWait> native_waits;
  std::vector<IntraLockEdge> intra_edges;
  std::vector<std::string> acquires;  // mutex ids acquired directly
  bool has_external_wait_scope = false;
  // Spawns simulation actors (simtime::ActorThread, vnet Process spawn,
  // AdoptScope): the body — including any entry lambdas, which attribute to
  // the enclosing function — runs in or next to actor context.
  bool is_actor_root = false;

  // ---- computed by propagate() --------------------------------------------
  bool may_block = false;
  std::string block_witness;  // "recv_grant -> Caller::call" style chain
  std::set<std::string> acquires_trans;
  bool actor_reachable = false;
  std::string actor_witness;  // the root function this was reached from
};

// The tree-wide index: every recognized definition, a name -> definitions
// map for call resolution, and the mutex identity table. Mutex identity is
// the declared dac name string (`Mutex mu_{"fabric.pending"}` => id
// "fabric.pending") resolved through the owning class when known; guards
// over mutexes whose identity cannot be resolved still count as held locks
// but contribute no lock-order edges.
struct Index {
  std::vector<Function> functions;  // stable storage; pointers stay valid
  std::map<std::string, std::vector<Function*>> by_name;
  // (class name, field name) -> declared mutex id; class "" = namespace
  // scope. field name -> ids is the fallback for unqualified resolution.
  std::map<std::pair<std::string, std::string>, std::string> mutex_ids;
  std::map<std::string, std::set<std::string>> mutex_ids_by_field;
};

// Builds the index over the scanned set (both passes of parsing: mutex
// declarations first, then function bodies with guard resolution).
[[nodiscard]] Index build_index(std::vector<CleanFile>& files);

// Bottom-up fixpoint over the call graph: may_block / block_witness,
// transitive acquired-mutex sets, and actor-context reachability.
void propagate(Index& index);

// The three interprocedural rules. Appends every static acquired-while-held
// edge (with cycle marks) to `edges` for the DOT artifact.
void check_wholeprogram(Index& index, Sink& sink,
                        std::vector<LockEdge>* edges);

}  // namespace dac::analyzer::internal
