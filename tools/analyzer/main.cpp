#include "analyzer/analyzer.hpp"

int main(int argc, char** argv) {
  return dac::analyzer::run_cli(argc, argv);
}
