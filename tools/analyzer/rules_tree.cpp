// Cross-file rule passes and the analyze() entry point. These rules need
// facts gathered from the whole scanned set: the wire MsgType enum, every
// ServiceLoop handler registration, the trace span-name table, and the
// must-check declaration surface that feeds the unchecked-status rule.
#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <string>

#include "analyzer/internal.hpp"
#include "analyzer/wholeprogram.hpp"

namespace dac::analyzer {

namespace {

struct RuleEntry {
  Rule rule;
  const char* id;
};

constexpr std::array<RuleEntry, 18> kRules = {{
    {Rule::kBlockingUnderLock, "blocking-under-lock"},
    {Rule::kBlockingReachableUnderLock, "blocking-reachable-under-lock"},
    {Rule::kLockOrderStatic, "lock-order-static"},
    {Rule::kClockVisibility, "clock-visibility"},
    {Rule::kHandlerCoverage, "handler-coverage"},
    {Rule::kSpanName, "span-name"},
    {Rule::kNodiscard, "nodiscard"},
    {Rule::kUncheckedStatus, "unchecked-status"},
    {Rule::kDeadlineLiteral, "deadline-literal"},
    {Rule::kCheckSideEffect, "check-side-effect"},
    {Rule::kRawSync, "raw-sync"},
    {Rule::kRawClock, "raw-clock"},
    {Rule::kGlobalNodeDbLock, "global-nodedb-lock"},
    {Rule::kDetach, "detach"},
    {Rule::kSleepPoll, "sleep-poll"},
    {Rule::kNondetSeed, "nondet-seed"},
    {Rule::kInclude, "include"},
    {Rule::kStaleNolint, "stale-nolint"},
}};

}  // namespace

const char* rule_id(Rule rule) {
  for (const auto& e : kRules) {
    if (e.rule == rule) return e.id;
  }
  return "unknown";
}

bool rule_from_id(const std::string& id, Rule* out) {
  for (const auto& e : kRules) {
    if (id == e.id) {
      *out = e.rule;
      return true;
    }
  }
  return false;
}

const std::vector<Rule>& all_rules() {
  static const std::vector<Rule> rules = [] {
    std::vector<Rule> v;
    for (const auto& e : kRules) v.push_back(e.rule);
    return v;
  }();
  return rules;
}

int Report::total_suppressions() const {
  int total = 0;
  for (const auto& [id, count] : suppressions) total += count;
  return total;
}

}  // namespace dac::analyzer

namespace dac::analyzer::internal {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool in_src(const std::string& path) {
  return path.rfind("src/", 0) == 0 || path.find("/src/") != std::string::npos;
}

CleanFile* find_file(std::vector<CleanFile>& files,
                     const std::string& suffix) {
  for (auto& f : files) {
    if (ends_with(f.src->path, suffix)) return &f;
  }
  return nullptr;
}

// ---- wire enum -------------------------------------------------------------

struct WireEnum {
  CleanFile* file = nullptr;
  std::map<std::string, int> enumerators;  // name -> 1-based line
  std::vector<std::string> order;
};

WireEnum parse_wire_enum(std::vector<CleanFile>& files,
                         const Config& config) {
  WireEnum out;
  out.file = find_file(files, config.wire_enum_file);
  if (out.file == nullptr) return out;
  bool inside = false;
  for (std::size_t li = 0; li < out.file->clean.size(); ++li) {
    const std::string t = trim(out.file->clean[li]);
    if (!inside) {
      if (t.rfind("enum class MsgType", 0) == 0) inside = true;
      continue;
    }
    if (t.rfind("};", 0) == 0) break;
    // `kName = 0x...,` / `kName,` — an identifier followed by ',' or '='.
    std::size_t j = 0;
    while (j < t.size() && is_ident_char(t[j])) ++j;
    if (j == 0 || t[0] != 'k') continue;
    const std::string name = t.substr(0, j);
    while (j < t.size() && t[j] == ' ') ++j;
    if (j == t.size() || t[j] == ',' || t[j] == '=') {
      if (out.enumerators.emplace(name, static_cast<int>(li) + 1).second) {
        out.order.push_back(name);
      }
    }
  }
  return out;
}

// ---- handler registrations -------------------------------------------------

struct Registration {
  CleanFile* file = nullptr;
  int line = 0;
  std::string enumerator;  // the kFoo after MsgType::
};

// Pulls `MsgType::kFoo` occurrences out of `text` starting at `from`.
void collect_msgtypes(const std::string& text, std::size_t from,
                      std::vector<std::string>* out) {
  static const std::string kPrefix = "MsgType::";
  for (auto pos = text.find(kPrefix, from); pos != std::string::npos;
       pos = text.find(kPrefix, pos + 1)) {
    auto j = pos + kPrefix.size();
    std::size_t start = j;
    while (j < text.size() && is_ident_char(text[j])) ++j;
    if (j > start) out->push_back(text.substr(start, j - start));
  }
}

// Extracts the helper name from a lambda-intro line like
// `const auto mut = [&](MsgType type, ...`. Empty when not that shape.
std::string lambda_helper_name(const std::string& line) {
  const auto intro = line.find("](MsgType");
  if (intro == std::string::npos) return {};
  const auto eq = line.rfind('=', intro);
  if (eq == std::string::npos) return {};
  std::size_t end = eq;
  while (end > 0 && line[end - 1] == ' ') --end;
  std::size_t start = end;
  while (start > 0 && is_ident_char(line[start - 1])) --start;
  return line.substr(start, end - start);
}

// All ServiceLoop registrations in one src/ .cpp file. Recognizes three
// shapes: direct `.on(MsgType::kX, ...)`, registration helpers
// (`const auto mut = [&](MsgType type, ...) { loop.on(type, ...); }` then
// `mut(MsgType::kX, ...)`), and brace-list loops
// (`for (const auto type : {MsgType::kA, kB...})` with `.on(type` inside).
void collect_registrations(CleanFile& file, std::vector<Registration>* out) {
  std::set<std::string> helpers;
  for (std::size_t li = 0; li < file.clean.size(); ++li) {
    const std::string& line = file.clean[li];
    for (auto pos = line.find(".on("); pos != std::string::npos;
         pos = line.find(".on(", pos + 1)) {
      const auto args = balanced_args(file, li, pos + 3);
      const auto comma = args.find(',');
      const std::string first =
          trim(comma == std::string::npos ? args : args.substr(0, comma));
      if (first.rfind("MsgType::", 0) == 0) {
        std::vector<std::string> types;
        collect_msgtypes(first, 0, &types);
        for (auto& t : types) {
          out->push_back({&file, static_cast<int>(li) + 1, std::move(t)});
        }
        continue;
      }
      // First argument is a plain identifier: either a registration
      // helper's lambda parameter or a brace-list loop variable. Look back
      // a few lines for which.
      bool is_plain_ident = !first.empty();
      for (char c : first) {
        if (!is_ident_char(c)) is_plain_ident = false;
      }
      if (!is_plain_ident) continue;  // e.g. arm.cpp registers msg(kArmX)
      for (std::size_t back = 1; back <= 8 && back <= li; ++back) {
        const std::string& prev = file.clean[li - back];
        const std::string helper = lambda_helper_name(prev);
        if (!helper.empty()) {
          helpers.insert(helper);
          break;
        }
        const auto fpos = prev.find("for (");
        if (fpos != std::string::npos &&
            find_word(prev, first, fpos) != std::string::npos) {
          // Gather the brace list between the for-line and the .on line.
          std::vector<std::string> types;
          for (std::size_t gl = li - back; gl <= li; ++gl) {
            collect_msgtypes(file.clean[gl], 0, &types);
          }
          for (auto& t : types) {
            out->push_back({&file, static_cast<int>(li - back) + 1,
                            std::move(t)});
          }
          break;
        }
      }
    }
  }
  for (const auto& helper : helpers) {
    for (std::size_t li = 0; li < file.clean.size(); ++li) {
      const std::string& line = file.clean[li];
      for (auto pos = find_word(line, helper); pos != std::string::npos;
           pos = find_word(line, helper, pos + 1)) {
        const auto open = pos + helper.size();
        if (pos > 0 && (line[pos - 1] == '.' || line[pos - 1] == ':')) {
          continue;  // member/qualified use, not the local helper
        }
        if (open >= line.size() || line[open] != '(') continue;
        if (line.compare(open, 10, "(MsgType::") != 0) continue;
        std::vector<std::string> types;
        collect_msgtypes(line, open, &types);
        if (!types.empty()) {
          out->push_back(
              {&file, static_cast<int>(li) + 1, std::move(types[0])});
        }
      }
    }
  }
}

void check_handlers(std::vector<CleanFile>& files, const WireEnum& wire,
                    Sink& sink) {
  if (wire.file == nullptr) return;
  std::vector<Registration> regs;
  for (auto& f : files) {
    if (!f.src->is_test && in_src(f.src->path) &&
        ends_with(f.src->path, ".cpp")) {
      collect_registrations(f, &regs);
    }
  }
  std::map<std::string, const Registration*> seen;
  for (const auto& reg : regs) {
    if (wire.enumerators.find(reg.enumerator) == wire.enumerators.end()) {
      sink.report(*reg.file, reg.line, Rule::kHandlerCoverage,
                  "handler registered for MsgType::" + reg.enumerator +
                      ", which is not a wire MsgType enumerator");
      continue;
    }
    const auto [it, inserted] = seen.emplace(reg.enumerator, &reg);
    if (!inserted) {
      sink.report(*reg.file, reg.line, Rule::kHandlerCoverage,
                  "duplicate handler for MsgType::" + reg.enumerator +
                      " (first registered at " + it->second->file->src->path +
                      ":" + std::to_string(it->second->line) + ")");
    }
  }
  for (const auto& name : wire.order) {
    if (seen.count(name) != 0) continue;
    // kReply is the reply envelope (consumed by Caller, never dispatched);
    // kEv* are synthetic metrics-only codes that are never sent.
    if (name == "kReply" || name.rfind("kEv", 0) == 0) continue;
    sink.report(*wire.file, wire.enumerators.at(name), Rule::kHandlerCoverage,
                "MsgType::" + name +
                    " has no registered ServiceLoop handler in src/");
  }
}

// ---- span names ------------------------------------------------------------

void check_spans(std::vector<CleanFile>& files, const WireEnum& wire,
                 const Config& config, Sink& sink) {
  if (wire.file == nullptr) return;
  CleanFile* span_file = find_file(files, config.span_table_file);
  if (span_file == nullptr) return;
  int fn_line = 1;
  for (std::size_t li = 0; li < span_file->clean.size(); ++li) {
    if (span_file->clean[li].find("msg_type_name") != std::string::npos) {
      fn_line = static_cast<int>(li) + 1;
      break;
    }
  }
  std::map<std::string, int> named;      // enumerator -> case line
  std::map<std::string, int> span_names; // span string -> case line
  static const std::string kCase = "case as_u32(MsgType::";
  for (std::size_t li = 0; li < span_file->clean.size(); ++li) {
    const std::string& line = span_file->clean[li];
    const auto pos = line.find(kCase);
    if (pos == std::string::npos) continue;
    const int lineno = static_cast<int>(li) + 1;
    auto j = pos + kCase.size();
    std::size_t start = j;
    while (j < line.size() && is_ident_char(line[j])) ++j;
    const std::string enumerator = line.substr(start, j - start);
    if (wire.enumerators.find(enumerator) == wire.enumerators.end()) {
      sink.report(*span_file, lineno, Rule::kSpanName,
                  "span table names MsgType::" + enumerator +
                      ", which is not a wire MsgType enumerator");
      continue;
    }
    if (!named.emplace(enumerator, lineno).second) {
      continue;  // duplicate case would not compile; leave it to the build
    }
    // The span string lives in the raw line (strings are blanked in clean).
    const std::string& raw = span_file->raw[li];
    const auto q1 = raw.find('"');
    const auto q2 = q1 == std::string::npos ? std::string::npos
                                            : raw.find('"', q1 + 1);
    if (q2 == std::string::npos) {
      sink.report(*span_file, lineno, Rule::kSpanName,
                  "span-table case for MsgType::" + enumerator +
                      " does not return a string literal on the same line");
      continue;
    }
    const std::string span = raw.substr(q1 + 1, q2 - q1 - 1);
    const auto [it, inserted] = span_names.emplace(span, lineno);
    if (!inserted) {
      sink.report(*span_file, lineno, Rule::kSpanName,
                  "span name \"" + span + "\" already used at " +
                      span_file->src->path + ":" +
                      std::to_string(it->second) +
                      "; span names must be unique");
    }
  }
  for (const auto& name : wire.order) {
    if (named.count(name) == 0) {
      sink.report(*span_file, fn_line, Rule::kSpanName,
                  "MsgType::" + name +
                      " has no span name in msg_type_name (traces would "
                      "show the hex fallback)");
    }
  }
}

// ---- [[nodiscard]] declarations and the must-check name set ----------------

constexpr std::array<const char*, 5> kMustCheckTypes = {
    "Status", "DynGetReply", "GetResult", "JobId", "ReplyCode"};

constexpr std::array<const char*, 8> kDeclSpecifiers = {
    "inline", "static", "virtual", "constexpr", "explicit",
    "friend", "extern", "const"};

bool is_keyword_not_type(const std::string& word) {
  static const std::array<const char*, 8> kKeywords = {
      "return", "co_return", "throw", "new", "delete",
      "case",   "goto",      "else"};
  for (const char* k : kKeywords) {
    if (word == k) return true;
  }
  return false;
}

// Decides whether the word at [pos, pos+len) in `line` is the return type of
// a function declaration: everything before it must be namespace qualifiers
// on the type itself, declaration specifiers, attributes, or whitespace, and
// after it an identifier followed by '(' must open a parameter list.
// On success stores the declared name.
bool match_decl(const std::string& line, std::size_t pos, std::size_t len,
                std::string* name) {
  // Walk the prefix backwards over `ident::` qualifiers.
  std::size_t p = pos;
  while (p >= 2 && line[p - 1] == ':' && line[p - 2] == ':') {
    p -= 2;
    while (p > 0 && is_ident_char(line[p - 1])) --p;
  }
  // The rest of the prefix: whitespace, specifiers, attributes.
  std::size_t i = 0;
  while (i < p) {
    const char c = line[i];
    if (c == ' ') {
      ++i;
    } else if (c == '[' && i + 1 < p && line[i + 1] == '[') {
      const auto close = line.find("]]", i);
      if (close == std::string::npos || close >= p) return false;
      i = close + 2;
    } else if (is_ident_char(c)) {
      std::size_t j = i;
      while (j < p && is_ident_char(line[j])) ++j;
      const std::string word = line.substr(i, j - i);
      bool ok = false;
      for (const char* spec : kDeclSpecifiers) {
        if (word == spec) ok = true;
      }
      if (!ok) return false;
      i = j;
    } else {
      return false;
    }
  }
  // After the type: an identifier then '('.
  auto j = pos + len;
  while (j < line.size() && line[j] == ' ') ++j;
  std::size_t start = j;
  while (j < line.size() && is_ident_char(line[j])) ++j;
  if (j == start) return false;
  *name = line.substr(start, j - start);
  while (j < line.size() && line[j] == ' ') ++j;
  return j < line.size() && line[j] == '(';
}

MustCheck check_nodiscard(std::vector<CleanFile>& files, Sink& sink) {
  std::set<std::string> candidates;  // names with a must-check declaration
  std::set<std::string> ambiguous;   // names also declared with other types
  for (auto& file : files) {
    if (file.src->is_test || !in_src(file.src->path) ||
        !(ends_with(file.src->path, ".hpp") ||
          ends_with(file.src->path, ".h"))) {
      continue;
    }
    for (std::size_t li = 0; li < file.clean.size(); ++li) {
      const std::string& line = file.clean[li];
      for (const char* type : kMustCheckTypes) {
        const std::string type_word = type;
        for (auto pos = find_word(line, type_word); pos != std::string::npos;
             pos = find_word(line, type_word, pos + 1)) {
          std::string name;
          if (!match_decl(line, pos, type_word.size(), &name)) continue;
          candidates.insert(name);
          if (line.find("[[nodiscard]]") == std::string::npos) {
            sink.report(file, static_cast<int>(li) + 1, Rule::kNodiscard,
                        "declaration of '" + name + "' returns " + type_word +
                            " but is not [[nodiscard]]");
          }
        }
      }
    }
  }
  // Second pass: a candidate name also declared with a non-must-check return
  // type anywhere in src/ headers is ambiguous for name-based call-site
  // matching (e.g. driver::mem_free returns Status, frontend::mem_free is
  // void) and is dropped from the unchecked-status set.
  for (auto& file : files) {
    if (file.src->is_test || !in_src(file.src->path) ||
        !(ends_with(file.src->path, ".hpp") ||
          ends_with(file.src->path, ".h"))) {
      continue;
    }
    for (const auto& line : file.clean) {
      for (const auto& cand : candidates) {
        for (auto pos = find_word(line, cand); pos != std::string::npos;
             pos = find_word(line, cand, pos + 1)) {
          // Type word immediately before the candidate name.
          std::size_t end = pos;
          while (end > 0 && line[end - 1] == ' ') --end;
          std::size_t start = end;
          while (start > 0 && is_ident_char(line[start - 1])) --start;
          if (start == end) continue;
          const std::string type_word = line.substr(start, end - start);
          if (is_keyword_not_type(type_word)) continue;
          bool mustcheck = false;
          for (const char* t : kMustCheckTypes) {
            if (type_word == t) mustcheck = true;
          }
          if (mustcheck) continue;
          std::string name;
          if (match_decl(line, start, end - start, &name) && name == cand) {
            ambiguous.insert(cand);
          }
        }
      }
    }
  }
  MustCheck out;
  for (const auto& cand : candidates) {
    if (ambiguous.count(cand) == 0) out.names.push_back(cand);
  }
  return out;
}

}  // namespace

MustCheck check_tree(std::vector<CleanFile>& files, const Config& config,
                     Sink& sink) {
  const WireEnum wire = parse_wire_enum(files, config);
  check_handlers(files, wire, sink);
  check_spans(files, wire, config, sink);
  return check_nodiscard(files, sink);
}

}  // namespace dac::analyzer::internal

namespace dac::analyzer {

Report analyze(const std::vector<SourceFile>& files, const Config& config) {
  std::vector<internal::CleanFile> cleaned;
  cleaned.reserve(files.size());
  for (const auto& f : files) {
    cleaned.push_back(internal::clean_source(f));
  }
  internal::Sink sink(cleaned);
  const internal::MustCheck mustcheck =
      internal::check_tree(cleaned, config, sink);
  for (auto& f : cleaned) {
    internal::check_file(f, mustcheck, sink);
  }
  internal::Index index = internal::build_index(cleaned);
  internal::propagate(index);
  std::vector<LockEdge> lock_edges;
  internal::check_wholeprogram(index, sink, &lock_edges);
  Report report = sink.finish();
  report.lock_edges = std::move(lock_edges);
  return report;
}

}  // namespace dac::analyzer
