// Per-file rule passes: the hygiene rules folded in from tools/lint.py
// (include, raw-sync, detach, sleep-poll, nondet-seed), the scope-tracked
// blocking-under-lock analysis, deadline discipline at Caller::call sites,
// DAC_CHECK side-effect hygiene, and unchecked must-check call statements.
#include <array>
#include <cctype>
#include <string>

#include "analyzer/internal.hpp"

namespace dac::analyzer::internal {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header(const CleanFile& file) {
  return ends_with(file.src->path, ".hpp") || ends_with(file.src->path, ".h");
}

// src/simtime/ is the one place allowed to touch raw time and raw sync: the
// clock sits below util in the dependency order (dac::Mutex/CondVar are built
// on top of it) and is precisely where real time gets virtualized.
bool is_simtime(const CleanFile& file) {
  return file.src->path.find("src/simtime/") != std::string::npos;
}

// src/torque/node_db.{hpp,cpp} own the whole-DB guard (NodeDb::lock_all /
// ExclusiveAll): its legitimate uses are the cross-shard snapshot paths
// inside the database itself.
bool is_node_db(const CleanFile& file) {
  return ends_with(file.src->path, "src/torque/node_db.hpp") ||
         ends_with(file.src->path, "src/torque/node_db.cpp");
}

// ---- include hygiene ------------------------------------------------------

void check_includes(CleanFile& file, Sink& sink) {
  if (is_header(file)) {
    bool found_first = false;
    for (std::size_t li = 0; li < file.clean.size() && !found_first; ++li) {
      const std::string t = trim(file.clean[li]);
      if (t.empty()) continue;
      found_first = true;
      if (t != "#pragma once") {
        sink.report(file, static_cast<int>(li) + 1, Rule::kInclude,
                    "header must start with #pragma once");
      }
    }
  }
  for (std::size_t li = 0; li < file.raw.size(); ++li) {
    const std::string t = trim(file.raw[li]);
    if (t.rfind("#include", 0) == 0 &&
        t.find("\"../") != std::string::npos) {
      sink.report(file, static_cast<int>(li) + 1, Rule::kInclude,
                  "no \"../\" includes; use the src/-rooted path");
    }
  }
}

// ---- simple per-line rules ------------------------------------------------

void check_simple(CleanFile& file, Sink& sink) {
  static const std::array<const char*, 9> kRawSync = {
      "std::mutex",        "std::condition_variable",
      "std::condition_variable_any", "std::lock_guard",
      "std::unique_lock",  "std::scoped_lock",
      "std::shared_mutex", "std::shared_timed_mutex",
      "std::shared_lock"};
  for (std::size_t li = 0; li < file.clean.size(); ++li) {
    const std::string& line = file.clean[li];
    const int lineno = static_cast<int>(li) + 1;
    if (line.find("std::") != std::string::npos) {
      if (!is_simtime(file)) {
        for (const char* banned : kRawSync) {
          if (find_word(line, banned) != std::string::npos) {
            sink.report(file, lineno, Rule::kRawSync,
                        std::string(banned) +
                            " is banned; use the dac:: wrappers from "
                            "util/sync.hpp");
            break;
          }
        }
      }
      if (find_word(line, "std::random_device") != std::string::npos) {
        sink.report(file, lineno, Rule::kNondetSeed,
                    "nondeterministic RNG seeding is banned; pass an "
                    "explicit seed (fault traces must replay identically)");
      }
    }
    for (const char* rng : {"mt19937", "mt19937_64"}) {
      const auto pos = find_word(line, rng);
      if (pos == std::string::npos) continue;
      auto j = pos + std::string(rng).size();
      while (j < line.size() && line[j] == ' ') ++j;
      if (j < line.size() && line[j] == '(') {
        ++j;
        while (j < line.size() && line[j] == ' ') ++j;
        if (j < line.size() && line[j] == ')') {
          sink.report(file, lineno, Rule::kNondetSeed,
                      "default-constructed " + std::string(rng) +
                          " is time/implementation seeded; pass an explicit "
                          "seed");
        }
      }
    }
    const auto detach = line.find(".detach");
    if (detach != std::string::npos) {
      auto j = detach + 7;
      while (j < line.size() && line[j] == ' ') ++j;
      if (j < line.size() && line[j] == '(') {
        sink.report(file, lineno, Rule::kDetach,
                    "detached threads are banned; join them");
      }
    }
    if (file.src->is_test &&
        find_word(line, "sleep_for") != std::string::npos) {
      sink.report(file, lineno, Rule::kSleepPoll,
                  "sleep_for polling in tests is banned; synchronize on an "
                  "event (see docs/ANALYSIS.md)");
    }
    // raw-clock: ambient time outside src/simtime/ breaks DiscreteEvent
    // mode — the virtual clock cannot see it. steady_clock::now() applies
    // everywhere; the this_thread sleeps only outside tests, where
    // sleep-poll already governs (one diagnostic per offense, not two).
    if (!is_simtime(file)) {
      if (line.find("steady_clock::now") != std::string::npos) {
        sink.report(file, lineno, Rule::kRawClock,
                    "steady_clock::now() is banned outside src/simtime/; "
                    "read simtime::now() so DiscreteEvent mode works");
      } else if (!file.src->is_test &&
                 (line.find("this_thread::sleep_for") != std::string::npos ||
                  line.find("this_thread::sleep_until") !=
                      std::string::npos)) {
        sink.report(file, lineno, Rule::kRawClock,
                    "this_thread sleeps are banned outside src/simtime/; "
                    "use simtime::sleep_for so DiscreteEvent mode works");
      }
    }
    // global-nodedb-lock: the whole-DB guard serializes every shard; taking
    // it outside node_db reintroduces the single-lock bottleneck the shards
    // exist to remove. New code goes through the per-shard API.
    if (!is_node_db(file)) {
      const auto la = find_word(line, "lock_all");
      const bool calls_lock_all =
          la != std::string::npos && la + 8 < line.size() &&
          line[la + 8] == '(';
      if (calls_lock_all ||
          find_word(line, "ExclusiveAll") != std::string::npos) {
        sink.report(file, lineno, Rule::kGlobalNodeDbLock,
                    "the whole-DB guard (NodeDb::lock_all / ExclusiveAll) is "
                    "reserved for node_db's own cross-shard snapshots; use "
                    "the per-shard API");
      }
    }
  }
}

// ---- blocking-under-lock --------------------------------------------------

// A live RAII guard over a dac::Mutex / dac::SharedMutex.
struct Guard {
  std::string name;
  int depth = 0;     // brace depth at the declaration
  int line = 0;      // declaration line (for the diagnostic message)
  bool active = true;  // false between name.unlock() and name.lock()
};

enum class EventKind {
  kGuardDecl,
  kUnlock,
  kRelock,
  kBlockingCall,  // Caller::call / rpc::call
  kBlockingPop,   // BlockingQueue::pop / pop_for
  kBlockingRecv,  // Endpoint::recv / recv_for
  kSleep,         // sleep_for / sleep_until
  kCondWait,      // condvar wait; flagged only with a second guard held
};

struct Event {
  std::size_t col = 0;
  EventKind kind{};
  std::string name;  // guard name for decl/unlock/relock; op for blocking
};

// Matches `Type name(` / `Type name{` guard declarations at `pos`.
bool match_guard_decl(const std::string& line, std::size_t pos,
                      std::string* name) {
  static const std::array<const char*, 4> kGuards = {
      "ScopedLock", "UniqueLock", "WriterLock", "ReaderLock"};
  for (const char* g : kGuards) {
    if (!word_at(line, pos, g)) continue;
    auto j = pos + std::string(g).size();
    while (j < line.size() && line[j] == ' ') ++j;
    std::size_t start = j;
    while (j < line.size() && is_ident_char(line[j])) ++j;
    if (j == start) return false;  // reference parameter or constructor
    std::string ident = line.substr(start, j - start);
    while (j < line.size() && line[j] == ' ') ++j;
    if (j < line.size() && (line[j] == '(' || line[j] == '{')) {
      *name = std::move(ident);
      return true;
    }
    return false;
  }
  return false;
}

// `.name` / `->name` member-call matcher: returns true when `line[pos]`
// begins `.name(` or `->name(`, allowing an underscore-extended suffix from
// `suffixes` (e.g. pop -> pop_for) but rejecting other identifier
// continuations (pop_front).
bool match_member_call(const std::string& line, std::size_t pos,
                       const std::string& base,
                       const std::vector<std::string>& suffixes) {
  std::size_t j = pos;
  if (line[j] == '.') {
    j += 1;
  } else if (line.compare(j, 2, "->") == 0) {
    j += 2;
  } else {
    return false;
  }
  if (j == pos) return false;
  if (line.compare(j, base.size(), base) != 0) return false;
  j += base.size();
  if (j < line.size() && is_ident_char(line[j])) {
    bool ok = false;
    for (const auto& s : suffixes) {
      if (line.compare(j, s.size(), s) == 0 &&
          (j + s.size() >= line.size() ||
           !is_ident_char(line[j + s.size()]))) {
        j += s.size();
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  while (j < line.size() && line[j] == ' ') ++j;
  return j < line.size() && line[j] == '(';
}

// Extracts the identifier immediately before the '.' at `dot`.
std::string ident_before(const std::string& line, std::size_t dot) {
  std::size_t start = dot;
  while (start > 0 && is_ident_char(line[start - 1])) --start;
  return line.substr(start, dot - start);
}

void collect_events(const std::string& line, std::vector<Event>* events) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    std::string name;
    if (match_guard_decl(line, i, &name)) {
      events->push_back({i, EventKind::kGuardDecl, std::move(name)});
      continue;
    }
    if (line[i] == '.' || line[i] == '-') {
      if (match_member_call(line, i, "unlock", {})) {
        events->push_back({i, EventKind::kUnlock, ident_before(line, i)});
      } else if (match_member_call(line, i, "lock", {})) {
        events->push_back({i, EventKind::kRelock, ident_before(line, i)});
      } else if (match_member_call(line, i, "call", {})) {
        events->push_back({i, EventKind::kBlockingCall, "Caller::call"});
      } else if (match_member_call(line, i, "pop", {"_for"})) {
        events->push_back({i, EventKind::kBlockingPop, "BlockingQueue pop"});
      } else if (match_member_call(line, i, "recv", {"_for"})) {
        events->push_back({i, EventKind::kBlockingRecv, "endpoint recv"});
      } else if (match_member_call(line, i, "wait", {"_for", "_until"})) {
        events->push_back({i, EventKind::kCondWait, "condition wait"});
      }
      continue;
    }
    if (word_at(line, i, "rpc") && line.compare(i, 10, "rpc::call(") == 0) {
      events->push_back({i, EventKind::kBlockingCall, "rpc::call"});
      continue;
    }
    if (word_at(line, i, "sleep_for") || word_at(line, i, "sleep_until")) {
      events->push_back({i, EventKind::kSleep, "sleep"});
    }
  }
}

void check_blocking_under_lock(CleanFile& file, Sink& sink) {
  int depth = 0;
  std::vector<Guard> guards;
  std::vector<Event> events;
  for (std::size_t li = 0; li < file.clean.size(); ++li) {
    const std::string& line = file.clean[li];
    const int lineno = static_cast<int>(li) + 1;
    events.clear();
    collect_events(line, &events);
    std::size_t next_event = 0;
    for (std::size_t i = 0; i <= line.size(); ++i) {
      while (next_event < events.size() && events[next_event].col == i) {
        const Event& ev = events[next_event++];
        switch (ev.kind) {
          case EventKind::kGuardDecl:
            guards.push_back({ev.name, depth, lineno, true});
            break;
          case EventKind::kUnlock:
          case EventKind::kRelock:
            for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
              if (it->name == ev.name) {
                it->active = ev.kind == EventKind::kRelock;
                break;
              }
            }
            break;
          case EventKind::kBlockingCall:
          case EventKind::kBlockingPop:
          case EventKind::kBlockingRecv:
          case EventKind::kSleep:
          case EventKind::kCondWait: {
            int live = 0;
            const Guard* innermost = nullptr;
            for (const auto& g : guards) {
              if (g.active) {
                ++live;
                innermost = &g;
              }
            }
            // One guard across a condvar wait is the idiom (the wait
            // releases it); a second held guard deadlocks under contention.
            const int limit = ev.kind == EventKind::kCondWait ? 2 : 1;
            if (live >= limit) {
              sink.report(
                  file, lineno, Rule::kBlockingUnderLock,
                  ev.name + " while lock guard '" + innermost->name +
                      "' (line " + std::to_string(innermost->line) +
                      ") is live; release the lock before blocking");
            }
            break;
          }
        }
      }
      if (i == line.size()) break;
      if (line[i] == '{') {
        ++depth;
      } else if (line[i] == '}') {
        --depth;
        while (!guards.empty() && guards.back().depth > depth) {
          guards.pop_back();
        }
      }
    }
  }
}

// ---- deadline discipline at call sites ------------------------------------

bool contains_chrono_literal(const std::string& text) {
  static const std::array<const char*, 5> kCtors = {
      "nanoseconds", "microseconds", "milliseconds", "seconds", "minutes"};
  for (const char* ctor : kCtors) {
    for (auto pos = find_word(text, ctor); pos != std::string::npos;
         pos = find_word(text, ctor, pos + 1)) {
      auto j = pos + std::string(ctor).size();
      while (j < text.size() && text[j] == ' ') ++j;
      if (j < text.size() && text[j] == '(') {
        ++j;
        while (j < text.size() && text[j] == ' ') ++j;
        if (j < text.size() &&
            std::isdigit(static_cast<unsigned char>(text[j])) != 0) {
          return true;
        }
      }
    }
  }
  // Chrono UDLs: 500ms, 2s, 10us, ... (digits directly followed by a unit).
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(text[i])) == 0) continue;
    auto j = i;
    while (j < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[j])) != 0)) {
      ++j;
    }
    if (i > 0 && is_ident_char(text[i - 1])) {
      i = j;
      continue;
    }
    for (const char* unit : {"ms", "us", "ns", "min", "s", "h"}) {
      const std::string u = unit;
      if (text.compare(j, u.size(), u) == 0 &&
          (j + u.size() >= text.size() ||
           !is_ident_char(text[j + u.size()]))) {
        return true;
      }
    }
    i = j;
  }
  return false;
}

// Splits `args` at top-level commas (parens/braces/brackets nested).
std::vector<std::string> split_args(const std::string& args) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : args) {
    if (c == '(' || c == '{' || c == '[') ++depth;
    if (c == ')' || c == '}' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!trim(cur).empty()) out.push_back(trim(cur));
  return out;
}

void check_deadlines(CleanFile& file, Sink& sink) {
  if (file.src->is_test) return;  // tests probe deadline edges deliberately
  for (std::size_t li = 0; li < file.clean.size(); ++li) {
    const std::string& line = file.clean[li];
    // Named-constant definitions are where the literal belongs.
    if (find_word(line, "constexpr") != std::string::npos) continue;
    for (std::size_t i = 0; i < line.size(); ++i) {
      bool is_rpc = false;
      if (match_member_call(line, i, "call", {})) {
        // fall through
      } else if (word_at(line, i, "rpc") &&
                 line.compare(i, 10, "rpc::call(") == 0) {
        is_rpc = true;
      } else {
        continue;
      }
      const auto open = line.find('(', i);
      if (open == std::string::npos) break;
      const auto args =
          split_args(balanced_args(file, li, open));
      const int lineno = static_cast<int>(li) + 1;
      // Caller::call(type, body[, opts]); rpc::call(ctx, to, type, body
      // [, timeout]).
      const std::size_t required = is_rpc ? 5 : 3;
      if (args.size() < required) {
        sink.report(file, lineno, Rule::kDeadlineLiteral,
                    std::string(is_rpc ? "rpc::call" : "Caller::call") +
                        " relies on the implicit default deadline; pass a "
                        "named policy constant (src/svc/deadlines.hpp)");
      } else {
        for (std::size_t a = required - 1; a < args.size(); ++a) {
          if (contains_chrono_literal(args[a])) {
            sink.report(file, lineno, Rule::kDeadlineLiteral,
                        "bare literal deadline at a call site; name the "
                        "policy constant (src/svc/deadlines.hpp)");
            break;
          }
        }
      }
      i = open;
    }
  }
}

// ---- DAC_CHECK hygiene ----------------------------------------------------

bool condition_has_side_effect(const std::string& cond, std::string* what) {
  if (cond.find("++") != std::string::npos) {
    *what = "'++'";
    return true;
  }
  if (cond.find("--") != std::string::npos) {
    *what = "'--'";
    return true;
  }
  for (std::size_t i = 0; i < cond.size(); ++i) {
    if (cond[i] != '=') continue;
    const char prev = i > 0 ? cond[i - 1] : ' ';
    const char next = i + 1 < cond.size() ? cond[i + 1] : ' ';
    if (next == '=') {  // ==
      ++i;
      continue;
    }
    if (prev == '=' || prev == '!' || prev == '<' || prev == '>') continue;
    if (prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
        prev == '%' || prev == '&' || prev == '|' || prev == '^') {
      *what = "compound assignment";
      return true;
    }
    *what = "assignment";
    return true;
  }
  static const std::array<const char*, 15> kMutators = {
      "push_back", "push_front", "pop_back", "pop_front", "pop",
      "push",      "erase",      "insert",   "emplace",   "emplace_back",
      "clear",     "reset",      "release",  "take",      "swap"};
  for (const char* m : kMutators) {
    const std::string pat = std::string(".") + m;
    for (auto pos = cond.find(pat); pos != std::string::npos;
         pos = cond.find(pat, pos + 1)) {
      auto j = pos + pat.size();
      if (j < cond.size() && is_ident_char(cond[j])) continue;
      while (j < cond.size() && cond[j] == ' ') ++j;
      if (j < cond.size() && cond[j] == '(') {
        *what = std::string("mutating call '.") + m + "()'";
        return true;
      }
    }
  }
  return false;
}

void check_check_macros(CleanFile& file, Sink& sink) {
  for (std::size_t li = 0; li < file.clean.size(); ++li) {
    const std::string& line = file.clean[li];
    if (trim(line).rfind('#', 0) == 0) continue;  // the macro definitions
    for (const char* macro : {"DAC_CHECK", "DAC_DCHECK"}) {
      const auto pos = find_word(line, macro);
      if (pos == std::string::npos) continue;
      const auto open = line.find('(', pos);
      if (open == std::string::npos) continue;
      const auto args = split_args(balanced_args(file, li, open));
      if (args.empty()) continue;
      std::string what;
      if (condition_has_side_effect(args[0], &what)) {
        sink.report(file, static_cast<int>(li) + 1, Rule::kCheckSideEffect,
                    std::string(macro) + " condition contains " + what +
                        "; DCHECK conditions are not evaluated in release "
                        "builds, so checks must be side-effect-free");
      }
    }
  }
}

// ---- unchecked must-check calls -------------------------------------------

// True when `t` (a trimmed statement start) is `recv.recv->ns::name(` for
// the given function name: an expression statement whose result vanishes.
bool is_bare_call(const std::string& t, const std::string& name) {
  const auto pos = find_word(t, name);
  if (pos == std::string::npos) return false;
  for (std::size_t i = 0; i < pos; ++i) {
    const char c = t[i];
    if (!is_ident_char(c) && c != '.' && c != ':' && c != '-' && c != '>') {
      return false;
    }
  }
  auto j = pos + name.size();
  while (j < t.size() && t[j] == ' ') ++j;
  return j < t.size() && t[j] == '(';
}

void check_unchecked_calls(CleanFile& file, const MustCheck& mustcheck,
                           Sink& sink) {
  for (std::size_t li = 0; li < file.clean.size(); ++li) {
    const std::string t = trim(file.clean[li]);
    if (t.empty()) continue;
    // Only statement starts: the previous meaningful line must close a
    // statement or block (multi-line expressions stay un-flagged).
    bool boundary = true;
    for (std::size_t p = li; p-- > 0;) {
      const std::string prev = trim(file.clean[p]);
      if (prev.empty()) continue;
      const char last = prev.back();
      boundary = last == ';' || last == '{' || last == '}' || last == ':';
      break;
    }
    if (!boundary) continue;
    for (const auto& name : mustcheck.names) {
      if (is_bare_call(t, name)) {
        sink.report(file, static_cast<int>(li) + 1, Rule::kUncheckedStatus,
                    "result of must-check call '" + name +
                        "' is silently dropped; check it or cast to (void) "
                        "deliberately");
        break;
      }
    }
  }
}

}  // namespace

void check_file(CleanFile& file, const MustCheck& mustcheck, Sink& sink) {
  check_includes(file, sink);
  check_simple(file, sink);
  check_blocking_under_lock(file, sink);
  check_deadlines(file, sink);
  check_check_macros(file, sink);
  check_unchecked_calls(file, mustcheck, sink);
}

}  // namespace dac::analyzer::internal
