// dacsched-analyzer: a domain-aware static analysis pass for the dacsched
// tree. It tokenizes (comment/string-stripped, brace-tracked) every C++ file
// under src/, tests/, examples/, bench/, and tools/ and enforces invariants
// the svc protocol stack depends on but no compiler checks:
//
//   blocking-under-lock   no Caller::call / rpc::call, BlockingQueue pop,
//                         endpoint recv, or sleep while a dac::Mutex /
//                         SharedMutex guard is live in the same scope; a
//                         condvar wait is flagged when a *second* guard is
//                         held across it.
//   blocking-reachable-under-lock
//                         whole-program companion to blocking-under-lock:
//                         a call site reached while a dac guard is live must
//                         not *transitively* reach a blocking operation
//                         through the call graph.
//   lock-order-static     the tree-wide acquired-while-holding graph (guard
//                         nesting plus calls into lock-acquiring functions,
//                         mutexes identified by their declared dac name
//                         string) must be acyclic; complements the runtime
//                         lock-order detector, which only sees orders that
//                         actually execute. --lock-dot dumps the graph.
//   clock-visibility      native synchronization the discrete-event clock
//                         cannot see (std::latch/barrier/semaphore, raw
//                         std::thread joins without an ExternalWaitScope)
//                         must not be reachable from actor context
//                         (simtime::ActorThread / vnet process spawns);
//                         DACSCHED_CLOCK=virtual would deadlock on it.
//   handler-coverage      every wire MsgType has exactly one registered
//                         ServiceLoop handler across src/, and no handler
//                         registers a type outside the enum.
//   span-name             every MsgType renders to a unique trace span name
//                         in svc::msg_type_name (never the hex fallback).
//   nodiscard             declarations returning a must-check error type
//                         (driver::Status, DynGetReply, GetResult, JobId,
//                         ReplyCode) carry [[nodiscard]].
//   unchecked-status      statement-expression calls that silently drop a
//                         must-check result ((void) is an explicit opt-out).
//   deadline-literal      Caller::call / rpc::call sites outside tests/ name
//                         their deadline (constant or config field) — no
//                         implicit default, no bare chrono literal.
//   check-side-effect     no ++/--/assignment/mutating calls inside
//                         DAC_CHECK / DAC_DCHECK conditions (DCHECK bodies
//                         vanish in release builds).
//   raw-sync, detach, sleep-poll, nondet-seed, include
//                         the hygiene rules folded in from the retired
//                         tools/lint.py.
//   raw-clock             ambient time is banned outside src/simtime/:
//                         steady_clock::now() and this_thread sleeps must go
//                         through dac::simtime so DiscreteEvent mode can
//                         virtualize them (tests' sleep discipline stays
//                         sleep-poll's job).
//   stale-nolint          a NOLINT-DACSCHED comment that suppressed nothing
//                         (or names an unknown rule) is itself an error, so
//                         the suppression set only shrinks.
//
// Suppression is line-anchored: append a NOLINT-DACSCHED comment naming the
// rule id in parentheses (comma-separated for several rules) to the
// offending line — exact syntax in docs/ANALYSIS.md. Every suppression is
// counted per rule; `--baseline` compares the counts against a checked-in
// file and fails on any drift, which makes allowlist growth reviewable.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace dac::analyzer {

enum class Rule {
  kBlockingUnderLock,
  kBlockingReachableUnderLock,
  kLockOrderStatic,
  kClockVisibility,
  kHandlerCoverage,
  kSpanName,
  kNodiscard,
  kUncheckedStatus,
  kDeadlineLiteral,
  kCheckSideEffect,
  kRawSync,
  kRawClock,
  kGlobalNodeDbLock,
  kDetach,
  kSleepPoll,
  kNondetSeed,
  kInclude,
  kStaleNolint,
};

// Stable kebab-case id, used in diagnostics, NOLINT comments, and baselines.
[[nodiscard]] const char* rule_id(Rule rule);
// Parses a rule id; returns false for unknown ids.
[[nodiscard]] bool rule_from_id(const std::string& id, Rule* out);
// All rules, in catalog order.
[[nodiscard]] const std::vector<Rule>& all_rules();

struct Diagnostic {
  std::string file;  // as given in SourceFile::path
  int line = 0;      // 1-based
  Rule rule{};
  std::string message;
};

struct SourceFile {
  std::string path;     // repo-relative (used for reporting and scoping)
  bool is_test = false; // test-scoped rules (sleep-poll) apply; deadline
                        // discipline is relaxed (tests probe timeout edges)
  std::string text;
};

struct Config {
  // Suffix-matched against SourceFile::path. When no scanned file matches,
  // the corresponding cross-file rule is skipped (single-file CLI mode).
  std::string wire_enum_file = "src/torque/protocol.hpp";
  std::string span_table_file = "src/svc/wire.cpp";
};

// One edge of the static acquired-while-holding graph: mutex `to` (by its
// declared dac name string) is acquired — directly or through a call chain —
// while a guard over mutex `from` is live. file/line anchor the acquisition
// or call site that established the edge.
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
  bool in_cycle = false;
};

struct Report {
  std::vector<Diagnostic> diagnostics;     // unsuppressed, sorted
  std::map<std::string, int> suppressions; // rule id -> NOLINTs that fired
  std::vector<LockEdge> lock_edges;        // static lock-order graph, sorted
  int files_scanned = 0;
  [[nodiscard]] bool clean() const { return diagnostics.empty(); }
  [[nodiscard]] int total_suppressions() const;
};

// Renders the lock-order graph as Graphviz DOT (cycle edges highlighted);
// the CI analyzer job archives this as a build artifact (--lock-dot).
[[nodiscard]] std::string format_lock_dot(const std::vector<LockEdge>& edges);

// Renders a report as a stable JSON document (schema pinned by
// tests/analyzer): {"files_scanned", "clean", "diagnostics": [{"file",
// "line", "rule", "message"}], "suppressions": {rule-id: count}}.
[[nodiscard]] std::string format_json(const Report& report);

// Runs every rule over `files`. Cross-file facts (the MsgType enum, handler
// registrations, span names, must-check declarations) are collected from the
// same file set, so fixtures can exercise the cross-file rules in isolation.
[[nodiscard]] Report analyze(const std::vector<SourceFile>& files,
                             const Config& config = {});

// ---- baseline (suppression-count drift detection) -------------------------

[[nodiscard]] std::map<std::string, int> parse_baseline(
    const std::string& text);
[[nodiscard]] std::string format_baseline(
    const std::map<std::string, int>& counts);
// Empty result means the counts match the baseline exactly. Any growth is a
// new suppression (fix the code instead); any shrink means the baseline is
// stale (regenerate with --update-baseline so the win is recorded).
[[nodiscard]] std::vector<std::string> compare_baseline(
    const std::map<std::string, int>& baseline,
    const std::map<std::string, int>& current);

// ---- CLI ------------------------------------------------------------------

// Loads the standard scan set (src/ tests/ examples/ bench/ tools/, skipping
// any path with a /fixtures/ component) rooted at `root`.
[[nodiscard]] std::vector<SourceFile> load_tree(const std::string& root);

// `dacsched-analyzer [--root DIR] [--baseline FILE] [--update-baseline]
//  [--format=text|json] [--lock-dot FILE] [--list-rules] [file...]`.
// Returns the process exit code: 0 clean, 1 diagnostics or baseline drift,
// 2 usage/IO error.
[[nodiscard]] int run_cli(int argc, const char* const* argv);

}  // namespace dac::analyzer
