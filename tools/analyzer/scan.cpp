// Source preparation: strips comments and string/char literals (preserving
// offsets so diagnostics and scope tracking line up with the raw file) and
// parses NOLINT-DACSCHED suppression comments. Also the diagnostic sink.
#include <algorithm>
#include <cctype>

#include "analyzer/internal.hpp"

namespace dac::analyzer::internal {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

// Parses a NOLINT-DACSCHED suppression (rule ids in parentheses, comma-
// separated) out of a raw line. Unknown rule ids become stale-nolint
// diagnostics (a typo must not silently suppress nothing). The tag string is
// assembled from two literals so the analyzer never trips over its own
// sources.
void parse_nolint(const std::string& raw, const std::string& path, int lineno,
                  std::vector<Rule>* rules,
                  std::vector<Diagnostic>* errors) {
  static const std::string kTag = "NOLINT-DACSCHED" "(";
  const auto tag = raw.find(kTag);
  if (tag == std::string::npos) return;
  const auto close = raw.find(')', tag);
  if (close == std::string::npos) {
    errors->push_back({path, lineno, Rule::kStaleNolint,
                       "malformed NOLINT-DACSCHED comment (missing ')')"});
    return;
  }
  std::string list = raw.substr(tag + kTag.size(), close - tag - kTag.size());
  std::size_t start = 0;
  while (start <= list.size()) {
    auto comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string id = trim(list.substr(start, comma - start));
    start = comma + 1;
    if (id.empty()) continue;
    Rule rule{};
    if (!rule_from_id(id, &rule)) {
      errors->push_back({path, lineno, Rule::kStaleNolint,
                         "NOLINT-DACSCHED names unknown rule '" + id + "'"});
      continue;
    }
    rules->push_back(rule);
  }
}

}  // namespace

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool word_at(const std::string& text, std::size_t pos,
             const std::string& word) {
  if (pos + word.size() > text.size()) return false;
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && is_ident_char(text[pos - 1])) return false;
  const auto end = pos + word.size();
  return end >= text.size() || !is_ident_char(text[end]);
}

std::size_t find_word(const std::string& text, const std::string& word,
                      std::size_t from) {
  for (auto pos = text.find(word, from); pos != std::string::npos;
       pos = text.find(word, pos + 1)) {
    if (word_at(text, pos, word)) return pos;
  }
  return std::string::npos;
}

std::string trim(const std::string& s) {
  std::size_t a = 0;
  std::size_t b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a])) != 0) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])) != 0) --b;
  return s.substr(a, b - a);
}

std::string balanced_args(const CleanFile& file, std::size_t line0,
                          std::size_t col, std::size_t max_lines) {
  std::string out;
  int depth = 0;
  for (std::size_t li = line0;
       li < file.clean.size() && li < line0 + max_lines; ++li) {
    const std::string& line = file.clean[li];
    for (std::size_t i = li == line0 ? col : 0; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '(') {
        ++depth;
        if (depth == 1) continue;  // skip the opening paren itself
      } else if (c == ')') {
        --depth;
        if (depth == 0) return out;
      }
      if (depth >= 1) out.push_back(c);
    }
    out.push_back(' ');  // line break inside the argument list
  }
  return {};
}

CleanFile clean_source(const SourceFile& src) {
  CleanFile out;
  out.src = &src;
  out.raw = split_lines(src.text);
  out.clean.reserve(out.raw.size());
  out.nolint.resize(out.raw.size());
  out.nolint_hit.resize(out.raw.size());

  bool in_block_comment = false;
  for (std::size_t li = 0; li < out.raw.size(); ++li) {
    const std::string& raw = out.raw[li];
    parse_nolint(raw, src.path, static_cast<int>(li) + 1, &out.nolint[li],
                 &out.nolint_errors);
    out.nolint_hit[li].assign(out.nolint[li].size(), false);

    std::string clean(raw.size(), ' ');
    for (std::size_t i = 0; i < raw.size();) {
      if (in_block_comment) {
        if (raw.compare(i, 2, "*/") == 0) {
          in_block_comment = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      const char c = raw[i];
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') break;
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '"') {
        // Raw string literals: R"delim( ... )delim". Single-line support is
        // enough for this codebase; an unterminated one blanks to EOL.
        if (i > 0 && raw[i - 1] == 'R') {
          const auto open = raw.find('(', i);
          if (open == std::string::npos) break;
          const std::string delim = raw.substr(i + 1, open - i - 1);
          const auto close = raw.find(")" + delim + "\"", open);
          if (close == std::string::npos) break;
          i = close + delim.size() + 2;
          continue;
        }
        ++i;
        while (i < raw.size() && raw[i] != '"') {
          i += raw[i] == '\\' ? 2 : 1;
        }
        ++i;
        continue;
      }
      if (c == '\'') {
        // Apostrophes inside numbers (10'000) are digit separators, not
        // char literals: skip only the separator itself.
        if (i > 0 && is_ident_char(raw[i - 1])) {
          ++i;
          continue;
        }
        ++i;
        while (i < raw.size() && raw[i] != '\'') {
          i += raw[i] == '\\' ? 2 : 1;
        }
        ++i;
        continue;
      }
      clean[i] = c;
      ++i;
    }
    out.clean.push_back(std::move(clean));
  }
  return out;
}

void Sink::report(CleanFile& file, int line, Rule rule, std::string message) {
  const auto idx = static_cast<std::size_t>(line - 1);
  if (idx < file.nolint.size()) {
    const auto& rules = file.nolint[idx];
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (rules[i] == rule) {
        file.nolint_hit[idx][i] = true;
        return;  // suppressed; counted when the report is finished
      }
    }
  }
  out_.diagnostics.push_back(
      {file.src->path, line, rule, std::move(message)});
}

Report Sink::finish() {
  for (auto& file : *files_) {
    for (auto& diag : file.nolint_errors) {
      out_.diagnostics.push_back(std::move(diag));
    }
    for (std::size_t li = 0; li < file.nolint.size(); ++li) {
      for (std::size_t i = 0; i < file.nolint[li].size(); ++i) {
        const Rule rule = file.nolint[li][i];
        if (file.nolint_hit[li][i]) {
          ++out_.suppressions[rule_id(rule)];
        } else {
          out_.diagnostics.push_back(
              {file.src->path, static_cast<int>(li) + 1, Rule::kStaleNolint,
               std::string("NOLINT-DACSCHED") + "(" + rule_id(rule) +
                   ") suppresses nothing; remove it"});
        }
      }
    }
  }
  std::sort(out_.diagnostics.begin(), out_.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return rule_id(a.rule) < std::string(rule_id(b.rule));
            });
  out_.files_scanned = static_cast<int>(files_->size());
  return std::move(out_);
}

}  // namespace dac::analyzer::internal
