// Suppression-count baseline: a checked-in `rule-id count` table compared
// exactly against the current run, so every NOLINT added or removed shows up
// as reviewable drift in CI.
#include <sstream>

#include "analyzer/analyzer.hpp"

namespace dac::analyzer {

std::map<std::string, int> parse_baseline(const std::string& text) {
  std::map<std::string, int> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string id;
    int count = 0;
    if (fields >> id >> count) out[id] = count;
  }
  return out;
}

std::string format_baseline(const std::map<std::string, int>& counts) {
  std::ostringstream out;
  out << "# dacsched-analyzer suppression baseline: NOLINT-DACSCHED counts\n"
      << "# per rule. Regenerate with `dacsched-analyzer --update-baseline`;\n"
      << "# CI fails on any drift from these numbers.\n";
  for (const auto& [id, count] : counts) {
    out << id << ' ' << count << '\n';
  }
  return out.str();
}

std::vector<std::string> compare_baseline(
    const std::map<std::string, int>& baseline,
    const std::map<std::string, int>& current) {
  std::vector<std::string> drift;
  for (const auto& [id, count] : current) {
    const auto it = baseline.find(id);
    const int base = it == baseline.end() ? 0 : it->second;
    if (count > base) {
      drift.push_back("suppressions for '" + id + "' grew from " +
                      std::to_string(base) + " to " + std::to_string(count) +
                      "; fix the code instead of adding NOLINTs");
    } else if (count < base) {
      drift.push_back("suppressions for '" + id + "' shrank from " +
                      std::to_string(base) + " to " + std::to_string(count) +
                      "; run --update-baseline to record the win");
    }
  }
  for (const auto& [id, base] : baseline) {
    if (base != 0 && current.find(id) == current.end()) {
      drift.push_back("suppressions for '" + id + "' shrank from " +
                      std::to_string(base) +
                      " to 0; run --update-baseline to record the win");
    }
  }
  return drift;
}

}  // namespace dac::analyzer
