// CLI for dacsched-analyzer: loads the scan set, runs every rule, prints
// `file:line: rule: message` diagnostics, and optionally compares or rewrites
// the suppression baseline.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"

namespace dac::analyzer {

namespace fs = std::filesystem;

namespace {

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool has_cpp_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool under_fixtures(const std::string& rel) {
  return rel.find("/fixtures/") != std::string::npos ||
         rel.rfind("fixtures/", 0) == 0;
}

}  // namespace

std::vector<SourceFile> load_tree(const std::string& root) {
  std::vector<SourceFile> files;
  for (const char* dir : {"src", "tests", "examples", "bench", "tools"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !has_cpp_extension(entry.path())) {
        continue;
      }
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      if (under_fixtures(rel)) continue;  // seeded-violation test inputs
      SourceFile f;
      f.path = rel;
      f.is_test = rel.rfind("tests/", 0) == 0;
      if (!read_file(entry.path(), &f.text)) continue;
      files.push_back(std::move(f));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

int run_cli(int argc, const char* const* argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string lock_dot_path;
  bool json = false;
  bool update_baseline = false;
  std::vector<std::string> explicit_files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) {
        std::fprintf(stderr, "--root needs a directory\n");
        return 2;
      }
      root = argv[i];
    } else if (arg == "--baseline") {
      if (++i >= argc) {
        std::fprintf(stderr, "--baseline needs a file\n");
        return 2;
      }
      baseline_path = argv[i];
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format=text") {
      json = false;
    } else if (arg == "--lock-dot") {
      if (++i >= argc) {
        std::fprintf(stderr, "--lock-dot needs a file\n");
        return 2;
      }
      lock_dot_path = argv[i];
    } else if (arg == "--list-rules") {
      for (const Rule rule : all_rules()) {
        std::printf("%s\n", rule_id(rule));
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: dacsched-analyzer [--root DIR] [--baseline FILE]\n"
          "                         [--update-baseline] [--format=text|json]\n"
          "                         [--lock-dot FILE] [--list-rules]\n"
          "                         [file...]\n"
          "Scans src/ tests/ examples/ bench/ tools/ under --root (or the\n"
          "given files) and reports dacsched rule violations. --format=json\n"
          "emits the machine-readable report; --lock-dot writes the static\n"
          "lock-order graph as Graphviz DOT. Exit codes:\n"
          "0 clean, 1 diagnostics or baseline drift, 2 usage/IO error.\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", arg.c_str());
      return 2;
    } else {
      explicit_files.push_back(arg);
    }
  }
  if (update_baseline && baseline_path.empty()) {
    baseline_path = (fs::path(root) / "tools/analyzer/baseline.txt").string();
  }

  std::vector<SourceFile> files;
  if (explicit_files.empty()) {
    files = load_tree(root);
    if (files.empty()) {
      std::fprintf(stderr, "no sources found under %s\n", root.c_str());
      return 2;
    }
  } else {
    for (const auto& path : explicit_files) {
      SourceFile f;
      f.path = path;
      f.is_test = path.find("tests/") != std::string::npos;
      if (!read_file(path, &f.text)) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 2;
      }
      files.push_back(std::move(f));
    }
  }

  const Report report = analyze(files);
  if (json) {
    std::fputs(format_json(report).c_str(), stdout);
  } else {
    for (const auto& d : report.diagnostics) {
      std::printf("%s:%d: %s: %s\n", d.file.c_str(), d.line, rule_id(d.rule),
                  d.message.c_str());
    }
  }
  if (!lock_dot_path.empty()) {
    std::ofstream dot(lock_dot_path, std::ios::binary);
    if (!dot) {
      std::fprintf(stderr, "cannot write %s\n", lock_dot_path.c_str());
      return 2;
    }
    dot << format_lock_dot(report.lock_edges);
  }

  int exit_code = report.clean() ? 0 : 1;
  if (update_baseline) {
    std::ofstream out(baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", baseline_path.c_str());
      return 2;
    }
    out << format_baseline(report.suppressions);
    std::printf("wrote %s (%d suppressions)\n", baseline_path.c_str(),
                report.total_suppressions());
  } else if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, &text)) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    const auto drift =
        compare_baseline(parse_baseline(text), report.suppressions);
    for (const auto& line : drift) {
      // Keep stdout parseable under --format=json.
      std::fprintf(json ? stderr : stdout, "baseline: %s\n", line.c_str());
    }
    if (!drift.empty()) exit_code = 1;
  }
  if (!json) {
    std::printf("%d file(s), %zu diagnostic(s), %d suppression(s)\n",
                report.files_scanned, report.diagnostics.size(),
                report.total_suppressions());
  }
  return exit_code;
}

}  // namespace dac::analyzer
