// Tree-wide symbol index: a lightweight structural parse of every scanned
// file that recognizes function/method definitions (with body extents and
// owning class), class/namespace nesting, and dac mutex declarations with
// their identity strings — then a per-body fact pass that records call
// sites, direct blocking operations, guard acquisitions (with resolved
// mutex identities), native clock-invisible waits, and actor spawns. The
// call-graph fixpoint and the whole-program rules consume these facts
// (callgraph.cpp).
#include <array>
#include <cctype>

#include "analyzer/wholeprogram.hpp"

namespace dac::analyzer::internal {

namespace {

// Keywords that look like `name(` but never are calls or definitions.
bool is_control_keyword(const std::string& w) {
  static const std::array<const char*, 16> kw = {
      "if",     "for",      "while",   "switch",        "catch",
      "sizeof", "alignof",  "alignas", "decltype",      "static_assert",
      "assert", "noexcept", "typeid",  "co_await",      "requires",
      "defined"};
  for (const char* k : kw) {
    if (w == k) return true;
  }
  return false;
}

// Keywords that may legitimately precede a call expression (`return f()`),
// as opposed to a type name preceding a declaration.
bool is_expr_keyword(const std::string& w) {
  static const std::array<const char*, 8> kw = {
      "return", "co_return", "co_yield", "throw",
      "new",    "delete",    "case",     "else"};
  for (const char* k : kw) {
    if (w == k) return true;
  }
  return false;
}

bool all_caps_macro(const std::string& w) {
  bool has_alpha = false;
  for (char c : w) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) return false;
    if (std::isalpha(static_cast<unsigned char>(c)) != 0) has_alpha = true;
  }
  return has_alpha;
}

// Call-shaped names the scope-local blocking rule already owns (direct
// blockers and guard toggles); the index does not treat them as resolvable
// call sites, so the interprocedural rule never double-reports them.
bool is_owned_operation(const std::string& w) {
  static const std::array<const char*, 14> ops = {
      "call", "pop",   "pop_for",  "recv",       "recv_for",
      "wait", "wait_for", "wait_until", "sleep_for", "sleep_until",
      "lock", "unlock", "notify_one", "notify_all"};
  for (const char* o : ops) {
    if (w == o) return true;
  }
  return false;
}

std::string trailing_ident(const std::string& text) {
  std::size_t end = text.size();
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  std::size_t start = end;
  while (start > 0 && is_ident_char(text[start - 1])) --start;
  return text.substr(start, end - start);
}

// ---- structural pass -------------------------------------------------------

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kOther };
  Kind kind;
  std::string name;      // class / namespace name
  int open_depth = 0;    // brace depth before this scope's '{'
  std::size_t fn = 0;    // index into Index::functions when kind==kFunction
};

// Candidate function-definition state machine: armed at `name(`, confirmed
// when the matching ')' is followed by '{' (possibly through const/noexcept
// trailers and a constructor initializer list), cancelled on ';' and friends.
struct Pending {
  bool active = false;
  std::string name;
  std::string cls;  // from an X::name qualifier, else empty
  int line = 0;
  int state = 0;       // 1 in params, 2 after params, 3 ctor-init trailer
  int paren_depth = 0;
  int brace_depth = 0;  // member brace-inits inside a ctor-init list
  char prev_nonspace = 0;
};

// Examines `line` up to column `open` (the '(') and decides whether this is
// a plausible definition head. Fills name/cls on success.
bool match_def_head(const std::string& line, std::size_t open,
                    const std::string& enclosing_class, bool at_class_scope,
                    Pending* out) {
  std::size_t end = open;
  while (end > 0 && line[end - 1] == ' ') --end;
  std::size_t start = end;
  while (start > 0 && is_ident_char(line[start - 1])) --start;
  if (start == end) return false;
  std::string name = line.substr(start, end - start);
  if (is_control_keyword(name) || is_expr_keyword(name)) return false;
  if (name == "operator") return false;
  bool dtor = false;
  if (start > 0 && line[start - 1] == '~') {
    dtor = true;
    --start;
  }
  // Walk back over `ident::` qualifiers; remember the innermost one.
  std::string cls;
  std::size_t p = start;
  while (p >= 2 && line[p - 1] == ':' && line[p - 2] == ':') {
    std::size_t qe = p - 2;
    std::size_t qs = qe;
    while (qs > 0 && is_ident_char(line[qs - 1])) --qs;
    if (qs == qe) break;  // `::name` global qualifier
    if (cls.empty()) cls = line.substr(qs, qe - qs);
    p = qs;
  }
  const bool qualified = p != start;
  // The character before the (possibly qualified) name.
  std::size_t b = p;
  while (b > 0 && line[b - 1] == ' ') --b;
  if (b == 0) {
    // Name at line start: an out-of-line qualified definition, a
    // constructor at class scope, or a test macro body. Anything else at
    // line start (statement-level calls only occur inside functions, which
    // the structural pass never scans) is rejected.
    if (!qualified && !(at_class_scope && (name == enclosing_class || dtor)) &&
        name.rfind("TEST", 0) != 0 && name != "TYPED_TEST") {
      return false;
    }
  } else {
    const char c = line[b - 1];
    if (is_ident_char(c)) {
      std::size_t ws = b - 1;
      while (ws > 0 && is_ident_char(line[ws - 1])) --ws;
      const std::string word = line.substr(ws, b - ws);
      if (is_expr_keyword(word) || is_control_keyword(word)) return false;
      if (word == "operator") return false;
    } else if (c != '>' && c != '*' && c != '&') {
      return false;  // '=', '(', ',', '.', '!', ... — expression context
    }
  }
  if (all_caps_macro(name) && name.rfind("TEST", 0) != 0 &&
      name != "TYPED_TEST") {
    return false;  // DAC_CHECK(...)-style macro invocation at file scope
  }
  out->active = true;
  out->name = dtor ? "~" + name : name;
  out->cls = qualified ? cls : enclosing_class;
  out->state = 1;
  out->paren_depth = 0;
  out->brace_depth = 0;
  out->prev_nonspace = 0;
  return true;
}

// Mutex identity declarations: `Mutex name_{"label"};` (optionally
// SharedMutex, mutable, dac::/util:: qualified) at class or namespace
// scope. The label lives in the raw line — strings are blanked in clean.
void scan_mutex_decl(const std::string& clean, const std::string& raw,
                     const std::string& cls, Index* index) {
  for (const char* type : {"Mutex", "SharedMutex"}) {
    for (auto pos = find_word(clean, type); pos != std::string::npos;
         pos = find_word(clean, type, pos + 1)) {
      auto j = pos + std::string(type).size();
      while (j < clean.size() && clean[j] == ' ') ++j;
      std::size_t start = j;
      while (j < clean.size() && is_ident_char(clean[j])) ++j;
      if (j == start) continue;
      const std::string field = clean.substr(start, j - start);
      while (j < clean.size() && clean[j] == ' ') ++j;
      if (j >= clean.size() || (clean[j] != '{' && clean[j] != ';')) continue;
      std::string id;
      if (clean[j] == '{') {
        const auto q1 = raw.find('"', j);
        const auto q2 = q1 == std::string::npos ? std::string::npos
                                                : raw.find('"', q1 + 1);
        if (q2 != std::string::npos) id = raw.substr(q1 + 1, q2 - q1 - 1);
      }
      if (id.empty()) id = cls.empty() ? field : cls + "::" + field;
      index->mutex_ids.emplace(std::make_pair(cls, field), id);
      index->mutex_ids_by_field[field].insert(id);
      return;
    }
  }
}

// ---- body fact pass --------------------------------------------------------

// Live guard over a dac mutex inside one body.
struct LiveGuard {
  std::string var;       // guard variable name
  std::string mutex_id;  // resolved identity, empty when unknown
  int depth = 0;
  int line = 0;
  bool active = true;
};

bool guard_decl_at(const std::string& line, std::size_t pos, std::string* var,
                   std::size_t* open_col, char* open_ch) {
  static const std::array<const char*, 4> kGuards = {
      "ScopedLock", "UniqueLock", "WriterLock", "ReaderLock"};
  for (const char* g : kGuards) {
    if (!word_at(line, pos, g)) continue;
    auto j = pos + std::string(g).size();
    while (j < line.size() && line[j] == ' ') ++j;
    std::size_t start = j;
    while (j < line.size() && is_ident_char(line[j])) ++j;
    if (j == start) return false;
    std::string ident = line.substr(start, j - start);
    while (j < line.size() && line[j] == ' ') ++j;
    if (j < line.size() && (line[j] == '(' || line[j] == '{')) {
      *var = std::move(ident);
      *open_col = j;
      *open_ch = line[j];
      return true;
    }
    return false;
  }
  return false;
}

bool member_call_at(const std::string& line, std::size_t pos,
                    const std::string& base,
                    const std::vector<std::string>& suffixes) {
  std::size_t j = pos;
  if (line[j] == '.') {
    j += 1;
  } else if (line.compare(j, 2, "->") == 0) {
    j += 2;
  } else {
    return false;
  }
  if (line.compare(j, base.size(), base) != 0) return false;
  j += base.size();
  if (j < line.size() && is_ident_char(line[j])) {
    bool ok = false;
    for (const auto& s : suffixes) {
      if (line.compare(j, s.size(), s) == 0 &&
          (j + s.size() >= line.size() ||
           !is_ident_char(line[j + s.size()]))) {
        j += s.size();
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  while (j < line.size() && line[j] == ' ') ++j;
  return j < line.size() && line[j] == '(';
}

std::string ident_before(const std::string& line, std::size_t dot) {
  std::size_t start = dot;
  while (start > 0 && is_ident_char(line[start - 1])) --start;
  return line.substr(start, dot - start);
}

// Resolves a guard constructor argument (`mu_`, `node.mu_`, `this->mu_`,
// `other->state_mu_`) to a mutex identity via the owning class, falling back
// to a tree-wide unique field name. Empty when unresolvable.
std::string resolve_mutex_id(const std::string& arg, const std::string& cls,
                             const Index& index) {
  const std::string field = trailing_ident(arg);
  if (field.empty()) return {};
  const auto it = index.mutex_ids.find(std::make_pair(cls, field));
  if (it != index.mutex_ids.end()) return it->second;
  const auto global = index.mutex_ids.find(std::make_pair(std::string(), field));
  if (global != index.mutex_ids.end()) return global->second;
  const auto by_field = index.mutex_ids_by_field.find(field);
  if (by_field != index.mutex_ids_by_field.end() &&
      by_field->second.size() == 1) {
    return *by_field->second.begin();
  }
  return {};
}

// Identifiers declared as raw std::thread (or a vector of them) anywhere in
// the file — receivers whose `.join()` is a native, clock-invisible join.
std::set<std::string> thread_idents(const CleanFile& file) {
  std::set<std::string> out;
  for (const auto& line : file.clean) {
    for (const char* decl :
         {"std::thread", "std::jthread", "std::vector<std::thread>"}) {
      for (auto pos = line.find(decl); pos != std::string::npos;
           pos = line.find(decl, pos + std::string(decl).size())) {
        auto j = pos + std::string(decl).size();
        if (j < line.size() && (is_ident_char(line[j]) || line[j] == ':')) {
          continue;  // longer token (std::thread::id, ...)
        }
        while (j < line.size() && line[j] == ' ') ++j;
        std::size_t start = j;
        while (j < line.size() && is_ident_char(line[j])) ++j;
        if (j > start) out.insert(line.substr(start, j - start));
      }
    }
  }
  return out;
}

struct BodyEvent {
  enum Kind {
    kGuardDecl,
    kUnlock,
    kRelock,
    kDirectBlock,
    kCondWait,
    kCall,
    kNativeWait,
  };
  std::size_t col = 0;
  Kind kind{};
  std::string a;  // guard var / blocker label / callee / wait label
  std::string b;  // guard ctor args (kGuardDecl)
  bool is_join = false;
};

void collect_body_events(const CleanFile& file, std::size_t li,
                         const std::set<std::string>& threads,
                         std::vector<BodyEvent>* events) {
  const std::string& line = file.clean[li];
  for (std::size_t i = 0; i < line.size(); ++i) {
    std::string var;
    std::size_t open_col = 0;
    char open_ch = 0;
    if (guard_decl_at(line, i, &var, &open_col, &open_ch)) {
      std::string args;
      if (open_ch == '(') {
        args = balanced_args(file, li, open_col);
      } else {
        const auto close = line.find('}', open_col);
        if (close != std::string::npos) {
          args = line.substr(open_col + 1, close - open_col - 1);
        }
      }
      events->push_back(
          {i, BodyEvent::kGuardDecl, std::move(var), std::move(args), false});
      continue;
    }
    if (line[i] == '.' || line[i] == '-') {
      if (member_call_at(line, i, "unlock", {})) {
        events->push_back(
            {i, BodyEvent::kUnlock, ident_before(line, i), {}, false});
        continue;
      }
      if (member_call_at(line, i, "lock", {})) {
        events->push_back(
            {i, BodyEvent::kRelock, ident_before(line, i), {}, false});
        continue;
      }
      if (member_call_at(line, i, "call", {})) {
        events->push_back({i, BodyEvent::kDirectBlock, "Caller::call", {},
                           false});
        continue;
      }
      if (member_call_at(line, i, "pop", {"_for"})) {
        events->push_back({i, BodyEvent::kDirectBlock, "BlockingQueue pop",
                           {}, false});
        continue;
      }
      if (member_call_at(line, i, "recv", {"_for"})) {
        events->push_back(
            {i, BodyEvent::kDirectBlock, "endpoint recv", {}, false});
        continue;
      }
      if (member_call_at(line, i, "wait", {"_for", "_until"})) {
        events->push_back(
            {i, BodyEvent::kCondWait, "condition wait", {}, false});
        continue;
      }
      if (member_call_at(line, i, "join", {})) {
        const std::string recv = ident_before(line, i);
        if (threads.count(recv) != 0) {
          events->push_back({i, BodyEvent::kNativeWait,
                             "native join of std::thread '" + recv + "'",
                             {}, true});
        }
        continue;
      }
      continue;
    }
    if (word_at(line, i, "rpc") && line.compare(i, 10, "rpc::call(") == 0) {
      events->push_back({i, BodyEvent::kDirectBlock, "rpc::call", {}, false});
      continue;
    }
    if (word_at(line, i, "sleep_for") || word_at(line, i, "sleep_until")) {
      events->push_back({i, BodyEvent::kDirectBlock, "sleep", {}, false});
      continue;
    }
    for (const char* prim : {"std::latch", "std::barrier",
                             "std::counting_semaphore",
                             "std::binary_semaphore"}) {
      if (line.compare(i, std::string(prim).size(), prim) == 0 &&
          word_at(line, i, prim)) {
        events->push_back({i, BodyEvent::kNativeWait, prim, {}, false});
      }
    }
    // Generic call site: `name(` at an identifier boundary in call context.
    if (is_ident_char(line[i]) && (i == 0 || !is_ident_char(line[i - 1]))) {
      std::size_t j = i;
      while (j < line.size() && is_ident_char(line[j])) ++j;
      const std::string name = line.substr(i, j - i);
      std::size_t k = j;
      while (k < line.size() && line[k] == ' ') ++k;
      if (k >= line.size() || line[k] != '(') {
        i = j - 1;
        continue;
      }
      if (is_control_keyword(name) || is_expr_keyword(name) ||
          is_owned_operation(name) || all_caps_macro(name)) {
        i = j - 1;
        continue;
      }
      bool is_call = false;
      if (i == 0) {
        is_call = true;  // statement-level call at column 0
      } else {
        const char prev = line[i - 1];
        if (prev == '.' || prev == '>' || prev == ':') {
          is_call = true;  // member / qualified call
        } else {
          std::size_t b = i;
          while (b > 0 && line[b - 1] == ' ') --b;
          if (b == 0) {
            is_call = true;
          } else if (is_ident_char(line[b - 1])) {
            std::size_t ws = b - 1;
            while (ws > 0 && is_ident_char(line[ws - 1])) --ws;
            is_call = is_expr_keyword(line.substr(ws, b - ws));
          } else {
            is_call = line[b - 1] != '*' && line[b - 1] != '&';
          }
        }
      }
      if (is_call) {
        events->push_back({i, BodyEvent::kCall, name, {}, false});
      }
      i = j - 1;
      continue;
    }
  }
}

void scan_body(Function& fn, const Index& index,
               const std::set<std::string>& threads) {
  const CleanFile& file = *fn.body_file;
  int depth = 0;
  bool entered = false;  // true once the body '{' has been consumed
  std::vector<LiveGuard> guards;
  std::vector<BodyEvent> events;
  for (std::size_t li = static_cast<std::size_t>(fn.body_begin_line - 1);
       li < file.clean.size() &&
       li <= static_cast<std::size_t>(fn.body_end_line - 1);
       ++li) {
    const std::string& line = file.clean[li];
    const int lineno = static_cast<int>(li) + 1;
    const std::size_t from =
        li == static_cast<std::size_t>(fn.body_begin_line - 1)
            ? static_cast<std::size_t>(fn.body_begin_col)
            : 0;
    events.clear();
    collect_body_events(file, li, threads, &events);
    std::size_t next_event = 0;
    while (next_event < events.size() && events[next_event].col < from) {
      ++next_event;  // signature text before the body opens
    }
    for (std::size_t i = from; i <= line.size(); ++i) {
      while (next_event < events.size() && events[next_event].col == i) {
        const BodyEvent& ev = events[next_event++];
        int live = 0;
        const LiveGuard* innermost = nullptr;
        std::vector<std::string> held_ids;
        for (const auto& g : guards) {
          if (!g.active) continue;
          ++live;
          innermost = &g;
          if (!g.mutex_id.empty()) held_ids.push_back(g.mutex_id);
        }
        switch (ev.kind) {
          case BodyEvent::kGuardDecl: {
            const std::string id = resolve_mutex_id(ev.b, fn.cls, index);
            if (!id.empty()) {
              fn.acquires.push_back(id);
              for (const auto& held : held_ids) {
                if (held != id) {
                  fn.intra_edges.push_back({lineno, held, id});
                }
              }
            }
            guards.push_back({ev.a, id, depth, lineno, true});
            break;
          }
          case BodyEvent::kUnlock:
          case BodyEvent::kRelock:
            for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
              if (it->var == ev.a) {
                it->active = ev.kind == BodyEvent::kRelock;
                break;
              }
            }
            break;
          case BodyEvent::kDirectBlock:
            fn.direct_blocks.push_back({lineno, ev.a, false});
            break;
          case BodyEvent::kCondWait:
            fn.direct_blocks.push_back({lineno, ev.a, true});
            break;
          case BodyEvent::kCall: {
            CallSite call;
            call.line = lineno;
            call.callee = ev.a;
            call.held = held_ids;
            call.held_count = live;
            if (innermost != nullptr) {
              call.held_guard = innermost->var;
              call.held_guard_line = innermost->line;
            }
            fn.calls.push_back(std::move(call));
            break;
          }
          case BodyEvent::kNativeWait:
            fn.native_waits.push_back({lineno, ev.a, ev.is_join});
            break;
        }
      }
      if (i == line.size()) break;
      if (line[i] == '{') {
        ++depth;
        entered = true;
      } else if (line[i] == '}') {
        --depth;
        while (!guards.empty() && guards.back().depth >= depth + 1 &&
               guards.back().depth > depth) {
          guards.pop_back();
        }
        if (entered && depth == 0) return;  // body closed
      }
    }
    if (find_word(line, "ExternalWaitScope") != std::string::npos) {
      fn.has_external_wait_scope = true;
    }
    if (find_word(line, "ActorThread") != std::string::npos ||
        find_word(line, "AdoptScope") != std::string::npos ||
        find_word(line, "actor_started") != std::string::npos) {
      fn.is_actor_root = true;
    }
    for (std::size_t i = 0; i + 1 < line.size(); ++i) {
      if ((line[i] == '.' || line[i] == '-') &&
          member_call_at(line, i, "spawn", {})) {
        fn.is_actor_root = true;
      }
    }
  }
}

}  // namespace

Index build_index(std::vector<CleanFile>& files) {
  Index index;
  // Pass 1: structure — classes, function definitions with body extents,
  // and mutex identity declarations.
  for (auto& file : files) {
    std::vector<Scope> scopes;
    int depth = 0;
    std::string head;
    Pending pend;
    bool mutex_scanned_line = false;
    auto in_function = [&] {
      for (const auto& s : scopes) {
        if (s.kind == Scope::kFunction) return true;
      }
      return false;
    };
    auto enclosing_class = [&]() -> std::string {
      for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
        if (it->kind == Scope::kClass) return it->name;
      }
      return {};
    };
    for (std::size_t li = 0; li < file.clean.size(); ++li) {
      const std::string& line = file.clean[li];
      if (trim(line).rfind('#', 0) == 0) continue;  // preprocessor
      mutex_scanned_line = false;
      for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (pend.active) {
          if (c == ' ') continue;
          switch (pend.state) {
            case 1:
              if (c == '(') ++pend.paren_depth;
              if (c == ')' && --pend.paren_depth == 0) pend.state = 2;
              break;
            case 2:
              if (c == '{') {
                // Confirmed definition: open the function scope.
                Function fn;
                fn.name = pend.name;
                fn.cls = pend.cls;
                fn.qualified =
                    pend.cls.empty() ? pend.name : pend.cls + "::" + pend.name;
                fn.file = &file;
                fn.body_file = &file;
                fn.line = pend.line;
                fn.body_begin_line = static_cast<int>(li) + 1;
                fn.body_begin_col = static_cast<int>(i);
                index.functions.push_back(std::move(fn));
                scopes.push_back({Scope::kFunction, pend.name, depth,
                                  index.functions.size() - 1});
                ++depth;
                pend.active = false;
              } else if (c == ';' || c == '=' || c == ',' || c == ')') {
                pend.active = false;
              } else if (c == ':' &&
                         !(i + 1 < line.size() && line[i + 1] == ':') &&
                         pend.prev_nonspace != ':') {
                pend.state = 3;
              } else if (c == '(') {
                pend.paren_depth = 1;
                pend.state = 1;  // noexcept(...) and friends
              }
              break;
            case 3:
              if (c == '(') ++pend.paren_depth;
              if (c == ')') --pend.paren_depth;
              if (c == '{' && pend.paren_depth == 0) {
                if (is_ident_char(pend.prev_nonspace) ||
                    pend.brace_depth > 0) {
                  ++pend.brace_depth;  // member brace-init `v_{1, 2}`
                } else {
                  Function fn;
                  fn.name = pend.name;
                  fn.cls = pend.cls;
                  fn.qualified = pend.cls.empty() ? pend.name
                                                 : pend.cls + "::" + pend.name;
                  fn.file = &file;
                  fn.body_file = &file;
                  fn.line = pend.line;
                  fn.body_begin_line = static_cast<int>(li) + 1;
                  fn.body_begin_col = static_cast<int>(i);
                  index.functions.push_back(std::move(fn));
                  scopes.push_back({Scope::kFunction, pend.name, depth,
                                    index.functions.size() - 1});
                  ++depth;
                  pend.active = false;
                }
              } else if (c == '}' && pend.brace_depth > 0) {
                --pend.brace_depth;
              } else if (c == ';' && pend.paren_depth == 0 &&
                         pend.brace_depth == 0) {
                pend.active = false;
              }
              break;
            default:
              pend.active = false;
              break;
          }
          if (c != ' ') pend.prev_nonspace = c;
          continue;
        }
        if (!in_function() && !mutex_scanned_line) {
          mutex_scanned_line = true;
          scan_mutex_decl(line, file.raw[li], enclosing_class(), &index);
        }
        if (c == '(' && !in_function()) {
          Pending cand;
          const std::string cls = enclosing_class();
          if (match_def_head(line, i, cls, !cls.empty(), &cand)) {
            cand.line = static_cast<int>(li) + 1;
            cand.paren_depth = 1;
            cand.prev_nonspace = '(';
            pend = cand;
            continue;
          }
        }
        if (c == '{') {
          Scope scope{Scope::kOther, {}, depth, 0};
          if (!in_function()) {
            const auto ns = find_word(head, "namespace");
            const auto cl = find_word(head, "class");
            const auto st = find_word(head, "struct");
            const bool is_enum =
                find_word(head, "enum") != std::string::npos;
            if (ns != std::string::npos) {
              scope.kind = Scope::kNamespace;
            } else if (!is_enum &&
                       (cl != std::string::npos || st != std::string::npos)) {
              const auto kw = cl != std::string::npos ? cl : st;
              const auto kwlen = cl != std::string::npos ? 5u : 6u;
              std::size_t j = kw + kwlen;
              while (j < head.size() && head[j] == ' ') ++j;
              std::size_t start = j;
              while (j < head.size() && is_ident_char(head[j])) ++j;
              if (j > start) {
                scope.kind = Scope::kClass;
                scope.name = head.substr(start, j - start);
              }
            }
          }
          scopes.push_back(scope);
          ++depth;
          head.clear();
        } else if (c == '}') {
          --depth;
          while (!scopes.empty() && scopes.back().open_depth >= depth) {
            if (scopes.back().kind == Scope::kFunction) {
              Function& fn = index.functions[scopes.back().fn];
              fn.body_end_line = static_cast<int>(li) + 1;
            }
            scopes.pop_back();
          }
          head.clear();
        } else if (c == ';') {
          head.clear();
        } else {
          head.push_back(c);
        }
      }
      if (!pend.active) head.push_back(' ');
    }
    // Unclosed function at EOF (unbalanced braces): bound it to the file.
    for (const auto& s : scopes) {
      if (s.kind == Scope::kFunction &&
          index.functions[s.fn].body_end_line == 0) {
        index.functions[s.fn].body_end_line =
            static_cast<int>(file.clean.size());
      }
    }
  }
  // Pass 2: per-body facts (needs the complete mutex identity table).
  std::map<const CleanFile*, std::set<std::string>> threads_by_file;
  for (auto& fn : index.functions) {
    auto it = threads_by_file.find(fn.body_file);
    if (it == threads_by_file.end()) {
      it = threads_by_file.emplace(fn.body_file, thread_idents(*fn.body_file))
               .first;
    }
    scan_body(fn, index, it->second);
  }
  for (auto& fn : index.functions) {
    index.by_name[fn.name].push_back(&fn);
  }
  return index;
}

}  // namespace dac::analyzer::internal
