// Internal interfaces shared by the analyzer's translation units: the
// comment/string-stripped view of a file, the diagnostic sink that applies
// line-anchored suppressions, and small lexing helpers. Nothing here is part
// of the public surface in analyzer.hpp.
#pragma once

#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"

namespace dac::analyzer::internal {

// One scanned file: per-line text with comments and string/char literals
// blanked (offsets preserved), plus the NOLINT-DACSCHED suppressions parsed
// out of the raw comments before they were stripped.
struct CleanFile {
  const SourceFile* src = nullptr;
  std::vector<std::string> raw;              // unmodified source lines
  std::vector<std::string> clean;            // same line count as the source
  std::vector<std::vector<Rule>> nolint;     // rules suppressed on each line
  std::vector<std::vector<bool>> nolint_hit; // parallel: suppression fired
  // NOLINT comments naming unknown rules, reported as stale-nolint.
  std::vector<Diagnostic> nolint_errors;
};

CleanFile clean_source(const SourceFile& src);

// Collects diagnostics, honoring same-line NOLINT suppressions and counting
// the ones that fire. finish() turns every suppression that never fired into
// a stale-nolint diagnostic, then sorts.
class Sink {
 public:
  explicit Sink(std::vector<CleanFile>& files) : files_(&files) {}

  void report(CleanFile& file, int line, Rule rule, std::string message);
  [[nodiscard]] Report finish();

 private:
  std::vector<CleanFile>* files_;
  Report out_;
};

// ---- lexing helpers -------------------------------------------------------

[[nodiscard]] bool is_ident_char(char c);
// True when text[pos..] starts with `word` at an identifier boundary on both
// sides.
[[nodiscard]] bool word_at(const std::string& text, std::size_t pos,
                           const std::string& word);
// Position of the first boundary-delimited occurrence of `word`, or npos.
[[nodiscard]] std::size_t find_word(const std::string& text,
                                    const std::string& word,
                                    std::size_t from = 0);
[[nodiscard]] std::string trim(const std::string& s);

// Gathers the balanced parenthesized argument text starting at the '(' at
// (line0, col) — 0-based line index — spanning up to `max_lines` lines.
// Returns the text between the outer parens (exclusive) or empty when the
// close was not found in range.
[[nodiscard]] std::string balanced_args(const CleanFile& file,
                                        std::size_t line0, std::size_t col,
                                        std::size_t max_lines = 16);

// ---- rule passes ----------------------------------------------------------

struct MustCheck {
  // Function names whose every header declaration returns a must-check
  // type; bare statement-expression calls to these are unchecked-status.
  std::vector<std::string> names;
};

// Per-file rules: include hygiene, raw-sync, detach, sleep-poll,
// nondet-seed, blocking-under-lock, deadline-literal, check-side-effect,
// unchecked-status call sites.
void check_file(CleanFile& file, const MustCheck& mustcheck, Sink& sink);

// Cross-file rules: handler-coverage, span-name, and [[nodiscard]]
// declaration enforcement (which also yields the must-check name set).
MustCheck check_tree(std::vector<CleanFile>& files, const Config& config,
                     Sink& sink);

}  // namespace dac::analyzer::internal
