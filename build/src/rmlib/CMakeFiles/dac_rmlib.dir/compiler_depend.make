# Empty compiler generated dependencies file for dac_rmlib.
# This may be replaced when dependencies are built.
