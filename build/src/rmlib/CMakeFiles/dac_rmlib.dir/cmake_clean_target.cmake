file(REMOVE_RECURSE
  "libdac_rmlib.a"
)
