
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rmlib/ac_session.cpp" "src/rmlib/CMakeFiles/dac_rmlib.dir/ac_session.cpp.o" "gcc" "src/rmlib/CMakeFiles/dac_rmlib.dir/ac_session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dacc/CMakeFiles/dac_dacc.dir/DependInfo.cmake"
  "/root/repo/build/src/torque/CMakeFiles/dac_torque.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/dac_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/dac_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/vnet/CMakeFiles/dac_vnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
