file(REMOVE_RECURSE
  "CMakeFiles/dac_rmlib.dir/ac_session.cpp.o"
  "CMakeFiles/dac_rmlib.dir/ac_session.cpp.o.d"
  "libdac_rmlib.a"
  "libdac_rmlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dac_rmlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
