file(REMOVE_RECURSE
  "libdac_dacc.a"
)
