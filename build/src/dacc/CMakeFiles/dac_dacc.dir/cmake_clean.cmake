file(REMOVE_RECURSE
  "CMakeFiles/dac_dacc.dir/daemon.cpp.o"
  "CMakeFiles/dac_dacc.dir/daemon.cpp.o.d"
  "CMakeFiles/dac_dacc.dir/frontend.cpp.o"
  "CMakeFiles/dac_dacc.dir/frontend.cpp.o.d"
  "libdac_dacc.a"
  "libdac_dacc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dac_dacc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
