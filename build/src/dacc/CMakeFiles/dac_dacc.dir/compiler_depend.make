# Empty compiler generated dependencies file for dac_dacc.
# This may be replaced when dependencies are built.
