file(REMOVE_RECURSE
  "CMakeFiles/dac_arm.dir/arm.cpp.o"
  "CMakeFiles/dac_arm.dir/arm.cpp.o.d"
  "libdac_arm.a"
  "libdac_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dac_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
