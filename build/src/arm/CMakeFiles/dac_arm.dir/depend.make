# Empty dependencies file for dac_arm.
# This may be replaced when dependencies are built.
