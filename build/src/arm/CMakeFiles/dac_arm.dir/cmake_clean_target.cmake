file(REMOVE_RECURSE
  "libdac_arm.a"
)
