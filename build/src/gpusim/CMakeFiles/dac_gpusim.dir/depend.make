# Empty dependencies file for dac_gpusim.
# This may be replaced when dependencies are built.
