file(REMOVE_RECURSE
  "CMakeFiles/dac_gpusim.dir/device.cpp.o"
  "CMakeFiles/dac_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/dac_gpusim.dir/driver.cpp.o"
  "CMakeFiles/dac_gpusim.dir/driver.cpp.o.d"
  "CMakeFiles/dac_gpusim.dir/kernels.cpp.o"
  "CMakeFiles/dac_gpusim.dir/kernels.cpp.o.d"
  "CMakeFiles/dac_gpusim.dir/stream.cpp.o"
  "CMakeFiles/dac_gpusim.dir/stream.cpp.o.d"
  "libdac_gpusim.a"
  "libdac_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dac_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
