file(REMOVE_RECURSE
  "libdac_gpusim.a"
)
