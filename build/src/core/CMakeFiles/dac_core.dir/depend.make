# Empty dependencies file for dac_core.
# This may be replaced when dependencies are built.
