file(REMOVE_RECURSE
  "CMakeFiles/dac_core.dir/cli.cpp.o"
  "CMakeFiles/dac_core.dir/cli.cpp.o.d"
  "CMakeFiles/dac_core.dir/cluster.cpp.o"
  "CMakeFiles/dac_core.dir/cluster.cpp.o.d"
  "libdac_core.a"
  "libdac_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dac_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
