file(REMOVE_RECURSE
  "CMakeFiles/dac_maui.dir/scheduler.cpp.o"
  "CMakeFiles/dac_maui.dir/scheduler.cpp.o.d"
  "libdac_maui.a"
  "libdac_maui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dac_maui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
