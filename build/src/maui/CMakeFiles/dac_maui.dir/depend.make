# Empty dependencies file for dac_maui.
# This may be replaced when dependencies are built.
