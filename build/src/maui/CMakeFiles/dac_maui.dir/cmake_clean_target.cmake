file(REMOVE_RECURSE
  "libdac_maui.a"
)
