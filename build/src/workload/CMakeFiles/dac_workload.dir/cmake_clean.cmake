file(REMOVE_RECURSE
  "CMakeFiles/dac_workload.dir/workload.cpp.o"
  "CMakeFiles/dac_workload.dir/workload.cpp.o.d"
  "libdac_workload.a"
  "libdac_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dac_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
