file(REMOVE_RECURSE
  "libdac_workload.a"
)
