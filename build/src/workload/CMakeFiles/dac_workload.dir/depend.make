# Empty dependencies file for dac_workload.
# This may be replaced when dependencies are built.
