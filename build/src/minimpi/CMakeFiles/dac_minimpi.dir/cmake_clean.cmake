file(REMOVE_RECURSE
  "CMakeFiles/dac_minimpi.dir/dpm.cpp.o"
  "CMakeFiles/dac_minimpi.dir/dpm.cpp.o.d"
  "CMakeFiles/dac_minimpi.dir/proc.cpp.o"
  "CMakeFiles/dac_minimpi.dir/proc.cpp.o.d"
  "CMakeFiles/dac_minimpi.dir/runtime.cpp.o"
  "CMakeFiles/dac_minimpi.dir/runtime.cpp.o.d"
  "CMakeFiles/dac_minimpi.dir/types.cpp.o"
  "CMakeFiles/dac_minimpi.dir/types.cpp.o.d"
  "libdac_minimpi.a"
  "libdac_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dac_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
