
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minimpi/dpm.cpp" "src/minimpi/CMakeFiles/dac_minimpi.dir/dpm.cpp.o" "gcc" "src/minimpi/CMakeFiles/dac_minimpi.dir/dpm.cpp.o.d"
  "/root/repo/src/minimpi/proc.cpp" "src/minimpi/CMakeFiles/dac_minimpi.dir/proc.cpp.o" "gcc" "src/minimpi/CMakeFiles/dac_minimpi.dir/proc.cpp.o.d"
  "/root/repo/src/minimpi/runtime.cpp" "src/minimpi/CMakeFiles/dac_minimpi.dir/runtime.cpp.o" "gcc" "src/minimpi/CMakeFiles/dac_minimpi.dir/runtime.cpp.o.d"
  "/root/repo/src/minimpi/types.cpp" "src/minimpi/CMakeFiles/dac_minimpi.dir/types.cpp.o" "gcc" "src/minimpi/CMakeFiles/dac_minimpi.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vnet/CMakeFiles/dac_vnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
