# Empty compiler generated dependencies file for dac_minimpi.
# This may be replaced when dependencies are built.
