file(REMOVE_RECURSE
  "libdac_minimpi.a"
)
