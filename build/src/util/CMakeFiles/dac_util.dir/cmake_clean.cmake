file(REMOVE_RECURSE
  "CMakeFiles/dac_util.dir/bytes.cpp.o"
  "CMakeFiles/dac_util.dir/bytes.cpp.o.d"
  "CMakeFiles/dac_util.dir/logging.cpp.o"
  "CMakeFiles/dac_util.dir/logging.cpp.o.d"
  "CMakeFiles/dac_util.dir/stats.cpp.o"
  "CMakeFiles/dac_util.dir/stats.cpp.o.d"
  "libdac_util.a"
  "libdac_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dac_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
