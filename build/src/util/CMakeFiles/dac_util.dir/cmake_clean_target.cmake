file(REMOVE_RECURSE
  "libdac_util.a"
)
