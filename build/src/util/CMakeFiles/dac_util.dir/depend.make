# Empty dependencies file for dac_util.
# This may be replaced when dependencies are built.
