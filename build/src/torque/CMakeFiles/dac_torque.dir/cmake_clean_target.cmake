file(REMOVE_RECURSE
  "libdac_torque.a"
)
