file(REMOVE_RECURSE
  "CMakeFiles/dac_torque.dir/ifl.cpp.o"
  "CMakeFiles/dac_torque.dir/ifl.cpp.o.d"
  "CMakeFiles/dac_torque.dir/job.cpp.o"
  "CMakeFiles/dac_torque.dir/job.cpp.o.d"
  "CMakeFiles/dac_torque.dir/mom.cpp.o"
  "CMakeFiles/dac_torque.dir/mom.cpp.o.d"
  "CMakeFiles/dac_torque.dir/node_db.cpp.o"
  "CMakeFiles/dac_torque.dir/node_db.cpp.o.d"
  "CMakeFiles/dac_torque.dir/protocol.cpp.o"
  "CMakeFiles/dac_torque.dir/protocol.cpp.o.d"
  "CMakeFiles/dac_torque.dir/rpc.cpp.o"
  "CMakeFiles/dac_torque.dir/rpc.cpp.o.d"
  "CMakeFiles/dac_torque.dir/server.cpp.o"
  "CMakeFiles/dac_torque.dir/server.cpp.o.d"
  "CMakeFiles/dac_torque.dir/task_registry.cpp.o"
  "CMakeFiles/dac_torque.dir/task_registry.cpp.o.d"
  "libdac_torque.a"
  "libdac_torque.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dac_torque.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
