# Empty compiler generated dependencies file for dac_torque.
# This may be replaced when dependencies are built.
