
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/torque/ifl.cpp" "src/torque/CMakeFiles/dac_torque.dir/ifl.cpp.o" "gcc" "src/torque/CMakeFiles/dac_torque.dir/ifl.cpp.o.d"
  "/root/repo/src/torque/job.cpp" "src/torque/CMakeFiles/dac_torque.dir/job.cpp.o" "gcc" "src/torque/CMakeFiles/dac_torque.dir/job.cpp.o.d"
  "/root/repo/src/torque/mom.cpp" "src/torque/CMakeFiles/dac_torque.dir/mom.cpp.o" "gcc" "src/torque/CMakeFiles/dac_torque.dir/mom.cpp.o.d"
  "/root/repo/src/torque/node_db.cpp" "src/torque/CMakeFiles/dac_torque.dir/node_db.cpp.o" "gcc" "src/torque/CMakeFiles/dac_torque.dir/node_db.cpp.o.d"
  "/root/repo/src/torque/protocol.cpp" "src/torque/CMakeFiles/dac_torque.dir/protocol.cpp.o" "gcc" "src/torque/CMakeFiles/dac_torque.dir/protocol.cpp.o.d"
  "/root/repo/src/torque/rpc.cpp" "src/torque/CMakeFiles/dac_torque.dir/rpc.cpp.o" "gcc" "src/torque/CMakeFiles/dac_torque.dir/rpc.cpp.o.d"
  "/root/repo/src/torque/server.cpp" "src/torque/CMakeFiles/dac_torque.dir/server.cpp.o" "gcc" "src/torque/CMakeFiles/dac_torque.dir/server.cpp.o.d"
  "/root/repo/src/torque/task_registry.cpp" "src/torque/CMakeFiles/dac_torque.dir/task_registry.cpp.o" "gcc" "src/torque/CMakeFiles/dac_torque.dir/task_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vnet/CMakeFiles/dac_vnet.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/dac_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
