file(REMOVE_RECURSE
  "CMakeFiles/dac_vnet.dir/cluster.cpp.o"
  "CMakeFiles/dac_vnet.dir/cluster.cpp.o.d"
  "CMakeFiles/dac_vnet.dir/fabric.cpp.o"
  "CMakeFiles/dac_vnet.dir/fabric.cpp.o.d"
  "CMakeFiles/dac_vnet.dir/node.cpp.o"
  "CMakeFiles/dac_vnet.dir/node.cpp.o.d"
  "libdac_vnet.a"
  "libdac_vnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dac_vnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
