file(REMOVE_RECURSE
  "libdac_vnet.a"
)
