# Empty compiler generated dependencies file for dac_vnet.
# This may be replaced when dependencies are built.
