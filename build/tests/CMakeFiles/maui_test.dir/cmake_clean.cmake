file(REMOVE_RECURSE
  "CMakeFiles/maui_test.dir/maui/aging_test.cpp.o"
  "CMakeFiles/maui_test.dir/maui/aging_test.cpp.o.d"
  "CMakeFiles/maui_test.dir/maui/policy_test.cpp.o"
  "CMakeFiles/maui_test.dir/maui/policy_test.cpp.o.d"
  "maui_test"
  "maui_test.pdb"
  "maui_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maui_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
