# Empty compiler generated dependencies file for rmlib_test.
# This may be replaced when dependencies are built.
