file(REMOVE_RECURSE
  "CMakeFiles/rmlib_test.dir/rmlib/session_test.cpp.o"
  "CMakeFiles/rmlib_test.dir/rmlib/session_test.cpp.o.d"
  "rmlib_test"
  "rmlib_test.pdb"
  "rmlib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
