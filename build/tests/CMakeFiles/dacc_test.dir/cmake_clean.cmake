file(REMOVE_RECURSE
  "CMakeFiles/dacc_test.dir/dacc/offload_test.cpp.o"
  "CMakeFiles/dacc_test.dir/dacc/offload_test.cpp.o.d"
  "CMakeFiles/dacc_test.dir/dacc/stencil_test.cpp.o"
  "CMakeFiles/dacc_test.dir/dacc/stencil_test.cpp.o.d"
  "CMakeFiles/dacc_test.dir/dacc/transfer_edge_test.cpp.o"
  "CMakeFiles/dacc_test.dir/dacc/transfer_edge_test.cpp.o.d"
  "dacc_test"
  "dacc_test.pdb"
  "dacc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dacc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
