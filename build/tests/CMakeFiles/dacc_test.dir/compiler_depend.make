# Empty compiler generated dependencies file for dacc_test.
# This may be replaced when dependencies are built.
