# Empty dependencies file for torque_test.
# This may be replaced when dependencies are built.
