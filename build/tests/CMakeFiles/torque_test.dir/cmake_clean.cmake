file(REMOVE_RECURSE
  "CMakeFiles/torque_test.dir/torque/fault_test.cpp.o"
  "CMakeFiles/torque_test.dir/torque/fault_test.cpp.o.d"
  "CMakeFiles/torque_test.dir/torque/ifl_test.cpp.o"
  "CMakeFiles/torque_test.dir/torque/ifl_test.cpp.o.d"
  "CMakeFiles/torque_test.dir/torque/job_test.cpp.o"
  "CMakeFiles/torque_test.dir/torque/job_test.cpp.o.d"
  "CMakeFiles/torque_test.dir/torque/mom_test.cpp.o"
  "CMakeFiles/torque_test.dir/torque/mom_test.cpp.o.d"
  "CMakeFiles/torque_test.dir/torque/node_db_test.cpp.o"
  "CMakeFiles/torque_test.dir/torque/node_db_test.cpp.o.d"
  "CMakeFiles/torque_test.dir/torque/rpc_test.cpp.o"
  "CMakeFiles/torque_test.dir/torque/rpc_test.cpp.o.d"
  "CMakeFiles/torque_test.dir/torque/server_test.cpp.o"
  "CMakeFiles/torque_test.dir/torque/server_test.cpp.o.d"
  "CMakeFiles/torque_test.dir/torque/task_registry_test.cpp.o"
  "CMakeFiles/torque_test.dir/torque/task_registry_test.cpp.o.d"
  "CMakeFiles/torque_test.dir/torque/walltime_test.cpp.o"
  "CMakeFiles/torque_test.dir/torque/walltime_test.cpp.o.d"
  "torque_test"
  "torque_test.pdb"
  "torque_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torque_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
