file(REMOVE_RECURSE
  "CMakeFiles/minimpi_test.dir/minimpi/collectives_test.cpp.o"
  "CMakeFiles/minimpi_test.dir/minimpi/collectives_test.cpp.o.d"
  "CMakeFiles/minimpi_test.dir/minimpi/dpm_extra_test.cpp.o"
  "CMakeFiles/minimpi_test.dir/minimpi/dpm_extra_test.cpp.o.d"
  "CMakeFiles/minimpi_test.dir/minimpi/dpm_test.cpp.o"
  "CMakeFiles/minimpi_test.dir/minimpi/dpm_test.cpp.o.d"
  "CMakeFiles/minimpi_test.dir/minimpi/extended_test.cpp.o"
  "CMakeFiles/minimpi_test.dir/minimpi/extended_test.cpp.o.d"
  "CMakeFiles/minimpi_test.dir/minimpi/nonblocking_test.cpp.o"
  "CMakeFiles/minimpi_test.dir/minimpi/nonblocking_test.cpp.o.d"
  "CMakeFiles/minimpi_test.dir/minimpi/p2p_test.cpp.o"
  "CMakeFiles/minimpi_test.dir/minimpi/p2p_test.cpp.o.d"
  "CMakeFiles/minimpi_test.dir/minimpi/runtime_test.cpp.o"
  "CMakeFiles/minimpi_test.dir/minimpi/runtime_test.cpp.o.d"
  "minimpi_test"
  "minimpi_test.pdb"
  "minimpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
