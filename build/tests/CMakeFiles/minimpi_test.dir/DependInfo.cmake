
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/minimpi/collectives_test.cpp" "tests/CMakeFiles/minimpi_test.dir/minimpi/collectives_test.cpp.o" "gcc" "tests/CMakeFiles/minimpi_test.dir/minimpi/collectives_test.cpp.o.d"
  "/root/repo/tests/minimpi/dpm_extra_test.cpp" "tests/CMakeFiles/minimpi_test.dir/minimpi/dpm_extra_test.cpp.o" "gcc" "tests/CMakeFiles/minimpi_test.dir/minimpi/dpm_extra_test.cpp.o.d"
  "/root/repo/tests/minimpi/dpm_test.cpp" "tests/CMakeFiles/minimpi_test.dir/minimpi/dpm_test.cpp.o" "gcc" "tests/CMakeFiles/minimpi_test.dir/minimpi/dpm_test.cpp.o.d"
  "/root/repo/tests/minimpi/extended_test.cpp" "tests/CMakeFiles/minimpi_test.dir/minimpi/extended_test.cpp.o" "gcc" "tests/CMakeFiles/minimpi_test.dir/minimpi/extended_test.cpp.o.d"
  "/root/repo/tests/minimpi/nonblocking_test.cpp" "tests/CMakeFiles/minimpi_test.dir/minimpi/nonblocking_test.cpp.o" "gcc" "tests/CMakeFiles/minimpi_test.dir/minimpi/nonblocking_test.cpp.o.d"
  "/root/repo/tests/minimpi/p2p_test.cpp" "tests/CMakeFiles/minimpi_test.dir/minimpi/p2p_test.cpp.o" "gcc" "tests/CMakeFiles/minimpi_test.dir/minimpi/p2p_test.cpp.o.d"
  "/root/repo/tests/minimpi/runtime_test.cpp" "tests/CMakeFiles/minimpi_test.dir/minimpi/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/minimpi_test.dir/minimpi/runtime_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dac_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vnet/CMakeFiles/dac_vnet.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/dac_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/dac_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/dacc/CMakeFiles/dac_dacc.dir/DependInfo.cmake"
  "/root/repo/build/src/torque/CMakeFiles/dac_torque.dir/DependInfo.cmake"
  "/root/repo/build/src/maui/CMakeFiles/dac_maui.dir/DependInfo.cmake"
  "/root/repo/build/src/rmlib/CMakeFiles/dac_rmlib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/arm/CMakeFiles/dac_arm.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dac_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
