# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/vnet_test[1]_include.cmake")
include("/root/repo/build/tests/minimpi_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build/tests/dacc_test[1]_include.cmake")
include("/root/repo/build/tests/torque_test[1]_include.cmake")
include("/root/repo/build/tests/maui_test[1]_include.cmake")
include("/root/repo/build/tests/rmlib_test[1]_include.cmake")
include("/root/repo/build/tests/arm_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
