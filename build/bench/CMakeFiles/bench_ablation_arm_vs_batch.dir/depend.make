# Empty dependencies file for bench_ablation_arm_vs_batch.
# This may be replaced when dependencies are built.
