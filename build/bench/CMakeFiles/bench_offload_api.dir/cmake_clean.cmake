file(REMOVE_RECURSE
  "CMakeFiles/bench_offload_api.dir/bench_offload_api.cpp.o"
  "CMakeFiles/bench_offload_api.dir/bench_offload_api.cpp.o.d"
  "bench_offload_api"
  "bench_offload_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offload_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
