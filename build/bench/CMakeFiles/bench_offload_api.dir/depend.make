# Empty dependencies file for bench_offload_api.
# This may be replaced when dependencies are built.
