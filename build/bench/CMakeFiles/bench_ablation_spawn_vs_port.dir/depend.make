# Empty dependencies file for bench_ablation_spawn_vs_port.
# This may be replaced when dependencies are built.
