file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_wire.dir/bench_micro_wire.cpp.o"
  "CMakeFiles/bench_micro_wire.dir/bench_micro_wire.cpp.o.d"
  "bench_micro_wire"
  "bench_micro_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
