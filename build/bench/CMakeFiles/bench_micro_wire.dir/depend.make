# Empty dependencies file for bench_micro_wire.
# This may be replaced when dependencies are built.
