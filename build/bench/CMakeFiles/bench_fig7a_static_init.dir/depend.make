# Empty dependencies file for bench_fig7a_static_init.
# This may be replaced when dependencies are built.
