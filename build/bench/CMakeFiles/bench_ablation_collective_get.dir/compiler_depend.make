# Empty compiler generated dependencies file for bench_ablation_collective_get.
# This may be replaced when dependencies are built.
