file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_collective_get.dir/bench_ablation_collective_get.cpp.o"
  "CMakeFiles/bench_ablation_collective_get.dir/bench_ablation_collective_get.cpp.o.d"
  "bench_ablation_collective_get"
  "bench_ablation_collective_get.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_collective_get.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
