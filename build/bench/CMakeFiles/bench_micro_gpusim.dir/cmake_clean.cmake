file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_gpusim.dir/bench_micro_gpusim.cpp.o"
  "CMakeFiles/bench_micro_gpusim.dir/bench_micro_gpusim.cpp.o.d"
  "bench_micro_gpusim"
  "bench_micro_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
