# Empty dependencies file for bench_micro_gpusim.
# This may be replaced when dependencies are built.
