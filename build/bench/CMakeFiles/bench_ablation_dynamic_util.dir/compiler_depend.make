# Empty compiler generated dependencies file for bench_ablation_dynamic_util.
# This may be replaced when dependencies are built.
