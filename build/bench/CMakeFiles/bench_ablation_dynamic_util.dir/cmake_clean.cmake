file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dynamic_util.dir/bench_ablation_dynamic_util.cpp.o"
  "CMakeFiles/bench_ablation_dynamic_util.dir/bench_ablation_dynamic_util.cpp.o.d"
  "bench_ablation_dynamic_util"
  "bench_ablation_dynamic_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dynamic_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
