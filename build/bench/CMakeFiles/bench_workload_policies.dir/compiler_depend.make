# Empty compiler generated dependencies file for bench_workload_policies.
# This may be replaced when dependencies are built.
