file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_policies.dir/bench_workload_policies.cpp.o"
  "CMakeFiles/bench_workload_policies.dir/bench_workload_policies.cpp.o.d"
  "bench_workload_policies"
  "bench_workload_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
