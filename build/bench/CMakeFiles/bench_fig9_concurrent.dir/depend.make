# Empty dependencies file for bench_fig9_concurrent.
# This may be replaced when dependencies are built.
