file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_concurrent.dir/bench_fig9_concurrent.cpp.o"
  "CMakeFiles/bench_fig9_concurrent.dir/bench_fig9_concurrent.cpp.o.d"
  "bench_fig9_concurrent"
  "bench_fig9_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
