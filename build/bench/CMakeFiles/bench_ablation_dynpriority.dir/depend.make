# Empty dependencies file for bench_ablation_dynpriority.
# This may be replaced when dependencies are built.
