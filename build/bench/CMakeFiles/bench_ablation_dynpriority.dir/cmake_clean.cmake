file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dynpriority.dir/bench_ablation_dynpriority.cpp.o"
  "CMakeFiles/bench_ablation_dynpriority.dir/bench_ablation_dynpriority.cpp.o.d"
  "bench_ablation_dynpriority"
  "bench_ablation_dynpriority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dynpriority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
