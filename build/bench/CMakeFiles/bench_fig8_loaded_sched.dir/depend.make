# Empty dependencies file for bench_fig8_loaded_sched.
# This may be replaced when dependencies are built.
