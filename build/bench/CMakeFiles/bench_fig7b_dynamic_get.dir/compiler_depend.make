# Empty compiler generated dependencies file for bench_fig7b_dynamic_get.
# This may be replaced when dependencies are built.
