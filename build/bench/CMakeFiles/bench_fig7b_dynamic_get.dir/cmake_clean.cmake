file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_dynamic_get.dir/bench_fig7b_dynamic_get.cpp.o"
  "CMakeFiles/bench_fig7b_dynamic_get.dir/bench_fig7b_dynamic_get.cpp.o.d"
  "bench_fig7b_dynamic_get"
  "bench_fig7b_dynamic_get.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_dynamic_get.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
