file(REMOVE_RECURSE
  "CMakeFiles/bench_sensitivity_network.dir/bench_sensitivity_network.cpp.o"
  "CMakeFiles/bench_sensitivity_network.dir/bench_sensitivity_network.cpp.o.d"
  "bench_sensitivity_network"
  "bench_sensitivity_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
