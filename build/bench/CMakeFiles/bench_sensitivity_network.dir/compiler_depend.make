# Empty compiler generated dependencies file for bench_sensitivity_network.
# This may be replaced when dependencies are built.
