file(REMOVE_RECURSE
  "CMakeFiles/multinode_mixed.dir/multinode_mixed.cpp.o"
  "CMakeFiles/multinode_mixed.dir/multinode_mixed.cpp.o.d"
  "multinode_mixed"
  "multinode_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multinode_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
