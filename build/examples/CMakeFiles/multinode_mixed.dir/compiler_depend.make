# Empty compiler generated dependencies file for multinode_mixed.
# This may be replaced when dependencies are built.
