# Empty dependencies file for standalone_arm.
# This may be replaced when dependencies are built.
