file(REMOVE_RECURSE
  "CMakeFiles/standalone_arm.dir/standalone_arm.cpp.o"
  "CMakeFiles/standalone_arm.dir/standalone_arm.cpp.o.d"
  "standalone_arm"
  "standalone_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standalone_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
