file(REMOVE_RECURSE
  "CMakeFiles/dynamic_scaling.dir/dynamic_scaling.cpp.o"
  "CMakeFiles/dynamic_scaling.dir/dynamic_scaling.cpp.o.d"
  "dynamic_scaling"
  "dynamic_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
