file(REMOVE_RECURSE
  "CMakeFiles/malleable_mpi.dir/malleable_mpi.cpp.o"
  "CMakeFiles/malleable_mpi.dir/malleable_mpi.cpp.o.d"
  "malleable_mpi"
  "malleable_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malleable_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
