# Empty compiler generated dependencies file for malleable_mpi.
# This may be replaced when dependencies are built.
