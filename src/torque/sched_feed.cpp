#include "torque/sched_feed.hpp"

namespace dac::torque {

void put_dyn_queue_entry(util::ByteWriter& w, const DynQueueEntry& d) {
  w.put<std::uint64_t>(d.dyn_id);
  w.put<std::uint64_t>(d.job);
  w.put<std::int32_t>(d.count);
  w.put<std::int32_t>(d.min_count);
  w.put_enum(d.kind);
  w.put<double>(d.arrival);
  w.put<std::uint64_t>(d.trace_id);
  w.put<std::uint64_t>(d.origin_span);
}

DynQueueEntry get_dyn_queue_entry(util::ByteReader& r) {
  DynQueueEntry d;
  d.dyn_id = r.get<std::uint64_t>();
  d.job = r.get<std::uint64_t>();
  d.count = r.get<std::int32_t>();
  d.min_count = r.get<std::int32_t>();
  d.kind = r.get_enum<NodeKind>();
  d.arrival = r.get<double>();
  d.trace_id = r.get<std::uint64_t>();
  d.origin_span = r.get<std::uint64_t>();
  return d;
}

void put_sched_delta(util::ByteWriter& w, const SchedDelta& d) {
  w.put<std::uint64_t>(d.epoch);
  w.put_bool(d.full);
  w.put<double>(d.now);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(d.jobs.size()));
  for (const auto& j : d.jobs) put_job_info(w, j);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(d.nodes.size()));
  for (const auto& n : d.nodes) put_node_status(w, n);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(d.dyn.size()));
  for (const auto& e : d.dyn) put_dyn_queue_entry(w, e);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(d.elastic.size()));
  for (const auto& v : d.elastic) elastic::put_job_view(w, v);
}

SchedDelta get_sched_delta(util::ByteReader& r) {
  SchedDelta d;
  d.epoch = r.get<std::uint64_t>();
  d.full = r.get_bool();
  d.now = r.get<double>();
  const auto nj = r.get<std::uint32_t>();
  d.jobs.reserve(nj);
  for (std::uint32_t i = 0; i < nj; ++i) d.jobs.push_back(get_job_info(r));
  const auto nn = r.get<std::uint32_t>();
  d.nodes.reserve(nn);
  for (std::uint32_t i = 0; i < nn; ++i) {
    d.nodes.push_back(get_node_status(r));
  }
  const auto nd = r.get<std::uint32_t>();
  d.dyn.reserve(nd);
  for (std::uint32_t i = 0; i < nd; ++i) {
    d.dyn.push_back(get_dyn_queue_entry(r));
  }
  const auto ne = r.get<std::uint32_t>();
  d.elastic.reserve(ne);
  for (std::uint32_t i = 0; i < ne; ++i) {
    d.elastic.push_back(elastic::get_job_view(r));
  }
  return d;
}

void put_dyn_decisions(util::ByteWriter& w,
                       const std::vector<DynDecision>& ds) {
  w.put<std::uint32_t>(static_cast<std::uint32_t>(ds.size()));
  for (const auto& d : ds) {
    w.put<std::uint64_t>(d.dyn_id);
    w.put_bool(d.grant);
    w.put<std::uint64_t>(d.pickup_ns);
    w.put_string_vector(d.hosts);
    w.put<std::uint64_t>(d.trace_id);
    w.put<std::uint64_t>(d.span);
  }
}

std::vector<DynDecision> get_dyn_decisions(util::ByteReader& r) {
  const auto n = r.get<std::uint32_t>();
  std::vector<DynDecision> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    DynDecision d;
    d.dyn_id = r.get<std::uint64_t>();
    d.grant = r.get_bool();
    d.pickup_ns = r.get<std::uint64_t>();
    d.hosts = r.get_string_vector();
    d.trace_id = r.get<std::uint64_t>();
    d.span = r.get<std::uint64_t>();
    out.push_back(std::move(d));
  }
  return out;
}

DirtyTracker::Fetch DirtyTracker::begin_fetch(std::uint64_t client_epoch,
                                              bool force_full) {
  Fetch f;
  f.full = force_full || client_epoch != epoch_;
  if (!f.full) f.jobs.assign(dirty_.begin(), dirty_.end());
  dirty_.clear();
  f.epoch = ++epoch_;
  return f;
}

}  // namespace dac::torque
