// Per-node task table: which processes belong to which job on which node.
// This stands in for the OS process table a real pbs_mom consults when it
// "kills all the tasks running on its host" (paper §III-D, DISJOIN_JOB).
// Populated by whoever launches processes for a job (the mother superior for
// static daemons and job scripts; the resource-management library for
// MPI_Comm_spawn'ed daemons), consumed by moms on DISJOIN / job teardown.
#pragma once

#include <map>
#include <vector>

#include "torque/job.hpp"
#include "util/sync.hpp"
#include "vnet/node.hpp"

namespace dac::torque {

class TaskRegistry {
 public:
  // `set_id` groups tasks belonging to one dynamic allocation (the client
  // id); 0 marks base job tasks (scripts, static daemons).
  void add(JobId job, vnet::NodeId node, vnet::ProcessPtr process,
           std::uint64_t set_id = 0);

  // Cooperatively kills and joins tasks of `job` on `node`. With
  // set_id == 0 every task of the job dies (full DISJOIN); otherwise only
  // the tasks of that dynamic set (set-wise release).
  void kill_node_tasks(JobId job, vnet::NodeId node, std::uint64_t set_id = 0);
  // Kills and joins every task of `job` on every node.
  void kill_job(JobId job);

  // Blocks until every registered task of `job` finished (without killing).
  void join_job(JobId job);

  [[nodiscard]] std::size_t task_count(JobId job) const;
  // Drops finished tasks of all jobs from the table.
  void reap();

 private:
  struct Task {
    vnet::ProcessPtr process;
    std::uint64_t set_id = 0;
  };
  std::vector<vnet::ProcessPtr> take(JobId job, vnet::NodeId node,
                                     bool all_nodes, std::uint64_t set_id);

  mutable Mutex mu_{"tasks"};
  std::map<std::pair<JobId, vnet::NodeId>, std::vector<Task>> tasks_
      DAC_GUARDED_BY(mu_);
};

}  // namespace dac::torque
