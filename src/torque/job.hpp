// Job model of the TORQUE-like resource manager: resource requests (with the
// paper's `acpn` extension for network-attached accelerators per compute
// node), job states (with the paper's special DYNQUEUED state for runtime
// requests), and the serializable job records exchanged between client,
// server, scheduler and moms.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace dac::torque {

using JobId = std::uint64_t;
inline constexpr JobId kInvalidJob = 0;

enum class JobState : std::uint8_t {
  kQueued = 0,     // waiting for resources (qsub)
  kDynQueued,      // a running job waiting for a dynamic allocation (paper)
  kRunning,
  kExiting,        // tear-down in progress
  kComplete,
  kCancelled,
};

[[nodiscard]] const char* job_state_name(JobState s);

// qsub -l nodes=<nodes>:ppn=<ppn>:acpn=<acpn>, walltime=<walltime>
struct ResourceRequest {
  int nodes = 1;  // compute nodes (k)
  int ppn = 1;    // processes per node
  int acpn = 0;   // network-attached accelerators per compute node (paper)
  std::chrono::milliseconds walltime{60'000};  // estimate, used by backfill

  [[nodiscard]] int total_accelerators() const { return nodes * acpn; }
};

struct JobSpec {
  std::string name = "job";
  std::string owner = "user";
  // Name of a registered job program (the "job script"); empty for jobs
  // that exist only as scheduling load (the paper's Figure 8 background).
  std::string program;
  util::Bytes program_args;
  ResourceRequest resources;
  int priority = 0;  // site/QoS priority contribution
};

// Server-side job record; also what qstat returns.
struct JobInfo {
  JobId id = kInvalidJob;
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::vector<std::string> compute_hosts;
  std::vector<std::string> accel_hosts;  // statically assigned accelerators
  // Dynamically added hosts currently held (accelerators — or compute
  // nodes for malleable grants), newest last.
  std::vector<std::string> dyn_accel_hosts;
  // Seconds since server start (the server's clock), for metrics/priority.
  double submit_time = 0.0;
  double start_time = -1.0;
  double end_time = -1.0;
  // 0 = clean completion; 1 = killed (qdel); 2 = walltime exceeded.
  int exit_status = 0;
  // How many times this job was requeued after a compute-node failure
  // (bounded by BatchConfig::job_requeue_limit; fault tolerance).
  int requeues = 0;
  // Trace context captured at submission (src/trace): the scheduler and the
  // launch path parent their spans on it, so one trace id follows the job
  // from qsub to completion. 0 = submission was not traced.
  std::uint64_t trace_id = 0;
  std::uint64_t origin_span = 0;
};

inline constexpr int kExitOk = 0;
inline constexpr int kExitKilled = 1;
inline constexpr int kExitWalltime = 2;

void put_resource_request(util::ByteWriter& w, const ResourceRequest& r);
ResourceRequest get_resource_request(util::ByteReader& r);

void put_job_spec(util::ByteWriter& w, const JobSpec& s);
JobSpec get_job_spec(util::ByteReader& r);

void put_job_info(util::ByteWriter& w, const JobInfo& j);
JobInfo get_job_info(util::ByteReader& r);

}  // namespace dac::torque
