// The high-throughput scheduler feed: wire structures and server-side
// bookkeeping for the incremental (delta-driven) Maui cycle and for batched
// dynamic-request servicing.
//
// kGetSched replaces the kGetQueue + kGetNodes pair with one fetch that is
// either *full* (every non-terminal job, every node) or a *delta* (only the
// jobs and nodes whose scheduler-visible state changed since the previous
// fetch). The server feeds DirtyTracker from its mutation handlers and the
// NodeDb's own dirty sets; the scheduler folds deltas into a QueueMirror
// (src/maui/queue_mirror.hpp) that reconstructs bit-identical fetch inputs —
// the incremental ≡ full-rescan contract pinned by tests/maui.
//
// kDynDecide carries one cycle's worth of dynamic grant/reject decisions in
// a single message, applied under one server lock acquisition instead of one
// kRunDyn/kRejectDyn round-trip per request (docs/SCHEDULING.md).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "elastic/protocol.hpp"
#include "torque/job.hpp"
#include "torque/node_db.hpp"
#include "util/bytes.hpp"

namespace dac::torque {

// A dynamic request as the scheduler sees it in the queue snapshot.
struct DynQueueEntry {
  std::uint64_t dyn_id = 0;
  JobId job = kInvalidJob;
  int count = 0;      // requested
  int min_count = 0;  // smallest acceptable grant (== count: all-or-nothing)
  NodeKind kind = NodeKind::kAccelerator;  // pool to allocate from
  double arrival = 0.0;  // server seconds; FIFO order for the scheduler
  // Trace context captured at the DYN_GET, so the scheduler's decision span
  // joins the requester's trace (src/trace).
  std::uint64_t trace_id = 0;
  std::uint64_t origin_span = 0;
};

void put_dyn_queue_entry(util::ByteWriter& w, const DynQueueEntry& d);
DynQueueEntry get_dyn_queue_entry(util::ByteReader& r);

// What kGetSched returns. Dynamic requests and elastic views are always
// shipped complete — both are bounded by the *active* request/registration
// count, not the queue length — while jobs and nodes are delta'd.
struct SchedDelta {
  std::uint64_t epoch = 0;  // echo into the next fetch for a delta
  bool full = true;
  double now = 0.0;  // server clock, for backfill horizons
  // full: every non-terminal job. delta: every job touched since the last
  // fetch, *including* newly-terminal ones so the mirror can drop them.
  std::vector<JobInfo> jobs;
  // full: every node. delta: nodes whose scheduler-visible status changed.
  std::vector<NodeStatus> nodes;
  std::vector<DynQueueEntry> dyn;  // active dynamic requests, FIFO
  std::vector<elastic::JobView> elastic;
};

void put_sched_delta(util::ByteWriter& w, const SchedDelta& d);
SchedDelta get_sched_delta(util::ByteReader& r);

// One scheduler decision inside a kDynDecide batch. The span fields carry
// the scheduler's grant/reject decision span so the server-side application
// (slot assignment, MOM_DYN_ADD, the dynget reply) stays inside the
// requester's causal tree.
struct DynDecision {
  std::uint64_t dyn_id = 0;
  bool grant = false;
  std::uint64_t pickup_ns = 0;  // scheduler pickup, for the timing split
  std::vector<std::string> hosts;  // grant only
  std::uint64_t trace_id = 0;
  std::uint64_t span = 0;
};

void put_dyn_decisions(util::ByteWriter& w,
                       const std::vector<DynDecision>& ds);
std::vector<DynDecision> get_dyn_decisions(util::ByteReader& r);

// Server-side dirty-job bookkeeping for the incremental feed. Not
// thread-safe: the server mutates it under its state lock. There is one
// consumer (the registered scheduler), so one epoch counter and one dirty
// set suffice: a fetch whose client epoch matches the tracker's is served
// the accumulated delta; anything else (first contact, a restarted
// scheduler, a forced full rescan) is served the full state. Either way the
// dirty set drains and the epoch advances.
class DirtyTracker {
 public:
  void touch(JobId id) { dirty_.insert(id); }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t pending() const { return dirty_.size(); }

  struct Fetch {
    bool full = true;
    std::uint64_t epoch = 0;       // new epoch to stamp into the reply
    std::vector<JobId> jobs;       // dirty ids (ascending), delta fetches
  };
  Fetch begin_fetch(std::uint64_t client_epoch, bool force_full);

 private:
  std::set<JobId> dirty_;
  std::uint64_t epoch_ = 1;
};

}  // namespace dac::torque
