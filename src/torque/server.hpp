// The pbs_server daemon: owns the job table and node database, dispatches
// client (IFL) requests, relays scheduler decisions to mother-superior moms,
// and implements the paper's dynamic-allocation extensions — the DYNQUEUED
// job state, serialized per-job dynamic requests, client-ids for dynamic
// accelerator sets, and the forward-then-reply ordering of §III-D.
//
// The server runs on a svc::ServiceLoop. Mutating and dynamic requests stay
// on the loop's single serialized lane — the serialization point the paper's
// Figure 9 measures — while read-only requests (qstat, pbsnodes, heartbeats)
// can be moved to a worker pool via ServiceTuning::server_read_workers. With
// the default of 0 workers the server is exactly the paper's single-threaded
// daemon.
//
// High-throughput extensions (docs/SCHEDULING.md): the node database is
// sharded and internally synchronized, so heartbeats and node reads bypass
// the server state lock entirely; job mutations feed a DirtyTracker that
// serves the scheduler incremental kGetSched deltas; and one kDynDecide
// message applies a whole cycle's dynamic grant/reject decisions under a
// single lock acquisition. A WakeGate coalesces scheduler wakeups to at
// most one in flight.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "elastic/broker.hpp"
#include "svc/config.hpp"
#include "svc/metrics.hpp"
#include "svc/service_loop.hpp"
#include "svc/wake_gate.hpp"
#include "torque/batch_config.hpp"
#include "torque/job.hpp"
#include "torque/node_db.hpp"
#include "torque/protocol.hpp"
#include "torque/rpc.hpp"
#include "torque/sched_feed.hpp"
#include "vnet/node.hpp"

namespace dac::torque {

// Host reference shipped inside MOM_RUN_JOB / MOM_DYN_ADD so moms can reach
// each other and the RM library knows spawn placements.
struct HostRef {
  std::string hostname;
  vnet::NodeId node = vnet::kInvalidNode;
  vnet::Address mom;
};

void put_host_refs(util::ByteWriter& w, const std::vector<HostRef>& hosts);
std::vector<HostRef> get_host_refs(util::ByteReader& r);

// What GET_QUEUE returns to the scheduler (the legacy full-fetch path; the
// incremental path is SchedDelta in sched_feed.hpp).
struct QueueSnapshot {
  double now = 0.0;                   // server clock, for backfill horizons
  std::vector<JobInfo> jobs;          // every known job, all states
  std::vector<DynQueueEntry> dyn;     // active dynamic requests, FIFO
  // Elasticity views of registered jobs (src/elastic), for the scheduler's
  // grow/shrink policies.
  std::vector<elastic::JobView> elastic;
};

void put_queue_snapshot(util::ByteWriter& w, const QueueSnapshot& s);
QueueSnapshot get_queue_snapshot(util::ByteReader& r);

class PbsServer {
 public:
  // Opens the server endpoint on `node` immediately so the address is known
  // before any mom or client starts; run() must then be invoked inside a
  // process on that node. `node_db_shards <= 0` uses NodeDb::kDefaultShards.
  PbsServer(vnet::Node& node, BatchTiming timing,
            svc::ServiceTuning tuning = {}, int node_db_shards = 0);

  PbsServer(const PbsServer&) = delete;
  PbsServer& operator=(const PbsServer&) = delete;

  [[nodiscard]] const vnet::Address& address() const {
    return endpoint_->address();
  }

  // Per-request metrics recorded by the service loop (counts, errors,
  // latency). Safe to snapshot from any thread while the server runs.
  [[nodiscard]] const svc::MetricsRegistry& metrics() const { return metrics_; }
  // Non-const access so the harness can also route fault-injection event
  // counts (FaultPlan::set_metrics) into the server's registry.
  [[nodiscard]] svc::MetricsRegistry& metrics() { return metrics_; }

  // The daemon loop; returns when the owning process is stopped.
  void run(vnet::Process& proc);

 private:
  struct DynRecord {
    std::uint64_t id = 0;
    JobId job = kInvalidJob;
    int count = 0;
    int min_count = 0;
    NodeKind kind = NodeKind::kAccelerator;
    svc::Responder responder;       // deferred pbs_dynget reply
    std::uint64_t arrival_ns = 0;   // steady clock, for the timing split
    double arrival_s = 0.0;         // server seconds, for FIFO display
    bool active = false;            // visible to the scheduler
    // Requester's trace context, forwarded in the queue snapshot.
    std::uint64_t trace_id = 0;
    std::uint64_t origin_span = 0;
  };

  struct JobRecord {
    JobInfo info;
    vnet::Address ms;  // mother superior's mom
    bool ms_valid = false;
    std::map<std::uint64_t, std::vector<std::string>> dyn_sets;  // client-id
    std::deque<std::uint64_t> dyn_waiting;  // queued dyn request ids
    std::uint64_t dyn_active = 0;           // currently serviced dyn id
  };

  void register_handlers(svc::ServiceLoop& loop);

  // IFL / mom-facing handlers. All run with state_mu_ held (shared for the
  // pure reads, exclusive otherwise); the REQUIRES annotations document and
  // (under clang) enforce that. Handlers that touch only the internally
  // synchronized NodeDb (heartbeats, node listings) carry no annotation and
  // run lock-free on the read pool.
  void on_submit(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES(state_mu_);
  void on_stat_jobs(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES_SHARED(state_mu_);
  void on_stat_job(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES_SHARED(state_mu_);
  void on_stat_nodes(const rpc::Request& req, svc::Responder& resp);
  void on_delete_job(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES(state_mu_);
  void on_alter_job(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES(state_mu_);
  void on_dynget(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES(state_mu_);
  void on_dynfree(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES(state_mu_);
  void on_register_node(const rpc::Request& req, svc::Responder& resp);
  void on_register_scheduler(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES(state_mu_);
  void on_job_started(const rpc::Request& req) DAC_REQUIRES(state_mu_);
  void on_job_complete(const rpc::Request& req) DAC_REQUIRES(state_mu_);
  void on_ms_release_done(const rpc::Request& req) DAC_REQUIRES(state_mu_);
  void on_heartbeat(const rpc::Request& req);

  // Scheduler-facing handlers.
  void on_get_queue(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES(state_mu_);
  void on_get_sched(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES(state_mu_);
  void on_get_nodes(const rpc::Request& req, svc::Responder& resp);
  void on_run_job(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES(state_mu_);
  void on_run_dyn(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES(state_mu_);
  void on_reject_dyn(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES(state_mu_);
  void on_dyn_decide(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES(state_mu_);

  // Decision application shared by the per-request handlers and the
  // kDynDecide batch. kConflict means the allocation raced a concurrent
  // assignment; the request is then already finished as rejected.
  enum class DynApply { kApplied, kUnknownRequest, kJobVanished, kConflict };
  DynApply apply_dyn_grant(std::uint64_t dyn_id, std::uint64_t pickup_ns,
                           const std::vector<std::string>& hosts)
      DAC_REQUIRES(state_mu_);
  // False only when the request vanished (stale decision).
  bool apply_dyn_reject(std::uint64_t dyn_id, std::uint64_t pickup_ns)
      DAC_REQUIRES(state_mu_);

  // Queue-snapshot building blocks shared by kGetQueue and kGetSched.
  [[nodiscard]] std::vector<DynQueueEntry> dyn_entries() const
      DAC_REQUIRES_SHARED(state_mu_);
  [[nodiscard]] std::vector<elastic::JobView> elastic_views() const
      DAC_REQUIRES_SHARED(state_mu_);

  // Marks `id`'s scheduler-visible state changed since the last fetch.
  // Every mutation of a JobRecord's info must route through here or the
  // incremental feed goes stale — the equivalence suite (tests/maui) exists
  // to catch exactly that.
  void touch_job(JobId id) DAC_REQUIRES(state_mu_) { sched_feed_.touch(id); }

  // ---- elastic negotiation (src/elastic) -------------------------------
  // kElastRegister/kElastPropose/kElastAck handlers. Offers never block the
  // serialized lane: an offer is a notification to the job's agent, the ack
  // arrives as a separate request, and stale offers are swept on the
  // liveness tick.
  void on_elast_register(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES(state_mu_);
  void on_elast_propose(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES(state_mu_);
  void on_elast_ack(const rpc::Request& req, svc::Responder& resp)
      DAC_REQUIRES(state_mu_);
  // Commits an accepted grow offer: turns the reservation into a dynamic
  // set, notifies the mother superior, tells the agent the new footprint.
  void commit_elastic_grow(JobRecord& rec,
                           const elastic::Broker::OfferRecord& offer)
      DAC_REQUIRES(state_mu_);
  // Reverts expired offers (grow: releases the reserved slots).
  void sweep_elastic_offers() DAC_REQUIRES(state_mu_);

  // Releases dynamic set `client_id` of `rec` the way on_dynfree does: dead
  // hosts freed directly, the live remainder forwarded to the mother
  // superior. Returns true when forwarded (MS_RELEASE_DONE completes it
  // later), false when the set was freed and erased here.
  bool release_dyn_set(JobId job_id, JobRecord& rec, std::uint64_t client_id)
      DAC_REQUIRES(state_mu_);

  void wake_scheduler() DAC_REQUIRES(state_mu_);

  // ---- failure detector + recovery (fault-tolerance extension) ---------
  // Advances the suspect/down detector from the liveness tick.
  void refresh_liveness() DAC_REQUIRES(state_mu_);
  // Recovery entry point once a node is declared down, branching on kind.
  void handle_node_down(const std::string& hostname) DAC_REQUIRES(state_mu_);
  // Compute node died: requeue its jobs (bounded by job_requeue_limit) or
  // fail them, freeing everything they held.
  void fail_jobs_on(const std::string& hostname) DAC_REQUIRES(state_mu_);
  // Accelerator node died: reclaim its slots from every job server-side;
  // the application learns through the DAC frontend and may re-issue dynget.
  void reclaim_accel_slots(const std::string& hostname)
      DAC_REQUIRES(state_mu_);
  // Rejects the active and any waiting dynamic requests of `job`.
  void reject_job_dyns(JobRecord& job) DAC_REQUIRES(state_mu_);
  // Records a synthetic detector/recovery event in the metrics table.
  void record_event(MsgType ev) { metrics_.record(as_u32(ev), 0.0); }

  void activate_next_dyn(JobRecord& job) DAC_REQUIRES(state_mu_);
  void finish_dyn(DynRecord& dyn, const DynGetReply& reply)
      DAC_REQUIRES(state_mu_);
  [[nodiscard]] double now_s() const;
  [[nodiscard]] std::vector<HostRef> host_refs(
      const std::vector<std::string>& hostnames) const;

  vnet::Node& node_;
  BatchTiming timing_;
  svc::ServiceTuning tuning_;
  std::unique_ptr<vnet::Endpoint> endpoint_;
  std::chrono::steady_clock::time_point start_;
  svc::MetricsRegistry metrics_;

  // Guards the job-side server state below. The mutating lane takes it
  // exclusively; pooled read-only handlers take it shared. The NodeDb is
  // NOT under this lock: it is sharded and internally synchronized, so
  // heartbeat and pbsnodes traffic never contends with job mutations.
  SharedMutex state_mu_{"server.state"};

  NodeDb nodes_;  // internally synchronized (see node_db.hpp)
  elastic::Broker elastic_ DAC_GUARDED_BY(state_mu_);
  std::map<JobId, JobRecord> jobs_ DAC_GUARDED_BY(state_mu_);
  std::map<std::uint64_t, DynRecord> dyn_ DAC_GUARDED_BY(state_mu_);
  // Active dyn ids, FIFO.
  std::deque<std::uint64_t> dyn_fifo_ DAC_GUARDED_BY(state_mu_);
  // Dirty-job bookkeeping for the incremental scheduler feed.
  DirtyTracker sched_feed_ DAC_GUARDED_BY(state_mu_);
  // Wakeup coalescing: at most one kSchedWake in flight.
  svc::WakeGate wake_gate_;

  vnet::Address scheduler_ DAC_GUARDED_BY(state_mu_);
  bool scheduler_known_ DAC_GUARDED_BY(state_mu_) = false;

  JobId next_job_id_ DAC_GUARDED_BY(state_mu_) = 1;
  std::uint64_t next_dyn_id_ DAC_GUARDED_BY(state_mu_) = 1;
  std::uint64_t next_client_id_ DAC_GUARDED_BY(state_mu_) = 1;
};

}  // namespace dac::torque
