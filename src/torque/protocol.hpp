// Wire protocol of the batch system. All batch traffic uses vnet messages
// with these type codes and a [request-id, body] envelope so callers can
// match replies. The message names deliberately mirror the paper's protocol
// vocabulary: JOIN_JOB, DYNJOIN_JOB, DISJOIN_JOB, pbs_dynget, pbs_dynfree.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"
#include "vnet/message.hpp"

namespace dac::torque {

// vnet Message.type values. Grouped by conversation.
enum class MsgType : std::uint32_t {
  // client / mom / scheduler -> server
  kSubmit = 0x5430'0001,      // JobSpec -> job id
  kStatJobs,                  // -> vector<JobInfo>
  kStatNodes,                 // -> vector<NodeStatus>
  kDeleteJob,                 // job id -> ok
  kAlterJob,                  // job id + attribute updates (qalter)
  kDynGet,                    // job id, count, collective -> DynGetReply
  kDynFree,                   // job id, client id -> ok
  kRegisterNode,              // NodeStatus (from mom at startup)
  kRegisterScheduler,         // scheduler endpoint announces itself
  kJobStarted,                // MS -> server: job id
  kJobComplete,               // MS -> server: job id
  kMsDynReady,                // MS -> server: dynjoin finished (req id)
  kMsReleaseDone,             // MS -> server: disjoin finished (client id)
  kStatJob,                   // job id -> found flag + JobInfo

  // scheduler <-> server
  // Consumed by the scheduler's plain wake endpoint, not a ServiceLoop.
  kSchedWake = 0x5430'0100,   // NOLINT-DACSCHED(handler-coverage)
  kGetQueue,                  // scheduler -> server -> QueueSnapshot
  kGetNodes,                  // scheduler -> server -> vector<NodeStatus>
  kRunJob,                    // scheduler -> server: job id + host lists
  kRunDyn,                    // scheduler -> server: dyn req id + hosts
  kRejectDyn,                 // scheduler -> server: dyn req id
  // High-throughput extensions (docs/SCHEDULING.md): one combined
  // (incremental) state fetch per cycle, one batched decision message per
  // cycle. Wire structs live in sched_feed.hpp.
  kGetSched,                  // scheduler -> server: epoch -> SchedDelta
  kDynDecide,                 // scheduler -> server: vector<DynDecision>

  // server -> mom
  kMomRunJob = 0x5430'0200,   // full job info; recipient becomes MS
  kMomDynAdd,                 // MS: job id, client id, new accel hosts
  kMomRelease,                // MS: job id, client id, hosts to disjoin
  kMomKillJob,                // any mom: job id

  // mom <-> mom (the paper's join protocol)
  // The three *Ack codes are reply envelopes consumed by the MS's rpc::call,
  // never dispatched through a ServiceLoop.
  kJoinJob = 0x5430'0300,     // MS -> sister: job info
  kJoinAck,                   // NOLINT-DACSCHED(handler-coverage)
  kDynJoinJob,                // MS -> new accel mom: job id, client id
  kDynJoinAck,                // NOLINT-DACSCHED(handler-coverage)
  kDisjoinJob,                // MS -> departing mom: job id, client id
  kDisjoinAck,                // NOLINT-DACSCHED(handler-coverage)
  kJobUpdate,                 // MS -> existing sisters: updated host set

  // job task wrapper -> mom
  kTaskDone = 0x5430'0400,    // rank finished: job id, rank

  // mom -> server, periodic liveness (fault-tolerance extension)
  kMomHeartbeat = 0x5430'0450,  // hostname
  kBackendHeartbeat,            // dacc backend daemon -> server: hostname

  // generic reply envelope
  kReply = 0x5430'0500,

  // Synthetic event codes: never sent on the wire. They exist so the fault
  // subsystem's detection/recovery events surface in the same per-RPC
  // MetricsRegistry table as real traffic (record() with latency 0).
  kEvNodeSuspect = 0x5430'0600,
  kEvNodeDown,
  kEvNodeUp,
  kEvJobRequeue,
  kEvJobFailed,
  kEvAcReclaim,

  // Elastic negotiation (scheduler-initiated grow/shrink, src/elastic):
  // offer -> ack/nack -> reconfigure. Register/Propose/Ack are handled by
  // the server's ServiceLoop; Offer/Reconfig by the job-side ElasticAgent
  // loop. Wire structs live in elastic/protocol.hpp.
  kElastRegister = 0x5430'0700,  // agent -> server: job, address, caps
  kElastPropose,                 // maui -> server: grow/shrink proposal
  kElastOffer,                   // server -> agent: offer id, kind, hosts
  kElastAck,                     // agent -> server: offer id, accept flag
  kElastReconfig,                // server -> agent: committed new footprint
};

inline constexpr std::uint32_t as_u32(MsgType t) {
  return static_cast<std::uint32_t>(t);
}

// Reply status codes carried in the reply envelope.
enum class ReplyCode : std::uint8_t {
  kOk = 0,
  kError = 1,          // generic failure; message string follows
  kRejected = 2,       // dynamic request rejected (not enough resources)
  kUnknownJob = 3,
  kBadRequest = 4,
};

// Result of pbs_dynget: either rejected, or the set of allocated accelerator
// hosts plus the client-id identifying the set (paper §III-D). The server
// also reports its queue-wait and service time split so the benchmark
// harness can reproduce the stacked bars of Figures 7(b)/8.
struct DynGetReply {
  bool granted = false;
  std::uint64_t client_id = 0;
  std::vector<std::string> hosts;        // accelerator hostnames
  std::vector<std::int32_t> host_nodes;  // vnet node ids, same order
  double queue_wait_seconds = 0.0;   // arrival -> scheduler pickup
  double service_seconds = 0.0;      // scheduler pickup -> reply sent
};

void put_dynget_reply(util::ByteWriter& w, const DynGetReply& r);
[[nodiscard]] DynGetReply get_dynget_reply(util::ByteReader& r);

}  // namespace dac::torque
