// Timing knobs of the batch system. These model where a real deployment
// spends time — server request processing, per-job scheduler work, mom join
// handling, daemon startup — and are the calibration surface for the paper's
// Figures 7-9. Two profiles: fast() keeps tests quick; calibrated() is tuned
// so the benchmark harness lands in the paper's sub-second ranges.
#pragma once

#include <chrono>

namespace dac::torque {

struct BatchTiming {
  using usec = std::chrono::microseconds;
  using msec = std::chrono::milliseconds;

  // pbs_server: processing cost charged per incoming request.
  usec server_service_cost{100};
  // pbs_mom: cost of handling a JOIN_JOB / DYNJOIN_JOB for one host.
  usec mom_join_cost{200};

  // Maui: cost of evaluating one queued job during a scheduling cycle
  // (priority computation + node matching). Drives Figure 8: a dynamic
  // request arriving mid-cycle waits for cycle completion.
  usec sched_job_eval_cost{200};
  // Maui: base cost of servicing one dynamic request (Figure 9's steps).
  usec sched_dyn_base_cost{200};
  // Maui: additional cost per node allocated to a request (Figure 7(b)'s
  // growth with the number of requested accelerators).
  usec sched_per_node_cost{100};
  // Maui: idle poll interval. Submissions also wake the scheduler directly.
  msec sched_cycle_interval{50};

  // Startup cost of a statically started accelerator daemon. The batch
  // system execs them host by host, hence the per-rank stagger (Figure 7(a)
  // waiting time grows with the accelerator count).
  usec static_daemon_start_delay{2000};
  usec static_daemon_start_stagger{1000};
  // Startup cost of an MPI_Comm_spawn'ed daemon (dynamic path): the MPI
  // runtime starts ranks in parallel, so no stagger (Figure 7(b)'s flat
  // MPI-operations share).
  usec spawned_daemon_start_delay{1000};
  // Startup cost of a job-script process.
  usec job_start_delay{200};

  // Fault tolerance: moms heartbeat at this interval; the server marks a
  // node down once its last heartbeat is older than
  // heartbeat_stale_factor * interval. The factor is generous because a
  // mother superior busy setting a job up heartbeats only between
  // messages — declaring a busy node dead would kill its jobs.
  msec mom_heartbeat_interval{25};
  int heartbeat_stale_factor = 40;
  // A node whose heartbeat is older than heartbeat_suspect_factor *
  // interval is "suspect": excluded from new placements but nothing is
  // reclaimed. Must be < heartbeat_stale_factor so suspicion precedes the
  // down declaration (flapping links degrade placement, not jobs).
  int heartbeat_suspect_factor = 20;
  // How often a job whose compute node is declared down may be requeued
  // before being failed. 0 (the default) preserves the historical behavior:
  // node death cancels the job outright. Recovery tests opt in with >= 1.
  int job_requeue_limit = 0;
  // How often a mother superior checks its jobs against their walltime.
  // Zero means "every heartbeat interval". Kept separate so tests can speed
  // up enforcement without also shrinking the liveness window.
  msec mom_walltime_check_interval{0};

  // Elastic negotiation: how long a pending offer (and its grow-side slot
  // reservation) may wait for the job agent's ack before the server reverts
  // it. Swept on the server's liveness tick, so effective resolution is
  // mom_heartbeat_interval.
  msec elastic_offer_timeout{2'000};

  // Test profile: everything fast, shapes preserved.
  static BatchTiming fast() { return BatchTiming{}; }

  // Paper-like profile: sub-second static/dynamic allocation totals on an
  // 8-node virtual cluster.
  static BatchTiming calibrated() {
    BatchTiming t;
    t.server_service_cost = usec{2'000};
    t.mom_join_cost = usec{4'000};
    t.sched_job_eval_cost = usec{25'000};
    t.sched_dyn_base_cost = usec{120'000};
    t.sched_per_node_cost = usec{30'000};
    t.sched_cycle_interval = msec{100};
    t.static_daemon_start_delay = usec{90'000};
    t.static_daemon_start_stagger = usec{35'000};
    t.spawned_daemon_start_delay = usec{60'000};
    t.job_start_delay = usec{10'000};
    t.mom_heartbeat_interval = msec{200};
    t.heartbeat_stale_factor = 5;  // 1 s to down-detection
    t.heartbeat_suspect_factor = 3;  // 600 ms to suspicion
    return t;
  }
};

}  // namespace dac::torque
