// What the mother superior hands to each rank of a starting job script: the
// job identity, the program to run, the batch environment (server and MS
// addresses) and the statically allocated host sets. The core job wrapper
// deserializes this and builds the JobContext the user program sees.
#pragma once

#include <string>
#include <vector>

#include "torque/job.hpp"
#include "torque/server.hpp"

namespace dac::torque {

struct JobLaunchInfo {
  JobId job = kInvalidJob;
  std::string program;
  util::Bytes program_args;
  int nodes = 1;
  int ppn = 1;
  int acpn = 0;
  vnet::Address server;
  vnet::Address ms_mom;
  std::vector<HostRef> compute_hosts;
  // Static accelerator hosts, k * acpn entries; the slice
  // [i*acpn, (i+1)*acpn) belongs to compute node i.
  std::vector<HostRef> accel_hosts;
  // Trace context of the job's submission (src/trace): the job wrapper roots
  // its job.run span here so application spans join the submit trace.
  std::uint64_t trace_id = 0;
  std::uint64_t origin_span = 0;
};

inline void put_launch_info(util::ByteWriter& w, const JobLaunchInfo& info) {
  w.put<std::uint64_t>(info.job);
  w.put_string(info.program);
  w.put_bytes(info.program_args);
  w.put<std::int32_t>(info.nodes);
  w.put<std::int32_t>(info.ppn);
  w.put<std::int32_t>(info.acpn);
  w.put<std::int32_t>(info.server.node);
  w.put<std::int32_t>(info.server.port);
  w.put<std::int32_t>(info.ms_mom.node);
  w.put<std::int32_t>(info.ms_mom.port);
  put_host_refs(w, info.compute_hosts);
  put_host_refs(w, info.accel_hosts);
  w.put<std::uint64_t>(info.trace_id);
  w.put<std::uint64_t>(info.origin_span);
}

inline JobLaunchInfo get_launch_info(util::ByteReader& r) {
  JobLaunchInfo info;
  info.job = r.get<std::uint64_t>();
  info.program = r.get_string();
  info.program_args = r.get_bytes();
  info.nodes = r.get<std::int32_t>();
  info.ppn = r.get<std::int32_t>();
  info.acpn = r.get<std::int32_t>();
  info.server.node = r.get<std::int32_t>();
  info.server.port = r.get<std::int32_t>();
  info.ms_mom.node = r.get<std::int32_t>();
  info.ms_mom.port = r.get<std::int32_t>();
  info.compute_hosts = get_host_refs(r);
  info.accel_hosts = get_host_refs(r);
  info.trace_id = r.get<std::uint64_t>();
  info.origin_span = r.get<std::uint64_t>();
  return info;
}

// Port name under which the static accelerator daemons of compute node
// `cn_index` of `job` publish their root address (the paper's "port file").
inline std::string static_ac_port_name(JobId job, int cn_index) {
  return "acport-" + std::to_string(job) + "-" + std::to_string(cn_index);
}

}  // namespace dac::torque
