#include "torque/job.hpp"

namespace dac::torque {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "Q";
    case JobState::kDynQueued: return "DQ";
    case JobState::kRunning: return "R";
    case JobState::kExiting: return "E";
    case JobState::kComplete: return "C";
    case JobState::kCancelled: return "X";
  }
  return "?";
}

void put_resource_request(util::ByteWriter& w, const ResourceRequest& r) {
  w.put<std::int32_t>(r.nodes);
  w.put<std::int32_t>(r.ppn);
  w.put<std::int32_t>(r.acpn);
  w.put<std::int64_t>(r.walltime.count());
}

ResourceRequest get_resource_request(util::ByteReader& r) {
  ResourceRequest out;
  out.nodes = r.get<std::int32_t>();
  out.ppn = r.get<std::int32_t>();
  out.acpn = r.get<std::int32_t>();
  out.walltime = std::chrono::milliseconds(r.get<std::int64_t>());
  return out;
}

void put_job_spec(util::ByteWriter& w, const JobSpec& s) {
  w.put_string(s.name);
  w.put_string(s.owner);
  w.put_string(s.program);
  w.put_bytes(s.program_args);
  put_resource_request(w, s.resources);
  w.put<std::int32_t>(s.priority);
}

JobSpec get_job_spec(util::ByteReader& r) {
  JobSpec out;
  out.name = r.get_string();
  out.owner = r.get_string();
  out.program = r.get_string();
  out.program_args = r.get_bytes();
  out.resources = get_resource_request(r);
  out.priority = r.get<std::int32_t>();
  return out;
}

void put_job_info(util::ByteWriter& w, const JobInfo& j) {
  w.put<std::uint64_t>(j.id);
  put_job_spec(w, j.spec);
  w.put_enum(j.state);
  w.put_string_vector(j.compute_hosts);
  w.put_string_vector(j.accel_hosts);
  w.put_string_vector(j.dyn_accel_hosts);
  w.put<double>(j.submit_time);
  w.put<double>(j.start_time);
  w.put<double>(j.end_time);
  w.put<std::int32_t>(j.exit_status);
  w.put<std::int32_t>(j.requeues);
  w.put<std::uint64_t>(j.trace_id);
  w.put<std::uint64_t>(j.origin_span);
}

JobInfo get_job_info(util::ByteReader& r) {
  JobInfo out;
  out.id = r.get<std::uint64_t>();
  out.spec = get_job_spec(r);
  out.state = r.get_enum<JobState>();
  out.compute_hosts = r.get_string_vector();
  out.accel_hosts = r.get_string_vector();
  out.dyn_accel_hosts = r.get_string_vector();
  out.submit_time = r.get<double>();
  out.start_time = r.get<double>();
  out.end_time = r.get<double>();
  out.exit_status = r.get<std::int32_t>();
  out.requeues = r.get<std::int32_t>();
  out.trace_id = r.get<std::uint64_t>();
  out.origin_span = r.get<std::uint64_t>();
  return out;
}

}  // namespace dac::torque
