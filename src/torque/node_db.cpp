#include "torque/node_db.hpp"

#include <algorithm>

#include "trace/trace.hpp"
#include "util/check.hpp"

namespace dac::torque {

const char* liveness_name(Liveness l) {
  switch (l) {
    case Liveness::kUp: return "up";
    case Liveness::kSuspect: return "suspect";
    case Liveness::kDown: return "down";
  }
  return "?";
}

void put_node_status(util::ByteWriter& w, const NodeStatus& n) {
  w.put_string(n.hostname);
  w.put<std::int32_t>(n.node_id);
  w.put_enum(n.kind);
  w.put<std::int32_t>(n.np);
  w.put<std::int32_t>(n.used);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(n.jobs.size()));
  for (const auto j : n.jobs) w.put<std::uint64_t>(j);
  w.put<std::int32_t>(n.mom_addr.node);
  w.put<std::int32_t>(n.mom_addr.port);
  w.put_bool(n.up);
  w.put_enum(n.liveness);
}

NodeStatus get_node_status(util::ByteReader& r) {
  NodeStatus n;
  n.hostname = r.get_string();
  n.node_id = r.get<std::int32_t>();
  n.kind = r.get_enum<NodeKind>();
  n.np = r.get<std::int32_t>();
  n.used = r.get<std::int32_t>();
  const auto count = r.get<std::uint32_t>();
  n.jobs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    n.jobs.push_back(r.get<std::uint64_t>());
  }
  n.mom_addr.node = r.get<std::int32_t>();
  n.mom_addr.port = r.get<std::int32_t>();
  n.up = r.get_bool();
  n.liveness = r.get_enum<Liveness>();
  return n;
}

void NodeDb::upsert(NodeStatus status) {
  auto it = nodes_.find(status.hostname);
  if (it == nodes_.end()) {
    Entry e;
    e.status = std::move(status);
    nodes_.emplace(e.status.hostname, std::move(e));
    return;
  }
  // Refresh identity fields but keep current assignments. A re-registering
  // mom also brings the node back up.
  it->second.status.node_id = status.node_id;
  it->second.status.kind = status.kind;
  it->second.status.np = status.np;
  it->second.status.mom_addr = status.mom_addr;
  it->second.status.up = true;
  it->second.status.liveness = Liveness::kUp;
}

const NodeStatus* NodeDb::find(const std::string& hostname) const {
  auto it = nodes_.find(hostname);
  return it == nodes_.end() ? nullptr : &it->second.status;
}

std::vector<NodeStatus> NodeDb::snapshot() const {
  std::vector<NodeStatus> out;
  out.reserve(nodes_.size());
  for (const auto& [name, e] : nodes_) out.push_back(e.status);
  return out;
}

bool NodeDb::assign(const std::string& hostname, JobId job, int slots) {
  auto it = nodes_.find(hostname);
  if (it == nodes_.end()) return false;
  auto& e = it->second;
  if (e.status.free_slots() < slots) return false;
  e.status.used += slots;
  DAC_CHECK(e.status.used <= e.status.np,
            "node {} over-assigned: used={} np={} (job {} asked for {})",
            hostname, e.status.used, e.status.np, job, slots);
  e.held[job] += slots;
  if (std::find(e.status.jobs.begin(), e.status.jobs.end(), job) ==
      e.status.jobs.end()) {
    e.status.jobs.push_back(job);
  }
  // Instantaneous trace event; the property tests replay these to check
  // slot conservation and overlap invariants.
  trace::event("alloc.assign", {{"host", hostname},
                                {"job", std::to_string(job)},
                                {"slots", std::to_string(slots)}});
  return true;
}

void NodeDb::release(const std::string& hostname, JobId job) {
  auto it = nodes_.find(hostname);
  if (it == nodes_.end()) return;
  auto& e = it->second;
  auto held = e.held.find(job);
  if (held == e.held.end()) return;
  const int slots = held->second;
  e.status.used -= slots;
  DAC_CHECK(e.status.used >= 0,
            "node {} slot count went negative ({}) releasing job {}", hostname,
            e.status.used, job);
  e.held.erase(held);
  std::erase(e.status.jobs, job);
  trace::event("alloc.release", {{"host", hostname},
                                 {"job", std::to_string(job)},
                                 {"slots", std::to_string(slots)}});
}

void NodeDb::release_all(JobId job) {
  for (auto& [name, e] : nodes_) {
    auto held = e.held.find(job);
    if (held == e.held.end()) continue;
    const int slots = held->second;
    e.status.used -= slots;
    DAC_CHECK(e.status.used >= 0,
              "node {} slot count went negative ({}) releasing job {}", name,
              e.status.used, job);
    e.held.erase(held);
    std::erase(e.status.jobs, job);
    trace::event("alloc.release", {{"host", name},
                                   {"job", std::to_string(job)},
                                   {"slots", std::to_string(slots)}});
  }
}

std::optional<vnet::Address> NodeDb::mom_of(const std::string& hostname) const {
  if (const auto* n = find(hostname); n != nullptr) return n->mom_addr;
  return std::nullopt;
}

bool NodeDb::heartbeat(const std::string& hostname, double now) {
  auto it = nodes_.find(hostname);
  if (it == nodes_.end()) return false;
  it->second.last_seen = now;
  const bool revived = it->second.status.liveness != Liveness::kUp;
  it->second.status.up = true;
  it->second.status.liveness = Liveness::kUp;
  return revived;
}

NodeDb::LivenessChanges NodeDb::refresh_liveness(double now,
                                                 double suspect_after,
                                                 double down_after) {
  LivenessChanges changes;
  for (auto& [name, e] : nodes_) {
    const double silence = now - e.last_seen;
    Liveness next = e.status.liveness;
    if (silence >= down_after) {
      next = Liveness::kDown;
    } else if (silence >= suspect_after) {
      // Never promote: a down node stays down until a real heartbeat.
      if (e.status.liveness == Liveness::kUp) next = Liveness::kSuspect;
    }
    if (next == e.status.liveness) continue;
    e.status.liveness = next;
    e.status.up = next == Liveness::kUp;
    if (next == Liveness::kSuspect) {
      changes.went_suspect.push_back(name);
    } else if (next == Liveness::kDown) {
      changes.went_down.push_back(name);
    }
  }
  return changes;
}

}  // namespace dac::torque
