#include "torque/node_db.hpp"

#include <algorithm>

#include "trace/trace.hpp"
#include "util/check.hpp"

namespace dac::torque {

const char* liveness_name(Liveness l) {
  switch (l) {
    case Liveness::kUp: return "up";
    case Liveness::kSuspect: return "suspect";
    case Liveness::kDown: return "down";
  }
  return "?";
}

void put_node_status(util::ByteWriter& w, const NodeStatus& n) {
  w.put_string(n.hostname);
  w.put<std::int32_t>(n.node_id);
  w.put_enum(n.kind);
  w.put<std::int32_t>(n.np);
  w.put<std::int32_t>(n.used);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(n.jobs.size()));
  for (const auto j : n.jobs) w.put<std::uint64_t>(j);
  w.put<std::int32_t>(n.mom_addr.node);
  w.put<std::int32_t>(n.mom_addr.port);
  w.put_bool(n.up);
  w.put_enum(n.liveness);
}

NodeStatus get_node_status(util::ByteReader& r) {
  NodeStatus n;
  n.hostname = r.get_string();
  n.node_id = r.get<std::int32_t>();
  n.kind = r.get_enum<NodeKind>();
  n.np = r.get<std::int32_t>();
  n.used = r.get<std::int32_t>();
  const auto count = r.get<std::uint32_t>();
  n.jobs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    n.jobs.push_back(r.get<std::uint64_t>());
  }
  n.mom_addr.node = r.get<std::int32_t>();
  n.mom_addr.port = r.get<std::int32_t>();
  n.up = r.get_bool();
  n.liveness = r.get_enum<Liveness>();
  return n;
}

NodeDb::NodeDb(int shards)
    : shards_(static_cast<std::size_t>(std::max(1, shards))) {}

NodeDb::Shard& NodeDb::shard_of(const std::string& hostname) {
  return shards_[std::hash<std::string>{}(hostname) % shards_.size()];
}

const NodeDb::Shard& NodeDb::shard_of(const std::string& hostname) const {
  return shards_[std::hash<std::string>{}(hostname) % shards_.size()];
}

void NodeDb::mark_dirty(Shard& s, const std::string& hostname) {
  if (std::find(s.dirty.begin(), s.dirty.end(), hostname) == s.dirty.end()) {
    s.dirty.push_back(hostname);
  }
}

void NodeDb::upsert(NodeStatus status) {
  auto& s = shard_of(status.hostname);
  ScopedLock lock(s.mu);
  mark_dirty(s, status.hostname);
  auto it = s.nodes.find(status.hostname);
  if (it == s.nodes.end()) {
    Entry e;
    e.status = std::move(status);
    s.nodes.emplace(e.status.hostname, std::move(e));
    return;
  }
  // Refresh identity fields but keep current assignments. A re-registering
  // mom also brings the node back up.
  it->second.status.node_id = status.node_id;
  it->second.status.kind = status.kind;
  it->second.status.np = status.np;
  it->second.status.mom_addr = status.mom_addr;
  it->second.status.up = true;
  it->second.status.liveness = Liveness::kUp;
}

std::optional<NodeStatus> NodeDb::lookup(const std::string& hostname) const {
  const auto& s = shard_of(hostname);
  ScopedLock lock(s.mu);
  auto it = s.nodes.find(hostname);
  if (it == s.nodes.end()) return std::nullopt;
  return it->second.status;
}

std::vector<NodeStatus> NodeDb::snapshot() const
    DAC_NO_THREAD_SAFETY_ANALYSIS {
  // One consistent cut across every shard: the scheduler's allocation pass
  // and the conservation invariants want a point-in-time view, not a merge
  // of per-shard views taken at different moments.
  const auto all = lock_all();
  std::vector<NodeStatus> out;
  for (const auto& s : shards_) {
    for (const auto& [name, e] : s.nodes) out.push_back(e.status);
  }
  std::sort(out.begin(), out.end(),
            [](const NodeStatus& a, const NodeStatus& b) {
              return a.hostname < b.hostname;
            });
  return out;
}

void NodeDb::for_each(
    const std::function<void(const NodeStatus&)>& fn) const {
  for (const auto& s : shards_) {
    ScopedLock lock(s.mu);
    for (const auto& [name, e] : s.nodes) fn(e.status);
  }
}

std::size_t NodeDb::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    ScopedLock lock(s.mu);
    total += s.nodes.size();
  }
  return total;
}

bool NodeDb::assign(const std::string& hostname, JobId job, int slots) {
  auto& sh = shard_of(hostname);
  ScopedLock lock(sh.mu);
  auto it = sh.nodes.find(hostname);
  if (it == sh.nodes.end()) return false;
  auto& e = it->second;
  if (e.status.free_slots() < slots) return false;
  e.status.used += slots;
  DAC_CHECK(e.status.used <= e.status.np,
            "node {} over-assigned: used={} np={} (job {} asked for {})",
            hostname, e.status.used, e.status.np, job, slots);
  e.held[job] += slots;
  if (std::find(e.status.jobs.begin(), e.status.jobs.end(), job) ==
      e.status.jobs.end()) {
    e.status.jobs.push_back(job);
  }
  mark_dirty(sh, hostname);
  // Instantaneous trace event; the property tests replay these to check
  // slot conservation and overlap invariants.
  trace::event("alloc.assign", {{"host", hostname},
                                {"job", std::to_string(job)},
                                {"slots", std::to_string(slots)}});
  return true;
}

void NodeDb::release(const std::string& hostname, JobId job) {
  auto& sh = shard_of(hostname);
  ScopedLock lock(sh.mu);
  auto it = sh.nodes.find(hostname);
  if (it == sh.nodes.end()) return;
  auto& e = it->second;
  auto held = e.held.find(job);
  if (held == e.held.end()) return;
  const int slots = held->second;
  e.status.used -= slots;
  DAC_CHECK(e.status.used >= 0,
            "node {} slot count went negative ({}) releasing job {}", hostname,
            e.status.used, job);
  e.held.erase(held);
  std::erase(e.status.jobs, job);
  mark_dirty(sh, hostname);
  trace::event("alloc.release", {{"host", hostname},
                                 {"job", std::to_string(job)},
                                 {"slots", std::to_string(slots)}});
}

void NodeDb::release_all(JobId job) DAC_NO_THREAD_SAFETY_ANALYSIS {
  const auto all = lock_all();
  for (auto& s : shards_) {
    for (auto& [name, e] : s.nodes) {
      auto held = e.held.find(job);
      if (held == e.held.end()) continue;
      const int slots = held->second;
      e.status.used -= slots;
      DAC_CHECK(e.status.used >= 0,
                "node {} slot count went negative ({}) releasing job {}", name,
                e.status.used, job);
      e.held.erase(held);
      std::erase(e.status.jobs, job);
      mark_dirty(s, name);
      trace::event("alloc.release", {{"host", name},
                                     {"job", std::to_string(job)},
                                     {"slots", std::to_string(slots)}});
    }
  }
}

std::optional<vnet::Address> NodeDb::mom_of(const std::string& hostname) const {
  const auto& s = shard_of(hostname);
  ScopedLock lock(s.mu);
  auto it = s.nodes.find(hostname);
  if (it == s.nodes.end()) return std::nullopt;
  return it->second.status.mom_addr;
}

bool NodeDb::heartbeat(const std::string& hostname, double now) {
  auto& sh = shard_of(hostname);
  ScopedLock lock(sh.mu);
  auto it = sh.nodes.find(hostname);
  if (it == sh.nodes.end()) return false;
  it->second.last_seen = now;
  const bool revived = it->second.status.liveness != Liveness::kUp;
  it->second.status.up = true;
  it->second.status.liveness = Liveness::kUp;
  // A bare timestamp refresh is not scheduler-visible; only a revival is.
  if (revived) mark_dirty(sh, hostname);
  return revived;
}

NodeDb::LivenessChanges NodeDb::refresh_liveness(double now,
                                                 double suspect_after,
                                                 double down_after)
    DAC_NO_THREAD_SAFETY_ANALYSIS {
  LivenessChanges changes;
  const auto all = lock_all();
  for (auto& sh : shards_) {
    for (auto& [name, e] : sh.nodes) {
      const double silence = now - e.last_seen;
      Liveness next = e.status.liveness;
      if (silence >= down_after) {
        next = Liveness::kDown;
      } else if (silence >= suspect_after) {
        // Never promote: a down node stays down until a real heartbeat.
        if (e.status.liveness == Liveness::kUp) next = Liveness::kSuspect;
      }
      if (next == e.status.liveness) continue;
      e.status.liveness = next;
      e.status.up = next == Liveness::kUp;
      mark_dirty(sh, name);
      if (next == Liveness::kSuspect) {
        changes.went_suspect.push_back(name);
      } else if (next == Liveness::kDown) {
        changes.went_down.push_back(name);
      }
    }
  }
  // Shard order is hash order; report transitions in a stable order so the
  // recovery paths (and their logs) are deterministic.
  std::sort(changes.went_suspect.begin(), changes.went_suspect.end());
  std::sort(changes.went_down.begin(), changes.went_down.end());
  return changes;
}

std::vector<std::string> NodeDb::drain_dirty() {
  std::vector<std::string> out;
  for (auto& s : shards_) {
    ScopedLock lock(s.mu);
    out.insert(out.end(), s.dirty.begin(), s.dirty.end());
    s.dirty.clear();
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dac::torque
