#include "torque/task_registry.hpp"

#include <algorithm>

namespace dac::torque {

void TaskRegistry::add(JobId job, vnet::NodeId node, vnet::ProcessPtr process,
                       std::uint64_t set_id) {
  ScopedLock lock(mu_);
  tasks_[{job, node}].push_back(Task{std::move(process), set_id});
}

std::vector<vnet::ProcessPtr> TaskRegistry::take(JobId job, vnet::NodeId node,
                                                 bool all_nodes,
                                                 std::uint64_t set_id) {
  ScopedLock lock(mu_);
  std::vector<vnet::ProcessPtr> out;
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    if (it->first.first == job && (all_nodes || it->first.second == node)) {
      auto& tasks = it->second;
      for (auto t = tasks.begin(); t != tasks.end();) {
        if (set_id == 0 || t->set_id == set_id) {
          out.push_back(std::move(t->process));
          t = tasks.erase(t);
        } else {
          ++t;
        }
      }
      it = tasks.empty() ? tasks_.erase(it) : std::next(it);
    } else {
      ++it;
    }
  }
  return out;
}

void TaskRegistry::kill_node_tasks(JobId job, vnet::NodeId node,
                                   std::uint64_t set_id) {
  auto procs = take(job, node, /*all_nodes=*/false, set_id);
  for (auto& p : procs) p->request_stop();
  for (auto& p : procs) p->join();
}

void TaskRegistry::kill_job(JobId job) {
  auto procs = take(job, vnet::kInvalidNode, /*all_nodes=*/true, 0);
  for (auto& p : procs) p->request_stop();
  for (auto& p : procs) p->join();
}

void TaskRegistry::join_job(JobId job) {
  auto procs = take(job, vnet::kInvalidNode, /*all_nodes=*/true, 0);
  for (auto& p : procs) p->join();
}

std::size_t TaskRegistry::task_count(JobId job) const {
  ScopedLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, tasks] : tasks_) {
    if (key.first == job) n += tasks.size();
  }
  return n;
}

void TaskRegistry::reap() {
  ScopedLock lock(mu_);
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    auto& tasks = it->second;
    std::erase_if(tasks, [](const Task& t) {
      if (!t.process->finished()) return false;
      t.process->join();
      return true;
    });
    it = tasks.empty() ? tasks_.erase(it) : std::next(it);
  }
}

}  // namespace dac::torque
