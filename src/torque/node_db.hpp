// The server's node database: every mom registers its host here, and the
// server tracks which jobs hold slots on which hosts. Accelerator nodes are
// exclusive (one job at a time); compute nodes have ppn slots.
//
// Sharded and internally synchronized: hosts hash onto N lock shards so
// server-side slot accounting stops being one global mutex — heartbeats,
// pbsnodes reads, and grant/release traffic on different hosts proceed in
// parallel. Cross-shard operations (snapshot, release_all, the failure
// detector) take the whole-DB guard, which locks every shard in index order.
// The guard is an implementation detail of this file: new code outside the
// shard API must not take it (dacsched-analyzer rule `global-nodedb-lock`).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "torque/job.hpp"
#include "util/bytes.hpp"
#include "util/sync.hpp"
#include "vnet/message.hpp"

namespace dac::torque {

enum class NodeKind : std::uint8_t { kCompute = 0, kAccelerator = 1 };

// Failure-detector state. A node is kSuspect after `suspect_after` seconds
// without a heartbeat (the scheduler stops placing work there, nothing is
// reclaimed yet) and kDown after `down_after` seconds (jobs are requeued or
// failed, AC slots reclaimed). One fresh heartbeat restores kUp from either
// state, so a flapping link degrades placement but never kills a job.
enum class Liveness : std::uint8_t { kUp = 0, kSuspect = 1, kDown = 2 };

const char* liveness_name(Liveness l);

struct NodeStatus {
  std::string hostname;
  vnet::NodeId node_id = vnet::kInvalidNode;
  NodeKind kind = NodeKind::kCompute;
  int np = 1;    // total slots (cores for compute; 1 for an accelerator)
  int used = 0;  // slots currently assigned
  std::vector<JobId> jobs;  // jobs holding slots here
  vnet::Address mom_addr;
  // Invariant: up == (liveness == kUp). The bool predates the tri-state and
  // every placement check keys off it, so "suspect" already excludes a node
  // from scheduling without those callers knowing about Liveness.
  bool up = true;
  Liveness liveness = Liveness::kUp;

  [[nodiscard]] int free_slots() const { return np - used; }
};

void put_node_status(util::ByteWriter& w, const NodeStatus& n);
NodeStatus get_node_status(util::ByteReader& r);

class NodeDb {
 public:
  static constexpr int kDefaultShards = 8;

  explicit NodeDb(int shards = kDefaultShards);

  NodeDb(const NodeDb&) = delete;
  NodeDb& operator=(const NodeDb&) = delete;

  [[nodiscard]] int shard_count() const {
    return static_cast<int>(shards_.size());
  }

  // Adds or refreshes a node record (mom registration).
  void upsert(NodeStatus status);

  // Point query; returns a copy so the caller holds no shard lock.
  [[nodiscard]] std::optional<NodeStatus> lookup(
      const std::string& hostname) const;
  // Consistent whole-DB copy (all shards held at once), sorted by hostname.
  [[nodiscard]] std::vector<NodeStatus> snapshot() const;
  // Per-shard iteration: `fn` runs under one shard lock at a time, so the
  // view is consistent per host but not across hosts. Cheap for accounting
  // sweeps that do not need a global cut.
  void for_each(const std::function<void(const NodeStatus&)>& fn) const;
  [[nodiscard]] std::size_t size() const;

  // Assigns `slots` slots on `hostname` to `job`; false if unknown host or
  // not enough free slots.
  bool assign(const std::string& hostname, JobId job, int slots);
  // Releases all slots `job` holds on `hostname`.
  void release(const std::string& hostname, JobId job);
  // Releases everything `job` holds anywhere (one atomic cross-shard cut).
  void release_all(JobId job);

  [[nodiscard]] std::optional<vnet::Address> mom_of(
      const std::string& hostname) const;

  // ---- liveness (fault-tolerance extension) ----------------------------
  // Records a heartbeat for `hostname` at time `now` (server seconds);
  // returns true if this heartbeat brought a suspect/down node back up.
  bool heartbeat(const std::string& hostname, double now);

  struct LivenessChanges {
    std::vector<std::string> went_suspect;
    std::vector<std::string> went_down;  // includes suspect -> down
  };
  // Advances the failure detector: last heartbeat older than
  // `suspect_after` seconds => kSuspect, older than `down_after` =>
  // kDown. Returns only the transitions made by this call; recovery to kUp
  // happens in heartbeat(), not here — silence never improves liveness.
  LivenessChanges refresh_liveness(double now, double suspect_after,
                                   double down_after);

  // ---- dirty tracking (incremental scheduler feed) ---------------------
  // Hostnames whose scheduler-visible status changed since the last drain
  // (registration, slot traffic, liveness transitions — not bare heartbeat
  // timestamps). Returned sorted; the dirty sets are cleared.
  [[nodiscard]] std::vector<std::string> drain_dirty();

 private:
  struct Entry {
    NodeStatus status;
    std::map<JobId, int> held;  // job -> slots held
    double last_seen = 0.0;     // server seconds of the last heartbeat
  };
  struct Shard {
    mutable Mutex mu{"node_db.shard"};
    std::map<std::string, Entry> nodes DAC_GUARDED_BY(mu);
    std::vector<std::string> dirty DAC_GUARDED_BY(mu);  // unsorted, deduped
  };

  // Whole-DB guard: locks every shard in index order (deadlock-free by
  // construction). Internal to node_db.cpp — see the analyzer rule note in
  // the file header.
  class ExclusiveAll {
   public:
    explicit ExclusiveAll(const NodeDb& db) DAC_NO_THREAD_SAFETY_ANALYSIS
        : db_(db) {
      for (const auto& s : db_.shards_) s.mu.lock();
    }
    ~ExclusiveAll() DAC_NO_THREAD_SAFETY_ANALYSIS {
      for (auto it = db_.shards_.rbegin(); it != db_.shards_.rend(); ++it) {
        it->mu.unlock();
      }
    }
    ExclusiveAll(const ExclusiveAll&) = delete;
    ExclusiveAll& operator=(const ExclusiveAll&) = delete;

   private:
    const NodeDb& db_;
  };
  [[nodiscard]] ExclusiveAll lock_all() const { return ExclusiveAll(*this); }

  [[nodiscard]] Shard& shard_of(const std::string& hostname);
  [[nodiscard]] const Shard& shard_of(const std::string& hostname) const;
  static void mark_dirty(Shard& s, const std::string& hostname)
      DAC_REQUIRES(s.mu);

  std::vector<Shard> shards_;
};

}  // namespace dac::torque
