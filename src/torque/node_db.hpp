// The server's node database: every mom registers its host here, and the
// server tracks which jobs hold slots on which hosts. Accelerator nodes are
// exclusive (one job at a time); compute nodes have ppn slots.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "torque/job.hpp"
#include "util/bytes.hpp"
#include "vnet/message.hpp"

namespace dac::torque {

enum class NodeKind : std::uint8_t { kCompute = 0, kAccelerator = 1 };

struct NodeStatus {
  std::string hostname;
  vnet::NodeId node_id = vnet::kInvalidNode;
  NodeKind kind = NodeKind::kCompute;
  int np = 1;    // total slots (cores for compute; 1 for an accelerator)
  int used = 0;  // slots currently assigned
  std::vector<JobId> jobs;  // jobs holding slots here
  vnet::Address mom_addr;
  bool up = true;  // false once heartbeats go stale (fault tolerance)

  [[nodiscard]] int free_slots() const { return np - used; }
};

void put_node_status(util::ByteWriter& w, const NodeStatus& n);
NodeStatus get_node_status(util::ByteReader& r);

// Not thread-safe: owned and accessed only by the single-threaded server.
class NodeDb {
 public:
  // Adds or refreshes a node record (mom registration).
  void upsert(NodeStatus status);

  [[nodiscard]] const NodeStatus* find(const std::string& hostname) const;
  [[nodiscard]] std::vector<NodeStatus> snapshot() const;
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  // Assigns `slots` slots on `hostname` to `job`; false if unknown host or
  // not enough free slots.
  bool assign(const std::string& hostname, JobId job, int slots);
  // Releases all slots `job` holds on `hostname`.
  void release(const std::string& hostname, JobId job);
  // Releases everything `job` holds anywhere.
  void release_all(JobId job);

  [[nodiscard]] std::optional<vnet::Address> mom_of(
      const std::string& hostname) const;

  // ---- liveness (fault-tolerance extension) ----------------------------
  // Records a heartbeat for `hostname` at time `now` (server seconds).
  void heartbeat(const std::string& hostname, double now);
  // Marks nodes whose last heartbeat is older than `stale_after` seconds as
  // down and fresher ones as up; returns hostnames that changed to down.
  std::vector<std::string> refresh_liveness(double now, double stale_after);

 private:
  struct Entry {
    NodeStatus status;
    std::map<JobId, int> held;  // job -> slots held
    double last_seen = 0.0;     // server seconds of the last heartbeat
  };
  std::map<std::string, Entry> nodes_;
};

}  // namespace dac::torque
