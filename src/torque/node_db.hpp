// The server's node database: every mom registers its host here, and the
// server tracks which jobs hold slots on which hosts. Accelerator nodes are
// exclusive (one job at a time); compute nodes have ppn slots.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "torque/job.hpp"
#include "util/bytes.hpp"
#include "vnet/message.hpp"

namespace dac::torque {

enum class NodeKind : std::uint8_t { kCompute = 0, kAccelerator = 1 };

// Failure-detector state. A node is kSuspect after `suspect_after` seconds
// without a heartbeat (the scheduler stops placing work there, nothing is
// reclaimed yet) and kDown after `down_after` seconds (jobs are requeued or
// failed, AC slots reclaimed). One fresh heartbeat restores kUp from either
// state, so a flapping link degrades placement but never kills a job.
enum class Liveness : std::uint8_t { kUp = 0, kSuspect = 1, kDown = 2 };

const char* liveness_name(Liveness l);

struct NodeStatus {
  std::string hostname;
  vnet::NodeId node_id = vnet::kInvalidNode;
  NodeKind kind = NodeKind::kCompute;
  int np = 1;    // total slots (cores for compute; 1 for an accelerator)
  int used = 0;  // slots currently assigned
  std::vector<JobId> jobs;  // jobs holding slots here
  vnet::Address mom_addr;
  // Invariant: up == (liveness == kUp). The bool predates the tri-state and
  // every placement check keys off it, so "suspect" already excludes a node
  // from scheduling without those callers knowing about Liveness.
  bool up = true;
  Liveness liveness = Liveness::kUp;

  [[nodiscard]] int free_slots() const { return np - used; }
};

void put_node_status(util::ByteWriter& w, const NodeStatus& n);
NodeStatus get_node_status(util::ByteReader& r);

// Not thread-safe: owned and accessed only by the single-threaded server.
class NodeDb {
 public:
  // Adds or refreshes a node record (mom registration).
  void upsert(NodeStatus status);

  [[nodiscard]] const NodeStatus* find(const std::string& hostname) const;
  [[nodiscard]] std::vector<NodeStatus> snapshot() const;
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  // Assigns `slots` slots on `hostname` to `job`; false if unknown host or
  // not enough free slots.
  bool assign(const std::string& hostname, JobId job, int slots);
  // Releases all slots `job` holds on `hostname`.
  void release(const std::string& hostname, JobId job);
  // Releases everything `job` holds anywhere.
  void release_all(JobId job);

  [[nodiscard]] std::optional<vnet::Address> mom_of(
      const std::string& hostname) const;

  // ---- liveness (fault-tolerance extension) ----------------------------
  // Records a heartbeat for `hostname` at time `now` (server seconds);
  // returns true if this heartbeat brought a suspect/down node back up.
  bool heartbeat(const std::string& hostname, double now);

  struct LivenessChanges {
    std::vector<std::string> went_suspect;
    std::vector<std::string> went_down;  // includes suspect -> down
  };
  // Advances the failure detector: last heartbeat older than
  // `suspect_after` seconds => kSuspect, older than `down_after` =>
  // kDown. Returns only the transitions made by this call; recovery to kUp
  // happens in heartbeat(), not here — silence never improves liveness.
  LivenessChanges refresh_liveness(double now, double suspect_after,
                                   double down_after);

 private:
  struct Entry {
    NodeStatus status;
    std::map<JobId, int> held;  // job -> slots held
    double last_seen = 0.0;     // server seconds of the last heartbeat
  };
  std::map<std::string, Entry> nodes_;
};

}  // namespace dac::torque
