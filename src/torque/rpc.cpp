#include "torque/rpc.hpp"

#include "svc/caller.hpp"

namespace dac::torque::rpc {

util::Bytes call(vnet::Process& proc, const vnet::Address& to, MsgType type,
                 util::Bytes body, std::chrono::milliseconds timeout) {
  return svc::Caller(proc, to, svc::RetryPolicy::none())
      .call(type, std::move(body), {.deadline = timeout});
}

util::Bytes call(vnet::Node& node, const vnet::Address& to, MsgType type,
                 util::Bytes body, std::chrono::milliseconds timeout) {
  return svc::Caller(node, to, svc::RetryPolicy::none())
      .call(type, std::move(body), {.deadline = timeout});
}

}  // namespace dac::torque::rpc
