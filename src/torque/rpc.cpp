#include "torque/rpc.hpp"

#include <atomic>

namespace dac::torque::rpc {

namespace {

std::atomic<std::uint64_t> g_next_request_id{1};

util::Bytes envelope(std::uint64_t id, const util::Bytes& body) {
  util::ByteWriter w;
  w.put<std::uint64_t>(id);
  w.put_raw(body.data(), body.size());
  return std::move(w).take();
}

util::Bytes do_call(vnet::Endpoint& ep, const vnet::Address& to, MsgType type,
                    const util::Bytes& body,
                    std::chrono::milliseconds timeout) {
  const auto id = g_next_request_id.fetch_add(1, std::memory_order_relaxed);
  ep.send(to, as_u32(type), envelope(id, body));

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      throw util::ProtocolError("rpc: timeout waiting for reply to type " +
                                std::to_string(as_u32(type)));
    }
    auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    auto msg = ep.recv_for(std::max(remaining, std::chrono::milliseconds(1)));
    if (!msg) {
      if (ep.closed()) throw util::StoppedError();
      continue;
    }
    if (msg->type != as_u32(MsgType::kReply)) continue;  // stray; drop
    util::ByteReader r(msg->payload);
    if (r.get<std::uint64_t>() != id) continue;  // stale reply; drop
    const auto code = r.get_enum<ReplyCode>();
    if (code == ReplyCode::kOk) {
      util::Bytes rest(msg->payload.begin() +
                           static_cast<std::ptrdiff_t>(msg->payload.size() -
                                                       r.remaining()),
                       msg->payload.end());
      return rest;
    }
    throw CallError(code, r.get_string());
  }
}

}  // namespace

util::Bytes call(vnet::Process& proc, const vnet::Address& to, MsgType type,
                 util::Bytes body, std::chrono::milliseconds timeout) {
  auto ep = proc.open_endpoint();
  return do_call(*ep, to, type, body, timeout);
}

util::Bytes call(vnet::Node& node, const vnet::Address& to, MsgType type,
                 util::Bytes body, std::chrono::milliseconds timeout) {
  auto ep = node.open_endpoint();
  return do_call(*ep, to, type, body, timeout);
}

void notify(vnet::Endpoint& ep, const vnet::Address& to, MsgType type,
            util::Bytes body) {
  const auto id = g_next_request_id.fetch_add(1, std::memory_order_relaxed);
  ep.send(to, as_u32(type), envelope(id, body));
}

Request parse_request(const vnet::Message& msg) {
  util::ByteReader r(msg.payload);
  Request req;
  req.id = r.get<std::uint64_t>();
  req.from = msg.from;
  req.type = static_cast<MsgType>(msg.type);
  req.body.assign(msg.payload.begin() + static_cast<std::ptrdiff_t>(
                                            msg.payload.size() - r.remaining()),
                  msg.payload.end());
  return req;
}

void reply_ok_to(vnet::Endpoint& ep, const vnet::Address& to,
                 std::uint64_t request_id, util::Bytes body) {
  util::ByteWriter w;
  w.put<std::uint64_t>(request_id);
  w.put_enum(ReplyCode::kOk);
  w.put_raw(body.data(), body.size());
  ep.send(to, as_u32(MsgType::kReply), std::move(w).take());
}

void reply_ok(vnet::Endpoint& ep, const Request& req, util::Bytes body) {
  reply_ok_to(ep, req.from, req.id, std::move(body));
}

void reply_error_to(vnet::Endpoint& ep, const vnet::Address& to,
                    std::uint64_t request_id, ReplyCode code,
                    const std::string& message) {
  util::ByteWriter w;
  w.put<std::uint64_t>(request_id);
  w.put_enum(code);
  w.put_string(message);
  ep.send(to, as_u32(MsgType::kReply), std::move(w).take());
}

void reply_error(vnet::Endpoint& ep, const Request& req, ReplyCode code,
                 const std::string& message) {
  reply_error_to(ep, req.from, req.id, code, message);
}

}  // namespace dac::torque::rpc
