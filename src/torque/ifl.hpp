// The Interface Library (IFL): the client-side API to the pbs_server. Covers
// the classic surface (submit/stat/delete — qsub/qstat/qdel) plus the
// paper's extensions pbs_dynget() and pbs_dynfree() for dynamic accelerator
// allocation from inside a running job.
#pragma once

#include <chrono>
#include <optional>
#include <vector>

#include "svc/caller.hpp"
#include "torque/job.hpp"
#include "torque/node_db.hpp"
#include "torque/protocol.hpp"
#include "vnet/node.hpp"

namespace dac::torque {

class Ifl {
 public:
  // Client bound to a node (command-line tools, tests).
  Ifl(vnet::Node& node, vnet::Address server, svc::RetryPolicy retry = {});
  // Client bound to a process (job scripts; calls are then killable).
  Ifl(vnet::Process& proc, vnet::Address server, svc::RetryPolicy retry = {});

  [[nodiscard]] const vnet::Address& server() const { return server_; }

  // qsub: returns the job id.
  [[nodiscard]] JobId submit(const JobSpec& spec);
  // qstat.
  std::vector<JobInfo> stat_jobs();
  std::optional<JobInfo> stat_job(JobId id);
  // pbsnodes.
  std::vector<NodeStatus> stat_nodes();
  // qdel.
  void delete_job(JobId id);

  // qalter / pbs_alterjob(): updates attributes of a *queued* job. Only the
  // fields set in `alter` change.
  struct Alter {
    std::optional<int> priority;
    std::optional<std::chrono::milliseconds> walltime;
    std::optional<std::string> name;
  };
  void alter_job(JobId id, const Alter& alter);

  // pbs_dynget(): blocks until the server answers — either a grant with the
  // client-id and host set, or a rejection (granted == false). A rejection
  // is a normal outcome, not an error (paper §II-B).
  //
  // `min_count` enables the partial-allocation extension the paper lists as
  // future work (§VI): the scheduler may grant anywhere in
  // [min_count, count] when the pool cannot satisfy the full request. The
  // default (min_count == count) is the paper's all-or-nothing behaviour.
  //
  // `kind` selects the pool: accelerator nodes (the paper's case) or compute
  // nodes — the malleability generalization of §V ("with little extensions
  // ... any malleable application could be supported").
  [[nodiscard]] DynGetReply dynget(JobId id, int count, int min_count,
                                   NodeKind kind = NodeKind::kAccelerator,
                                   std::chrono::milliseconds timeout =
                                       std::chrono::milliseconds(60'000));
  [[nodiscard]] DynGetReply dynget(JobId id, int count,
                                   std::chrono::milliseconds timeout =
                                       std::chrono::milliseconds(60'000)) {
    return dynget(id, count, count, NodeKind::kAccelerator, timeout);
  }

  // pbs_dynfree(): releases the dynamic set identified by `client_id`.
  void dynfree(JobId id, std::uint64_t client_id);

  // Polling helper: waits until the job reaches `state` (or a terminal
  // state); returns the last observed info, or nullopt on timeout.
  std::optional<JobInfo> wait_for_state(
      JobId id, JobState state,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(30'000),
      std::chrono::milliseconds poll = std::chrono::milliseconds(2));

 private:
  util::Bytes call(MsgType type, util::Bytes body,
                   std::chrono::milliseconds timeout);

  svc::Caller caller_;
  vnet::Address server_;
};

}  // namespace dac::torque
