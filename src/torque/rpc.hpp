// Legacy request/reply helpers, now thin shims over the svc service runtime
// (src/svc/). The wire format is unchanged:
//
// Request payload:  [u64 request-id][body...]        Message.type = MsgType
// Reply payload:    [u64 request-id][u8 code][body]  Message.type = kReply
//
// New code should use svc::Caller (retry/deadline/metrics) and
// svc::ServiceLoop (typed dispatch, execution classes, dedup) directly; these
// wrappers remain for single-shot daemon-to-daemon calls and tests.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "svc/deadlines.hpp"
#include "svc/wire.hpp"
#include "torque/protocol.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "vnet/node.hpp"

namespace dac::torque::rpc {

inline constexpr auto kDefaultTimeout = svc::deadlines::kDefault;

// Thrown when the callee replied with a non-ok code.
using CallError = svc::CallError;

// Blocking single-attempt call from a process context (killable: the
// ephemeral endpoint is adopted by the process, so request_stop unblocks it).
// Times out with svc::DeadlineError.
[[nodiscard]] util::Bytes call(vnet::Process& proc, const vnet::Address& to,
                               MsgType type, util::Bytes body,
                               std::chrono::milliseconds timeout =
                                   kDefaultTimeout);

// Blocking single-attempt call from a non-process context (client commands,
// tests).
[[nodiscard]] util::Bytes call(vnet::Node& node, const vnet::Address& to,
                               MsgType type, util::Bytes body,
                               std::chrono::milliseconds timeout =
                                   kDefaultTimeout);

// Fire-and-forget request (no reply expected), from any endpoint.
inline void notify(vnet::Endpoint& ep, const vnet::Address& to, MsgType type,
                   util::Bytes body) {
  svc::notify(ep, to, type, std::move(body));
}

// ---- callee side ----------------------------------------------------------
// Using-declarations (not wrappers) so that unqualified calls on a
// svc::Request don't become ambiguous through ADL.

using Request = svc::Request;

using svc::parse_request;
using svc::reply_error;
using svc::reply_error_to;
using svc::reply_ok;
using svc::reply_ok_to;

}  // namespace dac::torque::rpc
