// Request/reply envelope used by all batch-system conversations.
//
// Request payload:  [u64 request-id][body...]        Message.type = MsgType
// Reply payload:    [u64 request-id][u8 code][body]  Message.type = kReply
//
// Callers open a fresh ephemeral endpoint per call (like a TCP connection to
// the server), so a daemon's main endpoint never sees stray replies.
// Daemon-side helpers parse requests and send replies on the daemon's own
// endpoint.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "torque/protocol.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "vnet/node.hpp"

namespace dac::torque::rpc {

inline constexpr auto kDefaultTimeout = std::chrono::milliseconds(30'000);

// Thrown when the callee replied with a non-ok code.
class CallError : public util::ProtocolError {
 public:
  CallError(ReplyCode code, const std::string& what)
      : util::ProtocolError(what), code_(code) {}
  [[nodiscard]] ReplyCode code() const { return code_; }

 private:
  ReplyCode code_;
};

// Blocking call from a process context (killable: the ephemeral endpoint is
// adopted by the process, so request_stop unblocks it).
util::Bytes call(vnet::Process& proc, const vnet::Address& to, MsgType type,
                 util::Bytes body,
                 std::chrono::milliseconds timeout = kDefaultTimeout);

// Blocking call from a non-process context (client commands, tests).
util::Bytes call(vnet::Node& node, const vnet::Address& to, MsgType type,
                 util::Bytes body,
                 std::chrono::milliseconds timeout = kDefaultTimeout);

// Fire-and-forget request (no reply expected), from any endpoint.
void notify(vnet::Endpoint& ep, const vnet::Address& to, MsgType type,
            util::Bytes body);

// ---- callee side ----------------------------------------------------------

struct Request {
  std::uint64_t id = 0;
  vnet::Address from;
  MsgType type{};
  util::Bytes body;
};

// Parses an incoming request message.
Request parse_request(const vnet::Message& msg);

void reply_ok(vnet::Endpoint& ep, const Request& req, util::Bytes body = {});
void reply_ok_to(vnet::Endpoint& ep, const vnet::Address& to,
                 std::uint64_t request_id, util::Bytes body = {});
void reply_error(vnet::Endpoint& ep, const Request& req, ReplyCode code,
                 const std::string& message);
void reply_error_to(vnet::Endpoint& ep, const vnet::Address& to,
                    std::uint64_t request_id, ReplyCode code,
                    const std::string& message);

}  // namespace dac::torque::rpc
