#include "torque/protocol.hpp"

namespace dac::torque {

void put_dynget_reply(util::ByteWriter& w, const DynGetReply& r) {
  w.put_bool(r.granted);
  w.put<std::uint64_t>(r.client_id);
  w.put_string_vector(r.hosts);
  w.put_vector<std::int32_t>(r.host_nodes);
  w.put<double>(r.queue_wait_seconds);
  w.put<double>(r.service_seconds);
}

DynGetReply get_dynget_reply(util::ByteReader& r) {
  DynGetReply out;
  out.granted = r.get_bool();
  out.client_id = r.get<std::uint64_t>();
  out.hosts = r.get_string_vector();
  out.host_nodes = r.get_vector<std::int32_t>();
  out.queue_wait_seconds = r.get<double>();
  out.service_seconds = r.get<double>();
  return out;
}

}  // namespace dac::torque
