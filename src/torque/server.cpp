#include "torque/server.hpp"
#include "simtime/clock.hpp"

#include <algorithm>

#include "trace/trace.hpp"

#include "util/check.hpp"
#include "util/logging.hpp"

namespace dac::torque {

namespace {
const util::Logger kLog("pbs_server");

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          simtime::now().time_since_epoch())
          .count());
}
}  // namespace

void put_host_refs(util::ByteWriter& w, const std::vector<HostRef>& hosts) {
  w.put<std::uint32_t>(static_cast<std::uint32_t>(hosts.size()));
  for (const auto& h : hosts) {
    w.put_string(h.hostname);
    w.put<std::int32_t>(h.node);
    w.put<std::int32_t>(h.mom.node);
    w.put<std::int32_t>(h.mom.port);
  }
}

std::vector<HostRef> get_host_refs(util::ByteReader& r) {
  const auto n = r.get<std::uint32_t>();
  std::vector<HostRef> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    HostRef h;
    h.hostname = r.get_string();
    h.node = r.get<std::int32_t>();
    h.mom.node = r.get<std::int32_t>();
    h.mom.port = r.get<std::int32_t>();
    out.push_back(std::move(h));
  }
  return out;
}

void put_queue_snapshot(util::ByteWriter& w, const QueueSnapshot& s) {
  w.put<double>(s.now);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(s.jobs.size()));
  for (const auto& j : s.jobs) put_job_info(w, j);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(s.dyn.size()));
  for (const auto& d : s.dyn) put_dyn_queue_entry(w, d);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(s.elastic.size()));
  for (const auto& v : s.elastic) elastic::put_job_view(w, v);
}

QueueSnapshot get_queue_snapshot(util::ByteReader& r) {
  QueueSnapshot s;
  s.now = r.get<double>();
  const auto nj = r.get<std::uint32_t>();
  s.jobs.reserve(nj);
  for (std::uint32_t i = 0; i < nj; ++i) s.jobs.push_back(get_job_info(r));
  const auto nd = r.get<std::uint32_t>();
  s.dyn.reserve(nd);
  for (std::uint32_t i = 0; i < nd; ++i) s.dyn.push_back(get_dyn_queue_entry(r));
  const auto ne = r.get<std::uint32_t>();
  s.elastic.reserve(ne);
  for (std::uint32_t i = 0; i < ne; ++i) {
    s.elastic.push_back(elastic::get_job_view(r));
  }
  return s;
}

PbsServer::PbsServer(vnet::Node& node, BatchTiming timing,
                     svc::ServiceTuning tuning, int node_db_shards)
    : node_(node),
      timing_(timing),
      tuning_(tuning),
      endpoint_(node.open_endpoint()),
      start_(simtime::now()),
      nodes_(node_db_shards > 0 ? node_db_shards : NodeDb::kDefaultShards) {}

double PbsServer::now_s() const {
  return std::chrono::duration<double>(simtime::now() -
                                       start_)
      .count();
}

void PbsServer::run(vnet::Process& proc) {
  proc.adopt_mailbox(endpoint_->mailbox_weak());
  kLog.info("pbs_server up at {} ({} read worker(s))",
            endpoint_->address().str(), tuning_.server_read_workers);
  svc::ServiceConfig cfg;
  cfg.name = "pbs_server";
  cfg.service_cost = timing_.server_service_cost;
  cfg.read_workers = tuning_.server_read_workers;
  cfg.dedup_window = tuning_.dedup_window;
  svc::ServiceLoop loop(*endpoint_, cfg, &metrics_);
  register_handlers(loop);
  // Failure detector: advance liveness at the heartbeat cadence so a dead
  // node is declared suspect/down even when nobody runs pbsnodes. The same
  // tick sweeps elastic offers whose ack deadline passed.
  loop.add_tick(timing_.mom_heartbeat_interval, [this] {
    WriterLock lock(state_mu_);
    refresh_liveness();
    sweep_elastic_offers();
  });
  loop.run();
  kLog.info("pbs_server shutting down");
}

void PbsServer::register_handlers(svc::ServiceLoop& loop) {
  using svc::ExecClass;
  using svc::Request;
  using svc::Responder;

  // Mutating handlers: serialized lane, exclusive state lock.
  const auto mut = [&](MsgType type,
                       void (PbsServer::*fn)(const rpc::Request&, Responder&)) {
    loop.on(type, ExecClass::kMutating,
            [this, fn](const Request& req, Responder& resp) {
              WriterLock lock(state_mu_);
              (this->*fn)(req, resp);
            });
  };
  // Mutating notifications (no reply expected).
  const auto note = [&](MsgType type,
                        void (PbsServer::*fn)(const rpc::Request&)) {
    loop.on(type, ExecClass::kMutating,
            [this, fn](const Request& req, Responder&) {
              WriterLock lock(state_mu_);
              (this->*fn)(req);
            });
  };
  // Pure reads: may run on the read pool under a shared lock.
  const auto read = [&](MsgType type,
                        void (PbsServer::*fn)(const rpc::Request&,
                                              Responder&)) {
    loop.on(type, ExecClass::kReadOnly,
            [this, fn](const Request& req, Responder& resp) {
              ReaderLock lock(state_mu_);
              (this->*fn)(req, resp);
            });
  };
  // Pool-eligible requests that still write (liveness bookkeeping): run off
  // the mutating lane but take the state lock exclusively.
  const auto read_excl = [&](MsgType type,
                             void (PbsServer::*fn)(const rpc::Request&,
                                                   Responder&)) {
    loop.on(type, ExecClass::kReadOnly,
            [this, fn](const Request& req, Responder& resp) {
              WriterLock lock(state_mu_);
              (this->*fn)(req, resp);
            });
  };

  mut(MsgType::kSubmit, &PbsServer::on_submit);
  mut(MsgType::kDeleteJob, &PbsServer::on_delete_job);
  mut(MsgType::kAlterJob, &PbsServer::on_alter_job);
  mut(MsgType::kDynGet, &PbsServer::on_dynget);
  mut(MsgType::kDynFree, &PbsServer::on_dynfree);
  mut(MsgType::kRegisterNode, &PbsServer::on_register_node);
  mut(MsgType::kRegisterScheduler, &PbsServer::on_register_scheduler);
  mut(MsgType::kRunJob, &PbsServer::on_run_job);
  mut(MsgType::kRunDyn, &PbsServer::on_run_dyn);
  mut(MsgType::kRejectDyn, &PbsServer::on_reject_dyn);
  mut(MsgType::kElastRegister, &PbsServer::on_elast_register);
  mut(MsgType::kElastPropose, &PbsServer::on_elast_propose);
  mut(MsgType::kElastAck, &PbsServer::on_elast_ack);

  note(MsgType::kJobStarted, &PbsServer::on_job_started);
  note(MsgType::kJobComplete, &PbsServer::on_job_complete);
  note(MsgType::kMsReleaseDone, &PbsServer::on_ms_release_done);
  loop.on(MsgType::kMsDynReady, ExecClass::kMutating,
          [](const Request&, Responder&) {});  // informational

  // Node-only handlers: the sharded NodeDb synchronizes itself, so these run
  // on the read pool without touching state_mu_ at all. Under a 1k-node
  // heartbeat storm this is the difference between the mutating lane
  // stalling behind pbsnodes traffic and not noticing it.
  const auto node_only = [&](MsgType type,
                             void (PbsServer::*fn)(const rpc::Request&,
                                                   Responder&)) {
    loop.on(type, ExecClass::kReadOnly,
            [this, fn](const Request& req, Responder& resp) {
              (this->*fn)(req, resp);
            });
  };

  read(MsgType::kStatJobs, &PbsServer::on_stat_jobs);
  read(MsgType::kStatJob, &PbsServer::on_stat_job);
  // Queue fetches drain the dirty-feed bookkeeping, so they need the lock
  // exclusively even though they do not change job state.
  read_excl(MsgType::kGetQueue, &PbsServer::on_get_queue);
  read_excl(MsgType::kGetSched, &PbsServer::on_get_sched);
  mut(MsgType::kDynDecide, &PbsServer::on_dyn_decide);
  node_only(MsgType::kStatNodes, &PbsServer::on_stat_nodes);
  node_only(MsgType::kGetNodes, &PbsServer::on_get_nodes);
  // Mom and dacc-backend heartbeats carry the same body (hostname) and feed
  // the same detector; two codes keep the metrics table honest about who is
  // beating. They touch only the NodeDb: no state lock.
  for (const auto type :
       {MsgType::kMomHeartbeat, MsgType::kBackendHeartbeat}) {
    loop.on(type, ExecClass::kReadOnly,
            [this](const Request& req, Responder&) { on_heartbeat(req); });
  }
}

void PbsServer::on_heartbeat(const rpc::Request& req) {
  util::ByteReader r(req.body);
  const auto hostname = r.get_string();
  if (nodes_.heartbeat(hostname, now_s())) {
    kLog.info("node '{}' back up (heartbeat resumed)", hostname);
    record_event(MsgType::kEvNodeUp);
  }
}

void PbsServer::refresh_liveness() {
  const double interval =
      std::chrono::duration<double>(timing_.mom_heartbeat_interval).count();
  const double suspect_after = timing_.heartbeat_suspect_factor * interval;
  const double down_after = timing_.heartbeat_stale_factor * interval;
  const auto changes =
      nodes_.refresh_liveness(now_s(), suspect_after, down_after);
  for (const auto& host : changes.went_suspect) {
    kLog.warn("node '{}' suspect (heartbeat overdue)", host);
    record_event(MsgType::kEvNodeSuspect);
  }
  for (const auto& host : changes.went_down) {
    kLog.warn("node '{}' marked down (stale heartbeat)", host);
    record_event(MsgType::kEvNodeDown);
    handle_node_down(host);
  }
}

void PbsServer::handle_node_down(const std::string& hostname) {
  const auto n = nodes_.lookup(hostname);
  if (!n) return;
  if (n->kind == NodeKind::kCompute) {
    fail_jobs_on(hostname);
  } else {
    reclaim_accel_slots(hostname);
  }
}

void PbsServer::wake_scheduler() {
  if (!scheduler_known_) return;
  // Coalesce: a wake already in flight covers this change too — the
  // scheduler disarms before it fetches state.
  if (!wake_gate_.try_arm()) return;
  rpc::notify(*endpoint_, scheduler_, MsgType::kSchedWake, {});
}

std::vector<HostRef> PbsServer::host_refs(
    const std::vector<std::string>& hostnames) const {
  std::vector<HostRef> out;
  out.reserve(hostnames.size());
  for (const auto& h : hostnames) {
    HostRef ref;
    ref.hostname = h;
    if (const auto n = nodes_.lookup(h)) {
      ref.node = n->node_id;
      ref.mom = n->mom_addr;
    }
    out.push_back(std::move(ref));
  }
  return out;
}

// --------------------------------------------------------------- clients

void PbsServer::on_submit(const rpc::Request& req, svc::Responder& resp) {
  util::ByteReader r(req.body);
  JobRecord rec;
  rec.info.id = next_job_id_++;
  rec.info.spec = get_job_spec(r);
  rec.info.state = JobState::kQueued;
  rec.info.submit_time = now_s();
  // The submission's trace follows the job through scheduling and launch:
  // the SUBMIT handler span (current context) is its origin.
  rec.info.trace_id = trace::current().trace;
  rec.info.origin_span = trace::current().span;
  const auto id = rec.info.id;
  trace::note("job", std::to_string(id));
  jobs_.emplace(id, std::move(rec));
  touch_job(id);
  kLog.info("job {} '{}' queued ({} nodes, acpn {})", id,
            jobs_[id].info.spec.name, jobs_[id].info.spec.resources.nodes,
            jobs_[id].info.spec.resources.acpn);
  util::ByteWriter w;
  w.put<std::uint64_t>(id);
  resp.ok(std::move(w).take());
  wake_scheduler();
}

void PbsServer::on_stat_jobs(const rpc::Request& req, svc::Responder& resp) {
  (void)req;
  util::ByteWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(jobs_.size()));
  for (const auto& [id, rec] : jobs_) put_job_info(w, rec.info);
  resp.ok(std::move(w).take());
}

void PbsServer::on_stat_job(const rpc::Request& req, svc::Responder& resp) {
  // Point query for pollers (wait_for_state): O(1) instead of shipping the
  // whole — ever-growing — job table on every poll.
  util::ByteReader r(req.body);
  const auto id = r.get<std::uint64_t>();
  util::ByteWriter w;
  if (auto it = jobs_.find(id); it != jobs_.end()) {
    w.put_bool(true);
    put_job_info(w, it->second.info);
  } else {
    w.put_bool(false);
  }
  resp.ok(std::move(w).take());
}

void PbsServer::on_stat_nodes(const rpc::Request& req, svc::Responder& resp) {
  // No detector advance here: the liveness tick runs at the heartbeat
  // cadence regardless of pbsnodes traffic, and this handler holds no lock
  // that would let it mutate job state anyway.
  (void)req;
  util::ByteWriter w;
  const auto snap = nodes_.snapshot();
  w.put<std::uint32_t>(static_cast<std::uint32_t>(snap.size()));
  for (const auto& n : snap) put_node_status(w, n);
  resp.ok(std::move(w).take());
}

void PbsServer::reject_job_dyns(JobRecord& job) {
  // Reject waiting requests first: finish_dyn on the active one activates
  // the next waiter, which would put it back in the scheduler's queue.
  while (!job.dyn_waiting.empty()) {
    const auto waiting_id = job.dyn_waiting.front();
    job.dyn_waiting.pop_front();
    if (auto dit = dyn_.find(waiting_id); dit != dyn_.end()) {
      DynGetReply reply;  // rejected
      util::ByteWriter w;
      put_dynget_reply(w, reply);
      dit->second.responder.ok(std::move(w).take());
      dyn_.erase(dit);
    }
  }
  if (job.dyn_active != 0) {
    if (auto dit = dyn_.find(job.dyn_active); dit != dyn_.end()) {
      DynGetReply reply;  // rejected
      finish_dyn(dit->second, reply);
    }
    job.dyn_active = 0;
  }
}

void PbsServer::fail_jobs_on(const std::string& hostname) {
  // A compute node died: jobs it mother-superiors (or computes for) cannot
  // finish on it. With job_requeue_limit > 0 the job goes back to kQueued
  // (all held resources freed, host lists cleared) for the scheduler to
  // place afresh; past the limit — or with the default limit of 0 — it is
  // failed outright. Accelerator nodes are handled by reclaim_accel_slots.
  for (auto& [id, rec] : jobs_) {
    if (rec.info.state != JobState::kRunning &&
        rec.info.state != JobState::kDynQueued) {
      continue;
    }
    const auto& hosts = rec.info.compute_hosts;
    if (std::find(hosts.begin(), hosts.end(), hostname) == hosts.end()) {
      continue;
    }
    if (rec.ms_valid) {
      // Tell the mother superior to tear the job down. If the MS itself is
      // the dead node the message lands in a dead mailbox — harmless.
      util::ByteWriter w;
      w.put<std::uint64_t>(id);
      rpc::notify(*endpoint_, rec.ms, MsgType::kMomKillJob,
                  std::move(w).take());
      rec.ms_valid = false;
    }
    nodes_.release_all(id);
    elastic_.cancel_job(id);  // reservations freed by release_all above
    reject_job_dyns(rec);
    rec.dyn_sets.clear();
    rec.info.compute_hosts.clear();
    rec.info.accel_hosts.clear();
    rec.info.dyn_accel_hosts.clear();
    if (rec.info.requeues < timing_.job_requeue_limit) {
      ++rec.info.requeues;
      rec.info.state = JobState::kQueued;
      rec.info.start_time = -1.0;
      rec.info.end_time = -1.0;
      rec.info.exit_status = kExitOk;
      kLog.warn("requeueing job {} (attempt {}): compute node '{}' down", id,
                rec.info.requeues, hostname);
      record_event(MsgType::kEvJobRequeue);
    } else {
      kLog.warn("failing job {}: compute node '{}' went down", id, hostname);
      rec.info.state = JobState::kCancelled;
      rec.info.exit_status = kExitKilled;
      rec.info.end_time = now_s();
      record_event(MsgType::kEvJobFailed);
    }
    touch_job(id);
    wake_scheduler();
  }
}

void PbsServer::reclaim_accel_slots(const std::string& hostname) {
  // An accelerator node died. Its slots are reclaimed here so the scheduler
  // can re-grant the capacity elsewhere; the running job is NOT killed —
  // the application sees the loss as a distinct frontend error and may
  // pbs_dynget a replacement.
  bool reclaimed = false;
  for (auto& [id, rec] : jobs_) {
    bool held = false;
    if (std::erase(rec.info.accel_hosts, hostname) > 0) held = true;
    if (std::erase(rec.info.dyn_accel_hosts, hostname) > 0) held = true;
    for (auto it = rec.dyn_sets.begin(); it != rec.dyn_sets.end();) {
      std::erase(it->second, hostname);
      it = it->second.empty() ? rec.dyn_sets.erase(it) : std::next(it);
    }
    if (held) {
      nodes_.release(hostname, id);
      touch_job(id);
      kLog.warn("reclaimed accelerator '{}' from job {} (node down)",
                hostname, id);
      record_event(MsgType::kEvAcReclaim);
      reclaimed = true;
    }
  }
  // Elastic offers touching the dead host cannot complete. Grow
  // reservations are not in any job host list (the loop above never sees
  // them), so release every reserved slot here — including those on hosts
  // that are still alive.
  for (const auto& offer : elastic_.cancel_on_host(hostname)) {
    if (offer.kind == elastic::OfferKind::kGrow) {
      for (const auto& h : offer.hosts) nodes_.release(h, offer.job);
    }
    kLog.warn("elastic offer {} for job {} cancelled: node '{}' down",
              offer.id, offer.job, hostname);
    reclaimed = true;
  }
  if (reclaimed) wake_scheduler();
}

void PbsServer::on_delete_job(const rpc::Request& req, svc::Responder& resp) {
  util::ByteReader r(req.body);
  const auto id = r.get<std::uint64_t>();
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    resp.error(ReplyCode::kUnknownJob, "no such job");
    return;
  }
  auto& rec = it->second;
  if (rec.info.state == JobState::kRunning ||
      rec.info.state == JobState::kDynQueued) {
    if (rec.ms_valid) {
      util::ByteWriter w;
      w.put<std::uint64_t>(id);
      rpc::notify(*endpoint_, rec.ms, MsgType::kMomKillJob, std::move(w).take());
    }
    nodes_.release_all(id);
  }
  elastic_.cancel_job(id);  // reservations freed by release_all above
  rec.info.state = JobState::kCancelled;
  rec.info.end_time = now_s();
  touch_job(id);
  resp.ok();
  wake_scheduler();
}

void PbsServer::on_alter_job(const rpc::Request& req, svc::Responder& resp) {
  util::ByteReader r(req.body);
  const auto id = r.get<std::uint64_t>();
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    resp.error(ReplyCode::kUnknownJob, "no such job");
    return;
  }
  auto& rec = it->second;
  if (rec.info.state != JobState::kQueued) {
    resp.error(ReplyCode::kBadRequest, "qalter: job is not queued");
    return;
  }
  if (r.get_bool()) rec.info.spec.priority = r.get<std::int32_t>();
  if (r.get_bool()) {
    rec.info.spec.resources.walltime =
        std::chrono::milliseconds(r.get<std::int64_t>());
  }
  if (r.get_bool()) rec.info.spec.name = r.get_string();
  touch_job(id);
  kLog.info("job {} altered", id);
  resp.ok();
  wake_scheduler();
}

void PbsServer::on_dynget(const rpc::Request& req, svc::Responder& resp) {
  util::ByteReader r(req.body);
  const auto job_id = r.get<std::uint64_t>();
  const auto count = r.get<std::int32_t>();
  // Older callers omit min_count; default to all-or-nothing.
  const auto min_count = r.remaining() >= sizeof(std::int32_t)
                             ? r.get<std::int32_t>()
                             : count;
  const auto kind = r.remaining() >= sizeof(std::uint8_t)
                        ? r.get_enum<NodeKind>()
                        : NodeKind::kAccelerator;
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    resp.error(ReplyCode::kUnknownJob, "dynget: no such job");
    return;
  }
  if (it->second.info.state != JobState::kRunning &&
      it->second.info.state != JobState::kDynQueued) {
    resp.error(ReplyCode::kBadRequest, "dynget: job not running");
    return;
  }
  if (count <= 0 || min_count <= 0 || min_count > count) {
    resp.error(ReplyCode::kBadRequest, "dynget: need 0 < min_count <= count");
    return;
  }
  auto& rec = it->second;

  DynRecord dyn;
  dyn.id = next_dyn_id_++;
  dyn.job = job_id;
  dyn.count = count;
  dyn.min_count = min_count;
  dyn.kind = kind;
  // Requester's trace context: the scheduler's grant/reject decision span
  // joins this trace via the queue snapshot.
  dyn.trace_id = req.ctx.trace;
  dyn.origin_span = req.ctx.span;
  trace::note("job", std::to_string(job_id));
  trace::note("dyn", std::to_string(dyn.id));
  // Deferred reply: the Responder is completed by finish_dyn once the
  // scheduler has decided (or the job dies first).
  dyn.responder = resp;
  dyn.arrival_ns = steady_ns();
  dyn.arrival_s = now_s();
  const auto dyn_id = dyn.id;
  dyn_.emplace(dyn_id, dyn);

  // The paper's server services one dynamic request at a time per job;
  // later requests wait at the server (§III-D).
  if (rec.dyn_active != 0) {
    rec.dyn_waiting.push_back(dyn_id);
    kLog.debug("dyn {} for job {} waits behind dyn {}", dyn_id, job_id,
               rec.dyn_active);
    return;
  }
  rec.dyn_active = dyn_id;
  rec.info.state = JobState::kDynQueued;
  dyn_.at(dyn_id).active = true;
  dyn_fifo_.push_back(dyn_id);
  touch_job(job_id);
  kLog.info("job {} dynqueued: +{} accelerators (dyn {})", job_id, count,
            dyn_id);
  wake_scheduler();
}

void PbsServer::activate_next_dyn(JobRecord& job) {
  job.dyn_active = 0;
  if (job.info.state == JobState::kDynQueued) {
    job.info.state = JobState::kRunning;
  }
  while (!job.dyn_waiting.empty()) {
    const auto next_id = job.dyn_waiting.front();
    job.dyn_waiting.pop_front();
    auto it = dyn_.find(next_id);
    if (it == dyn_.end()) continue;
    job.dyn_active = next_id;
    job.info.state = JobState::kDynQueued;
    it->second.active = true;
    dyn_fifo_.push_back(next_id);
    wake_scheduler();
    return;
  }
}

void PbsServer::finish_dyn(DynRecord& dyn, const DynGetReply& reply) {
  util::ByteWriter w;
  put_dynget_reply(w, reply);
  dyn.responder.ok(std::move(w).take());
  std::erase(dyn_fifo_, dyn.id);
  auto job_it = jobs_.find(dyn.job);
  const auto dyn_id = dyn.id;
  // Finishing a dyn flips the job's DYNQUEUED/RUNNING state (and a grant
  // changed its host lists before calling here).
  touch_job(dyn.job);
  if (job_it != jobs_.end()) activate_next_dyn(job_it->second);
  dyn_.erase(dyn_id);
}

void PbsServer::on_dynfree(const rpc::Request& req, svc::Responder& resp) {
  util::ByteReader r(req.body);
  const auto job_id = r.get<std::uint64_t>();
  const auto client_id = r.get<std::uint64_t>();
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    resp.error(ReplyCode::kUnknownJob, "no such job");
    return;
  }
  auto& rec = it->second;
  auto set = rec.dyn_sets.find(client_id);
  if (set == rec.dyn_sets.end()) {
    resp.error(ReplyCode::kBadRequest, "dynfree: unknown client id");
    return;
  }
  // Positive reply first; disassociation proceeds while the application
  // continues (paper §III-D).
  resp.ok();
  (void)release_dyn_set(job_id, rec, client_id);
}

bool PbsServer::release_dyn_set(JobId job_id, JobRecord& rec,
                                std::uint64_t client_id) {
  auto set = rec.dyn_sets.find(client_id);
  if (set == rec.dyn_sets.end()) return false;

  // The mother superior's DISJOIN protocol is a blocking collective with
  // every released mom — a down host would hang it. Release dead hosts
  // directly here and only forward the live remainder.
  std::vector<std::string> live;
  std::vector<std::string> dead;
  for (const auto& h : set->second) {
    const auto n = nodes_.lookup(h);
    (n && n->liveness == Liveness::kDown ? dead : live).push_back(h);
  }
  for (const auto& h : dead) {
    nodes_.release(h, job_id);
    std::erase(rec.info.dyn_accel_hosts, h);
    touch_job(job_id);
  }
  if (rec.ms_valid && !live.empty()) {
    set->second = live;  // ms_release_done frees exactly what was forwarded
    util::ByteWriter w;
    w.put<std::uint64_t>(job_id);
    w.put<std::uint64_t>(client_id);
    put_host_refs(w, host_refs(live));
    rpc::notify(*endpoint_, rec.ms, MsgType::kMomRelease, std::move(w).take());
    return true;
  }
  // No mother superior (already exiting) or nothing left alive: free
  // directly.
  for (const auto& h : live) nodes_.release(h, job_id);
  std::erase_if(rec.info.dyn_accel_hosts, [&](const std::string& h) {
    return std::find(live.begin(), live.end(), h) != live.end();
  });
  rec.dyn_sets.erase(set);
  touch_job(job_id);
  wake_scheduler();
  return false;
}

void PbsServer::on_ms_release_done(const rpc::Request& req) {
  util::ByteReader r(req.body);
  const auto job_id = r.get<std::uint64_t>();
  const auto client_id = r.get<std::uint64_t>();
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  auto& rec = it->second;
  auto set = rec.dyn_sets.find(client_id);
  if (set == rec.dyn_sets.end()) return;
  for (const auto& h : set->second) nodes_.release(h, job_id);
  std::erase_if(rec.info.dyn_accel_hosts, [&](const std::string& h) {
    return std::find(set->second.begin(), set->second.end(), h) !=
           set->second.end();
  });
  rec.dyn_sets.erase(set);
  touch_job(job_id);
  kLog.info("job {} released dynamic set {}", job_id, client_id);
  // If this release completed an accepted elastic shrink, the negotiation is
  // over: the offer stops blocking new proposals for the job.
  if (const auto offer = elastic_.take_draining(job_id, client_id)) {
    kLog.info("elastic shrink of job {} committed (offer {}, set {})",
              job_id, offer->id, client_id);
  }
  wake_scheduler();
}

void PbsServer::on_register_node(const rpc::Request& req,
                                 svc::Responder& resp) {
  util::ByteReader r(req.body);
  auto status = get_node_status(r);
  kLog.info("node '{}' registered ({}, np {})", status.hostname,
            status.kind == NodeKind::kCompute ? "compute" : "accelerator",
            status.np);
  const auto hostname = status.hostname;
  nodes_.upsert(std::move(status));
  nodes_.heartbeat(hostname, now_s());
  resp.ok();
}

void PbsServer::on_register_scheduler(const rpc::Request& req,
                                      svc::Responder& resp) {
  // The body carries the scheduler's long-lived endpoint (req.from is the
  // ephemeral rpc endpoint of the registration call).
  util::ByteReader r(req.body);
  scheduler_.node = r.get<std::int32_t>();
  scheduler_.port = r.get<std::int32_t>();
  scheduler_known_ = true;
  kLog.info("scheduler registered at {}", scheduler_.str());
  resp.ok();
  wake_scheduler();
}

void PbsServer::on_job_started(const rpc::Request& req) {
  util::ByteReader r(req.body);
  const auto id = r.get<std::uint64_t>();
  if (auto it = jobs_.find(id); it != jobs_.end()) {
    it->second.info.start_time = now_s();
    touch_job(id);
    kLog.info("job {} started", id);
  }
}

void PbsServer::on_job_complete(const rpc::Request& req) {
  util::ByteReader r(req.body);
  const auto id = r.get<std::uint64_t>();
  const auto exit_status = r.remaining() >= sizeof(std::int32_t)
                               ? r.get<std::int32_t>()
                               : kExitOk;
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  auto& rec = it->second;
  nodes_.release_all(id);
  // Drop elastic state with the job. Grow reservations are assigned under
  // the job id, so release_all above already freed them — no extra release.
  elastic_.cancel_job(id);
  rec.info.state = JobState::kComplete;
  rec.info.exit_status = exit_status;
  rec.info.end_time = now_s();
  rec.ms_valid = false;
  touch_job(id);
  // Fail any dynamic request still pending for the departed job.
  if (rec.dyn_active != 0) {
    if (auto dit = dyn_.find(rec.dyn_active); dit != dyn_.end()) {
      DynGetReply reply;  // rejected
      finish_dyn(dit->second, reply);
    }
  }
  kLog.info("job {} complete", id);
  wake_scheduler();
}

// ------------------------------------------------------------- scheduler

std::vector<DynQueueEntry> PbsServer::dyn_entries() const {
  std::vector<DynQueueEntry> out;
  out.reserve(dyn_fifo_.size());
  for (const auto dyn_id : dyn_fifo_) {
    const auto& d = dyn_.at(dyn_id);
    out.push_back(DynQueueEntry{d.id, d.job, d.count, d.min_count, d.kind,
                                d.arrival_s, d.trace_id, d.origin_span});
  }
  return out;
}

std::vector<elastic::JobView> PbsServer::elastic_views() const {
  std::vector<elastic::JobView> out;
  for (const auto& [job_id, reg] : elastic_.registrations()) {
    const auto jit = jobs_.find(job_id);
    if (jit == jobs_.end()) continue;
    const auto& rec = jit->second;
    if (rec.info.state != JobState::kRunning &&
        rec.info.state != JobState::kDynQueued) {
      continue;
    }
    elastic::JobView v;
    v.job = job_id;
    v.can_grow = reg.can_grow;
    v.can_shrink = reg.can_shrink;
    v.grow_kind = reg.grow_kind;
    v.appetite = reg.appetite;
    v.offer_pending = elastic_.offer_pending(job_id);
    for (const auto& [cid, hosts] : rec.dyn_sets) {
      v.shrinkable_sets.push_back(cid);
    }
    if (!rec.dyn_sets.empty()) {
      v.newest_set_size =
          static_cast<std::int32_t>(rec.dyn_sets.rbegin()->second.size());
    }
    out.push_back(std::move(v));
  }
  return out;
}

void PbsServer::on_get_queue(const rpc::Request& req, svc::Responder& resp) {
  (void)req;
  // The legacy full-fetch path. It still drains the incremental feed's
  // bookkeeping: a scheduler running in ablation (incremental off) would
  // otherwise grow the dirty sets without bound.
  wake_gate_.disarm();
  (void)sched_feed_.begin_fetch(0, /*force_full=*/true);
  (void)nodes_.drain_dirty();
  QueueSnapshot snap;
  snap.now = now_s();
  snap.jobs.reserve(jobs_.size());
  for (const auto& [id, rec] : jobs_) {
    // Terminal jobs are invisible to scheduling; copying them would make
    // every cycle O(all jobs ever submitted) — quadratic over a long run.
    if (rec.info.state == JobState::kComplete ||
        rec.info.state == JobState::kCancelled) {
      continue;
    }
    snap.jobs.push_back(rec.info);
  }
  snap.dyn = dyn_entries();
  snap.elastic = elastic_views();
  util::ByteWriter w;
  put_queue_snapshot(w, snap);
  resp.ok(std::move(w).take());
}

void PbsServer::on_get_sched(const rpc::Request& req, svc::Responder& resp) {
  util::ByteReader r(req.body);
  const auto client_epoch = r.get<std::uint64_t>();
  const bool force_full = r.get_bool();
  // Disarm before reading: every change serialized before this point is in
  // the fetch; anything later re-arms the gate and wakes us again.
  wake_gate_.disarm();
  const auto fetch = sched_feed_.begin_fetch(client_epoch, force_full);

  SchedDelta d;
  d.epoch = fetch.epoch;
  d.full = fetch.full;
  d.now = now_s();
  if (fetch.full) {
    for (const auto& [id, rec] : jobs_) {
      if (rec.info.state == JobState::kComplete ||
          rec.info.state == JobState::kCancelled) {
        continue;
      }
      d.jobs.push_back(rec.info);
    }
    d.nodes = nodes_.snapshot();
    (void)nodes_.drain_dirty();  // the snapshot supersedes any pending delta
  } else {
    for (const auto id : fetch.jobs) {
      // Terminal jobs ARE shipped in a delta — the mirror needs to see the
      // transition to drop them. (Job records are never erased server-side,
      // so every dirty id resolves.)
      if (const auto it = jobs_.find(id); it != jobs_.end()) {
        d.jobs.push_back(it->second.info);
      }
    }
    for (const auto& host : nodes_.drain_dirty()) {
      if (auto st = nodes_.lookup(host)) d.nodes.push_back(*std::move(st));
    }
  }
  d.dyn = dyn_entries();
  d.elastic = elastic_views();
  util::ByteWriter w;
  put_sched_delta(w, d);
  resp.ok(std::move(w).take());
}

void PbsServer::on_get_nodes(const rpc::Request& req, svc::Responder& resp) {
  on_stat_nodes(req, resp);
}

void PbsServer::on_run_job(const rpc::Request& req, svc::Responder& resp) {
  util::ByteReader r(req.body);
  const auto id = r.get<std::uint64_t>();
  auto compute_hosts = r.get_string_vector();
  auto accel_hosts = r.get_string_vector();

  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.info.state != JobState::kQueued) {
    resp.error(ReplyCode::kUnknownJob, "run_job: job not queued");
    return;
  }
  auto& rec = it->second;
  trace::note("job", std::to_string(id));

  // Apply the allocation; back out if the scheduler raced a release.
  std::vector<std::pair<std::string, int>> applied;
  bool ok = true;
  for (const auto& h : compute_hosts) {
    if (nodes_.assign(h, id, rec.info.spec.resources.ppn)) {
      applied.emplace_back(h, rec.info.spec.resources.ppn);
    } else {
      ok = false;
      break;
    }
  }
  for (const auto& h : accel_hosts) {
    if (!ok) break;
    if (nodes_.assign(h, id, 1)) {
      applied.emplace_back(h, 1);
    } else {
      ok = false;
    }
  }
  if (!ok) {
    for (const auto& [h, slots] : applied) nodes_.release(h, id);
    resp.error(ReplyCode::kError, "run_job: allocation conflict");
    return;
  }

  rec.info.compute_hosts = compute_hosts;
  rec.info.accel_hosts = accel_hosts;
  rec.info.state = JobState::kRunning;
  touch_job(id);
  resp.ok();

  if (rec.info.spec.program.empty()) {
    // Load-only job (no script): completes immediately.
    rec.info.start_time = now_s();
    rec.info.state = JobState::kComplete;
    rec.info.end_time = now_s();
    nodes_.release_all(id);
    wake_scheduler();
    return;
  }

  const auto ms = nodes_.mom_of(compute_hosts.front());
  if (!ms) {
    kLog.error("job {}: no mom for mother superior host '{}'", id,
               compute_hosts.front());
    return;
  }
  rec.ms = *ms;
  rec.ms_valid = true;

  // Full host list: compute nodes first, then accelerators (paper: the MS is
  // always a compute node).
  std::vector<std::string> all_hosts = compute_hosts;
  all_hosts.insert(all_hosts.end(), accel_hosts.begin(), accel_hosts.end());
  util::ByteWriter w;
  put_job_info(w, rec.info);
  put_host_refs(w, host_refs(all_hosts));
  rpc::notify(*endpoint_, rec.ms, MsgType::kMomRunJob, std::move(w).take());
  kLog.info("job {} sent to mother superior {}", id,
            compute_hosts.front());
}

PbsServer::DynApply PbsServer::apply_dyn_grant(
    std::uint64_t dyn_id, std::uint64_t pickup_ns,
    const std::vector<std::string>& hosts) {
  auto dit = dyn_.find(dyn_id);
  if (dit == dyn_.end()) return DynApply::kUnknownRequest;
  auto& dyn = dit->second;
  auto jit = jobs_.find(dyn.job);
  if (jit == jobs_.end()) return DynApply::kJobVanished;
  auto& rec = jit->second;

  std::vector<std::pair<std::string, int>> applied;
  bool ok = hosts.size() >= static_cast<std::size_t>(dyn.min_count) &&
            hosts.size() <= static_cast<std::size_t>(dyn.count);
  for (const auto& h : hosts) {
    if (!ok) break;
    if (nodes_.assign(h, dyn.job, 1)) {
      applied.emplace_back(h, 1);
    } else {
      ok = false;
    }
  }
  if (!ok) {
    for (const auto& [h, slots] : applied) nodes_.release(h, dyn.job);
    DynGetReply reply;  // rejected
    reply.queue_wait_seconds =
        static_cast<double>(pickup_ns - dyn.arrival_ns) * 1e-9;
    finish_dyn(dyn, reply);
    return DynApply::kConflict;
  }

  // The grant came entirely from the free pool (every assign succeeded) and
  // honors the request bounds the scheduler saw.
  DAC_CHECK(applied.size() == hosts.size(),
            "dyn {}: granted {} hosts but only {} applied", dyn_id,
            hosts.size(), applied.size());
  DAC_CHECK(hosts.size() >= static_cast<std::size_t>(dyn.min_count) &&
                hosts.size() <= static_cast<std::size_t>(dyn.count),
            "dyn {}: grant of {} outside [{}, {}]", dyn_id, hosts.size(),
            dyn.min_count, dyn.count);

  const auto client_id = next_client_id_++;
  rec.dyn_sets[client_id] = hosts;
  rec.info.dyn_accel_hosts.insert(rec.info.dyn_accel_hosts.end(),
                                  hosts.begin(), hosts.end());

  const auto refs = host_refs(hosts);

  // Forward the addition to the mother superior first, then answer the
  // compute node with the client-id — the paper's ordering (§III-D).
  if (rec.ms_valid) {
    util::ByteWriter w;
    w.put<std::uint64_t>(dyn.job);
    w.put<std::uint64_t>(dyn_id);
    w.put<std::uint64_t>(client_id);
    put_host_refs(w, refs);
    rpc::notify(*endpoint_, rec.ms, MsgType::kMomDynAdd, std::move(w).take());
  }

  DynGetReply reply;
  reply.granted = true;
  reply.client_id = client_id;
  for (const auto& ref : refs) {
    reply.hosts.push_back(ref.hostname);
    reply.host_nodes.push_back(ref.node);
  }
  const auto done_ns = steady_ns();
  reply.queue_wait_seconds =
      static_cast<double>(pickup_ns - dyn.arrival_ns) * 1e-9;
  reply.service_seconds = static_cast<double>(done_ns - pickup_ns) * 1e-9;
  kLog.info("dyn {} for job {} granted: {} accelerator(s), client id {}",
            dyn_id, dyn.job, reply.hosts.size(), client_id);
  finish_dyn(dyn, reply);
  return DynApply::kApplied;
}

bool PbsServer::apply_dyn_reject(std::uint64_t dyn_id,
                                 std::uint64_t pickup_ns) {
  auto dit = dyn_.find(dyn_id);
  if (dit == dyn_.end()) return false;
  auto& dyn = dit->second;
  DynGetReply reply;  // granted = false
  const auto done_ns = steady_ns();
  reply.queue_wait_seconds =
      static_cast<double>(pickup_ns - dyn.arrival_ns) * 1e-9;
  reply.service_seconds = static_cast<double>(done_ns - pickup_ns) * 1e-9;
  kLog.info("dyn {} for job {} rejected by scheduler", dyn_id, dyn.job);
  finish_dyn(dyn, reply);
  return true;
}

void PbsServer::on_run_dyn(const rpc::Request& req, svc::Responder& resp) {
  util::ByteReader r(req.body);
  const auto dyn_id = r.get<std::uint64_t>();
  const auto pickup_ns = r.get<std::uint64_t>();
  const auto hosts = r.get_string_vector();
  switch (apply_dyn_grant(dyn_id, pickup_ns, hosts)) {
    case DynApply::kApplied:
      resp.ok();
      break;
    case DynApply::kUnknownRequest:
      resp.error(ReplyCode::kBadRequest, "run_dyn: unknown dyn request");
      break;
    case DynApply::kJobVanished:
      resp.error(ReplyCode::kUnknownJob, "run_dyn: job vanished");
      break;
    case DynApply::kConflict:
      resp.error(ReplyCode::kError, "run_dyn: allocation conflict");
      break;
  }
}

void PbsServer::on_reject_dyn(const rpc::Request& req, svc::Responder& resp) {
  util::ByteReader r(req.body);
  const auto dyn_id = r.get<std::uint64_t>();
  const auto pickup_ns = r.get<std::uint64_t>();
  if (!apply_dyn_reject(dyn_id, pickup_ns)) {
    resp.error(ReplyCode::kBadRequest, "reject_dyn: unknown dyn request");
    return;
  }
  resp.ok();
}

void PbsServer::on_dyn_decide(const rpc::Request& req, svc::Responder& resp) {
  // One cycle's worth of scheduler decisions, applied under a single lock
  // acquisition. Each decision replays inside the requester's trace (the
  // scheduler shipped its per-decision span), so the causal tree looks the
  // same as with per-request kRunDyn/kRejectDyn. Stale or conflicting
  // decisions are not batch errors: the conflict path already rejected the
  // request, and a vanished id means the job died after the fetch.
  util::ByteReader r(req.body);
  const auto decisions = get_dyn_decisions(r);
  std::uint32_t applied = 0;
  for (const auto& dec : decisions) {
    trace::SpanScope span("serve.dyn_apply",
                          trace::Context{dec.trace_id, dec.span});
    trace::note("dyn", std::to_string(dec.dyn_id));
    if (dec.grant) {
      if (apply_dyn_grant(dec.dyn_id, dec.pickup_ns, dec.hosts) ==
          DynApply::kApplied) {
        ++applied;
      }
    } else if (apply_dyn_reject(dec.dyn_id, dec.pickup_ns)) {
      ++applied;
    }
  }
  util::ByteWriter w;
  w.put<std::uint32_t>(applied);
  resp.ok(std::move(w).take());
}

// ---------------------------------------------------- elastic negotiation

void PbsServer::on_elast_register(const rpc::Request& req,
                                  svc::Responder& resp) {
  util::ByteReader r(req.body);
  const auto reg = elastic::get_registration(r);
  auto it = jobs_.find(reg.job);
  if (it == jobs_.end()) {
    resp.error(ReplyCode::kUnknownJob, "elast_register: no such job");
    return;
  }
  const auto state = it->second.info.state;
  if (state != JobState::kRunning && state != JobState::kDynQueued) {
    resp.error(ReplyCode::kBadRequest, "elast_register: job not running");
    return;
  }
  trace::note("job", std::to_string(reg.job));
  elastic_.register_job(reg);
  kLog.info("job {} registered elastic agent at {} (grow {}, shrink {}, "
            "appetite {})",
            reg.job, reg.agent.str(), static_cast<int>(reg.can_grow),
            static_cast<int>(reg.can_shrink), reg.appetite);
  resp.ok();
  wake_scheduler();
}

void PbsServer::on_elast_propose(const rpc::Request& req,
                                 svc::Responder& resp) {
  util::ByteReader r(req.body);
  const auto prop = elastic::get_proposal(r);
  const auto* reg = elastic_.agent(prop.job);
  auto it = jobs_.find(prop.job);
  if (reg == nullptr || it == jobs_.end()) {
    resp.error(ReplyCode::kBadRequest, "elast_propose: job not registered");
    return;
  }
  auto& rec = it->second;
  if (rec.info.state != JobState::kRunning &&
      rec.info.state != JobState::kDynQueued) {
    resp.error(ReplyCode::kBadRequest, "elast_propose: job not running");
    return;
  }
  if (elastic_.offer_pending(prop.job)) {
    resp.error(ReplyCode::kBadRequest, "elast_propose: negotiation in flight");
    return;
  }
  if (prop.count <= 0) {
    resp.error(ReplyCode::kBadRequest, "elast_propose: need count > 0");
    return;
  }
  trace::note("job", std::to_string(prop.job));

  elastic::Broker::OfferRecord offer;
  offer.job = prop.job;
  offer.kind = prop.kind;
  offer.deadline =
      now_s() +
      std::chrono::duration<double>(timing_.elastic_offer_timeout).count();

  if (prop.kind == elastic::OfferKind::kGrow) {
    if (!reg->can_grow) {
      resp.error(ReplyCode::kBadRequest, "elast_propose: job cannot grow");
      return;
    }
    // Reserve free slots immediately so the offer window cannot be raced by
    // a normal grant. The reservation is assigned under the job id, so a
    // dying job's release_all frees it without knowing about the offer.
    const int slots = prop.node_kind == NodeKind::kAccelerator
                          ? 1
                          : rec.info.spec.resources.ppn;
    for (const auto& n : nodes_.snapshot()) {
      if (static_cast<std::int32_t>(offer.hosts.size()) >= prop.count) break;
      if (n.kind != prop.node_kind || !n.up || n.free_slots() < slots) {
        continue;
      }
      if (!nodes_.assign(n.hostname, prop.job, slots)) continue;
      offer.hosts.push_back(n.hostname);
      offer.nodes.push_back(n.node_id);
    }
    if (offer.hosts.empty()) {
      resp.error(ReplyCode::kError, "elast_propose: no free nodes");
      return;
    }
  } else {
    if (!reg->can_shrink) {
      resp.error(ReplyCode::kBadRequest, "elast_propose: job cannot shrink");
      return;
    }
    if (rec.dyn_sets.empty()) {
      resp.error(ReplyCode::kBadRequest, "elast_propose: nothing to shrink");
      return;
    }
    // Dynamic sets release LIFO (rmlib generations): offer the newest.
    const auto newest = rec.dyn_sets.rbegin();
    offer.client_id = newest->first;
    offer.hosts = newest->second;
    for (const auto& ref : host_refs(offer.hosts)) {
      offer.nodes.push_back(ref.node);
    }
  }

  const auto offer_id = elastic_.start_offer(offer);
  elastic::Offer wire;
  wire.offer_id = offer_id;
  wire.job = prop.job;
  wire.kind = prop.kind;
  wire.client_id = offer.client_id;
  wire.hosts = offer.hosts;
  wire.nodes = offer.nodes;
  util::ByteWriter w;
  elastic::put_offer(w, wire);
  rpc::notify(*endpoint_, reg->agent, MsgType::kElastOffer,
              std::move(w).take());
  kLog.info("elastic {} offer {} for job {}: {} host(s)",
            elastic::offer_kind_name(prop.kind), offer_id, prop.job,
            wire.hosts.size());
  util::ByteWriter reply;
  reply.put<std::uint64_t>(offer_id);
  resp.ok(std::move(reply).take());
}

void PbsServer::on_elast_ack(const rpc::Request& req, svc::Responder& resp) {
  util::ByteReader r(req.body);
  const auto ack = elastic::get_ack(r);
  auto* offer = elastic_.find(ack.offer_id);
  if (offer == nullptr ||
      offer->state != elastic::Broker::OfferState::kPending ||
      offer->job != ack.job) {
    // Late ack: the offer expired (or the job died) and was reverted
    // already; the agent just lost the race.
    resp.error(ReplyCode::kBadRequest, "elast_ack: no such pending offer");
    return;
  }
  trace::note("job", std::to_string(ack.job));
  auto it = jobs_.find(ack.job);
  if (!ack.accept || it == jobs_.end()) {
    // Nack (or the job record vanished under the offer): revert the
    // reservation and stop proposing this direction until the agent
    // re-registers with fresh capabilities.
    const elastic::Broker::OfferRecord removed = *offer;
    elastic_.erase(ack.offer_id);
    elastic_.clear_capability(removed.job, removed.kind);
    if (removed.kind == elastic::OfferKind::kGrow) {
      for (const auto& h : removed.hosts) nodes_.release(h, removed.job);
    }
    kLog.info("elastic offer {} for job {} declined; reverted", ack.offer_id,
              ack.job);
    resp.ok();
    wake_scheduler();
    return;
  }
  auto& rec = it->second;
  if (offer->kind == elastic::OfferKind::kGrow) {
    const elastic::Broker::OfferRecord committed = *offer;
    elastic_.erase(ack.offer_id);
    commit_elastic_grow(rec, committed);
  } else {
    // Tell the agent the committed footprint first so the application
    // detaches from the set, then run the regular release path.
    const std::uint64_t client_id = offer->client_id;
    elastic::Reconfig re;
    re.offer_id = ack.offer_id;
    re.job = ack.job;
    re.kind = elastic::OfferKind::kShrink;
    re.client_id = client_id;
    re.hosts = offer->hosts;
    re.nodes = offer->nodes;
    if (const auto* areg = elastic_.agent(ack.job)) {
      util::ByteWriter w;
      elastic::put_offer(w, re);
      rpc::notify(*endpoint_, areg->agent, MsgType::kElastReconfig,
                  std::move(w).take());
    }
    if (rec.dyn_sets.find(client_id) == rec.dyn_sets.end()) {
      // The application freed the set itself while the offer was pending:
      // nothing left to reclaim.
      elastic_.erase(ack.offer_id);
    } else if (release_dyn_set(ack.job, rec, client_id)) {
      // Forwarded to the mother superior; the offer drains until
      // MS_RELEASE_DONE so policies do not re-propose meanwhile.
      elastic_.mark_draining(ack.offer_id);
    } else {
      elastic_.erase(ack.offer_id);
    }
    kLog.info("elastic shrink accepted by job {}: releasing set {}", ack.job,
              client_id);
  }
  resp.ok();
  wake_scheduler();
}

void PbsServer::commit_elastic_grow(
    JobRecord& rec, const elastic::Broker::OfferRecord& offer) {
  // The reservation must still be intact: every reserved host shows the job
  // among its holders. Slot conservation is the invariant the negotiation
  // promises — no double grant, no leak.
  for (const auto& h : offer.hosts) {
    const auto n = nodes_.lookup(h);
    DAC_CHECK(n.has_value() &&
                  std::find(n->jobs.begin(), n->jobs.end(), offer.job) !=
                      n->jobs.end(),
              "elastic grow: reservation on '{}' lost before commit", h);
  }
  const auto client_id = next_client_id_++;
  rec.dyn_sets[client_id] = offer.hosts;
  rec.info.dyn_accel_hosts.insert(rec.info.dyn_accel_hosts.end(),
                                  offer.hosts.begin(), offer.hosts.end());
  touch_job(offer.job);
  elastic_.consume_appetite(offer.job,
                            static_cast<std::int32_t>(offer.hosts.size()));

  const auto refs = host_refs(offer.hosts);
  // Forward the addition to the mother superior first, then tell the agent —
  // the same ordering as a dynget grant (§III-D), so the moms know the set
  // before the application starts using it.
  if (rec.ms_valid) {
    util::ByteWriter w;
    w.put<std::uint64_t>(offer.job);
    w.put<std::uint64_t>(0);  // no dynget behind this addition
    w.put<std::uint64_t>(client_id);
    put_host_refs(w, refs);
    rpc::notify(*endpoint_, rec.ms, MsgType::kMomDynAdd, std::move(w).take());
  }
  if (const auto* reg = elastic_.agent(offer.job)) {
    elastic::Reconfig re;
    re.offer_id = offer.id;
    re.job = offer.job;
    re.kind = elastic::OfferKind::kGrow;
    re.client_id = client_id;
    re.hosts = offer.hosts;
    re.nodes = offer.nodes;
    util::ByteWriter w;
    elastic::put_offer(w, re);
    rpc::notify(*endpoint_, reg->agent, MsgType::kElastReconfig,
                std::move(w).take());
  }
  kLog.info("elastic grow committed for job {}: {} host(s), client id {}",
            offer.job, offer.hosts.size(), client_id);
}

void PbsServer::sweep_elastic_offers() {
  for (const auto& offer : elastic_.take_expired(now_s())) {
    if (offer.kind == elastic::OfferKind::kGrow) {
      for (const auto& h : offer.hosts) nodes_.release(h, offer.job);
    }
    kLog.warn("elastic offer {} for job {} timed out; reverted", offer.id,
              offer.job);
    wake_scheduler();
  }
}

}  // namespace dac::torque
