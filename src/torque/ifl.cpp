#include "torque/ifl.hpp"
#include "simtime/clock.hpp"

#include <thread>

#include "torque/rpc.hpp"

namespace dac::torque {

Ifl::Ifl(vnet::Node& node, vnet::Address server, svc::RetryPolicy retry)
    : caller_(node, server, retry), server_(server) {}

Ifl::Ifl(vnet::Process& proc, vnet::Address server, svc::RetryPolicy retry)
    : caller_(proc, server, retry), server_(server) {}

util::Bytes Ifl::call(MsgType type, util::Bytes body,
                      std::chrono::milliseconds timeout) {
  // The server's ServiceLoop deduplicates retransmitted request-ids, so every
  // IFL operation (including submit and dynget) is safe to retry.
  return caller_.call(type, std::move(body), {.deadline = timeout});
}

JobId Ifl::submit(const JobSpec& spec) {
  util::ByteWriter w;
  put_job_spec(w, spec);
  auto reply = call(MsgType::kSubmit, std::move(w).take(),
                    rpc::kDefaultTimeout);
  util::ByteReader r(reply);
  return r.get<std::uint64_t>();
}

std::vector<JobInfo> Ifl::stat_jobs() {
  auto reply = call(MsgType::kStatJobs, {}, rpc::kDefaultTimeout);
  util::ByteReader r(reply);
  const auto n = r.get<std::uint32_t>();
  std::vector<JobInfo> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(get_job_info(r));
  return out;
}

std::optional<JobInfo> Ifl::stat_job(JobId id) {
  util::ByteWriter w;
  w.put<std::uint64_t>(id);
  auto reply =
      call(MsgType::kStatJob, std::move(w).take(), rpc::kDefaultTimeout);
  util::ByteReader r(reply);
  if (!r.get_bool()) return std::nullopt;
  return get_job_info(r);
}

std::vector<NodeStatus> Ifl::stat_nodes() {
  auto reply = call(MsgType::kStatNodes, {}, rpc::kDefaultTimeout);
  util::ByteReader r(reply);
  const auto n = r.get<std::uint32_t>();
  std::vector<NodeStatus> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(get_node_status(r));
  return out;
}

void Ifl::alter_job(JobId id, const Alter& alter) {
  util::ByteWriter w;
  w.put<std::uint64_t>(id);
  w.put_bool(alter.priority.has_value());
  if (alter.priority) w.put<std::int32_t>(*alter.priority);
  w.put_bool(alter.walltime.has_value());
  if (alter.walltime) w.put<std::int64_t>(alter.walltime->count());
  w.put_bool(alter.name.has_value());
  if (alter.name) w.put_string(*alter.name);
  (void)call(MsgType::kAlterJob, std::move(w).take(), rpc::kDefaultTimeout);
}

void Ifl::delete_job(JobId id) {
  util::ByteWriter w;
  w.put<std::uint64_t>(id);
  (void)call(MsgType::kDeleteJob, std::move(w).take(), rpc::kDefaultTimeout);
}

DynGetReply Ifl::dynget(JobId id, int count, int min_count, NodeKind kind,
                        std::chrono::milliseconds timeout) {
  util::ByteWriter w;
  w.put<std::uint64_t>(id);
  w.put<std::int32_t>(count);
  w.put<std::int32_t>(min_count);
  w.put_enum(kind);
  auto reply = call(MsgType::kDynGet, std::move(w).take(), timeout);
  util::ByteReader r(reply);
  return get_dynget_reply(r);
}

void Ifl::dynfree(JobId id, std::uint64_t client_id) {
  util::ByteWriter w;
  w.put<std::uint64_t>(id);
  w.put<std::uint64_t>(client_id);
  (void)call(MsgType::kDynFree, std::move(w).take(), rpc::kDefaultTimeout);
}

std::optional<JobInfo> Ifl::wait_for_state(JobId id, JobState state,
                                           std::chrono::milliseconds timeout,
                                           std::chrono::milliseconds poll) {
  const auto deadline = simtime::now() + timeout;
  while (simtime::now() < deadline) {
    auto info = stat_job(id);
    if (info) {
      if (info->state == state) return info;
      const bool terminal = info->state == JobState::kComplete ||
                            info->state == JobState::kCancelled;
      if (terminal) return info;
    }
    simtime::sleep_for(poll);
  }
  return std::nullopt;
}

}  // namespace dac::torque
