// The pbs_mom daemon: one per node (compute and accelerator nodes alike).
// Implements the paper's protocols: as mother superior it JOINs the sister
// moms, starts the accelerator daemons and the job script, handles dynamic
// additions (DYNJOIN_JOB) and releases (DISJOIN_JOB), and reports job
// start/completion to the server. As a sister it tracks membership and kills
// its local tasks when disassociated.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "minimpi/runtime.hpp"
#include "svc/caller.hpp"
#include "svc/service_loop.hpp"
#include "torque/batch_config.hpp"
#include "torque/launch_info.hpp"
#include "torque/node_db.hpp"
#include "torque/protocol.hpp"
#include "torque/rpc.hpp"
#include "torque/task_registry.hpp"
#include "util/sync.hpp"
#include "vnet/node.hpp"

namespace dac::torque {

struct MomConfig {
  NodeKind kind = NodeKind::kCompute;
  int np = 8;  // slots advertised to the server
  vnet::Address server;
  BatchTiming timing;
  // The mother superior kills jobs exceeding their requested walltime.
  bool enforce_walltime = true;
  // Retry policy for the mom's own calls to the server (registration).
  svc::RetryPolicy retry;
  // Completed request-ids remembered for duplicate suppression.
  std::size_t dedup_window = 256;
  // Executable names (registered with the MPI runtime by higher layers).
  std::string ac_daemon_exe = "dac.acdaemon";
  std::string job_wrapper_exe = "dac.jobwrapper";
};

class PbsMom {
 public:
  PbsMom(vnet::Node& node, MomConfig config, minimpi::Runtime& runtime,
         TaskRegistry& tasks);

  PbsMom(const PbsMom&) = delete;
  PbsMom& operator=(const PbsMom&) = delete;

  // Daemon loop: registers with the server, then serves until stopped.
  void run(vnet::Process& proc);

 private:
  struct MomJob {
    JobInfo info;
    std::vector<HostRef> hosts;  // every host of the job (computes first)
    bool is_ms = false;
    int tasks_done = 0;
    std::map<std::uint64_t, std::vector<HostRef>> dyn_sets;  // client-id
    // Local start time, for walltime enforcement by the mother superior.
    std::chrono::steady_clock::time_point started;
  };

  void register_handlers(svc::ServiceLoop& loop, vnet::Process& proc);

  // Mother-superior duties.
  void on_run_job(vnet::Process& proc, const rpc::Request& req);
  void on_dyn_add(vnet::Process& proc, const rpc::Request& req);
  void on_release(vnet::Process& proc, const rpc::Request& req);
  void on_kill_job(vnet::Process& proc, const rpc::Request& req);
  void on_task_done(vnet::Process& proc, const rpc::Request& req);
  // DISJOIN fan-out (notifies, non-blocking) + local task kill for a job
  // this mom was MS of. Takes the membership by value so the caller can
  // erase the jobs_ entry (under mu_) first and fan out without the lock.
  void teardown_job(JobId id, std::vector<HostRef> hosts, bool kill_tasks);

  // Sister duties.
  void on_join(const rpc::Request& req, svc::Responder& resp);
  void on_dynjoin(const rpc::Request& req, svc::Responder& resp);
  void on_disjoin(const rpc::Request& req, svc::Responder& resp);
  void on_job_update(const rpc::Request& req);

  void apply_join_cost() const;
  void notify_server(MsgType type, util::Bytes body);
  // Deadline for MS -> sister calls (DISJOIN fan-out): well under the
  // server's down-detection window, so a dead sister cannot stall this
  // mom's loop long enough for its own heartbeats to go stale.
  [[nodiscard]] std::chrono::milliseconds sister_call_timeout() const;
  // Kills jobs that exceeded their requested walltime (MS duty); runs on a
  // periodic service-loop tick, so it must never block.
  void enforce_walltime();

  vnet::Node& node_;
  MomConfig config_;
  minimpi::Runtime& runtime_;
  TaskRegistry& tasks_;
  std::unique_ptr<vnet::Endpoint> endpoint_;  // created in run()
  // On compute nodes the MS handlers run on the service loop's kConcurrent
  // lane (they block in JOIN/DYNJOIN calls to other moms), while the loop
  // thread keeps draining the endpoint and serving the non-blocking sister
  // handlers — so two mother superiors granting onto each other's nodes in
  // the same scheduling batch cannot deadlock. The job table is the state
  // the two lanes share; MS handlers must never hold mu_ across a blocking
  // sister call.
  Mutex mu_{"mom.jobs"};
  std::map<JobId, MomJob> jobs_ DAC_GUARDED_BY(mu_);
};

}  // namespace dac::torque
