#include "torque/mom.hpp"
#include "simtime/clock.hpp"

#include <algorithm>
#include <thread>

#include "svc/deadlines.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace dac::torque {

namespace {
const util::Logger kLog("pbs_mom");

util::Bytes job_id_body(JobId id) {
  util::ByteWriter w;
  w.put<std::uint64_t>(id);
  return std::move(w).take();
}
}  // namespace

PbsMom::PbsMom(vnet::Node& node, MomConfig config, minimpi::Runtime& runtime,
               TaskRegistry& tasks)
    : node_(node), config_(std::move(config)), runtime_(runtime),
      tasks_(tasks) {}

void PbsMom::apply_join_cost() const {
  if (config_.timing.mom_join_cost.count() > 0) {
    simtime::sleep_for(config_.timing.mom_join_cost);
  }
}

void PbsMom::notify_server(MsgType type, util::Bytes body) {
  rpc::notify(*endpoint_, config_.server, type, std::move(body));
}

void PbsMom::run(vnet::Process& proc) {
  endpoint_ = proc.open_endpoint();

  NodeStatus status;
  status.hostname = node_.hostname();
  status.node_id = node_.id();
  status.kind = config_.kind;
  status.np = config_.np;
  status.mom_addr = endpoint_->address();
  util::ByteWriter w;
  put_node_status(w, status);
  try {
    svc::Caller registrar(proc, config_.server, config_.retry);
    (void)registrar.call(MsgType::kRegisterNode, std::move(w).take(),
                         {.deadline = svc::deadlines::kDefault});
  } catch (const util::StoppedError&) {
    return;
  }
  kLog.info("mom on '{}' registered", node_.hostname());

  util::ByteWriter hb;
  hb.put_string(node_.hostname());
  const auto heartbeat_body = hb.bytes();

  svc::ServiceConfig cfg;
  cfg.name = "pbs_mom." + node_.hostname();
  cfg.dedup_window = config_.dedup_window;
  svc::ServiceLoop loop(*endpoint_, cfg);
  register_handlers(loop, proc);
  // Liveness: report to the server even while busy (fault-tolerance
  // extension). Walltime enforcement runs on its own cadence so tests can
  // tighten it without shrinking the liveness window.
  loop.add_tick(config_.timing.mom_heartbeat_interval, [this, heartbeat_body] {
    rpc::notify(*endpoint_, config_.server, MsgType::kMomHeartbeat,
                heartbeat_body);
  });
  const auto walltime_tick =
      config_.timing.mom_walltime_check_interval.count() > 0
          ? config_.timing.mom_walltime_check_interval
          : config_.timing.mom_heartbeat_interval;
  loop.add_tick(walltime_tick, [this] { enforce_walltime(); });
  try {
    loop.run();
  } catch (const util::StoppedError&) {
    // Cooperative kill while a handler was mid-call; normal shutdown.
  }
}

void PbsMom::register_handlers(svc::ServiceLoop& loop, vnet::Process& proc) {
  using svc::ExecClass;
  using svc::Request;
  using svc::Responder;

  // Mother-superior duties block in JOIN/DYNJOIN fan-outs to other moms, so
  // on a compute node they run on the dedicated kConcurrent lane — one job
  // protocol at a time, exactly as serialized as before, but off the loop
  // thread, which keeps draining the endpoint. Without this, two mother
  // superiors granted onto each other's nodes in the same scheduling batch
  // would block calling each other's (undrained) endpoints and deadlock
  // until the RPC deadline. Accelerator moms are never mother superiors and
  // never block, so they keep the paper's single thread.
  const auto ms_class = config_.kind == NodeKind::kCompute
                            ? ExecClass::kConcurrent
                            : ExecClass::kMutating;
  const auto ms = [&](MsgType type, void (PbsMom::*fn)(vnet::Process&,
                                                       const rpc::Request&)) {
    loop.on(type, ms_class,
            [this, &proc, fn](const Request& req, Responder&) {
              (this->*fn)(proc, req);
            });
  };
  ms(MsgType::kMomRunJob, &PbsMom::on_run_job);
  ms(MsgType::kMomDynAdd, &PbsMom::on_dyn_add);
  ms(MsgType::kMomRelease, &PbsMom::on_release);
  ms(MsgType::kMomKillJob, &PbsMom::on_kill_job);
  ms(MsgType::kTaskDone, &PbsMom::on_task_done);

  // Sister duties stay on the loop thread: they make no outbound calls and
  // finish fast, so the lane that another MS blocks on always progresses.
  // They share the job table with the kConcurrent lane under mu_.
  const auto sister = [&](MsgType type,
                          void (PbsMom::*fn)(const rpc::Request&,
                                             Responder&)) {
    loop.on(type, ExecClass::kMutating,
            [this, fn](const Request& req, Responder& resp) {
              (this->*fn)(req, resp);
            });
  };
  sister(MsgType::kJoinJob, &PbsMom::on_join);
  sister(MsgType::kDynJoinJob, &PbsMom::on_dynjoin);
  sister(MsgType::kDisjoinJob, &PbsMom::on_disjoin);
  loop.on(MsgType::kJobUpdate, ExecClass::kMutating,
          [this](const Request& req, Responder&) { on_job_update(req); });
}

// --------------------------------------------------------- mother superior

std::chrono::milliseconds PbsMom::sister_call_timeout() const {
  // A quarter of the down-detection window: even a couple of serially
  // unreachable sisters leave the MS enough slack to keep heartbeating
  // before the server would declare *it* dead.
  const auto stale_window =
      config_.timing.mom_heartbeat_interval * config_.timing.heartbeat_stale_factor;
  const auto bound =
      std::chrono::duration_cast<std::chrono::milliseconds>(stale_window) / 4;
  return std::clamp(bound, std::chrono::milliseconds(10), rpc::kDefaultTimeout);
}

void PbsMom::on_run_job(vnet::Process& proc, const rpc::Request& req) {
  util::ByteReader r(req.body);
  MomJob job;
  job.info = get_job_info(r);
  job.hosts = get_host_refs(r);
  job.is_ms = true;
  job.started = simtime::now();
  const auto id = job.info.id;
  trace::note("job", std::to_string(id));
  // Ambient context of the serve.MOM_RUN_JOB span (already part of the
  // job's submit trace); handed to the spawned worlds so their spans nest
  // under the launch rather than starting fresh traces.
  const auto launch_ctx = trace::current();
  kLog.info("MS '{}': starting job {}", node_.hostname(), id);

  // 1. JOIN_JOB with every other mom of the job (paper Figure 5).
  util::ByteWriter join_body;
  put_job_info(join_body, job.info);
  put_host_refs(join_body, job.hosts);
  const auto join_bytes = join_body.bytes();
  for (const auto& h : job.hosts) {
    if (h.node == node_.id()) continue;
    (void)rpc::call(proc, h.mom, MsgType::kJoinJob, join_bytes,
                    rpc::kDefaultTimeout);
  }

  const int k = job.info.spec.resources.nodes;
  const int acpn = job.info.spec.resources.acpn;

  // 2. Start the accelerator daemons: one MPI world per compute node's
  // accelerator set, publishing the per-CN port (paper §III-C).
  for (int cn = 0; cn < k && acpn > 0; ++cn) {
    std::vector<vnet::NodeId> placement;
    util::ByteWriter args;
    args.put_string(static_ac_port_name(id, cn));
    args.put<std::uint64_t>(id);
    args.put<std::uint64_t>(launch_ctx.trace);
    args.put<std::uint64_t>(launch_ctx.span);
    for (int a = 0; a < acpn; ++a) {
      const auto& ref =
          job.hosts[static_cast<std::size_t>(k + cn * acpn + a)];
      placement.push_back(ref.node);
    }
    minimpi::LaunchOptions opts;
    opts.proc_name = "acdaemon-j" + std::to_string(id);
    opts.start_delay = config_.timing.static_daemon_start_delay;
    opts.start_stagger = config_.timing.static_daemon_start_stagger;
    auto handle = runtime_.launch_world(config_.ac_daemon_exe, placement,
                                        std::move(args).take(), opts);
    for (std::size_t i = 0; i < handle.processes.size(); ++i) {
      tasks_.add(id, placement[i], handle.processes[i]);
    }
  }

  // 3. Start the job script on the compute nodes.
  JobLaunchInfo launch;
  launch.job = id;
  launch.program = job.info.spec.program;
  launch.program_args = job.info.spec.program_args;
  launch.nodes = k;
  launch.ppn = job.info.spec.resources.ppn;
  launch.acpn = acpn;
  launch.server = config_.server;
  launch.ms_mom = endpoint_->address();
  launch.compute_hosts.assign(job.hosts.begin(),
                              job.hosts.begin() + k);
  launch.accel_hosts.assign(job.hosts.begin() + k, job.hosts.end());
  launch.trace_id = launch_ctx.trace;
  launch.origin_span = launch_ctx.span;

  std::vector<vnet::NodeId> cn_placement;
  for (int i = 0; i < k; ++i) {
    cn_placement.push_back(job.hosts[static_cast<std::size_t>(i)].node);
  }
  util::ByteWriter wargs;
  put_launch_info(wargs, launch);
  minimpi::LaunchOptions jopts;
  jopts.proc_name = "job" + std::to_string(id);
  jopts.start_delay = config_.timing.job_start_delay;
  jopts.env = {{"PBS_JOBID", std::to_string(id)}};
  auto handle = runtime_.launch_world(config_.job_wrapper_exe, cn_placement,
                                      std::move(wargs).take(), jopts);
  for (std::size_t i = 0; i < handle.processes.size(); ++i) {
    tasks_.add(id, cn_placement[i], handle.processes[i]);
  }

  {
    ScopedLock lock(mu_);
    jobs_[id] = std::move(job);
  }
  notify_server(MsgType::kJobStarted, job_id_body(id));
}

void PbsMom::on_dyn_add(vnet::Process& proc, const rpc::Request& req) {
  util::ByteReader r(req.body);
  const auto job_id = r.get<std::uint64_t>();
  const auto dyn_id = r.get<std::uint64_t>();
  const auto client_id = r.get<std::uint64_t>();
  auto new_hosts = get_host_refs(r);

  {
    ScopedLock lock(mu_);
    if (!jobs_.contains(job_id)) {
      kLog.warn("MS '{}': dyn add for unknown job {}", node_.hostname(),
                job_id);
      return;
    }
  }
  trace::note("job", std::to_string(job_id));
  trace::note("dyn", std::to_string(dyn_id));

  // DYNJOIN_JOB with each newly allocated accelerator mom (paper Figure 6).
  // Off-lock and deadline-bounded: a sister wedged (or dead) must not stall
  // this mom past its own heartbeat window.
  util::ByteWriter body;
  body.put<std::uint64_t>(job_id);
  body.put<std::uint64_t>(client_id);
  put_host_refs(body, new_hosts);
  const auto body_bytes = body.bytes();
  for (const auto& h : new_hosts) {
    if (h.node == node_.id()) continue;  // our own record is updated below
    try {
      (void)rpc::call(proc, h.mom, MsgType::kDynJoinJob, body_bytes,
                      sister_call_timeout());
    } catch (const util::ProtocolError& e) {
      kLog.warn("MS '{}': DYNJOIN to '{}' failed: {}", node_.hostname(),
                h.hostname, e.what());
    }
  }

  // The job may have completed or been killed while the joins were in
  // flight (it finished its own business before the grant fully attached);
  // the membership update must not resurrect it.
  bool attached = false;
  std::vector<HostRef> members;
  {
    ScopedLock lock(mu_);
    auto it = jobs_.find(job_id);
    if (it != jobs_.end()) {
      auto& job = it->second;
      job.dyn_sets[client_id] = new_hosts;
      members = job.hosts;  // the pre-addition membership, for the update
      job.hosts.insert(job.hosts.end(), new_hosts.begin(), new_hosts.end());
      attached = true;
    }
  }
  if (!attached) {
    // Gone mid-join: undo the sister-side joins so the granted moms do not
    // keep membership for a dead job. The server reclaims the slots through
    // its own completion path.
    kLog.warn("MS '{}': job {} vanished during dyn add, disjoining set {}",
              node_.hostname(), job_id, client_id);
    util::ByteWriter dis;
    dis.put<std::uint64_t>(job_id);
    dis.put<std::uint64_t>(client_id);
    const auto dis_bytes = dis.bytes();
    for (const auto& h : new_hosts) {
      if (h.node == node_.id()) continue;
      try {
        (void)rpc::call(proc, h.mom, MsgType::kDisjoinJob, dis_bytes,
                        sister_call_timeout());
      } catch (const util::ProtocolError& e) {
        kLog.warn("MS '{}': DISJOIN to '{}' failed: {}", node_.hostname(),
                  h.hostname, e.what());
      }
    }
    return;
  }

  // Update the existing moms' databases with the addition.
  for (const auto& h : members) {
    if (h.node == node_.id()) continue;
    rpc::notify(*endpoint_, h.mom, MsgType::kJobUpdate, body_bytes);
  }

  util::ByteWriter done;
  done.put<std::uint64_t>(dyn_id);
  notify_server(MsgType::kMsDynReady, std::move(done).take());
}

void PbsMom::on_release(vnet::Process& proc, const rpc::Request& req) {
  util::ByteReader r(req.body);
  const auto job_id = r.get<std::uint64_t>();
  const auto client_id = r.get<std::uint64_t>();
  auto hosts = get_host_refs(r);

  {
    ScopedLock lock(mu_);
    if (!jobs_.contains(job_id)) return;
  }

  // DISJOIN_JOB: the departing moms kill any remaining daemon tasks and
  // drop their membership (paper §III-D). Off-lock: the lane owns the
  // protocol, the lock only guards the table.
  util::ByteWriter body;
  body.put<std::uint64_t>(job_id);
  body.put<std::uint64_t>(client_id);
  const auto body_bytes = body.bytes();
  for (const auto& h : hosts) {
    if (h.node == node_.id()) {
      // Releasing a set that includes this (mother superior) node: handle
      // locally instead of calling ourselves.
      tasks_.kill_node_tasks(job_id, node_.id(), client_id);
      continue;
    }
    // A sister that died between the release request and the server's down
    // detection cannot answer; bound the wait and move on — the server
    // reclaims its slots once the heartbeat goes stale.
    try {
      (void)rpc::call(proc, h.mom, MsgType::kDisjoinJob, body_bytes,
                      sister_call_timeout());
    } catch (const util::ProtocolError& e) {
      kLog.warn("MS '{}': DISJOIN to '{}' failed: {}", node_.hostname(),
                h.hostname, e.what());
    }
  }

  // Drop the released hosts from the job's membership (at most one entry
  // per released host, so a node the job also holds statically survives)
  // and tell the others. The job may have finished while the DISJOINs were
  // in flight; the release is still done from the server's point of view.
  std::vector<HostRef> members;
  {
    ScopedLock lock(mu_);
    auto it = jobs_.find(job_id);
    if (it != jobs_.end()) {
      auto& job = it->second;
      for (const auto& g : hosts) {
        auto it2 = std::find_if(job.hosts.begin(), job.hosts.end(),
                                [&](const HostRef& h) {
                                  return h.hostname == g.hostname;
                                });
        if (it2 != job.hosts.end()) job.hosts.erase(it2);
      }
      job.dyn_sets.erase(client_id);
      members = job.hosts;
    }
  }
  util::ByteWriter upd;
  upd.put<std::uint64_t>(job_id);
  upd.put<std::uint64_t>(client_id);
  put_host_refs(upd, hosts);
  for (const auto& h : members) {
    if (h.node == node_.id()) continue;
    rpc::notify(*endpoint_, h.mom, MsgType::kJobUpdate, upd.bytes());
  }

  util::ByteWriter done;
  done.put<std::uint64_t>(job_id);
  done.put<std::uint64_t>(client_id);
  notify_server(MsgType::kMsReleaseDone, std::move(done).take());
}

void PbsMom::on_kill_job(vnet::Process& /*proc*/, const rpc::Request& req) {
  util::ByteReader r(req.body);
  const auto job_id = r.get<std::uint64_t>();
  bool is_here = false;
  std::vector<HostRef> hosts;
  {
    ScopedLock lock(mu_);
    auto it = jobs_.find(job_id);
    if (it != jobs_.end()) {
      is_here = true;
      hosts = std::move(it->second.hosts);
      jobs_.erase(it);
    }
  }
  if (!is_here) {
    // Not the MS (or unknown): kill whatever runs locally.
    tasks_.kill_node_tasks(job_id, node_.id());
    return;
  }
  teardown_job(job_id, std::move(hosts), /*kill_tasks=*/true);
}

void PbsMom::on_task_done(vnet::Process& /*proc*/, const rpc::Request& req) {
  util::ByteReader r(req.body);
  const auto job_id = r.get<std::uint64_t>();
  const auto rank = r.get<std::int32_t>();
  std::vector<HostRef> hosts;
  {
    ScopedLock lock(mu_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return;
    auto& job = it->second;
    ++job.tasks_done;
    kLog.debug("MS '{}': job {} rank {} done ({}/{})", node_.hostname(),
               job_id, rank, job.tasks_done, job.info.spec.resources.nodes);
    if (job.tasks_done < job.info.spec.resources.nodes) return;
    hosts = std::move(job.hosts);
    jobs_.erase(it);
  }
  teardown_job(job_id, std::move(hosts), /*kill_tasks=*/true);
  util::ByteWriter w;
  w.put<std::uint64_t>(job_id);
  w.put<std::int32_t>(kExitOk);
  notify_server(MsgType::kJobComplete, std::move(w).take());
}

void PbsMom::enforce_walltime() {
  if (!config_.enforce_walltime) return;
  const auto now = simtime::now();
  // Collect the expired jobs under the lock, tear them down outside it:
  // this runs on a loop-thread tick, which must stay non-blocking (teardown
  // fans out DISJOIN notifies, never calls), and the kConcurrent lane needs
  // the table meanwhile.
  std::vector<std::pair<JobId, std::vector<HostRef>>> expired;
  {
    ScopedLock lock(mu_);
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      auto& job = it->second;
      const bool over =
          job.is_ms && job.info.spec.resources.walltime.count() > 0 &&
          now - job.started > job.info.spec.resources.walltime;
      if (!over) {
        ++it;
        continue;
      }
      expired.emplace_back(job.info.id, std::move(job.hosts));
      it = jobs_.erase(it);
    }
  }
  for (auto& [id, hosts] : expired) {
    kLog.warn("MS '{}': job {} exceeded its walltime, killing it",
              node_.hostname(), id);
    teardown_job(id, std::move(hosts), /*kill_tasks=*/true);
    util::ByteWriter w;
    w.put<std::uint64_t>(id);
    w.put<std::int32_t>(kExitWalltime);
    notify_server(MsgType::kJobComplete, std::move(w).take());
  }
}

void PbsMom::teardown_job(JobId id, std::vector<HostRef> hosts,
                          bool kill_tasks) {
  // Fire-and-forget DISJOINs: nothing waits on teardown (completions and
  // kills are already reported through their own paths), and not blocking
  // here lets the walltime tick run this directly on the loop thread. A
  // notify to a dead sister is simply lost; the server reclaims its slots
  // once the heartbeat goes stale.
  util::ByteWriter body;
  body.put<std::uint64_t>(id);
  body.put<std::uint64_t>(0);  // client id 0: whole job
  const auto body_bytes = body.bytes();
  for (const auto& h : hosts) {
    if (h.node == node_.id()) continue;
    rpc::notify(*endpoint_, h.mom, MsgType::kDisjoinJob, body_bytes);
  }
  if (kill_tasks) tasks_.kill_node_tasks(id, node_.id());
  kLog.info("MS '{}': job {} torn down", node_.hostname(), id);
}

// ------------------------------------------------------------------ sister

void PbsMom::on_join(const rpc::Request& req, svc::Responder& resp) {
  apply_join_cost();
  util::ByteReader r(req.body);
  MomJob job;
  job.info = get_job_info(r);
  job.hosts = get_host_refs(r);
  job.is_ms = false;
  kLog.debug("mom '{}': joined job {}", node_.hostname(), job.info.id);
  {
    ScopedLock lock(mu_);
    jobs_[job.info.id] = std::move(job);
  }
  resp.ok();
}

void PbsMom::on_dynjoin(const rpc::Request& req, svc::Responder& resp) {
  apply_join_cost();
  util::ByteReader r(req.body);
  const auto job_id = r.get<std::uint64_t>();
  const auto client_id = r.get<std::uint64_t>();
  auto hosts = get_host_refs(r);
  {
    ScopedLock lock(mu_);
    auto& job = jobs_[job_id];  // may create a thin record on a new accel mom
    job.info.id = job_id;
    job.dyn_sets[client_id] = hosts;
  }
  kLog.debug("mom '{}': DYNJOIN job {} set {}", node_.hostname(), job_id,
             client_id);
  resp.ok();
}

void PbsMom::on_disjoin(const rpc::Request& req, svc::Responder& resp) {
  apply_join_cost();
  util::ByteReader r(req.body);
  const auto job_id = r.get<std::uint64_t>();
  const auto client_id = r.get<std::uint64_t>();
  // Kill the tasks of this job still running here: all of them for a full
  // disjoin (client 0), only the released set's otherwise — a shared
  // compute node must not lose the job script itself.
  tasks_.kill_node_tasks(job_id, node_.id(), client_id);
  {
    ScopedLock lock(mu_);
    auto it = jobs_.find(job_id);
    if (it != jobs_.end()) {
      if (client_id == 0) {
        jobs_.erase(it);
      } else {
        it->second.dyn_sets.erase(client_id);
      }
    }
  }
  kLog.debug("mom '{}': DISJOIN job {} (set {})", node_.hostname(), job_id,
             client_id);
  resp.ok();
}

void PbsMom::on_job_update(const rpc::Request& req) {
  util::ByteReader r(req.body);
  const auto job_id = r.get<std::uint64_t>();
  const auto client_id = r.get<std::uint64_t>();
  auto hosts = get_host_refs(r);
  ScopedLock lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  auto& job = it->second;
  if (job.dyn_sets.contains(client_id)) {
    // Already known: this update is a release of that set.
    std::erase_if(job.hosts, [&](const HostRef& h) {
      return std::any_of(hosts.begin(), hosts.end(), [&](const HostRef& g) {
        return g.hostname == h.hostname;
      });
    });
    job.dyn_sets.erase(client_id);
  } else {
    job.dyn_sets[client_id] = hosts;
    job.hosts.insert(job.hosts.end(), hosts.begin(), hosts.end());
  }
}

}  // namespace dac::torque
