#include "simtime/clock.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

namespace dac::simtime {
namespace {

// Virtual time starts well away from zero so subtracting intervals from
// "now" (heartbeat staleness math, walltime checks) never wraps a
// default-constructed time_point, and comfortably above any real steady
// reading a freshly booted CI machine hands out before the mode switch.
constexpr std::int64_t kVirtualEpochNs = 3'600'000'000'000'000;  // 1000 h

// Rescue cadence when no actor is registered at all (plain unit tests):
// nothing can ever look quiescent, so fire pending deadlines quickly.
constexpr std::chrono::milliseconds kUnattendedStall{2};

// Liveness backstop: if unregistered threads keep the activity epoch churning
// forever (so the stall heuristic never sees a quiet window), advance anyway
// after this much real time without an advance. Registered-actor simulations
// advance far more often than this, so it never perturbs them.
constexpr std::chrono::milliseconds kChurnBackstop{250};

std::int64_t to_ns(TimePoint tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

TimePoint from_ns(std::int64_t ns) {
  return TimePoint(
      std::chrono::duration_cast<Duration>(std::chrono::nanoseconds(ns)));
}

// Per-thread actor state. `block_depth` tracks nested clock-visible blocking
// (an ExternalWaitScope around a condition wait) and `counted` whether this
// thread currently contributes to the clock's blocked_ tally; the advancer
// flips `counted` off at fire time — under the clock lock — so a woken actor
// counts as runnable before it even gets CPU.
struct ThreadState {
  bool is_actor = false;
  bool counted = false;  // guarded by the clock's mu_ in DiscreteEvent mode
  int block_depth = 0;
  // This (non-actor) thread owes runnable debt: the clock woke it and it has
  // not blocked again yet. Guarded by the clock's mu_; see Clock::debt_.
  bool in_debt = false;
  ~ThreadState();
};

thread_local ThreadState t_state;

ThreadState::~ThreadState() {
  // A thread exiting while in debt would otherwise pin the clock into its
  // stall-rescue path forever.
  if (in_debt) Clock::instance().clear_thread_debt();
}

}  // namespace

struct Clock::Waiter {
  std::condition_variable* cv = nullptr;
  std::mutex* mu = nullptr;
  ThreadState* owner = nullptr;
  std::optional<std::int64_t> deadline_ns;
  std::uint64_t seq = 0;
  bool actor = false;          // owning thread is a registered actor
  bool counted_depth = false;  // begin_wait bumped owner->block_depth
  bool prefired = false;       // deadline already due at registration
  // All guarded by the clock's mu_.
  bool fired = false;
  bool notify_done = false;
  bool in_queue = false;
};

Clock& Clock::instance() {
  // Leaky: the advancer thread (started lazily on the first DiscreteEvent
  // transition) must never race static destruction.
  static Clock* g = new Clock;
  return *g;
}

Clock::Clock() {
  if (const char* e = std::getenv("DACSCHED_VTIME_STALL_MS");
      e != nullptr && *e != '\0') {
    stall_ = std::chrono::milliseconds(std::max(1, std::atoi(e)));
  }
  if (const char* e = std::getenv("DACSCHED_CLOCK");
      e != nullptr && *e != '\0') {
    const std::string v(e);
    if (v == "virtual" || v == "discrete" || v == "de") {
      set_mode(Mode::kDiscreteEvent);
    }
  }
}

void Clock::set_mode(Mode m) {
  std::unique_lock<std::mutex> lk(mu_);
  if (mode_.load(std::memory_order_relaxed) == m) return;
  // Legal only between simulations: nothing may be parked on the clock.
  if (!deadlines_.empty() || blocked_ != 0) {
    std::abort();  // set_mode during an active simulation is a program bug
  }
  if (m == Mode::kDiscreteEvent) {
    // Pin virtual now monotonically past every real reading handed out so
    // far, so stopwatches and link floors never see time move backwards
    // across the switch.
    const std::int64_t real =
        to_ns(std::chrono::steady_clock::now());
    now_ns_.store(std::max(kVirtualEpochNs, real + 1'000'000'000),
                  std::memory_order_release);
    last_advance_real_ = std::chrono::steady_clock::now();
    ensure_advancer_locked();
  }
  mode_.store(m, std::memory_order_release);
  ++activity_epoch_;
  internal_cv_.notify_all();
}

TimePoint Clock::now() const {
  if (mode_.load(std::memory_order_acquire) == Mode::kRealTime) {
    return std::chrono::steady_clock::now();
  }
  return from_ns(now_ns_.load(std::memory_order_acquire));
}

ClockStats Clock::stats() const {
  std::unique_lock<std::mutex> lk(mu_);
  return stats_;
}

// ---- actors ----------------------------------------------------------------

void Clock::actor_started() {
  std::unique_lock<std::mutex> lk(mu_);
  ++actors_;
  ++activity_epoch_;
}

void Clock::actor_adopt() { t_state.is_actor = true; }

void Clock::actor_finished() {
  t_state.is_actor = false;
  std::unique_lock<std::mutex> lk(mu_);
  --actors_;
  ++activity_epoch_;
  // One fewer runnable thread can make the rest quiescent.
  if (quiescent_locked()) internal_cv_.notify_all();
}

bool Clock::current_thread_is_actor() const { return t_state.is_actor; }

bool Clock::quiescent_locked() const {
  // The exit-hold term: a joined thread has finished but its joiner has not
  // resumed yet — an invisible wake-in-flight, same reason debt_ gates.
  if (exit_holds_ > 0 && external_waiters_ > 0) return false;
  return actors_ > 0 && blocked_ >= actors_ && debt_ == 0 &&
         !deadlines_.empty();
}

void Clock::exit_hold() {
  std::unique_lock<std::mutex> lk(mu_);
  ++exit_holds_;
  ++activity_epoch_;
}

void Clock::exit_release() {
  std::unique_lock<std::mutex> lk(mu_);
  if (exit_holds_ > 0) --exit_holds_;  // clamp: hold may predate a mode switch
  ++activity_epoch_;
  if (quiescent_locked()) internal_cv_.notify_all();
}

void Clock::clear_thread_debt() {
  std::unique_lock<std::mutex> lk(mu_);
  --debt_;
  ++activity_epoch_;
  if (quiescent_locked()) internal_cv_.notify_all();
}

// ---- waiter protocol -------------------------------------------------------

Clock::WaiterPtr Clock::begin_wait(std::condition_variable* cv,
                                   std::mutex* native_mu,
                                   std::optional<TimePoint> deadline,
                                   bool* prefired) {
  *prefired = false;
  if (mode_.load(std::memory_order_acquire) == Mode::kRealTime) return nullptr;
  // Untimed non-actor waits are registered too (in by_cv_ only — nothing to
  // fire): the thread does not hold time back while parked, but when an
  // application notify wakes it, on_notify must be able to hand it runnable
  // debt. Otherwise a raw std::thread server blocked in recv() would be
  // invisible at wake time and the clock could advance past the work the
  // delivery just triggered.
  auto w = std::make_shared<Waiter>();
  w->cv = cv;
  w->mu = native_mu;
  w->owner = &t_state;
  w->actor = t_state.is_actor;

  std::unique_lock<std::mutex> lk(mu_);
  ++activity_epoch_;
  if (deadline.has_value()) {
    const std::int64_t dl = to_ns(*deadline);
    if (dl <= now_ns_.load(std::memory_order_relaxed)) {
      // Already due: mimic a real wait_until with a past deadline, which
      // returns timeout immediately instead of parking until quiescence.
      w->prefired = true;
      w->fired = true;
      w->notify_done = true;
      *prefired = true;
      return w;
    }
    w->deadline_ns = dl;
    w->seq = ++seq_;
    w->in_queue = true;
    const bool was_empty = deadlines_.empty();
    deadlines_.emplace(std::make_pair(dl, w->seq), w);
    // Wake the advancer out of its idle (no-deadline) sleep; quiescence
    // wakes are handled below.
    if (was_empty) internal_cv_.notify_all();
  }
  by_cv_.emplace(cv, w.get());
  ++t_state.block_depth;
  w->counted_depth = true;
  if (w->actor && !t_state.counted) {
    t_state.counted = true;
    ++blocked_;
  }
  if (t_state.in_debt) {
    // Blocking again pays off the debt from the wake that made us runnable.
    t_state.in_debt = false;
    --debt_;
  }
  if (quiescent_locked()) internal_cv_.notify_all();
  return w;
}

void Clock::end_wait(const WaiterPtr& w) {
  if (w == nullptr) return;
  std::unique_lock<std::mutex> lk(mu_);
  ++activity_epoch_;
  if (w->in_queue) {
    deadlines_.erase(std::make_pair(*w->deadline_ns, w->seq));
    w->in_queue = false;
  }
  for (auto [it, last] = by_cv_.equal_range(w->cv); it != last; ++it) {
    if (it->second == w.get()) {
      by_cv_.erase(it);
      break;
    }
  }
  // If the advancer picked this waiter, it may still be about to touch the
  // cv; wait for it to finish so the caller can safely destroy the cv.
  while (w->fired && !w->notify_done) internal_cv_.wait(lk);
  if (w->counted_depth) {
    --t_state.block_depth;
    if (t_state.counted && t_state.block_depth == 0) {
      t_state.counted = false;
      --blocked_;
    } else if (w->actor && !t_state.counted && t_state.block_depth > 0) {
      // Fired while nested inside an outer clock-visible scope (a timed wait
      // under an ExternalWaitScope): the outer scope still stands, so the
      // thread counts as blocked again.
      t_state.counted = true;
      ++blocked_;
      if (quiescent_locked()) internal_cv_.notify_all();
    }
    if (!w->actor && t_state.block_depth == 0 && !t_state.in_debt) {
      // A non-actor leaving a registered wait is runnable but invisible;
      // carry debt until it blocks again (or exits) so the advancer cannot
      // race past the work it is about to do. Fired waiters already got
      // their debt assigned at fire time — this covers application notifies.
      t_state.in_debt = true;
      ++debt_;
    }
  }
}

void Clock::on_notify(std::condition_variable* cv) {
  if (mode_.load(std::memory_order_acquire) == Mode::kRealTime) return;
  std::unique_lock<std::mutex> lk(mu_);
  ++activity_epoch_;
  for (auto [it, last] = by_cv_.equal_range(cv); it != last; ++it) {
    Waiter* w = it->second;
    // Same transfer advance_locked performs for clock-fired waiters: the
    // notified thread is runnable from this instant, even before it gets
    // CPU. An actor comes off the blocked tally; a non-actor takes on
    // runnable debt. Waiters the native notify does not actually wake were
    // made "runnable" spuriously — they re-block and re-count on the next
    // trip through their predicate loop (CondVar wakes all its waiters in
    // DiscreteEvent mode for exactly this reason).
    if (w->actor) {
      if (w->owner->counted) {
        w->owner->counted = false;
        --blocked_;
      }
    } else if (!w->owner->in_debt) {
      w->owner->in_debt = true;
      ++debt_;
    }
  }
}

void Clock::external_block_begin() {
  std::unique_lock<std::mutex> lk(mu_);
  // Counted in every mode so pairing survives mode switches; arms the
  // exit-hold quiescence gate (see exit_hold()).
  ++external_waiters_;
  ++activity_epoch_;
  if (!t_state.is_actor) {
    // A non-actor about to block natively (a join) is not runnable: pay off
    // any debt so the advancer is free to fire the deadlines the joined
    // thread may be sleeping on.
    if (t_state.in_debt) {
      t_state.in_debt = false;
      --debt_;
    }
    if (quiescent_locked()) internal_cv_.notify_all();
    return;
  }
  ++t_state.block_depth;  // kept balanced across mode switches
  if (mode_.load(std::memory_order_acquire) == Mode::kRealTime) return;
  if (!t_state.counted) {
    t_state.counted = true;
    ++blocked_;
    if (quiescent_locked()) internal_cv_.notify_all();
  }
}

void Clock::external_block_end() {
  std::unique_lock<std::mutex> lk(mu_);
  --external_waiters_;
  ++activity_epoch_;
  if (!t_state.is_actor) {
    // Runnable again; restore the debt so the invariant "the clock never
    // advances past a thread it knows is awake" keeps holding.
    if (mode_.load(std::memory_order_acquire) == Mode::kDiscreteEvent &&
        !t_state.in_debt) {
      t_state.in_debt = true;
      ++debt_;
    }
    return;
  }
  --t_state.block_depth;
  if (mode_.load(std::memory_order_acquire) == Mode::kRealTime) return;
  if (t_state.counted && t_state.block_depth == 0) {
    t_state.counted = false;
    --blocked_;
  }
}

// ---- the advancer ----------------------------------------------------------

void Clock::ensure_advancer_locked() {
  if (advancer_running_) return;
  advancer_running_ = true;
  advancer_ = std::thread([this] { advancer_main(); });
}

void Clock::advancer_main() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (mode_.load(std::memory_order_relaxed) != Mode::kDiscreteEvent) {
      internal_cv_.wait(lk);
      continue;
    }
    if (quiescent_locked()) {
      advance_locked(lk);
      continue;
    }
    if (deadlines_.empty()) {
      internal_cv_.wait(lk);
      continue;
    }
    // Deadlines exist but someone looks runnable. Wait for a state change;
    // if none arrives for a full stall window, the runnable threads are
    // invisible to the clock (an unregistered test thread, native blocking
    // without an ExternalWaitScope) — advance anyway. With no actors at all
    // the stall shrinks: quiescence is undetectable, so short timed waits in
    // plain unit tests should not each cost a long real pause.
    const std::uint64_t epoch = activity_epoch_;
    internal_cv_.wait_for(lk, actors_ == 0 ? kUnattendedStall : stall_);
    if (mode_.load(std::memory_order_relaxed) != Mode::kDiscreteEvent ||
        deadlines_.empty()) {
      continue;
    }
    if (quiescent_locked()) continue;  // re-evaluate at loop top
    const auto real_now =
        std::chrono::steady_clock::now();
    if (activity_epoch_ == epoch ||
        real_now - last_advance_real_ > kChurnBackstop) {
      advance_locked(lk);
    }
  }
}

void Clock::advance_locked(std::unique_lock<std::mutex>& lk) {
  const std::int64_t target = deadlines_.begin()->first.first;
  if (target > now_ns_.load(std::memory_order_relaxed)) {
    now_ns_.store(target, std::memory_order_release);
  }
  const std::int64_t now = now_ns_.load(std::memory_order_relaxed);
  std::vector<WaiterPtr> due;
  while (!deadlines_.empty() && deadlines_.begin()->first.first <= now) {
    WaiterPtr w = deadlines_.begin()->second;
    deadlines_.erase(deadlines_.begin());
    w->in_queue = false;
    w->fired = true;
    if (w->actor && w->owner->counted) {
      // Runnable from this instant, even before the thread gets CPU —
      // otherwise the very next quiescence check would advance again and
      // race ahead of work scheduled at this timestamp.
      w->owner->counted = false;
      --blocked_;
    } else if (!w->actor && !w->owner->in_debt) {
      // Same rule for non-actors, expressed as debt: the woken thread gates
      // further advances until it blocks again or exits.
      w->owner->in_debt = true;
      ++debt_;
    }
    due.push_back(std::move(w));
  }
  ++stats_.advances;
  stats_.waiters_fired += due.size();
  ++activity_epoch_;
  last_advance_real_ =
      std::chrono::steady_clock::now();
  lk.unlock();
  for (const auto& w : due) {
    // The waiter held w->mu from registration until the native wait released
    // it, so acquiring the mutex here proves the waiter is parked (or has
    // already been woken by an application notify, in which case its
    // end_wait blocks on notify_done until we are done with the cv).
    // Holding no other lock, so no ordering cycle can form.
    { std::lock_guard<std::mutex> g(*w->mu); }
    w->cv->notify_all();
  }
  lk.lock();
  for (const auto& w : due) w->notify_done = true;
  if (!due.empty()) internal_cv_.notify_all();
}

// ---- sleeps ----------------------------------------------------------------

void Clock::sleep_for(Duration d) {
  if (mode_.load(std::memory_order_acquire) == Mode::kRealTime) {
    if (d > Duration::zero()) {
      std::this_thread::sleep_for(d);
    }
    return;
  }
  sleep_until(now() + d);
}

void Clock::sleep_until(TimePoint tp) {
  if (mode_.load(std::memory_order_acquire) == Mode::kRealTime) {
    std::this_thread::sleep_until(tp);
    return;
  }
  // A private parking spot per thread: nothing but the clock ever notifies
  // it, so the only wake sources are the fire we asked for and spurious
  // wakeups (handled by the loop).
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
  };
  thread_local Slot slot;
  std::unique_lock<std::mutex> lk(slot.mu);
  while (now() < tp) {
    bool prefired = false;
    WaiterPtr w = begin_wait(&slot.cv, &slot.mu, tp, &prefired);
    if (w == nullptr) return;  // mode flipped underneath us; treat as done
    if (!prefired) slot.cv.wait(lk);
    lk.unlock();
    end_wait(w);
    lk.lock();
  }
}

// ---- ActorScope ------------------------------------------------------------

ActorScope::ActorScope() {
  auto& c = Clock::instance();
  if (c.current_thread_is_actor()) return;
  c.actor_started();
  c.actor_adopt();
  adopted_ = true;
}

ActorScope::~ActorScope() {
  if (adopted_) Clock::instance().actor_finished();
}

}  // namespace dac::simtime
