// The single time authority for the whole tree. Every layer that needs "now",
// a sleep, or a timed wait goes through dac::simtime — never through ambient
// std::chrono calls (the analyzer's raw-clock rule enforces this).
//
// Two interchangeable backends:
//
//   * RealTime (default): now() is std::chrono::steady_clock::now(), sleeps
//     really sleep, timed waits really time out. Zero-overhead passthrough —
//     the pre-existing behavior of the tree.
//
//   * DiscreteEvent: virtual time. now() reads a process-wide virtual clock
//     that only moves when every registered *actor* thread is quiescent
//     (blocked in a clock-visible wait). At that instant the clock
//     fast-forwards to the earliest registered deadline — message delivery,
//     heartbeat tick, scheduler poll, backoff expiry, gpusim kernel
//     completion, walltime limit — and wakes the waiters that became due.
//     A scenario-second costs microseconds of wall time, which is what lets
//     examples/bigsim run 1,000-node topologies in seconds.
//
// The waiter protocol (docs/SIMTIME.md has the full contract):
//
//   1. A thread about to block calls begin_wait(cv, native_mu, deadline)
//      *while holding native_mu*, then enters the native cv wait (which
//      atomically releases the mutex). Because the waiter holds the mutex
//      continuously from registration to wait entry, the clock can prove the
//      waiter is inside the wait by briefly acquiring that mutex before
//      notifying — no missed-wakeup window.
//   2. The advancer thread (the only thread that moves virtual time) fires a
//      due waiter by lock(mu)/unlock, then cv->notify_all(). It holds no
//      other lock while doing so, so no lock-order cycle can form.
//   3. The waiter, after the native wait returns, RELEASES the mutex and
//      calls end_wait(), which synchronizes with any in-flight fire (the
//      clock may still be about to touch the cv). Only then may the waiter
//      destroy the condition variable.
//
// Quiescence accounting: threads that participate in the simulation register
// as actors (ActorScope, or actor_started()/adopt()/finished() around
// std::thread creation). The clock advances when every actor is blocked in a
// clock-visible wait. Native blocking the clock cannot see (thread joins) is
// bracketed with ExternalWaitScope. Threads that never register still get
// their timed waits fired — their deadlines join the event queue — they just
// do not hold time back. A stall-rescue timer (DACSCHED_VTIME_STALL_MS, 50ms
// default) advances anyway when the clock has seen no activity, so a lone
// unregistered test thread cannot freeze virtual time.
//
// This file deliberately depends on nothing else in the tree (util's own
// primitives are built on top of it), so its internals use raw std::mutex /
// std::condition_variable and real steady_clock reads — src/simtime/ is the
// one path the analyzer exempts from the raw-sync and raw-clock rules.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

namespace dac::simtime {

enum class Mode {
  kRealTime,
  kDiscreteEvent,
};

using TimePoint = std::chrono::steady_clock::time_point;
using Duration = std::chrono::steady_clock::duration;

// Counters for BENCH_sim_scale.json and tests: how many times virtual time
// moved, and how many waiters those advances woke.
struct ClockStats {
  std::uint64_t advances = 0;
  std::uint64_t waiters_fired = 0;
};

class Clock {
 public:
  // Process-wide singleton (leaky: the advancer thread lives for the whole
  // process). First call reads DACSCHED_CLOCK=real|virtual.
  static Clock& instance();

  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;

  [[nodiscard]] Mode mode() const {
    return mode_.load(std::memory_order_acquire);
  }

  // Switches backends. Only legal while no waiter is registered and no actor
  // is blocked — i.e. between simulations, not during one. Entering
  // DiscreteEvent pins virtual now to a fixed epoch (monotonic past any real
  // reading handed out earlier). Switching back to RealTime mid-process is
  // legal for the clock but any stored virtual time_point (fabric link
  // floors, stopwatch starts) becomes garbage — tear simulations down first.
  void set_mode(Mode m);

  [[nodiscard]] TimePoint now() const;

  void sleep_for(Duration d);
  void sleep_until(TimePoint tp);

  [[nodiscard]] ClockStats stats() const;

  // ---- actor registry -----------------------------------------------------

  // Parent-side half of actor handoff: call *before* constructing the
  // std::thread so there is no instant where the clock undercounts runnable
  // actors. The child calls actor_adopt() first thing and actor_finished()
  // last.
  void actor_started();
  void actor_adopt();
  void actor_finished();
  [[nodiscard]] bool current_thread_is_actor() const;

  // ---- waiter protocol (used by dac::CondVar / sleep_for) -----------------

  struct Waiter;
  using WaiterPtr = std::shared_ptr<Waiter>;

  // Registers the calling thread as blocked (if it is an actor) and, when
  // `deadline` is set, queues it for fire when virtual time reaches it. Must
  // be called with *native_mu held*; the caller must enter a wait on `cv`
  // (releasing native_mu) without unlocking in between. Returns nullptr in
  // RealTime mode (caller takes the native path). If the deadline is already
  // due, *prefired is set and the caller must skip the native wait — a real
  // wait_until with a past deadline returns immediately too.
  WaiterPtr begin_wait(std::condition_variable* cv, std::mutex* native_mu,
                       std::optional<TimePoint> deadline, bool* prefired);

  // Ends a wait begun with begin_wait. Must be called *without* native_mu
  // held (the clock may need that mutex to finish an in-flight fire). Blocks
  // until any in-flight fire of this waiter has fully let go of the cv, so
  // the caller may destroy the cv afterwards.
  void end_wait(const WaiterPtr& w);

  // Called by dac::CondVar::notify_one/notify_all *before* the native notify:
  // transfers runnability to every waiter registered on `cv`, exactly as
  // advance_locked does for clock-fired waiters. Without this an application
  // notify leaves the woken thread counted as blocked until the scheduler
  // runs it — a window where the clock would wrongly see quiescence and
  // advance straight past the work the notify just triggered.
  void on_notify(std::condition_variable* cv);

  // Brackets native blocking the clock cannot observe (thread joins): the
  // calling actor counts as quiescent for the duration.
  void external_block_begin();
  void external_block_end();

  // Exit-hold handshake for joined threads. A terminating actor whose thread
  // somebody will join calls exit_hold() after its last useful work; the
  // joiner calls exit_release() after the native join returns. While a hold
  // is outstanding AND some thread is parked in an ExternalWaitScope, the
  // clock refuses to advance: the join is about to return and make the
  // joiner runnable, but that resume is invisible to the clock — without the
  // hold, the joined thread's actor_finished() can make the world look
  // quiescent in the instant before join() comes back, and the advancer
  // jumps to a far deadline (typically the joiner's own RPC timeout). A hold
  // with no one joining does not block time, so exited-but-not-yet-joined
  // processes cost nothing.
  void exit_hold();
  void exit_release();

  // Internal: called by the thread-local state destructor when a thread that
  // still owes runnable debt (a fired non-actor waiter that never blocked
  // again) exits. Not for application use.
  void clear_thread_debt();

 private:
  Clock();
  ~Clock() = delete;  // leaky singleton

  void ensure_advancer_locked();
  void advancer_main();
  // Advances virtual time to the earliest deadline and fires everything due.
  // Called on the advancer thread with `mu_` held; drops it during notify.
  void advance_locked(std::unique_lock<std::mutex>& lk);
  [[nodiscard]] bool quiescent_locked() const;

  mutable std::mutex mu_;
  std::condition_variable internal_cv_;

  std::atomic<Mode> mode_{Mode::kRealTime};
  std::atomic<std::int64_t> now_ns_{0};  // virtual now (DiscreteEvent only)

  // Deadline-ordered fire queue, tie-broken by registration order so equal
  // deadlines fire deterministically. Untimed waiters only contribute to
  // blocked accounting and are woken by application notifies, never by the
  // clock.
  std::map<std::pair<std::int64_t, std::uint64_t>, WaiterPtr> deadlines_;

  // Every live registered waiter, keyed by its condition variable, so
  // on_notify can find who an application notify is about to wake. Entries
  // live from begin_wait to end_wait.
  std::unordered_multimap<std::condition_variable*, Waiter*> by_cv_;

  std::size_t actors_ = 0;   // registered simulation threads
  std::size_t blocked_ = 0;  // actors currently in a clock-visible wait
  // Runnable debt: non-actor threads known to be awake because the clock (or
  // an application notify) just woke them out of a registered wait. The clock
  // has no denominator for unregistered threads, but it *can* refuse to
  // advance while one it personally woke is still running — otherwise a test
  // driving bare fabrics with plain std::threads would see the advancer chain
  // straight through every queued deadline before the woken thread gets CPU.
  // Debt clears when the thread blocks again, or at thread exit.
  int debt_ = 0;
  // Outstanding exit_hold()s and threads inside an ExternalWaitScope. Both
  // are counted in every mode so the pairing survives mode switches; they
  // only gate quiescence together (see exit_hold above).
  int exit_holds_ = 0;
  int external_waiters_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t activity_epoch_ = 0;  // bumped on every state change
  ClockStats stats_;
  std::chrono::milliseconds stall_{50};
  // Real timestamp of the last advance, for the churn-liveness backstop.
  std::chrono::steady_clock::time_point last_advance_real_{};
  bool advancer_running_ = false;
  std::thread advancer_;
};

// ---- convenience free functions -------------------------------------------

[[nodiscard]] inline TimePoint now() { return Clock::instance().now(); }

template <typename Rep, typename Period>
void sleep_for(const std::chrono::duration<Rep, Period>& d) {
  Clock::instance().sleep_for(
      std::chrono::duration_cast<Duration>(d));
}

inline void sleep_until(TimePoint tp) { Clock::instance().sleep_until(tp); }

// Registers the current thread as an actor for the scope's lifetime. No-op
// when the thread is already an actor (scopes nest freely) or, for
// efficiency, nothing special in RealTime mode (registration is harmless and
// keeps mode switches honest, so it is done regardless).
class ActorScope {
 public:
  ActorScope();
  ~ActorScope();
  ActorScope(const ActorScope&) = delete;
  ActorScope& operator=(const ActorScope&) = delete;

 private:
  bool adopted_ = false;
};

// Marks the calling actor quiescent across native blocking the clock cannot
// see — a std::thread::join, a process wait. Without this, a joining actor
// looks runnable forever and virtual time stops.
class ExternalWaitScope {
 public:
  ExternalWaitScope() { Clock::instance().external_block_begin(); }
  ~ExternalWaitScope() { Clock::instance().external_block_end(); }
  ExternalWaitScope(const ExternalWaitScope&) = delete;
  ExternalWaitScope& operator=(const ExternalWaitScope&) = delete;
};

// Child-thread half of the actor handoff: the parent calls
// Clock::instance().actor_started() immediately before constructing the
// thread; the thread body holds one of these for its whole run.
class AdoptScope {
 public:
  AdoptScope() { Clock::instance().actor_adopt(); }
  ~AdoptScope() { Clock::instance().actor_finished(); }
  AdoptScope(const AdoptScope&) = delete;
  AdoptScope& operator=(const AdoptScope&) = delete;
};

// A std::thread that runs as a registered simulation actor: the parent
// counts the actor *before the thread exists*, so the clock cannot advance
// through the startup window where the child has not had CPU yet (a plain
// std::thread worker is invisible until its first clock-visible wait, and a
// loaded machine can delay that long enough for a quiescence check to fire a
// far deadline the worker was about to beat). The body runs under an
// AdoptScope and join() performs the exit-hold handshake, exactly like
// vnet::Process — use this for test and driver threads that participate in
// virtual time.
class ActorThread {
 public:
  ActorThread() = default;
  template <typename Fn>
  explicit ActorThread(Fn fn) {
    Clock::instance().actor_started();
    thread_ = std::thread([fn = std::move(fn)]() mutable {
      AdoptScope actor;
      fn();
      Clock::instance().exit_hold();  // released by join()
    });
  }
  ActorThread(ActorThread&&) = default;
  ActorThread& operator=(ActorThread&&) = delete;
  ActorThread(const ActorThread&) = delete;
  ActorThread& operator=(const ActorThread&) = delete;
  ~ActorThread() { join(); }

  void join() {
    if (thread_.joinable()) {
      {
        ExternalWaitScope quiescent;  // native join, clock-invisible
        thread_.join();
      }
      Clock::instance().exit_release();
    }
  }

 private:
  std::thread thread_;
};

}  // namespace dac::simtime
