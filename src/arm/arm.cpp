#include "arm/arm.hpp"

#include "svc/caller.hpp"
#include "svc/deadlines.hpp"
#include "svc/service_loop.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace dac::arm {

namespace {
const util::Logger kLog("arm");

constexpr auto msg(std::uint32_t code) {
  return static_cast<torque::MsgType>(code);
}
}  // namespace

PrototypeArm::PrototypeArm(vnet::Node& node, std::vector<PoolEntry> pool)
    : node_(node), endpoint_(node.open_endpoint()) {
  pool_.reserve(pool.size());
  for (auto& e : pool) pool_.push_back(Slot{std::move(e), 0});
}

void PrototypeArm::run(vnet::Process& proc) {
  proc.adopt_mailbox(endpoint_->mailbox_weak());
  kLog.info("prototype ARM up with {} accelerator(s)", pool_.size());

  svc::ServiceConfig cfg;
  cfg.name = "arm";
  svc::ServiceLoop loop(*endpoint_, cfg, &metrics_);

  loop.on(msg(kArmAlloc), svc::ExecClass::kMutating,
          [this](const svc::Request& req, svc::Responder& resp) {
            util::ByteReader r(req.body);
            util::ByteWriter reply;
            const auto count = r.get<std::int32_t>();
            std::vector<std::size_t> free_idx;
            for (std::size_t i = 0;
                 i < pool_.size() &&
                 static_cast<int>(free_idx.size()) < count;
                 ++i) {
              if (pool_[i].held_by == 0) free_idx.push_back(i);
            }
            if (count <= 0 || static_cast<int>(free_idx.size()) < count) {
              reply.put_bool(false);
              reply.put<std::uint64_t>(0);
              reply.put<std::uint32_t>(0);
            } else {
              const auto set = next_set_++;
              reply.put_bool(true);
              reply.put<std::uint64_t>(set);
              reply.put<std::uint32_t>(static_cast<std::uint32_t>(count));
              for (auto i : free_idx) {
                pool_[i].held_by = set;
                reply.put<std::int32_t>(pool_[i].entry.node);
                reply.put_string(pool_[i].entry.hostname);
              }
              sets_[set] = std::move(free_idx);
            }
            resp.ok(std::move(reply).take());
          });

  loop.on(msg(kArmFree), svc::ExecClass::kMutating,
          [this](const svc::Request& req, svc::Responder& resp) {
            util::ByteReader r(req.body);
            const auto set = r.get<std::uint64_t>();
            if (auto it = sets_.find(set); it != sets_.end()) {
              for (auto i : it->second) pool_[i].held_by = 0;
              sets_.erase(it);
              resp.ok();
            } else {
              resp.error(torque::ReplyCode::kBadRequest,
                         "ARM: unknown set id " + std::to_string(set));
            }
          });

  loop.on(msg(kArmReclaim), svc::ExecClass::kMutating,
          [this](const svc::Request& req, svc::Responder& resp) {
            util::ByteReader r(req.body);
            const auto count = r.get<std::int32_t>();
            int freed = 0;
            for (const auto& s : pool_) freed += s.held_by == 0 ? 1 : 0;
            std::vector<std::uint64_t> revoked;
            // Newest set first (highest id): the most recent holder loses
            // its accelerators, mirroring the LIFO release order sessions
            // use voluntarily.
            while (freed < count && !sets_.empty()) {
              auto it = std::prev(sets_.end());
              for (auto i : it->second) pool_[i].held_by = 0;
              freed += static_cast<int>(it->second.size());
              revoked.push_back(it->first);
              kLog.warn("ARM reclaim: revoked set {} ({} accelerator(s))",
                        it->first, it->second.size());
              sets_.erase(it);
            }
            util::ByteWriter reply;
            reply.put_bool(freed >= count);
            reply.put_vector<std::uint64_t>(revoked);
            resp.ok(std::move(reply).take());
          });

  loop.on(msg(kArmStatus), svc::ExecClass::kReadOnly,
          [this](const svc::Request&, svc::Responder& resp) {
            util::ByteWriter reply;
            int free = 0;
            for (const auto& s : pool_) free += s.held_by == 0 ? 1 : 0;
            reply.put<std::int32_t>(static_cast<std::int32_t>(pool_.size()));
            reply.put<std::int32_t>(free);
            reply.put<std::int32_t>(static_cast<std::int32_t>(sets_.size()));
            resp.ok(std::move(reply).take());
          });

  try {
    loop.run();
  } catch (const util::StoppedError&) {
    // cooperative shutdown
  }
}

ArmClient::ArmClient(vnet::Node& node, vnet::Address arm,
                     svc::RetryPolicy retry)
    : caller_(node, arm, retry), arm_(arm) {}

util::Bytes ArmClient::call(std::uint32_t type, util::Bytes body) {
  return caller_.call(msg(type), std::move(body),
                      {.deadline = svc::deadlines::kControl});
}

ArmAllocation ArmClient::alloc(int count) {
  util::ByteWriter w;
  w.put<std::int32_t>(count);
  auto payload = call(kArmAlloc, std::move(w).take());
  util::ByteReader r(payload);
  ArmAllocation out;
  out.granted = r.get_bool();
  out.set_id = r.get<std::uint64_t>();
  const auto n = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n; ++i) {
    out.nodes.push_back(r.get<std::int32_t>());
    out.hostnames.push_back(r.get_string());
  }
  return out;
}

void ArmClient::free_set(std::uint64_t set_id) {
  util::ByteWriter w;
  w.put<std::uint64_t>(set_id);
  // An unknown set id comes back as an error reply -> svc::CallError.
  (void)call(kArmFree, std::move(w).take());
}

std::vector<std::uint64_t> ArmClient::reclaim(int count) {
  util::ByteWriter w;
  w.put<std::int32_t>(count);
  auto payload = call(kArmReclaim, std::move(w).take());
  util::ByteReader r(payload);
  (void)r.get_bool();  // satisfied flag; revoked list says what happened
  return r.get_vector<std::uint64_t>();
}

ArmPoolStatus ArmClient::status() {
  auto payload = call(kArmStatus, {});
  util::ByteReader r(payload);
  ArmPoolStatus s;
  s.total = r.get<std::int32_t>();
  s.free = r.get<std::int32_t>();
  s.sets_outstanding = r.get<std::int32_t>();
  return s;
}

}  // namespace dac::arm
