// The prototypical Accelerator Resource Manager of paper §II: a standalone
// allocator service that predates the batch-system integration. It maintains
// the pool of network-attached accelerators and serves allocation and
// release requests from compute nodes directly — no queue, no scheduler, no
// job association. Kept alongside the integrated batch system both to show
// the design evolution and for the latency ablation (standalone ARM vs.
// batch-integrated pbs_dynget).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "svc/caller.hpp"
#include "svc/metrics.hpp"
#include "util/bytes.hpp"
#include "vnet/node.hpp"

namespace dac::arm {

// vnet message types of the ARM protocol. The ARM speaks the shared svc
// request/reply envelope (so it gets retries, dedup, and metrics for free);
// these codes live outside the torque MsgType space.
inline constexpr std::uint32_t kArmAlloc = 0x41524D01;    // count -> set
inline constexpr std::uint32_t kArmFree = 0x41524D02;     // set id
inline constexpr std::uint32_t kArmStatus = 0x41524D03;   // -> pool state
inline constexpr std::uint32_t kArmReclaim = 0x41524D04;  // count -> set ids
inline constexpr std::uint32_t kArmReply = 0x41524D10;    // legacy reply code

struct ArmAllocation {
  bool granted = false;
  std::uint64_t set_id = 0;
  std::vector<vnet::NodeId> nodes;
  std::vector<std::string> hostnames;
};

struct ArmPoolStatus {
  int total = 0;
  int free = 0;
  int sets_outstanding = 0;
};

// The ARM service. Construct with the accelerator pool, then run() inside a
// process; the address is available immediately after construction.
class PrototypeArm {
 public:
  struct PoolEntry {
    vnet::NodeId node;
    std::string hostname;
  };

  PrototypeArm(vnet::Node& node, std::vector<PoolEntry> pool);

  PrototypeArm(const PrototypeArm&) = delete;
  PrototypeArm& operator=(const PrototypeArm&) = delete;

  [[nodiscard]] const vnet::Address& address() const {
    return endpoint_->address();
  }

  void run(vnet::Process& proc);

  [[nodiscard]] const svc::MetricsRegistry& metrics() const {
    return metrics_;
  }

 private:
  struct Slot {
    PoolEntry entry;
    std::uint64_t held_by = 0;  // set id, 0 = free
  };

  vnet::Node& node_;
  std::unique_ptr<vnet::Endpoint> endpoint_;
  std::vector<Slot> pool_;
  std::map<std::uint64_t, std::vector<std::size_t>> sets_;  // id -> slot idx
  std::uint64_t next_set_ = 1;
  svc::MetricsRegistry metrics_;
};

// Client side: allocation/release calls a compute node issues.
class ArmClient {
 public:
  ArmClient(vnet::Node& node, vnet::Address arm,
            svc::RetryPolicy retry = {});

  // Subject to availability; a rejection returns granted == false (the ARM,
  // like the batch system, never queues dynamic requests).
  ArmAllocation alloc(int count);
  void free_set(std::uint64_t set_id);
  ArmPoolStatus status();
  // Forcibly revokes whole sets (newest first) until at least `count`
  // accelerators are back in the pool; returns the revoked set ids. The
  // standalone ARM has no way to ask the holder — this is the blunt
  // counterpart of the batch system's negotiated elastic shrink
  // (docs/ELASTIC.md), kept for the ablation contrast.
  std::vector<std::uint64_t> reclaim(int count);

 private:
  util::Bytes call(std::uint32_t type, util::Bytes body);

  svc::Caller caller_;
  vnet::Address arm_;
};

}  // namespace dac::arm
