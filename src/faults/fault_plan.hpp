// Deterministic fault injection for the virtual cluster. A FaultPlan is the
// single source of failure truth: the fabric consults it per message (drops,
// duplicates, extra delay, partitions, crashed nodes), and the harness
// drives node crash/restart and partition/heal transitions through it —
// either imperatively or from a schedule scripted on the decision index.
//
// Determinism contract: the plan draws a FIXED number of uniforms per
// on_message() call, so the random decision stream is a pure function of
// (seed, message sequence). Same seed + same schedule + same traffic order
// => identical fault event trace, which the determinism test asserts by
// replaying one sequence twice and comparing traces.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "svc/metrics.hpp"
#include "util/sync.hpp"
#include "vnet/fault_injector.hpp"

namespace dac::faults {

// Synthetic metric codes for injected faults (never on the wire; recorded
// into a MetricsRegistry so injection counts render next to real RPCs).
inline constexpr std::uint32_t kEvFaultDrop = 0xFA00'0001;
inline constexpr std::uint32_t kEvFaultDup = 0xFA00'0002;
inline constexpr std::uint32_t kEvFaultDelay = 0xFA00'0003;
inline constexpr std::uint32_t kEvNodeCrash = 0xFA00'0004;
inline constexpr std::uint32_t kEvNodeRestart = 0xFA00'0005;
inline constexpr std::uint32_t kEvLinkPartition = 0xFA00'0006;

// Per-message fault probabilities, all in [0, 1] and 0 by default (healthy).
// `max_extra_delay` bounds the uniform delay drawn when a delay fault fires.
struct FaultRates {
  double drop = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  std::chrono::microseconds max_extra_delay{0};
};

enum class FaultEventKind : std::uint8_t {
  kDrop,
  kDuplicate,
  kDelay,
  kPartitionDrop,  // message discarded because its pair is partitioned
  kCrashDrop,      // message discarded because an endpoint is crashed
  kPartition,
  kHeal,
  kCrash,
  kRestart,
};

const char* fault_event_kind_name(FaultEventKind kind);

// One entry of the fault trace. For message faults `a`/`b` are the sending
// and receiving node; for topology transitions they are the affected
// node(s) (`b` is kInvalidNode for crash/restart).
struct FaultEvent {
  FaultEventKind kind{};
  std::uint64_t decision = 0;  // on_message() count when the event fired
  vnet::NodeId a = vnet::kInvalidNode;
  vnet::NodeId b = vnet::kInvalidNode;
  std::chrono::nanoseconds extra_delay{0};

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

// Scripted topology transition, fired just before the decision whose index
// reaches `at_decision`. Scheduling on decision count (not wall time) keeps
// the schedule replayable.
struct ScriptedAction {
  FaultEventKind kind{};  // kPartition, kHeal, kCrash or kRestart
  vnet::NodeId a = vnet::kInvalidNode;
  vnet::NodeId b = vnet::kInvalidNode;
};

class FaultPlan : public vnet::FaultInjector {
 public:
  explicit FaultPlan(std::uint64_t seed, FaultRates rates = {});

  // Scripts `action` to fire when the decision counter reaches
  // `at_decision` (0-based index of the triggering on_message call).
  void at(std::uint64_t at_decision, ScriptedAction action);

  // Imperative topology control; effective for all subsequent messages.
  // Partitions are symmetric (both directions blocked); a crashed node
  // neither sends nor receives until restarted.
  void partition(vnet::NodeId a, vnet::NodeId b);
  void heal(vnet::NodeId a, vnet::NodeId b);
  void crash_node(vnet::NodeId node);
  void restart_node(vnet::NodeId node);
  [[nodiscard]] bool node_crashed(vnet::NodeId node) const;

  // Optional export: every injected fault and topology transition is also
  // record()ed (latency 0) into `metrics`. Not owned; may be null.
  void set_metrics(svc::MetricsRegistry* metrics);

  // vnet::FaultInjector. Thread-safe; draws exactly four uniforms per call.
  vnet::FaultDecision on_message(vnet::NodeId from, vnet::NodeId to,
                                 std::uint32_t type,
                                 std::size_t payload_bytes) override;

  struct Counters {
    std::uint64_t drops = 0;       // probabilistic drops
    std::uint64_t duplicates = 0;
    std::uint64_t delays = 0;
    std::uint64_t blocked = 0;     // partition + crash discards
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t partitions = 0;
    std::uint64_t heals = 0;
  };

  [[nodiscard]] std::vector<FaultEvent> trace() const;
  [[nodiscard]] Counters counters() const;
  [[nodiscard]] std::uint64_t decisions() const;
  [[nodiscard]] const FaultRates& rates() const { return rates_; }

 private:
  void fire_locked(FaultEventKind kind, vnet::NodeId a, vnet::NodeId b,
                   std::chrono::nanoseconds extra_delay)
      DAC_REQUIRES(mu_);
  void apply_action_locked(const ScriptedAction& action) DAC_REQUIRES(mu_);
  static std::pair<vnet::NodeId, vnet::NodeId> norm(vnet::NodeId a,
                                                    vnet::NodeId b) {
    return a <= b ? std::pair{a, b} : std::pair{b, a};
  }

  const FaultRates rates_;

  mutable Mutex mu_{"faults.plan"};
  std::mt19937_64 rng_ DAC_GUARDED_BY(mu_);
  std::uint64_t decisions_ DAC_GUARDED_BY(mu_) = 0;
  std::multimap<std::uint64_t, ScriptedAction> script_ DAC_GUARDED_BY(mu_);
  std::set<std::pair<vnet::NodeId, vnet::NodeId>> partitions_
      DAC_GUARDED_BY(mu_);
  std::set<vnet::NodeId> crashed_ DAC_GUARDED_BY(mu_);
  std::vector<FaultEvent> trace_ DAC_GUARDED_BY(mu_);
  Counters counters_ DAC_GUARDED_BY(mu_);
  svc::MetricsRegistry* metrics_ DAC_GUARDED_BY(mu_) = nullptr;
};

}  // namespace dac::faults
