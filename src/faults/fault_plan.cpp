#include "faults/fault_plan.hpp"

#include "util/logging.hpp"

namespace dac::faults {

namespace {
const util::Logger kLog("faults");

std::uint32_t event_metric(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kDrop: return kEvFaultDrop;
    case FaultEventKind::kDuplicate: return kEvFaultDup;
    case FaultEventKind::kDelay: return kEvFaultDelay;
    case FaultEventKind::kPartitionDrop: return kEvFaultDrop;
    case FaultEventKind::kCrashDrop: return kEvFaultDrop;
    case FaultEventKind::kPartition: return kEvLinkPartition;
    case FaultEventKind::kHeal: return kEvLinkPartition;
    case FaultEventKind::kCrash: return kEvNodeCrash;
    case FaultEventKind::kRestart: return kEvNodeRestart;
  }
  return kEvFaultDrop;
}
}  // namespace

const char* fault_event_kind_name(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kDrop: return "drop";
    case FaultEventKind::kDuplicate: return "duplicate";
    case FaultEventKind::kDelay: return "delay";
    case FaultEventKind::kPartitionDrop: return "partition-drop";
    case FaultEventKind::kCrashDrop: return "crash-drop";
    case FaultEventKind::kPartition: return "partition";
    case FaultEventKind::kHeal: return "heal";
    case FaultEventKind::kCrash: return "crash";
    case FaultEventKind::kRestart: return "restart";
  }
  return "?";
}

FaultPlan::FaultPlan(std::uint64_t seed, FaultRates rates)
    : rates_(rates), rng_(seed) {}

void FaultPlan::at(std::uint64_t at_decision, ScriptedAction action) {
  ScopedLock lock(mu_);
  script_.emplace(at_decision, action);
}

void FaultPlan::partition(vnet::NodeId a, vnet::NodeId b) {
  ScopedLock lock(mu_);
  apply_action_locked({FaultEventKind::kPartition, a, b});
}

void FaultPlan::heal(vnet::NodeId a, vnet::NodeId b) {
  ScopedLock lock(mu_);
  apply_action_locked({FaultEventKind::kHeal, a, b});
}

void FaultPlan::crash_node(vnet::NodeId node) {
  ScopedLock lock(mu_);
  apply_action_locked({FaultEventKind::kCrash, node, vnet::kInvalidNode});
}

void FaultPlan::restart_node(vnet::NodeId node) {
  ScopedLock lock(mu_);
  apply_action_locked({FaultEventKind::kRestart, node, vnet::kInvalidNode});
}

bool FaultPlan::node_crashed(vnet::NodeId node) const {
  ScopedLock lock(mu_);
  return crashed_.count(node) > 0;
}

void FaultPlan::set_metrics(svc::MetricsRegistry* metrics) {
  ScopedLock lock(mu_);
  metrics_ = metrics;
}

void FaultPlan::fire_locked(FaultEventKind kind, vnet::NodeId a,
                            vnet::NodeId b,
                            std::chrono::nanoseconds extra_delay) {
  trace_.push_back(FaultEvent{kind, decisions_, a, b, extra_delay});
  if (metrics_) metrics_->record(event_metric(kind), 0.0);
}

void FaultPlan::apply_action_locked(const ScriptedAction& action) {
  switch (action.kind) {
    case FaultEventKind::kPartition:
      if (partitions_.insert(norm(action.a, action.b)).second) {
        ++counters_.partitions;
        kLog.info("partition {} <-/-> {}", action.a, action.b);
        fire_locked(FaultEventKind::kPartition, action.a, action.b, {});
      }
      break;
    case FaultEventKind::kHeal:
      if (partitions_.erase(norm(action.a, action.b)) > 0) {
        ++counters_.heals;
        kLog.info("heal {} <--> {}", action.a, action.b);
        fire_locked(FaultEventKind::kHeal, action.a, action.b, {});
      }
      break;
    case FaultEventKind::kCrash:
      if (crashed_.insert(action.a).second) {
        ++counters_.crashes;
        kLog.info("crash node {}", action.a);
        fire_locked(FaultEventKind::kCrash, action.a, vnet::kInvalidNode, {});
      }
      break;
    case FaultEventKind::kRestart:
      if (crashed_.erase(action.a) > 0) {
        ++counters_.restarts;
        kLog.info("restart node {}", action.a);
        fire_locked(FaultEventKind::kRestart, action.a, vnet::kInvalidNode,
                    {});
      }
      break;
    default:
      kLog.warn("ignoring scripted action with message-fault kind {}",
                fault_event_kind_name(action.kind));
      break;
  }
}

vnet::FaultDecision FaultPlan::on_message(vnet::NodeId from, vnet::NodeId to,
                                          std::uint32_t /*type*/,
                                          std::size_t /*payload_bytes*/) {
  ScopedLock lock(mu_);

  // Fire every scripted action whose index has arrived, in insertion order
  // per index. Done before the draws so a crash scripted "at decision N"
  // affects message N itself.
  while (!script_.empty() && script_.begin()->first <= decisions_) {
    const ScriptedAction action = script_.begin()->second;
    script_.erase(script_.begin());
    apply_action_locked(action);
  }

  // Fixed draw count per decision: the random stream position depends only
  // on how many messages have been seen, never on which faults fired.
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const double u_drop = uniform(rng_);
  const double u_dup = uniform(rng_);
  const double u_delay = uniform(rng_);
  const double u_magnitude = uniform(rng_);

  vnet::FaultDecision decision;
  const bool blocked =
      crashed_.count(from) > 0 || crashed_.count(to) > 0 ||
      (from != to && partitions_.count(norm(from, to)) > 0);
  if (blocked) {
    const bool crashed = crashed_.count(from) > 0 || crashed_.count(to) > 0;
    ++counters_.blocked;
    fire_locked(crashed ? FaultEventKind::kCrashDrop
                        : FaultEventKind::kPartitionDrop,
                from, to, {});
    decision.drop = true;
  } else if (u_drop < rates_.drop) {
    ++counters_.drops;
    fire_locked(FaultEventKind::kDrop, from, to, {});
    decision.drop = true;
  } else {
    if (u_dup < rates_.duplicate) {
      ++counters_.duplicates;
      fire_locked(FaultEventKind::kDuplicate, from, to, {});
      decision.duplicate = true;
    }
    if (u_delay < rates_.delay && rates_.max_extra_delay.count() > 0) {
      const auto max_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              rates_.max_extra_delay)
                              .count();
      decision.extra_delay = std::chrono::nanoseconds(
          static_cast<long long>(u_magnitude * static_cast<double>(max_ns)));
      ++counters_.delays;
      fire_locked(FaultEventKind::kDelay, from, to, decision.extra_delay);
    }
  }
  ++decisions_;
  return decision;
}

std::vector<FaultEvent> FaultPlan::trace() const {
  ScopedLock lock(mu_);
  return trace_;
}

FaultPlan::Counters FaultPlan::counters() const {
  ScopedLock lock(mu_);
  return counters_;
}

std::uint64_t FaultPlan::decisions() const {
  ScopedLock lock(mu_);
  return decisions_;
}

}  // namespace dac::faults
