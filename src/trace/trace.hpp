// Causal tracing for the virtual cluster. One trace follows a logical
// request — an IFL submission, a pbs_dynget, a fault recovery — across every
// daemon it touches: spans form a tree linked by {trace-id, parent-span-id},
// and the context rides inside the svc wire envelope so a handler's spans
// hang off the caller's span without any daemon knowing about its peers.
//
// Span timestamps come in two flavours:
//  - wall nanoseconds (steady clock, relative to the Recorder's epoch) for
//    humans and the Chrome about:tracing exporter;
//  - the vnet virtual clock (a process-wide logical counter advanced by
//    every fabric delivery and span event), which gives a total order that
//    is consistent with causality — the substrate for happens-before
//    assertions and for normalized golden traces that are bit-identical
//    across runs of the same seeded scenario.
//
// Tracing is off unless a Recorder is installed (tests/harness installs one
// per Scenario). With no recorder, SpanScope is inert and merely passes the
// parent context through, so traced binaries pay one atomic load per span.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace dac::trace {

// The propagated part of a span: what travels on the wire and in thread-local
// storage. trace == 0 means "not traced".
struct Context {
  std::uint64_t trace = 0;
  std::uint64_t span = 0;

  [[nodiscard]] bool traced() const { return trace != 0; }
};

// A finished span as the Recorder stores it.
struct Span {
  std::uint64_t trace = 0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root of its trace
  std::string name;
  std::string actor;  // which daemon/program recorded it
  std::uint64_t begin_tick = 0;  // virtual clock
  std::uint64_t end_tick = 0;
  std::int64_t begin_ns = 0;  // steady ns since the recorder's epoch
  std::int64_t end_ns = 0;
  std::vector<std::pair<std::string, std::string>> notes;

  [[nodiscard]] double duration_ms() const {
    return static_cast<double>(end_ns - begin_ns) / 1e6;
  }
};

// ---- virtual clock --------------------------------------------------------
// Process-wide logical clock. The vnet fabric ticks it on every message
// delivery; SpanScope ticks it on begin/end. Reads/ticks are always
// available, independent of any Recorder.
std::uint64_t vclock();
std::uint64_t vclock_tick();

// ---- recorder -------------------------------------------------------------

class Recorder {
 public:
  Recorder();
  ~Recorder();  // uninstalls itself if still installed

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Makes this recorder the process-wide sink. At most one recorder is
  // installed at a time; installing replaces the previous one.
  void install();
  void uninstall();

  std::uint64_t new_trace_id();
  std::uint64_t new_span_id();
  // Steady nanoseconds since this recorder's construction.
  [[nodiscard]] std::int64_t now_ns() const;

  void record(Span s);
  [[nodiscard]] std::vector<Span> snapshot() const;
  [[nodiscard]] std::size_t size() const;

  // Blocks until no new span of `trace_id` has been recorded for `idle`, or
  // until `timeout` elapses; returns true on quiescence. Golden-trace tests
  // call this before snapshotting: a trace's teardown spans (daemon serve
  // spans, job wrappers, TASK_DONE handling) are recorded asynchronously
  // after the client observes job completion, and a snapshot taken
  // mid-drain would be nondeterministic. `trace_id` 0 waits for the whole
  // recorder — only meaningful when no periodic sources (heartbeats,
  // scheduler polls) are still running.
  bool await_quiet(
      std::uint64_t trace_id = 0,
      std::chrono::milliseconds idle = std::chrono::milliseconds(50),
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

 private:
  // Spans of `trace_id` recorded so far (all spans when 0).
  [[nodiscard]] std::size_t count_locked(std::uint64_t trace_id) const
      DAC_REQUIRES(mu_);

  std::int64_t epoch_ns_ = 0;
  std::atomic<std::uint64_t> next_trace_{1};
  std::atomic<std::uint64_t> next_span_{1};
  mutable Mutex mu_{"trace.recorder"};
  CondVar recorded_;  // signalled on every record()
  std::vector<Span> spans_ DAC_GUARDED_BY(mu_);
};

// The installed recorder, or nullptr when tracing is off.
Recorder* recorder();

// ---- thread-local context -------------------------------------------------

// The context new spans and outgoing requests inherit on this thread.
Context current();

// Names the component recording spans on this thread ("pbs_server",
// "maui", "job3.r0", ...). Defaults to "client".
void set_thread_actor(std::string actor);
[[nodiscard]] const std::string& thread_actor();

// Sets the thread's current context for a scope; restores on destruction.
// ScopedContext(Context{}) detaches the scope from any ambient trace —
// used around periodic work (heartbeats) that must not join a request's
// trace.
class ScopedContext {
 public:
  explicit ScopedContext(Context ctx);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  Context prev_;
};

// ---- spans ----------------------------------------------------------------

// RAII span. With a recorder installed it allocates ids (starting a new
// trace when the parent is untraced), becomes the thread's current context,
// and records itself when ended/destroyed. Without a recorder it is inert
// and context() just returns the parent, so propagation still works.
class SpanScope {
 public:
  explicit SpanScope(std::string name);  // parent = current()
  SpanScope(std::string name, Context parent);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void note(std::string key, std::string value);
  // {trace, own span id}, or the parent context when inert.
  [[nodiscard]] Context context() const { return ctx_; }
  void end();

 private:
  Recorder* rec_ = nullptr;
  Span span_;
  Context ctx_;
  Context prev_ctx_;
  SpanScope* prev_active_ = nullptr;
  bool ended_ = false;
};

// Adds a note to the innermost active SpanScope on this thread (no-op when
// none): how handlers attach job ids, hostnames, grant sizes.
void note(std::string key, std::string value);

// Records an instantaneous span under the current context.
void event(std::string name,
           std::vector<std::pair<std::string, std::string>> notes = {});

}  // namespace dac::trace
