#include "trace/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace dac::trace {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

// Sort key that ignores ids and times: structure only.
std::string sibling_key(const Span& s) {
  std::string key = s.name;
  key += '\0';
  key += s.actor;
  for (const auto& [k, v] : s.notes) {
    key += '\0';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

void dump_subtree(std::ostringstream& os,
                  const std::map<std::uint64_t, std::vector<const Span*>>&
                      children,
                  const Span& span, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << span.name << " @" << span.actor;
  for (const auto& [k, v] : span.notes) os << ' ' << k << '=' << v;
  os << '\n';
  const auto it = children.find(span.id);
  if (it == children.end()) return;
  auto kids = it->second;
  std::sort(kids.begin(), kids.end(), [](const Span* a, const Span* b) {
    const auto ka = sibling_key(*a);
    const auto kb = sibling_key(*b);
    // Tick order as the last resort so equal-keyed siblings still dump in
    // a stable (causal) order within one run.
    return ka != kb ? ka < kb : a->begin_tick < b->begin_tick;
  });
  for (const auto* kid : kids) dump_subtree(os, children, *kid, depth + 1);
}

}  // namespace

std::string chrome_trace_json(const std::vector<Span>& spans) {
  std::ostringstream os;
  // Stable pid per actor, first-appearance order.
  std::map<std::string, int> pids;
  std::vector<std::string> actors;
  for (const auto& s : spans) {
    if (pids.emplace(s.actor, 0).second) actors.push_back(s.actor);
  }
  std::sort(actors.begin(), actors.end());
  for (std::size_t i = 0; i < actors.size(); ++i) {
    pids[actors[i]] = static_cast<int>(i + 1);
  }

  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& actor : actors) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pids[actor]
       << ",\"tid\":0,\"args\":{\"name\":\"";
    json_escape(os, actor);
    os << "\"}}";
  }
  for (const auto& s : spans) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"";
    json_escape(os, s.name);
    os << "\",\"cat\":\"trace" << s.trace << "\",\"ph\":\"X\",\"ts\":"
       << static_cast<double>(s.begin_ns) / 1000.0 << ",\"dur\":"
       << static_cast<double>(s.end_ns - s.begin_ns) / 1000.0
       << ",\"pid\":" << pids[s.actor] << ",\"tid\":0,\"args\":{"
       << "\"trace\":" << s.trace << ",\"span\":" << s.id
       << ",\"parent\":" << s.parent << ",\"tick\":" << s.begin_tick;
    for (const auto& [k, v] : s.notes) {
      os << ",\"";
      json_escape(os, k);
      os << "\":\"";
      json_escape(os, v);
      os << "\"";
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

void write_chrome_trace(const std::string& path,
                        const std::vector<Span>& spans) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("trace: cannot open " + path + " for writing");
  }
  out << chrome_trace_json(spans);
  if (!out) throw std::runtime_error("trace: short write to " + path);
}

std::string normalized_dump(const std::vector<Span>& spans,
                            std::uint64_t trace_id) {
  std::vector<const Span*> mine;
  for (const auto& s : spans) {
    if (s.trace == trace_id) mine.push_back(&s);
  }
  std::map<std::uint64_t, std::vector<const Span*>> children;
  std::map<std::uint64_t, const Span*> by_id;
  for (const auto* s : mine) by_id[s->id] = s;
  std::vector<const Span*> roots;
  for (const auto* s : mine) {
    if (s->parent != 0 && by_id.count(s->parent) != 0) {
      children[s->parent].push_back(s);
    } else {
      // True roots, plus orphans whose parent span was never recorded
      // (e.g. the parent outlived the collection window).
      roots.push_back(s);
    }
  }
  std::sort(roots.begin(), roots.end(), [](const Span* a, const Span* b) {
    const auto ka = sibling_key(*a);
    const auto kb = sibling_key(*b);
    return ka != kb ? ka < kb : a->begin_tick < b->begin_tick;
  });
  std::ostringstream os;
  for (const auto* r : roots) dump_subtree(os, children, *r, 0);
  return os.str();
}

}  // namespace dac::trace
