// Trace exporters: Chrome about:tracing JSON for humans, and a normalized
// text dump for golden-trace tests.
//
// The Chrome export keeps real (steady-clock) microsecond timestamps so
// chrome://tracing renders a believable timeline; one "process" per actor.
//
// The normalized dump deliberately throws away everything that varies
// between runs of the same seeded scenario — span/trace ids, wall times,
// virtual-clock values — and keeps only the causal tree: span names, actors,
// notes, and parent/child structure, with siblings in a canonical order.
// Two runs of a deterministic scenario produce byte-identical dumps, which
// is what the golden fixtures under tests/*/golden compare against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace dac::trace {

// Chrome trace-event JSON ({"traceEvents": [...]}) for the given spans.
std::string chrome_trace_json(const std::vector<Span>& spans);

// Writes chrome_trace_json to `path` (truncating). Throws util::IoError-like
// std::runtime_error on failure.
void write_chrome_trace(const std::string& path,
                        const std::vector<Span>& spans);

// Normalized dump of one trace: an indented tree, one span per line as
//   name @actor key=value ...
// with children sorted by (name, actor, notes). Ids and times are omitted.
std::string normalized_dump(const std::vector<Span>& spans,
                            std::uint64_t trace_id);

}  // namespace dac::trace
