#include "trace/trace.hpp"
#include "simtime/clock.hpp"

#include <atomic>
#include <chrono>

namespace dac::trace {

namespace {

std::atomic<std::uint64_t> g_vclock{0};
std::atomic<Recorder*> g_recorder{nullptr};

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             simtime::now().time_since_epoch())
      .count();
}

thread_local Context t_ctx;
thread_local SpanScope* t_active = nullptr;

const std::string& default_actor() {
  static const std::string kDefault = "client";
  return kDefault;
}

thread_local std::string t_actor;  // empty = default_actor()

}  // namespace

std::uint64_t vclock() { return g_vclock.load(std::memory_order_relaxed); }

std::uint64_t vclock_tick() {
  return g_vclock.fetch_add(1, std::memory_order_relaxed) + 1;
}

// ---- Recorder -------------------------------------------------------------

Recorder::Recorder() : epoch_ns_(steady_now_ns()) {}

Recorder::~Recorder() { uninstall(); }

void Recorder::install() { g_recorder.store(this, std::memory_order_release); }

void Recorder::uninstall() {
  Recorder* self = this;
  g_recorder.compare_exchange_strong(self, nullptr,
                                     std::memory_order_acq_rel);
}

std::uint64_t Recorder::new_trace_id() {
  return next_trace_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Recorder::new_span_id() {
  return next_span_.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t Recorder::now_ns() const { return steady_now_ns() - epoch_ns_; }

void Recorder::record(Span s) {
  ScopedLock lock(mu_);
  spans_.push_back(std::move(s));
  recorded_.notify_all();
}

std::vector<Span> Recorder::snapshot() const {
  ScopedLock lock(mu_);
  return spans_;
}

std::size_t Recorder::size() const {
  ScopedLock lock(mu_);
  return spans_.size();
}

bool Recorder::await_quiet(std::uint64_t trace_id,
                           std::chrono::milliseconds idle,
                           std::chrono::milliseconds timeout) {
  const auto deadline = simtime::now() + timeout;
  UniqueLock lock(mu_);
  while (true) {
    const std::size_t seen = count_locked(trace_id);
    const auto quiet_until = simtime::now() + idle;
    // Wait out the idle window; a matching recording restarts it.
    while (count_locked(trace_id) == seen &&
           recorded_.wait_until(lock, quiet_until) !=
               std::cv_status::timeout) {
    }
    if (count_locked(trace_id) == seen) return true;  // window untouched
    if (simtime::now() >= deadline) return false;
  }
}

std::size_t Recorder::count_locked(std::uint64_t trace_id) const {
  if (trace_id == 0) return spans_.size();
  std::size_t n = 0;
  for (const auto& s : spans_) {
    if (s.trace == trace_id) ++n;
  }
  return n;
}

Recorder* recorder() { return g_recorder.load(std::memory_order_acquire); }

// ---- thread-local context -------------------------------------------------

Context current() { return t_ctx; }

void set_thread_actor(std::string actor) { t_actor = std::move(actor); }

const std::string& thread_actor() {
  return t_actor.empty() ? default_actor() : t_actor;
}

ScopedContext::ScopedContext(Context ctx) : prev_(t_ctx) { t_ctx = ctx; }

ScopedContext::~ScopedContext() { t_ctx = prev_; }

// ---- SpanScope ------------------------------------------------------------

SpanScope::SpanScope(std::string name) : SpanScope(std::move(name), t_ctx) {}

SpanScope::SpanScope(std::string name, Context parent)
    : rec_(recorder()), prev_ctx_(t_ctx), prev_active_(t_active) {
  if (rec_ == nullptr) {
    // Inert: keep propagating whatever context the caller had.
    ctx_ = parent;
    ended_ = true;
    return;
  }
  span_.trace = parent.traced() ? parent.trace : rec_->new_trace_id();
  span_.id = rec_->new_span_id();
  span_.parent = parent.span;
  span_.name = std::move(name);
  span_.actor = thread_actor();
  span_.begin_tick = vclock_tick();
  span_.begin_ns = rec_->now_ns();
  ctx_ = Context{span_.trace, span_.id};
  t_ctx = ctx_;
  t_active = this;
}

SpanScope::~SpanScope() { end(); }

void SpanScope::note(std::string key, std::string value) {
  if (ended_) return;
  span_.notes.emplace_back(std::move(key), std::move(value));
}

void SpanScope::end() {
  if (ended_) return;
  ended_ = true;
  span_.end_tick = vclock_tick();
  span_.end_ns = rec_->now_ns();
  rec_->record(std::move(span_));
  t_ctx = prev_ctx_;
  t_active = prev_active_;
}

void note(std::string key, std::string value) {
  if (t_active != nullptr) t_active->note(std::move(key), std::move(value));
}

void event(std::string name,
           std::vector<std::pair<std::string, std::string>> notes) {
  Recorder* rec = recorder();
  if (rec == nullptr) return;
  Span s;
  const Context parent = t_ctx;
  s.trace = parent.traced() ? parent.trace : rec->new_trace_id();
  s.id = rec->new_span_id();
  s.parent = parent.span;
  s.name = std::move(name);
  s.actor = thread_actor();
  s.begin_tick = s.end_tick = vclock_tick();
  s.begin_ns = s.end_ns = rec->now_ns();
  s.notes = std::move(notes);
  rec->record(std::move(s));
}

}  // namespace dac::trace
