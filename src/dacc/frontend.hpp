// Front-end of the computation API (paper Figure 3): translates calls into
// requests to the back-end daemon identified by its rank in the merged
// communicator, and blocks for the reply. The resource-management library
// wraps these with the handle-based acMemAlloc/acMemCpy/acKernel* surface of
// Listing 1.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "dacc/protocol.hpp"
#include "minimpi/proc.hpp"

namespace dac::dacc {

// A computation-API failure (daemon returned a non-success driver status).
class AcError : public std::runtime_error {
 public:
  AcError(Status status, const std::string& what)
      : std::runtime_error(what), status_(status) {}
  [[nodiscard]] Status status() const { return status_; }

 private:
  Status status_;
};

using KernelHandle = std::uint32_t;

namespace frontend {

// Every operation takes a reply-wait bound; zero (the default) waits
// forever. With a bound, a dead or partitioned accelerator surfaces as
// AcError(Status::kNodeLost) instead of a hang, so the application can
// report the set lost and pbs_dynget a replacement.
using Timeout = std::chrono::milliseconds;

gpusim::DevicePtr mem_alloc(minimpi::Proc& proc, const minimpi::Comm& comm,
                            int rank, std::uint64_t size, Timeout timeout = {});
void mem_free(minimpi::Proc& proc, const minimpi::Comm& comm, int rank,
              gpusim::DevicePtr ptr, Timeout timeout = {});

// Host-to-device copy, chunked per `opts` (pipelined by default).
void memcpy_h2d(minimpi::Proc& proc, const minimpi::Comm& comm, int rank,
                gpusim::DevicePtr dst, std::span<const std::byte> src,
                const TransferOptions& opts = {});
util::Bytes memcpy_d2h(minimpi::Proc& proc, const minimpi::Comm& comm,
                       int rank, gpusim::DevicePtr src, std::uint64_t size,
                       const TransferOptions& opts = {});

KernelHandle kernel_create(minimpi::Proc& proc, const minimpi::Comm& comm,
                           int rank, const std::string& name,
                           Timeout timeout = {});
void kernel_set_args(minimpi::Proc& proc, const minimpi::Comm& comm, int rank,
                     KernelHandle kernel, util::Bytes args,
                     Timeout timeout = {});
void kernel_run(minimpi::Proc& proc, const minimpi::Comm& comm, int rank,
                KernelHandle kernel, gpusim::Dim3 grid, gpusim::Dim3 block,
                Timeout timeout = {});

struct DeviceInfo {
  std::string name;
  std::uint64_t bytes_free = 0;
};
DeviceInfo device_info(minimpi::Proc& proc, const minimpi::Comm& comm,
                       int rank, Timeout timeout = {});

// Cooperative 1D Jacobi run across daemon ranks [first, first + k): each
// rank holds a slab of `n` doubles at `fields[i]`; daemons exchange halos
// with their neighbours directly (paper §I) while the compute node only
// dispatches and waits. Fixed boundary values close the domain ends.
void stencil_run(minimpi::Proc& proc, const minimpi::Comm& comm, int first,
                 const std::vector<gpusim::DevicePtr>& fields,
                 std::uint64_t n, std::uint32_t iterations,
                 double boundary_left, double boundary_right);

}  // namespace frontend
}  // namespace dac::dacc
