// One simulated GPU per accelerator node, created lazily with the built-in
// kernels registered. The daemon executables look their node's device up
// here — the analogue of cuInit + cuDeviceGet on the accelerator host.
#pragma once

#include <map>
#include <memory>

#include "gpusim/device.hpp"
#include "util/sync.hpp"
#include "vnet/message.hpp"

namespace dac::dacc {

class DeviceManager {
 public:
  explicit DeviceManager(gpusim::DeviceConfig config = {})
      : config_(std::move(config)) {}

  DeviceManager(const DeviceManager&) = delete;
  DeviceManager& operator=(const DeviceManager&) = delete;

  gpusim::Device& device_for(vnet::NodeId node) {
    ScopedLock lock(mu_);
    auto it = devices_.find(node);
    if (it == devices_.end()) {
      auto dev = std::make_unique<gpusim::Device>(config_);
      gpusim::register_builtin_kernels(*dev);
      it = devices_.emplace(node, std::move(dev)).first;
    }
    return *it->second;
  }

  [[nodiscard]] const gpusim::DeviceConfig& config() const { return config_; }

 private:
  gpusim::DeviceConfig config_;
  Mutex mu_{"dacc.devices"};
  std::map<vnet::NodeId, std::unique_ptr<gpusim::Device>> devices_
      DAC_GUARDED_BY(mu_);
};

}  // namespace dac::dacc
