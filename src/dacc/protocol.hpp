// Wire protocol between the DAC front-end (compute node) and the back-end
// accelerator daemons, spoken over the merged MPI communicator in which the
// compute node holds rank 0 and each accelerator a unique rank >= 1 (the
// paper's handle). Tags >= kOpReplyBase are replies; control tags drive the
// dynamic-set lifecycle (spawn participation, set release, shutdown).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "gpusim/device.hpp"
#include "gpusim/driver.hpp"
#include "util/bytes.hpp"

namespace dac::dacc {

// Request tags (compute node -> daemon).
inline constexpr int kOpMemAlloc = 10;
inline constexpr int kOpMemFree = 11;
inline constexpr int kOpMemcpyH2D = 12;   // chunked; see ChunkHeader
inline constexpr int kOpMemcpyD2H = 13;
inline constexpr int kOpKernelCreate = 14;
inline constexpr int kOpKernelSetArgs = 15;
inline constexpr int kOpKernelRun = 16;
inline constexpr int kOpDeviceInfo = 17;
// Cooperative stencil: all daemons run iterations of a 1D Jacobi step over
// their local slab, exchanging halo cells directly with their neighbour
// daemons over MPI — the paper's "kernels that communicate directly with
// each other without involving the host" (§I). The compute node dispatches
// the op to every participant, then collects one completion reply each.
inline constexpr int kOpStencilRun = 18;
// Daemon-to-daemon halo traffic on the merged communicator.
inline constexpr int kTagHalo = 95;

// Control tags (lifecycle; no device interaction).
inline constexpr int kCtlPrepSpawn = 30;   // participate in comm_spawn+merge
inline constexpr int kCtlRelease = 31;     // release the newest dynamic set
inline constexpr int kCtlShutdown = 32;    // AC_Finalize
// Like kCtlRelease, but for a set whose daemons died: survivors pop the
// generation WITHOUT the collective disconnect (a dead peer would hang it),
// and released-set members that are somehow still alive just exit.
inline constexpr int kCtlAbandon = 33;

inline constexpr int kOpReplyBase = 100;
inline constexpr int reply_tag(int op) { return kOpReplyBase + op; }

// Every reply starts with a status byte (gpusim driver status).
using Status = gpusim::driver::Status;

// H2D transfers are split into chunks. With pipelining the front-end streams
// all chunks and the daemon acknowledges only the final one; without, every
// chunk is acknowledged before the next is sent (ablation A1).
struct ChunkHeader {
  std::uint64_t dptr = 0;
  std::uint64_t offset = 0;
  bool last = true;
  bool ack_each = false;
};

inline void put_chunk_header(util::ByteWriter& w, const ChunkHeader& h) {
  w.put<std::uint64_t>(h.dptr);
  w.put<std::uint64_t>(h.offset);
  w.put_bool(h.last);
  w.put_bool(h.ack_each);
}

inline ChunkHeader get_chunk_header(util::ByteReader& r) {
  ChunkHeader h;
  h.dptr = r.get<std::uint64_t>();
  h.offset = r.get<std::uint64_t>();
  h.last = r.get_bool();
  h.ack_each = r.get_bool();
  return h;
}

struct TransferOptions {
  std::size_t chunk_bytes = 256u << 10;  // 256 KiB
  bool pipelined = true;
  // Per-reply wait bound. Zero waits forever (historical behavior); nonzero
  // turns a dead accelerator into AcError(kNodeLost) instead of a hang.
  std::chrono::milliseconds reply_timeout{0};
};

}  // namespace dac::dacc
