// The back-end accelerator daemon (paper Figure 3): receives computation
// requests over MPI and executes them on the node's (simulated) GPU through
// the driver API. Two entry points are registered with the MPI runtime:
//
//   "dac.acdaemon"          — static path: the daemon world synchronizes,
//                             rank 0 publishes the job/CN port, the world
//                             accepts the compute node's connection and
//                             merges (compute node low -> rank 0).
//   "dac.acdaemon.spawned"  — dynamic path: started via MPI_Comm_spawn by
//                             the resource-management library; merges with
//                             the parent (compute node + existing daemons).
//
// After the merge both variants enter the same serve loop, which also
// handles the lifecycle control messages that later AC_Get / AC_Free /
// AC_Finalize calls require of *existing* daemons (collective spawn
// participation, set release, shutdown).
#pragma once

#include <chrono>
#include <map>
#include <string>

#include "dacc/device_manager.hpp"
#include "minimpi/runtime.hpp"
#include "vnet/message.hpp"

namespace dac::dacc {

inline constexpr const char* kStaticDaemonExe = "dac.acdaemon";
inline constexpr const char* kSpawnedDaemonExe = "dac.acdaemon.spawned";

// Liveness reporting of the back-end daemons (fault-tolerance extension):
// each daemon heartbeats its hostname to the batch server whenever its serve
// loop has been idle for `interval`, so a dead accelerator node is detected
// even when no mom runs there. Disabled by an invalid server address, a zero
// interval, or a node id missing from `hostnames`.
struct BackendHeartbeats {
  vnet::Address server;
  std::chrono::milliseconds interval{0};
  std::map<vnet::NodeId, std::string> hostnames;  // node id -> hostname
};

// Registers both daemon executables. `devices` must outlive the runtime.
void register_daemon_executables(minimpi::Runtime& runtime,
                                 DeviceManager& devices,
                                 BackendHeartbeats heartbeats = {});

// Per-serve-loop slice of BackendHeartbeats (hostname already resolved).
struct ServeOptions {
  vnet::Address server;
  std::string hostname;
  std::chrono::milliseconds heartbeat_interval{0};
};

// The serve loop, exposed for tests: processes requests on `merged` (the
// daemon is rank `merged.rank`, the compute node rank 0) until shutdown or
// release. Used internally by both daemon entries.
void serve(minimpi::Proc& proc, minimpi::Comm merged, gpusim::Device& device,
           const ServeOptions& options = {});

}  // namespace dac::dacc
