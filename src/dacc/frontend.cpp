#include "dacc/frontend.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace dac::dacc::frontend {

namespace {

using minimpi::Comm;
using minimpi::Proc;

Status check(util::ByteReader& r, const char* op) {
  const auto s = r.get_enum<Status>();
  if (s != Status::kSuccess) {
    throw AcError(s, std::string(op) + " failed: " +
                         gpusim::driver::status_name(s));
  }
  return s;
}

// Bounded reply wait: a timeout of zero blocks forever; otherwise an
// unanswered accelerator becomes a distinct kNodeLost error.
minimpi::RecvResult recv_reply(Proc& proc, const Comm& comm, int rank,
                               int tag, Timeout timeout, const char* op) {
  if (timeout.count() <= 0) return proc.recv(comm, rank, tag);
  auto reply = proc.recv_for(comm, rank, tag, timeout);
  if (!reply) {
    throw AcError(Status::kNodeLost,
                  std::string(op) + ": accelerator not answering");
  }
  return std::move(*reply);
}

util::ByteReader roundtrip(Proc& proc, const Comm& comm, int rank, int tag,
                           util::Bytes payload, util::Bytes& storage,
                           Timeout timeout, const char* op) {
  // Client-side span of the accelerator call ("dac.acMemAlloc", ...); the
  // daemon records the matching "acd.*" span under its own serve span.
  trace::SpanScope span(std::string("dac.") + op);
  span.note("rank", std::to_string(rank));
  proc.send(comm, rank, tag, std::move(payload));
  auto reply = recv_reply(proc, comm, rank, reply_tag(tag), timeout, op);
  storage = std::move(reply.data);
  return util::ByteReader(storage);
}

}  // namespace

gpusim::DevicePtr mem_alloc(Proc& proc, const Comm& comm, int rank,
                            std::uint64_t size, Timeout timeout) {
  util::ByteWriter w;
  w.put<std::uint64_t>(size);
  util::Bytes storage;
  auto r = roundtrip(proc, comm, rank, kOpMemAlloc, std::move(w).take(),
                     storage, timeout, "acMemAlloc");
  check(r, "acMemAlloc");
  return r.get<std::uint64_t>();
}

void mem_free(Proc& proc, const Comm& comm, int rank, gpusim::DevicePtr ptr,
              Timeout timeout) {
  util::ByteWriter w;
  w.put<std::uint64_t>(ptr);
  util::Bytes storage;
  auto r = roundtrip(proc, comm, rank, kOpMemFree, std::move(w).take(),
                     storage, timeout, "acMemFree");
  check(r, "acMemFree");
}

void memcpy_h2d(Proc& proc, const Comm& comm, int rank, gpusim::DevicePtr dst,
                std::span<const std::byte> src, const TransferOptions& opts) {
  trace::SpanScope span("dac.acMemCpyH2D");
  span.note("rank", std::to_string(rank));
  span.note("bytes", std::to_string(src.size()));
  const std::size_t chunk = std::max<std::size_t>(1, opts.chunk_bytes);
  std::size_t offset = 0;
  do {
    const std::size_t n = std::min(chunk, src.size() - offset);
    const bool last = offset + n >= src.size();
    ChunkHeader hdr;
    hdr.dptr = dst;
    hdr.offset = offset;
    hdr.last = last;
    hdr.ack_each = !opts.pipelined;
    util::ByteWriter w;
    put_chunk_header(w, hdr);
    w.put<std::uint32_t>(static_cast<std::uint32_t>(n));
    w.put_raw(src.data() + offset, n);
    proc.send(comm, rank, kOpMemcpyH2D, std::move(w).take());
    if (hdr.ack_each && !last) {
      // Unpipelined: wait for the per-chunk ack before sending the next.
      auto reply = recv_reply(proc, comm, rank, reply_tag(kOpMemcpyH2D),
                              opts.reply_timeout, "acMemCpy(h2d)");
      util::ByteReader r(reply.data);
      check(r, "acMemCpy(h2d)");
    }
    offset += n;
  } while (offset < src.size());
  // Final (or only) acknowledgement.
  auto reply = recv_reply(proc, comm, rank, reply_tag(kOpMemcpyH2D),
                          opts.reply_timeout, "acMemCpy(h2d)");
  util::ByteReader r(reply.data);
  check(r, "acMemCpy(h2d)");
}

util::Bytes memcpy_d2h(Proc& proc, const Comm& comm, int rank,
                       gpusim::DevicePtr src, std::uint64_t size,
                       const TransferOptions& opts) {
  trace::SpanScope span("dac.acMemCpyD2H");
  span.note("rank", std::to_string(rank));
  span.note("bytes", std::to_string(size));
  util::ByteWriter w;
  w.put<std::uint64_t>(src);
  w.put<std::uint64_t>(size);
  w.put<std::uint64_t>(opts.chunk_bytes);
  proc.send(comm, rank, kOpMemcpyD2H, std::move(w).take());

  util::Bytes out(size);
  while (true) {
    auto reply = recv_reply(proc, comm, rank, reply_tag(kOpMemcpyD2H),
                            opts.reply_timeout, "acMemCpy(d2h)");
    util::ByteReader r(reply.data);
    check(r, "acMemCpy(d2h)");
    const auto offset = r.get<std::uint64_t>();
    const bool last = r.get_bool();
    const auto data = r.get_bytes();
    if (offset + data.size() > out.size()) {
      throw AcError(Status::kInvalidValue,
                    "acMemCpy(d2h): chunk out of bounds");
    }
    std::copy(data.begin(), data.end(),
              out.begin() + static_cast<std::ptrdiff_t>(offset));
    if (last) break;
  }
  return out;
}

KernelHandle kernel_create(Proc& proc, const Comm& comm, int rank,
                           const std::string& name, Timeout timeout) {
  util::ByteWriter w;
  w.put_string(name);
  util::Bytes storage;
  auto r = roundtrip(proc, comm, rank, kOpKernelCreate, std::move(w).take(),
                     storage, timeout, "acKernelCreate");
  check(r, "acKernelCreate");
  return r.get<std::uint32_t>();
}

void kernel_set_args(Proc& proc, const Comm& comm, int rank,
                     KernelHandle kernel, util::Bytes args, Timeout timeout) {
  util::ByteWriter w;
  w.put<std::uint32_t>(kernel);
  w.put_bytes(args);
  util::Bytes storage;
  auto r = roundtrip(proc, comm, rank, kOpKernelSetArgs, std::move(w).take(),
                     storage, timeout, "acKernelSetArgs");
  check(r, "acKernelSetArgs");
}

void kernel_run(Proc& proc, const Comm& comm, int rank, KernelHandle kernel,
                gpusim::Dim3 grid, gpusim::Dim3 block, Timeout timeout) {
  util::ByteWriter w;
  w.put<std::uint32_t>(kernel);
  w.put<std::uint32_t>(grid.x);
  w.put<std::uint32_t>(grid.y);
  w.put<std::uint32_t>(grid.z);
  w.put<std::uint32_t>(block.x);
  w.put<std::uint32_t>(block.y);
  w.put<std::uint32_t>(block.z);
  util::Bytes storage;
  auto r = roundtrip(proc, comm, rank, kOpKernelRun, std::move(w).take(),
                     storage, timeout, "acKernelRun");
  check(r, "acKernelRun");
}

void stencil_run(Proc& proc, const Comm& comm, int first,
                 const std::vector<gpusim::DevicePtr>& fields,
                 std::uint64_t n, std::uint32_t iterations,
                 double boundary_left, double boundary_right) {
  const int k = static_cast<int>(fields.size());
  trace::SpanScope span("dac.acStencilRun");
  span.note("participants", std::to_string(k));
  span.note("iterations", std::to_string(iterations));
  // Dispatch to every participant before waiting: the daemons synchronize
  // among themselves through the halo exchange.
  for (int i = 0; i < k; ++i) {
    util::ByteWriter w;
    w.put<std::uint64_t>(fields[static_cast<std::size_t>(i)]);
    w.put<std::uint64_t>(n);
    w.put<std::int32_t>(i == 0 ? -1 : first + i - 1);
    w.put<std::int32_t>(i + 1 == k ? -1 : first + i + 1);
    w.put<std::uint32_t>(iterations);
    w.put<double>(boundary_left);
    w.put<double>(boundary_right);
    proc.send(comm, first + i, kOpStencilRun, std::move(w).take());
  }
  for (int i = 0; i < k; ++i) {
    auto reply = proc.recv(comm, first + i, reply_tag(kOpStencilRun));
    util::ByteReader r(reply.data);
    check(r, "acStencilRun");
  }
}

DeviceInfo device_info(Proc& proc, const Comm& comm, int rank,
                       Timeout timeout) {
  util::Bytes storage;
  auto r = roundtrip(proc, comm, rank, kOpDeviceInfo, {}, storage, timeout,
                     "acDeviceInfo");
  check(r, "acDeviceInfo");
  DeviceInfo info;
  info.name = r.get_string();
  info.bytes_free = r.get<std::uint64_t>();
  return info;
}

}  // namespace dac::dacc::frontend
