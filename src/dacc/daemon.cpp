#include "dacc/daemon.hpp"

#include <vector>

#include "dacc/protocol.hpp"
#include "minimpi/proc.hpp"
#include "svc/wire.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "vnet/node.hpp"

namespace dac::dacc {

namespace {

const util::Logger kLog("ac_daemon");

using gpusim::Device;
using gpusim::DevicePtr;
using minimpi::Comm;
using minimpi::Proc;
namespace driver = gpusim::driver;

util::Bytes status_reply(Status s) {
  util::ByteWriter w;
  w.put_enum(s);
  return std::move(w).take();
}

const char* op_name(int tag) {
  switch (tag) {
    case kOpMemAlloc: return "acd.mem_alloc";
    case kOpMemFree: return "acd.mem_free";
    case kOpMemcpyH2D: return "acd.memcpy_h2d";
    case kOpMemcpyD2H: return "acd.memcpy_d2h";
    case kOpKernelCreate: return "acd.kernel_create";
    case kOpKernelSetArgs: return "acd.kernel_set_args";
    case kOpKernelRun: return "acd.kernel_run";
    case kOpStencilRun: return "acd.stencil_run";
    case kOpDeviceInfo: return "acd.device_info";
  }
  return "acd.op";
}

// Daemon-side kernel objects: acKernelCreate returns a handle, SetArgs
// stages arguments, Run launches (paper Listing 1).
struct KernelSlot {
  std::string name;
  util::Bytes args;
};

struct ServeState {
  Comm merged;
  std::map<std::uint32_t, KernelSlot> kernels;
  std::uint32_t next_kernel = 1;
  // One entry per dynamic generation this daemon participated in as a
  // parent: the spawn intercomm and the merged comm it superseded.
  std::vector<std::pair<Comm, Comm>> generations;
};

void handle_op(Proc& proc, ServeState& st, Device& device, int tag,
               const util::Bytes& payload) {
  // One span per backend operation, nested under the daemon's acd.serve
  // span (the thread's ambient context inside the serve loop).
  trace::SpanScope span(op_name(tag));
  util::ByteReader r(payload);
  switch (tag) {
    case kOpMemAlloc: {
      const auto size = r.get<std::uint64_t>();
      DevicePtr ptr = gpusim::kNullPtr;
      const auto s = driver::mem_alloc(device, size, &ptr);
      util::ByteWriter w;
      w.put_enum(s);
      w.put<std::uint64_t>(ptr);
      proc.send(st.merged, 0, reply_tag(tag), std::move(w).take());
      return;
    }
    case kOpMemFree: {
      const auto ptr = r.get<std::uint64_t>();
      proc.send(st.merged, 0, reply_tag(tag),
                status_reply(driver::mem_free(device, ptr)));
      return;
    }
    case kOpMemcpyH2D: {
      const auto hdr = get_chunk_header(r);
      const auto data = r.get_bytes();
      const auto s = driver::memcpy_h2d(device, hdr.dptr + hdr.offset,
                                        data.data(), data.size());
      // Pipelined transfers acknowledge only the final chunk.
      if (hdr.ack_each || hdr.last) {
        proc.send(st.merged, 0, reply_tag(tag), status_reply(s));
      }
      return;
    }
    case kOpMemcpyD2H: {
      // Streamed back in chunks so large device-to-host transfers pipeline
      // through the interconnect like the H2D path.
      const auto ptr = r.get<std::uint64_t>();
      const auto size = r.get<std::uint64_t>();
      const auto chunk = std::max<std::uint64_t>(1, r.get<std::uint64_t>());
      std::uint64_t offset = 0;
      do {
        const auto n = std::min(chunk, size - offset);
        util::Bytes data(n);
        const auto s =
            driver::memcpy_d2h(device, data.data(), ptr + offset, n);
        const bool last = s != Status::kSuccess || offset + n >= size;
        util::ByteWriter w;
        w.put_enum(s);
        w.put<std::uint64_t>(offset);
        w.put_bool(last);
        w.put_bytes(data);
        proc.send(st.merged, 0, reply_tag(tag), std::move(w).take());
        if (last) return;
        offset += n;
      } while (offset < size);
      return;
    }
    case kOpKernelCreate: {
      const auto name = r.get_string();
      util::ByteWriter w;
      if (!device.has_kernel(name)) {
        w.put_enum(Status::kNotFound);
        w.put<std::uint32_t>(0);
      } else {
        const auto handle = st.next_kernel++;
        st.kernels[handle] = KernelSlot{name, {}};
        w.put_enum(Status::kSuccess);
        w.put<std::uint32_t>(handle);
      }
      proc.send(st.merged, 0, reply_tag(tag), std::move(w).take());
      return;
    }
    case kOpKernelSetArgs: {
      const auto handle = r.get<std::uint32_t>();
      auto it = st.kernels.find(handle);
      if (it == st.kernels.end()) {
        proc.send(st.merged, 0, reply_tag(tag),
                  status_reply(Status::kInvalidValue));
        return;
      }
      it->second.args = r.get_bytes();
      proc.send(st.merged, 0, reply_tag(tag),
                status_reply(Status::kSuccess));
      return;
    }
    case kOpKernelRun: {
      const auto handle = r.get<std::uint32_t>();
      gpusim::Dim3 grid{r.get<std::uint32_t>(), r.get<std::uint32_t>(),
                        r.get<std::uint32_t>()};
      gpusim::Dim3 block{r.get<std::uint32_t>(), r.get<std::uint32_t>(),
                         r.get<std::uint32_t>()};
      auto it = st.kernels.find(handle);
      if (it == st.kernels.end()) {
        proc.send(st.merged, 0, reply_tag(tag),
                  status_reply(Status::kInvalidValue));
        return;
      }
      const auto s = driver::launch_kernel(device, it->second.name, grid,
                                           block, it->second.args);
      proc.send(st.merged, 0, reply_tag(tag), status_reply(s));
      return;
    }
    case kOpStencilRun: {
      // Cooperative Jacobi iterations: halo exchange with neighbour daemons
      // directly over the merged communicator, then a local smoothing step.
      // Neighbour ranks of -1 mean a fixed boundary value instead.
      const auto field = r.get<std::uint64_t>();
      const auto n = r.get<std::uint64_t>();
      const auto left = r.get<std::int32_t>();
      const auto right = r.get<std::int32_t>();
      const auto iters = r.get<std::uint32_t>();
      const auto boundary_left = r.get<double>();
      const auto boundary_right = r.get<double>();

      Status status = Status::kSuccess;
      try {
        auto* u = reinterpret_cast<double*>(
            device.at(field, n * sizeof(double)));
        std::vector<double> next(n);
        for (std::uint32_t it = 0; it < iters; ++it) {
          // Exchange edge cells with the neighbours. Sends are non-blocking
          // in this MPI, so the symmetric exchange cannot deadlock.
          double halo_left = boundary_left;
          double halo_right = boundary_right;
          if (left >= 0) {
            util::ByteWriter w;
            w.put<double>(u[0]);
            proc.send(st.merged, left, kTagHalo, std::move(w).take());
          }
          if (right >= 0) {
            util::ByteWriter w;
            w.put<double>(u[n - 1]);
            proc.send(st.merged, right, kTagHalo, std::move(w).take());
          }
          if (left >= 0) {
            auto msg = proc.recv(st.merged, left, kTagHalo);
            util::ByteReader hr(msg.data);
            halo_left = hr.get<double>();
          }
          if (right >= 0) {
            auto msg = proc.recv(st.merged, right, kTagHalo);
            util::ByteReader hr(msg.data);
            halo_right = hr.get<double>();
          }
          for (std::uint64_t i = 0; i < n; ++i) {
            const double l = i == 0 ? halo_left : u[i - 1];
            const double rr = i + 1 == n ? halo_right : u[i + 1];
            next[i] = 0.5 * (l + rr);
          }
          std::copy(next.begin(), next.end(), u);
        }
      } catch (const gpusim::DeviceError&) {
        status = Status::kInvalidValue;
      }
      proc.send(st.merged, 0, reply_tag(tag), status_reply(status));
      return;
    }
    case kOpDeviceInfo: {
      util::ByteWriter w;
      w.put_enum(Status::kSuccess);
      w.put_string(device.config().name);
      w.put<std::uint64_t>(device.bytes_free());
      proc.send(st.merged, 0, reply_tag(tag), std::move(w).take());
      return;
    }
    default:
      kLog.warn("daemon rank {}: unknown op tag {}", st.merged.rank, tag);
  }
}

}  // namespace

void serve(Proc& proc, Comm merged, gpusim::Device& device,
           const ServeOptions& options) {
  // The communicator this daemon was attached through: its disconnect target
  // when the daemon's own set is released.
  const Comm origin =
      proc.parent_comm().has_value() ? *proc.parent_comm() : Comm{};

  ServeState st;
  st.merged = std::move(merged);

  // Backend heartbeats: sent whenever the serve loop has been idle for one
  // interval. A daemon busy with a long kernel beats less often — that is
  // what the server's generous stale factor absorbs.
  const bool heartbeats = options.server.valid() &&
                          options.heartbeat_interval.count() > 0 &&
                          !options.hostname.empty();
  std::unique_ptr<vnet::Endpoint> hb_ep;
  if (heartbeats) {
    hb_ep = proc.process().node().open_endpoint();
    proc.process().adopt_mailbox(hb_ep->mailbox_weak());
  }
  const auto send_heartbeat = [&] {
    // Detach from the job's trace: heartbeats are periodic background
    // traffic whose count is timing-dependent — letting them join would
    // make golden traces nondeterministic.
    trace::ScopedContext detached{trace::Context{}};
    util::ByteWriter w;
    w.put_string(options.hostname);
    svc::notify(*hb_ep, options.server, torque::MsgType::kBackendHeartbeat,
                std::move(w).take());
  };
  const auto next_msg = [&]() -> minimpi::RecvResult {
    if (!heartbeats) return proc.recv(st.merged, 0, minimpi::kAnyTag);
    while (true) {
      auto msg = proc.recv_for(st.merged, 0, minimpi::kAnyTag,
                               options.heartbeat_interval);
      if (msg) return std::move(*msg);
      send_heartbeat();
    }
  };
  if (heartbeats) send_heartbeat();

  while (true) {
    auto msg = next_msg();
    switch (msg.tag) {
      case kCtlPrepSpawn: {
        // The compute node is about to MPI_Comm_spawn a new daemon set; all
        // existing daemons participate collectively and re-merge.
        util::ByteReader r(msg.data);
        const auto exe = r.get_string();
        Comm inter = proc.comm_spawn(st.merged, 0, exe, {}, {});
        Comm next = proc.intercomm_merge(inter, /*high=*/false);
        st.generations.emplace_back(std::move(inter), st.merged);
        st.merged = std::move(next);
        break;
      }
      case kCtlRelease: {
        util::ByteReader r(msg.data);
        const auto boundary = r.get<std::int32_t>();
        if (st.merged.rank >= boundary) {
          // This daemon belongs to the released set: disconnect from the
          // parent side and exit; the mom's DISJOIN will reap the process.
          if (origin.context != minimpi::kControlContext) {
            proc.disconnect(origin);
          }
          // The accelerator goes back to the pool: wipe its allocations so
          // the next holder sees a clean device (elastic shrink hands the
          // node straight to another job).
          device.mem_reset();
          kLog.debug("daemon rank {} released", st.merged.rank);
          return;
        }
        // Survivor: synchronize the release and fall back to the previous
        // communicator (handles of surviving accelerators keep their ranks).
        if (st.generations.empty()) {
          kLog.warn("daemon rank {}: release with no generation to pop",
                    st.merged.rank);
          break;
        }
        auto [inter, prev] = std::move(st.generations.back());
        st.generations.pop_back();
        proc.disconnect(inter);
        st.merged = std::move(prev);
        break;
      }
      case kCtlAbandon: {
        // Release of a set whose daemons died. No collective disconnect
        // anywhere — a dead peer would hang it; the vnet reaps the dead
        // processes and the fabric drops traffic to them.
        util::ByteReader r(msg.data);
        const auto boundary = r.get<std::int32_t>();
        if (st.merged.rank >= boundary) {
          device.mem_reset();
          kLog.debug("daemon rank {} abandoned", st.merged.rank);
          return;
        }
        if (st.generations.empty()) {
          kLog.warn("daemon rank {}: abandon with no generation to pop",
                    st.merged.rank);
          break;
        }
        auto [inter, prev] = std::move(st.generations.back());
        st.generations.pop_back();
        st.merged = std::move(prev);
        break;
      }
      case kCtlShutdown: {
        proc.barrier(st.merged);
        kLog.debug("daemon rank {} shut down", st.merged.rank);
        return;
      }
      default:
        handle_op(proc, st, device, msg.tag, msg.data);
    }
  }
}

void register_daemon_executables(minimpi::Runtime& runtime,
                                 DeviceManager& devices,
                                 BackendHeartbeats heartbeats) {
  const auto options_for = [heartbeats](vnet::NodeId node) {
    ServeOptions options;
    if (auto it = heartbeats.hostnames.find(node);
        it != heartbeats.hostnames.end()) {
      options.server = heartbeats.server;
      options.hostname = it->second;
      options.heartbeat_interval = heartbeats.interval;
    }
    return options;
  };

  // Both executables read an optional trailing {trace-id, parent-span} pair
  // from their launch args (mom / rmlib append it) so the daemon's spans
  // join the trace of whatever launched it.
  const auto read_trace_ctx = [](util::ByteReader& r) {
    trace::Context ctx;
    if (r.remaining() >= 2 * sizeof(std::uint64_t)) {
      ctx.trace = r.get<std::uint64_t>();
      ctx.span = r.get<std::uint64_t>();
    }
    return ctx;
  };

  runtime.register_executable(
      kStaticDaemonExe,
      [&devices, options_for, read_trace_ctx](Proc& proc,
                                              const util::Bytes& args) {
        util::ByteReader r(args);
        const auto port = r.get_string();
        std::uint64_t job = 0;
        if (r.remaining() >= sizeof(std::uint64_t)) {
          job = r.get<std::uint64_t>();
        }
        trace::set_thread_actor("acd@" + proc.process().node().hostname());
        trace::ScopedContext trace_parent(read_trace_ctx(r));
        trace::SpanScope span("acd.serve");
        if (job != 0) span.note("job", std::to_string(job));
        auto& device = devices.device_for(proc.process().node().id());
        // All daemons of the set must be up before the port appears — the
        // compute node's AC_Init waits exactly for this (Figure 7(a)).
        proc.barrier(proc.world());
        if (proc.rank() == 0) proc.publish_port(port);
        Comm inter = proc.comm_accept(port, proc.world(), 0);
        Comm merged = proc.intercomm_merge(inter, /*high=*/true);
        serve(proc, std::move(merged), device,
              options_for(proc.process().node().id()));
      });

  runtime.register_executable(
      kSpawnedDaemonExe,
      [&devices, options_for, read_trace_ctx](Proc& proc,
                                              const util::Bytes& args) {
        util::ByteReader r(args);
        trace::set_thread_actor("acd@" + proc.process().node().hostname());
        trace::ScopedContext trace_parent(read_trace_ctx(r));
        trace::SpanScope span("acd.serve");
        auto& device = devices.device_for(proc.process().node().id());
        Comm merged = proc.intercomm_merge(*proc.parent_comm(),
                                           /*high=*/true);
        serve(proc, std::move(merged), device,
              options_for(proc.process().node().id()));
      });
}

}  // namespace dac::dacc
