// Edge-triggered wakeup coalescing. A producer that notifies a consumer on
// every state change (the pbs_server waking the scheduler on every submit,
// completion, and release) floods the consumer's mailbox under load — 10k
// submissions used to mean 10k kSchedWake messages for cycles that each
// consume the whole backlog anyway.
//
// WakeGate collapses the storm to at most one in-flight wake: try_arm()
// succeeds only on the not-armed -> armed edge (the caller then sends the
// notification); the consumer disarm()s at the top of its state fetch, so
// any change that lands after the fetch began re-arms and re-notifies. No
// wake is ever lost, and a burst of N changes costs one message.
#pragma once

#include <atomic>

namespace dac::svc {

class WakeGate {
 public:
  // True exactly when this caller took the not-armed -> armed edge and must
  // send the wake notification.
  [[nodiscard]] bool try_arm() {
    return !armed_.exchange(true, std::memory_order_acq_rel);
  }

  // Called by the consumer before it reads the producer's state: changes
  // observed by the read are covered by this fetch, later ones re-arm.
  void disarm() { armed_.store(false, std::memory_order_release); }

  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> armed_{false};
};

}  // namespace dac::svc
