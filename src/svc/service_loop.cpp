#include "svc/service_loop.hpp"
#include "simtime/clock.hpp"

#include <algorithm>

#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace dac::svc {

namespace {
const util::Logger kLog("svc.loop");
}  // namespace

// ---- Responder ------------------------------------------------------------

bool Responder::completed() const {
  if (!st_) return true;
  ScopedLock lock(st_->mu);
  return st_->done;
}

void Responder::ok(util::Bytes body) const {
  if (!st_) return;
  const auto payload = make_ok_reply(st_->id, body);
  vnet::Address to;
  {
    ScopedLock lock(st_->mu);
    if (st_->done) return;
    st_->done = true;
    to = st_->to;
  }
  st_->loop->finish_reply(*st_, payload, to, /*error=*/false);
}

void Responder::error(ReplyCode code, const std::string& message) const {
  if (!st_) return;
  const auto payload = make_error_reply(st_->id, code, message);
  vnet::Address to;
  {
    ScopedLock lock(st_->mu);
    if (st_->done) return;
    st_->done = true;
    to = st_->to;
  }
  st_->loop->finish_reply(*st_, payload, to, /*error=*/true);
}

// ---- ServiceLoop ----------------------------------------------------------

ServiceLoop::ServiceLoop(vnet::Endpoint& ep, ServiceConfig config,
                         MetricsRegistry* metrics)
    : ep_(ep), cfg_(std::move(config)), metrics_(metrics) {}

ServiceLoop::~ServiceLoop() = default;

void ServiceLoop::on(MsgType type, ExecClass klass, Handler handler) {
  handlers_[as_u32(type)] = Entry{klass, std::move(handler)};
}

void ServiceLoop::add_tick(std::chrono::milliseconds interval, TickFn fn) {
  ticks_.push_back(Tick{interval, std::move(fn), {}});
}

void ServiceLoop::run() {
  const auto now = simtime::now();
  for (auto& t : ticks_) t.last = now;
  trace::set_thread_actor(cfg_.name);

  workers_.reserve(static_cast<std::size_t>(std::max(0, cfg_.read_workers)));
  for (int i = 0; i < cfg_.read_workers; ++i) {
    simtime::Clock::instance().actor_started();
    workers_.emplace_back([this] {
      simtime::AdoptScope actor;
      trace::set_thread_actor(cfg_.name);
      while (auto work = read_queue_.pop()) {
        try {
          execute(std::move(*work));
        } catch (const util::StoppedError&) {
          break;
        }
      }
    });
  }

  const bool want_conc =
      std::any_of(handlers_.begin(), handlers_.end(), [](const auto& h) {
        return h.second.klass == ExecClass::kConcurrent;
      });
  if (want_conc) {
    simtime::Clock::instance().actor_started();
    conc_worker_ = std::thread([this] {
      simtime::AdoptScope actor;
      trace::set_thread_actor(cfg_.name);
      while (auto work = conc_queue_.pop()) {
        try {
          execute(std::move(*work));
        } catch (const util::StoppedError&) {
          break;
        }
      }
    });
  }

  const auto drain = [this] {
    read_queue_.close();
    conc_queue_.close();
    simtime::ExternalWaitScope quiescent;  // native joins, clock-invisible
    for (auto& w : workers_) w.join();
    workers_.clear();
    if (conc_worker_.joinable()) conc_worker_.join();
  };

  try {
    while (true) {
      auto timeout = next_tick_timeout();
      auto msg = timeout ? ep_.recv_for(*timeout) : ep_.recv();
      if (msg) {
        serve(std::move(*msg));
      } else if (ep_.closed()) {
        break;
      }
      fire_due_ticks();
    }
  } catch (...) {
    drain();
    throw;
  }
  drain();
}

void ServiceLoop::serve(vnet::Message msg) {
  if (msg.type == as_u32(MsgType::kReply)) return;  // stray reply; drop
  Request req;
  try {
    req = parse_request(msg);
  } catch (const util::DecodeError& e) {
    kLog.warn("{}: malformed request from {}: {}", cfg_.name, msg.from.str(),
              e.what());
    return;
  }

  {
    ScopedLock lock(dedup_mu_);
    if (auto it = completed_.find(req.id); it != completed_.end()) {
      // Retransmit of an answered request: resend the cached reply. Count
      // before sending so the counter is visible by the time the caller can
      // observe the duplicate reply.
      deduped_.fetch_add(1, std::memory_order_relaxed);
      ep_.send(req.from, as_u32(MsgType::kReply), it->second);
      kLog.debug("{}: resent cached reply for req {}", cfg_.name, req.id);
      return;
    }
    if (auto it = pending_.find(req.id); it != pending_.end()) {
      if (auto st = it->second.lock()) {
        // Retransmit of an in-flight request: just retarget the reply
        // (counted first, same ordering rule as above).
        deduped_.fetch_add(1, std::memory_order_relaxed);
        ScopedLock slock(st->mu);
        st->to = req.from;
        return;
      }
      pending_.erase(it);
    }
  }

  const auto it = handlers_.find(as_u32(req.type));
  if (it == handlers_.end()) {
    kLog.warn("{}: unknown request type {} from {}", cfg_.name,
              msg_type_name(as_u32(req.type)), req.from.str());
    reply_error_to(ep_, req.from, req.id, ReplyCode::kBadRequest,
                   cfg_.name + ": unknown request type " +
                       msg_type_name(as_u32(req.type)));
    return;
  }

  Work work;
  work.entry = &it->second;
  work.st = std::make_shared<detail::ResponderState>();
  work.st->loop = this;
  work.st->id = req.id;
  work.st->type = as_u32(req.type);
  work.st->start = simtime::now();
  work.st->to = req.from;
  work.req = std::move(req);
  {
    // Registered before dispatch so a retransmit racing with a pooled
    // execution is recognized as a duplicate.
    ScopedLock lock(dedup_mu_);
    pending_[work.st->id] = work.st;
  }

  if (work.entry->klass == ExecClass::kConcurrent && conc_worker_.joinable()) {
    if (!conc_queue_.push(std::move(work))) {
      DAC_CHECK(false, "{}: concurrent-lane queue closed while serving",
                cfg_.name);
    }
  } else if (work.entry->klass == ExecClass::kReadOnly && !workers_.empty()) {
    if (!read_queue_.push(std::move(work))) {
      // The pool queue only closes after run() exits, so this cannot happen
      // while serving; if it ever does, the request was dropped silently.
      DAC_CHECK(false, "{}: read-queue closed while serving", cfg_.name);
    }
  } else {
    execute(std::move(work));
  }
}

void ServiceLoop::execute(Work work) {
  if (cfg_.service_cost.count() > 0) {
    simtime::sleep_for(cfg_.service_cost);
  }
  Responder resp(work.st);
  // Handler-side span, child of the caller's rpc.* span via the wire
  // context. It becomes the thread's current context, so everything the
  // handler sends (notifies, nested calls) joins the same trace.
  trace::SpanScope span("serve." + msg_type_name(work.st->type),
                        work.req.ctx);
  try {
    work.entry->fn(work.req, resp);
  } catch (const util::StoppedError&) {
    throw;  // cooperative kill: unwind the loop / worker
  } catch (const std::exception& e) {
    kLog.warn("{}: handler for {} failed: {}", cfg_.name,
              msg_type_name(work.st->type), e.what());
    if (!resp.completed()) resp.error(ReplyCode::kError, e.what());
  }
  if (!resp.completed() && work.st.use_count() <= 2) {
    // Handler returned without replying and without keeping the Responder:
    // a notification-style request. Record it and drop the pending entry.
    if (metrics_) {
      metrics_->record(work.st->type,
                       std::chrono::duration<double, std::milli>(
                           simtime::now() - work.st->start)
                           .count(),
                       false);
    }
    forget_pending(work.st->id);
  }
}

void ServiceLoop::finish_reply(detail::ResponderState& st,
                               const util::Bytes& payload,
                               const vnet::Address& to, bool error) {
  {
    ScopedLock lock(dedup_mu_);
    if (cfg_.dedup_window > 0) {
      completed_[st.id] = payload;
      completed_order_.push_back(st.id);
      while (completed_order_.size() > cfg_.dedup_window) {
        completed_.erase(completed_order_.front());
        completed_order_.pop_front();
      }
    }
    pending_.erase(st.id);
  }
  // Record before sending: a caller that already has the reply must find
  // its call in any later metrics snapshot.
  if (metrics_) {
    metrics_->record(st.type,
                     std::chrono::duration<double, std::milli>(
                         simtime::now() - st.start)
                         .count(),
                     error);
  }
  ep_.send(to, as_u32(MsgType::kReply), payload);
}

void ServiceLoop::forget_pending(std::uint64_t id) {
  ScopedLock lock(dedup_mu_);
  pending_.erase(id);
}

std::optional<std::chrono::milliseconds> ServiceLoop::next_tick_timeout() {
  if (ticks_.empty()) return std::nullopt;
  const auto now = simtime::now();
  auto soonest = std::chrono::milliseconds::max();
  for (const auto& t : ticks_) {
    const auto due = t.last + t.interval;
    const auto wait = std::chrono::ceil<std::chrono::milliseconds>(due - now);
    soonest = std::min(soonest, wait);
  }
  return std::max(soonest, std::chrono::milliseconds(1));
}

void ServiceLoop::fire_due_ticks() {
  if (ticks_.empty()) return;
  const auto now = simtime::now();
  for (auto& t : ticks_) {
    if (now - t.last >= t.interval) {
      t.last = now;
      t.fn();
    }
  }
}

}  // namespace dac::svc
