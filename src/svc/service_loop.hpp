// Server side of the service runtime. A ServiceLoop drains one endpoint and
// dispatches each request through a typed table (MsgType -> handler). Every
// handler is registered under an execution class:
//
//  - kMutating requests run inline on the loop thread — one serialized lane,
//    exactly the paper's single-threaded pbs_server (Figures 8/9).
//  - kReadOnly requests run on an optional worker pool (`read_workers`), so
//    qstat/pbsnodes/heartbeats stop queueing behind scheduling work. With
//    read_workers = 0 (the default) they stay on the serialized lane and the
//    daemon behaves exactly like the seed implementation.
//  - kConcurrent requests run on their own dedicated lane: one extra thread,
//    serialized among themselves, spawned iff any handler registered for it.
//    This is for handlers that BLOCK in outbound calls (a mother superior's
//    JOIN/DYNJOIN/DISJOIN fan-outs): if they ran on the loop thread, the
//    endpoint would stop being drained while they wait, so two daemons
//    calling each other would deadlock until the RPC deadline. The loop
//    thread keeps dispatching (and serving the fast kMutating handlers)
//    while the kConcurrent lane waits; handlers on the two lanes synchronize
//    shared state themselves.
//
// Handlers reply through a Responder, which may outlive the handler call:
// storing the Responder and completing it later is the supported way to defer
// a reply (the dyn-wait replies of pbs_dynget). Each request is answered at
// most once.
//
// The loop remembers the last `dedup_window` completed request-ids together
// with their reply payloads: a retransmitted request is answered from the
// cache instead of being executed twice, which is what makes client-side
// retransmission (svc::Caller) safe for non-idempotent operations. A
// retransmit of a still-pending request just retargets the eventual reply.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "svc/metrics.hpp"
#include "svc/wire.hpp"
#include "util/queue.hpp"
#include "util/sync.hpp"

namespace dac::svc {

enum class ExecClass {
  kMutating,    // serialized lane (the loop thread)
  kReadOnly,    // worker pool when read_workers > 0
  kConcurrent,  // dedicated serialized lane; may block in outbound calls
};

struct ServiceConfig {
  std::string name = "svc";
  // Simulated per-request service cost charged before each handler runs (the
  // paper's server_service_cost). Charged on the executing thread, so pooled
  // read-only requests pay it concurrently.
  std::chrono::microseconds service_cost{0};
  int read_workers = 0;
  std::size_t dedup_window = 256;
};

class ServiceLoop;

namespace detail {
struct ResponderState;
}

// Reply handle for one request. Copyable; completing twice is a no-op.
class Responder {
 public:
  Responder() = default;

  void ok(util::Bytes body = {}) const;
  void error(ReplyCode code, const std::string& message) const;

  [[nodiscard]] bool valid() const { return static_cast<bool>(st_); }
  [[nodiscard]] bool completed() const;

 private:
  friend class ServiceLoop;
  explicit Responder(std::shared_ptr<detail::ResponderState> st)
      : st_(std::move(st)) {}
  std::shared_ptr<detail::ResponderState> st_;
};

namespace detail {
struct ResponderState {
  ServiceLoop* loop = nullptr;
  std::uint64_t id = 0;
  std::uint32_t type = 0;
  std::chrono::steady_clock::time_point start;
  Mutex mu{"responder"};
  vnet::Address to DAC_GUARDED_BY(mu);  // retargeted on duplicate arrival
  bool done DAC_GUARDED_BY(mu) = false;
};
}  // namespace detail

class ServiceLoop {
 public:
  using Handler = std::function<void(const Request&, Responder&)>;
  using TickFn = std::function<void()>;

  ServiceLoop(vnet::Endpoint& ep, ServiceConfig config,
              MetricsRegistry* metrics = nullptr);
  ~ServiceLoop();

  ServiceLoop(const ServiceLoop&) = delete;
  ServiceLoop& operator=(const ServiceLoop&) = delete;

  // Registration happens before run(); the dispatch table is immutable after.
  void on(MsgType type, ExecClass klass, Handler handler);

  // Periodic work on the loop thread (heartbeats, walltime enforcement).
  // Ticks fire between requests and while idle, never concurrently with a
  // mutating handler.
  void add_tick(std::chrono::milliseconds interval, TickFn fn);

  // Serves until the endpoint is closed and drained. Workers are joined
  // before run() returns.
  void run();

  [[nodiscard]] vnet::Endpoint& endpoint() const { return ep_; }
  // Requests answered from the dedup cache or retargeted while pending.
  [[nodiscard]] std::uint64_t deduped() const {
    return deduped_.load(std::memory_order_relaxed);
  }

 private:
  friend class Responder;

  struct Entry {
    ExecClass klass{};
    Handler fn;
  };
  struct Work {
    Request req;
    const Entry* entry = nullptr;
    std::shared_ptr<detail::ResponderState> st;
  };
  struct Tick {
    std::chrono::milliseconds interval{};
    TickFn fn;
    std::chrono::steady_clock::time_point last;
  };

  void serve(vnet::Message msg);
  void execute(Work work);
  // Sends the reply for `st` and records it in the dedup cache. Called from
  // Responder; `payload` is a full reply envelope.
  void finish_reply(detail::ResponderState& st, const util::Bytes& payload,
                    const vnet::Address& to, bool error);
  void forget_pending(std::uint64_t id);
  std::optional<std::chrono::milliseconds> next_tick_timeout();
  void fire_due_ticks();

  vnet::Endpoint& ep_;
  ServiceConfig cfg_;
  MetricsRegistry* metrics_ = nullptr;

  std::map<std::uint32_t, Entry> handlers_;
  std::vector<Tick> ticks_;

  Mutex dedup_mu_{"svc.dedup"};
  std::unordered_map<std::uint64_t, util::Bytes> completed_
      DAC_GUARDED_BY(dedup_mu_);
  std::deque<std::uint64_t> completed_order_ DAC_GUARDED_BY(dedup_mu_);
  std::unordered_map<std::uint64_t, std::weak_ptr<detail::ResponderState>>
      pending_ DAC_GUARDED_BY(dedup_mu_);
  std::atomic<std::uint64_t> deduped_{0};

  util::BlockingQueue<Work> read_queue_;
  std::vector<std::thread> workers_;
  // kConcurrent lane: one thread, created in run() iff any handler was
  // registered under kConcurrent. Serialized among its own requests.
  util::BlockingQueue<Work> conc_queue_;
  std::thread conc_worker_;
};

}  // namespace dac::svc
