// Cluster-wide service-runtime knobs, carried inside DacClusterConfig. The
// defaults reproduce the seed behavior exactly: a fully serialized server
// lane (read_workers = 0) and clients that retransmit only on silence.
#pragma once

#include <cstddef>

#include "svc/caller.hpp"

namespace dac::svc {

struct ServiceTuning {
  // Worker threads for read-only requests (qstat, pbsnodes, heartbeats) on
  // the pbs_server. 0 keeps every request on the serialized mutating lane,
  // which is the paper's Figure 8/9 configuration.
  int server_read_workers = 0;
  // Completed request-ids each daemon remembers for duplicate suppression.
  std::size_t dedup_window = 256;
  // Retry policy for clients (IFL, scheduler, rmlib sessions, ARM clients).
  RetryPolicy retry;
};

}  // namespace dac::svc
