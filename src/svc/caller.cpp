#include "svc/caller.hpp"
#include "simtime/clock.hpp"

#include <algorithm>

#include "svc/backoff.hpp"
#include "trace/trace.hpp"
#include "util/logging.hpp"

namespace dac::svc {

namespace {

const util::Logger kLog("svc.caller");

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             simtime::now() - start)
      .count();
}

}  // namespace

Caller::Caller(vnet::Node& node, vnet::Address to, RetryPolicy policy,
               MetricsRegistry* metrics)
    : node_(&node), to_(to), policy_(policy), metrics_(metrics) {}

Caller::Caller(vnet::Process& proc, vnet::Address to, RetryPolicy policy,
               MetricsRegistry* metrics)
    : proc_(&proc), to_(to), policy_(policy), metrics_(metrics) {}

std::unique_ptr<vnet::Endpoint> Caller::open_endpoint() const {
  return proc_ ? proc_->open_endpoint() : node_->open_endpoint();
}

util::Bytes Caller::call(MsgType type, util::Bytes body,
                         CallOptions opts) const {
  const auto id = next_request_id();
  // Client-side span for the whole call (all retransmits). Its context is
  // stamped into the envelope, so the callee's handler span becomes a child
  // of this one; with no recorder installed this is inert and the call
  // propagates the ambient context unchanged.
  trace::SpanScope span("rpc." + msg_type_name(as_u32(type)));
  const auto payload = envelope(id, span.context(), body);
  auto ep = open_endpoint();

  const auto start = simtime::now();
  const auto deadline = start + opts.deadline;
  const int attempts = opts.idempotent ? std::max(1, policy_.max_attempts) : 1;
  Backoff backoff(
      {.initial = std::chrono::duration_cast<std::chrono::microseconds>(
           policy_.initial_backoff),
       .multiplier = policy_.multiplier,
       .cap = std::chrono::duration_cast<std::chrono::microseconds>(
           policy_.max_backoff),
       .jitter = policy_.jitter},
      id);

  int sent = 0;
  while (true) {
    ep->send(to_, as_u32(type), payload);
    ++sent;
    if (sent > 1) {
      kLog.debug("retransmit #{} of {} req {} to {}", sent - 1,
                 msg_type_name(as_u32(type)), id, to_.str());
    }
    // Wait for the reply until either the overall deadline or the next
    // retransmission slot, whichever comes first.
    const auto resend_at =
        (sent < attempts)
            ? std::min(deadline,
                       simtime::now() + backoff.next())
            : deadline;
    while (true) {
      const auto now = simtime::now();
      if (now >= resend_at) break;
      const auto remaining =
          std::chrono::ceil<std::chrono::milliseconds>(resend_at - now);
      auto msg = ep->recv_for(std::max(remaining, std::chrono::milliseconds(1)));
      if (!msg) {
        if (ep->closed()) throw util::StoppedError();
        continue;
      }
      try {
        if (auto reply = parse_reply(*msg, id)) {
          if (metrics_) metrics_->record(as_u32(type), ms_since(start), false);
          return std::move(*reply);
        }
      } catch (const CallError&) {
        span.note("error", "call");
        if (metrics_) metrics_->record(as_u32(type), ms_since(start), true);
        throw;
      }
    }
    if (simtime::now() >= deadline) {
      span.note("error", "deadline");
      if (metrics_) metrics_->record(as_u32(type), ms_since(start), true);
      throw DeadlineError("svc: deadline exceeded calling " +
                          msg_type_name(as_u32(type)) + " on " + to_.str() +
                          " (req " + std::to_string(id) + ", " +
                          std::to_string(sent) + " attempt(s))");
    }
  }
}

}  // namespace dac::svc
