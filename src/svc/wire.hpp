// Wire envelope shared by every daemon conversation in the cluster —
// batch-system RPCs, scheduler queries, and the standalone ARM all speak it.
//
// Request payload:  [u64 request-id][u64 trace-id][u64 parent-span][body...]
//                                                      Message.type = MsgType
// Reply payload:    [u64 request-id][u8 code][body]    Message.type = kReply
//
// Request-ids come from one process-wide counter, so an id uniquely names a
// logical request across the whole virtual cluster. Retransmissions reuse the
// id, which is what makes server-side duplicate suppression possible.
//
// The trace fields carry the sender's trace::Context (src/trace): envelope()
// stamps the calling thread's current context, and the service loop installs
// it around handler execution, so one trace id follows a request across every
// daemon hop. Both fields are 0 for untraced traffic; replies carry no trace
// fields because the caller still holds its own context.
//
// This header reuses torque's MsgType/ReplyCode enums (header-only; svc does
// not link against the torque library) so the svc layer and the legacy
// torque::rpc shims agree byte-for-byte on the wire format.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "torque/protocol.hpp"
#include "trace/trace.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "vnet/node.hpp"

namespace dac::svc {

using torque::as_u32;
using torque::MsgType;
using torque::ReplyCode;

// Thrown when the callee replied with a non-ok code.
class CallError : public util::ProtocolError {
 public:
  CallError(ReplyCode code, const std::string& what)
      : util::ProtocolError(what), code_(code) {}
  [[nodiscard]] ReplyCode code() const { return code_; }

 private:
  ReplyCode code_;
};

// Thrown when a call exhausted its deadline (including all retries) without
// any reply. Deliberately NOT a CallError: a deadline means the callee never
// answered, while CallError means it answered with a failure.
class DeadlineError : public util::ProtocolError {
 public:
  explicit DeadlineError(const std::string& what) : util::ProtocolError(what) {}
};

// Allocates a globally unique request id.
std::uint64_t next_request_id();

// [u64 id][u64 trace][u64 parent-span][body] request framing. The two-arg
// form stamps the calling thread's current trace context.
util::Bytes envelope(std::uint64_t id, const util::Bytes& body);
util::Bytes envelope(std::uint64_t id, trace::Context ctx,
                     const util::Bytes& body);

// ---- callee side ----------------------------------------------------------

struct Request {
  std::uint64_t id = 0;
  vnet::Address from;
  MsgType type{};
  trace::Context ctx;  // sender's trace context ({0,0} = untraced)
  util::Bytes body;
};

Request parse_request(const vnet::Message& msg);

// Builds reply payloads without sending them (used by the dedup cache).
util::Bytes make_ok_reply(std::uint64_t id, const util::Bytes& body);
util::Bytes make_error_reply(std::uint64_t id, ReplyCode code,
                             const std::string& message);

void reply_ok(vnet::Endpoint& ep, const Request& req, util::Bytes body = {});
void reply_ok_to(vnet::Endpoint& ep, const vnet::Address& to,
                 std::uint64_t request_id, util::Bytes body = {});
void reply_error(vnet::Endpoint& ep, const Request& req, ReplyCode code,
                 const std::string& message);
void reply_error_to(vnet::Endpoint& ep, const vnet::Address& to,
                    std::uint64_t request_id, ReplyCode code,
                    const std::string& message);

// Fire-and-forget request (no reply expected), from any endpoint.
void notify(vnet::Endpoint& ep, const vnet::Address& to, MsgType type,
            util::Bytes body);

// ---- caller side ----------------------------------------------------------

// Matches a kReply message against the outstanding request `id`. Returns the
// reply body on ok, nullopt when the message is a stray/stale reply, and
// throws CallError when the callee answered with a failure code.
std::optional<util::Bytes> parse_reply(const vnet::Message& msg,
                                       std::uint64_t id);

// Human-readable name for a message type (metrics, logs). Unknown types are
// rendered as hex.
std::string msg_type_name(std::uint32_t type);

}  // namespace dac::svc
