// Named deadline policy for every RPC the cluster issues. Call sites name
// one of these constants (or a config field) instead of writing a bare
// chrono literal, so the full timeout policy is auditable in one place and
// the analyzer's deadline-literal rule can enforce it.
#pragma once

#include <chrono>

namespace dac::svc::deadlines {

// General request/reply bound: IFL client calls, scheduler<->server cycles,
// mom registration. Generous because a scheduling cycle on a loaded server
// can serialize behind long mutating handlers.
inline constexpr std::chrono::milliseconds kDefault{30'000};

// Control-plane calls against a single daemon (ARM allocate/free/status):
// no scheduling work behind them, so a hung daemon should surface fast.
inline constexpr std::chrono::milliseconds kControl{10'000};

// Elastic negotiation: the job-side agent answering an offer with its
// ack/nack. Short — the agent decides from in-memory config, and the server
// side independently times the offer out (BatchTiming::elastic_offer_timeout)
// so a silent agent must not pin a reservation for long.
inline constexpr std::chrono::milliseconds kElasticAck{5'000};

}  // namespace dac::svc::deadlines
