#include "svc/metrics.hpp"

#include <cstdio>

#include "svc/wire.hpp"

namespace dac::svc {

const RpcStats* MetricsSnapshot::find(std::uint32_t type) const {
  for (const auto& r : rpcs) {
    if (r.type == type) return &r;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::total_calls() const {
  std::uint64_t n = 0;
  for (const auto& r : rpcs) n += r.calls;
  return n;
}

void MetricsRegistry::record(std::uint32_t type, double latency_ms,
                             bool error) {
  ScopedLock lock(mu_);
  auto& s = series_[type];
  s.latency_ms.add(latency_ms);
  if (error) ++s.errors;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  ScopedLock lock(mu_);
  MetricsSnapshot snap;
  snap.rpcs.reserve(series_.size());
  for (const auto& [type, s] : series_) {
    RpcStats r;
    r.type = type;
    r.name = msg_type_name(type);
    r.calls = s.latency_ms.count();
    r.errors = s.errors;
    r.mean_ms = s.latency_ms.mean();
    r.p50_ms = s.latency_ms.percentile(50.0);
    r.p99_ms = s.latency_ms.percentile(99.0);
    r.max_ms = s.latency_ms.max();
    snap.rpcs.push_back(std::move(r));
  }
  return snap;
}

std::string render_metrics(const MetricsSnapshot& snap) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-16s %8s %7s %10s %10s %10s %10s\n",
                "rpc", "calls", "errors", "mean[ms]", "p50[ms]", "p99[ms]",
                "max[ms]");
  out += line;
  for (const auto& r : snap.rpcs) {
    std::snprintf(line, sizeof(line),
                  "%-16s %8llu %7llu %10.3f %10.3f %10.3f %10.3f\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.calls),
                  static_cast<unsigned long long>(r.errors), r.mean_ms,
                  r.p50_ms, r.p99_ms, r.max_ms);
    out += line;
  }
  return out;
}

}  // namespace dac::svc
