// Client side of the service runtime: a Caller issues request/reply calls
// against one target address with per-call deadlines and bounded retransmits
// (exponential backoff + jitter). A retried request reuses its request-id, so
// a ServiceLoop on the far side deduplicates it instead of executing twice.
#pragma once

#include <chrono>
#include <memory>

#include "svc/deadlines.hpp"
#include "svc/metrics.hpp"
#include "svc/wire.hpp"

namespace dac::svc {

struct RetryPolicy {
  // Total send attempts per call (1 = no retransmits).
  int max_attempts = 3;
  std::chrono::milliseconds initial_backoff{5};
  double multiplier = 2.0;
  std::chrono::milliseconds max_backoff{200};
  double jitter = 0.25;

  [[nodiscard]] static RetryPolicy none() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

struct CallOptions {
  std::chrono::milliseconds deadline{deadlines::kDefault};
  // Non-idempotent calls are never retransmitted, regardless of policy.
  // Requests to ServiceLoop daemons are dedup-protected and can stay true.
  bool idempotent = true;
};

class Caller {
 public:
  // Calls from a non-process context (client commands, tests, benches).
  Caller(vnet::Node& node, vnet::Address to, RetryPolicy policy = {},
         MetricsRegistry* metrics = nullptr);
  // Calls from a process context (daemons): the ephemeral per-call endpoint
  // is owned by the process, so request_stop() unblocks an in-flight call.
  Caller(vnet::Process& proc, vnet::Address to, RetryPolicy policy = {},
         MetricsRegistry* metrics = nullptr);

  // Blocking request/reply. Throws CallError on an error reply, DeadlineError
  // when the deadline passes with no reply, StoppedError on cooperative kill.
  // [[nodiscard]]: a dropped reply body is only ever intentional (fire-and-
  // forget to a dedup-protected daemon); make those sites say (void).
  [[nodiscard]] util::Bytes call(MsgType type, util::Bytes body,
                                 CallOptions opts = {}) const;

  [[nodiscard]] const vnet::Address& target() const { return to_; }
  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }

 private:
  std::unique_ptr<vnet::Endpoint> open_endpoint() const;

  vnet::Node* node_ = nullptr;
  vnet::Process* proc_ = nullptr;
  vnet::Address to_;
  RetryPolicy policy_;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace dac::svc
