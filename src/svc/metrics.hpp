// Per-RPC metrics: every call type accumulates a call count, error count,
// and latency samples. Daemons record handling latency through their
// ServiceLoop; clients record round-trip latency through their Caller. The
// snapshot is what DacCluster dumps and what the CLI renders.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/sync.hpp"

namespace dac::svc {

struct RpcStats {
  std::uint32_t type = 0;
  std::string name;  // msg_type_name(type)
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

struct MetricsSnapshot {
  std::vector<RpcStats> rpcs;  // sorted by type code

  [[nodiscard]] const RpcStats* find(std::uint32_t type) const;
  [[nodiscard]] std::uint64_t total_calls() const;
};

class MetricsRegistry {
 public:
  void record(std::uint32_t type, double latency_ms, bool error = false);
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Series {
    util::Samples latency_ms;
    std::uint64_t errors = 0;
  };

  mutable Mutex mu_{"metrics.series"};
  std::map<std::uint32_t, Series> series_ DAC_GUARDED_BY(mu_);
};

// Fixed-width table of a snapshot (one row per message type).
std::string render_metrics(const MetricsSnapshot& snap);

}  // namespace dac::svc
