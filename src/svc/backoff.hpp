// Exponential backoff with optional jitter. The one implementation behind
// every wait-and-retry loop in the tree: Caller retransmissions, rmlib's
// wait-for-ARM-port poll, and minimpi's wait-for-rank-port poll all used to
// hand-roll this with three different growth curves.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "simtime/clock.hpp"

namespace dac::svc {

struct BackoffPolicy {
  std::chrono::microseconds initial{100};
  double multiplier = 2.0;
  std::chrono::microseconds cap{5000};
  // Fraction in [0, 1): each delay is scaled by a uniform factor in
  // [1 - jitter, 1 + jitter] so synchronized retriers desynchronize.
  double jitter = 0.0;
};

class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy, std::uint64_t seed = 1)
      : policy_(policy), next_(policy.initial), state_(seed | 1) {}

  // Returns the next delay and advances the schedule.
  std::chrono::microseconds next() {
    auto delay = next_;
    const auto grown = std::chrono::microseconds(static_cast<long long>(
        static_cast<double>(next_.count()) * policy_.multiplier));
    next_ = std::min(std::max(grown, next_), policy_.cap);
    if (policy_.jitter > 0.0) {
      const double scale = 1.0 + policy_.jitter * (2.0 * uniform() - 1.0);
      delay = std::chrono::microseconds(std::max<long long>(
          1, static_cast<long long>(
                 static_cast<double>(delay.count()) * scale)));
    }
    return delay;
  }

  void sleep() { simtime::sleep_for(next()); }

  void reset() { next_ = policy_.initial; }

 private:
  // xorshift64* — deterministic per seed, no global RNG state.
  double uniform() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    const auto bits = (state_ * 0x2545F4914F6CDD1Dull) >> 11;
    return static_cast<double>(bits) / static_cast<double>(1ull << 53);
  }

  BackoffPolicy policy_;
  std::chrono::microseconds next_;
  std::uint64_t state_;
};

}  // namespace dac::svc
