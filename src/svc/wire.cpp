#include "svc/wire.hpp"

#include <atomic>
#include <cstdio>

namespace dac::svc {

namespace {
std::atomic<std::uint64_t> g_next_request_id{1};
}  // namespace

std::uint64_t next_request_id() {
  return g_next_request_id.fetch_add(1, std::memory_order_relaxed);
}

util::Bytes envelope(std::uint64_t id, const util::Bytes& body) {
  return envelope(id, trace::current(), body);
}

util::Bytes envelope(std::uint64_t id, trace::Context ctx,
                     const util::Bytes& body) {
  util::ByteWriter w;
  w.put<std::uint64_t>(id);
  w.put<std::uint64_t>(ctx.trace);
  w.put<std::uint64_t>(ctx.span);
  w.put_raw(body.data(), body.size());
  return std::move(w).take();
}

Request parse_request(const vnet::Message& msg) {
  util::ByteReader r(msg.payload);
  Request req;
  req.id = r.get<std::uint64_t>();
  req.ctx.trace = r.get<std::uint64_t>();
  req.ctx.span = r.get<std::uint64_t>();
  req.from = msg.from;
  req.type = static_cast<MsgType>(msg.type);
  req.body.assign(msg.payload.begin() + static_cast<std::ptrdiff_t>(
                                            msg.payload.size() - r.remaining()),
                  msg.payload.end());
  return req;
}

util::Bytes make_ok_reply(std::uint64_t id, const util::Bytes& body) {
  util::ByteWriter w;
  w.put<std::uint64_t>(id);
  w.put_enum(ReplyCode::kOk);
  w.put_raw(body.data(), body.size());
  return std::move(w).take();
}

util::Bytes make_error_reply(std::uint64_t id, ReplyCode code,
                             const std::string& message) {
  util::ByteWriter w;
  w.put<std::uint64_t>(id);
  w.put_enum(code);
  w.put_string(message);
  return std::move(w).take();
}

void reply_ok_to(vnet::Endpoint& ep, const vnet::Address& to,
                 std::uint64_t request_id, util::Bytes body) {
  ep.send(to, as_u32(MsgType::kReply), make_ok_reply(request_id, body));
}

void reply_ok(vnet::Endpoint& ep, const Request& req, util::Bytes body) {
  reply_ok_to(ep, req.from, req.id, std::move(body));
}

void reply_error_to(vnet::Endpoint& ep, const vnet::Address& to,
                    std::uint64_t request_id, ReplyCode code,
                    const std::string& message) {
  ep.send(to, as_u32(MsgType::kReply),
          make_error_reply(request_id, code, message));
}

void reply_error(vnet::Endpoint& ep, const Request& req, ReplyCode code,
                 const std::string& message) {
  reply_error_to(ep, req.from, req.id, code, message);
}

void notify(vnet::Endpoint& ep, const vnet::Address& to, MsgType type,
            util::Bytes body) {
  ep.send(to, as_u32(type), envelope(next_request_id(), body));
}

std::optional<util::Bytes> parse_reply(const vnet::Message& msg,
                                       std::uint64_t id) {
  if (msg.type != as_u32(MsgType::kReply)) return std::nullopt;
  util::ByteReader r(msg.payload);
  if (r.get<std::uint64_t>() != id) return std::nullopt;  // stale reply
  const auto code = r.get_enum<ReplyCode>();
  if (code == ReplyCode::kOk) {
    return util::Bytes(msg.payload.begin() +
                           static_cast<std::ptrdiff_t>(msg.payload.size() -
                                                       r.remaining()),
                       msg.payload.end());
  }
  throw CallError(code, r.get_string());
}

std::string msg_type_name(std::uint32_t type) {
  switch (type) {
    case as_u32(MsgType::kSubmit): return "SUBMIT";
    case as_u32(MsgType::kStatJobs): return "STAT_JOBS";
    case as_u32(MsgType::kStatJob): return "STAT_JOB";
    case as_u32(MsgType::kStatNodes): return "STAT_NODES";
    case as_u32(MsgType::kDeleteJob): return "DELETE_JOB";
    case as_u32(MsgType::kAlterJob): return "ALTER_JOB";
    case as_u32(MsgType::kDynGet): return "DYN_GET";
    case as_u32(MsgType::kDynFree): return "DYN_FREE";
    case as_u32(MsgType::kRegisterNode): return "REGISTER_NODE";
    case as_u32(MsgType::kRegisterScheduler): return "REGISTER_SCHED";
    case as_u32(MsgType::kJobStarted): return "JOB_STARTED";
    case as_u32(MsgType::kJobComplete): return "JOB_COMPLETE";
    case as_u32(MsgType::kMsDynReady): return "MS_DYN_READY";
    case as_u32(MsgType::kMsReleaseDone): return "MS_RELEASE_DONE";
    case as_u32(MsgType::kSchedWake): return "SCHED_WAKE";
    case as_u32(MsgType::kGetQueue): return "GET_QUEUE";
    case as_u32(MsgType::kGetNodes): return "GET_NODES";
    case as_u32(MsgType::kRunJob): return "RUN_JOB";
    case as_u32(MsgType::kRunDyn): return "RUN_DYN";
    case as_u32(MsgType::kRejectDyn): return "REJECT_DYN";
    case as_u32(MsgType::kGetSched): return "GET_SCHED";
    case as_u32(MsgType::kDynDecide): return "DYN_DECIDE";
    case as_u32(MsgType::kMomRunJob): return "MOM_RUN_JOB";
    case as_u32(MsgType::kMomDynAdd): return "MOM_DYN_ADD";
    case as_u32(MsgType::kMomRelease): return "MOM_RELEASE";
    case as_u32(MsgType::kMomKillJob): return "MOM_KILL_JOB";
    case as_u32(MsgType::kJoinJob): return "JOIN_JOB";
    case as_u32(MsgType::kJoinAck): return "JOIN_ACK";
    case as_u32(MsgType::kDynJoinJob): return "DYNJOIN_JOB";
    case as_u32(MsgType::kDynJoinAck): return "DYNJOIN_ACK";
    case as_u32(MsgType::kDisjoinJob): return "DISJOIN_JOB";
    case as_u32(MsgType::kDisjoinAck): return "DISJOIN_ACK";
    case as_u32(MsgType::kJobUpdate): return "JOB_UPDATE";
    case as_u32(MsgType::kTaskDone): return "TASK_DONE";
    case as_u32(MsgType::kMomHeartbeat): return "MOM_HEARTBEAT";
    case as_u32(MsgType::kBackendHeartbeat): return "BACKEND_HEARTBEAT";
    case as_u32(MsgType::kReply): return "REPLY";
    case as_u32(MsgType::kEvNodeSuspect): return "EV_NODE_SUSPECT";
    case as_u32(MsgType::kEvNodeDown): return "EV_NODE_DOWN";
    case as_u32(MsgType::kEvNodeUp): return "EV_NODE_UP";
    case as_u32(MsgType::kEvJobRequeue): return "EV_JOB_REQUEUE";
    case as_u32(MsgType::kEvJobFailed): return "EV_JOB_FAILED";
    case as_u32(MsgType::kEvAcReclaim): return "EV_AC_RECLAIM";
    case as_u32(MsgType::kElastRegister): return "ELAST_REGISTER";
    case as_u32(MsgType::kElastPropose): return "ELAST_PROPOSE";
    case as_u32(MsgType::kElastOffer): return "ELAST_OFFER";
    case as_u32(MsgType::kElastAck): return "ELAST_ACK";
    case as_u32(MsgType::kElastReconfig): return "ELAST_RECONFIG";
    // Fault-injection event codes (src/faults/fault_plan.hpp); raw hex so
    // svc does not depend on the faults library for a string table.
    case 0xFA000001: return "EV_FAULT_DROP";
    case 0xFA000002: return "EV_FAULT_DUP";
    case 0xFA000003: return "EV_FAULT_DELAY";
    case 0xFA000004: return "EV_NODE_CRASH";
    case 0xFA000005: return "EV_NODE_RESTART";
    case 0xFA000006: return "EV_LINK_PARTITION";
    case 0x41524D01: return "ARM_ALLOC";
    case 0x41524D02: return "ARM_FREE";
    case 0x41524D03: return "ARM_STATUS";
    case 0x41524D04: return "ARM_RECLAIM";
    case 0x41524D10: return "ARM_REPLY";
    default: break;
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08X", type);
  return buf;
}

}  // namespace dac::svc
