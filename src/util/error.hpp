// Shared exception types. StoppedError is thrown by blocking receive paths
// when their endpoint is closed by a cooperative kill (Process::request_stop)
// — daemon entry functions let it unwind and the process runner swallows it,
// mirroring a daemon exiting on SIGTERM.
#pragma once

#include <stdexcept>
#include <string>

namespace dac::util {

class StoppedError : public std::runtime_error {
 public:
  StoppedError() : std::runtime_error("process stop requested") {}
  explicit StoppedError(const std::string& what) : std::runtime_error(what) {}
};

// Protocol-level failure: a request/reply exchange produced an error reply or
// a malformed message. Carries enough context to diagnose the daemon pair.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace dac::util
