#include "util/lockorder.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

namespace dac::lockorder {

namespace {

std::atomic<bool> g_enabled{
#ifdef NDEBUG
    false
#else
    true
#endif
};

struct HeldLock {
  const void* lock = nullptr;
  const char* name = "mutex";
};

// Held-lock stack of the current thread, innermost last.
thread_local std::vector<HeldLock> t_held;

// Records where an ordering was first established.
struct EdgeInfo {
  std::string from_name;
  std::string to_name;
  std::string stack;  // held stack at the time, rendered
  std::thread::id thread;
};

// The global state is guarded by a raw std::mutex on purpose: the detector
// must not instrument its own lock (lint-allowlisted).
std::mutex g_mu;  // NOLINT-DACSCHED(raw-sync)
std::map<std::pair<const void*, const void*>, EdgeInfo> g_edges;
std::map<const void*, std::set<const void*>> g_adjacent;
Handler g_handler;

std::string render_stack(const std::vector<HeldLock>& held) {
  std::ostringstream out;
  for (std::size_t i = 0; i < held.size(); ++i) {
    if (i > 0) out << " -> ";
    out << held[i].name << "@" << held[i].lock;
  }
  if (held.empty()) out << "(none)";
  return out.str();
}

// Depth-first search for a path `from` -> ... -> `to` in the order graph.
// Returns the path (inclusive) if one exists. Caller holds g_mu.
bool find_path(const void* from, const void* to, std::set<const void*>& seen,
               std::vector<const void*>& path) {
  if (from == to) {
    path.push_back(from);
    return true;
  }
  if (!seen.insert(from).second) return false;
  auto it = g_adjacent.find(from);
  if (it == g_adjacent.end()) return false;
  for (const void* next : it->second) {
    if (find_path(next, to, seen, path)) {
      path.insert(path.begin(), from);
      return true;
    }
  }
  return false;
}

void default_report(const Violation& v) {
  std::fprintf(stderr, "%s\n", v.message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void set_violation_handler(Handler handler) {
  std::lock_guard lock(g_mu);  // NOLINT-DACSCHED(raw-sync)
  g_handler = std::move(handler);
}

void reset_for_testing() {
  std::lock_guard lock(g_mu);  // NOLINT-DACSCHED(raw-sync)
  g_edges.clear();
  g_adjacent.clear();
  t_held.clear();
}

void on_acquire(const void* lock, const char* name) {
  if (!enabled()) return;
  std::vector<Violation> violations;
  Handler handler;
  {
    std::lock_guard guard(g_mu);  // NOLINT-DACSCHED(raw-sync)
    for (const auto& held : t_held) {
      if (held.lock == lock) continue;  // re-acquire caught by the real lock
      const auto key = std::make_pair(held.lock, lock);
      const bool fresh = !g_edges.contains(key);
      if (fresh) {
        g_edges.emplace(key, EdgeInfo{held.name, name, render_stack(t_held),
                                      std::this_thread::get_id()});
        g_adjacent[held.lock].insert(lock);
      }
      // A path lock -> ... -> held.lock means the opposite order is already
      // established somewhere: cycle.
      std::set<const void*> seen;
      std::vector<const void*> path;
      if (fresh && find_path(lock, held.lock, seen, path)) {
        Violation v;
        v.first_lock = name;
        v.second_lock = held.name;
        std::ostringstream msg;
        msg << "lock-order inversion: acquiring '" << name << "'@" << lock
            << " while holding '" << held.name << "'@" << held.lock
            << ", but the opposite order is already established\n"
            << "  this thread holds: " << render_stack(t_held) << "\n"
            << "  reverse path:";
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          const auto eit = g_edges.find({path[i], path[i + 1]});
          if (eit == g_edges.end()) continue;
          msg << "\n    '" << eit->second.from_name << "' -> '"
              << eit->second.to_name << "' first taken with held stack: "
              << eit->second.stack;
        }
        v.message = std::move(msg).str();
        violations.push_back(std::move(v));
      }
    }
    handler = g_handler;
  }
  t_held.push_back(HeldLock{lock, name});
  // Report outside g_mu: the default handler (and any test handler that
  // logs) may itself acquire instrumented locks.
  for (const auto& v : violations) {
    if (handler) {
      handler(v);
    } else {
      default_report(v);
    }
  }
}

void on_release(const void* lock) noexcept {
  if (!enabled()) return;
  // Unlocks may come out of stack order (rare, but legal); erase the
  // innermost matching entry.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->lock == lock) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void on_destroy(const void* lock) noexcept {
  if (!enabled()) return;
  std::lock_guard guard(g_mu);  // NOLINT-DACSCHED(raw-sync)
  g_adjacent.erase(lock);
  for (auto& [from, targets] : g_adjacent) targets.erase(lock);
  for (auto it = g_edges.begin(); it != g_edges.end();) {
    if (it->first.first == lock || it->first.second == lock) {
      it = g_edges.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dac::lockorder
