// Minimal leveled, thread-safe logger. Every daemon in the virtual cluster
// logs through this; the level is process-global and settable from the
// DACSCHED_LOG environment variable (trace|debug|info|warn|error|off).
#pragma once

#include <string>
#include <string_view>

#include "util/format.hpp"

namespace dac::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);
LogLevel parse_log_level(std::string_view name);

namespace detail {
void log_line(LogLevel level, std::string_view component, std::string_view msg);
}

// Component-scoped logger so lines read like
//   [info ] [pbs_server] job 12 queued
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  template <typename... Args>
  void trace(std::string_view fmt, Args&&... args) const {
    log(LogLevel::kTrace, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void debug(std::string_view fmt, Args&&... args) const {
    log(LogLevel::kDebug, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void info(std::string_view fmt, Args&&... args) const {
    log(LogLevel::kInfo, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void warn(std::string_view fmt, Args&&... args) const {
    log(LogLevel::kWarn, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void error(std::string_view fmt, Args&&... args) const {
    log(LogLevel::kError, fmt, std::forward<Args>(args)...);
  }

  [[nodiscard]] const std::string& component() const { return component_; }

 private:
  template <typename... Args>
  void log(LogLevel level, std::string_view fmt, Args&&... args) const {
    if (level < log_level()) return;
    detail::log_line(level, component_,
                     util::format(fmt, std::forward<Args>(args)...));
  }

  std::string component_;
};

}  // namespace dac::util
