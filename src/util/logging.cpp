#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "simtime/clock.hpp"
#include "util/sync.hpp"

namespace dac::util {

namespace {

std::atomic<LogLevel> g_level{[] {
  if (const char* env = std::getenv("DACSCHED_LOG")) {
    return parse_log_level(env);
  }
  return LogLevel::kWarn;
}()};

Mutex g_io_mutex{"log.io"};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo:  return "info ";
    case LogLevel::kWarn:  return "warn ";
    case LogLevel::kError: return "error";
    case LogLevel::kOff:   return "off  ";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

namespace detail {

void log_line(LogLevel level, std::string_view component,
              std::string_view msg) {
  using namespace std::chrono;
  // simtime::now(): log timestamps track virtual time in DiscreteEvent mode,
  // which is what makes interleaved daemon logs legible in a simulation.
  const auto now = simtime::now().time_since_epoch();
  const auto ms = duration_cast<milliseconds>(now).count();
  ScopedLock lock(g_io_mutex);
  std::fprintf(stderr, "%9lld.%03lld [%s] [%.*s] %.*s\n",
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace detail

}  // namespace dac::util
