// Byte-buffer serialization used for every message payload in the virtual
// cluster. Values are encoded little-endian, length-prefixed where variable
// sized. The format is symmetric: whatever ByteWriter wrote, ByteReader reads
// back in the same order. Deserialization failures throw DecodeError rather
// than returning garbage, because a malformed payload is always a programming
// error in this in-process system.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace dac::util {

using Bytes = std::vector<std::byte>;

class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class ByteWriter {
 public:
  ByteWriter() = default;

  template <typename T>
    requires std::is_trivially_copyable_v<T> && std::is_arithmetic_v<T>
  void put(T value) {
    const auto old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &value, sizeof(T));
  }

  template <typename E>
    requires std::is_enum_v<E>
  void put_enum(E value) {
    put(static_cast<std::underlying_type_t<E>>(value));
  }

  void put_bool(bool value) { put<std::uint8_t>(value ? 1 : 0); }

  void put_string(std::string_view s) {
    put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    const auto old = buf_.size();
    buf_.resize(old + s.size());
    std::memcpy(buf_.data() + old, s.data(), s.size());
  }

  void put_bytes(const Bytes& b) {
    put<std::uint32_t>(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  // Raw append without a length prefix; reader must know the size.
  void put_raw(const void* data, std::size_t n) {
    const auto old = buf_.size();
    buf_.resize(old + n);
    std::memcpy(buf_.data() + old, data, n);
  }

  template <typename T>
    requires std::is_arithmetic_v<T>
  void put_vector(const std::vector<T>& v) {
    put<std::uint32_t>(static_cast<std::uint32_t>(v.size()));
    if (!v.empty()) put_raw(v.data(), v.size() * sizeof(T));
  }

  void put_string_vector(const std::vector<std::string>& v) {
    put<std::uint32_t>(static_cast<std::uint32_t>(v.size()));
    for (const auto& s : v) put_string(s);
  }

  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : buf_(buf) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T> && std::is_arithmetic_v<T>
  T get() {
    need(sizeof(T));
    T value;
    std::memcpy(&value, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename E>
    requires std::is_enum_v<E>
  E get_enum() {
    return static_cast<E>(get<std::underlying_type_t<E>>());
  }

  bool get_bool() { return get<std::uint8_t>() != 0; }

  std::string get_string() {
    const auto n = get<std::uint32_t>();
    need(n);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  Bytes get_bytes() {
    const auto n = get<std::uint32_t>();
    need(n);
    Bytes b(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
            buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  template <typename T>
    requires std::is_arithmetic_v<T>
  std::vector<T> get_vector() {
    const auto n = get<std::uint32_t>();
    need(static_cast<std::size_t>(n) * sizeof(T));
    std::vector<T> v(n);
    if (n > 0) {
      std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    }
    return v;
  }

  std::vector<std::string> get_string_vector() {
    const auto n = get<std::uint32_t>();
    std::vector<std::string> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(get_string());
    return v;
  }

  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  void need(std::size_t n) const {
    if (buf_.size() - pos_ < n) {
      throw DecodeError("ByteReader: truncated payload (need " +
                        std::to_string(n) + " bytes, have " +
                        std::to_string(buf_.size() - pos_) + ")");
    }
  }

  const Bytes& buf_;
  std::size_t pos_ = 0;
};

// Convenience: copy a trivially-copyable range into a Bytes buffer.
Bytes to_bytes(const void* data, std::size_t n);

}  // namespace dac::util
