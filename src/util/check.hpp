// DAC_CHECK / DAC_DCHECK: invariant assertions with formatted messages.
//
//   DAC_CHECK(node.used >= 0);
//   DAC_CHECK(grants <= free, "granted {} ACs but only {} free", grants, free);
//
// DAC_CHECK is always on and aborts the process with the failed expression,
// source location, and the formatted message. DAC_DCHECK evaluates only in
// debug (!NDEBUG) builds; in release builds the condition is type-checked
// but never executed. Use DAC_CHECK for cheap cross-daemon bookkeeping
// invariants (slot counts, grant sets) and DAC_DCHECK for per-operation
// checks on hot paths.
#pragma once

#include <string>

#include "util/format.hpp"

namespace dac::detail {

// Builds the failure report; separated from check_fail so tests can assert
// on the exact formatting without dying.
std::string check_failure_message(const char* file, int line, const char* expr,
                                  const std::string& msg);

[[noreturn]] void check_fail(const char* file, int line, const char* expr,
                             const std::string& msg);

inline std::string check_format() { return {}; }

template <typename... Args>
std::string check_format(std::string_view fmt, Args&&... args) {
  return util::format(fmt, std::forward<Args>(args)...);
}

}  // namespace dac::detail

#define DAC_CHECK(cond, ...)                                    \
  (static_cast<bool>(cond)                                      \
       ? static_cast<void>(0)                                   \
       : ::dac::detail::check_fail(__FILE__, __LINE__, #cond,   \
                                   ::dac::detail::check_format( \
                                       __VA_ARGS__)))

#ifndef NDEBUG
#define DAC_DCHECK(...) DAC_CHECK(__VA_ARGS__)
#else
#define DAC_DCHECK(...)             \
  do {                              \
    if (false) {                    \
      DAC_CHECK(__VA_ARGS__);       \
    }                               \
  } while (false)
#endif
