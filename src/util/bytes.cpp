#include "util/bytes.hpp"

namespace dac::util {

Bytes to_bytes(const void* data, std::size_t n) {
  Bytes b(n);
  if (n > 0) std::memcpy(b.data(), data, n);
  return b;
}

}  // namespace dac::util
