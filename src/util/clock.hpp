// Time helpers: a steady-clock stopwatch used by the benchmark harness to
// split phase timings (e.g. Figure 7's waiting-vs-connect decomposition).
#pragma once

#include <chrono>

namespace dac::util {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = Clock::duration;

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] Duration elapsed() const { return Clock::now() - start_; }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(elapsed()).count();
  }

  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(elapsed()).count();
  }

  // Returns the lap time and restarts the watch; used for phase splits.
  [[nodiscard]] double lap_seconds() {
    const auto now = Clock::now();
    const double dt = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return dt;
  }

 private:
  TimePoint start_;
};

inline double to_seconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace dac::util
