// Time helpers: a stopwatch used by the benchmark harness to split phase
// timings (e.g. Figure 7's waiting-vs-connect decomposition). All readings
// come from the simtime clock, so stopwatches measure virtual time in
// DiscreteEvent mode and real time otherwise.
#pragma once

#include <chrono>

#include "simtime/clock.hpp"

namespace dac::util {

// Type aliases only: steady_clock supplies the time_point/duration types the
// whole tree shares, but "now" must always come from util::now() /
// simtime::now(), never Clock::now() (the analyzer's raw-clock rule catches
// the latter spelled as steady_clock).
using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = Clock::duration;

inline TimePoint now() { return simtime::now(); }

class Stopwatch {
 public:
  Stopwatch() : start_(util::now()) {}

  void reset() { start_ = util::now(); }

  [[nodiscard]] Duration elapsed() const { return util::now() - start_; }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(elapsed()).count();
  }

  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(elapsed()).count();
  }

  // Returns the lap time and restarts the watch; used for phase splits.
  [[nodiscard]] double lap_seconds() {
    const auto t = util::now();
    const double dt = std::chrono::duration<double>(t - start_).count();
    start_ = t;
    return dt;
  }

 private:
  TimePoint start_;
};

inline double to_seconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace dac::util
