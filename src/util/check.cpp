#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dac::detail {

std::string check_failure_message(const char* file, int line, const char* expr,
                                  const std::string& msg) {
  std::ostringstream out;
  out << "DAC_CHECK failed: " << expr << " (" << file << ":" << line << ")";
  if (!msg.empty()) out << ": " << msg;
  return std::move(out).str();
}

void check_fail(const char* file, int line, const char* expr,
                const std::string& msg) {
  const auto report = check_failure_message(file, line, expr, msg);
  // fprintf, not the logger: the logger's level gate and mutex must not be
  // able to swallow or deadlock a failing invariant.
  std::fprintf(stderr, "%s\n", report.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace dac::detail
