#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dac::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  return sum() / static_cast<double>(xs_.size());
}

double Samples::sum() const {
  return std::accumulate(xs_.begin(), xs_.end(), 0.0);
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : xs_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs_.size() - 1));
}

double Samples::min() const {
  return xs_.empty() ? 0.0 : *std::min_element(xs_.begin(), xs_.end());
}

double Samples::max() const {
  return xs_.empty() ? 0.0 : *std::max_element(xs_.begin(), xs_.end());
}

double Samples::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double idx =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace dac::util
