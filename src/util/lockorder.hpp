// Runtime lock-order (potential-deadlock) detector, in the spirit of the
// kernel's lockdep. Every dac::Mutex reports acquire/release here; the
// detector maintains a per-thread held-lock stack and a global acquisition-
// order graph. Acquiring B while holding A records the edge A -> B; if the
// graph already contains a path B -> ... -> A, the two orders can deadlock
// under the right schedule, and the detector reports it immediately — with
// the current thread's held stack and the stack recorded when the reverse
// edge was first seen — even if this particular run never actually hangs.
//
// The detector is compiled in unconditionally but enabled by default only in
// debug (!NDEBUG) builds; when disabled, the hooks cost one relaxed atomic
// load. Tests may enable it explicitly and install a capturing handler in
// place of the default report-and-abort.
#pragma once

#include <functional>
#include <string>

namespace dac::lockorder {

struct Violation {
  std::string first_lock;   // lock being acquired when the cycle closed
  std::string second_lock;  // already-held lock reachable from first_lock
  // Human-readable report: the inverted pair, the acquiring thread's held
  // stack, and the held stack recorded when the opposite order was first
  // established.
  std::string message;
};

using Handler = std::function<void(const Violation&)>;

[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

// Replaces the violation handler (default: print the report to stderr and
// abort). Passing a null handler restores the default.
void set_violation_handler(Handler handler);

// Drops the acquisition-order graph and the calling thread's held stack.
// Test-only: real code never needs to forget established orderings.
void reset_for_testing();

// Hooks wired into dac::Mutex / dac::CondVar. `lock` identifies the mutex
// (its address); `name` is a static diagnostic label.
void on_acquire(const void* lock, const char* name);
void on_release(const void* lock) noexcept;
void on_destroy(const void* lock) noexcept;

}  // namespace dac::lockorder
