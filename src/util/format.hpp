// Tiny std::format stand-in (libstdc++ 12 does not ship <format>): each "{}"
// in the format string is replaced by the next argument rendered through
// operator<<. Surplus placeholders are left verbatim; surplus arguments are
// appended — both are visible in the log rather than silently dropped.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace dac::util {

namespace detail {

inline void format_impl(std::ostringstream& out, std::string_view fmt) {
  out << fmt;
}

template <typename T, typename... Rest>
void format_impl(std::ostringstream& out, std::string_view fmt, T&& first,
                 Rest&&... rest) {
  const auto pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    out << fmt << " " << first;
    (void)std::initializer_list<int>{((out << " " << rest), 0)...};
    return;
  }
  out << fmt.substr(0, pos) << first;
  format_impl(out, fmt.substr(pos + 2), std::forward<Rest>(rest)...);
}

}  // namespace detail

template <typename... Args>
std::string format(std::string_view fmt, Args&&... args) {
  std::ostringstream out;
  detail::format_impl(out, fmt, std::forward<Args>(args)...);
  return out.str();
}

}  // namespace dac::util
