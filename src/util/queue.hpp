// Unbounded MPSC/MPMC blocking queue used for mailboxes and work queues
// throughout the virtual cluster. close() releases all waiters; pop() returns
// nullopt once the queue is both closed and drained, which is the idiomatic
// shutdown path for every daemon loop in this codebase.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace dac::util {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Returns false if the queue is closed (item is dropped).
  bool push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Waits up to `timeout`; nullopt on timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout,
                      [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dac::util
