// Unbounded MPSC/MPMC blocking queue used for mailboxes and work queues
// throughout the virtual cluster. close() wakes every blocked producer and
// consumer; pop() returns nullopt once the queue is both closed and drained,
// which is the idiomatic shutdown path for every daemon loop in this
// codebase. push() into a closed queue is a checked error: it returns false
// (the item is dropped) and the result must be handled — callers that can
// tolerate the drop say so explicitly.
#pragma once

#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "util/sync.hpp"

namespace dac::util {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Returns false if the queue is closed (item is dropped). The result must
  // not be ignored: a post-close push is how shutdown races surface.
  [[nodiscard]] bool push(T item) {
    {
      ScopedLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    UniqueLock lock(mu_);
    while (items_.empty() && !closed_) cv_.wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() {
    ScopedLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Waits up to `timeout` (virtual time in DiscreteEvent mode); nullopt on
  // timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = simtime::now() + timeout;
    UniqueLock lock(mu_);
    while (items_.empty() && !closed_) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          items_.empty()) {
        return std::nullopt;
      }
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Closes the queue and wakes every waiter; pending items stay poppable.
  void close() {
    {
      ScopedLock lock(mu_);
      if (closed_) return;
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    ScopedLock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    ScopedLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_{"queue"};
  CondVar cv_;
  std::deque<T> items_ DAC_GUARDED_BY(mu_);
  bool closed_ DAC_GUARDED_BY(mu_) = false;
};

}  // namespace dac::util
