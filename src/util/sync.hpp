// Thread-safety-annotated synchronization primitives. Every mutex in the
// codebase is a dac::Mutex, every condition variable a dac::CondVar, and
// every guarded field carries DAC_GUARDED_BY(mu_) — so Clang's
// -Wthread-safety analysis (turned on with -Werror in the clang CI job)
// proves lock discipline at compile time, while the runtime lock-order
// detector (util/lockorder.hpp) catches A/B-B/A inversions in debug builds.
// The annotation macros compile away on GCC.
//
// Raw std::mutex / std::condition_variable are banned outside this file and
// the detector's own implementation; tools/lint.py enforces that in CI.
//
// Conventions:
//   * name the mutex after what it guards, annotate every guarded field;
//   * prefer ScopedLock (RAII, non-movable); use UniqueLock only for
//     condition waits;
//   * write condition waits as explicit loops so the analysis sees the
//     guarded reads under the lock:
//       while (!ready_) cv_.wait(lock);
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <shared_mutex>
#include <type_traits>

#include "simtime/clock.hpp"
#include "util/lockorder.hpp"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DAC_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef DAC_THREAD_ANNOTATION_
#define DAC_THREAD_ANNOTATION_(x)
#endif

#define DAC_CAPABILITY(x) DAC_THREAD_ANNOTATION_(capability(x))
#define DAC_SCOPED_CAPABILITY DAC_THREAD_ANNOTATION_(scoped_lockable)
#define DAC_GUARDED_BY(x) DAC_THREAD_ANNOTATION_(guarded_by(x))
#define DAC_PT_GUARDED_BY(x) DAC_THREAD_ANNOTATION_(pt_guarded_by(x))
#define DAC_ACQUIRED_BEFORE(...) \
  DAC_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define DAC_ACQUIRED_AFTER(...) \
  DAC_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define DAC_REQUIRES(...) \
  DAC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define DAC_ACQUIRE(...) \
  DAC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DAC_RELEASE(...) \
  DAC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define DAC_TRY_ACQUIRE(...) \
  DAC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define DAC_ACQUIRE_SHARED(...) \
  DAC_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define DAC_RELEASE_SHARED(...) \
  DAC_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define DAC_REQUIRES_SHARED(...) \
  DAC_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define DAC_EXCLUDES(...) DAC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define DAC_ASSERT_CAPABILITY(x) \
  DAC_THREAD_ANNOTATION_(assert_capability(x))
#define DAC_RETURN_CAPABILITY(x) DAC_THREAD_ANNOTATION_(lock_returned(x))
#define DAC_NO_THREAD_SAFETY_ANALYSIS \
  DAC_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace dac {

class CondVar;

// Annotated std::mutex wrapper wired into the lock-order detector. The
// optional name labels the lock in inversion reports; give distinct names to
// distinct roles ("fabric.pending", "fabric.boxes", ...).
class DAC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) : name_(name) {}
  ~Mutex() { lockorder::on_destroy(this); }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DAC_ACQUIRE() {
    // Record intent before blocking: a potential inversion is reported even
    // on schedules that do not actually deadlock.
    lockorder::on_acquire(this, name_);
    mu_.lock();
  }

  void unlock() DAC_RELEASE() {
    lockorder::on_release(this);
    mu_.unlock();
  }

  [[nodiscard]] bool try_lock() DAC_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lockorder::on_acquire(this, name_);
    return true;
  }

  [[nodiscard]] const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;  // NOLINT-DACSCHED(raw-sync)
  const char* name_ = "mutex";
};

// RAII lock for plain critical sections (the std::lock_guard equivalent).
class DAC_SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(Mutex& mu) DAC_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~ScopedLock() DAC_RELEASE() { mu_->unlock(); }

  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  Mutex* mu_;
};

// Lock with manual unlock/relock, for condition waits and drop-the-lock
// sections (the std::unique_lock equivalent).
class DAC_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) DAC_ACQUIRE(mu) : mu_(&mu), owns_(true) {
    mu_->lock();
  }
  ~UniqueLock() DAC_RELEASE() {
    if (owns_) mu_->unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() DAC_ACQUIRE() {
    mu_->lock();
    owns_ = true;
  }
  void unlock() DAC_RELEASE() {
    mu_->unlock();
    owns_ = false;
  }
  [[nodiscard]] bool owns_lock() const { return owns_; }

 private:
  friend class CondVar;
  Mutex* mu_;
  bool owns_;
};

// Annotated reader/writer mutex (std::shared_mutex wrapper). Both shared
// and exclusive acquisitions feed the lock-order detector: a reader inside
// one lock and a writer inside another deadlock just as readily as two
// writers.
class DAC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* name) : name_(name) {}
  ~SharedMutex() { lockorder::on_destroy(this); }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() DAC_ACQUIRE() {
    lockorder::on_acquire(this, name_);
    mu_.lock();
  }
  void unlock() DAC_RELEASE() {
    lockorder::on_release(this);
    mu_.unlock();
  }
  void lock_shared() DAC_ACQUIRE_SHARED() {
    lockorder::on_acquire(this, name_);
    mu_.lock_shared();
  }
  void unlock_shared() DAC_RELEASE_SHARED() {
    lockorder::on_release(this);
    mu_.unlock_shared();
  }

  [[nodiscard]] const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;  // NOLINT-DACSCHED(raw-sync)
  const char* name_ = "shared_mutex";
};

// RAII exclusive (writer) lock on a SharedMutex.
class DAC_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) DAC_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
  }
  ~WriterLock() DAC_RELEASE() { mu_->unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* mu_;
};

// RAII shared (reader) lock on a SharedMutex.
class DAC_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) DAC_ACQUIRE_SHARED(mu) : mu_(&mu) {
    mu_->lock_shared();
  }
  ~ReaderLock() DAC_RELEASE() { mu_->unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

// Condition variable over dac::Mutex. Waits keep the lock-order detector's
// held stack accurate (the mutex is released while blocked) and never hand
// an annotated lock type into std internals, so the thread-safety analysis
// sees the caller holding the capability across the wait — which is the
// truth at every instant the caller can observe.
//
// Every wait is registered with the simtime clock (simtime/clock.hpp): in
// DiscreteEvent mode a timed wait parks until virtual time reaches the
// deadline instead of really timing out, and untimed waits by actor threads
// count toward the quiescence check that lets virtual time advance. In
// RealTime mode the registration is a no-op and the native path runs
// unchanged. Either way a wait can return spuriously — which the required
// predicate loop already absorbs.
//
// There are deliberately no predicate overloads: write the loop yourself so
// guarded reads stay visible to the analysis (see file header).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept {
    auto& clk = simtime::Clock::instance();
    if (clk.mode() == simtime::Mode::kDiscreteEvent) {
      // on_notify transfers runnability to every waiter parked on this cv
      // (the clock cannot know which one the OS would pick), so wake them
      // all — spurious wakeups are part of the cv contract, and a not-due
      // waiter re-blocks and re-counts on its next predicate check.
      clk.on_notify(&cv_);
      cv_.notify_all();
      return;
    }
    cv_.notify_one();
  }
  void notify_all() noexcept {
    simtime::Clock::instance().on_notify(&cv_);
    cv_.notify_all();
  }

  void wait(UniqueLock& lock) {
    Mutex& mu = *lock.mu_;
    lockorder::on_release(&mu);
    {
      std::unique_lock<std::mutex> native(  // NOLINT-DACSCHED(raw-sync)
          mu.mu_, std::adopt_lock);
      bool prefired = false;
      const auto w = simtime::Clock::instance().begin_wait(
          &cv_, &mu.mu_, std::nullopt, &prefired);
      cv_.wait(native);
      if (w != nullptr) {
        // end_wait may block handshaking with the clock's advancer, which
        // needs this mutex — so drop it first (spurious-wakeup equivalent).
        native.unlock();
        simtime::Clock::instance().end_wait(w);
        native.lock();
      }
      native.release();  // ownership stays with `lock`
    }
    lockorder::on_acquire(&mu, mu.name_);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    Mutex& mu = *lock.mu_;
    lockorder::on_release(&mu);
    std::cv_status status;
    {
      std::unique_lock<std::mutex> native(  // NOLINT-DACSCHED(raw-sync)
          mu.mu_, std::adopt_lock);
      status = timed_wait(native, deadline);
      native.release();
    }
    lockorder::on_acquire(&mu, mu.name_);
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return wait_until(lock, simtime::now() + timeout);
  }

 private:
  // The native wait, clock-registered. Steady-clock deadlines are simulation
  // deadlines and go through the simtime waiter protocol; any other clock
  // (none in this tree) stays native.
  template <typename Clock, typename Duration>
  std::cv_status timed_wait(
      std::unique_lock<std::mutex>& native,  // NOLINT-DACSCHED(raw-sync)
      const std::chrono::time_point<Clock, Duration>& deadline) {
    if constexpr (std::is_same_v<Clock, std::chrono::steady_clock>) {
      auto& clk = simtime::Clock::instance();
      bool prefired = false;
      const auto w = clk.begin_wait(
          &cv_, native.mutex(),
          std::chrono::time_point_cast<simtime::Duration>(deadline),
          &prefired);
      if (w != nullptr) {
        if (!prefired) cv_.wait(native);
        native.unlock();
        clk.end_wait(w);
        native.lock();
        return clk.now() >= deadline ? std::cv_status::timeout
                                     : std::cv_status::no_timeout;
      }
    }
    return cv_.wait_until(native, deadline);
  }

  std::condition_variable cv_;  // NOLINT-DACSCHED(raw-sync)
};

// A clock-visible std::latch replacement. count_down() notifies through
// dac::CondVar, so in discrete-event mode the clock hands the woken waiter
// its runnability before time can move (docs/SIMTIME.md). A native
// std::latch wake is invisible to the clock: between the wake and the
// waiter's next clock-visible action the world looks quiescent, and virtual
// time can jump a deadline the waiter was about to cancel.
class Latch {
 public:
  explicit Latch(std::ptrdiff_t count) : count_(count) {}
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void count_down() {
    ScopedLock lock(mu_);
    if (--count_ <= 0) cv_.notify_all();
  }

  void wait() {
    UniqueLock lock(mu_);
    while (count_ > 0) cv_.wait(lock);
  }

  void arrive_and_wait() {
    UniqueLock lock(mu_);
    if (--count_ <= 0) {
      cv_.notify_all();
      return;
    }
    while (count_ > 0) cv_.wait(lock);
  }

 private:
  Mutex mu_{"util.latch"};
  CondVar cv_;
  std::ptrdiff_t count_ DAC_GUARDED_BY(mu_);
};

}  // namespace dac
