// Small statistics helpers for the benchmark harness and schedule metrics:
// online mean/variance (Welford) plus a sample set with percentiles. All
// figures in the paper report means over 10 trials; Summary gives us mean,
// stddev, min/max and percentiles from the recorded samples.
#pragma once

#include <cstddef>
#include <vector>

namespace dac::util {

// Online mean / variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Sample container with percentile queries (linear interpolation).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  void reserve(std::size_t n) { xs_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  // p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double sum() const;

  [[nodiscard]] const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
};

}  // namespace dac::util
