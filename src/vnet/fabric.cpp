#include "vnet/fabric.hpp"
#include "simtime/clock.hpp"

#include "trace/trace.hpp"
#include "util/logging.hpp"

namespace dac::vnet {

namespace {
const util::Logger kLog("fabric");
}

Fabric::Fabric(NetworkModel model)
    : model_(model), jitter_rng_(model.jitter_seed) {
  // Actor handoff: registered before the thread exists so the clock never
  // undercounts runnable actors (see simtime/clock.hpp).
  simtime::Clock::instance().actor_started();
  thread_ = std::thread([this] {
    simtime::AdoptScope actor;
    delivery_loop();
  });
}

Fabric::~Fabric() { shutdown(); }

void Fabric::register_mailbox(const Address& addr, MailboxPtr box) {
  ScopedLock lock(boxes_mu_);
  boxes_[addr] = std::move(box);
}

void Fabric::unregister_mailbox(const Address& addr) {
  ScopedLock lock(boxes_mu_);
  boxes_.erase(addr);
}

void Fabric::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  ScopedLock lock(injector_mu_);
  injector_ = std::move(injector);
}

void Fabric::send(Message msg) {
  const bool same_node = msg.from.node == msg.to.node;
  bytes_sent_.fetch_add(msg.payload.size(), std::memory_order_relaxed);

  FaultDecision fault;
  {
    std::shared_ptr<FaultInjector> injector;
    {
      ScopedLock lock(injector_mu_);
      injector = injector_;
    }
    if (injector) {
      fault = injector->on_message(msg.from.node, msg.to.node, msg.type,
                                   msg.payload.size());
    }
  }
  if (fault.drop) {
    dropped_injected_.fetch_add(1, std::memory_order_relaxed);
    kLog.debug("fault injection: dropped message {} -> {} (type {})",
               msg.from.str(), msg.to.str(), msg.type);
    return;
  }

  {
    ScopedLock lock(mu_);
    if (stop_) return;
    const auto now = simtime::now();
    std::chrono::steady_clock::time_point deliver_at;
    if (same_node) {
      deliver_at = now + model_.delay(msg.payload.size(), /*same_node=*/true);
    } else {
      // Sender-NIC bandwidth model: transmissions from one node serialize,
      // so a burst of pipelined chunks drains at link rate instead of
      // arriving simultaneously.
      const auto wire =
          std::chrono::nanoseconds(static_cast<long long>(
              static_cast<double>(msg.payload.size()) /
              model_.bytes_per_second * 1e9));
      auto& link_free = link_free_[msg.from.node];
      const auto depart = std::max(now, link_free);
      link_free = depart + wire;
      deliver_at = depart + wire +
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       model_.latency);
      if (model_.jitter.count() > 0) {
        std::uniform_int_distribution<long long> dist(
            0, std::chrono::duration_cast<std::chrono::nanoseconds>(
                   model_.jitter)
                   .count());
        deliver_at += std::chrono::nanoseconds(dist(jitter_rng_));
      }
    }
    deliver_at += fault.extra_delay;
    if (fault.duplicate) {
      duplicated_.fetch_add(1, std::memory_order_relaxed);
      // The copy trails the original by one latency so the receiver sees a
      // retransmission, not a tie.
      enqueue_locked(msg, deliver_at +
                              std::chrono::duration_cast<
                                  std::chrono::nanoseconds>(model_.latency));
    }
    enqueue_locked(std::move(msg), deliver_at);
  }
  cv_.notify_one();
}

void Fabric::enqueue_locked(Message msg,
                            std::chrono::steady_clock::time_point deliver_at) {
  if (simtime::Clock::instance().mode() == simtime::Mode::kDiscreteEvent) {
    // Quantize delivery instants to a coarse grid: concurrent sends land a
    // few nanoseconds apart (NIC-serialization offsets), and each distinct
    // instant would cost one full clock advance + fabric wakeup. Rounding up
    // lets one advance drain the whole grid slot — at 1,000-node scale this
    // is the difference between minutes and seconds of wall time. Round-up
    // is monotone, so per-pair FIFO (clamped below) is unaffected; ties
    // across pairs break by send seq, deterministically.
    constexpr std::chrono::nanoseconds kGrid(10'000);  // 10 us
    const auto rem = deliver_at.time_since_epoch() % kGrid;
    if (rem.count() != 0) deliver_at += kGrid - rem;
  }
  auto& last = pair_last_[{msg.from, msg.to}];
  if (deliver_at < last) deliver_at = last;
  last = deliver_at;
  pending_.push(Pending{deliver_at, next_seq_++, std::move(msg)});
}

void Fabric::shutdown() {
  {
    ScopedLock lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    // The join is invisible to the simtime clock; count as quiescent so a
    // DiscreteEvent teardown cannot stall virtual time.
    simtime::ExternalWaitScope quiescent;
    thread_.join();
  }
}

void Fabric::delivery_loop() {
  UniqueLock lock(mu_);
  while (true) {
    if (stop_) return;
    if (pending_.empty()) {
      while (!stop_ && pending_.empty()) cv_.wait(lock);
      continue;
    }
    const auto deadline = pending_.top().deliver_at;
    if (simtime::now() < deadline) {
      // Plain wait_until: a notify (new message, possibly with an earlier
      // deadline) or the timeout both re-enter the loop and recompute top().
      cv_.wait_until(lock, deadline);
      continue;
    }
    Message msg = std::move(const_cast<Pending&>(pending_.top()).msg);
    // priority_queue::pop, not a BlockingQueue: never blocks.
    pending_.pop();  // NOLINT-DACSCHED(blocking-under-lock)
    lock.unlock();
    deliver(std::move(msg));
    lock.lock();
  }
}

void Fabric::deliver(Message msg) {
  // Every delivery advances the virtual clock, so span ticks taken by the
  // receiver are ordered after the ticks of everything the sender did
  // before sending (trace happens-before assertions lean on this).
  trace::vclock_tick();
  const Address to = msg.to;
  const auto type = msg.type;
  MailboxPtr box;
  {
    ScopedLock lock(boxes_mu_);
    if (auto it = boxes_.find(to); it != boxes_.end()) box = it->second;
  }
  bool pushed = false;
  if (box) {
    // Count before the push: a receiver that already popped the message
    // must never observe a delivered counter that excludes it.
    delivered_.fetch_add(1, std::memory_order_relaxed);
    pushed = box->push(std::move(msg));
    if (!pushed) delivered_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (!pushed) {
    dropped_closed_.fetch_add(1, std::memory_order_relaxed);
    const char* reason = box ? "mailbox closed" : "unregistered address";
    bool first_for_node;
    {
      ScopedLock lock(drops_mu_);
      ++drops_to_[to];
      first_for_node = warned_nodes_.insert(to.node).second;
    }
    if (first_for_node) {
      // One warning per destination node; subsequent drops only count.
      // Per-port dedup would spam: every retransmitted call leaves a
      // duplicate reply addressed to a caller's already-closed ephemeral
      // port. A steady stream to one address still shows in drops_to().
      kLog.warn("dropping message(s) to {} ({}; first type {})", to.str(),
                reason, type);
    } else {
      kLog.debug("dropped message to {} ({})", to.str(), reason);
    }
  }
}

std::uint64_t Fabric::drops_to(const Address& addr) const {
  ScopedLock lock(drops_mu_);
  if (auto it = drops_to_.find(addr); it != drops_to_.end()) return it->second;
  return 0;
}

}  // namespace dac::vnet
