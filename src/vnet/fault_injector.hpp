// Injection hook of the fabric. The fault subsystem (src/faults/) implements
// this interface; vnet only defines it so the dependency points upward
// (faults -> vnet) while the fabric stays ignorant of plans, seeds and
// schedules. A null injector (the default) means a perfectly healthy
// network.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "vnet/message.hpp"

namespace dac::vnet {

// What the injector decided for one message. `drop` wins over everything;
// `duplicate` enqueues a second copy after the first; `extra_delay` is added
// on top of the NetworkModel delay (delaying one pair's stream reorders it
// relative to other pairs — per-pair FIFO is a transport guarantee and is
// preserved).
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  std::chrono::nanoseconds extra_delay{0};
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  // Called by the fabric for every message passed to send(), before any
  // delay is charged. Must be thread-safe: senders call concurrently.
  virtual FaultDecision on_message(NodeId from, NodeId to,
                                   std::uint32_t type,
                                   std::size_t payload_bytes) = 0;
};

}  // namespace dac::vnet
