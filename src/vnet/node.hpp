// Virtual cluster nodes and the processes (daemons, job scripts, accelerator
// back-ends) that run on them. A Process is a thread pinned to a node with
// its own environment block and a cooperative stop token: request_stop()
// closes the process's endpoints so its blocking recv() loops drain and
// return, which is how a pbs_mom "kills the tasks" of a departing job.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "util/sync.hpp"
#include "vnet/fabric.hpp"
#include "vnet/message.hpp"

namespace dac::vnet {

class Node;
class Process;

// RAII handle to a fabric address: registers a mailbox on construction and
// unregisters + closes it on destruction. All daemon communication goes
// through endpoints.
class Endpoint {
 public:
  Endpoint(Fabric& fabric, Address addr);
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  [[nodiscard]] const Address& address() const { return addr_; }

  void send(const Address& to, std::uint32_t type, util::Bytes payload);

  // Blocks; nullopt once the endpoint is closed and drained.
  std::optional<Message> recv();
  std::optional<Message> recv_for(std::chrono::milliseconds timeout);
  std::optional<Message> try_recv();

  // Closes the mailbox: pending messages remain poppable, new sends drop.
  void close();
  [[nodiscard]] bool closed() const;

  // Weak handle used by the owning Process to close this endpoint on kill.
  [[nodiscard]] std::weak_ptr<Mailbox> mailbox_weak() const { return box_; }

 private:
  Fabric& fabric_;
  Address addr_;
  MailboxPtr box_;
};

struct SpawnOptions {
  std::string name = "proc";
  // If set, overrides the node's default process start delay (models daemon
  // startup cost — dominant in the paper's Figure 7(a) waiting time).
  std::optional<std::chrono::microseconds> start_delay;
  std::map<std::string, std::string> env;
};

// A process: one thread bound to a node. Entry functions receive the Process
// and use it to open endpoints, read env, and check for stop requests.
class Process {
 public:
  using Entry = std::function<void(Process&)>;

  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] Node& node() const { return node_; }
  [[nodiscard]] std::uint64_t pid() const { return pid_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  // Opens a fabric endpoint owned by this process; closed on request_stop().
  std::unique_ptr<Endpoint> open_endpoint();

  // Registers an endpoint created elsewhere (e.g. by an MPI runtime before
  // the process thread starts) so request_stop() also closes it.
  void adopt_mailbox(std::weak_ptr<Mailbox> box);

  [[nodiscard]] std::optional<std::string> getenv(const std::string& key) const;
  void setenv(const std::string& key, std::string value);

  [[nodiscard]] bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }
  // Cooperative kill: sets the stop flag and closes all owned endpoints.
  void request_stop();

  [[nodiscard]] bool finished() const {
    return finished_.load(std::memory_order_acquire);
  }
  void join();

 private:
  friend class Node;
  Process(Node& node, std::uint64_t pid, SpawnOptions opts, Entry entry);
  void run(Entry entry, std::chrono::microseconds start_delay);

  Node& node_;
  std::uint64_t pid_;
  std::string name_;

  mutable Mutex env_mu_{"process.env"};
  std::map<std::string, std::string> env_ DAC_GUARDED_BY(env_mu_);

  Mutex eps_mu_{"process.endpoints"};
  std::vector<std::weak_ptr<Mailbox>> owned_boxes_ DAC_GUARDED_BY(eps_mu_);

  std::atomic<bool> stop_{false};
  std::atomic<bool> finished_{false};
  std::thread thread_;
};

using ProcessPtr = std::shared_ptr<Process>;

class Node {
 public:
  Node(NodeId id, std::string name, Fabric& fabric,
       std::chrono::microseconds default_start_delay);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& hostname() const { return name_; }
  [[nodiscard]] Fabric& fabric() const { return fabric_; }
  [[nodiscard]] std::chrono::microseconds default_start_delay() const {
    return default_start_delay_;
  }

  // Allocates a fresh port on this node (for non-process client endpoints,
  // e.g. test drivers acting as qsub).
  std::unique_ptr<Endpoint> open_endpoint();
  Address allocate_address();

  // Starts a process on this node. The entry runs after the (simulated)
  // process start delay.
  ProcessPtr spawn(SpawnOptions opts, Process::Entry entry);

  [[nodiscard]] std::vector<ProcessPtr> processes() const;
  [[nodiscard]] ProcessPtr find_process(std::uint64_t pid) const;

  // Requests stop on all processes (optionally filtered by name prefix) and
  // joins them.
  void stop_all_processes();
  // Drops finished processes from the table.
  void reap();

 private:
  friend class Process;

  NodeId id_;
  std::string name_;
  Fabric& fabric_;
  std::chrono::microseconds default_start_delay_;

  std::atomic<std::int32_t> next_port_{0};
  std::atomic<std::uint64_t> next_pid_{1};

  mutable Mutex procs_mu_{"node.procs"};
  std::map<std::uint64_t, ProcessPtr> procs_ DAC_GUARDED_BY(procs_mu_);
};

}  // namespace dac::vnet
