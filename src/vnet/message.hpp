// Wire-level message of the virtual cluster fabric. Every interaction between
// daemons in this system — MPI traffic, TORQUE server/mom RPCs, scheduler
// queries — is one of these. The `type` field is interpreted by the layer
// that owns the receiving endpoint (minimpi tags, torque request codes, ...).
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace dac::vnet {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

struct Address {
  NodeId node = kInvalidNode;
  std::int32_t port = -1;

  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;

  [[nodiscard]] bool valid() const { return node != kInvalidNode && port >= 0; }
  [[nodiscard]] std::string str() const {
    return std::to_string(node) + ":" + std::to_string(port);
  }
};

struct Message {
  Address from;
  Address to;
  std::uint32_t type = 0;
  util::Bytes payload;
};

}  // namespace dac::vnet
