#include "vnet/node.hpp"
#include "simtime/clock.hpp"

#include "util/error.hpp"
#include "util/logging.hpp"

namespace dac::vnet {

namespace {
const util::Logger kLog("vnet");
}

// ---------------------------------------------------------------- Endpoint

Endpoint::Endpoint(Fabric& fabric, Address addr)
    : fabric_(fabric), addr_(addr), box_(std::make_shared<Mailbox>()) {
  fabric_.register_mailbox(addr_, box_);
}

Endpoint::~Endpoint() {
  fabric_.unregister_mailbox(addr_);
  box_->close();
}

void Endpoint::send(const Address& to, std::uint32_t type,
                    util::Bytes payload) {
  fabric_.send(Message{addr_, to, type, std::move(payload)});
}

std::optional<Message> Endpoint::recv() { return box_->pop(); }

std::optional<Message> Endpoint::recv_for(std::chrono::milliseconds timeout) {
  return box_->pop_for(timeout);
}

std::optional<Message> Endpoint::try_recv() { return box_->try_pop(); }

void Endpoint::close() { box_->close(); }

bool Endpoint::closed() const { return box_->closed(); }

// ----------------------------------------------------------------- Process

Process::Process(Node& node, std::uint64_t pid, SpawnOptions opts, Entry entry)
    : node_(node), pid_(pid), name_(std::move(opts.name)),
      env_(std::move(opts.env)) {
  const auto delay = opts.start_delay.value_or(node.default_start_delay());
  simtime::Clock::instance().actor_started();
  thread_ = std::thread([this, entry = std::move(entry), delay]() mutable {
    simtime::AdoptScope actor;
    run(std::move(entry), delay);
  });
}

Process::~Process() { join(); }

void Process::run(Entry entry, std::chrono::microseconds start_delay) {
  if (start_delay.count() > 0) simtime::sleep_for(start_delay);
  if (!stop_requested()) {
    try {
      entry(*this);
    } catch (const util::StoppedError&) {
      // Cooperative kill while blocked in recv: normal daemon shutdown.
    } catch (const std::exception& e) {
      kLog.error("process '{}' (pid {}) died: {}", name_, pid_, e.what());
    }
  }
  finished_.store(true, std::memory_order_release);
  // Whoever reaps this thread resumes from a native join the clock cannot
  // see; hold advancement across that window (released in Process::join).
  simtime::Clock::instance().exit_hold();
}

std::unique_ptr<Endpoint> Process::open_endpoint() {
  auto ep =
      std::make_unique<Endpoint>(node_.fabric(), node_.allocate_address());
  {
    ScopedLock lock(eps_mu_);
    if (stop_.load(std::memory_order_acquire)) {
      ep->close();
    } else {
      owned_boxes_.push_back(ep->mailbox_weak());
    }
  }
  return ep;
}

void Process::adopt_mailbox(std::weak_ptr<Mailbox> box) {
  ScopedLock lock(eps_mu_);
  if (stop_.load(std::memory_order_acquire)) {
    if (auto b = box.lock()) b->close();
    return;
  }
  owned_boxes_.push_back(std::move(box));
}

std::optional<std::string> Process::getenv(const std::string& key) const {
  ScopedLock lock(env_mu_);
  if (auto it = env_.find(key); it != env_.end()) return it->second;
  return std::nullopt;
}

void Process::setenv(const std::string& key, std::string value) {
  ScopedLock lock(env_mu_);
  env_[key] = std::move(value);
}

void Process::request_stop() {
  stop_.store(true, std::memory_order_release);
  ScopedLock lock(eps_mu_);
  for (auto& weak : owned_boxes_) {
    if (auto box = weak.lock()) box->close();
  }
}

void Process::join() {
  if (thread_.joinable()) {
    {
      simtime::ExternalWaitScope quiescent;  // native join, clock-invisible
      thread_.join();
    }
    simtime::Clock::instance().exit_release();
  }
}

// -------------------------------------------------------------------- Node

Node::Node(NodeId id, std::string name, Fabric& fabric,
           std::chrono::microseconds default_start_delay)
    : id_(id), name_(std::move(name)), fabric_(fabric),
      default_start_delay_(default_start_delay) {}

Node::~Node() { stop_all_processes(); }

std::unique_ptr<Endpoint> Node::open_endpoint() {
  return std::make_unique<Endpoint>(fabric_, allocate_address());
}

Address Node::allocate_address() {
  return Address{id_, next_port_.fetch_add(1, std::memory_order_relaxed)};
}

ProcessPtr Node::spawn(SpawnOptions opts, Process::Entry entry) {
  const auto pid = next_pid_.fetch_add(1, std::memory_order_relaxed);
  auto proc = ProcessPtr(new Process(*this, pid, std::move(opts),
                                     std::move(entry)));
  ScopedLock lock(procs_mu_);
  procs_[pid] = proc;
  return proc;
}

std::vector<ProcessPtr> Node::processes() const {
  ScopedLock lock(procs_mu_);
  std::vector<ProcessPtr> out;
  out.reserve(procs_.size());
  for (const auto& [pid, p] : procs_) out.push_back(p);
  return out;
}

ProcessPtr Node::find_process(std::uint64_t pid) const {
  ScopedLock lock(procs_mu_);
  if (auto it = procs_.find(pid); it != procs_.end()) return it->second;
  return nullptr;
}

void Node::stop_all_processes() {
  std::vector<ProcessPtr> procs;
  {
    ScopedLock lock(procs_mu_);
    for (auto& [pid, p] : procs_) procs.push_back(p);
    procs_.clear();
  }
  for (auto& p : procs) p->request_stop();
  for (auto& p : procs) p->join();
}

void Node::reap() {
  ScopedLock lock(procs_mu_);
  for (auto it = procs_.begin(); it != procs_.end();) {
    if (it->second->finished()) {
      it->second->join();
      it = procs_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dac::vnet
