#include "vnet/cluster.hpp"

#include <stdexcept>

namespace dac::vnet {

Cluster::Cluster(ClusterTopology topo)
    : topo_(std::move(topo)), fabric_(std::make_unique<Fabric>(topo_.network)) {
  if (!topo_.hostnames.empty() &&
      topo_.hostnames.size() != topo_.node_count) {
    throw std::invalid_argument(
        "ClusterTopology: hostnames must match node_count");
  }
  nodes_.reserve(topo_.node_count);
  for (std::size_t i = 0; i < topo_.node_count; ++i) {
    std::string name = topo_.hostnames.empty()
                           ? topo_.hostname_prefix + std::to_string(i)
                           : topo_.hostnames[i];
    nodes_.push_back(std::make_unique<Node>(static_cast<NodeId>(i),
                                            std::move(name), *fabric_,
                                            topo_.process_start_delay));
  }
}

Cluster::~Cluster() { shutdown(); }

Node& Cluster::node(std::size_t index) {
  if (index >= nodes_.size()) {
    throw std::out_of_range("Cluster::node: index " + std::to_string(index) +
                            " out of range (" + std::to_string(nodes_.size()) +
                            " nodes)");
  }
  return *nodes_[index];
}

Node* Cluster::find_node(NodeId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) return nullptr;
  return nodes_[static_cast<std::size_t>(id)].get();
}

Node* Cluster::find_node(const std::string& hostname) {
  for (auto& n : nodes_) {
    if (n->hostname() == hostname) return n.get();
  }
  return nullptr;
}

void Cluster::shutdown() {
  if (!fabric_) return;
  for (auto& n : nodes_) n->stop_all_processes();
  fabric_->shutdown();
}

}  // namespace dac::vnet
