// Cost model of the simulated interconnect. The fabric charges each message
// a base per-hop latency plus a size-proportional serialization term; traffic
// that stays on one node pays only the loopback latency. These three knobs
// (plus the per-process start delay in ClusterConfig) are the calibration
// surface for reproducing the paper's absolute timing ranges.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace dac::vnet {

struct NetworkModel {
  std::chrono::microseconds latency{200};          // per-message, cross-node
  std::chrono::microseconds loopback_latency{20};  // same-node delivery
  double bytes_per_second = 1.0e9;                 // link bandwidth
  // Uniform per-message latency jitter in [0, jitter], applied by the fabric
  // to cross-node traffic from a deterministic RNG seeded with jitter_seed.
  // Zero (the default) disables it, keeping the seed timing model exact;
  // nonzero composes with the latency/bandwidth terms above, so fault-plan
  // delay injection and calibration share one mechanism.
  std::chrono::microseconds jitter{0};
  std::uint64_t jitter_seed = 0x6a69'7474'6572ULL;  // "jitter"

  [[nodiscard]] std::chrono::nanoseconds delay(std::size_t payload_bytes,
                                               bool same_node) const {
    using namespace std::chrono;
    if (same_node) return duration_cast<nanoseconds>(loopback_latency);
    const auto wire = nanoseconds(static_cast<long long>(
        static_cast<double>(payload_bytes) / bytes_per_second * 1e9));
    return duration_cast<nanoseconds>(latency) + wire;
  }
};

}  // namespace dac::vnet
