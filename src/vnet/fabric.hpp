// The message fabric: central delivery engine of the virtual cluster.
// Endpoints register a mailbox under an (node, port) address; send() charges
// the NetworkModel delay and a background thread delivers the message into
// the destination mailbox when its deadline passes. Messages to unregistered
// addresses are dropped, like packets to a dead host.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <random>
#include <set>
#include <thread>

#include "util/queue.hpp"
#include "util/sync.hpp"
#include "vnet/fault_injector.hpp"
#include "vnet/message.hpp"
#include "vnet/network_model.hpp"

namespace dac::vnet {

using Mailbox = util::BlockingQueue<Message>;
using MailboxPtr = std::shared_ptr<Mailbox>;

class Fabric {
 public:
  explicit Fabric(NetworkModel model);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Registers `box` under `addr`; replaces any previous registration.
  void register_mailbox(const Address& addr, MailboxPtr box);
  void unregister_mailbox(const Address& addr);

  // Queues `msg` for delivery after the modeled network delay.
  void send(Message msg);

  // Installs (or clears, with nullptr) the fault injector consulted on every
  // send. Injected drops/duplicates/delays are accounted separately from
  // closed-mailbox drops. Install before traffic starts: swapping injectors
  // under load is safe but the decision stream is then interleaving-defined.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);

  // Stops the delivery thread; undelivered messages are dropped.
  void shutdown();

  [[nodiscard]] const NetworkModel& model() const { return model_; }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  // Messages dropped on delivery because the destination was unregistered
  // or its mailbox closed — a dead/absent host, NOT an injected fault.
  // (Kept under the historical name; injected drops count separately so
  // drop-counter assertions stay meaningful under injection.)
  [[nodiscard]] std::uint64_t messages_dropped() const {
    return dropped_closed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t messages_dropped_closed() const {
    return dropped_closed_.load(std::memory_order_relaxed);
  }
  // Messages discarded at send() by the fault injector.
  [[nodiscard]] std::uint64_t messages_dropped_injected() const {
    return dropped_injected_.load(std::memory_order_relaxed);
  }
  // Extra copies enqueued by the fault injector.
  [[nodiscard]] std::uint64_t messages_duplicated() const {
    return duplicated_.load(std::memory_order_relaxed);
  }
  // Messages dropped on delivery to `addr` (unregistered or closed mailbox).
  [[nodiscard]] std::uint64_t drops_to(const Address& addr) const;
  [[nodiscard]] std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    std::chrono::steady_clock::time_point deliver_at;
    std::uint64_t seq;  // FIFO tie-break for equal deadlines
    Message msg;

    friend bool operator>(const Pending& a, const Pending& b) {
      if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
      return a.seq > b.seq;
    }
  };

  void delivery_loop();
  void deliver(Message msg);
  void enqueue_locked(Message msg,
                      std::chrono::steady_clock::time_point deliver_at)
      DAC_REQUIRES(mu_);

  NetworkModel model_;

  Mutex mu_{"fabric.pending"};
  CondVar cv_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending_
      DAC_GUARDED_BY(mu_);
  // Per (from, to) pair: last scheduled delivery time. Deliveries between a
  // pair of endpoints are FIFO regardless of message size, modeling a
  // stream transport (and matching MPI's per-pair ordering guarantee).
  std::map<std::pair<Address, Address>,
           std::chrono::steady_clock::time_point>
      pair_last_ DAC_GUARDED_BY(mu_);
  // Per source node: when its NIC finishes the current transmission.
  std::map<NodeId, std::chrono::steady_clock::time_point> link_free_
      DAC_GUARDED_BY(mu_);
  std::uint64_t next_seq_ DAC_GUARDED_BY(mu_) = 0;
  bool stop_ DAC_GUARDED_BY(mu_) = false;
  // Deterministic latency jitter (NetworkModel::jitter); drawn per cross-node
  // message under mu_, so a fixed send sequence yields a fixed jitter
  // sequence.
  std::mt19937_64 jitter_rng_ DAC_GUARDED_BY(mu_);

  // Injection hook (null = healthy network). Swapped under injector_mu_ so
  // installation is race-free; the shared_ptr copy is consulted outside it.
  mutable Mutex injector_mu_{"fabric.injector"};
  std::shared_ptr<FaultInjector> injector_ DAC_GUARDED_BY(injector_mu_);

  Mutex boxes_mu_{"fabric.boxes"};
  std::map<Address, MailboxPtr> boxes_ DAC_GUARDED_BY(boxes_mu_);

  // Drop accounting per destination; the first drop to a node warns, the
  // rest only count (drop storms would otherwise flood the log).
  mutable Mutex drops_mu_{"fabric.drops"};
  std::map<Address, std::uint64_t> drops_to_ DAC_GUARDED_BY(drops_mu_);
  std::set<NodeId> warned_nodes_ DAC_GUARDED_BY(drops_mu_);

  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_closed_{0};
  std::atomic<std::uint64_t> dropped_injected_{0};
  std::atomic<std::uint64_t> duplicated_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};

  std::thread thread_;
};

}  // namespace dac::vnet
