// The message fabric: central delivery engine of the virtual cluster.
// Endpoints register a mailbox under an (node, port) address; send() charges
// the NetworkModel delay and a background thread delivers the message into
// the destination mailbox when its deadline passes. Messages to unregistered
// addresses are dropped, like packets to a dead host.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <thread>

#include "util/queue.hpp"
#include "util/sync.hpp"
#include "vnet/message.hpp"
#include "vnet/network_model.hpp"

namespace dac::vnet {

using Mailbox = util::BlockingQueue<Message>;
using MailboxPtr = std::shared_ptr<Mailbox>;

class Fabric {
 public:
  explicit Fabric(NetworkModel model);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Registers `box` under `addr`; replaces any previous registration.
  void register_mailbox(const Address& addr, MailboxPtr box);
  void unregister_mailbox(const Address& addr);

  // Queues `msg` for delivery after the modeled network delay.
  void send(Message msg);

  // Stops the delivery thread; undelivered messages are dropped.
  void shutdown();

  [[nodiscard]] const NetworkModel& model() const { return model_; }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t messages_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  // Messages dropped on delivery to `addr` (unregistered or closed mailbox).
  [[nodiscard]] std::uint64_t drops_to(const Address& addr) const;
  [[nodiscard]] std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    std::chrono::steady_clock::time_point deliver_at;
    std::uint64_t seq;  // FIFO tie-break for equal deadlines
    Message msg;

    friend bool operator>(const Pending& a, const Pending& b) {
      if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
      return a.seq > b.seq;
    }
  };

  void delivery_loop();
  void deliver(Message msg);

  NetworkModel model_;

  Mutex mu_{"fabric.pending"};
  CondVar cv_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending_
      DAC_GUARDED_BY(mu_);
  // Per (from, to) pair: last scheduled delivery time. Deliveries between a
  // pair of endpoints are FIFO regardless of message size, modeling a
  // stream transport (and matching MPI's per-pair ordering guarantee).
  std::map<std::pair<Address, Address>,
           std::chrono::steady_clock::time_point>
      pair_last_ DAC_GUARDED_BY(mu_);
  // Per source node: when its NIC finishes the current transmission.
  std::map<NodeId, std::chrono::steady_clock::time_point> link_free_
      DAC_GUARDED_BY(mu_);
  std::uint64_t next_seq_ DAC_GUARDED_BY(mu_) = 0;
  bool stop_ DAC_GUARDED_BY(mu_) = false;

  Mutex boxes_mu_{"fabric.boxes"};
  std::map<Address, MailboxPtr> boxes_ DAC_GUARDED_BY(boxes_mu_);

  // Drop accounting per destination; the first drop to a node warns, the
  // rest only count (drop storms would otherwise flood the log).
  mutable Mutex drops_mu_{"fabric.drops"};
  std::map<Address, std::uint64_t> drops_to_ DAC_GUARDED_BY(drops_mu_);
  std::set<NodeId> warned_nodes_ DAC_GUARDED_BY(drops_mu_);

  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};

  std::thread thread_;
};

}  // namespace dac::vnet
