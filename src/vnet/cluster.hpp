// The virtual cluster: a fabric plus a fixed set of named nodes. This is the
// hardware layer every higher substrate (minimpi, torque, dacc) runs on. The
// paper's testbed — 8 nodes, one acting as head node — is an instance of
// this class.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "vnet/fabric.hpp"
#include "vnet/node.hpp"

namespace dac::vnet {

struct ClusterTopology {
  std::size_t node_count = 8;
  std::string hostname_prefix = "node";
  // If non-empty, overrides prefix+index naming; must have node_count
  // entries (e.g. "head", "cn0", "cn1", "ac0", ...).
  std::vector<std::string> hostnames;
  NetworkModel network;
  // Simulated process start cost (fork+exec+daemon init on a real system).
  std::chrono::microseconds process_start_delay{1000};
};

class Cluster {
 public:
  explicit Cluster(ClusterTopology topo);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Node& node(std::size_t index);
  [[nodiscard]] Node* find_node(NodeId id);
  [[nodiscard]] Node* find_node(const std::string& hostname);
  [[nodiscard]] Fabric& fabric() { return *fabric_; }
  [[nodiscard]] const ClusterTopology& topology() const { return topo_; }

  // Stops every process on every node, then the fabric.
  void shutdown();

 private:
  ClusterTopology topo_;
  std::unique_ptr<Fabric> fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace dac::vnet
