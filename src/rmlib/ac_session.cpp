#include "rmlib/ac_session.hpp"

#include <thread>

#include "trace/trace.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace dac::rmlib {

namespace {
const util::Logger kLog("rmlib");
}

AcSession::AcSession(minimpi::Proc& proc, AcSessionConfig config)
    : proc_(proc),
      config_(std::move(config)),
      ifl_(proc.process(), config_.server, config_.retry) {
  // Before AC_Init the session's communicator is the compute node alone.
  current_ = proc_.self();
  if (config_.transfer.reply_timeout.count() == 0) {
    config_.transfer.reply_timeout = config_.call_timeout;
  }
}

AcSession::~AcSession() {
  if (initialized_ && !finalized_) {
    try {
      ac_finalize();
    } catch (const std::exception& e) {
      kLog.warn("AC_Finalize in destructor failed: {}", e.what());
    }
  }
}

std::vector<AcHandle> AcSession::ac_init(InitTiming* timing) {
  if (initialized_) throw util::ProtocolError("AC_Init called twice");
  initialized_ = true;
  trace::SpanScope span("ac.init");
  span.note("job", std::to_string(config_.job));

  if (config_.static_count <= 0) {
    if (timing != nullptr) *timing = InitTiming{};
    return {};
  }

  const auto port =
      torque::static_ac_port_name(config_.job, config_.cn_index);

  // Waiting phase: the daemons publish the port only once all of them are
  // up (they barrier first), so polling for the port measures exactly the
  // "waiting until the daemons were prepared" share of Figure 7(a).
  util::Stopwatch watch;
  svc::Backoff backoff(config_.port_wait,
                       static_cast<std::uint64_t>(config_.job));
  while (!proc_.runtime().lookup_port(port)) {
    if (proc_.process().stop_requested()) throw util::StoppedError();
    backoff.sleep();
  }
  const double waiting_s = watch.lap_seconds();

  // Connect phase: MPI_Comm_connect + MPI_Intercomm_merge. The compute node
  // is the low group, so it gets rank 0 and the daemons ranks 1..x.
  minimpi::Comm inter = proc_.comm_connect(port, proc_.self(), 0);
  current_ = proc_.intercomm_merge(inter, /*high=*/false);
  const double connect_s = watch.lap_seconds();

  if (timing != nullptr) *timing = InitTiming{waiting_s, connect_s};
  kLog.debug("AC_Init: {} accelerator(s), wait {}s connect {}s",
             config_.static_count, waiting_s, connect_s);

  std::vector<AcHandle> handles;
  for (int rank = 1; rank < current_.size(); ++rank) {
    handles.push_back(AcHandle{rank});
  }
  return handles;
}

void AcSession::broadcast_control(int tag, const util::Bytes& payload) {
  for (int rank = 1; rank < current_.size(); ++rank) {
    proc_.send(current_, rank, tag, payload);
  }
}

GetResult AcSession::ac_get(int count, int min_count) {
  if (!initialized_) throw util::ProtocolError("AC_Get before AC_Init");
  trace::SpanScope span("ac.get");
  span.note("job", std::to_string(config_.job));
  span.note("count", std::to_string(count));
  GetResult result;

  // Batch-system phase: pbs_dynget() blocks until the server has scheduled
  // (or rejected) the request — the dominant share of Figure 7(b).
  util::Stopwatch watch;
  result.reply = ifl_.dynget(config_.job, count, min_count);
  result.batch_s = watch.lap_seconds();
  result.granted = result.reply.granted;
  result.client_id = result.reply.client_id;
  if (!result.granted) {
    // Rejected: the application continues with its current accelerator set
    // (paper §II-B).
    kLog.debug("AC_Get({}) rejected by the batch system", count);
    return result;
  }

  // MPI phase: every existing member participates in the spawn and merge so
  // the new accelerators are appended as ranks x+1..x+y (paper §III-D).
  std::vector<vnet::NodeId> placement(result.reply.host_nodes.begin(),
                                      result.reply.host_nodes.end());
  result.handles = attach_set(result.client_id, placement);
  result.mpi_s = watch.lap_seconds();
  span.note("granted", std::to_string(result.handles.size()));
  kLog.debug("AC_Get({}): granted {} (client {}, batch {}s, mpi {}s)", count,
             result.handles.size(), result.client_id, result.batch_s,
             result.mpi_s);
  return result;
}

std::vector<AcHandle> AcSession::attach_set(
    std::uint64_t client_id, const std::vector<vnet::NodeId>& placement) {
  trace::SpanScope span("ac.attach");
  span.note("client", std::to_string(client_id));
  util::ByteWriter prep;
  prep.put_string(config_.spawned_daemon_exe);
  broadcast_control(dacc::kCtlPrepSpawn, prep.bytes());

  minimpi::LaunchOptions opts;
  opts.proc_name = "acdaemon-dyn-j" + std::to_string(config_.job);
  opts.start_delay = config_.spawned_daemon_start_delay;
  minimpi::WorldHandle children;
  // Only the root's args reach the spawned world; ship the attach span's
  // context so the dynamic daemons' spans join this trace.
  util::ByteWriter spawn_args;
  spawn_args.put<std::uint64_t>(span.context().trace);
  spawn_args.put<std::uint64_t>(span.context().span);
  minimpi::Comm inter =
      proc_.comm_spawn(current_, 0, config_.spawned_daemon_exe,
                       std::move(spawn_args).take(), placement,
                       &children, opts);
  if (config_.tasks != nullptr) {
    for (std::size_t i = 0; i < children.processes.size(); ++i) {
      config_.tasks->add(config_.job, placement[i], children.processes[i],
                         client_id);
    }
  }

  Generation gen;
  gen.client_id = client_id;
  gen.inter = inter;
  gen.previous = current_;
  gen.first_rank = current_.size();
  gen.count = static_cast<int>(placement.size());

  current_ = proc_.intercomm_merge(inter, /*high=*/false);

  std::vector<AcHandle> handles;
  for (int i = 0; i < gen.count; ++i) {
    handles.push_back(AcHandle{gen.first_rank + i});
  }
  generations_.push_back(std::move(gen));
  return handles;
}

void AcSession::ac_free(std::uint64_t client_id) {
  trace::SpanScope span("ac.free");
  span.note("job", std::to_string(config_.job));
  span.note("client", std::to_string(client_id));
  release_newest(client_id, /*send_dynfree=*/true);
}

void AcSession::ac_report_lost(std::uint64_t client_id) {
  trace::SpanScope span("ac.report_lost");
  span.note("job", std::to_string(config_.job));
  span.note("client", std::to_string(client_id));
  if (generations_.empty() || generations_.back().client_id != client_id) {
    throw util::ProtocolError(
        "AC_ReportLost: dynamic sets are released as sets, newest first "
        "(client id " + std::to_string(client_id) + " is not the newest)");
  }
  Generation gen = std::move(generations_.back());
  generations_.pop_back();

  // Survivors pop the generation without any collective disconnect; dead
  // members never see the message (the fabric drops it) and live stragglers
  // of the lost set just exit.
  util::ByteWriter w;
  w.put<std::int32_t>(gen.first_rank);
  broadcast_control(dacc::kCtlAbandon, w.bytes());
  current_ = gen.previous;

  // Best-effort: the server reclaims slots of down accelerators on its own,
  // so the set may already be unknown — that is success, not failure.
  try {
    ifl_.dynfree(config_.job, client_id);
  } catch (const util::ProtocolError& e) {  // CallError / DeadlineError
    kLog.debug("AC_ReportLost: dynfree for client {} says '{}' (server "
               "already reclaimed)",
               client_id, e.what());
  }
  kLog.info("AC_ReportLost: abandoned client {} ({} accelerator(s))",
            client_id, gen.count);
}

std::vector<AcHandle> AcSession::ac_attach(
    std::uint64_t client_id, const std::vector<vnet::NodeId>& placement) {
  if (!initialized_) throw util::ProtocolError("AC_Attach before AC_Init");
  kLog.debug("AC_Attach: client {} ({} accelerator(s), elastic grow)",
             client_id, placement.size());
  return attach_set(client_id, placement);
}

void AcSession::ac_detach(std::uint64_t client_id) {
  trace::SpanScope span("ac.detach");
  span.note("job", std::to_string(config_.job));
  span.note("client", std::to_string(client_id));
  if (generations_.empty() || generations_.back().client_id != client_id) {
    throw util::ProtocolError(
        "AC_Detach: dynamic sets are released as sets, newest first "
        "(client id " + std::to_string(client_id) + " is not the newest)");
  }
  Generation gen = std::move(generations_.back());
  generations_.pop_back();

  // Survivors pop the generation; the released daemons exit on the abandon
  // control (or are killed by the mother superior's release protocol, which
  // the server started when the shrink committed).
  util::ByteWriter w;
  w.put<std::int32_t>(gen.first_rank);
  broadcast_control(dacc::kCtlAbandon, w.bytes());
  current_ = gen.previous;
  kLog.info("AC_Detach: dropped client {} ({} accelerator(s))", client_id,
            gen.count);
}

void AcSession::release_newest(std::uint64_t client_id, bool send_dynfree) {
  if (generations_.empty() || generations_.back().client_id != client_id) {
    throw util::ProtocolError(
        "AC_Free: dynamic sets are released as sets, newest first "
        "(client id " + std::to_string(client_id) + " is not the newest)");
  }
  Generation gen = std::move(generations_.back());
  generations_.pop_back();

  // Tell every daemon on the current communicator; released ones disconnect
  // and exit, survivors fall back to the previous communicator.
  util::ByteWriter w;
  w.put<std::int32_t>(gen.first_rank);
  broadcast_control(dacc::kCtlRelease, w.bytes());

  // MPI_Comm_disconnect from the released set (collective with both sides),
  // then pbs_dynfree() — the paper's ordering.
  proc_.disconnect(gen.inter);
  current_ = gen.previous;
  if (send_dynfree) ifl_.dynfree(config_.job, client_id);
  kLog.debug("AC_Free: released client {} ({} accelerator(s))", client_id,
             gen.count);
}

GetResult AcSession::ac_get_collective(const minimpi::Comm& cn_world,
                                       int count) {
  if (!initialized_) throw util::ProtocolError("AC_Get before AC_Init");
  GetResult result;
  util::Stopwatch watch;

  // Rank 0 collects every node's requirement and sends a single request for
  // the total (paper §III-D).
  util::ByteWriter contrib;
  contrib.put<std::int32_t>(count);
  auto counts = proc_.gather(cn_world, 0, contrib.bytes());

  util::Bytes packed;
  if (cn_world.rank == 0) {
    int total = 0;
    std::vector<std::int32_t> per_cn(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
      util::ByteReader r(counts[i]);
      per_cn[i] = r.get<std::int32_t>();
      total += per_cn[i];
    }
    auto reply = ifl_.dynget(config_.job, total);
    util::ByteWriter w;
    torque::put_dynget_reply(w, reply);
    w.put_vector<std::int32_t>(per_cn);
    packed = std::move(w).take();
  }
  proc_.bcast(cn_world, 0, packed);

  util::ByteReader r(packed);
  result.reply = torque::get_dynget_reply(r);
  const auto per_cn = r.get_vector<std::int32_t>();
  result.granted = result.reply.granted;
  result.client_id = result.reply.client_id;
  result.batch_s = watch.lap_seconds();
  if (!result.granted) return result;  // all-or-nothing

  // Each compute node attaches its slice of the allocated hosts.
  std::size_t offset = 0;
  for (int rank = 0; rank < cn_world.rank; ++rank) {
    offset += static_cast<std::size_t>(per_cn[static_cast<std::size_t>(rank)]);
  }
  std::vector<vnet::NodeId> placement;
  for (int i = 0; i < count; ++i) {
    placement.push_back(result.reply.host_nodes[offset + i]);
  }
  if (count > 0) {
    result.handles = attach_set(result.client_id, placement);
  }
  result.mpi_s = watch.lap_seconds();
  return result;
}

void AcSession::ac_free_collective(const minimpi::Comm& cn_world,
                                   std::uint64_t client_id) {
  // Every node releases its slice; the single pbs_dynfree goes out once all
  // of them disconnected (they share one client-id).
  if (!generations_.empty() &&
      generations_.back().client_id == client_id) {
    release_newest(client_id, /*send_dynfree=*/false);
  }
  proc_.barrier(cn_world);
  if (cn_world.rank == 0) ifl_.dynfree(config_.job, client_id);
}

void AcSession::ac_finalize() {
  if (!initialized_ || finalized_) return;
  finalized_ = true;
  trace::SpanScope span("ac.finalize");
  span.note("job", std::to_string(config_.job));
  if (current_.size() > 1) {
    broadcast_control(dacc::kCtlShutdown, {});
    proc_.barrier(current_);
  }
  generations_.clear();
  current_ = proc_.self();
  kLog.debug("AC_Finalize done");
}

std::vector<AcHandle> AcSession::handles() const {
  std::vector<AcHandle> out;
  for (int rank = 1; rank < current_.size(); ++rank) {
    out.push_back(AcHandle{rank});
  }
  return out;
}

void AcSession::check_handle(AcHandle ac) const {
  if (!initialized_ || finalized_ || !ac.valid() ||
      ac.rank >= current_.size()) {
    throw util::ProtocolError("invalid accelerator handle");
  }
}

gpusim::DevicePtr AcSession::ac_mem_alloc(AcHandle ac, std::uint64_t size) {
  check_handle(ac);
  return dacc::frontend::mem_alloc(proc_, current_, ac.rank, size,
                                   config_.call_timeout);
}

void AcSession::ac_mem_free(AcHandle ac, gpusim::DevicePtr ptr) {
  check_handle(ac);
  dacc::frontend::mem_free(proc_, current_, ac.rank, ptr,
                           config_.call_timeout);
}

void AcSession::ac_memcpy_h2d(AcHandle ac, gpusim::DevicePtr dst,
                              std::span<const std::byte> src) {
  check_handle(ac);
  dacc::frontend::memcpy_h2d(proc_, current_, ac.rank, dst, src,
                             config_.transfer);
}

util::Bytes AcSession::ac_memcpy_d2h(AcHandle ac, gpusim::DevicePtr src,
                                     std::uint64_t size) {
  check_handle(ac);
  return dacc::frontend::memcpy_d2h(proc_, current_, ac.rank, src, size,
                                    config_.transfer);
}

dacc::KernelHandle AcSession::ac_kernel_create(AcHandle ac,
                                               const std::string& name) {
  check_handle(ac);
  return dacc::frontend::kernel_create(proc_, current_, ac.rank, name,
                                       config_.call_timeout);
}

void AcSession::ac_kernel_set_args(AcHandle ac, dacc::KernelHandle kernel,
                                   util::Bytes args) {
  check_handle(ac);
  dacc::frontend::kernel_set_args(proc_, current_, ac.rank, kernel,
                                  std::move(args), config_.call_timeout);
}

void AcSession::ac_kernel_run(AcHandle ac, dacc::KernelHandle kernel,
                              gpusim::Dim3 grid, gpusim::Dim3 block) {
  check_handle(ac);
  dacc::frontend::kernel_run(proc_, current_, ac.rank, kernel, grid, block,
                             config_.call_timeout);
}

dacc::frontend::DeviceInfo AcSession::ac_device_info(AcHandle ac) {
  check_handle(ac);
  return dacc::frontend::device_info(proc_, current_, ac.rank,
                                     config_.call_timeout);
}

}  // namespace dac::rmlib
