// The resource-management library of the paper (§II-C, Listing 1): the
// compute-node side of accelerator allocation. An AcSession is created by a
// job process on its compute node and provides:
//
//   AC_Init()      — connect to the statically allocated daemons through the
//                    published port (MPI_Comm_connect/accept), merge into the
//                    intra-communicator where the compute node is rank 0 and
//                    the accelerators ranks 1..x. Reports the waiting/connect
//                    time split of Figure 7(a).
//   AC_Get(y)      — pbs_dynget() to the server (blocking); on grant,
//                    MPI_Comm_spawn the daemons on the allocated hosts with
//                    all existing members participating, then
//                    MPI_Intercomm_merge (new ranks x+1..x+y). Reports the
//                    batch-system/MPI time split of Figure 7(b). A rejection
//                    leaves the session unchanged (granted == false).
//   AC_Free(id)    — MPI_Comm_disconnect from the set, then pbs_dynfree().
//                    Sets are released LIFO (newest first), reflecting the
//                    paper's set-wise release semantics.
//   AC_Finalize()  — shut down every associated daemon and release state.
//
// plus the handle-based computation API of Listing 1 (acMemAlloc, acMemCpy,
// acKernelCreate/SetArgs/Run, acMemFree).
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dacc/daemon.hpp"
#include "dacc/frontend.hpp"
#include "minimpi/proc.hpp"
#include "svc/backoff.hpp"
#include "torque/ifl.hpp"
#include "torque/launch_info.hpp"
#include "torque/task_registry.hpp"

namespace dac::rmlib {

// Handle to one accelerator: its rank in the session's current merged
// communicator (stable across growth; the paper's unique handle).
struct AcHandle {
  int rank = -1;
  [[nodiscard]] bool valid() const { return rank >= 1; }
};

struct AcSessionConfig {
  torque::JobId job = torque::kInvalidJob;
  int cn_index = 0;        // this compute node's index within the job
  int static_count = 0;    // x = statically allocated accelerators
  vnet::Address server;
  std::string spawned_daemon_exe = dacc::kSpawnedDaemonExe;
  // Startup cost of spawned daemons (paper: MPI runtime starts them in
  // parallel, so the MPI share of Figure 7(b) stays flat).
  std::chrono::microseconds spawned_daemon_start_delay{500};
  dacc::TransferOptions transfer;
  // Optional: lets dynamically spawned daemons be killed by DISJOIN_JOB.
  torque::TaskRegistry* tasks = nullptr;
  // Retry policy for the session's IFL calls to the server (dynget/dynfree;
  // the server deduplicates retransmits, so these are retry-safe).
  svc::RetryPolicy retry;
  // Reply-wait bound for every computation call (acMemAlloc, acKernelRun,
  // ...). Zero waits forever; nonzero turns a dead accelerator into
  // AcError(kNodeLost), after which the app calls ac_report_lost() and may
  // AC_Get a replacement. Copied into `transfer.reply_timeout` too unless
  // that is set explicitly.
  std::chrono::milliseconds call_timeout{0};
  // Backoff while polling for the static daemons' published port.
  svc::BackoffPolicy port_wait{std::chrono::microseconds(100), 2.0,
                               std::chrono::microseconds(2000), 0.0};
};

struct InitTiming {
  double waiting_s = 0.0;  // until the daemons' port appeared (daemons ready)
  double connect_s = 0.0;  // MPI connect + merge
  [[nodiscard]] double total_s() const { return waiting_s + connect_s; }
};

struct GetResult {
  bool granted = false;
  std::uint64_t client_id = 0;
  std::vector<AcHandle> handles;   // the y new accelerators
  torque::DynGetReply reply;       // raw server reply (incl. timing split)
  double batch_s = 0.0;            // pbs_dynget round trip
  double mpi_s = 0.0;              // spawn + merge
  [[nodiscard]] double total_s() const { return batch_s + mpi_s; }
};

class AcSession {
 public:
  AcSession(minimpi::Proc& proc, AcSessionConfig config);
  ~AcSession();

  AcSession(const AcSession&) = delete;
  AcSession& operator=(const AcSession&) = delete;

  // ---- resource management API (paper naming) -------------------------
  std::vector<AcHandle> ac_init(InitTiming* timing = nullptr);
  [[nodiscard]] GetResult ac_get(int count) { return ac_get(count, count); }
  // Partial-allocation extension (paper future work §VI): accepts any grant
  // in [min_count, count]; the number of handles returned tells the caller
  // what it actually received.
  [[nodiscard]] GetResult ac_get(int count, int min_count);
  void ac_free(std::uint64_t client_id);
  // Releases the newest dynamic set after its accelerators died (the
  // computation API threw AcError(kNodeLost)). Unlike AC_Free this never
  // performs the collective disconnect — dead peers would hang it — and
  // tolerates a failing dynfree (the server may have reclaimed the slots
  // already). The session falls back to the previous communicator, after
  // which AC_Get can acquire a replacement set.
  void ac_report_lost(std::uint64_t client_id);
  void ac_finalize();

  // ---- elastic negotiation (src/elastic) ------------------------------
  // Attaches a dynamic set the batch system granted WITHOUT a pbs_dynget —
  // an accepted elastic grow offer: the kElastReconfig message carries the
  // client id and placement, and the slots are already accounted to the job.
  // Spawns the daemons and merges them in exactly like AC_Get's MPI phase.
  std::vector<AcHandle> ac_attach(std::uint64_t client_id,
                                  const std::vector<vnet::NodeId>& placement);
  // Drops the newest dynamic set after the batch system reclaimed it — an
  // accepted elastic shrink offer. Like AC_Free this pops the generation,
  // but no pbs_dynfree is sent (the server releases the slots itself) and
  // no collective disconnect runs (the moms may already be tearing the
  // daemons down; a blocking collective with dying peers would hang).
  void ac_detach(std::uint64_t client_id);

  // Collective AC_Get over the job's compute-node world (paper §III-D):
  // rank 0 aggregates every node's count into a single pbs_dynget, so the
  // server handles one request instead of k serialized ones. All-or-nothing;
  // every participant shares one client-id and must release collectively.
  // Nodes may pass count 0 (they still participate in the collective).
  [[nodiscard]] GetResult ac_get_collective(const minimpi::Comm& cn_world,
                                            int count);
  void ac_free_collective(const minimpi::Comm& cn_world,
                          std::uint64_t client_id);

  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] int accelerator_count() const {
    return current_.size() - 1;
  }
  // Handles of every currently associated accelerator, rank order.
  [[nodiscard]] std::vector<AcHandle> handles() const;

  // ---- computation API (paper Listing 1) --------------------------------
  gpusim::DevicePtr ac_mem_alloc(AcHandle ac, std::uint64_t size);
  void ac_mem_free(AcHandle ac, gpusim::DevicePtr ptr);
  void ac_memcpy_h2d(AcHandle ac, gpusim::DevicePtr dst,
                     std::span<const std::byte> src);
  util::Bytes ac_memcpy_d2h(AcHandle ac, gpusim::DevicePtr src,
                            std::uint64_t size);
  dacc::KernelHandle ac_kernel_create(AcHandle ac, const std::string& name);
  void ac_kernel_set_args(AcHandle ac, dacc::KernelHandle kernel,
                          util::Bytes args);
  void ac_kernel_run(AcHandle ac, dacc::KernelHandle kernel,
                     gpusim::Dim3 grid, gpusim::Dim3 block);
  dacc::frontend::DeviceInfo ac_device_info(AcHandle ac);

  [[nodiscard]] const minimpi::Comm& current_comm() const { return current_; }

 private:
  struct Generation {
    std::uint64_t client_id = 0;
    minimpi::Comm inter;     // parent-side spawn intercomm
    minimpi::Comm previous;  // merged comm before this generation
    int first_rank = 0;      // first rank of the set in the merged comm
    int count = 0;
  };

  void check_handle(AcHandle ac) const;
  void broadcast_control(int tag, const util::Bytes& payload);
  // Spawns daemons on `placement` and merges them in as a new generation.
  std::vector<AcHandle> attach_set(std::uint64_t client_id,
                                   const std::vector<vnet::NodeId>& placement);
  void release_newest(std::uint64_t client_id, bool send_dynfree);

  minimpi::Proc& proc_;
  AcSessionConfig config_;
  torque::Ifl ifl_;
  minimpi::Comm current_;  // merged comm; rank 0 = this compute node
  std::vector<Generation> generations_;
  bool initialized_ = false;
  bool finalized_ = false;
};

}  // namespace dac::rmlib
