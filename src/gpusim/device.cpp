#include "gpusim/device.hpp"
#include "simtime/clock.hpp"

#include <algorithm>
#include <thread>

#include "util/logging.hpp"

namespace dac::gpusim {

namespace {
const util::Logger kLog("gpusim");
}

Device::Device(DeviceConfig config)
    : config_(std::move(config)), arena_(config_.memory_bytes) {
  free_list_.push_back(Block{0, arena_.size()});
}

DevicePtr Device::mem_alloc(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  // Align to 256 bytes like real device allocators.
  constexpr std::size_t kAlign = 256;
  bytes = (bytes + kAlign - 1) / kAlign * kAlign;

  ScopedLock lock(mu_);
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->size < bytes) continue;
    const std::size_t offset = it->offset;
    if (it->size == bytes) {
      free_list_.erase(it);
    } else {
      it->offset += bytes;
      it->size -= bytes;
    }
    allocated_[offset] = bytes;
    ++stats_.allocs;
    stats_.bytes_in_use += bytes;
    stats_.peak_bytes_in_use =
        std::max(stats_.peak_bytes_in_use, stats_.bytes_in_use);
    return offset;
  }
  throw DeviceError("out of device memory: requested " +
                    std::to_string(bytes) + " bytes");
}

void Device::mem_free(DevicePtr ptr) {
  ScopedLock lock(mu_);
  auto it = allocated_.find(static_cast<std::size_t>(ptr));
  if (it == allocated_.end()) {
    throw DeviceError("mem_free: invalid device pointer " +
                      std::to_string(ptr));
  }
  const Block freed{it->first, it->second};
  stats_.bytes_in_use -= freed.size;
  ++stats_.frees;
  allocated_.erase(it);

  // Insert sorted and coalesce with neighbours.
  auto pos = std::lower_bound(
      free_list_.begin(), free_list_.end(), freed,
      [](const Block& a, const Block& b) { return a.offset < b.offset; });
  pos = free_list_.insert(pos, freed);
  // Coalesce with next.
  if (auto next = std::next(pos); next != free_list_.end() &&
                                  pos->offset + pos->size == next->offset) {
    pos->size += next->size;
    free_list_.erase(next);
  }
  // Coalesce with previous.
  if (pos != free_list_.begin()) {
    auto prev = std::prev(pos);
    if (prev->offset + prev->size == pos->offset) {
      prev->size += pos->size;
      free_list_.erase(pos);
    }
  }
}

void Device::mem_reset() {
  ScopedLock lock(mu_);
  stats_.frees += allocated_.size();
  stats_.bytes_in_use = 0;
  allocated_.clear();
  free_list_.assign(1, Block{0, arena_.size()});
}

std::size_t Device::bytes_free() const {
  ScopedLock lock(mu_);
  std::size_t total = 0;
  for (const auto& b : free_list_) total += b.size;
  return total;
}

std::byte* Device::at(DevicePtr ptr, std::size_t bytes) {
  if (ptr == kNullPtr || ptr + bytes > arena_.size()) {
    throw DeviceError("device access out of bounds: ptr=" +
                      std::to_string(ptr) + " len=" + std::to_string(bytes));
  }
  return arena_.data() + ptr;
}

void Device::memcpy_h2d(DevicePtr dst, const void* src, std::size_t bytes) {
  std::memcpy(at(dst, bytes), src, bytes);
  ScopedLock lock(mu_);
  stats_.bytes_copied_in += bytes;
}

void Device::memcpy_d2h(void* dst, DevicePtr src, std::size_t bytes) {
  std::memcpy(dst, at(src, bytes), bytes);
  ScopedLock lock(mu_);
  stats_.bytes_copied_out += bytes;
}

void Device::memcpy_d2d(DevicePtr dst, DevicePtr src, std::size_t bytes) {
  std::memmove(at(dst, bytes), at(src, bytes), bytes);
}

void Device::memset_d(DevicePtr dst, std::byte value, std::size_t bytes) {
  std::fill_n(at(dst, bytes), bytes, value);
}

void Device::register_kernel(const std::string& name, Kernel kernel) {
  if (!kernel.fn) throw DeviceError("register_kernel: null function");
  ScopedLock lock(mu_);
  kernels_[name] = std::move(kernel);
}

bool Device::has_kernel(const std::string& name) const {
  ScopedLock lock(mu_);
  return kernels_.contains(name);
}

void Device::launch(const std::string& name, Dim3 grid, Dim3 block,
                    const util::Bytes& args) {
  Kernel kernel;
  {
    ScopedLock lock(mu_);
    auto it = kernels_.find(name);
    if (it == kernels_.end()) {
      throw DeviceError("launch: unknown kernel '" + name + "'");
    }
    kernel = it->second;
    ++stats_.kernels_launched;
  }
  KernelContext ctx(*this, grid, block, args);
  kernel.fn(ctx);
  if (kernel.cost && config_.time_scale > 0.0) {
    const auto cost = kernel.cost(ctx);
    const auto scaled = std::chrono::nanoseconds(static_cast<long long>(
        static_cast<double>(cost.count()) * config_.time_scale));
    if (scaled.count() > 0) simtime::sleep_for(scaled);
  }
  kLog.trace("kernel '{}' <<<{},{}>>> done", name, grid.total(),
             block.total());
}

DeviceStats Device::stats() const {
  ScopedLock lock(mu_);
  return stats_;
}

}  // namespace dac::gpusim
