// Streams and events: in-order asynchronous work queues on a simulated
// device, mirroring cuStream/cuEvent. These are what the latency-hiding
// techniques the paper invokes (double buffering, overlapping transfers
// with kernel execution, §I/§II-C) are built from on the accelerator side.
#pragma once

#include <functional>
#include <memory>
#include <thread>

#include "simtime/clock.hpp"
#include "gpusim/device.hpp"
#include "util/queue.hpp"
#include "util/sync.hpp"

namespace dac::gpusim {

// Completion marker recordable into a stream. wait() blocks until every
// operation enqueued before the record completed.
class Event {
 public:
  Event() : state_(std::make_shared<State>()) {}

  void wait() const {
    UniqueLock lock(state_->mu);
    while (!state_->done) state_->cv.wait(lock);
  }

  [[nodiscard]] bool query() const {
    ScopedLock lock(state_->mu);
    return state_->done;
  }

  // Completion timestamp; only meaningful after wait()/query() succeeded.
  [[nodiscard]] std::chrono::steady_clock::time_point when() const {
    ScopedLock lock(state_->mu);
    return state_->when;
  }

  // Seconds between two completed events.
  static double elapsed_seconds(const Event& start, const Event& stop) {
    return std::chrono::duration<double>(stop.when() - start.when()).count();
  }

 private:
  friend class Stream;
  struct State {
    Mutex mu{"event"};
    CondVar cv;
    bool done DAC_GUARDED_BY(mu) = false;
    std::chrono::steady_clock::time_point when DAC_GUARDED_BY(mu);
  };

  void fire() const {
    {
      ScopedLock lock(state_->mu);
      state_->done = true;
      state_->when = simtime::now();
    }
    state_->cv.notify_all();
  }

  std::shared_ptr<State> state_;
};

// An in-order asynchronous queue on one device. Operations run on the
// stream's worker thread; different streams overlap.
class Stream {
 public:
  explicit Stream(Device& device);
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  // The source buffer is copied at enqueue time (no lifetime requirement).
  void memcpy_h2d_async(DevicePtr dst, const void* src, std::size_t bytes);
  void memcpy_h2d_async(DevicePtr dst, util::Bytes data);
  // `dst` must stay valid until the stream reaches this operation.
  void memcpy_d2h_async(void* dst, DevicePtr src, std::size_t bytes);
  void launch_async(std::string kernel, Dim3 grid, Dim3 block,
                    util::Bytes args);
  void record(Event event);

  // Blocks until every enqueued operation completed. Rethrows the first
  // DeviceError raised by an async operation, if any.
  void synchronize();

  [[nodiscard]] Device& device() { return device_; }

 private:
  void enqueue(std::function<void()> op);

  Device& device_;
  util::BlockingQueue<std::function<void()>> queue_;

  Mutex mu_{"stream"};
  CondVar cv_;
  std::size_t pending_ DAC_GUARDED_BY(mu_) = 0;
  std::exception_ptr error_ DAC_GUARDED_BY(mu_);

  std::thread worker_;
};

}  // namespace dac::gpusim
