#include "gpusim/driver.hpp"

#include "util/logging.hpp"

namespace dac::gpusim::driver {

namespace {
const util::Logger kLog("gpusim.driver");

template <typename Fn>
Status guard(Fn&& fn) {
  try {
    fn();
    return Status::kSuccess;
  } catch (const DeviceError& e) {
    kLog.debug("driver call failed: {}", e.what());
    const std::string what = e.what();
    if (what.find("out of device memory") != std::string::npos) {
      return Status::kOutOfMemory;
    }
    if (what.find("unknown kernel") != std::string::npos) {
      return Status::kNotFound;
    }
    return Status::kInvalidValue;
  } catch (const std::exception& e) {
    kLog.warn("driver call failed unexpectedly: {}", e.what());
    return Status::kUnknown;
  }
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kSuccess: return "success";
    case Status::kOutOfMemory: return "out_of_memory";
    case Status::kInvalidValue: return "invalid_value";
    case Status::kNotFound: return "not_found";
    case Status::kUnknown: return "unknown";
    case Status::kNodeLost: return "node_lost";
  }
  return "?";
}

Status mem_alloc(Device& dev, std::size_t bytes, DevicePtr* out) {
  if (out == nullptr) return Status::kInvalidValue;
  return guard([&] { *out = dev.mem_alloc(bytes); });
}

Status mem_free(Device& dev, DevicePtr ptr) {
  return guard([&] { dev.mem_free(ptr); });
}

Status memcpy_h2d(Device& dev, DevicePtr dst, const void* src,
                  std::size_t bytes) {
  if (src == nullptr && bytes > 0) return Status::kInvalidValue;
  return guard([&] { dev.memcpy_h2d(dst, src, bytes); });
}

Status memcpy_d2h(Device& dev, void* dst, DevicePtr src, std::size_t bytes) {
  if (dst == nullptr && bytes > 0) return Status::kInvalidValue;
  return guard([&] { dev.memcpy_d2h(dst, src, bytes); });
}

Status launch_kernel(Device& dev, const std::string& name, Dim3 grid,
                     Dim3 block, const util::Bytes& args) {
  return guard([&] { dev.launch(name, grid, block, args); });
}

}  // namespace dac::gpusim::driver
