// Built-in compute kernels. Argument convention: serialized with ByteWriter
// in the order documented per kernel; buffers are DevicePtr (u64) and sizes
// are u64. Each kernel has a simple cost model proportional to its work so
// latency-hiding experiments see realistic compute/communication ratios.
#include "gpusim/device.hpp"

namespace dac::gpusim {

namespace {

std::chrono::nanoseconds per_element_cost(std::uint64_t elements,
                                          double ns_per_element) {
  return std::chrono::nanoseconds(
      static_cast<long long>(static_cast<double>(elements) * ns_per_element));
}

// args: dst(u64), a(u64), b(u64), n(u64) — dst[i] = a[i] + b[i]
void vector_add(KernelContext& ctx) {
  auto r = ctx.arg_reader();
  const auto dst = r.get<std::uint64_t>();
  const auto a = r.get<std::uint64_t>();
  const auto b = r.get<std::uint64_t>();
  const auto n = r.get<std::uint64_t>();
  auto* pd = ctx.span<double>(dst, n);
  const auto* pa = ctx.span<double>(a, n);
  const auto* pb = ctx.span<double>(b, n);
  for (std::uint64_t i = 0; i < n; ++i) pd[i] = pa[i] + pb[i];
}

// args: y(u64), x(u64), alpha(f64), n(u64) — y[i] += alpha * x[i]
void saxpy(KernelContext& ctx) {
  auto r = ctx.arg_reader();
  const auto y = r.get<std::uint64_t>();
  const auto x = r.get<std::uint64_t>();
  const auto alpha = r.get<double>();
  const auto n = r.get<std::uint64_t>();
  auto* py = ctx.span<double>(y, n);
  const auto* px = ctx.span<double>(x, n);
  for (std::uint64_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

// args: out(u64, 1 double), a(u64), b(u64), n(u64) — out = dot(a, b)
void dot(KernelContext& ctx) {
  auto r = ctx.arg_reader();
  const auto out = r.get<std::uint64_t>();
  const auto a = r.get<std::uint64_t>();
  const auto b = r.get<std::uint64_t>();
  const auto n = r.get<std::uint64_t>();
  const auto* pa = ctx.span<double>(a, n);
  const auto* pb = ctx.span<double>(b, n);
  double acc = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) acc += pa[i] * pb[i];
  *ctx.span<double>(out, 1) = acc;
}

// args: c(u64), a(u64), b(u64), m(u64), k(u64), n(u64)
// C[m x n] = A[m x k] * B[k x n], row-major
void matmul(KernelContext& ctx) {
  auto r = ctx.arg_reader();
  const auto c = r.get<std::uint64_t>();
  const auto a = r.get<std::uint64_t>();
  const auto b = r.get<std::uint64_t>();
  const auto m = r.get<std::uint64_t>();
  const auto k = r.get<std::uint64_t>();
  const auto n = r.get<std::uint64_t>();
  auto* pc = ctx.span<double>(c, m * n);
  const auto* pa = ctx.span<double>(a, m * k);
  const auto* pb = ctx.span<double>(b, k * n);
  for (std::uint64_t i = 0; i < m; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::uint64_t t = 0; t < k; ++t) {
        acc += pa[i * k + t] * pb[t * n + j];
      }
      pc[i * n + j] = acc;
    }
  }
}

// args: out(u64, 1 double), src(u64), n(u64) — out = sum(src)
void reduce_sum(KernelContext& ctx) {
  auto r = ctx.arg_reader();
  const auto out = r.get<std::uint64_t>();
  const auto src = r.get<std::uint64_t>();
  const auto n = r.get<std::uint64_t>();
  const auto* ps = ctx.span<double>(src, n);
  double acc = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) acc += ps[i];
  *ctx.span<double>(out, 1) = acc;
}

// args: dst(u64), value(f64), n(u64) — dst[i] = value
void fill(KernelContext& ctx) {
  auto r = ctx.arg_reader();
  const auto dst = r.get<std::uint64_t>();
  const auto value = r.get<double>();
  const auto n = r.get<std::uint64_t>();
  auto* pd = ctx.span<double>(dst, n);
  for (std::uint64_t i = 0; i < n; ++i) pd[i] = value;
}

std::uint64_t last_u64_arg(const KernelContext& ctx, int index_from_start) {
  auto r = ctx.arg_reader();
  std::uint64_t v = 0;
  for (int i = 0; i <= index_from_start; ++i) v = r.get<std::uint64_t>();
  return v;
}

}  // namespace

void register_builtin_kernels(Device& device) {
  device.register_kernel(
      "vector_add",
      Kernel{vector_add, [](const KernelContext& ctx) {
               return per_element_cost(last_u64_arg(ctx, 3), 0.5);
             }});
  device.register_kernel("saxpy", Kernel{saxpy, [](const KernelContext& ctx) {
                                           auto r = ctx.arg_reader();
                                           (void)r.get<std::uint64_t>();
                                           (void)r.get<std::uint64_t>();
                                           (void)r.get<double>();
                                           return per_element_cost(
                                               r.get<std::uint64_t>(), 0.5);
                                         }});
  device.register_kernel("dot", Kernel{dot, [](const KernelContext& ctx) {
                                         return per_element_cost(
                                             last_u64_arg(ctx, 3), 1.0);
                                       }});
  device.register_kernel(
      "matmul", Kernel{matmul, [](const KernelContext& ctx) {
                         auto r = ctx.arg_reader();
                         (void)r.get<std::uint64_t>();
                         (void)r.get<std::uint64_t>();
                         (void)r.get<std::uint64_t>();
                         const auto m = r.get<std::uint64_t>();
                         const auto k = r.get<std::uint64_t>();
                         const auto n = r.get<std::uint64_t>();
                         return per_element_cost(m * k * n, 0.2);
                       }});
  device.register_kernel(
      "reduce_sum", Kernel{reduce_sum, [](const KernelContext& ctx) {
                             return per_element_cost(last_u64_arg(ctx, 2),
                                                     0.5);
                           }});
  device.register_kernel("fill", Kernel{fill, nullptr});
}

}  // namespace dac::gpusim
