// Thin driver-level API over gpusim::Device, mirroring the CUDA driver API
// surface the paper's back-end daemon uses (cuMemAlloc / cuMemcpy* /
// cuLaunchKernel). Status codes instead of exceptions, because the daemon
// must translate failures into protocol error replies rather than die.
#pragma once

#include <string>

#include "gpusim/device.hpp"

namespace dac::gpusim::driver {

enum class Status : int {
  kSuccess = 0,
  kOutOfMemory = 1,
  kInvalidValue = 2,
  kNotFound = 3,
  kUnknown = 4,
  // The accelerator stopped answering (node crash / partition). Raised by
  // the DAC front-end, not the device: the app should release the set
  // (AC_ReportLost) and pbs_dynget a replacement.
  kNodeLost = 5,
};

[[nodiscard]] const char* status_name(Status s);

[[nodiscard]] Status mem_alloc(Device& dev, std::size_t bytes, DevicePtr* out);
[[nodiscard]] Status mem_free(Device& dev, DevicePtr ptr);
[[nodiscard]] Status memcpy_h2d(Device& dev, DevicePtr dst, const void* src,
                                std::size_t bytes);
[[nodiscard]] Status memcpy_d2h(Device& dev, void* dst, DevicePtr src,
                                std::size_t bytes);
[[nodiscard]] Status launch_kernel(Device& dev, const std::string& name,
                                   Dim3 grid, Dim3 block,
                                   const util::Bytes& args);

}  // namespace dac::gpusim::driver
