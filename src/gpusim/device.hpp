// Simulated accelerator device: a device-memory arena with a first-fit
// free-list allocator, a kernel registry, and synchronous execute/copy
// operations. Kernels are real C++ callables operating on device memory, so
// offloaded computations produce real results; an optional cost model makes
// kernel execution consume simulated time (for latency-hiding experiments).
//
// This plays the role of the CUDA-enabled GPU in the paper's accelerator
// (Figure 1(b)); the back-end daemon drives it through the thin driver API
// in gpusim/driver.hpp, as the paper's daemon drives the CUDA driver API.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/sync.hpp"

namespace dac::gpusim {

// Device memory handle (byte offset into the arena), like CUdeviceptr.
using DevicePtr = std::uint64_t;
inline constexpr DevicePtr kNullPtr = ~DevicePtr{0};

struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;

  [[nodiscard]] std::uint64_t total() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }
  friend bool operator==(const Dim3&, const Dim3&) = default;
};

class Device;

// Everything a kernel sees at launch: launch geometry, serialized args, and
// bounds-checked access to device memory.
class KernelContext {
 public:
  KernelContext(Device& device, Dim3 grid, Dim3 block, const util::Bytes& args)
      : device_(device), grid_(grid), block_(block), args_(args) {}

  [[nodiscard]] Dim3 grid() const { return grid_; }
  [[nodiscard]] Dim3 block() const { return block_; }
  [[nodiscard]] std::uint64_t thread_count() const {
    return grid_.total() * block_.total();
  }
  [[nodiscard]] const util::Bytes& args() const { return args_; }
  [[nodiscard]] util::ByteReader arg_reader() const {
    return util::ByteReader(args_);
  }

  // Typed device-memory access; throws DeviceError on out-of-bounds.
  template <typename T>
  [[nodiscard]] T* span(DevicePtr ptr, std::size_t count);

 private:
  Device& device_;
  Dim3 grid_;
  Dim3 block_;
  const util::Bytes& args_;
};

using KernelFn = std::function<void(KernelContext&)>;
// Returns the simulated execution time of a launch; nullopt = free.
using KernelCostFn =
    std::function<std::chrono::nanoseconds(const KernelContext&)>;

struct Kernel {
  KernelFn fn;
  KernelCostFn cost;  // may be null
};

class DeviceError : public std::runtime_error {
 public:
  explicit DeviceError(const std::string& what) : std::runtime_error(what) {}
};

struct DeviceConfig {
  std::size_t memory_bytes = 64u << 20;  // 64 MiB default arena
  std::string name = "SimGPU";
  // Scales every kernel cost model; 0 disables simulated compute time.
  double time_scale = 1.0;
};

struct DeviceStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t kernels_launched = 0;
  std::uint64_t bytes_copied_in = 0;
  std::uint64_t bytes_copied_out = 0;
  std::size_t bytes_in_use = 0;
  std::size_t peak_bytes_in_use = 0;
};

class Device {
 public:
  explicit Device(DeviceConfig config = {});

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceConfig& config() const { return config_; }

  // ---- memory ---------------------------------------------------------
  // First-fit allocation; throws DeviceError when out of memory.
  DevicePtr mem_alloc(std::size_t bytes);
  void mem_free(DevicePtr ptr);
  // Frees every outstanding allocation at once, returning the whole arena to
  // the free list (cudaDeviceReset analogue). Used when a daemon's set is
  // released or reclaimed so the next holder starts from a clean device.
  void mem_reset();
  [[nodiscard]] std::size_t bytes_free() const;

  void memcpy_h2d(DevicePtr dst, const void* src, std::size_t bytes);
  void memcpy_d2h(void* dst, DevicePtr src, std::size_t bytes);
  void memcpy_d2d(DevicePtr dst, DevicePtr src, std::size_t bytes);
  void memset_d(DevicePtr dst, std::byte value, std::size_t bytes);

  // Raw pointer into the arena with bounds check (used by KernelContext).
  [[nodiscard]] std::byte* at(DevicePtr ptr, std::size_t bytes);

  // ---- kernels ----------------------------------------------------------
  void register_kernel(const std::string& name, Kernel kernel);
  [[nodiscard]] bool has_kernel(const std::string& name) const;
  // Executes synchronously in the calling thread; sleeps for the modeled
  // cost (scaled by config.time_scale) if the kernel declares one.
  void launch(const std::string& name, Dim3 grid, Dim3 block,
              const util::Bytes& args);

  [[nodiscard]] DeviceStats stats() const;

 private:
  struct Block {
    std::size_t offset;
    std::size_t size;
  };

  DeviceConfig config_;
  std::vector<std::byte> arena_;

  mutable Mutex mu_{"device"};
  std::vector<Block> free_list_ DAC_GUARDED_BY(mu_);  // sorted by offset
  std::map<std::size_t, std::size_t> allocated_
      DAC_GUARDED_BY(mu_);  // offset -> size
  std::map<std::string, Kernel> kernels_ DAC_GUARDED_BY(mu_);
  DeviceStats stats_ DAC_GUARDED_BY(mu_);
};

template <typename T>
T* KernelContext::span(DevicePtr ptr, std::size_t count) {
  return reinterpret_cast<T*>(device_.at(ptr, count * sizeof(T)));
}

// Registers the built-in kernels (vector_add, saxpy, dot, matmul,
// reduce_sum, fill) on a device; used by the DAC back-end daemon and tests.
void register_builtin_kernels(Device& device);

}  // namespace dac::gpusim
