#include "gpusim/stream.hpp"

namespace dac::gpusim {

Stream::Stream(Device& device) : device_(device) {
  simtime::Clock::instance().actor_started();
  worker_ = std::thread([this] {
    simtime::AdoptScope actor;
    while (auto op = queue_.pop()) {
      try {
        (*op)();
      } catch (...) {
        ScopedLock lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      {
        ScopedLock lock(mu_);
        --pending_;
      }
      cv_.notify_all();
    }
  });
}

Stream::~Stream() {
  queue_.close();
  if (worker_.joinable()) {
    simtime::ExternalWaitScope quiescent;  // native join, clock-invisible
    worker_.join();
  }
}

void Stream::enqueue(std::function<void()> op) {
  {
    ScopedLock lock(mu_);
    ++pending_;
  }
  if (!queue_.push(std::move(op))) {
    ScopedLock lock(mu_);
    --pending_;
    throw DeviceError("stream is shut down");
  }
}

void Stream::memcpy_h2d_async(DevicePtr dst, const void* src,
                              std::size_t bytes) {
  memcpy_h2d_async(dst, util::to_bytes(src, bytes));
}

void Stream::memcpy_h2d_async(DevicePtr dst, util::Bytes data) {
  enqueue([this, dst, data = std::move(data)] {
    device_.memcpy_h2d(dst, data.data(), data.size());
  });
}

void Stream::memcpy_d2h_async(void* dst, DevicePtr src, std::size_t bytes) {
  enqueue([this, dst, src, bytes] { device_.memcpy_d2h(dst, src, bytes); });
}

void Stream::launch_async(std::string kernel, Dim3 grid, Dim3 block,
                          util::Bytes args) {
  enqueue([this, kernel = std::move(kernel), grid, block,
           args = std::move(args)] {
    device_.launch(kernel, grid, block, args);
  });
}

void Stream::record(Event event) {
  enqueue([event] { event.fire(); });
}

void Stream::synchronize() {
  UniqueLock lock(mu_);
  while (pending_ != 0) cv_.wait(lock);
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace dac::gpusim
