// Server-side bookkeeping of the elastic negotiation: which jobs registered
// an agent, and every offer in flight with its deadline and (for grow) the
// slot reservation it pins. The broker is pure state — the PbsServer does
// all messaging and NodeDb accounting — so the offer lifecycle
//
//   pending ──ack-accept──> committed (erased; shrink: draining until the
//        │                  mother superior's release completes)
//        ├──nack──────────> reverted (erased, capability cleared)
//        └──timeout────────> reverted (erased, capability cleared)
//
// can be tested exhaustively without a cluster. Not thread-safe: owned by
// the server and accessed only under its state lock.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "elastic/protocol.hpp"

namespace dac::elastic {

class Broker {
 public:
  enum class OfferState : std::uint8_t {
    kPending,   // offered, waiting for the agent's ack
    kDraining,  // shrink accepted; waiting for MS_RELEASE_DONE
  };

  struct OfferRecord {
    std::uint64_t id = 0;
    torque::JobId job = torque::kInvalidJob;
    OfferKind kind = OfferKind::kGrow;
    std::uint64_t client_id = 0;  // shrink: the dynamic set on offer
    std::vector<std::string> hosts;   // grow: reserved; shrink: set members
    std::vector<std::int32_t> nodes;  // vnet node ids, same order
    double deadline = 0.0;            // server seconds; pending offers only
    OfferState state = OfferState::kPending;
  };

  // Upserts the job's registration (kElastRegister). Re-registration
  // restores capability bits cleared by an earlier nack/timeout.
  void register_job(const Registration& reg);

  // The registration, or nullptr when the job never registered (or was
  // cancelled). Mutable access so the server can decrement the appetite.
  [[nodiscard]] const Registration* agent(torque::JobId job) const;

  // True while any offer (pending or draining) exists for the job.
  [[nodiscard]] bool offer_pending(torque::JobId job) const;

  // Inserts a new pending offer and returns its assigned id.
  std::uint64_t start_offer(OfferRecord rec);

  [[nodiscard]] OfferRecord* find(std::uint64_t offer_id);
  void erase(std::uint64_t offer_id);

  // Shrink accepted: the offer stays visible (offer_pending == true, so
  // policies do not re-propose) until the release round-trip completes.
  void mark_draining(std::uint64_t offer_id);

  // Removes and returns the draining offer matching (job, client_id), if
  // any — called from the MS_RELEASE_DONE handler.
  std::optional<OfferRecord> take_draining(torque::JobId job,
                                           std::uint64_t client_id);

  // Removes and returns every pending offer whose deadline passed. The
  // caller reverts reservations; capabilities are cleared here.
  std::vector<OfferRecord> take_expired(double now);

  // Job ended (complete/deleted/failed): drop its registration and return
  // its removed offers so the caller can revert what the job's own
  // release_all did not already cover.
  std::vector<OfferRecord> cancel_job(torque::JobId job);

  // A node died: remove and return every offer that references `hostname`
  // (grow reservations there must be released; shrink targets are gone).
  std::vector<OfferRecord> cancel_on_host(const std::string& hostname);

  // Nack/timeout: drop the offered capability so the policy stops proposing
  // a change the job keeps declining; the agent restores it by
  // re-registering.
  void clear_capability(torque::JobId job, OfferKind kind);

  // Grow committed: the job absorbed `granted` nodes.
  void consume_appetite(torque::JobId job, std::int32_t granted);

  [[nodiscard]] const std::map<torque::JobId, Registration>& registrations()
      const {
    return agents_;
  }
  [[nodiscard]] std::size_t offer_count() const { return offers_.size(); }

 private:
  std::map<torque::JobId, Registration> agents_;
  std::map<std::uint64_t, OfferRecord> offers_;
  std::uint64_t next_offer_id_ = 1;
};

}  // namespace dac::elastic
