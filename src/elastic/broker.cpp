#include "elastic/broker.hpp"

#include <algorithm>

namespace dac::elastic {

void Broker::register_job(const Registration& reg) {
  agents_[reg.job] = reg;
}

const Registration* Broker::agent(torque::JobId job) const {
  const auto it = agents_.find(job);
  return it == agents_.end() ? nullptr : &it->second;
}

bool Broker::offer_pending(torque::JobId job) const {
  return std::any_of(offers_.begin(), offers_.end(), [job](const auto& kv) {
    return kv.second.job == job;
  });
}

std::uint64_t Broker::start_offer(OfferRecord rec) {
  rec.id = next_offer_id_++;
  rec.state = OfferState::kPending;
  const auto id = rec.id;
  offers_.emplace(id, std::move(rec));
  return id;
}

Broker::OfferRecord* Broker::find(std::uint64_t offer_id) {
  const auto it = offers_.find(offer_id);
  return it == offers_.end() ? nullptr : &it->second;
}

void Broker::erase(std::uint64_t offer_id) { offers_.erase(offer_id); }

void Broker::mark_draining(std::uint64_t offer_id) {
  if (auto* rec = find(offer_id)) rec->state = OfferState::kDraining;
}

std::optional<Broker::OfferRecord> Broker::take_draining(
    torque::JobId job, std::uint64_t client_id) {
  for (auto it = offers_.begin(); it != offers_.end(); ++it) {
    if (it->second.state == OfferState::kDraining && it->second.job == job &&
        it->second.client_id == client_id) {
      OfferRecord rec = std::move(it->second);
      offers_.erase(it);
      return rec;
    }
  }
  return std::nullopt;
}

std::vector<Broker::OfferRecord> Broker::take_expired(double now) {
  std::vector<OfferRecord> out;
  for (auto it = offers_.begin(); it != offers_.end();) {
    if (it->second.state == OfferState::kPending &&
        it->second.deadline <= now) {
      clear_capability(it->second.job, it->second.kind);
      out.push_back(std::move(it->second));
      it = offers_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<Broker::OfferRecord> Broker::cancel_job(torque::JobId job) {
  agents_.erase(job);
  std::vector<OfferRecord> out;
  for (auto it = offers_.begin(); it != offers_.end();) {
    if (it->second.job == job) {
      out.push_back(std::move(it->second));
      it = offers_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<Broker::OfferRecord> Broker::cancel_on_host(
    const std::string& hostname) {
  std::vector<OfferRecord> out;
  for (auto it = offers_.begin(); it != offers_.end();) {
    const auto& hosts = it->second.hosts;
    if (std::find(hosts.begin(), hosts.end(), hostname) != hosts.end()) {
      // Like a nack or timeout, a crash-cancelled negotiation drops the
      // capability: the agent must re-register (or set_appetite) before the
      // policy may target this job again.
      clear_capability(it->second.job, it->second.kind);
      out.push_back(std::move(it->second));
      it = offers_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void Broker::clear_capability(torque::JobId job, OfferKind kind) {
  const auto it = agents_.find(job);
  if (it == agents_.end()) return;
  if (kind == OfferKind::kGrow) {
    it->second.can_grow = false;
  } else {
    it->second.can_shrink = false;
  }
}

void Broker::consume_appetite(torque::JobId job, std::int32_t granted) {
  const auto it = agents_.find(job);
  if (it == agents_.end()) return;
  it->second.appetite = std::max(0, it->second.appetite - granted);
}

}  // namespace dac::elastic
