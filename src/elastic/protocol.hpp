// Wire format of the elastic negotiation protocol: scheduler-initiated
// grow/shrink of running jobs (ROADMAP item 3, following the offer/ack
// reconfiguration model of the DMR API). Three phases:
//
//   offer       — the server, prompted by a Maui utilization policy
//                 (kElastPropose), reserves resources and offers the change
//                 to the job's ElasticAgent (kElastOffer).
//   ack/nack    — the agent answers within a named deadline (kElastAck).
//                 A nack, or a timed-out offer, reverts the reservation with
//                 no slot leak.
//   reconfigure — on an accepted offer the server atomically adjusts slot
//                 accounting and AC grants, notifies the mother superior, and
//                 tells the agent the committed footprint (kElastReconfig)
//                 so the application resizes its session.
//
// Like svc/wire.hpp, this header reuses torque's header-only protocol types
// (MsgType codes, JobId, NodeKind); the elastic library does not link against
// the torque library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "torque/node_db.hpp"
#include "torque/protocol.hpp"
#include "util/bytes.hpp"
#include "vnet/message.hpp"

namespace dac::elastic {

enum class OfferKind : std::uint8_t { kGrow = 0, kShrink = 1 };

inline const char* offer_kind_name(OfferKind k) {
  return k == OfferKind::kGrow ? "grow" : "shrink";
}

// agent -> server (kElastRegister): a running job opts into elasticity and
// publishes where offers should be sent. Re-registering replaces the record
// (and restores capability bits cleared by an earlier nack/timeout).
struct Registration {
  torque::JobId job = torque::kInvalidJob;
  vnet::Address agent;      // the ElasticAgent's endpoint
  bool can_grow = false;    // accepts grow offers
  bool can_shrink = false;  // accepts shrink offers (newest set first)
  torque::NodeKind grow_kind = torque::NodeKind::kAccelerator;
  std::int32_t appetite = 0;  // max extra nodes the job would still take
};

inline void put_registration(util::ByteWriter& w, const Registration& r) {
  w.put<std::uint64_t>(r.job);
  w.put<std::int32_t>(r.agent.node);
  w.put<std::int32_t>(r.agent.port);
  w.put_bool(r.can_grow);
  w.put_bool(r.can_shrink);
  w.put_enum(r.grow_kind);
  w.put<std::int32_t>(r.appetite);
}

inline Registration get_registration(util::ByteReader& r) {
  Registration out;
  out.job = r.get<std::uint64_t>();
  out.agent.node = r.get<std::int32_t>();
  out.agent.port = r.get<std::int32_t>();
  out.can_grow = r.get_bool();
  out.can_shrink = r.get_bool();
  out.grow_kind = r.get_enum<torque::NodeKind>();
  out.appetite = r.get<std::int32_t>();
  return out;
}

// maui -> server (kElastPropose): a utilization policy asks the server to
// start a negotiation. The server validates against the job's registration,
// reserves resources (grow), and emits the offer.
struct Proposal {
  torque::JobId job = torque::kInvalidJob;
  OfferKind kind = OfferKind::kGrow;
  std::int32_t count = 0;  // grow: nodes to add; shrink: advisory set size
  torque::NodeKind node_kind = torque::NodeKind::kAccelerator;
};

inline void put_proposal(util::ByteWriter& w, const Proposal& p) {
  w.put<std::uint64_t>(p.job);
  w.put_enum(p.kind);
  w.put<std::int32_t>(p.count);
  w.put_enum(p.node_kind);
}

inline Proposal get_proposal(util::ByteReader& r) {
  Proposal out;
  out.job = r.get<std::uint64_t>();
  out.kind = r.get_enum<OfferKind>();
  out.count = r.get<std::int32_t>();
  out.node_kind = r.get_enum<torque::NodeKind>();
  return out;
}

// server -> agent (kElastOffer, notification) and server -> agent
// (kElastReconfig, notification) share one shape: the concrete resource
// delta under negotiation. For a grow offer `hosts` are the reserved nodes
// the job would gain; for a shrink offer they are the members of the dynamic
// set the scheduler wants back, identified by `client_id`. The reconfigure
// message repeats the shape with the committed values (grow: the granted
// client id).
struct Offer {
  std::uint64_t offer_id = 0;
  torque::JobId job = torque::kInvalidJob;
  OfferKind kind = OfferKind::kGrow;
  std::uint64_t client_id = 0;  // shrink: target set; reconfig-grow: grant
  std::vector<std::string> hosts;
  std::vector<std::int32_t> nodes;  // vnet node ids, same order as hosts
};

using Reconfig = Offer;  // same wire shape, committed values

inline void put_offer(util::ByteWriter& w, const Offer& o) {
  w.put<std::uint64_t>(o.offer_id);
  w.put<std::uint64_t>(o.job);
  w.put_enum(o.kind);
  w.put<std::uint64_t>(o.client_id);
  w.put_string_vector(o.hosts);
  w.put_vector<std::int32_t>(o.nodes);
}

inline Offer get_offer(util::ByteReader& r) {
  Offer out;
  out.offer_id = r.get<std::uint64_t>();
  out.job = r.get<std::uint64_t>();
  out.kind = r.get_enum<OfferKind>();
  out.client_id = r.get<std::uint64_t>();
  out.hosts = r.get_string_vector();
  out.nodes = r.get_vector<std::int32_t>();
  return out;
}

// agent -> server (kElastAck): accept or decline a pending offer. Late acks
// (after the offer timed out) get an error reply and change nothing.
struct Ack {
  std::uint64_t offer_id = 0;
  torque::JobId job = torque::kInvalidJob;
  bool accept = false;
};

inline void put_ack(util::ByteWriter& w, const Ack& a) {
  w.put<std::uint64_t>(a.offer_id);
  w.put<std::uint64_t>(a.job);
  w.put_bool(a.accept);
}

inline Ack get_ack(util::ByteReader& r) {
  Ack out;
  out.offer_id = r.get<std::uint64_t>();
  out.job = r.get<std::uint64_t>();
  out.accept = r.get_bool();
  return out;
}

// Per-job elasticity view shipped to the scheduler inside the queue
// snapshot: what each registered job could give up or absorb, and whether a
// negotiation is already in flight (policies must not double-propose).
struct JobView {
  torque::JobId job = torque::kInvalidJob;
  bool can_grow = false;
  bool can_shrink = false;
  torque::NodeKind grow_kind = torque::NodeKind::kAccelerator;
  std::int32_t appetite = 0;
  bool offer_pending = false;  // pending or draining negotiation
  // Dynamic sets the job could shed, oldest first (release is LIFO, so only
  // the newest is actually offerable — but the count shows total slack).
  std::vector<std::uint64_t> shrinkable_sets;
  std::int32_t newest_set_size = 0;
};

inline void put_job_view(util::ByteWriter& w, const JobView& v) {
  w.put<std::uint64_t>(v.job);
  w.put_bool(v.can_grow);
  w.put_bool(v.can_shrink);
  w.put_enum(v.grow_kind);
  w.put<std::int32_t>(v.appetite);
  w.put_bool(v.offer_pending);
  w.put_vector<std::uint64_t>(v.shrinkable_sets);
  w.put<std::int32_t>(v.newest_set_size);
}

inline JobView get_job_view(util::ByteReader& r) {
  JobView out;
  out.job = r.get<std::uint64_t>();
  out.can_grow = r.get_bool();
  out.can_shrink = r.get_bool();
  out.grow_kind = r.get_enum<torque::NodeKind>();
  out.appetite = r.get<std::int32_t>();
  out.offer_pending = r.get_bool();
  out.shrinkable_sets = r.get_vector<std::uint64_t>();
  out.newest_set_size = r.get<std::int32_t>();
  return out;
}

}  // namespace dac::elastic
