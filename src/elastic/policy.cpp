#include "elastic/policy.hpp"

#include <algorithm>

namespace dac::elastic {

std::vector<Action> ExpandIdlePolicy::evaluate(
    const PoolPressure& pressure, const std::vector<JobView>& jobs,
    const std::vector<DynDemand>& demand) {
  std::vector<Action> out;
  // Queued demand outranks speculative growth: whatever is free belongs to
  // the dynget queue first.
  if (!demand.empty()) return out;
  int free_accel = pressure.free_accel;
  int free_compute = pressure.free_compute;
  for (const auto& jv : jobs) {  // JobViews arrive sorted by job id
    if (static_cast<int>(out.size()) >= config_.max_offers_per_cycle) break;
    if (!jv.can_grow || jv.offer_pending || jv.appetite <= 0) continue;
    int& budget = jv.grow_kind == torque::NodeKind::kAccelerator
                      ? free_accel
                      : free_compute;
    const int grant = std::min<int>(jv.appetite, budget);
    if (grant <= 0) continue;
    Action a;
    a.proposal.job = jv.job;
    a.proposal.kind = OfferKind::kGrow;
    a.proposal.count = grant;
    a.proposal.node_kind = jv.grow_kind;
    budget -= grant;
    out.push_back(a);
  }
  return out;
}

std::vector<Action> ShrinkUnderPressurePolicy::evaluate(
    const PoolPressure& pressure, const std::vector<JobView>& jobs,
    const std::vector<DynDemand>& demand) {
  std::vector<Action> out;
  if (pressure.queued_dyn < config_.queue_threshold || demand.empty()) {
    return out;
  }
  // Walk the FIFO the way service_dynamic will: free capacity serves
  // requests in order (budgeted at their full count — conservative, an
  // unnecessary deferral just costs one skipped cycle); whatever does not
  // fit is starved.
  int avail_accel = pressure.free_accel;
  int avail_compute = pressure.free_compute;
  std::vector<const DynDemand*> starved;
  for (const auto& d : demand) {
    int& avail = d.kind == torque::NodeKind::kAccelerator ? avail_accel
                                                          : avail_compute;
    if (avail >= d.min_count) {
      avail -= std::min(d.count, avail);
    } else if (d.waited_s >= config_.min_wait_s) {
      starved.push_back(&d);
    }
  }
  if (starved.empty()) return out;  // normal grants will handle the queue
  // Strictly the first starved request drives victim selection: servicing
  // it unblocks the queue, and one new negotiation per cycle keeps the
  // reclaim story deterministic.
  const DynDemand& head = *starved.front();
  // A shrink already in flight (ours, from an earlier cycle) also counts as
  // reclaiming: its freed capacity is coming even if we add no victim now.
  bool reclaiming =
      std::any_of(jobs.begin(), jobs.end(), [](const JobView& jv) {
        return jv.can_shrink && jv.offer_pending;
      });
  for (const auto& jv : jobs) {
    if (!jv.can_shrink || jv.offer_pending || jv.job == head.job) continue;
    if (jv.shrinkable_sets.empty() || jv.newest_set_size <= 0) continue;
    Action a;
    a.proposal.job = jv.job;
    a.proposal.kind = OfferKind::kShrink;
    a.proposal.count = jv.newest_set_size;
    a.proposal.node_kind = head.kind;
    a.defer_dyn = head.dyn_id;
    a.trace_id = head.trace_id;
    a.origin_span = head.origin_span;
    out.push_back(a);
    reclaiming = true;
    break;  // one victim per cycle
  }
  if (!reclaiming) return out;
  // Defer-only: while reclaimed capacity is on its way, every starved
  // request of the reclaimed kind waits for it instead of being finally
  // rejected against a pool the reclaim is about to refill.
  const bool head_deferred = !out.empty();
  for (const auto* d : starved) {
    if (head_deferred && d->dyn_id == head.dyn_id) continue;
    if (d->kind != head.kind) continue;
    Action defer;
    defer.defer_dyn = d->dyn_id;
    out.push_back(defer);
  }
  return out;
}

std::vector<Action> BalancedPolicy::evaluate(
    const PoolPressure& pressure, const std::vector<JobView>& jobs,
    const std::vector<DynDemand>& demand) {
  auto out = shrink_.evaluate(pressure, jobs, demand);
  auto grow = expand_.evaluate(pressure, jobs, demand);
  out.insert(out.end(), grow.begin(), grow.end());
  return out;
}

}  // namespace dac::elastic
