// Pluggable utilization policies driving the elastic negotiation from the
// Maui side. Each scheduling cycle the scheduler feeds the policy the pool
// pressure (free capacity vs. dynamic-queue backlog) and the per-job
// elasticity views from the queue snapshot; the policy answers with
// proposals to send to the server (kElastPropose) and — for shrink
// proposals aimed at a specific starved dynget — which dynamic request to
// defer instead of rejecting while the negotiation runs.
#pragma once

#include <cstdint>
#include <vector>

#include "elastic/protocol.hpp"

namespace dac::elastic {

// One queued dynamic request as the policy sees it (a torque-free projection
// of the snapshot's DynQueueEntry, FIFO order preserved).
struct DynDemand {
  std::uint64_t dyn_id = 0;
  torque::JobId job = torque::kInvalidJob;
  std::int32_t count = 0;
  std::int32_t min_count = 0;
  torque::NodeKind kind = torque::NodeKind::kAccelerator;
  double waited_s = 0.0;  // time since arrival, server seconds
  // Requester's trace context: a proposal made on this demand's behalf joins
  // its trace, so the whole negotiation shows up in one causal tree.
  std::uint64_t trace_id = 0;
  std::uint64_t origin_span = 0;
};

struct PoolPressure {
  double now = 0.0;      // server seconds
  int free_accel = 0;    // free accelerator nodes (kUp only)
  int free_compute = 0;  // free compute slots (kUp only)
  int queued_dyn = 0;    // dynamic-queue length
};

// One policy decision: the proposal to send, plus the dynamic request (if
// any) it intends to satisfy — the scheduler defers that request instead of
// rejecting it while the shrink is in flight. An action with
// proposal.count == 0 is defer-only: no proposal is sent, the request just
// waits for capacity a reclaim already in flight will free.
struct Action {
  Proposal proposal;
  std::uint64_t defer_dyn = 0;  // 0 = no request deferred
  std::uint64_t trace_id = 0;   // context for the proposal span
  std::uint64_t origin_span = 0;
};

class Policy {
 public:
  virtual ~Policy() = default;
  [[nodiscard]] virtual std::vector<Action> evaluate(
      const PoolPressure& pressure, const std::vector<JobView>& jobs,
      const std::vector<DynDemand>& demand) = 0;
};

// Expands jobs with registered appetite while capacity idles and nobody is
// waiting: pre-grants what a dynget would get anyway, saving the round trip.
// Never grows past pending demand — queued dyngets always come first.
class ExpandIdlePolicy : public Policy {
 public:
  struct Config {
    int max_offers_per_cycle = 1;  // bound per-cycle negotiation fan-out
  };
  ExpandIdlePolicy() = default;
  explicit ExpandIdlePolicy(Config config) : config_(config) {}

  [[nodiscard]] std::vector<Action> evaluate(
      const PoolPressure& pressure, const std::vector<JobView>& jobs,
      const std::vector<DynDemand>& demand) override;

 private:
  Config config_;
};

// Shrinks an over-provisioned job when the dynamic queue backs up past a
// threshold and the free pool cannot satisfy the head request: proposes
// reclaiming the newest dynamic set of the first shrinkable job (never the
// requester itself) and defers the starved request while the negotiation
// runs. While any reclaim is in flight, every other starved request of the
// same kind is deferred too (defer-only actions) — reclaimed capacity is
// coming, so a final reject now would waste it on an empty queue. No
// victim, nack, or timeout all fall back to the normal reject.
class ShrinkUnderPressurePolicy : public Policy {
 public:
  struct Config {
    int queue_threshold = 1;  // dynqueue length that counts as backed up
    double min_wait_s = 0.0;  // head request must have starved this long
  };
  ShrinkUnderPressurePolicy() = default;
  explicit ShrinkUnderPressurePolicy(Config config) : config_(config) {}

  [[nodiscard]] std::vector<Action> evaluate(
      const PoolPressure& pressure, const std::vector<JobView>& jobs,
      const std::vector<DynDemand>& demand) override;

 private:
  Config config_;
};

// Both of the above: reclaim under pressure, pre-grant when idle.
class BalancedPolicy : public Policy {
 public:
  BalancedPolicy() = default;
  BalancedPolicy(ShrinkUnderPressurePolicy::Config shrink,
                 ExpandIdlePolicy::Config expand)
      : shrink_(shrink), expand_(expand) {}

  [[nodiscard]] std::vector<Action> evaluate(
      const PoolPressure& pressure, const std::vector<JobView>& jobs,
      const std::vector<DynDemand>& demand) override;

 private:
  ShrinkUnderPressurePolicy shrink_;
  ExpandIdlePolicy expand_;
};

}  // namespace dac::elastic
