#include "elastic/agent.hpp"

#include <utility>

#include "svc/deadlines.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace dac::elastic {

namespace {
const util::Logger kLog("elastic-agent");
}  // namespace

using svc::ExecClass;
using torque::MsgType;

ElasticAgent::ElasticAgent(vnet::Process& proc, AgentConfig config)
    : proc_(proc), config_(config), ep_(proc.open_endpoint()) {
  svc::ServiceConfig sc;
  sc.name = "elastic-agent";
  loop_ = std::make_unique<svc::ServiceLoop>(*ep_, sc);
  auto& loop = *loop_;
  loop.on(MsgType::kElastOffer, ExecClass::kMutating,
          [this](const svc::Request& req, svc::Responder&) {
            handle_offer(req);
          });
  loop.on(MsgType::kElastReconfig, ExecClass::kMutating,
          [this](const svc::Request& req, svc::Responder&) {
            handle_reconfig(req);
          });
}

ElasticAgent::~ElasticAgent() { stop(); }

void ElasticAgent::announce() {
  send_registration();
  if (!thread_) {
    thread_.emplace([this] {
      try {
        loop_->run();
      } catch (const util::StoppedError&) {
        // Process killed mid-job (qdel, walltime): the loop thread just
        // exits; pending offers expire server-side.
      }
    });
  }
}

void ElasticAgent::set_appetite(std::int32_t appetite) {
  config_.appetite = appetite;
  send_registration();
}

void ElasticAgent::send_registration() {
  Registration reg;
  reg.job = config_.job;
  reg.agent = ep_->address();
  // Only advertise what the application actually wired a callback for: a
  // capability without an apply path would turn every offer into a nack.
  reg.can_grow = config_.accept_grow && static_cast<bool>(grow_fn_);
  reg.can_shrink = config_.accept_shrink && static_cast<bool>(shrink_fn_);
  reg.grow_kind = config_.grow_kind;
  reg.appetite = config_.appetite;
  util::ByteWriter w;
  put_registration(w, reg);
  const svc::Caller caller(proc_, config_.server, config_.retry);
  (void)caller.call(MsgType::kElastRegister, std::move(w).take(),
                    {.deadline = svc::deadlines::kControl});
}

void ElasticAgent::handle_offer(const svc::Request& req) {
  util::ByteReader r(req.body);
  const Offer offer = get_offer(r);
  Ack ack;
  ack.offer_id = offer.offer_id;
  ack.job = config_.job;
  ack.accept = offer.kind == OfferKind::kGrow
                   ? config_.accept_grow && static_cast<bool>(grow_fn_)
                   : config_.accept_shrink && static_cast<bool>(shrink_fn_);
  trace::SpanScope span(ack.accept ? "elastic.ack" : "elastic.nack");
  kLog.debug("job {} {}s {} offer {} ({} hosts)", config_.job,
             ack.accept ? "ack" : "nack", offer_kind_name(offer.kind),
             offer.offer_id, offer.hosts.size());
  util::ByteWriter w;
  put_ack(w, ack);
  try {
    const svc::Caller caller(proc_, config_.server, config_.retry);
    (void)caller.call(MsgType::kElastAck, std::move(w).take(),
                      {.deadline = svc::deadlines::kElasticAck});
  } catch (const svc::CallError& e) {
    // Late ack: the server already timed the offer out and reverted the
    // reservation; nothing to undo on this side.
    kLog.debug("job {} ack for offer {} rejected: {}", config_.job,
               offer.offer_id, e.what());
  } catch (const svc::DeadlineError&) {
    // Server unreachable; the pending offer expires on its own over there.
    kLog.debug("job {} ack for offer {} timed out", config_.job,
               offer.offer_id);
  } catch (const util::StoppedError&) {
    // Process being killed mid-ack; the loop drains and exits right after.
  }
}

void ElasticAgent::handle_reconfig(const svc::Request& req) {
  util::ByteReader r(req.body);
  Pending pending{get_offer(r), trace::current()};
  if (!inbox_.push(std::move(pending))) {
    // stop() already closed the inbox; the job is past caring.
    kLog.debug("job {} dropped reconfig after stop", config_.job);
  }
}

std::size_t ElasticAgent::service(std::chrono::milliseconds wait) {
  std::size_t applied = 0;
  auto item = wait.count() > 0 ? inbox_.pop_for(wait) : inbox_.try_pop();
  while (item) {
    if (proc_.stop_requested()) throw util::StoppedError();
    apply(*item);
    ++applied;
    item = inbox_.try_pop();
  }
  if (proc_.stop_requested()) throw util::StoppedError();
  return applied;
}

void ElasticAgent::apply(const Pending& pending) {
  trace::ScopedContext ctx(pending.ctx);
  trace::SpanScope span("elastic.apply");
  const auto& fn =
      pending.reconfig.kind == OfferKind::kGrow ? grow_fn_ : shrink_fn_;
  if (fn) fn(pending.reconfig);
}

void ElasticAgent::stop() {
  ep_->close();
  inbox_.close();
  if (thread_) {
    thread_->join();
    thread_.reset();
  }
}

}  // namespace dac::elastic
