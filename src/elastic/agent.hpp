// The job-side endpoint of the elastic negotiation: a malleable application
// constructs an ElasticAgent inside its job process, declares what it
// accepts (grow and/or shrink, with callbacks that resize the session), and
// announces itself to the server (kElastRegister). From then on a small
// service loop answers the server's offers within the named ack deadline,
// while committed reconfigurations queue up until the application calls
// service() — so the actual session resize (MPI spawn/abandon) runs on the
// application thread, like any other MPI work, under the negotiation's trace
// context.
//
//   elastic::AgentConfig cfg = ctx.elastic_config();   // core::JobContext
//   cfg.accept_shrink = true;
//   elastic::ElasticAgent agent(ctx.mpi().process(), cfg);
//   agent.on_shrink([&](const elastic::Reconfig& r) {
//     session.ac_detach(r.client_id);                  // drop the set
//   });
//   agent.announce();
//   while (working) { compute(); agent.service(); }
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>

#include "elastic/protocol.hpp"
#include "simtime/clock.hpp"
#include "svc/caller.hpp"
#include "svc/service_loop.hpp"
#include "trace/trace.hpp"
#include "util/queue.hpp"
#include "vnet/node.hpp"

namespace dac::elastic {

struct AgentConfig {
  torque::JobId job = torque::kInvalidJob;
  vnet::Address server;
  bool accept_grow = false;
  bool accept_shrink = false;
  torque::NodeKind grow_kind = torque::NodeKind::kAccelerator;
  std::int32_t appetite = 0;  // max extra nodes this job would absorb
  svc::RetryPolicy retry;
};

class ElasticAgent {
 public:
  using ReconfigHandler = std::function<void(const Reconfig&)>;

  ElasticAgent(vnet::Process& proc, AgentConfig config);
  ~ElasticAgent();

  ElasticAgent(const ElasticAgent&) = delete;
  ElasticAgent& operator=(const ElasticAgent&) = delete;

  // Install the apply callbacks before announce(); they run on the thread
  // that calls service(), never on the agent's loop thread.
  void on_grow(ReconfigHandler fn) { grow_fn_ = std::move(fn); }
  void on_shrink(ReconfigHandler fn) { shrink_fn_ = std::move(fn); }

  // Registers with the server and starts the offer loop.
  void announce();

  // Applies queued reconfigurations through the installed callbacks,
  // waiting up to `wait` for the first one; returns how many were applied.
  // Throws util::StoppedError once the owning process is being killed.
  std::size_t service(
      std::chrono::milliseconds wait = std::chrono::milliseconds(0));

  // Re-registers with an updated appetite (e.g. after the application shed
  // work). Also restores capability bits a nack/timeout cleared.
  void set_appetite(std::int32_t appetite);

  // Stops answering offers. Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] const vnet::Address& address() const {
    return ep_->address();
  }

 private:
  struct Pending {
    Reconfig reconfig;
    trace::Context ctx;  // serve-span context, links apply into the trace
  };

  void send_registration();
  void handle_offer(const svc::Request& req);
  void handle_reconfig(const svc::Request& req);
  void apply(const Pending& pending);

  vnet::Process& proc_;
  AgentConfig config_;
  std::unique_ptr<vnet::Endpoint> ep_;
  std::unique_ptr<svc::ServiceLoop> loop_;
  util::BlockingQueue<Pending> inbox_;
  ReconfigHandler grow_fn_;
  ReconfigHandler shrink_fn_;
  std::optional<simtime::ActorThread> thread_;
};

}  // namespace dac::elastic
