#include "core/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dac::core {

namespace {

std::string fixed(double v) {
  if (v < 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

void row(std::ostringstream& out, const std::vector<std::string>& cells,
         const std::vector<int>& widths) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out << cells[i];
    const int pad = widths[i] - static_cast<int>(cells[i].size());
    for (int p = 0; p < std::max(pad, 1); ++p) out << ' ';
  }
  out << '\n';
}

}  // namespace

std::string render_qstat(const std::vector<torque::JobInfo>& jobs) {
  const std::vector<int> w{8, 16, 10, 6, 6, 5, 9, 8};
  std::ostringstream out;
  row(out, {"Job ID", "Name", "Owner", "State", "Nodes", "ACs", "Queue[s]",
            "Run[s]"},
      w);
  row(out, {"------", "----", "-----", "-----", "-----", "---", "--------",
            "------"},
      w);
  for (const auto& j : jobs) {
    const double queue_s =
        j.start_time >= 0.0 ? j.start_time - j.submit_time : -1.0;
    const double run_s =
        j.start_time >= 0.0
            ? (j.end_time >= 0.0 ? j.end_time - j.start_time : -1.0)
            : -1.0;
    const int acs = static_cast<int>(j.accel_hosts.size() +
                                     j.dyn_accel_hosts.size());
    row(out,
        {std::to_string(j.id), j.spec.name.substr(0, 15), j.spec.owner,
         torque::job_state_name(j.state),
         std::to_string(j.spec.resources.nodes), std::to_string(acs),
         fixed(queue_s), fixed(run_s)},
        w);
  }
  return out.str();
}

std::string render_pbsnodes(const std::vector<torque::NodeStatus>& nodes) {
  const std::vector<int> w{10, 13, 7, 10, 20};
  std::ostringstream out;
  row(out, {"Host", "Kind", "State", "Slots", "Jobs"}, w);
  row(out, {"----", "----", "-----", "-----", "----"}, w);
  for (const auto& n : nodes) {
    std::string jobs;
    for (const auto j : n.jobs) {
      if (!jobs.empty()) jobs += ",";
      jobs += std::to_string(j);
    }
    if (jobs.empty()) jobs = "-";
    row(out,
        {n.hostname,
         n.kind == torque::NodeKind::kCompute ? "compute" : "accelerator",
         n.up ? "up" : "down",
         std::to_string(n.used) + "/" + std::to_string(n.np), jobs},
        w);
  }
  return out.str();
}

std::string render_metrics(const svc::MetricsSnapshot& snap) {
  const std::vector<int> w{20, 8, 8, 10, 10, 10, 10};
  std::ostringstream out;
  row(out,
      {"RPC", "Calls", "Errors", "Mean[ms]", "P50[ms]", "P99[ms]", "Max[ms]"},
      w);
  row(out, {"---", "-----", "------", "--------", "-------", "-------",
            "-------"},
      w);
  for (const auto& r : snap.rpcs) {
    row(out,
        {r.name, std::to_string(r.calls), std::to_string(r.errors),
         fixed(r.mean_ms), fixed(r.p50_ms), fixed(r.p99_ms), fixed(r.max_ms)},
        w);
  }
  return out.str();
}

}  // namespace dac::core
