// TORQUE-style textual renderings of batch-system state: qstat for jobs,
// pbsnodes for nodes. Used by examples and handy when debugging a virtual
// cluster interactively.
#pragma once

#include <string>
#include <vector>

#include "svc/metrics.hpp"
#include "torque/job.hpp"
#include "torque/node_db.hpp"

namespace dac::core {

// qstat-like table:
//   Job ID  Name      Owner  State  Nodes  ACs  Queue[s]  Run[s]
std::string render_qstat(const std::vector<torque::JobInfo>& jobs);

// pbsnodes-like table:
//   Host  Kind  State  Slots  Jobs
std::string render_pbsnodes(const std::vector<torque::NodeStatus>& nodes);

// Per-RPC metrics table of a daemon (counts, errors, latency percentiles):
//   RPC  Calls  Errors  Mean[ms]  P50[ms]  P99[ms]  Max[ms]
std::string render_metrics(const svc::MetricsSnapshot& snap);

}  // namespace dac::core
