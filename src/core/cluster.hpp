// DacCluster: the whole system in one object. Builds the virtual cluster
// (head node + compute nodes + accelerator nodes), boots pbs_server, the
// Maui scheduler and a pbs_mom per node, registers the DAC daemon
// executables and the job wrapper, and offers the client surface (submit,
// stat, wait) plus accessors for benchmarks and tests.
//
// This is the paper's testbed in a constructor call:
//
//   auto cluster = dac::core::DacCluster(DacClusterConfig::paper_testbed());
//   cluster.register_program("my_app", [](JobContext& ctx) { ... });
//   auto id = cluster.submit_program("my_app", /*nodes=*/1, /*acpn=*/3);
//   cluster.wait_job(id);
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "simtime/clock.hpp"
#include "util/sync.hpp"

#include "core/config.hpp"
#include "core/job_context.hpp"
#include "dacc/device_manager.hpp"
#include "faults/fault_plan.hpp"
#include "maui/scheduler.hpp"
#include "minimpi/runtime.hpp"
#include "svc/metrics.hpp"
#include "torque/ifl.hpp"
#include "torque/mom.hpp"
#include "torque/server.hpp"
#include "torque/task_registry.hpp"
#include "vnet/cluster.hpp"

namespace dac::core {

inline constexpr const char* kJobWrapperExe = "dac.jobwrapper";
// Built-in job programs.
inline constexpr const char* kSleepProgram = "dac.sleep";  // args: u64 ms
inline constexpr const char* kNoopProgram = "dac.noop";

class DacCluster {
 public:
  explicit DacCluster(DacClusterConfig config);
  ~DacCluster();

  DacCluster(const DacCluster&) = delete;
  DacCluster& operator=(const DacCluster&) = delete;

  // ---- topology access -------------------------------------------------
  [[nodiscard]] const DacClusterConfig& config() const { return config_; }
  [[nodiscard]] vnet::Cluster& vcluster() { return *cluster_; }
  [[nodiscard]] vnet::Node& head() { return cluster_->node(0); }
  [[nodiscard]] vnet::Node& compute_node(std::size_t i);
  [[nodiscard]] vnet::Node& accel_node(std::size_t i);
  [[nodiscard]] minimpi::Runtime& runtime() { return *runtime_; }
  [[nodiscard]] torque::TaskRegistry& tasks() { return tasks_; }
  [[nodiscard]] dacc::DeviceManager& devices() { return *devices_; }
  [[nodiscard]] const vnet::Address& server_address() const;
  [[nodiscard]] maui::SchedulerStatsSnapshot scheduler_stats() const;
  // Per-RPC metrics of the pbs_server (counts, errors, latency percentiles).
  [[nodiscard]] svc::MetricsSnapshot metrics_snapshot() const;

  // ---- job programs -------------------------------------------------------
  void register_program(const std::string& name, JobProgram program);

  // ---- client surface (qsub/qstat equivalents) ---------------------------
  [[nodiscard]] torque::Ifl client();  // an IFL client bound to the head
  [[nodiscard]] torque::JobId submit(const torque::JobSpec& spec);
  // Convenience: submit a registered program with the given geometry.
  [[nodiscard]] torque::JobId submit_program(
      const std::string& program, int nodes, int acpn,
      util::Bytes args = {},
      std::chrono::milliseconds walltime = std::chrono::milliseconds(60'000));
  // Blocks until the job completes; returns the final info (nullopt on
  // timeout).
  std::optional<torque::JobInfo> wait_job(
      torque::JobId id,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(60'000));

  // ---- failure injection (fault-tolerance extension) -------------------
  // Simulates a node crash: every process on the node (mom, daemons, job
  // tasks) stops, and — when a fault plan is attached — the plan marks the
  // node crashed so in-flight fabric traffic to/from it is discarded. The
  // server marks the node down once heartbeats go stale.
  void fail_node(std::size_t cluster_index);
  // Restarts the node's mom (and un-crashes it in the fault plan); it
  // re-registers and the node comes back up.
  void recover_node(std::size_t cluster_index);
  // The active fault plan — config_.fault_plan, or the background plan
  // created from DACSCHED_FAULT_SEED. Null when fault injection is off.
  [[nodiscard]] const std::shared_ptr<faults::FaultPlan>& fault_plan() const {
    return fault_plan_;
  }
  // Polls the server's node table (qstat -n equivalent) until `hostname`
  // reports `target` liveness. Returns false on timeout. Helper for the
  // detection tests and the recovery benchmark.
  bool await_node_liveness(const std::string& hostname,
                           torque::Liveness target,
                           std::chrono::milliseconds timeout);

  // Stops every daemon and the fabric. Also run by the destructor.
  void shutdown();

 private:
  void register_builtin_executables();
  rmlib::AcSessionConfig session_base() const;

  // First member: registers the owning (driver) thread as a simtime actor
  // before any daemon thread exists, and stays registered until every one of
  // them has been joined (members destroy in reverse order). Without it a
  // DiscreteEvent clock could see "all actors blocked" while the driver is
  // runnable between submit() and wait_job().
  simtime::ActorScope sim_actor_;

  DacClusterConfig config_;
  std::unique_ptr<vnet::Cluster> cluster_;
  std::unique_ptr<minimpi::Runtime> runtime_;
  std::unique_ptr<dacc::DeviceManager> devices_;
  torque::TaskRegistry tasks_;

  std::shared_ptr<faults::FaultPlan> fault_plan_;
  std::unique_ptr<torque::PbsServer> server_;
  std::unique_ptr<maui::MauiScheduler> scheduler_;
  std::vector<std::unique_ptr<torque::PbsMom>> moms_;
  std::vector<vnet::ProcessPtr> daemons_;

  Mutex programs_mu_{"cluster.programs"};
  std::map<std::string, JobProgram> programs_ DAC_GUARDED_BY(programs_mu_);
  bool down_ = false;
};

}  // namespace dac::core
