#include "core/cluster.hpp"
#include "simtime/clock.hpp"

#include <cstdlib>
#include <thread>

#include "dacc/daemon.hpp"
#include "torque/rpc.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace dac::core {

namespace {
const util::Logger kLog("dac_cluster");

// Background fault plan from the environment (CI's fault-seed job): a
// DELAY-ONLY plan by default, because fire-and-forget notifications
// (TASK_DONE, MOM_RUN_JOB) are not retried, so random drops would wedge
// otherwise-correct runs. Rates are overridable for experiments that do
// want loss.
std::shared_ptr<faults::FaultPlan> plan_from_env() {
  const char* seed_env = std::getenv("DACSCHED_FAULT_SEED");
  if (seed_env == nullptr || *seed_env == '\0') return nullptr;
  const auto read_rate = [](const char* key, double fallback) {
    const char* v = std::getenv(key);
    return (v != nullptr && *v != '\0') ? std::atof(v) : fallback;
  };
  faults::FaultRates rates;
  rates.delay = read_rate("DACSCHED_FAULT_DELAY_RATE", 0.05);
  rates.drop = read_rate("DACSCHED_FAULT_DROP_RATE", 0.0);
  rates.duplicate = read_rate("DACSCHED_FAULT_DUP_RATE", 0.0);
  rates.max_extra_delay = std::chrono::microseconds(static_cast<long long>(
      read_rate("DACSCHED_FAULT_MAX_DELAY_US", 500.0)));
  const auto seed =
      static_cast<std::uint64_t>(std::strtoull(seed_env, nullptr, 0));
  kLog.info("fault plan from env: seed={} delay={} drop={} dup={}", seed,
            rates.delay, rates.drop, rates.duplicate);
  return std::make_shared<faults::FaultPlan>(seed, rates);
}
}  // namespace

DacCluster::DacCluster(DacClusterConfig config) : config_(std::move(config)) {
  vnet::ClusterTopology topo;
  topo.node_count = config_.total_nodes();
  topo.network = config_.network;
  topo.process_start_delay = std::chrono::microseconds(0);
  topo.hostnames.push_back("head");
  for (std::size_t i = 0; i < config_.compute_nodes; ++i) {
    topo.hostnames.push_back("cn" + std::to_string(i));
  }
  for (std::size_t i = 0; i < config_.accel_nodes; ++i) {
    topo.hostnames.push_back("ac" + std::to_string(i));
  }
  cluster_ = std::make_unique<vnet::Cluster>(std::move(topo));
  runtime_ = std::make_unique<minimpi::Runtime>(*cluster_);
  devices_ = std::make_unique<dacc::DeviceManager>(config_.device);

  // The server object must exist before the daemon executables register:
  // back-end heartbeats need its address, and the fault plan exports its
  // event counters into the server's metrics registry.
  server_ = std::make_unique<torque::PbsServer>(
      head(), config_.timing, config_.svc, config_.node_db_shards);

  fault_plan_ = config_.fault_plan ? config_.fault_plan : plan_from_env();
  if (fault_plan_) {
    fault_plan_->set_metrics(&server_->metrics());
    cluster_->fabric().set_fault_injector(fault_plan_);
  }

  dacc::BackendHeartbeats heartbeats;
  heartbeats.server = server_->address();
  heartbeats.interval = config_.timing.mom_heartbeat_interval;
  for (std::size_t i = 0; i < config_.accel_nodes; ++i) {
    auto& node = cluster_->node(1 + config_.compute_nodes + i);
    heartbeats.hostnames[node.id()] = node.hostname();
  }
  dacc::register_daemon_executables(*runtime_, *devices_,
                                    std::move(heartbeats));
  register_builtin_executables();

  // Boot the head-node daemons.
  daemons_.push_back(head().spawn(
      {.name = "pbs_server"},
      [this](vnet::Process& proc) { server_->run(proc); }));

  maui::SchedulerConfig sched;
  sched.server = server_->address();
  sched.policy = config_.policy;
  sched.weights = config_.weights;
  sched.timing = config_.timing;
  sched.dynamic_first = config_.dynamic_first;
  sched.dyn_owner_pool_cap = config_.dyn_owner_pool_cap;
  sched.elastic_policy = config_.elastic_policy;
  sched.elastic_defer_window = config_.elastic_defer_window;
  sched.retry = config_.svc.retry;
  sched.incremental_fetch = config_.sched_incremental_fetch;
  sched.full_rescan_every = config_.sched_full_rescan_every;
  sched.batched_dyn = config_.sched_batched_dyn;
  scheduler_ = std::make_unique<maui::MauiScheduler>(head(), sched);
  daemons_.push_back(head().spawn(
      {.name = "maui"},
      [this](vnet::Process& proc) { scheduler_->run(proc); }));

  // Boot one pbs_mom per worker node.
  for (std::size_t i = 1; i < cluster_->size(); ++i) {
    auto& node = cluster_->node(i);
    torque::MomConfig mc;
    mc.kind = i <= config_.compute_nodes ? torque::NodeKind::kCompute
                                         : torque::NodeKind::kAccelerator;
    mc.np = mc.kind == torque::NodeKind::kCompute ? 8 : 1;
    mc.server = server_->address();
    mc.timing = config_.timing;
    mc.enforce_walltime = config_.enforce_walltime;
    mc.retry = config_.svc.retry;
    mc.dedup_window = config_.svc.dedup_window;
    auto mom = std::make_unique<torque::PbsMom>(node, mc, *runtime_, tasks_);
    auto* mom_ptr = mom.get();
    moms_.push_back(std::move(mom));
    daemons_.push_back(node.spawn(
        {.name = "pbs_mom"},
        [mom_ptr](vnet::Process& proc) { mom_ptr->run(proc); }));
  }

  // Wait until every mom registered so the first submission can schedule.
  auto ifl = client();
  const auto deadline =
      simtime::now() + std::chrono::seconds(10);
  while (ifl.stat_nodes().size() < cluster_->size() - 1) {
    if (simtime::now() > deadline) {
      throw util::ProtocolError("DacCluster: moms did not register in time");
    }
    simtime::sleep_for(std::chrono::milliseconds(1));
  }
  kLog.info("DAC cluster up: {} compute, {} accelerator node(s)",
            config_.compute_nodes, config_.accel_nodes);
}

DacCluster::~DacCluster() { shutdown(); }

void DacCluster::fail_node(std::size_t cluster_index) {
  if (cluster_index == 0 || cluster_index >= cluster_->size()) {
    throw std::invalid_argument("fail_node: not a worker node");
  }
  auto& node = cluster_->node(cluster_index);
  // Crash in the plan first so messages the dying processes still emit while
  // stopping are discarded, like NIC output of a machine losing power.
  if (fault_plan_) fault_plan_->crash_node(node.id());
  node.stop_all_processes();
  kLog.warn("injected failure on '{}'", node.hostname());
}

void DacCluster::recover_node(std::size_t cluster_index) {
  if (cluster_index == 0 || cluster_index >= cluster_->size()) {
    throw std::invalid_argument("recover_node: not a worker node");
  }
  auto* mom = moms_.at(cluster_index - 1).get();
  auto& node = cluster_->node(cluster_index);
  if (fault_plan_) fault_plan_->restart_node(node.id());
  daemons_.push_back(node.spawn(
      {.name = "pbs_mom"},
      [mom](vnet::Process& proc) { mom->run(proc); }));
  kLog.info("mom on '{}' restarted", node.hostname());
}

bool DacCluster::await_node_liveness(const std::string& hostname,
                                     torque::Liveness target,
                                     std::chrono::milliseconds timeout) {
  auto ifl = client();
  const auto deadline = simtime::now() + timeout;
  for (;;) {
    for (const auto& st : ifl.stat_nodes()) {
      if (st.hostname == hostname && st.liveness == target) return true;
    }
    if (simtime::now() > deadline) return false;
    simtime::sleep_for(std::chrono::milliseconds(1));
  }
}

void DacCluster::shutdown() {
  if (down_) return;
  down_ = true;
  cluster_->shutdown();
}

vnet::Node& DacCluster::compute_node(std::size_t i) {
  return cluster_->node(1 + i);
}

vnet::Node& DacCluster::accel_node(std::size_t i) {
  return cluster_->node(1 + config_.compute_nodes + i);
}

const vnet::Address& DacCluster::server_address() const {
  return server_->address();
}

maui::SchedulerStatsSnapshot DacCluster::scheduler_stats() const {
  return scheduler_->stats();
}

svc::MetricsSnapshot DacCluster::metrics_snapshot() const {
  return server_->metrics().snapshot();
}

void DacCluster::register_program(const std::string& name,
                                  JobProgram program) {
  ScopedLock lock(programs_mu_);
  programs_[name] = std::move(program);
}

torque::Ifl DacCluster::client() {
  return torque::Ifl(head(), server_->address(), config_.svc.retry);
}

torque::JobId DacCluster::submit(const torque::JobSpec& spec) {
  return client().submit(spec);
}

torque::JobId DacCluster::submit_program(const std::string& program,
                                         int nodes, int acpn,
                                         util::Bytes args,
                                         std::chrono::milliseconds walltime) {
  torque::JobSpec spec;
  spec.name = program;
  spec.program = program;
  spec.program_args = std::move(args);
  spec.resources.nodes = nodes;
  spec.resources.acpn = acpn;
  spec.resources.walltime = walltime;
  return submit(spec);
}

std::optional<torque::JobInfo> DacCluster::wait_job(
    torque::JobId id, std::chrono::milliseconds timeout) {
  auto info =
      client().wait_for_state(id, torque::JobState::kComplete, timeout);
  if (info && info->state == torque::JobState::kComplete) return info;
  return std::nullopt;
}

rmlib::AcSessionConfig DacCluster::session_base() const {
  rmlib::AcSessionConfig base;
  base.server = server_->address();
  base.spawned_daemon_start_delay =
      config_.timing.spawned_daemon_start_delay;
  base.transfer = config_.transfer;
  base.call_timeout = config_.ac_call_timeout;
  base.tasks = const_cast<torque::TaskRegistry*>(&tasks_);
  base.retry = config_.svc.retry;
  return base;
}

void DacCluster::register_builtin_executables() {
  // The job wrapper: deserializes the launch info, runs the registered
  // program, and reports TASK_DONE to the mother superior (which triggers
  // job teardown once every rank finished).
  runtime_->register_executable(
      kJobWrapperExe, [this](minimpi::Proc& proc, const util::Bytes& args) {
        util::ByteReader r(args);
        auto info = torque::get_launch_info(r);
        const auto job = info.job;
        const auto ms = info.ms_mom;
        const auto rank = proc.rank();

        // Join the submit trace shipped in the launch info: everything the
        // job script does (rmlib calls, DAC ops, TASK_DONE) nests under one
        // job.run span per rank.
        trace::set_thread_actor("job" + std::to_string(job) + ".r" +
                                std::to_string(rank));
        trace::ScopedContext trace_parent(
            trace::Context{info.trace_id, info.origin_span});
        trace::SpanScope job_span("job.run");
        job_span.note("job", std::to_string(job));
        job_span.note("rank", std::to_string(rank));

        JobProgram program;
        {
          ScopedLock lock(programs_mu_);
          if (auto it = programs_.find(info.program);
              it != programs_.end()) {
            program = it->second;
          }
        }
        if (program) {
          try {
            JobContext ctx(proc, std::move(info), session_base());
            program(ctx);
          } catch (const util::StoppedError&) {
            return;  // killed; the mom handles cleanup
          } catch (const std::exception& e) {
            kLog.error("job {} rank {}: program failed: {}", job, rank,
                       e.what());
          }
        } else {
          kLog.error("job {}: unknown program '{}'", job, info.program);
        }

        util::ByteWriter done;
        done.put<std::uint64_t>(job);
        done.put<std::int32_t>(rank);
        auto ep = proc.process().open_endpoint();
        torque::rpc::notify(*ep, ms, torque::MsgType::kTaskDone,
                            std::move(done).take());
      });

  register_program(kSleepProgram, [](JobContext& ctx) {
    util::ByteReader r(ctx.info().program_args);
    const auto ms = r.remaining() >= sizeof(std::uint64_t)
                        ? r.get<std::uint64_t>()
                        : 10;
    interruptible_sleep(ctx, std::chrono::milliseconds(ms));
  });
  register_program(kNoopProgram, [](JobContext&) {});
}

}  // namespace dac::core
