#include "core/cluster.hpp"

#include <thread>

#include "dacc/daemon.hpp"
#include "torque/rpc.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace dac::core {

namespace {
const util::Logger kLog("dac_cluster");
}

DacCluster::DacCluster(DacClusterConfig config) : config_(std::move(config)) {
  vnet::ClusterTopology topo;
  topo.node_count = config_.total_nodes();
  topo.network = config_.network;
  topo.process_start_delay = std::chrono::microseconds(0);
  topo.hostnames.push_back("head");
  for (std::size_t i = 0; i < config_.compute_nodes; ++i) {
    topo.hostnames.push_back("cn" + std::to_string(i));
  }
  for (std::size_t i = 0; i < config_.accel_nodes; ++i) {
    topo.hostnames.push_back("ac" + std::to_string(i));
  }
  cluster_ = std::make_unique<vnet::Cluster>(std::move(topo));
  runtime_ = std::make_unique<minimpi::Runtime>(*cluster_);
  devices_ = std::make_unique<dacc::DeviceManager>(config_.device);

  dacc::register_daemon_executables(*runtime_, *devices_);
  register_builtin_executables();

  // Boot the head-node daemons.
  server_ =
      std::make_unique<torque::PbsServer>(head(), config_.timing, config_.svc);
  daemons_.push_back(head().spawn(
      {.name = "pbs_server"},
      [this](vnet::Process& proc) { server_->run(proc); }));

  maui::SchedulerConfig sched;
  sched.server = server_->address();
  sched.policy = config_.policy;
  sched.weights = config_.weights;
  sched.timing = config_.timing;
  sched.dynamic_first = config_.dynamic_first;
  sched.dyn_owner_pool_cap = config_.dyn_owner_pool_cap;
  sched.retry = config_.svc.retry;
  scheduler_ = std::make_unique<maui::MauiScheduler>(head(), sched);
  daemons_.push_back(head().spawn(
      {.name = "maui"},
      [this](vnet::Process& proc) { scheduler_->run(proc); }));

  // Boot one pbs_mom per worker node.
  for (std::size_t i = 1; i < cluster_->size(); ++i) {
    auto& node = cluster_->node(i);
    torque::MomConfig mc;
    mc.kind = i <= config_.compute_nodes ? torque::NodeKind::kCompute
                                         : torque::NodeKind::kAccelerator;
    mc.np = mc.kind == torque::NodeKind::kCompute ? 8 : 1;
    mc.server = server_->address();
    mc.timing = config_.timing;
    mc.enforce_walltime = config_.enforce_walltime;
    mc.retry = config_.svc.retry;
    mc.dedup_window = config_.svc.dedup_window;
    auto mom = std::make_unique<torque::PbsMom>(node, mc, *runtime_, tasks_);
    auto* mom_ptr = mom.get();
    moms_.push_back(std::move(mom));
    daemons_.push_back(node.spawn(
        {.name = "pbs_mom"},
        [mom_ptr](vnet::Process& proc) { mom_ptr->run(proc); }));
  }

  // Wait until every mom registered so the first submission can schedule.
  auto ifl = client();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ifl.stat_nodes().size() < cluster_->size() - 1) {
    if (std::chrono::steady_clock::now() > deadline) {
      throw util::ProtocolError("DacCluster: moms did not register in time");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  kLog.info("DAC cluster up: {} compute, {} accelerator node(s)",
            config_.compute_nodes, config_.accel_nodes);
}

DacCluster::~DacCluster() { shutdown(); }

void DacCluster::fail_node(std::size_t cluster_index) {
  if (cluster_index == 0 || cluster_index >= cluster_->size()) {
    throw std::invalid_argument("fail_node: not a worker node");
  }
  cluster_->node(cluster_index).stop_all_processes();
  kLog.warn("injected failure on '{}'",
            cluster_->node(cluster_index).hostname());
}

void DacCluster::recover_node(std::size_t cluster_index) {
  if (cluster_index == 0 || cluster_index >= cluster_->size()) {
    throw std::invalid_argument("recover_node: not a worker node");
  }
  auto* mom = moms_.at(cluster_index - 1).get();
  auto& node = cluster_->node(cluster_index);
  daemons_.push_back(node.spawn(
      {.name = "pbs_mom"},
      [mom](vnet::Process& proc) { mom->run(proc); }));
  kLog.info("mom on '{}' restarted", node.hostname());
}

void DacCluster::shutdown() {
  if (down_) return;
  down_ = true;
  cluster_->shutdown();
}

vnet::Node& DacCluster::compute_node(std::size_t i) {
  return cluster_->node(1 + i);
}

vnet::Node& DacCluster::accel_node(std::size_t i) {
  return cluster_->node(1 + config_.compute_nodes + i);
}

const vnet::Address& DacCluster::server_address() const {
  return server_->address();
}

maui::SchedulerStatsSnapshot DacCluster::scheduler_stats() const {
  return scheduler_->stats();
}

svc::MetricsSnapshot DacCluster::metrics_snapshot() const {
  return server_->metrics().snapshot();
}

void DacCluster::register_program(const std::string& name,
                                  JobProgram program) {
  ScopedLock lock(programs_mu_);
  programs_[name] = std::move(program);
}

torque::Ifl DacCluster::client() {
  return torque::Ifl(head(), server_->address(), config_.svc.retry);
}

torque::JobId DacCluster::submit(const torque::JobSpec& spec) {
  return client().submit(spec);
}

torque::JobId DacCluster::submit_program(const std::string& program,
                                         int nodes, int acpn,
                                         util::Bytes args,
                                         std::chrono::milliseconds walltime) {
  torque::JobSpec spec;
  spec.name = program;
  spec.program = program;
  spec.program_args = std::move(args);
  spec.resources.nodes = nodes;
  spec.resources.acpn = acpn;
  spec.resources.walltime = walltime;
  return submit(spec);
}

std::optional<torque::JobInfo> DacCluster::wait_job(
    torque::JobId id, std::chrono::milliseconds timeout) {
  auto info =
      client().wait_for_state(id, torque::JobState::kComplete, timeout);
  if (info && info->state == torque::JobState::kComplete) return info;
  return std::nullopt;
}

rmlib::AcSessionConfig DacCluster::session_base() const {
  rmlib::AcSessionConfig base;
  base.server = server_->address();
  base.spawned_daemon_start_delay =
      config_.timing.spawned_daemon_start_delay;
  base.transfer = config_.transfer;
  base.tasks = const_cast<torque::TaskRegistry*>(&tasks_);
  base.retry = config_.svc.retry;
  return base;
}

void DacCluster::register_builtin_executables() {
  // The job wrapper: deserializes the launch info, runs the registered
  // program, and reports TASK_DONE to the mother superior (which triggers
  // job teardown once every rank finished).
  runtime_->register_executable(
      kJobWrapperExe, [this](minimpi::Proc& proc, const util::Bytes& args) {
        util::ByteReader r(args);
        auto info = torque::get_launch_info(r);
        const auto job = info.job;
        const auto ms = info.ms_mom;
        const auto rank = proc.rank();

        JobProgram program;
        {
          ScopedLock lock(programs_mu_);
          if (auto it = programs_.find(info.program);
              it != programs_.end()) {
            program = it->second;
          }
        }
        if (program) {
          try {
            JobContext ctx(proc, std::move(info), session_base());
            program(ctx);
          } catch (const util::StoppedError&) {
            return;  // killed; the mom handles cleanup
          } catch (const std::exception& e) {
            kLog.error("job {} rank {}: program failed: {}", job, rank,
                       e.what());
          }
        } else {
          kLog.error("job {}: unknown program '{}'", job, info.program);
        }

        util::ByteWriter done;
        done.put<std::uint64_t>(job);
        done.put<std::int32_t>(rank);
        auto ep = proc.process().open_endpoint();
        torque::rpc::notify(*ep, ms, torque::MsgType::kTaskDone,
                            std::move(done).take());
      });

  register_program(kSleepProgram, [](JobContext& ctx) {
    util::ByteReader r(ctx.info().program_args);
    const auto ms = r.remaining() >= sizeof(std::uint64_t)
                        ? r.get<std::uint64_t>()
                        : 10;
    interruptible_sleep(ctx, std::chrono::milliseconds(ms));
  });
  register_program(kNoopProgram, [](JobContext&) {});
}

}  // namespace dac::core
