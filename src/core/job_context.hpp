// What a job program sees when the batch system runs it: one JobContext per
// compute-node rank, giving access to the job's MPI world (across its
// compute nodes), the batch-system client (IFL), and the accelerator session
// (AC_Init / AC_Get / AC_Free / AC_Finalize plus the computation API).
#pragma once

#include <memory>
#include <thread>

#include "elastic/agent.hpp"
#include "minimpi/proc.hpp"
#include "simtime/clock.hpp"
#include "util/error.hpp"
#include "rmlib/ac_session.hpp"
#include "torque/ifl.hpp"
#include "torque/launch_info.hpp"

namespace dac::core {

class JobContext {
 public:
  JobContext(minimpi::Proc& proc, torque::JobLaunchInfo info,
             rmlib::AcSessionConfig session_base)
      : proc_(proc), info_(std::move(info)),
        session_base_(std::move(session_base)),
        ifl_(proc.process(), session_base_.server) {
    session_base_.job = info_.job;
    session_base_.cn_index = proc.rank();
    session_base_.static_count = info_.acpn;
  }

  [[nodiscard]] minimpi::Proc& mpi() { return proc_; }
  [[nodiscard]] const torque::JobLaunchInfo& info() const { return info_; }
  [[nodiscard]] torque::JobId job_id() const { return info_.job; }
  // This process's compute-node index within the job (MPI world rank).
  [[nodiscard]] int rank() const { return proc_.rank(); }
  [[nodiscard]] int num_nodes() const { return proc_.size(); }
  // The job's MPI world across its compute nodes.
  [[nodiscard]] const minimpi::Comm& world() { return proc_.world(); }

  // Batch-system client (pbs_dynget & co. go through the session instead).
  [[nodiscard]] torque::Ifl& ifl() { return ifl_; }

  // The accelerator session; constructed on first use. Call
  // session().ac_init() before offloading.
  [[nodiscard]] rmlib::AcSession& session() {
    if (!session_) {
      session_ = std::make_unique<rmlib::AcSession>(proc_, session_base_);
    }
    return *session_;
  }

  // ---- elastic negotiation (src/elastic) -------------------------------
  // Base configuration for an ElasticAgent of this job: pre-filled with the
  // job id, server address and retry policy; the caller sets capabilities
  // and wires grow/shrink callbacks before announce(). Typically:
  //
  //   elastic::ElasticAgent agent(ctx.mpi().process(), ctx.elastic_config());
  //   agent.on_shrink([&](const elastic::Reconfig& r) {
  //     ctx.session().ac_detach(r.client_id);
  //   });
  //   agent.announce();
  //   while (working) { compute(); agent.service(); }
  [[nodiscard]] elastic::AgentConfig elastic_config() const {
    elastic::AgentConfig cfg;
    cfg.job = info_.job;
    cfg.server = session_base_.server;
    cfg.retry = session_base_.retry;
    return cfg;
  }

  // ---- malleability (paper §V generalization) --------------------------
  // "With little extensions to our modified TORQUE resource manager, any
  // malleable application could be supported": grow the job by `count`
  // compute nodes through the same dynamic-request machinery accelerators
  // use. A rejection (granted == false) is a normal outcome.
  struct NodeGrant {
    bool granted = false;
    std::uint64_t client_id = 0;
    std::vector<vnet::NodeId> nodes;
    std::vector<std::string> hosts;
  };
  NodeGrant grow_compute(int count, int min_count = -1) {
    auto reply = ifl_.dynget(job_id(), count,
                             min_count < 0 ? count : min_count,
                             torque::NodeKind::kCompute);
    NodeGrant grant;
    grant.granted = reply.granted;
    grant.client_id = reply.client_id;
    grant.hosts = reply.hosts;
    grant.nodes.assign(reply.host_nodes.begin(), reply.host_nodes.end());
    return grant;
  }
  void release_compute(std::uint64_t client_id) {
    ifl_.dynfree(job_id(), client_id);
  }

  // Spawns `exe` workers on dynamically granted nodes (one rank per node)
  // and returns the intercommunicator; the processes are registered with
  // the job so DISJOIN_JOB can reap them. Collective over `comm`.
  minimpi::Comm spawn_workers(const std::string& exe,
                              const util::Bytes& args,
                              const std::vector<vnet::NodeId>& nodes,
                              const minimpi::Comm& comm, int root = 0,
                              std::uint64_t set_id = 0) {
    minimpi::WorldHandle handle;
    auto inter = proc_.comm_spawn(comm, root, exe, args, nodes,
                                  comm.rank == root ? &handle : nullptr);
    if (comm.rank == root && session_base_.tasks != nullptr) {
      for (std::size_t i = 0; i < handle.processes.size(); ++i) {
        session_base_.tasks->add(job_id(), nodes[i], handle.processes[i],
                                 set_id);
      }
    }
    return inter;
  }

 private:
  minimpi::Proc& proc_;
  torque::JobLaunchInfo info_;
  rmlib::AcSessionConfig session_base_;
  torque::Ifl ifl_;
  std::unique_ptr<rmlib::AcSession> session_;
};

// A job program: the "job script" body run on every compute node of the job.
using JobProgram = std::function<void(JobContext&)>;

// Sleep that honours kills (qdel, walltime enforcement, DISJOIN): plain
// sleep_for cannot be interrupted, so long-running job programs should use
// this (or otherwise poll stop_requested()) to die promptly.
inline void interruptible_sleep(JobContext& ctx,
                                std::chrono::milliseconds duration) {
  const auto deadline = simtime::now() + duration;
  auto& process = ctx.mpi().process();
  while (simtime::now() < deadline) {
    if (process.stop_requested()) throw util::StoppedError();
    simtime::sleep_for(std::min(
        std::chrono::milliseconds(5),
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - simtime::now()) +
            std::chrono::milliseconds(1)));
  }
}

}  // namespace dac::core
