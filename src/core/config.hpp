// Top-level configuration of a DAC cluster instance: topology (one head node
// running pbs_server + maui, plus compute and accelerator nodes), network
// model, batch-system timing, scheduling policy, and device parameters.
// fast() keeps the full stack snappy for tests; paper_testbed() mirrors the
// paper's 8-node evaluation setup with calibrated timing.
#pragma once

#include <cstddef>
#include <memory>

#include "dacc/protocol.hpp"
#include "faults/fault_plan.hpp"
#include "gpusim/device.hpp"
#include "maui/scheduler.hpp"
#include "svc/config.hpp"
#include "torque/batch_config.hpp"
#include "vnet/network_model.hpp"

namespace dac::core {

struct DacClusterConfig {
  std::size_t compute_nodes = 3;
  std::size_t accel_nodes = 4;

  vnet::NetworkModel network;
  torque::BatchTiming timing;

  maui::Policy policy = maui::Policy::kFifo;
  maui::PriorityWeights weights;
  bool dynamic_first = true;  // the paper's dyn-priority mechanism
  // < 1.0 enables the fairshare cap on dynamic allocations (future work).
  double dyn_owner_pool_cap = 1.0;
  // Elastic negotiation (src/elastic, docs/ELASTIC.md): a utilization policy
  // lets the scheduler grow/shrink running jobs. Null keeps elasticity off —
  // the seed scheduler behaviour.
  std::shared_ptr<elastic::Policy> elastic_policy;
  // How long a starved dynamic request waits for a shrink negotiated on its
  // behalf before it is decided normally.
  std::chrono::milliseconds elastic_defer_window{5'000};

  gpusim::DeviceConfig device;
  dacc::TransferOptions transfer;
  // Reply-wait bound for job programs' accelerator calls (AcSession
  // call_timeout). Zero keeps the historical block-forever behavior; set it
  // so jobs survive an accelerator dying mid-call (AcError(kNodeLost)).
  std::chrono::milliseconds ac_call_timeout{0};
  // Mother superiors kill jobs exceeding their requested walltime.
  bool enforce_walltime = true;

  // Service-runtime knobs (read pool, dedup window, client retries). The
  // defaults keep the seed behavior — and the Figure 7-9 shapes — unchanged.
  svc::ServiceTuning svc;

  // ---- high-throughput scheduling (docs/SCHEDULING.md) ------------------
  // Incremental kGetSched cycles folded into the scheduler's QueueMirror;
  // off = the legacy full kGetQueue + kGetNodes fetch pair (ablation).
  bool sched_incremental_fetch = true;
  // Forced full-rescan cadence while incremental (drift backstop).
  int sched_full_rescan_every = 16;
  // One kDynDecide batch per cycle instead of per-request kRunDyn/kRejectDyn.
  bool sched_batched_dyn = true;
  // Lock shards in the server's node database; <= 0 uses the default.
  int node_db_shards = 0;

  // Deterministic failure injection (docs/FAULTS.md): when set, the plan is
  // installed as the fabric's fault injector and wired into the server's
  // metrics registry before any daemon boots. fail_node()/recover_node()
  // then also drive plan->crash_node()/restart_node(). When null, the
  // environment variable DACSCHED_FAULT_SEED installs a delay-only
  // background plan instead (see DacCluster ctor).
  std::shared_ptr<faults::FaultPlan> fault_plan;

  [[nodiscard]] std::size_t total_nodes() const {
    return 1 + compute_nodes + accel_nodes;
  }

  // Test profile: microsecond-scale costs, instant kernels.
  static DacClusterConfig fast() {
    DacClusterConfig c;
    c.network.latency = std::chrono::microseconds(50);
    c.network.loopback_latency = std::chrono::microseconds(5);
    c.network.bytes_per_second = 5e9;
    c.timing = torque::BatchTiming::fast();
    c.device.time_scale = 0.0;
    return c;
  }

  // The paper's testbed shape: 8 nodes — 1 head, and 7 usable as compute or
  // accelerator nodes (here split 1 CN + 6 ACs as in Figure 7's runs);
  // calibrated timing reproducing the sub-second allocation ranges.
  static DacClusterConfig paper_testbed(std::size_t compute = 1,
                                        std::size_t accel = 6) {
    DacClusterConfig c;
    c.compute_nodes = compute;
    c.accel_nodes = accel;
    c.network.latency = std::chrono::microseconds(200);
    c.network.loopback_latency = std::chrono::microseconds(20);
    c.network.bytes_per_second = 1.25e9;  // ~10 GbE
    c.timing = torque::BatchTiming::calibrated();
    return c;
  }
};

}  // namespace dac::core
