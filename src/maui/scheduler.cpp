#include "maui/scheduler.hpp"
#include "simtime/clock.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>

#include "svc/caller.hpp"
#include "svc/deadlines.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace dac::maui {

namespace {
const util::Logger kLog("maui");

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          simtime::now().time_since_epoch())
          .count());
}

double walltime_s(const torque::JobInfo& job) {
  return std::chrono::duration<double>(job.spec.resources.walltime).count();
}

}  // namespace

MauiScheduler::MauiScheduler(vnet::Node& node, SchedulerConfig config)
    : node_(node), config_(std::move(config)) {}

SchedulerStatsSnapshot MauiScheduler::stats() const {
  SchedulerStatsSnapshot s;
  s.cycles = cycles_.load();
  s.jobs_started = jobs_started_.load();
  s.dyn_granted = dyn_granted_.load();
  s.dyn_rejected = dyn_rejected_.load();
  s.dyn_capped = dyn_capped_.load();
  s.backfilled = backfilled_.load();
  s.elast_proposed = elast_proposed_.load();
  return s;
}

void MauiScheduler::run(vnet::Process& proc) {
  trace::set_thread_actor("maui");
  auto wake_ep = proc.open_endpoint();

  const svc::Caller caller(proc, config_.server, config_.retry);
  util::ByteWriter reg;
  reg.put<std::int32_t>(wake_ep->address().node);
  reg.put<std::int32_t>(wake_ep->address().port);
  try {
    (void)caller.call(torque::MsgType::kRegisterScheduler,
                      std::move(reg).take(),
                      {.deadline = svc::deadlines::kDefault});
  } catch (const util::StoppedError&) {
    return;
  }
  kLog.info("maui registered with server, policy {}",
            static_cast<int>(config_.policy));

  while (!proc.stop_requested()) {
    try {
      cycle(proc);
    } catch (const util::StoppedError&) {
      break;
    } catch (const std::exception& e) {
      kLog.error("scheduling cycle failed: {}", e.what());
    }
    // Sleep until the next poll interval or an earlier wake; coalesce any
    // backlog of wake notifications into one cycle.
    auto msg = wake_ep->recv_for(config_.timing.sched_cycle_interval);
    if (!msg && wake_ep->closed()) break;
    while (wake_ep->try_recv()) {
    }
  }
  kLog.info("maui shutting down");
}

void MauiScheduler::cycle(vnet::Process& proc) {
  const auto cycle_no = cycles_.fetch_add(1, std::memory_order_relaxed);

  const svc::Caller caller(proc, config_.server, config_.retry);
  torque::QueueSnapshot snap;
  std::vector<NodeView> view;
  if (config_.incremental_fetch) {
    // One combined fetch: a delta against the mirror's epoch, or a full
    // rescan on first contact and every full_rescan_every cycles. The
    // reconstruction is byte-identical either way (queue_mirror.hpp).
    const bool force_full =
        mirror_.epoch() == 0 ||
        (config_.full_rescan_every > 0 &&
         cycle_no % static_cast<std::uint64_t>(config_.full_rescan_every) ==
             0);
    util::ByteWriter w;
    w.put<std::uint64_t>(mirror_.epoch());
    w.put_bool(force_full);
    auto reply = caller.call(torque::MsgType::kGetSched, std::move(w).take(),
                             {.deadline = svc::deadlines::kDefault});
    util::ByteReader r(reply);
    mirror_.apply(torque::get_sched_delta(r));
    snap = mirror_.queue();
    view = mirror_.node_views();
  } else {
    // Legacy (ablation) path: full queue + full node list, two round trips.
    auto queue_reply = caller.call(torque::MsgType::kGetQueue, {},
                                   {.deadline = svc::deadlines::kDefault});
    util::ByteReader qr(queue_reply);
    snap = torque::get_queue_snapshot(qr);

    auto nodes_reply = caller.call(torque::MsgType::kGetNodes, {},
                                   {.deadline = svc::deadlines::kDefault});
    util::ByteReader nr(nodes_reply);
    const auto count = nr.get<std::uint32_t>();
    view.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto st = torque::get_node_status(nr);
      // Only place on kUp nodes: `up` is false for both suspect and down
      // (NodeStatus invariant), so a flapping node is skipped without being
      // reclaimed.
      if (!st.up) continue;
      view.push_back(NodeView{st.hostname, st.kind, st.free_slots()});
    }
    std::sort(view.begin(), view.end(),
              [](const NodeView& a, const NodeView& b) {
                return a.hostname < b.hostname;
              });
  }

  decay_fairshare(snap.now);

  service_elastic(proc, snap, view);
  if (config_.dynamic_first) service_dynamic(proc, snap, view);
  schedule_static(proc, snap, view);
  if (!config_.dynamic_first) service_dynamic(proc, snap, view);
}

void MauiScheduler::service_elastic(vnet::Process& proc,
                                    const torque::QueueSnapshot& snap,
                                    const std::vector<NodeView>& nodes) {
  if (!config_.elastic_policy) return;
  // Drop deferrals whose request left the queue (granted, rejected, or the
  // job died) so the map cannot grow without bound.
  std::erase_if(deferred_, [&](const auto& kv) {
    return std::none_of(
        snap.dyn.begin(), snap.dyn.end(),
        [&](const torque::DynQueueEntry& d) { return d.dyn_id == kv.first; });
  });

  elastic::PoolPressure pressure;
  pressure.now = snap.now;
  for (const auto& n : nodes) {
    if (n.free < 1) continue;
    if (n.kind == torque::NodeKind::kAccelerator) {
      ++pressure.free_accel;
    } else {
      ++pressure.free_compute;
    }
  }
  pressure.queued_dyn = static_cast<int>(snap.dyn.size());

  std::vector<elastic::DynDemand> demand;
  demand.reserve(snap.dyn.size());
  for (const auto& d : snap.dyn) {
    elastic::DynDemand dd;
    dd.dyn_id = d.dyn_id;
    dd.job = d.job;
    dd.count = d.count;
    dd.min_count = d.min_count;
    dd.kind = d.kind;
    dd.waited_s = std::max(0.0, snap.now - d.arrival);
    dd.trace_id = d.trace_id;
    dd.origin_span = d.origin_span;
    demand.push_back(dd);
  }

  const auto actions =
      config_.elastic_policy->evaluate(pressure, snap.elastic, demand);
  if (actions.empty()) return;
  const svc::Caller caller(proc, config_.server, config_.retry);
  // try_emplace: a deferral window starts at the request's first deferral
  // and is never refreshed — re-deferring every cycle must not extend it.
  const double defer_until =
      snap.now +
      std::chrono::duration<double>(config_.elastic_defer_window).count();
  for (const auto& a : actions) {
    if (a.proposal.count <= 0) {
      // Defer-only: a reclaim already in flight will free the capacity this
      // request is waiting for; no proposal, no span (deferral is silent).
      if (a.defer_dyn != 0) deferred_.try_emplace(a.defer_dyn, defer_until);
      continue;
    }
    // A shrink made on a starved request's behalf joins that request's
    // trace, so the whole negotiation is one causal tree from the dynget.
    trace::SpanScope span(a.proposal.kind == elastic::OfferKind::kShrink
                              ? "maui.propose_shrink"
                              : "maui.propose_grow",
                          trace::Context{a.trace_id, a.origin_span});
    span.note("job", std::to_string(a.proposal.job));
    span.note("count", std::to_string(a.proposal.count));
    util::ByteWriter w;
    elastic::put_proposal(w, a.proposal);
    try {
      (void)caller.call(torque::MsgType::kElastPropose, std::move(w).take(),
                        {.deadline = svc::deadlines::kDefault});
      elast_proposed_.fetch_add(1, std::memory_order_relaxed);
      if (a.defer_dyn != 0) deferred_.try_emplace(a.defer_dyn, defer_until);
    } catch (const util::ProtocolError& e) {
      span.note("error", e.what());
      kLog.warn("elastic proposal for job {} not applied: {}", a.proposal.job,
                e.what());
    }
  }
}

void MauiScheduler::service_dynamic(vnet::Process& proc,
                                    const torque::QueueSnapshot& snap,
                                    std::vector<NodeView>& nodes) {
  const svc::Caller caller(proc, config_.server, config_.retry);
  // Fairshare cap inputs: the accelerator pool size and each owner's
  // current accelerator holdings (static + dynamic), from the snapshot.
  int pool = 0;
  for (const auto& n : nodes) {
    if (n.kind == torque::NodeKind::kAccelerator) ++pool;
  }
  std::map<std::string, int> holdings;
  std::map<torque::JobId, const torque::JobInfo*> job_by_id;
  for (const auto& j : snap.jobs) {
    job_by_id[j.id] = &j;
    if (j.state == torque::JobState::kRunning ||
        j.state == torque::JobState::kDynQueued) {
      holdings[j.spec.owner] += static_cast<int>(j.accel_hosts.size()) +
                                static_cast<int>(j.dyn_accel_hosts.size());
    }
  }

  // Strictly FIFO, one at a time — the serialization the paper's Figure 9
  // observes across concurrent requesters. In batched mode the decisions
  // are still made one at a time against the same shared view (identical
  // outcomes), but they ship to the server as one kDynDecide message, and
  // the per-request base cost is charged once for the whole batch.
  std::vector<torque::DynDecision> decisions;
  bool batch_base_charged = false;
  for (const auto& d : snap.dyn) {
    // A request deferred for an in-flight shrink negotiation is skipped
    // silently (a reject is final, a deferral is not): no decision span, no
    // simulated decision cost. It is serviced the moment freed capacity can
    // satisfy it, or decided normally once the window expires.
    if (const auto dit = deferred_.find(d.dyn_id); dit != deferred_.end()) {
      if (snap.now < dit->second) {
        int free = 0;
        for (const auto& n : nodes) {
          if (n.kind == d.kind && n.free >= 1) ++free;
        }
        if (free < d.min_count) continue;
      }
      deferred_.erase(dit);
    }
    const auto pickup = steady_ns();
    if (config_.batched_dyn) {
      if (!batch_base_charged &&
          config_.timing.sched_dyn_base_cost.count() > 0) {
        simtime::sleep_for(config_.timing.sched_dyn_base_cost);
      }
      batch_base_charged = true;
      const auto work = d.count * config_.timing.sched_per_node_cost;
      if (work.count() > 0) simtime::sleep_for(work);
    } else {
      const auto work = config_.timing.sched_dyn_base_cost +
                        d.count * config_.timing.sched_per_node_cost;
      if (work.count() > 0) simtime::sleep_for(work);
    }

    // Fairshare cap: reject a grant that would push one owner above its
    // share of the accelerator pool (the paper's future-work fairness
    // policy; only applied to accelerator requests).
    bool capped = false;
    if (config_.dyn_owner_pool_cap < 1.0 &&
        d.kind == torque::NodeKind::kAccelerator) {
      if (auto it = job_by_id.find(d.job); it != job_by_id.end()) {
        const auto& owner = it->second->spec.owner;
        const double after = holdings[owner] + d.min_count;
        if (after > config_.dyn_owner_pool_cap * pool) capped = true;
      }
    }
    // Try the full request; if the pool is short but the requester accepts
    // fewer (min_count < count), grant what is available — the partial
    // allocation extension (paper future work, §VI).
    // Compute-node grants (malleability) must hand out nodes the job does
    // not already occupy; temporarily hide its own hosts from the view.
    std::vector<NodeView> filtered;
    std::vector<NodeView>* pool_view = &nodes;
    if (d.kind == torque::NodeKind::kCompute) {
      const auto it = job_by_id.find(d.job);
      filtered.reserve(nodes.size());
      for (const auto& n : nodes) {
        const bool held =
            it != job_by_id.end() &&
            (std::find(it->second->compute_hosts.begin(),
                       it->second->compute_hosts.end(),
                       n.hostname) != it->second->compute_hosts.end() ||
             std::find(it->second->dyn_accel_hosts.begin(),
                       it->second->dyn_accel_hosts.end(),
                       n.hostname) != it->second->dyn_accel_hosts.end());
        if (!held) filtered.push_back(n);
      }
      pool_view = &filtered;
    }

    auto hosts = capped ? std::vector<std::string>{}
                        : try_allocate_dyn(*pool_view, d.kind, d.count);
    if (hosts.empty() && !capped && d.min_count < d.count) {
      int free = 0;
      for (const auto& n : *pool_view) {
        if (n.kind == d.kind && n.free >= 1) ++free;
      }
      if (free >= d.min_count) {
        hosts = try_allocate_dyn(*pool_view, d.kind, free);
      }
    }
    const bool grant = static_cast<int>(hosts.size()) >= d.min_count;
    if (grant && pool_view == &filtered) {
      // The debit landed on the per-request filtered copy; mirror it into
      // the shared view, or every later request in this cycle re-sees the
      // same free slots and its grant dies as an allocation conflict at the
      // server.
      for (const auto& h : hosts) {
        const auto it = std::find_if(
            nodes.begin(), nodes.end(),
            [&](const NodeView& n) { return n.hostname == h; });
        if (it != nodes.end()) it->free -= 1;
      }
    }
    // The decision span joins the requester's trace (context shipped in the
    // queue snapshot), so one trace covers dynget -> decision -> attach.
    trace::SpanScope span(grant ? "maui.grant_dyn" : "maui.reject_dyn",
                          trace::Context{d.trace_id, d.origin_span});
    span.note("dyn", std::to_string(d.dyn_id));
    span.note("job", std::to_string(d.job));
    if (capped) span.note("capped", "1");
    if (grant) span.note("hosts", std::to_string(hosts.size()));

    // Stats count the *decision*; in batched mode a grant the server later
    // rolls back (allocation race) is still counted as granted here, the
    // same optimism the per-request path has between call and conflict
    // reply.
    if (grant) {
      dyn_granted_.fetch_add(1, std::memory_order_relaxed);
      if (auto it = job_by_id.find(d.job); it != job_by_id.end()) {
        holdings[it->second->spec.owner] += static_cast<int>(hosts.size());
      }
    } else {
      dyn_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (capped) dyn_capped_.fetch_add(1, std::memory_order_relaxed);
    }

    if (config_.batched_dyn) {
      torque::DynDecision dec;
      dec.dyn_id = d.dyn_id;
      dec.grant = grant;
      dec.pickup_ns = pickup;
      if (grant) dec.hosts = std::move(hosts);
      // Ship the decision span's identity so the server-side application
      // runs as its child — same causal tree as the per-request path.
      const auto ctx = span.context();
      dec.trace_id = ctx.trace;
      dec.span = ctx.span;
      decisions.push_back(std::move(dec));
      continue;
    }

    util::ByteWriter w;
    w.put<std::uint64_t>(d.dyn_id);
    w.put<std::uint64_t>(pickup);
    try {
      if (grant) {
        w.put_string_vector(hosts);
        (void)caller.call(torque::MsgType::kRunDyn, std::move(w).take(),
                          {.deadline = svc::deadlines::kDefault});
      } else {
        (void)caller.call(torque::MsgType::kRejectDyn, std::move(w).take(),
                          {.deadline = svc::deadlines::kDefault});
      }
    } catch (const util::ProtocolError& e) {
      span.note("error", e.what());
      kLog.warn("dyn {} decision not applied: {}", d.dyn_id, e.what());
    }
  }

  if (!decisions.empty()) {
    util::ByteWriter w;
    torque::put_dyn_decisions(w, decisions);
    try {
      (void)caller.call(torque::MsgType::kDynDecide, std::move(w).take(),
                        {.deadline = svc::deadlines::kDefault});
    } catch (const util::ProtocolError& e) {
      kLog.warn("dyn decision batch ({} decision(s)) not applied: {}",
                decisions.size(), e.what());
    }
  }
}

double MauiScheduler::priority_of(const torque::JobInfo& job,
                                  double now) const {
  const auto& w = config_.weights;
  double p = w.qos * job.spec.priority +
             w.queue_time * std::max(0.0, now - job.submit_time);
  if (w.fairshare > 0.0) {
    if (auto it = usage_.find(job.spec.owner); it != usage_.end()) {
      p -= w.fairshare * it->second;
    }
  }
  return p;
}

void MauiScheduler::decay_fairshare(double now) {
  if (last_decay_s_ < 0.0) {
    last_decay_s_ = now;
    return;
  }
  const double dt = now - last_decay_s_;
  last_decay_s_ = now;
  if (dt <= 0.0 || config_.weights.fairshare_halflife <= 0.0) return;
  const double factor =
      std::exp2(-dt / config_.weights.fairshare_halflife);
  for (auto& [owner, usage] : usage_) usage *= factor;
}

MauiScheduler::Allocation MauiScheduler::try_allocate(
    std::vector<NodeView>& nodes, const torque::ResourceRequest& req) const {
  Allocation alloc;
  std::vector<std::size_t> compute_idx;
  std::vector<std::size_t> accel_idx;
  for (std::size_t i = 0;
       i < nodes.size() &&
       (static_cast<int>(compute_idx.size()) < req.nodes ||
        static_cast<int>(accel_idx.size()) < req.total_accelerators());
       ++i) {
    const auto& n = nodes[i];
    if (n.kind == torque::NodeKind::kCompute &&
        static_cast<int>(compute_idx.size()) < req.nodes &&
        n.free >= req.ppn) {
      compute_idx.push_back(i);
    } else if (n.kind == torque::NodeKind::kAccelerator &&
               static_cast<int>(accel_idx.size()) <
                   req.total_accelerators() &&
               n.free >= 1) {
      accel_idx.push_back(i);
    }
  }
  if (static_cast<int>(compute_idx.size()) < req.nodes ||
      static_cast<int>(accel_idx.size()) < req.total_accelerators()) {
    return alloc;  // not ok
  }
  for (auto i : compute_idx) {
    nodes[i].free -= req.ppn;
    alloc.compute.push_back(nodes[i].hostname);
  }
  for (auto i : accel_idx) {
    DAC_CHECK(nodes[i].free >= 0, "accelerator {} oversubscribed (free={})",
              nodes[i].hostname, nodes[i].free);
    nodes[i].free -= 1;
    alloc.accel.push_back(nodes[i].hostname);
  }
  // No AC double-assignment: each accelerator host appears at most once in
  // the grant.
  DAC_DCHECK(std::set<std::string>(alloc.accel.begin(), alloc.accel.end())
                     .size() == alloc.accel.size(),
             "duplicate accelerator host in allocation");
  alloc.ok = true;
  return alloc;
}

std::vector<std::string> MauiScheduler::try_allocate_dyn(
    std::vector<NodeView>& nodes, torque::NodeKind kind, int count) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0;
       i < nodes.size() && static_cast<int>(idx.size()) < count; ++i) {
    if (nodes[i].kind == kind && nodes[i].free >= 1) {
      idx.push_back(i);
    }
  }
  if (static_cast<int>(idx.size()) < count) return {};
  std::vector<std::string> hosts;
  for (auto i : idx) {
    nodes[i].free -= 1;
    hosts.push_back(nodes[i].hostname);
  }
  // Dynamic grants come from distinct free nodes — the scheduler must never
  // hand the same accelerator to one request twice.
  DAC_DCHECK(
      std::set<std::string>(hosts.begin(), hosts.end()).size() == hosts.size(),
      "duplicate host in dynamic grant");
  return hosts;
}

bool MauiScheduler::send_run_job(vnet::Process& proc,
                                 const torque::JobInfo& job,
                                 const Allocation& alloc) {
  // Join the trace recorded at submission: the scheduling decision is part
  // of the job's causal story, not of the GetQueue poll that revealed it.
  trace::SpanScope span("maui.run_job",
                        trace::Context{job.trace_id, job.origin_span});
  span.note("job", std::to_string(job.id));
  span.note("compute", std::to_string(alloc.compute.size()));
  span.note("accel", std::to_string(alloc.accel.size()));
  util::ByteWriter w;
  w.put<std::uint64_t>(job.id);
  w.put_string_vector(alloc.compute);
  w.put_string_vector(alloc.accel);
  try {
    const svc::Caller caller(proc, config_.server, config_.retry);
    (void)caller.call(torque::MsgType::kRunJob, std::move(w).take(),
                      {.deadline = svc::deadlines::kDefault});
  } catch (const util::ProtocolError& e) {
    span.note("error", e.what());
    kLog.warn("run_job {} not applied: {}", job.id, e.what());
    return false;
  }
  jobs_started_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void MauiScheduler::schedule_static(vnet::Process& proc,
                                    const torque::QueueSnapshot& snap,
                                    std::vector<NodeView>& nodes) {
  std::vector<const torque::JobInfo*> queued;
  std::vector<const torque::JobInfo*> running;
  for (const auto& j : snap.jobs) {
    if (j.state == torque::JobState::kQueued) queued.push_back(&j);
    if (j.state == torque::JobState::kRunning ||
        j.state == torque::JobState::kDynQueued) {
      running.push_back(&j);
    }
  }
  if (queued.empty()) return;

  // Prioritization phase: Maui evaluates every queued job each cycle (this
  // per-job cost is what delays a mid-cycle dynamic request — Figure 8).
  // Incremental cycles re-evaluate only the jobs the delta touched and use
  // cached priorities for the rest, so the modeled cost is bounded by the
  // delta size; the decisions themselves are unchanged (same sort, same
  // allocation attempts).
  if (config_.timing.sched_job_eval_cost.count() > 0) {
    auto evaluated = queued.size();
    if (config_.incremental_fetch) {
      evaluated = std::min(evaluated, mirror_.last_changed());
    }
    if (evaluated > 0) {
      simtime::sleep_for(evaluated * config_.timing.sched_job_eval_cost);
    }
  }

  switch (config_.policy) {
    case Policy::kFifo:
      std::sort(queued.begin(), queued.end(),
                [](const torque::JobInfo* a, const torque::JobInfo* b) {
                  return a->submit_time != b->submit_time
                             ? a->submit_time < b->submit_time
                             : a->id < b->id;
                });
      break;
    case Policy::kPriority:
    case Policy::kBackfill:
      std::sort(queued.begin(), queued.end(),
                [&](const torque::JobInfo* a, const torque::JobInfo* b) {
                  const double pa = priority_of(*a, snap.now);
                  const double pb = priority_of(*b, snap.now);
                  return pa != pb ? pa > pb : a->id < b->id;
                });
      break;
  }

  bool blocked = false;
  double shadow_time = 0.0;  // absolute server time the blocked job can start

  for (const auto* job : queued) {
    if (proc.stop_requested()) throw util::StoppedError();
    if (!blocked) {
      auto alloc = try_allocate(nodes, job->spec.resources);
      if (alloc.ok) {
        if (send_run_job(proc, *job, alloc)) {
          usage_[job->spec.owner] +=
              job->spec.resources.nodes * walltime_s(*job);
        }
        continue;
      }
      if (config_.policy != Policy::kBackfill) {
        if (config_.policy == Policy::kFifo) return;  // strict FIFO blocks
        continue;  // priority: skip, try the next job
      }
      // EASY backfill: reserve for this job and compute its shadow time
      // from the running jobs' walltime estimates.
      blocked = true;
      std::vector<std::pair<double, const torque::JobInfo*>> ends;
      ends.reserve(running.size());
      for (const auto* rj : running) {
        const double start =
            rj->start_time >= 0.0 ? rj->start_time : snap.now;
        ends.emplace_back(start + walltime_s(*rj), rj);
      }
      std::sort(ends.begin(), ends.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      auto future = nodes;  // copy of the current free view
      shadow_time = snap.now + 3600.0;  // fallback horizon
      for (const auto& [end_time, rj] : ends) {
        // Return the finished job's slots to the view.
        for (auto& n : future) {
          const auto held_compute =
              std::find(rj->compute_hosts.begin(), rj->compute_hosts.end(),
                        n.hostname) != rj->compute_hosts.end();
          if (held_compute) n.free += rj->spec.resources.ppn;
          const auto held_accel =
              std::find(rj->accel_hosts.begin(), rj->accel_hosts.end(),
                        n.hostname) != rj->accel_hosts.end() ||
              std::find(rj->dyn_accel_hosts.begin(),
                        rj->dyn_accel_hosts.end(),
                        n.hostname) != rj->dyn_accel_hosts.end();
          if (held_accel) n.free += 1;
        }
        auto probe = future;
        if (try_allocate(probe, job->spec.resources).ok) {
          shadow_time = end_time;
          break;
        }
      }
      continue;
    }
    // Backfill candidates behind the reservation: run only if they fit now
    // and finish before the shadow time (conservative EASY).
    if (snap.now + walltime_s(*job) > shadow_time) continue;
    auto alloc = try_allocate(nodes, job->spec.resources);
    if (!alloc.ok) continue;
    if (send_run_job(proc, *job, alloc)) {
      usage_[job->spec.owner] +=
          job->spec.resources.nodes * walltime_s(*job);
      backfilled_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace dac::maui
