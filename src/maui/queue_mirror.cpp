#include "maui/queue_mirror.hpp"

namespace dac::maui {

namespace {

bool terminal(const torque::JobInfo& j) {
  return j.state == torque::JobState::kComplete ||
         j.state == torque::JobState::kCancelled;
}

}  // namespace

void QueueMirror::apply(const torque::SchedDelta& d) {
  if (d.full) {
    jobs_.clear();
    nodes_.clear();
    for (const auto& j : d.jobs) {
      // A full fetch ships only live jobs, but tolerate terminal ones: the
      // fold must not depend on the server filtering.
      if (!terminal(j)) jobs_.insert_or_assign(j.id, j);
    }
  } else {
    for (const auto& j : d.jobs) {
      if (terminal(j)) {
        jobs_.erase(j.id);
      } else {
        jobs_.insert_or_assign(j.id, j);
      }
    }
  }
  for (const auto& n : d.nodes) nodes_.insert_or_assign(n.hostname, n);
  dyn_ = d.dyn;
  elastic_ = d.elastic;
  now_ = d.now;
  epoch_ = d.epoch;
  last_changed_ = d.jobs.size();
}

torque::QueueSnapshot QueueMirror::queue() const {
  torque::QueueSnapshot snap;
  snap.now = now_;
  snap.jobs.reserve(jobs_.size());
  for (const auto& [id, info] : jobs_) snap.jobs.push_back(info);
  snap.dyn = dyn_;
  snap.elastic = elastic_;
  return snap;
}

std::vector<NodeView> QueueMirror::node_views() const {
  std::vector<NodeView> view;
  view.reserve(nodes_.size());
  for (const auto& [host, st] : nodes_) {
    // Only place on kUp nodes: `up` is false for both suspect and down
    // (NodeStatus invariant), so a flapping node is skipped without being
    // reclaimed.
    if (!st.up) continue;
    view.push_back(NodeView{st.hostname, st.kind, st.free_slots()});
  }
  return view;  // map iteration: already ascending by hostname
}

}  // namespace dac::maui
