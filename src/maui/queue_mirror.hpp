// The scheduler's local mirror of the server's scheduling state, fed by
// kGetSched deltas (torque/sched_feed.hpp).
//
// The contract that makes incremental fetching safe is reconstruction
// equivalence: after apply()ing any prefix of deltas, queue() and
// node_views() must be byte-identical to what a full fetch at the same
// instant would have produced. The server guarantees the inputs (every
// scheduler-visible job/node mutation marks the entity dirty; terminal jobs
// are shipped one last time so the mirror can drop them); the mirror
// guarantees the fold (insert_or_assign semantics, deterministic ordering:
// jobs ascending by id, nodes ascending by hostname — exactly the orders a
// full fetch ships). tests/maui/sched_equivalence_test.cpp pins this
// property over randomized event streams.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "torque/sched_feed.hpp"
#include "torque/server.hpp"

namespace dac::maui {

// Scheduler-local free-slot view, debited as a cycle allocates.
struct NodeView {
  std::string hostname;
  torque::NodeKind kind;
  int free = 0;
};

class QueueMirror {
 public:
  // Folds one fetch result in. A full delta resets the mirror; an
  // incremental delta upserts changed jobs/nodes and erases jobs that
  // arrived in a terminal state. Dynamic requests and elastic views are
  // always shipped complete and replace the previous set wholesale.
  void apply(const torque::SchedDelta& d);

  // Epoch of the last applied delta; echo into the next kGetSched. Zero
  // means nothing applied yet (the first fetch must be full).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  // Number of job records the last delta carried — the incremental cycle's
  // re-evaluation cost model (docs/SCHEDULING.md).
  [[nodiscard]] std::size_t last_changed() const { return last_changed_; }

  // Reconstructed fetch inputs, in full-fetch order.
  [[nodiscard]] torque::QueueSnapshot queue() const;
  [[nodiscard]] std::vector<NodeView> node_views() const;

  [[nodiscard]] std::size_t job_count() const { return jobs_.size(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

 private:
  std::uint64_t epoch_ = 0;
  double now_ = 0.0;
  std::size_t last_changed_ = 0;
  std::map<torque::JobId, torque::JobInfo> jobs_;
  std::map<std::string, torque::NodeStatus> nodes_;
  std::vector<torque::DynQueueEntry> dyn_;
  std::vector<elastic::JobView> elastic_;
};

}  // namespace dac::maui
