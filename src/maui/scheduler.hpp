// The Maui-like scheduler daemon. Each cycle it pulls the queue and node
// state from the pbs_server, services dynamic requests first (the paper's
// basic dynamic-priority mechanism, FIFO among themselves), then schedules
// static jobs under the configured policy: FIFO, multi-factor priority
// (queue time, QoS, fairshare), or EASY backfill with a reservation for the
// highest-priority blocked job.
//
// The cycle structure is what the paper's Figures 8/9 measure: a dynamic
// request arriving while the scheduler is mid-cycle waits for the cycle to
// finish, and concurrent dynamic requests are serviced strictly one at a
// time.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "elastic/policy.hpp"
#include "maui/queue_mirror.hpp"
#include "svc/caller.hpp"
#include "torque/batch_config.hpp"
#include "torque/node_db.hpp"
#include "torque/server.hpp"
#include "vnet/node.hpp"

namespace dac::maui {

enum class Policy : std::uint8_t { kFifo = 0, kPriority, kBackfill };

struct PriorityWeights {
  double queue_time = 1.0;   // points per second of queue wait
  double qos = 1000.0;       // multiplier on JobSpec::priority
  double fairshare = 0.0;    // penalty per accumulated node-second of usage
  // Exponential decay half-life of fairshare usage, in seconds.
  double fairshare_halflife = 30.0;
};

struct SchedulerConfig {
  vnet::Address server;
  Policy policy = Policy::kFifo;
  PriorityWeights weights;
  torque::BatchTiming timing;
  // The paper schedules dynamic requests with top priority. Disabling this
  // (ablation A3) appends them after the static queue instead.
  bool dynamic_first = true;
  // Fairness cap for dynamic allocations (paper §VI future work: "better
  // scheduling policies taking fairshare into account"): one owner may hold
  // at most this fraction of the accelerator pool after a grant. 1.0
  // disables the cap (the paper's behaviour).
  double dyn_owner_pool_cap = 1.0;
  // Retry policy for the scheduler's calls to the server. The server
  // deduplicates retransmitted request-ids, so run/reject decisions are
  // retry-safe.
  svc::RetryPolicy retry;
  // Elastic negotiation policy (src/elastic). Null disables elasticity
  // entirely — no proposals, no deferrals, cycle behaviour identical to the
  // seed scheduler.
  std::shared_ptr<elastic::Policy> elastic_policy;
  // How long a dynamic request may be deferred while a shrink negotiation
  // made on its behalf runs. Past the window the request is decided
  // normally (usually rejected, since the pool is still short).
  std::chrono::milliseconds elastic_defer_window{5'000};

  // ---- high-throughput scheduling (docs/SCHEDULING.md) ------------------
  // Fetch the cycle's state through one incremental kGetSched call folded
  // into a local QueueMirror, instead of the full kGetQueue + kGetNodes
  // pair. Decisions are identical either way (the equivalence contract in
  // tests/maui); only the fetch volume and modeled evaluation cost change.
  bool incremental_fetch = true;
  // Cycles between forced full rescans while incremental (drift backstop;
  // the equivalence tests assert the rescan changes nothing). <= 0 never
  // forces a rescan after the first fetch.
  int full_rescan_every = 16;
  // Ship all of a cycle's dynamic grant/reject decisions in one kDynDecide
  // batch instead of one kRunDyn/kRejectDyn round-trip each. Decision logic
  // is unchanged; the per-request scheduling cost drops from
  // (base + count*per_node) to per-node only, with the base charged once
  // per batch.
  bool batched_dyn = true;
};

struct SchedulerStatsSnapshot {
  std::uint64_t cycles = 0;
  std::uint64_t jobs_started = 0;
  std::uint64_t dyn_granted = 0;
  std::uint64_t dyn_rejected = 0;
  std::uint64_t dyn_capped = 0;  // rejected by the owner pool cap
  std::uint64_t backfilled = 0;
  std::uint64_t elast_proposed = 0;  // grow/shrink proposals sent
};

class MauiScheduler {
 public:
  MauiScheduler(vnet::Node& node, SchedulerConfig config);

  MauiScheduler(const MauiScheduler&) = delete;
  MauiScheduler& operator=(const MauiScheduler&) = delete;

  // Daemon loop: registers with the server, then schedules until stopped.
  void run(vnet::Process& proc);

  [[nodiscard]] SchedulerStatsSnapshot stats() const;

 private:
  void cycle(vnet::Process& proc);
  // Feeds pool pressure and elasticity views to the configured policy and
  // sends its proposals to the server; a shrink proposal defers the starved
  // dynamic request it serves instead of rejecting it.
  void service_elastic(vnet::Process& proc,
                       const torque::QueueSnapshot& snap,
                       const std::vector<NodeView>& nodes);
  void service_dynamic(vnet::Process& proc,
                       const torque::QueueSnapshot& snap,
                       std::vector<NodeView>& nodes);
  void schedule_static(vnet::Process& proc,
                       const torque::QueueSnapshot& snap,
                       std::vector<NodeView>& nodes);

  [[nodiscard]] double priority_of(const torque::JobInfo& job,
                                   double now) const;
  // Picks hosts for a (nodes, ppn, acpn) request from the view; empty result
  // means insufficient resources. On success the view is debited.
  struct Allocation {
    std::vector<std::string> compute;
    std::vector<std::string> accel;
    bool ok = false;
  };
  Allocation try_allocate(std::vector<NodeView>& nodes,
                          const torque::ResourceRequest& req) const;
  // Picks `count` free hosts of `kind` (dynamic requests; one slot each).
  std::vector<std::string> try_allocate_dyn(std::vector<NodeView>& nodes,
                                            torque::NodeKind kind,
                                            int count) const;
  // Takes the JobInfo (not just the id) so the decision span can join the
  // trace captured at the job's submission.
  bool send_run_job(vnet::Process& proc, const torque::JobInfo& job,
                    const Allocation& alloc);
  void decay_fairshare(double dt_seconds);

  vnet::Node& node_;
  SchedulerConfig config_;

  // Local fold of kGetSched deltas (incremental_fetch mode).
  QueueMirror mirror_;

  std::map<std::string, double> usage_;  // owner -> node-seconds (decayed)
  double last_decay_s_ = -1.0;

  // Dynamic requests deferred for an in-flight shrink negotiation:
  // dyn_id -> deadline (server seconds). A deferred request is skipped
  // silently — no decision span — until capacity arrives or the window ends.
  std::map<std::uint64_t, double> deferred_;

  std::atomic<std::uint64_t> cycles_{0};
  std::atomic<std::uint64_t> jobs_started_{0};
  std::atomic<std::uint64_t> dyn_granted_{0};
  std::atomic<std::uint64_t> dyn_rejected_{0};
  std::atomic<std::uint64_t> dyn_capped_{0};
  std::atomic<std::uint64_t> backfilled_{0};
  std::atomic<std::uint64_t> elast_proposed_{0};
};

}  // namespace dac::maui
