#include "minimpi/types.hpp"

namespace dac::minimpi {

void put_group(util::ByteWriter& w, const Group& g) {
  w.put<std::uint32_t>(static_cast<std::uint32_t>(g.members.size()));
  for (const auto& a : g.members) {
    w.put<std::int32_t>(a.node);
    w.put<std::int32_t>(a.port);
  }
}

Group get_group(util::ByteReader& r) {
  const auto n = r.get<std::uint32_t>();
  Group g;
  g.members.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    vnet::Address a;
    a.node = r.get<std::int32_t>();
    a.port = r.get<std::int32_t>();
    g.members.push_back(a);
  }
  return g;
}

}  // namespace dac::minimpi
