#include "minimpi/runtime.hpp"

#include <stdexcept>

#include "minimpi/proc.hpp"
#include "util/logging.hpp"

namespace dac::minimpi {

namespace {
const util::Logger kLog("minimpi");
}

Runtime::Runtime(vnet::Cluster& cluster) : cluster_(cluster) {}

void Runtime::register_executable(const std::string& name, MpiEntry entry) {
  ScopedLock lock(exe_mu_);
  executables_[name] = std::move(entry);
}

bool Runtime::has_executable(const std::string& name) const {
  ScopedLock lock(exe_mu_);
  return executables_.contains(name);
}

WorldHandle Runtime::launch_world(const std::string& executable,
                                  const std::vector<vnet::NodeId>& placement,
                                  const util::Bytes& args,
                                  const LaunchOptions& opts) {
  return launch_impl(executable, placement, args, nullptr, -1,
                     kControlContext, opts);
}

WorldHandle Runtime::launch_spawned_world(
    const std::string& executable, const std::vector<vnet::NodeId>& placement,
    const util::Bytes& args, const Group& parent_group, int parent_root_rank,
    std::uint32_t parent_intercomm_context, const LaunchOptions& opts) {
  return launch_impl(executable, placement, args, &parent_group,
                     parent_root_rank, parent_intercomm_context, opts);
}

WorldHandle Runtime::launch_impl(const std::string& executable,
                                 const std::vector<vnet::NodeId>& placement,
                                 const util::Bytes& args,
                                 const Group* parent_group,
                                 int parent_root_rank,
                                 std::uint32_t parent_intercomm_context,
                                 const LaunchOptions& opts) {
  if (placement.empty()) {
    throw std::invalid_argument("launch: empty placement");
  }
  MpiEntry entry;
  {
    ScopedLock lock(exe_mu_);
    auto it = executables_.find(executable);
    if (it == executables_.end()) {
      throw std::invalid_argument("launch: unknown executable '" + executable +
                                  "'");
    }
    entry = it->second;
  }

  const auto world_context = allocate_context();
  const int n = static_cast<int>(placement.size());

  // Create endpoints synchronously so every rank address is live (and
  // bufferable) before any process runs — the launcher and siblings may
  // message a rank that has not finished its startup delay yet.
  std::vector<std::unique_ptr<vnet::Endpoint>> endpoints;
  Group group;
  std::vector<vnet::Node*> nodes;
  endpoints.reserve(placement.size());
  nodes.reserve(placement.size());
  for (const auto node_id : placement) {
    vnet::Node* node = cluster_.find_node(node_id);
    if (node == nullptr) {
      throw std::invalid_argument("launch: unknown node id " +
                                  std::to_string(node_id));
    }
    auto ep = node->open_endpoint();
    group.members.push_back(ep->address());
    endpoints.push_back(std::move(ep));
    nodes.push_back(node);
  }

  WorldHandle handle;
  handle.context = world_context;
  handle.group = group;
  handle.processes.reserve(placement.size());

  const Group parent_copy = parent_group != nullptr ? *parent_group : Group{};
  const bool spawned = parent_group != nullptr;

  for (int rank = 0; rank < n; ++rank) {
    vnet::SpawnOptions sopts;
    sopts.name = opts.proc_name + "-r" + std::to_string(rank);
    sopts.start_delay = opts.start_delay;
    if (opts.start_stagger.count() > 0) {
      const auto base =
          opts.start_delay.value_or(nodes[static_cast<std::size_t>(rank)]
                                        ->default_start_delay());
      sopts.start_delay = base + rank * opts.start_stagger;
    }
    sopts.env = opts.env;

    // std::function requires copyable targets, so the move-only endpoint
    // rides in a shared holder and is moved out when the process runs.
    auto ep_holder = std::make_shared<std::unique_ptr<vnet::Endpoint>>(
        std::move(endpoints[static_cast<std::size_t>(rank)]));
    auto mailbox = (*ep_holder)->mailbox_weak();

    Comm world;
    world.context = world_context;
    world.local = group;
    world.rank = rank;

    std::optional<Comm> parent;
    if (spawned) {
      Comm p;
      p.context = parent_intercomm_context;
      p.local = group;
      p.remote = parent_copy;
      p.rank = rank;
      parent = std::move(p);
    }

    auto proc_entry = [this, entry, args, ep_holder, world = std::move(world),
                       parent = std::move(parent), spawned, parent_copy,
                       parent_root_rank, parent_intercomm_context](
                          vnet::Process& process) mutable {
      Proc proc(*this, process, std::move(*ep_holder), std::move(world),
                std::move(parent));
      if (spawned) {
        // MPI_Comm_spawn on the parent returns once every child reached
        // MPI_Init; model that with an INIT_DONE control message to the
        // spawn root (network-charged like the real out-of-band traffic).
        util::ByteWriter w;
        w.put<std::uint32_t>(parent_intercomm_context);
        w.put<std::int32_t>(proc.rank());
        proc.send_control(
            parent_copy.members[static_cast<std::size_t>(parent_root_rank)],
            kTagInitDone, std::move(w).take());
      }
      entry(proc, args);
    };

    auto process = nodes[static_cast<std::size_t>(rank)]->spawn(
        std::move(sopts), std::move(proc_entry));
    process->adopt_mailbox(std::move(mailbox));
    handle.processes.push_back(std::move(process));
  }

  kLog.debug("launched world '{}' x{} (ctx {})", executable, n, world_context);
  return handle;
}

std::string Runtime::open_port(const vnet::Address& root_addr) {
  ScopedLock lock(ports_mu_);
  std::string name = "mpiport-" + std::to_string(next_port_id_++);
  ports_[name] = root_addr;
  return name;
}

void Runtime::publish_port(const std::string& name,
                           const vnet::Address& root_addr) {
  ScopedLock lock(ports_mu_);
  ports_[name] = root_addr;
}

std::optional<vnet::Address> Runtime::lookup_port(
    const std::string& name) const {
  ScopedLock lock(ports_mu_);
  if (auto it = ports_.find(name); it != ports_.end()) return it->second;
  return std::nullopt;
}

void Runtime::close_port(const std::string& name) {
  ScopedLock lock(ports_mu_);
  ports_.erase(name);
}

std::uint32_t Runtime::allocate_context() {
  // Even ids; id + 1 is reserved for the communicator derived by
  // intercomm_merge on an intercomm with this context.
  return next_context_.fetch_add(2, std::memory_order_relaxed);
}

}  // namespace dac::minimpi
