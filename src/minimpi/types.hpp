// Core types of the mini-MPI substrate: groups, communicators, receive
// results, and the wire constants shared by proc.cpp / collectives /
// dynamic process management. Semantics follow the MPI primitives the
// paper's resource-management library is defined in terms of.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "vnet/message.hpp"

namespace dac::minimpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

// vnet Message.type for all MPI traffic.
inline constexpr std::uint32_t kMpiMessageType = 0x4D504900;  // "MPI\0"

// Context id space. 0 is the control context used by DPM handshakes
// (connect/accept, spawn INIT_DONE). User communicators get even ids >= 16;
// id+1 is reserved for the communicator derived by intercomm_merge. The high
// bit separates collective traffic from point-to-point on the same
// communicator, as real MPI implementations do.
inline constexpr std::uint32_t kControlContext = 0;
inline constexpr std::uint32_t kCollectiveBit = 0x8000'0000u;
inline constexpr std::uint32_t kFirstUserContext = 16;

// Internal tags on the control context.
inline constexpr int kTagConnectReq = 1;
inline constexpr int kTagConnectAck = 2;
inline constexpr int kTagConnectNack = 3;
inline constexpr int kTagInitDone = 4;

struct Group {
  std::vector<vnet::Address> members;  // rank order

  [[nodiscard]] int size() const { return static_cast<int>(members.size()); }
  [[nodiscard]] int rank_of(const vnet::Address& addr) const {
    for (int r = 0; r < size(); ++r) {
      if (members[static_cast<std::size_t>(r)] == addr) return r;
    }
    return -1;
  }
};

// A communicator. For an intra-communicator `remote` is empty and ranks
// address `local`; for an inter-communicator sends/recvs address the remote
// group, as in MPI.
struct Comm {
  std::uint32_t context = kControlContext;
  Group local;
  Group remote;
  int rank = -1;  // my rank within `local`

  [[nodiscard]] bool is_inter() const { return !remote.members.empty(); }
  [[nodiscard]] int size() const { return local.size(); }
  [[nodiscard]] int remote_size() const { return remote.size(); }
  [[nodiscard]] const vnet::Address& peer(int dst_rank) const {
    const auto& g = is_inter() ? remote : local;
    return g.members[static_cast<std::size_t>(dst_rank)];
  }
};

struct RecvResult {
  int source = kAnySource;
  int tag = kAnyTag;
  util::Bytes data;
};

// Serialization helpers for groups (used in DPM handshakes and by higher
// layers that ship communicator membership in job payloads).
void put_group(util::ByteWriter& w, const Group& g);
Group get_group(util::ByteReader& r);

}  // namespace dac::minimpi
