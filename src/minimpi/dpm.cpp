// MPI-2 dynamic process management: ports + accept/connect (the paper's
// static allocation path), comm_spawn (dynamic allocation path),
// intercomm_merge and disconnect. Handshakes run over the control context so
// every step is charged real network latency by the fabric.
#include <thread>

#include "simtime/clock.hpp"
#include "minimpi/proc.hpp"
#include "svc/backoff.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace dac::minimpi {

namespace {
const util::Logger kLog("minimpi.dpm");

// Canonical orientation for an intercomm-wide barrier when no merge order is
// given (disconnect): the group whose rank-0 address sorts lower goes first.
bool local_is_canonical_low(const Comm& inter) {
  return inter.local.members.front() < inter.remote.members.front();
}

}  // namespace

std::string Proc::open_port() { return runtime_.open_port(address()); }

void Proc::publish_port(const std::string& name) {
  runtime_.publish_port(name, address());
}

Comm Proc::comm_accept(const std::string& port, const Comm& comm, int root) {
  std::uint32_t new_context = 0;
  Group remote;
  if (comm.rank == root) {
    auto req = recv_stored([&](const Stored& s) {
      if (s.context != kControlContext || s.tag != kTagConnectReq) {
        return false;
      }
      util::ByteReader r(s.data);
      return r.get_string() == port;
    });
    util::ByteReader r(req.data);
    (void)r.get_string();  // port name, already matched
    remote = get_group(r);

    new_context = runtime_.allocate_context();
    util::ByteWriter w;
    w.put<std::uint32_t>(new_context);
    put_group(w, comm.local);
    send_control(req.from, kTagConnectAck, std::move(w).take());

    util::ByteWriter bw;
    bw.put<std::uint32_t>(new_context);
    put_group(bw, remote);
    util::Bytes packed = std::move(bw).take();
    bcast(comm, root, packed);
  } else {
    util::Bytes packed;
    bcast(comm, root, packed);
    util::ByteReader r(packed);
    new_context = r.get<std::uint32_t>();
    remote = get_group(r);
  }

  Comm inter;
  inter.context = new_context;
  inter.local = comm.local;
  inter.remote = std::move(remote);
  inter.rank = comm.rank;
  return inter;
}

Comm Proc::comm_connect(const std::string& port, const Comm& comm, int root,
                        std::chrono::milliseconds timeout) {
  std::uint32_t new_context = 0;
  Group remote;
  if (comm.rank == root) {
    // Resolve the port name, waiting for the accept side to publish it (the
    // paper's compute node likewise waits for the daemons' port file). This
    // wait is the dominant share of Figure 7(a)'s AC_Init time.
    const auto deadline = simtime::now() + timeout;
    std::optional<vnet::Address> accept_root;
    svc::Backoff backoff(svc::BackoffPolicy{std::chrono::microseconds(100),
                                            2.0,
                                            std::chrono::microseconds(5000),
                                            0.0});
    while (true) {
      accept_root = runtime_.lookup_port(port);
      if (accept_root) break;
      if (process_.stop_requested()) throw util::StoppedError();
      if (simtime::now() >= deadline) {
        throw util::ProtocolError("comm_connect: port '" + port +
                                  "' not published within timeout");
      }
      backoff.sleep();
    }

    util::ByteWriter w;
    w.put_string(port);
    put_group(w, comm.local);
    send_control(*accept_root, kTagConnectReq, std::move(w).take());

    auto ack = recv_stored([&](const Stored& s) {
      return s.context == kControlContext && s.tag == kTagConnectAck &&
             s.from == *accept_root;
    });
    util::ByteReader r(ack.data);
    new_context = r.get<std::uint32_t>();
    remote = get_group(r);

    util::ByteWriter bw;
    bw.put<std::uint32_t>(new_context);
    put_group(bw, remote);
    util::Bytes packed = std::move(bw).take();
    bcast(comm, root, packed);
  } else {
    util::Bytes packed;
    bcast(comm, root, packed);
    util::ByteReader r(packed);
    new_context = r.get<std::uint32_t>();
    remote = get_group(r);
  }

  Comm inter;
  inter.context = new_context;
  inter.local = comm.local;
  inter.remote = std::move(remote);
  inter.rank = comm.rank;
  return inter;
}

Comm Proc::comm_spawn(const Comm& comm, int root,
                      const std::string& executable, const util::Bytes& args,
                      const std::vector<vnet::NodeId>& placement,
                      WorldHandle* handle_out, const LaunchOptions& opts) {
  std::uint32_t inter_context = 0;
  Group children;
  if (comm.rank == root) {
    inter_context = runtime_.allocate_context();
    auto handle = runtime_.launch_spawned_world(
        executable, placement, args, comm.local, root, inter_context, opts);
    children = handle.group;

    // Block until every child has initialized, as MPI_Comm_spawn does.
    const int n = static_cast<int>(placement.size());
    for (int i = 0; i < n; ++i) {
      (void)recv_stored([&](const Stored& s) {
        if (s.context != kControlContext || s.tag != kTagInitDone) {
          return false;
        }
        util::ByteReader r(s.data);
        return r.get<std::uint32_t>() == inter_context;
      });
    }

    if (handle_out != nullptr) *handle_out = std::move(handle);

    util::ByteWriter bw;
    bw.put<std::uint32_t>(inter_context);
    put_group(bw, children);
    util::Bytes packed = std::move(bw).take();
    bcast(comm, root, packed);
  } else {
    util::Bytes packed;
    bcast(comm, root, packed);
    util::ByteReader r(packed);
    inter_context = r.get<std::uint32_t>();
    children = get_group(r);
  }

  Comm inter;
  inter.context = inter_context;
  inter.local = comm.local;
  inter.remote = std::move(children);
  inter.rank = comm.rank;
  return inter;
}

Comm Proc::intercomm_merge(const Comm& intercomm, bool high) {
  // Contexts are allocated in pairs; the merged intracomm deterministically
  // uses context + 1, so no negotiation round is needed. The trailing
  // barrier provides the synchronization (and network cost) of the real
  // operation.
  Comm merged;
  merged.context = intercomm.context + 1;
  const Group& low = high ? intercomm.remote : intercomm.local;
  const Group& hi = high ? intercomm.local : intercomm.remote;
  merged.local.members = low.members;
  merged.local.members.insert(merged.local.members.end(), hi.members.begin(),
                              hi.members.end());
  merged.rank = high ? low.size() + intercomm.rank : intercomm.rank;
  barrier(merged);
  return merged;
}

void Proc::disconnect(const Comm& comm) {
  if (!comm.is_inter()) {
    barrier(comm);
    return;
  }
  // Intercomm disconnect: barrier across both groups in a canonical order
  // that both sides compute identically.
  const bool low = local_is_canonical_low(comm);
  Group combined;
  const Group& first = low ? comm.local : comm.remote;
  const Group& second = low ? comm.remote : comm.local;
  combined.members = first.members;
  combined.members.insert(combined.members.end(), second.members.begin(),
                          second.members.end());
  const int my_pos = low ? comm.rank : first.size() + comm.rank;
  barrier_on(combined, my_pos, comm.context | kCollectiveBit);
  kLog.debug("disconnected intercomm ctx {}", comm.context);
}

}  // namespace dac::minimpi
