#include "minimpi/proc.hpp"
#include "simtime/clock.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace dac::minimpi {

namespace {

const util::Logger kLog("minimpi");

// Internal tags used by collectives on a communicator's collective context.
constexpr int kTagBarrierArrive = 1;
constexpr int kTagBarrierGo = 2;
constexpr int kTagBcast = 3;
constexpr int kTagGather = 4;
constexpr int kTagScatter = 5;

template <typename T>
T apply_op(T a, T b, ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kMin: return std::min(a, b);
    case ReduceOp::kMax: return std::max(a, b);
  }
  return a;
}

}  // namespace

Proc::Proc(Runtime& runtime, vnet::Process& process,
           std::unique_ptr<vnet::Endpoint> endpoint, Comm world,
           std::optional<Comm> parent)
    : runtime_(runtime),
      process_(process),
      endpoint_(std::move(endpoint)),
      world_(std::move(world)),
      parent_(std::move(parent)) {
  self_.context = runtime_.allocate_context();
  self_.local.members = {endpoint_->address()};
  self_.rank = 0;
}

std::unique_ptr<Proc> Proc::make_singleton(Runtime& runtime,
                                           vnet::Process& process) {
  auto endpoint = process.open_endpoint();
  Comm world;
  world.context = runtime.allocate_context();
  world.local.members = {endpoint->address()};
  world.rank = 0;
  return std::make_unique<Proc>(runtime, process, std::move(endpoint),
                                std::move(world), std::nullopt);
}

// ---- point-to-point ------------------------------------------------------

void Proc::send(const Comm& comm, int dst, int tag, util::Bytes data) {
  send_raw(comm.peer(dst), comm.context, comm.rank, tag, std::move(data));
}

void Proc::send_control(const vnet::Address& to, int tag, util::Bytes data) {
  send_raw(to, kControlContext, -1, tag, std::move(data));
}

void Proc::send_raw(const vnet::Address& to, std::uint32_t context,
                    int src_rank, int tag, util::Bytes data) {
  util::ByteWriter w;
  w.put<std::uint32_t>(context);
  w.put<std::int32_t>(src_rank);
  w.put<std::int32_t>(tag);
  w.put_bytes(data);
  endpoint_->send(to, kMpiMessageType, std::move(w).take());
}

Proc::Stored Proc::parse(vnet::Message&& msg) {
  util::ByteReader r(msg.payload);
  Stored s;
  s.context = r.get<std::uint32_t>();
  s.src_rank = r.get<std::int32_t>();
  s.tag = r.get<std::int32_t>();
  s.data = r.get_bytes();
  s.from = msg.from;
  return s;
}

Proc::Stored Proc::recv_stored(
    const std::function<bool(const Stored&)>& pred) {
  while (true) {
    for (auto it = store_.begin(); it != store_.end(); ++it) {
      if (pred(*it)) {
        Stored s = std::move(*it);
        store_.erase(it);
        return s;
      }
    }
    auto msg = endpoint_->recv();
    if (!msg) throw util::StoppedError();
    if (msg->type != kMpiMessageType) {
      kLog.warn("MPI endpoint received non-MPI message type {}", msg->type);
      continue;
    }
    store_.push_back(parse(std::move(*msg)));
  }
}

std::optional<Proc::Stored> Proc::recv_stored_for(
    const std::function<bool(const Stored&)>& pred,
    std::chrono::milliseconds timeout) {
  const auto deadline = simtime::now() + timeout;
  while (true) {
    for (auto it = store_.begin(); it != store_.end(); ++it) {
      if (pred(*it)) {
        Stored s = std::move(*it);
        store_.erase(it);
        return s;
      }
    }
    const auto now = simtime::now();
    if (now >= deadline) return std::nullopt;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    auto msg = endpoint_->recv_for(std::max(remaining,
                                            std::chrono::milliseconds(1)));
    if (!msg) {
      if (endpoint_->closed()) throw util::StoppedError();
      continue;  // timeout slice; loop re-checks the deadline
    }
    if (msg->type != kMpiMessageType) continue;
    store_.push_back(parse(std::move(*msg)));
  }
}

namespace {
auto match(std::uint32_t context, int src, int tag) {
  return [context, src, tag](const Proc::Stored& s) {
    return s.context == context && (src == kAnySource || s.src_rank == src) &&
           (tag == kAnyTag || s.tag == tag);
  };
}
}  // namespace

RecvResult Proc::recv(const Comm& comm, int src, int tag) {
  auto s = recv_stored(match(comm.context, src, tag));
  return RecvResult{s.src_rank, s.tag, std::move(s.data)};
}

std::optional<RecvResult> Proc::recv_for(const Comm& comm, int src, int tag,
                                         std::chrono::milliseconds timeout) {
  auto s = recv_stored_for(match(comm.context, src, tag), timeout);
  if (!s) return std::nullopt;
  return RecvResult{s->src_rank, s->tag, std::move(s->data)};
}

bool Proc::iprobe(const Comm& comm, int src, int tag) {
  // Drain whatever already arrived, then scan the store.
  while (auto msg = endpoint_->try_recv()) {
    if (msg->type == kMpiMessageType) store_.push_back(parse(std::move(*msg)));
  }
  const auto pred = match(comm.context, src, tag);
  return std::any_of(store_.begin(), store_.end(), pred);
}

// ---- collectives -----------------------------------------------------------

void Proc::barrier(const Comm& comm) {
  barrier_on(comm.local, comm.rank, comm.context | kCollectiveBit);
}

void Proc::barrier_on(const Group& group, int my_pos, std::uint32_t context) {
  const int n = group.size();
  if (n <= 1) return;
  if (my_pos == 0) {
    for (int r = 1; r < n; ++r) {
      (void)recv_stored(match(context, r, kTagBarrierArrive));
    }
    for (int r = 1; r < n; ++r) {
      send_raw(group.members[static_cast<std::size_t>(r)], context, 0,
               kTagBarrierGo, {});
    }
  } else {
    send_raw(group.members[0], context, my_pos, kTagBarrierArrive, {});
    (void)recv_stored(match(context, 0, kTagBarrierGo));
  }
}

void Proc::bcast(const Comm& comm, int root, util::Bytes& data) {
  const auto ctx = comm.context | kCollectiveBit;
  if (comm.size() <= 1) return;
  if (comm.rank == root) {
    for (int r = 0; r < comm.size(); ++r) {
      if (r == root) continue;
      send_raw(comm.local.members[static_cast<std::size_t>(r)], ctx, root,
               kTagBcast, data);
    }
  } else {
    auto s = recv_stored(match(ctx, root, kTagBcast));
    data = std::move(s.data);
  }
}

std::vector<util::Bytes> Proc::gather(const Comm& comm, int root,
                                      const util::Bytes& contribution) {
  const auto ctx = comm.context | kCollectiveBit;
  if (comm.rank != root) {
    send_raw(comm.local.members[static_cast<std::size_t>(root)], ctx,
             comm.rank, kTagGather, contribution);
    return {};
  }
  std::vector<util::Bytes> out(static_cast<std::size_t>(comm.size()));
  out[static_cast<std::size_t>(root)] = contribution;
  for (int r = 0; r < comm.size(); ++r) {
    if (r == root) continue;
    auto s = recv_stored(match(ctx, r, kTagGather));
    out[static_cast<std::size_t>(r)] = std::move(s.data);
  }
  return out;
}

std::vector<util::Bytes> Proc::allgather(const Comm& comm,
                                         const util::Bytes& contribution) {
  auto gathered = gather(comm, 0, contribution);
  util::Bytes packed;
  if (comm.rank == 0) {
    util::ByteWriter w;
    w.put<std::uint32_t>(static_cast<std::uint32_t>(gathered.size()));
    for (const auto& b : gathered) w.put_bytes(b);
    packed = std::move(w).take();
  }
  bcast(comm, 0, packed);
  if (comm.rank == 0) return gathered;
  util::ByteReader r(packed);
  const auto n = r.get<std::uint32_t>();
  std::vector<util::Bytes> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.get_bytes());
  return out;
}

namespace {
template <typename T>
T allreduce_impl(Proc& proc, const Comm& comm, T value, ReduceOp op) {
  util::ByteWriter w;
  w.put<T>(value);
  auto gathered = proc.gather(comm, 0, std::move(w).take());
  util::Bytes result_buf;
  if (comm.rank == 0) {
    T acc = value;
    bool first = true;
    for (const auto& b : gathered) {
      util::ByteReader r(b);
      const T x = r.get<T>();
      acc = first ? x : apply_op(acc, x, op);
      first = false;
    }
    util::ByteWriter rw;
    rw.put<T>(acc);
    result_buf = std::move(rw).take();
  }
  proc.bcast(comm, 0, result_buf);
  util::ByteReader r(result_buf);
  return r.get<T>();
}
}  // namespace

util::Bytes Proc::scatter(const Comm& comm, int root,
                          const std::vector<util::Bytes>& parts) {
  const auto ctx = comm.context | kCollectiveBit;
  if (comm.rank == root) {
    if (parts.size() != static_cast<std::size_t>(comm.size())) {
      throw std::invalid_argument("scatter: need one part per rank");
    }
    for (int r = 0; r < comm.size(); ++r) {
      if (r == root) continue;
      send_raw(comm.local.members[static_cast<std::size_t>(r)], ctx, root,
               kTagScatter, parts[static_cast<std::size_t>(r)]);
    }
    return parts[static_cast<std::size_t>(root)];
  }
  auto s = recv_stored(match(ctx, root, kTagScatter));
  return std::move(s.data);
}

RecvResult Proc::sendrecv(const Comm& comm, int dst, int send_tag,
                          util::Bytes data, int src, int recv_tag) {
  // Sends never block in this implementation, so send-then-recv is
  // deadlock-free even for symmetric exchanges.
  send(comm, dst, send_tag, std::move(data));
  return recv(comm, src, recv_tag);
}

Proc::Request Proc::irecv(const Comm& comm, int src, int tag) {
  Request req;
  req.proc_ = this;
  req.context_ = comm.context;
  req.src_ = src;
  req.tag_ = tag;
  return req;
}

bool Proc::Request::test() {
  if (result_) return true;
  if (proc_ == nullptr) return false;
  // Drain whatever already arrived, then scan the store for a match.
  while (auto msg = proc_->endpoint_->try_recv()) {
    if (msg->type == kMpiMessageType) {
      proc_->store_.push_back(parse(std::move(*msg)));
    }
  }
  const auto pred = match(context_, src_, tag_);
  for (auto it = proc_->store_.begin(); it != proc_->store_.end(); ++it) {
    if (pred(*it)) {
      result_ = RecvResult{it->src_rank, it->tag, std::move(it->data)};
      proc_->store_.erase(it);
      return true;
    }
  }
  return false;
}

RecvResult Proc::Request::wait() {
  if (!result_) {
    auto s = proc_->recv_stored(match(context_, src_, tag_));
    result_ = RecvResult{s.src_rank, s.tag, std::move(s.data)};
  }
  return take();
}

RecvResult Proc::Request::take() {
  auto r = std::move(*result_);
  result_ = RecvResult{r.source, r.tag, {}};  // keep done() true
  return r;
}

std::vector<double> Proc::allreduce(const Comm& comm,
                                    const std::vector<double>& values,
                                    ReduceOp op) {
  if (comm.size() <= 1) return values;
  util::ByteWriter w;
  w.put_vector<double>(values);
  auto gathered = gather(comm, 0, std::move(w).take());
  util::Bytes result_buf;
  if (comm.rank == 0) {
    std::vector<double> acc;
    for (const auto& b : gathered) {
      util::ByteReader r(b);
      auto v = r.get_vector<double>();
      if (acc.empty()) {
        acc = std::move(v);
      } else {
        if (v.size() != acc.size()) {
          throw std::invalid_argument("allreduce: length mismatch");
        }
        for (std::size_t i = 0; i < acc.size(); ++i) {
          acc[i] = apply_op(acc[i], v[i], op);
        }
      }
    }
    util::ByteWriter rw;
    rw.put_vector<double>(acc);
    result_buf = std::move(rw).take();
  }
  bcast(comm, 0, result_buf);
  util::ByteReader r(result_buf);
  return r.get_vector<double>();
}

double Proc::allreduce(const Comm& comm, double value, ReduceOp op) {
  if (comm.size() <= 1) return value;
  return allreduce_impl(*this, comm, value, op);
}

std::int64_t Proc::allreduce(const Comm& comm, std::int64_t value,
                             ReduceOp op) {
  if (comm.size() <= 1) return value;
  return allreduce_impl(*this, comm, value, op);
}

}  // namespace dac::minimpi
