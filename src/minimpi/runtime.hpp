// The mini-MPI runtime: one per virtual cluster. It plays the roles that a
// real deployment splits between mpirun, the MPI library's out-of-band
// channel, and the shared filesystem used to publish port names:
//   * an executable registry (name -> entry function), the analogue of
//     binaries installed on every node;
//   * world launching: create endpoints + COMM_WORLD for n processes placed
//     on given nodes, then start them (used both as "mpirun" for job scripts
//     and by MPI_Comm_spawn);
//   * a port name registry (MPI_Open_port publishes the root's address; the
//     paper publishes the same information through a file);
//   * context-id allocation for new communicators.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "minimpi/types.hpp"
#include "util/sync.hpp"
#include "vnet/cluster.hpp"
#include "vnet/node.hpp"

namespace dac::minimpi {

class Proc;

// Entry point of an MPI "executable". `args` is the argv-equivalent payload
// passed by the launcher or spawner.
using MpiEntry = std::function<void(Proc&, const util::Bytes& args)>;

struct LaunchOptions {
  std::string proc_name = "mpiproc";
  // Per-process start delay override (daemon startup cost). If unset, the
  // node default applies.
  std::optional<std::chrono::microseconds> start_delay;
  // Additional delay of `rank * start_stagger`, modeling a launcher that
  // execs its ranks sequentially (the batch system's remote daemon starts in
  // the paper's static path behave this way; MPI spawn does not).
  std::chrono::microseconds start_stagger{0};
  std::map<std::string, std::string> env;
};

// Handle to a launched world, owned by the launcher (mother superior, spawn
// root, or the core facade acting as mpirun).
struct WorldHandle {
  std::uint32_t context = kControlContext;
  Group group;
  std::vector<vnet::ProcessPtr> processes;

  void join() const {
    for (const auto& p : processes) p->join();
  }
  void stop() const {
    for (const auto& p : processes) p->request_stop();
  }
};

class Runtime {
 public:
  explicit Runtime(vnet::Cluster& cluster);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] vnet::Cluster& cluster() { return cluster_; }

  // ---- executable registry -------------------------------------------
  void register_executable(const std::string& name, MpiEntry entry);
  [[nodiscard]] bool has_executable(const std::string& name) const;

  // ---- world launching -----------------------------------------------
  // Starts `executable` on each node in `placement` (one rank per entry, in
  // rank order) with a fresh COMM_WORLD. Endpoints exist before this returns,
  // so the launcher may message rank addresses immediately.
  WorldHandle launch_world(const std::string& executable,
                           const std::vector<vnet::NodeId>& placement,
                           const util::Bytes& args,
                           const LaunchOptions& opts = {});

  // As above, but the children are also given `parent_group` + an intercomm
  // context so MPI_Comm_get_parent() works. Used by Proc::comm_spawn.
  WorldHandle launch_spawned_world(const std::string& executable,
                                   const std::vector<vnet::NodeId>& placement,
                                   const util::Bytes& args,
                                   const Group& parent_group,
                                   int parent_root_rank,
                                   std::uint32_t parent_intercomm_context,
                                   const LaunchOptions& opts = {});

  // ---- port registry ---------------------------------------------------
  // Returns a fresh unique port name bound to `root_addr`.
  std::string open_port(const vnet::Address& root_addr);
  // Publishes an address under a caller-chosen name (the "port file" path).
  void publish_port(const std::string& name, const vnet::Address& root_addr);
  [[nodiscard]] std::optional<vnet::Address> lookup_port(
      const std::string& name) const;
  void close_port(const std::string& name);

  // ---- context ids ------------------------------------------------------
  // Allocates an even context id; id+1 is reserved for a merge derivative.
  std::uint32_t allocate_context();

 private:
  WorldHandle launch_impl(const std::string& executable,
                          const std::vector<vnet::NodeId>& placement,
                          const util::Bytes& args, const Group* parent_group,
                          int parent_root_rank,
                          std::uint32_t parent_intercomm_context,
                          const LaunchOptions& opts);

  vnet::Cluster& cluster_;

  mutable Mutex exe_mu_{"mpi.executables"};
  std::map<std::string, MpiEntry> executables_ DAC_GUARDED_BY(exe_mu_);

  mutable Mutex ports_mu_{"mpi.ports"};
  std::map<std::string, vnet::Address> ports_ DAC_GUARDED_BY(ports_mu_);
  std::uint64_t next_port_id_ DAC_GUARDED_BY(ports_mu_) = 0;

  std::atomic<std::uint32_t> next_context_{kFirstUserContext};
};

}  // namespace dac::minimpi
