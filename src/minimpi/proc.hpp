// Proc: the per-process view of the mini-MPI library. One Proc lives in each
// MPI process (thread) and provides tagged point-to-point messaging,
// collectives, and the MPI-2 dynamic process management surface the paper's
// resource-management library is built on: open_port / comm_accept /
// comm_connect (static allocation), comm_spawn + intercomm_merge (dynamic
// allocation), and comm_disconnect (accelerator release).
//
// MPI processes in this codebase are single-threaded by convention; a Proc
// must only be used from its owning process thread.
#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "minimpi/runtime.hpp"
#include "minimpi/types.hpp"
#include "vnet/node.hpp"

namespace dac::minimpi {

enum class ReduceOp { kSum, kMin, kMax };

class Proc {
 public:
  // Normally constructed by Runtime::launch_*; public for tests and for
  // singleton processes (e.g. a compute-node job script) that want an MPI
  // identity without a world launch.
  Proc(Runtime& runtime, vnet::Process& process,
       std::unique_ptr<vnet::Endpoint> endpoint, Comm world,
       std::optional<Comm> parent);

  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  // Creates a standalone singleton Proc for `process` (world of size 1).
  static std::unique_ptr<Proc> make_singleton(Runtime& runtime,
                                              vnet::Process& process);

  [[nodiscard]] Runtime& runtime() { return runtime_; }
  [[nodiscard]] vnet::Process& process() { return process_; }
  [[nodiscard]] Comm& world() { return world_; }
  [[nodiscard]] const Comm& self() const { return self_; }
  [[nodiscard]] int rank() const { return world_.rank; }
  [[nodiscard]] int size() const { return world_.size(); }
  [[nodiscard]] const vnet::Address& address() const {
    return endpoint_->address();
  }
  // Intercommunicator with the spawner, if this world was comm_spawn'ed.
  [[nodiscard]] std::optional<Comm>& parent_comm() { return parent_; }

  // ---- point-to-point -------------------------------------------------
  void send(const Comm& comm, int dst, int tag, util::Bytes data);
  // Raw send on the control context (DPM handshakes; used by the runtime's
  // spawn wrapper for INIT_DONE).
  void send_control(const vnet::Address& to, int tag, util::Bytes data);
  // Blocks until a matching message arrives. Throws util::StoppedError if
  // the process is killed while waiting.
  RecvResult recv(const Comm& comm, int src = kAnySource, int tag = kAnyTag);
  std::optional<RecvResult> recv_for(const Comm& comm, int src, int tag,
                                     std::chrono::milliseconds timeout);
  [[nodiscard]] bool iprobe(const Comm& comm, int src = kAnySource,
                            int tag = kAnyTag);

  // ---- collectives (intra-communicators) -------------------------------
  void barrier(const Comm& comm);
  // On the root, `data` is the input; on other ranks it receives the result.
  void bcast(const Comm& comm, int root, util::Bytes& data);
  // Root receives size() buffers in rank order; others get an empty vector.
  std::vector<util::Bytes> gather(const Comm& comm, int root,
                                  const util::Bytes& contribution);
  std::vector<util::Bytes> allgather(const Comm& comm,
                                     const util::Bytes& contribution);
  // On the root, `parts` must have size() entries (rank order); every rank
  // returns its own part.
  util::Bytes scatter(const Comm& comm, int root,
                      const std::vector<util::Bytes>& parts);
  double allreduce(const Comm& comm, double value, ReduceOp op);
  std::int64_t allreduce(const Comm& comm, std::int64_t value, ReduceOp op);
  // Element-wise reduction over equal-length vectors.
  std::vector<double> allreduce(const Comm& comm,
                                const std::vector<double>& values,
                                ReduceOp op);
  // Combined send+recv, deadlock-free between pairs.
  RecvResult sendrecv(const Comm& comm, int dst, int send_tag,
                      util::Bytes data, int src, int recv_tag);

  // ---- nonblocking operations -----------------------------------------
  // Sends in this implementation never block, so isend == send; provided
  // for symmetry with MPI code.
  void isend(const Comm& comm, int dst, int tag, util::Bytes data) {
    send(comm, dst, tag, std::move(data));
  }
  // Posts a receive; completion is observed through the returned request.
  // Requests belong to this Proc and must be completed (wait / successful
  // test) on the owning process thread, in any order.
  class Request {
   public:
    Request() = default;
    // Nonblocking completion check; idempotent once satisfied.
    [[nodiscard]] bool test();
    // Blocks until the message arrives.
    RecvResult wait();
    [[nodiscard]] bool done() const { return result_.has_value(); }
    // Valid after done(); take() moves the payload out.
    RecvResult take();

   private:
    friend class Proc;
    Proc* proc_ = nullptr;
    std::uint32_t context_ = kControlContext;
    int src_ = kAnySource;
    int tag_ = kAnyTag;
    std::optional<RecvResult> result_;
  };
  Request irecv(const Comm& comm, int src = kAnySource, int tag = kAnyTag);

  // ---- dynamic process management ---------------------------------------
  // Publishes this process's address under a fresh unique port name.
  std::string open_port();
  // Publishes under a caller-chosen name (the paper's "port file").
  void publish_port(const std::string& name);

  // Collective over `comm`. The root waits for one connect request on
  // `port`; returns the inter-communicator with the connecting group.
  Comm comm_accept(const std::string& port, const Comm& comm, int root);
  // Collective over `comm`. The root must resolve `port` (retrying until
  // `timeout` for the accept side to publish); returns the intercomm.
  Comm comm_connect(const std::string& port, const Comm& comm, int root,
                    std::chrono::milliseconds timeout =
                        std::chrono::milliseconds(10000));

  // Collective over `comm`: launches `n = placement.size()` processes of
  // `executable` and returns the inter-communicator with them. The root
  // performs the launch and blocks until every child has initialized (sent
  // INIT_DONE), as MPI_Comm_spawn does. If `handle_out` is non-null the
  // root stores the world handle there (needed to join/stop children).
  Comm comm_spawn(const Comm& comm, int root, const std::string& executable,
                  const util::Bytes& args,
                  const std::vector<vnet::NodeId>& placement,
                  WorldHandle* handle_out = nullptr,
                  const LaunchOptions& opts = {});

  // Collective over the intercomm (both groups). Orders the low group
  // (high == false) before the high group, as MPI_Intercomm_merge.
  Comm intercomm_merge(const Comm& intercomm, bool high);

  // Collective: synchronizes both sides, after which the communicator must
  // not be used.
  void disconnect(const Comm& comm);

  // A received-but-unmatched message. Public so matching predicates can be
  // written outside the class; not part of the stable API.
  struct Stored {
    std::uint32_t context;
    int src_rank;
    int tag;
    vnet::Address from;
    util::Bytes data;
  };

 private:
  void send_raw(const vnet::Address& to, std::uint32_t context, int src_rank,
                int tag, util::Bytes data);
  // Pulls from the endpoint into the store until `pred` matches; returns the
  // matching entry. Throws util::StoppedError when the endpoint closes.
  Stored recv_stored(const std::function<bool(const Stored&)>& pred);
  std::optional<Stored> recv_stored_for(
      const std::function<bool(const Stored&)>& pred,
      std::chrono::milliseconds timeout);
  static Stored parse(vnet::Message&& msg);

  // Collective-context view of a communicator (or of an intercomm treated as
  // the future merged intracomm for merge/disconnect synchronization).
  void barrier_on(const Group& group, int my_pos, std::uint32_t context);

  Runtime& runtime_;
  vnet::Process& process_;
  std::unique_ptr<vnet::Endpoint> endpoint_;
  Comm world_;
  Comm self_;
  std::optional<Comm> parent_;
  std::deque<Stored> store_;
};

}  // namespace dac::minimpi
