#include "workload/workload.hpp"

#include <algorithm>
#include <sstream>

namespace dac::workload {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (config_.mix.empty()) config_.mix.push_back(JobTemplate{});
}

std::vector<GeneratedJob> WorkloadGenerator::generate() {
  std::exponential_distribution<double> gap(config_.arrival_rate_hz);
  std::vector<double> weights;
  weights.reserve(config_.mix.size());
  for (const auto& t : config_.mix) weights.push_back(t.weight);
  std::discrete_distribution<std::size_t> pick(weights.begin(),
                                               weights.end());

  std::vector<GeneratedJob> out;
  out.reserve(config_.job_count);
  double t = 0.0;
  for (std::size_t i = 0; i < config_.job_count; ++i) {
    t += gap(rng_);
    GeneratedJob job;
    job.arrival_s = t;
    job.tmpl = config_.mix[pick(rng_)];
    if (job.tmpl.name == "synthetic") {
      job.tmpl.name = "synthetic-" + std::to_string(i);
    }
    out.push_back(std::move(job));
  }
  return out;
}

torque::JobSpec to_spec(const GeneratedJob& job,
                        const std::string& sleep_program) {
  torque::JobSpec spec;
  spec.name = job.tmpl.name;
  spec.owner = job.tmpl.owner;
  spec.program = sleep_program;
  util::ByteWriter w;
  w.put<std::uint64_t>(
      static_cast<std::uint64_t>(job.tmpl.runtime.count()));
  spec.program_args = std::move(w).take();
  spec.resources.nodes = job.tmpl.nodes;
  spec.resources.acpn = job.tmpl.acpn;
  spec.resources.walltime = job.tmpl.walltime;
  spec.priority = job.tmpl.priority;
  return spec;
}

std::string to_trace(const std::vector<GeneratedJob>& jobs) {
  std::ostringstream out;
  out << "# arrival_s,name,owner,nodes,acpn,runtime_ms,walltime_ms,priority\n";
  for (const auto& j : jobs) {
    out << j.arrival_s << ',' << j.tmpl.name << ',' << j.tmpl.owner << ','
        << j.tmpl.nodes << ',' << j.tmpl.acpn << ','
        << j.tmpl.runtime.count() << ',' << j.tmpl.walltime.count() << ','
        << j.tmpl.priority << '\n';
  }
  return out.str();
}

std::vector<GeneratedJob> from_trace(const std::string& trace) {
  std::vector<GeneratedJob> out;
  std::istringstream in(trace);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream ls(line);
    GeneratedJob job;
    std::string field;
    std::getline(ls, field, ',');
    job.arrival_s = std::stod(field);
    std::getline(ls, job.tmpl.name, ',');
    std::getline(ls, job.tmpl.owner, ',');
    std::getline(ls, field, ',');
    job.tmpl.nodes = std::stoi(field);
    std::getline(ls, field, ',');
    job.tmpl.acpn = std::stoi(field);
    std::getline(ls, field, ',');
    job.tmpl.runtime = std::chrono::milliseconds(std::stoll(field));
    std::getline(ls, field, ',');
    job.tmpl.walltime = std::chrono::milliseconds(std::stoll(field));
    std::getline(ls, field, ',');
    job.tmpl.priority = std::stoi(field);
    out.push_back(std::move(job));
  }
  return out;
}

ScheduleMetrics analyze(const std::vector<torque::JobInfo>& jobs,
                        std::size_t compute_nodes) {
  ScheduleMetrics m;
  double first_submit = -1.0;
  double last_end = 0.0;
  double wait_sum = 0.0;
  double turnaround_sum = 0.0;
  double busy_node_seconds = 0.0;
  for (const auto& j : jobs) {
    if (j.state != torque::JobState::kComplete) continue;
    if (j.start_time < 0.0 || j.end_time < 0.0) continue;
    ++m.completed;
    if (first_submit < 0.0 || j.submit_time < first_submit) {
      first_submit = j.submit_time;
    }
    last_end = std::max(last_end, j.end_time);
    const double wait = j.start_time - j.submit_time;
    wait_sum += wait;
    m.max_wait_s = std::max(m.max_wait_s, wait);
    turnaround_sum += j.end_time - j.submit_time;
    busy_node_seconds +=
        j.spec.resources.nodes * (j.end_time - j.start_time);
  }
  if (m.completed == 0) return m;
  m.makespan_s = last_end - first_submit;
  m.mean_wait_s = wait_sum / static_cast<double>(m.completed);
  m.mean_turnaround_s = turnaround_sum / static_cast<double>(m.completed);
  if (m.makespan_s > 0.0 && compute_nodes > 0) {
    m.node_utilization =
        busy_node_seconds /
        (static_cast<double>(compute_nodes) * m.makespan_s);
  }
  return m;
}

}  // namespace dac::workload
