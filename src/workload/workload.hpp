// Synthetic workload generation and schedule analysis. The paper's Figure 8
// loads the scheduler with batches of qsub requests; the backfill/fairshare
// ablations need full mixed workloads with arrival processes. Everything is
// deterministic from the seed.
#pragma once

#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "torque/job.hpp"

namespace dac::workload {

// One class of jobs in a mix.
struct JobTemplate {
  std::string name = "synthetic";
  std::string owner = "user";
  int nodes = 1;
  int acpn = 0;
  std::chrono::milliseconds runtime{50};    // actual execution time
  std::chrono::milliseconds walltime{100};  // user estimate (backfill input)
  int priority = 0;
  double weight = 1.0;  // relative frequency in the mix
};

struct GeneratedJob {
  double arrival_s = 0.0;  // offset from workload start
  JobTemplate tmpl;
};

struct WorkloadConfig {
  std::uint64_t seed = 42;
  std::size_t job_count = 20;
  double arrival_rate_hz = 50.0;  // Poisson arrivals
  std::vector<JobTemplate> mix;   // empty -> single default template
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  // Generates job_count arrivals sorted by time.
  std::vector<GeneratedJob> generate();

 private:
  WorkloadConfig config_;
  std::mt19937_64 rng_;
};

// Builds the JobSpec that realizes a generated job using the built-in sleep
// program (program args = runtime in ms).
torque::JobSpec to_spec(const GeneratedJob& job,
                        const std::string& sleep_program);

// ---- trace format ---------------------------------------------------------
// One line per job: arrival_s,name,owner,nodes,acpn,runtime_ms,walltime_ms,
// priority. Round-trips through strings for record/replay.
std::string to_trace(const std::vector<GeneratedJob>& jobs);
std::vector<GeneratedJob> from_trace(const std::string& trace);

// ---- schedule metrics -------------------------------------------------------
struct ScheduleMetrics {
  std::size_t completed = 0;
  double makespan_s = 0.0;        // first submit -> last completion
  double mean_wait_s = 0.0;       // submit -> start
  double max_wait_s = 0.0;
  double mean_turnaround_s = 0.0; // submit -> completion
  double node_utilization = 0.0;  // busy node-seconds / available
};

// Analyzes completed jobs from qstat output. `compute_nodes` is the cluster
// size for the utilization denominator.
ScheduleMetrics analyze(const std::vector<torque::JobInfo>& jobs,
                        std::size_t compute_nodes);

}  // namespace dac::workload
