// Trace demo: boot a cluster with a trace recorder installed, run one job
// that statically allocates an accelerator and one that grows dynamically,
// then export everything the recorder saw as a Chrome about:tracing file.
// Open chrome://tracing (or https://ui.perfetto.dev) and load the JSON to
// see the submission flow across pbs_server, Maui, the mom, the job ranks
// and the accelerator daemons on one timeline. See docs/TRACING.md.
#include <cstdio>
#include <span>
#include <vector>

#include "core/cluster.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

using namespace dac;

int main() {
  trace::Recorder recorder;
  recorder.install();

  std::printf("booting a traced DAC cluster (1 CN + 2 ACs)...\n");
  auto config = core::DacClusterConfig::fast();
  config.compute_nodes = 1;
  config.accel_nodes = 2;
  {
    core::DacCluster cluster(config);

    cluster.register_program("traced_static", [](core::JobContext& ctx) {
      auto& s = ctx.session();
      auto acs = s.ac_init();
      std::vector<double> data(1024, 1.0);
      const auto ptr = s.ac_mem_alloc(acs[0], data.size() * sizeof(double));
      s.ac_memcpy_h2d(acs[0], ptr, std::as_bytes(std::span(data)));
      s.ac_mem_free(acs[0], ptr);
      s.ac_finalize();
    });
    cluster.register_program("traced_dynamic", [](core::JobContext& ctx) {
      auto& s = ctx.session();
      (void)s.ac_init();
      auto got = s.ac_get(1);
      if (got.granted) {
        const auto ptr = s.ac_mem_alloc(got.handles[0], 512);
        s.ac_mem_free(got.handles[0], ptr);
        s.ac_free(got.client_id);
      }
      s.ac_finalize();
    });

    const auto a = cluster.submit_program("traced_static", 1, /*acpn=*/1);
    const auto b = cluster.submit_program("traced_dynamic", 1, /*acpn=*/0);
    if (!cluster.wait_job(a) || !cluster.wait_job(b)) {
      std::fprintf(stderr, "jobs did not complete\n");
      return 1;
    }
    std::printf("jobs %llu (static) and %llu (dynget/dynfree) complete\n",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  }  // cluster shutdown: all teardown spans recorded before the export

  recorder.uninstall();
  const auto spans = recorder.snapshot();
  const char* path = "dacsched.trace.json";
  trace::write_chrome_trace(path, spans);
  std::printf("wrote %zu spans to %s\n", spans.size(), path);
  std::printf("open chrome://tracing and load the file to browse the "
              "submission flow end to end\n");
  return 0;
}
