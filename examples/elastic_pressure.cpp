// Pressure-driven shrink demo (the scenario family ROADMAP item 3 opens
// up): a hog job grabs every accelerator in the pool and a second job's
// dynget starves behind it. With the ShrinkUnderPressure policy installed,
// Maui notices the backed-up dynqueue, negotiates the hog's newest set back
// through the three-phase elastic protocol (offer -> ack -> reconfigure),
// and re-grants the reclaimed capacity to the starved request — no job is
// killed, no slot leaks.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "elastic/agent.hpp"
#include "elastic/policy.hpp"
#include "simtime/clock.hpp"

using namespace dac;
using namespace std::chrono_literals;

int main() {
  auto config = core::DacClusterConfig::paper_testbed(2, 2);
  // Shrink as soon as one dynget is queued and cannot be served from free
  // capacity; min_wait 0 keeps the demo snappy.
  config.elastic_policy = std::make_shared<elastic::ShrinkUnderPressurePolicy>(
      elastic::ShrinkUnderPressurePolicy::Config{.queue_threshold = 1,
                                                 .min_wait_s = 0.0});
  core::DacCluster cluster(config);

  std::atomic<bool> hog_ready{false};
  std::atomic<bool> done{false};
  std::atomic<bool> requester_granted{false};

  // The hog: takes the whole accelerator pool, then declares itself
  // shrinkable. Reclaims arrive through the agent's apply callback on the
  // application thread — the job stays in control of *when* it lets go.
  cluster.register_program("hog", [&](core::JobContext& ctx) {
    auto& ses = ctx.session();
    (void)ses.ac_init();
    std::vector<std::uint64_t> held;
    for (int i = 0; i < 2; ++i) {
      auto got = ses.ac_get(1);
      if (got.granted) held.push_back(got.client_id);
    }
    std::printf("[hog] holding %zu accelerator set(s) — the whole pool\n",
                held.size());

    auto cfg = ctx.elastic_config();
    cfg.accept_shrink = true;
    elastic::ElasticAgent agent(ctx.mpi().process(), cfg);
    agent.on_shrink([&](const elastic::Reconfig& r) {
      std::printf("[hog] scheduler reclaimed set %llu (%zu host(s))\n",
                  static_cast<unsigned long long>(r.client_id),
                  r.hosts.size());
      ses.ac_detach(r.client_id);
      if (!held.empty() && held.back() == r.client_id) held.pop_back();
    });
    agent.announce();
    hog_ready = true;

    while (!done.load()) (void)agent.service(5ms);
    // Grace drain: apply a reconfigure committed just before `done`.
    const auto grace = simtime::now() + 200ms;
    while (simtime::now() < grace) (void)agent.service(5ms);
    agent.stop();

    std::printf("[hog] finishing with %zu set(s) left\n", held.size());
    while (!held.empty()) {
      ses.ac_free(held.back());
      held.pop_back();
    }
    ses.ac_finalize();
  });

  // The starved requester: an ordinary dynget, oblivious to the
  // negotiation happening on its behalf.
  cluster.register_program("requester", [&](core::JobContext& ctx) {
    auto& ses = ctx.session();
    (void)ses.ac_init();
    std::printf("[requester] asking for 1 accelerator (pool is full)\n");
    auto got = ses.ac_get(1);
    if (got.granted) {
      std::printf("[requester] granted — served from the reclaimed set\n");
      requester_granted = true;
      ses.ac_free(got.client_id);
    } else {
      std::printf("[requester] rejected\n");
    }
    ses.ac_finalize();
  });

  const auto hog_id = cluster.submit_program("hog", /*nodes=*/1, /*acpn=*/0);
  while (!hog_ready.load()) simtime::sleep_for(5ms);
  const auto req_id =
      cluster.submit_program("requester", /*nodes=*/1, /*acpn=*/0);
  if (!cluster.wait_job(req_id)) {
    std::fprintf(stderr, "requester did not complete\n");
    return 1;
  }
  done = true;
  if (!cluster.wait_job(hog_id)) {
    std::fprintf(stderr, "hog did not complete\n");
    return 1;
  }

  int used = 0;
  for (const auto& n : cluster.client().stat_nodes()) used += n.used;
  std::printf("done: requester %s; %d slot(s) still in use (expected 0)\n",
              requester_granted.load() ? "granted" : "starved", used);
  return (requester_granted.load() && used == 0) ? 0 : 1;
}
