// Power iteration on remote accelerators: the dominant eigenvalue of a
// matrix is computed by repeated offloaded matrix-vector products, with the
// row blocks of the matrix distributed across the job's accelerators — the
// "offload multiple kernels in parallel to a set of network-attached
// accelerators" usage the paper's introduction motivates. The matrix blocks
// are uploaded once; only the (small) vector moves per iteration, so the
// compute/communication ratio grows with the matrix.
#include <cmath>
#include <cstdio>
#include <span>
#include <vector>

#include "core/cluster.hpp"

using namespace dac;

namespace {

constexpr std::uint64_t kN = 256;    // matrix dimension
constexpr int kIterations = 30;
constexpr int kAccels = 2;           // row blocks

// A symmetric matrix with a known dominant eigenvalue: A = 2I + ones/N has
// eigenvalues {3, 2, 2, ...} (ones/N has eigenvalue 1 on the all-ones
// vector and 0 elsewhere).
std::vector<double> make_matrix() {
  std::vector<double> a(kN * kN, 1.0 / static_cast<double>(kN));
  for (std::uint64_t i = 0; i < kN; ++i) a[i * kN + i] += 2.0;
  return a;
}

}  // namespace

int main() {
  core::DacCluster cluster(core::DacClusterConfig::paper_testbed(1, 3));

  cluster.register_program("power_iteration", [](core::JobContext& ctx) {
    auto& s = ctx.session();
    auto handles = s.ac_init();
    std::printf("[job] %zu accelerator(s) attached\n", handles.size());

    const auto a = make_matrix();
    const std::uint64_t rows_per = kN / kAccels;

    // Upload each accelerator's row block once; allocate vector buffers.
    struct Block {
      rmlib::AcHandle ac;
      gpusim::DevicePtr mat, vec, out;
      std::uint64_t rows;
      dacc::KernelHandle kernel;
    };
    std::vector<Block> blocks;
    for (int b = 0; b < kAccels; ++b) {
      Block blk;
      blk.ac = handles[static_cast<std::size_t>(b)];
      blk.rows = b + 1 == kAccels ? kN - rows_per * b : rows_per;
      const auto mat_bytes = blk.rows * kN * sizeof(double);
      blk.mat = s.ac_mem_alloc(blk.ac, mat_bytes);
      blk.vec = s.ac_mem_alloc(blk.ac, kN * sizeof(double));
      blk.out = s.ac_mem_alloc(blk.ac, blk.rows * sizeof(double));
      s.ac_memcpy_h2d(
          blk.ac, blk.mat,
          std::as_bytes(std::span(a.data() + b * rows_per * kN,
                                  blk.rows * kN)));
      blk.kernel = s.ac_kernel_create(blk.ac, "matmul");
      blocks.push_back(blk);
    }

    std::vector<double> v(kN, 1.0);
    double lambda = 0.0;
    for (int iter = 0; iter < kIterations; ++iter) {
      // Send the current vector to every accelerator and launch the block
      // products; all kernels run concurrently on their devices.
      for (auto& blk : blocks) {
        s.ac_memcpy_h2d(blk.ac, blk.vec, std::as_bytes(std::span(v)));
        util::ByteWriter args;
        args.put<std::uint64_t>(blk.out);
        args.put<std::uint64_t>(blk.mat);
        args.put<std::uint64_t>(blk.vec);
        args.put<std::uint64_t>(blk.rows);  // m
        args.put<std::uint64_t>(kN);        // k
        args.put<std::uint64_t>(1);         // n
        s.ac_kernel_set_args(blk.ac, blk.kernel, std::move(args).take());
        s.ac_kernel_run(blk.ac, blk.kernel, {1, 1, 1}, {64, 1, 1});
      }
      // Collect the block results and normalize on the host.
      std::vector<double> next(kN);
      std::uint64_t row = 0;
      for (auto& blk : blocks) {
        auto out = s.ac_memcpy_d2h(blk.ac, blk.out,
                                   blk.rows * sizeof(double));
        std::memcpy(next.data() + row, out.data(), out.size());
        row += blk.rows;
      }
      double norm = 0.0;
      for (double x : next) norm += x * x;
      norm = std::sqrt(norm);
      for (double& x : next) x /= norm;
      lambda = norm;  // ||A v|| with unit v approaches the eigenvalue
      v = std::move(next);
    }

    std::printf("[job] dominant eigenvalue ~= %.6f (exact 3.0), error %.2e\n",
                lambda, std::abs(lambda - 3.0));
    for (auto& blk : blocks) {
      s.ac_mem_free(blk.ac, blk.mat);
      s.ac_mem_free(blk.ac, blk.vec);
      s.ac_mem_free(blk.ac, blk.out);
    }
    s.ac_finalize();
  });

  const auto id = cluster.submit_program("power_iteration", 1, kAccels);
  if (!cluster.wait_job(id)) {
    std::fprintf(stderr, "job did not complete\n");
    return 1;
  }
  std::printf("done\n");
  return 0;
}
