// Dynamic scaling: the paper's motivating scenario (§I) — an application
// whose computational phases need different numbers of accelerators. The
// job starts with one statically allocated accelerator, grows its set with
// AC_Get() when a heavy phase begins, shrinks with AC_Free() afterwards,
// and keeps running gracefully when a request is rejected.
//
// Two jobs compete for the accelerator pool, so some dynamic requests are
// rejected — exercising the paper's "requests are not guaranteed" semantics.
#include <cstdio>
#include "util/sync.hpp"
#include <span>
#include <vector>

#include "core/cluster.hpp"
#include "util/clock.hpp"

using namespace dac;

namespace {

dac::Mutex g_print_mu{"example.print"};

void say(torque::JobId job, const char* fmt, double a = 0, double b = 0) {
  dac::ScopedLock lock(g_print_mu);
  std::printf("[job %llu] ", static_cast<unsigned long long>(job));
  std::printf(fmt, a, b);
  std::printf("\n");
}

// One "phase": a saxpy offloaded across every currently attached
// accelerator.
void run_phase(rmlib::AcSession& s, std::size_t elements_per_ac) {
  const auto handles = s.handles();
  std::vector<double> x(elements_per_ac, 1.0);
  for (const auto ac : handles) {
    const auto bytes = elements_per_ac * sizeof(double);
    const auto dx = s.ac_mem_alloc(ac, bytes);
    const auto dy = s.ac_mem_alloc(ac, bytes);
    s.ac_memcpy_h2d(ac, dx, std::as_bytes(std::span(x)));
    s.ac_memcpy_h2d(ac, dy, std::as_bytes(std::span(x)));
    const auto k = s.ac_kernel_create(ac, "saxpy");
    util::ByteWriter args;
    args.put<std::uint64_t>(dy);
    args.put<std::uint64_t>(dx);
    args.put<double>(2.5);
    args.put<std::uint64_t>(elements_per_ac);
    s.ac_kernel_set_args(ac, k, std::move(args).take());
    s.ac_kernel_run(ac, k, {64, 1, 1}, {256, 1, 1});
    s.ac_mem_free(ac, dx);
    s.ac_mem_free(ac, dy);
  }
}

}  // namespace

int main() {
  core::DacCluster cluster(core::DacClusterConfig::paper_testbed(2, 5));

  cluster.register_program("phased_app", [](core::JobContext& ctx) {
    auto& s = ctx.session();
    const auto job = ctx.job_id();
    (void)s.ac_init();
    say(job, "phase 1: light compute on %0.f static accelerator(s)",
        static_cast<double>(s.accelerator_count()));
    run_phase(s, 1 << 12);

    // Heavy phase: ask for three more accelerators.
    auto got = s.ac_get(3);
    if (got.granted) {
      say(job, "phase 2: AC_Get(3) granted in %.3fs (batch %.3fs)",
          got.total_s(), got.batch_s);
    } else {
      say(job, "phase 2: AC_Get(3) rejected -> continuing with %.0f",
          static_cast<double>(s.accelerator_count()));
    }
    run_phase(s, 1 << 14);

    // Light phase again: release what we grew.
    if (got.granted) {
      s.ac_free(got.client_id);
      say(job, "phase 3: released the dynamic set, back to %.0f",
          static_cast<double>(s.accelerator_count()));
    }
    run_phase(s, 1 << 12);
    s.ac_finalize();
    say(job, "done");
  });

  // Two phased applications compete for 5 accelerator nodes: 2 are held
  // statically, so at most one job's AC_Get(3) can succeed at a time.
  const auto a = cluster.submit_program("phased_app", 1, 1);
  const auto b = cluster.submit_program("phased_app", 1, 1);
  std::printf("submitted jobs %llu and %llu (nodes=1:acpn=1 each)\n",
              static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(b));

  if (!cluster.wait_job(a) || !cluster.wait_job(b)) {
    std::fprintf(stderr, "a job did not complete\n");
    return 1;
  }
  const auto stats = cluster.scheduler_stats();
  std::printf("scheduler: %llu dynamic grant(s), %llu rejection(s)\n",
              static_cast<unsigned long long>(stats.dyn_granted),
              static_cast<unsigned long long>(stats.dyn_rejected));
  return 0;
}
