// Accelerator failover: what an application does when an accelerator node
// dies mid-job (fault-tolerance extension of the paper's resource-management
// library, see docs/FAULTS.md).
//
//   1. The job AC_Gets a dynamic accelerator and starts offloading.
//   2. The node is killed. With a call timeout configured, the next
//      computation call surfaces AcError(kNodeLost) instead of hanging.
//   3. The app reports the set lost (AC_ReportLost — no collective
//      disconnect, dead peers can't participate), waits until the batch
//      server has declared the node down, and pbs_dyngets a replacement.
//   4. The job finishes its work on the replacement accelerator.
//
// Meanwhile the server's heartbeat detector reclaims the dead node's slots
// on its own, so server-side bookkeeping and the application agree.
#include <atomic>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "dacc/frontend.hpp"
#include "util/queue.hpp"

using namespace dac;

namespace {

// One offload round: saxpy-ish traffic against the given accelerator.
double offload_round(rmlib::AcSession& s, rmlib::AcHandle ac) {
  constexpr std::size_t kN = 4096;
  std::vector<double> x(kN, 1.5);
  const auto ptr = s.ac_mem_alloc(ac, kN * sizeof(double));
  s.ac_memcpy_h2d(ac, ptr, std::as_bytes(std::span(x)));
  const auto back = s.ac_memcpy_d2h(ac, ptr, kN * sizeof(double));
  s.ac_mem_free(ac, ptr);
  return static_cast<double>(back.size());
}

}  // namespace

int main() {
  auto cfg = core::DacClusterConfig::fast();
  cfg.compute_nodes = 1;
  cfg.accel_nodes = 2;  // one to lose, one to fail over to
  cfg.timing.mom_heartbeat_interval = std::chrono::milliseconds(10);
  cfg.timing.heartbeat_stale_factor = 10;
  // Bounded computation calls: a dead accelerator becomes AcError(kNodeLost)
  // after 300 ms instead of blocking forever.
  cfg.ac_call_timeout = std::chrono::milliseconds(300);
  core::DacCluster cluster(cfg);

  util::BlockingQueue<std::string> acquired;  // job -> driver: granted host
  util::BlockingQueue<int> node_is_down;      // driver -> job: safe to re-get
  std::atomic<bool> job_ok{false};

  cluster.register_program("failover_app", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();

    auto got = s.ac_get(1);
    if (!got.granted) return;
    auto ac = got.handles.front();
    std::printf("[app] acquired accelerator on '%s'\n",
                got.reply.hosts.front().c_str());
    offload_round(s, ac);
    (void)acquired.push(got.reply.hosts.front());

    // Keep offloading until the node dies under us.
    for (;;) {
      try {
        offload_round(s, ac);
      } catch (const dacc::AcError& e) {
        if (e.status() != dacc::Status::kNodeLost) throw;
        std::printf("[app] accelerator lost mid-call: %s\n", e.what());
        break;
      }
    }

    // Release without collective teardown, then get a replacement once the
    // server agrees the node is gone (otherwise it might re-grant it).
    s.ac_report_lost(got.client_id);
    (void)node_is_down.pop();
    auto replacement = s.ac_get(1);
    if (!replacement.granted) return;
    std::printf("[app] replacement granted on '%s'\n",
                replacement.reply.hosts.front().c_str());
    offload_round(s, replacement.handles.front());
    s.ac_free(replacement.client_id);
    s.ac_finalize();
    job_ok = true;
  });

  const auto id = cluster.submit_program("failover_app", 1, 0);
  auto host = acquired.pop();
  if (!host) {
    std::fprintf(stderr, "job never acquired an accelerator\n");
    return 1;
  }

  const std::size_t victim_index = *host == "ac0" ? 2 : 3;
  std::printf("[driver] killing accelerator node '%s'\n", host->c_str());
  cluster.fail_node(victim_index);
  if (!cluster.await_node_liveness(*host, torque::Liveness::kDown,
                                   std::chrono::milliseconds(10'000))) {
    std::fprintf(stderr, "server never declared '%s' down\n", host->c_str());
    return 1;
  }
  std::printf("[driver] server declared '%s' down; slots reclaimed\n",
              host->c_str());
  (void)node_is_down.push(0);

  auto info = cluster.wait_job(id, std::chrono::milliseconds(60'000));
  if (!info || info->state != torque::JobState::kComplete || !job_ok) {
    std::fprintf(stderr, "job did not complete after failover\n");
    return 1;
  }
  std::printf(
      "[driver] job %llu completed after accelerator failover "
      "(requeues: %d)\n",
      static_cast<unsigned long long>(id), info->requeues);

  const auto snap = cluster.metrics_snapshot();
  if (const auto* reclaim = snap.find(torque::as_u32(
          torque::MsgType::kEvAcReclaim))) {
    std::printf("[driver] server-side AC reclaims recorded: %llu\n",
                static_cast<unsigned long long>(reclaim->calls));
  }
  return 0;
}
