// The prototypical ARM (paper §II): accelerator allocation without a batch
// system. A pool of network-attached accelerators is managed by a standalone
// Accelerator Resource Manager; compute nodes allocate and release sets
// directly. This predates the TORQUE/Maui integration in the paper's story —
// running it side by side shows what the batch system adds (job association,
// queueing, scheduling policy) and what it costs (scheduling latency vs. the
// ARM's immediate grant).
#include <cstdio>

#include "arm/arm.hpp"
#include "util/clock.hpp"
#include "vnet/cluster.hpp"

using namespace dac;

int main() {
  // 6 nodes: node 0 runs the ARM, node 1 acts as the compute node, nodes
  // 2..5 are the accelerator pool.
  vnet::ClusterTopology topo;
  topo.node_count = 6;
  topo.network.latency = std::chrono::microseconds(200);
  topo.process_start_delay = std::chrono::microseconds(0);
  vnet::Cluster cluster(topo);

  std::vector<arm::PrototypeArm::PoolEntry> pool;
  for (vnet::NodeId id = 2; id <= 5; ++id) {
    pool.push_back({id, "ac" + std::to_string(id - 2)});
  }
  arm::PrototypeArm service(cluster.node(0), std::move(pool));
  auto arm_proc = cluster.node(0).spawn(
      {.name = "arm"}, [&](vnet::Process& proc) { service.run(proc); });

  arm::ArmClient client(cluster.node(1), service.address());

  auto status = client.status();
  std::printf("ARM pool: %d accelerators, %d free\n", status.total,
              status.free);

  // Allocate two sets, observe the pool shrink, release, observe recovery.
  util::Stopwatch w;
  auto set1 = client.alloc(2);
  std::printf("alloc(2): granted=%d set=%llu hosts=[", set1.granted,
              static_cast<unsigned long long>(set1.set_id));
  for (const auto& h : set1.hostnames) std::printf("%s ", h.c_str());
  std::printf("] in %.4fs\n", w.lap_seconds());

  auto set2 = client.alloc(2);
  std::printf("alloc(2): granted=%d (pool now exhausted)\n", set2.granted);

  // Over-subscription is rejected immediately, like the batch system's
  // dynamic rejection — the requester continues with what it has.
  auto set3 = client.alloc(1);
  std::printf("alloc(1): granted=%d (expected rejection)\n", set3.granted);

  client.free_set(set1.set_id);
  client.free_set(set2.set_id);
  status = client.status();
  std::printf("after release: %d free, %d outstanding sets\n", status.free,
              status.sets_outstanding);

  arm_proc->request_stop();
  arm_proc->join();
  return 0;
}
