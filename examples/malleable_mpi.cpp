// Malleable MPI application (the generalization the paper sketches in §V,
// comparing with Cera et al.'s OAR work): a running job asks the batch
// system for additional *compute nodes* at runtime, spawns MPI worker
// processes on them with MPI_Comm_spawn, computes with the enlarged world,
// and shrinks back — the same dynamic-request machinery network-attached
// accelerators use, pointed at the compute pool.
//
// Ported onto the rmlib malleability API (src/elastic): besides asking for
// nodes itself, the job registers an ElasticAgent so the *scheduler* can
// also reclaim the grown set under pressure. If a shrink negotiation lands
// first, the job skips its own release — the set already went back.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <numeric>

#include "core/cluster.hpp"
#include "elastic/agent.hpp"
#include "elastic/policy.hpp"

using namespace dac;
using namespace std::chrono_literals;

int main() {
  auto config = core::DacClusterConfig::paper_testbed(4, 3);
  // Scheduler-initiated elasticity is live: under dynqueue pressure Maui may
  // negotiate the grown compute set back before the job releases it.
  config.elastic_policy = std::make_shared<elastic::BalancedPolicy>();
  core::DacCluster cluster(config);

  // The worker executable spawned onto dynamically granted nodes: receives
  // a slice of work, reduces it, and reports to the parent.
  cluster.runtime().register_executable(
      "malleable.worker", [](minimpi::Proc& p, const util::Bytes&) {
        auto& parent = *p.parent_comm();
        auto task = p.recv(parent, 0, 1);
        util::ByteReader r(task.data);
        auto values = r.get_vector<double>();
        const double sum = std::accumulate(values.begin(), values.end(), 0.0);
        util::ByteWriter w;
        w.put<double>(sum);
        p.send(parent, 0, 2, std::move(w).take());
        p.disconnect(parent);
      });

  cluster.register_program("malleable", [](core::JobContext& ctx) {
    // Phase 1: the job runs on its single static compute node.
    std::vector<double> data(9000);
    std::iota(data.begin(), data.end(), 1.0);
    std::printf("[job] phase 1 on %d compute node(s)\n", ctx.num_nodes());

    // Phase 2: ask the batch system for two more compute nodes.
    auto grant = ctx.grow_compute(2);
    if (!grant.granted) {
      std::printf("[job] grow_compute(2) rejected; continuing solo\n");
      const double total = std::accumulate(data.begin(), data.end(), 0.0);
      std::printf("[job] solo sum = %.0f\n", total);
      return;
    }
    std::printf("[job] granted %zu node(s): ", grant.hosts.size());
    for (const auto& h : grant.hosts) std::printf("%s ", h.c_str());
    std::printf("(client id %llu)\n",
                static_cast<unsigned long long>(grant.client_id));

    // Malleability API: declare the grown set reclaimable. If the scheduler
    // shrinks us, the apply callback records it so phase 3 skips the manual
    // release — dynamic sets are released exactly once.
    std::atomic<bool> reclaimed{false};
    auto ecfg = ctx.elastic_config();
    ecfg.accept_shrink = true;
    elastic::ElasticAgent agent(ctx.mpi().process(), ecfg);
    agent.on_shrink([&](const elastic::Reconfig& r) {
      if (r.client_id == grant.client_id) {
        std::printf("[job] scheduler reclaimed the grown set\n");
        reclaimed = true;
      }
    });
    agent.announce();

    // Spawn one worker per granted node and scatter slices of the data.
    auto inter = ctx.spawn_workers("malleable.worker", {}, grant.nodes,
                                   ctx.mpi().self(), 0, grant.client_id);
    const std::size_t slice = data.size() / grant.nodes.size();
    for (std::size_t w = 0; w < grant.nodes.size(); ++w) {
      util::ByteWriter msg;
      msg.put_vector<double>(std::vector<double>(
          data.begin() + static_cast<std::ptrdiff_t>(w * slice),
          w + 1 == grant.nodes.size()
              ? data.end()
              : data.begin() + static_cast<std::ptrdiff_t>((w + 1) * slice)));
      ctx.mpi().send(inter, static_cast<int>(w), 1, std::move(msg).take());
    }
    double total = 0.0;
    for (std::size_t w = 0; w < grant.nodes.size(); ++w) {
      auto r = ctx.mpi().recv(inter, minimpi::kAnySource, 2);
      util::ByteReader rd(r.data);
      total += rd.get<double>();
    }
    ctx.mpi().disconnect(inter);

    const double expect = 9000.0 * 9001.0 / 2.0;
    std::printf("[job] distributed sum = %.0f (expected %.0f)\n", total,
                expect);

    // Phase 3: shrink back; the nodes return to the pool. Drain the agent
    // first — a reclaim negotiated while we were computing must be applied
    // before we decide whether a manual release is still needed.
    (void)agent.service(10ms);
    agent.stop();
    if (reclaimed.load()) {
      std::printf("[job] nothing to release: the scheduler took it back\n");
    } else {
      ctx.release_compute(grant.client_id);
      std::printf("[job] released the extra nodes\n");
    }
  });

  const auto id = cluster.submit_program("malleable", /*nodes=*/1,
                                         /*acpn=*/0);
  std::printf("submitted malleable job %llu on a 4-compute-node cluster\n",
              static_cast<unsigned long long>(id));
  if (!cluster.wait_job(id)) {
    std::fprintf(stderr, "job did not complete\n");
    return 1;
  }
  // All compute nodes must be free again.
  int used = 0;
  for (const auto& n : cluster.client().stat_nodes()) used += n.used;
  std::printf("job complete; %d slot(s) still in use (expected 0)\n", used);
  return used == 0 ? 0 : 1;
}
