// Multi-compute-node job plus a mixed background workload under EASY
// backfill. Shows: per-compute-node accelerator communicators (§III-C), the
// collective AC_Get (§III-D) where rank 0 aggregates every node's
// requirement into one server request, and the batch system keeping a mixed
// workload flowing around the DAC job.
#include <cstdio>
#include "util/sync.hpp"

#include "core/cli.hpp"
#include "core/cluster.hpp"
#include "workload/workload.hpp"

using namespace dac;

int main() {
  auto config = core::DacClusterConfig::paper_testbed(3, 4);
  config.policy = maui::Policy::kBackfill;
  core::DacCluster cluster(config);

  Mutex print_mu{"example.print"};
  cluster.register_program("mpi_dac_app", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    auto statics = s.ac_init();
    {
      ScopedLock lock(print_mu);
      std::printf("  rank %d: %zu static accelerator(s), own communicator\n",
                  ctx.rank(), statics.size());
    }

    // Collective growth: rank 0 wants 1 more, rank 1 wants 2 more; one
    // aggregated pbs_dynget carries the total.
    const int want = ctx.rank() == 0 ? 1 : 2;
    auto got = s.ac_get_collective(ctx.world(), want);
    {
      ScopedLock lock(print_mu);
      if (got.granted) {
        std::printf("  rank %d: collective AC_Get granted +%d (client %llu, "
                    "batch %.3fs)\n",
                    ctx.rank(), want,
                    static_cast<unsigned long long>(got.client_id),
                    got.batch_s);
      } else {
        std::printf("  rank %d: collective AC_Get rejected (all-or-nothing)\n",
                    ctx.rank());
      }
    }

    // Some distributed work: allreduce across compute nodes while each node
    // owns its accelerators.
    const auto total_acs = ctx.mpi().allreduce(
        ctx.world(), static_cast<std::int64_t>(s.accelerator_count()),
        minimpi::ReduceOp::kSum);
    if (ctx.rank() == 0) {
      ScopedLock lock(print_mu);
      std::printf("  job-wide accelerator count: %lld\n",
                  static_cast<long long>(total_acs));
    }

    if (got.granted) s.ac_free_collective(ctx.world(), got.client_id);
    s.ac_finalize();
  });

  // The DAC job: 2 compute nodes, acpn=0 so all 4 accelerator nodes stay
  // free for the collective dynamic request.
  std::printf("submitting the 2-node DAC application...\n");
  const auto dac_job = cluster.submit_program("mpi_dac_app", 2, 0);

  // A background stream of small CPU jobs flows through the third compute
  // node (and backfills around bigger requests).
  workload::WorkloadConfig wc;
  wc.seed = 7;
  wc.job_count = 8;
  wc.arrival_rate_hz = 200.0;
  workload::JobTemplate narrow;
  narrow.nodes = 1;
  narrow.runtime = std::chrono::milliseconds(20);
  narrow.walltime = std::chrono::milliseconds(60);
  wc.mix = {narrow};
  auto jobs = workload::WorkloadGenerator(wc).generate();

  auto client = cluster.client();
  std::vector<torque::JobId> background;
  for (const auto& j : jobs) {
    background.push_back(client.submit(
        workload::to_spec(j, core::kSleepProgram)));
  }
  std::printf("submitted %zu background jobs\n", background.size());

  if (!cluster.wait_job(dac_job)) {
    std::fprintf(stderr, "DAC job did not complete\n");
    return 1;
  }
  for (const auto id : background) {
    if (!cluster.wait_job(id)) {
      std::fprintf(stderr, "background job did not complete\n");
      return 1;
    }
  }

  const auto metrics =
      workload::analyze(client.stat_jobs(), config.compute_nodes);
  std::printf("workload done: %zu jobs, makespan %.3fs, mean wait %.3fs\n",
              metrics.completed, metrics.makespan_s, metrics.mean_wait_s);

  std::printf("\n$ qstat\n%s", core::render_qstat(client.stat_jobs()).c_str());
  std::printf("\n$ pbsnodes\n%s",
              core::render_pbsnodes(client.stat_nodes()).c_str());
  return 0;
}
