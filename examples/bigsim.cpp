// bigsim: the discrete-event clock's headline act. Boots a 1,000-node
// virtual cluster (1 head + compute front-ends + network-attached
// accelerators), pushes 10,000 jobs — static allocations plus dynget
// growers — through the full TORQUE/Maui pipeline in virtual time, and
// reports virtual-vs-wall speedup to BENCH_sim_scale.json.
//
//   ./bigsim [nodes] [jobs]      (defaults: 1000 1000 ... see below)
//
// The whole point is that minutes of simulated cluster time cost seconds of
// wall time: the clock only moves when every daemon thread is parked, so a
// 250 ms heartbeat interval across 1,000 moms costs exactly as many wall
// microseconds as the wakeups themselves need.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "simtime/clock.hpp"
#include "util/clock.hpp"

using namespace dac;

namespace {

constexpr const char* kGrowerProgram = "bigsim.grower";

// A malleable job: runs briefly, asks the scheduler for one more compute
// node mid-flight (rejections are a normal outcome at this load), and
// releases the grant before finishing.
void grower(core::JobContext& ctx) {
  core::interruptible_sleep(ctx, std::chrono::milliseconds(5));
  auto grant = ctx.grow_compute(1, 1);
  core::interruptible_sleep(ctx, std::chrono::milliseconds(5));
  if (grant.granted) ctx.release_compute(grant.client_id);
}

util::Bytes sleep_args(std::uint64_t ms) {
  util::ByteWriter w;
  w.put<std::uint64_t>(ms);
  return std::move(w).take();
}

}  // namespace

int main(int argc, char** argv) {
  // This example IS the virtual-time showcase: force DiscreteEvent no
  // matter what DACSCHED_CLOCK says.
  simtime::Clock::instance().set_mode(simtime::Mode::kDiscreteEvent);

  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1000;
  const std::size_t jobs =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 10000;

  core::DacClusterConfig cfg = core::DacClusterConfig::fast();
  // Split the non-head nodes 1:8 between compute front-ends (np=8 each) and
  // accelerators, so CN slots match the accelerator count and every job
  // (1 CN slot + 1 AC) can run as soon as an AC frees up.
  cfg.compute_nodes = std::max<std::size_t>(1, (nodes - 1) / 9);
  cfg.accel_nodes = nodes - 1 - cfg.compute_nodes;
  // 1,000 moms at the test-profile 25 ms cadence would make heartbeats the
  // dominant event stream; a real deployment at this scale would not
  // heartbeat that hard either.
  cfg.timing.mom_heartbeat_interval = std::chrono::milliseconds(1000);

  std::printf("bigsim: booting %zu nodes (%zu CN + %zu AC + head)...\n",
              nodes, cfg.compute_nodes, cfg.accel_nodes);

  const auto wall0 = std::chrono::steady_clock::now();  // NOLINT-DACSCHED(raw-clock)
  const auto stats0 = simtime::Clock::instance().stats();

  core::DacCluster cluster(cfg);
  cluster.register_program(kGrowerProgram, grower);

  const auto virt0 = simtime::now();
  const auto boot_wall = std::chrono::steady_clock::now();  // NOLINT-DACSCHED(raw-clock)
  std::printf("bigsim: booted in %.1f s wall; submitting %zu jobs...\n",
              util::to_seconds(boot_wall - wall0), jobs);

  // Submit in bounded waves: the Maui cycle is O(queued x nodes), so an
  // unbounded queue would melt real CPU without telling us anything about
  // the clock — and quiescence detection wants the set of simultaneously
  // runnable threads small relative to the machine's cores, so waves much
  // wider than the core count just pile up herd-scheduling latency (on a
  // 1-core CI box, wave 888 -> 64 -> 16 measured 132 s -> 3.6 s -> 2.4 s
  // for the same 1,000 jobs).
  const std::size_t wave = std::min<std::size_t>(cfg.accel_nodes, 16);
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t growers = 0;
  while (submitted < jobs) {
    std::vector<torque::JobId> ids;
    const std::size_t batch = std::min(wave, jobs - submitted);
    for (std::size_t i = 0; i < batch; ++i, ++submitted) {
      if (submitted % 10 == 9) {
        ids.push_back(cluster.submit_program(kGrowerProgram, 1, 1));
        ++growers;
      } else {
        ids.push_back(cluster.submit_program(core::kSleepProgram, 1, 1,
                                             sleep_args(10)));
      }
    }
    for (const auto id : ids) {
      if (cluster.wait_job(id, std::chrono::milliseconds(300'000))) {
        ++completed;
      }
    }
    std::printf("bigsim: %zu/%zu jobs done (virtual %.2f s)\n", completed,
                jobs, util::to_seconds(simtime::now() - virt0));
  }

  const auto virt1 = simtime::now();
  cluster.shutdown();

  const auto wall1 = std::chrono::steady_clock::now();  // NOLINT-DACSCHED(raw-clock)
  const auto stats1 = simtime::Clock::instance().stats();

  const double virtual_seconds = util::to_seconds(virt1 - virt0);
  const double wall_seconds = util::to_seconds(wall1 - wall0);
  const auto events = stats1.waiters_fired - stats0.waiters_fired;
  const auto advances = stats1.advances - stats0.advances;

  // A partial run must not leave a fresh-looking benchmark artifact behind:
  // fail before touching BENCH_sim_scale.json, not after.
  if (completed != jobs) {
    std::fprintf(stderr, "bigsim: FAILED — %zu/%zu jobs completed\n", completed,
                 jobs);
    return 1;
  }

  std::FILE* out = std::fopen("BENCH_sim_scale.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"nodes\": %zu,\n"
                 "  \"jobs\": %zu,\n"
                 "  \"completed\": %zu,\n"
                 "  \"dynget_jobs\": %zu,\n"
                 "  \"virtual_seconds\": %.3f,\n"
                 "  \"wall_seconds\": %.3f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"advances\": %llu,\n"
                 "  \"events\": %llu,\n"
                 "  \"events_per_sec\": %.0f\n"
                 "}\n",
                 nodes, jobs, completed, growers, virtual_seconds,
                 wall_seconds, virtual_seconds / wall_seconds,
                 static_cast<unsigned long long>(advances),
                 static_cast<unsigned long long>(events),
                 static_cast<double>(events) / wall_seconds);
    std::fclose(out);
  }

  std::printf(
      "bigsim: %zu/%zu jobs (%zu dynget) | virtual %.2f s, wall %.2f s "
      "(%.1fx) | %llu events (%.0f/s)\n",
      completed, jobs, growers, virtual_seconds, wall_seconds,
      virtual_seconds / wall_seconds,
      static_cast<unsigned long long>(events),
      static_cast<double>(events) / wall_seconds);
  return 0;
}
