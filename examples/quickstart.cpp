// Quickstart: boot a DAC cluster (1 head node, 1 compute node, 6
// network-attached accelerators — the paper's testbed), submit a job that
// statically allocates two accelerators, offload a vector addition to both,
// and print the result. This walks the whole paper pipeline: qsub with the
// acpn resource -> Maui -> mother superior -> daemon start -> AC_Init ->
// computation API -> AC_Finalize -> job completion.
#include <cstdio>
#include <numeric>
#include <span>
#include <vector>

#include "core/cli.hpp"
#include "core/cluster.hpp"

using namespace dac;

namespace {

// Offloads c = a + b to the accelerator behind `ac`.
std::vector<double> remote_vector_add(rmlib::AcSession& s, rmlib::AcHandle ac,
                                      const std::vector<double>& a,
                                      const std::vector<double>& b) {
  const auto n = a.size();
  const auto bytes = n * sizeof(double);
  const auto da = s.ac_mem_alloc(ac, bytes);
  const auto db = s.ac_mem_alloc(ac, bytes);
  const auto dc = s.ac_mem_alloc(ac, bytes);
  s.ac_memcpy_h2d(ac, da, std::as_bytes(std::span(a)));
  s.ac_memcpy_h2d(ac, db, std::as_bytes(std::span(b)));

  const auto kernel = s.ac_kernel_create(ac, "vector_add");
  util::ByteWriter args;
  args.put<std::uint64_t>(dc);
  args.put<std::uint64_t>(da);
  args.put<std::uint64_t>(db);
  args.put<std::uint64_t>(n);
  s.ac_kernel_set_args(ac, kernel, std::move(args).take());
  s.ac_kernel_run(ac, kernel, {static_cast<std::uint32_t>((n + 255) / 256),
                               1, 1}, {256, 1, 1});

  auto out = s.ac_memcpy_d2h(ac, dc, bytes);
  std::vector<double> c(n);
  std::memcpy(c.data(), out.data(), bytes);
  s.ac_mem_free(ac, da);
  s.ac_mem_free(ac, db);
  s.ac_mem_free(ac, dc);
  return c;
}

}  // namespace

int main() {
  std::printf("booting the DAC cluster (1 CN + 6 ACs + head node)...\n");
  core::DacCluster cluster(core::DacClusterConfig::paper_testbed());

  cluster.register_program("quickstart", [](core::JobContext& ctx) {
    auto& s = ctx.session();
    rmlib::InitTiming timing;
    auto handles = s.ac_init(&timing);
    std::printf("AC_Init: %zu accelerator(s) attached in %.3fs "
                "(%.3fs waiting, %.3fs connecting)\n",
                handles.size(), timing.total_s(), timing.waiting_s,
                timing.connect_s);

    constexpr std::size_t kN = 1 << 16;
    std::vector<double> a(kN), b(kN);
    std::iota(a.begin(), a.end(), 0.0);
    std::iota(b.begin(), b.end(), 1.0);

    // Split the work across both statically allocated accelerators.
    const std::size_t half = kN / 2;
    std::vector<double> a0(a.begin(), a.begin() + half);
    std::vector<double> b0(b.begin(), b.begin() + half);
    std::vector<double> a1(a.begin() + half, a.end());
    std::vector<double> b1(b.begin() + half, b.end());

    auto c0 = remote_vector_add(s, handles[0], a0, b0);
    auto c1 = remote_vector_add(s, handles[1], a1, b1);

    std::size_t errors = 0;
    for (std::size_t i = 0; i < half; ++i) {
      if (c0[i] != a0[i] + b0[i]) ++errors;
      if (c1[i] != a1[i] + b1[i]) ++errors;
    }
    std::printf("vector_add on 2 remote accelerators: %zu elements, "
                "%zu errors\n", kN, errors);
    s.ac_finalize();
  });

  const auto id = cluster.submit_program("quickstart", /*nodes=*/1,
                                         /*acpn=*/2);
  std::printf("submitted job %llu (qsub -l nodes=1:acpn=2)\n",
              static_cast<unsigned long long>(id));
  auto info = cluster.wait_job(id);
  if (!info) {
    std::fprintf(stderr, "job did not complete\n");
    return 1;
  }
  std::printf("job %llu complete: compute=[%s] accelerators=[",
              static_cast<unsigned long long>(id),
              info->compute_hosts.front().c_str());
  for (const auto& h : info->accel_hosts) std::printf("%s ", h.c_str());
  std::printf("]\n");

  std::printf("\npbs_server per-RPC metrics:\n%s",
              core::render_metrics(cluster.metrics_snapshot()).c_str());
  return 0;
}
