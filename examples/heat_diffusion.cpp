// 1D heat diffusion across cooperating network-attached accelerators — the
// paper's §I vision end to end: "the main program offloads multiple kernels
// in parallel to a set of network-attached accelerators that communicate
// directly with each other (e.g., through the well-known MPI). Such MPI
// kernels can run for an extended period of time without involving the
// host."
//
// The compute node uploads one slab of the rod per accelerator, dispatches
// one long cooperative run, and only collects the result: all halo traffic
// flows daemon-to-daemon. When the job notices it wants finer resolution it
// grows its accelerator set dynamically and redistributes.
#include <cstdio>
#include <span>
#include <vector>

#include "core/cluster.hpp"
#include "dacc/frontend.hpp"

using namespace dac;

namespace {

// Runs `iters` cooperative Jacobi iterations over `field` distributed in
// equal slabs across `handles`; returns the final field.
std::vector<double> diffuse(core::JobContext& ctx,
                            const std::vector<rmlib::AcHandle>& handles,
                            std::vector<double> field, std::uint32_t iters) {
  auto& s = ctx.session();
  const auto& comm = s.current_comm();
  const auto slab = field.size() / handles.size();

  std::vector<gpusim::DevicePtr> fields;
  for (std::size_t d = 0; d < handles.size(); ++d) {
    const auto ptr =
        s.ac_mem_alloc(handles[d], slab * sizeof(double));
    s.ac_memcpy_h2d(handles[d], ptr,
                    std::as_bytes(std::span(field.data() + d * slab, slab)));
    fields.push_back(ptr);
  }

  // One dispatch; the daemons iterate among themselves.
  dacc::frontend::stencil_run(ctx.mpi(), comm, handles.front().rank, fields,
                              slab, iters, /*boundary_left=*/0.0,
                              /*boundary_right=*/0.0);

  for (std::size_t d = 0; d < handles.size(); ++d) {
    auto back =
        s.ac_memcpy_d2h(handles[d], fields[d], slab * sizeof(double));
    std::memcpy(field.data() + d * slab, back.data(), back.size());
    s.ac_mem_free(handles[d], fields[d]);
  }
  return field;
}

double total_heat(const std::vector<double>& field) {
  double sum = 0.0;
  for (double x : field) sum += x;
  return sum;
}

}  // namespace

int main() {
  core::DacCluster cluster(core::DacClusterConfig::paper_testbed(1, 6));

  cluster.register_program("heat", [](core::JobContext& ctx) {
    auto& s = ctx.session();
    auto handles = s.ac_init();
    std::printf("[job] phase 1: %zu accelerators, coarse rod\n",
                handles.size());

    // A rod with a hot centre; heat leaks out of the fixed-zero ends.
    std::vector<double> rod(240, 0.0);
    for (std::size_t i = 100; i < 140; ++i) rod[i] = 100.0;
    const double before = total_heat(rod);

    rod = diffuse(ctx, handles, std::move(rod), 50);
    std::printf("[job] after 50 cooperative iterations: heat %.1f -> %.1f\n",
                before, total_heat(rod));

    // Phase 2: grow the set and re-partition for more parallel slabs.
    auto got = s.ac_get(4);
    if (got.granted) {
      auto all = s.handles();
      std::printf("[job] grew to %zu accelerators; continuing fine run\n",
                  all.size());
      rod = diffuse(ctx, all, std::move(rod), 50);
      s.ac_free(got.client_id);
    } else {
      std::printf("[job] growth rejected; continuing on %zu\n",
                  handles.size());
      rod = diffuse(ctx, handles, std::move(rod), 50);
    }
    std::printf("[job] after 100 iterations total: heat %.1f"
                " (diffusing toward 0)\n", total_heat(rod));
    s.ac_finalize();
  });

  const auto id = cluster.submit_program("heat", /*nodes=*/1, /*acpn=*/2);
  if (!cluster.wait_job(id)) {
    std::fprintf(stderr, "job did not complete\n");
    return 1;
  }
  std::printf("done\n");
  return 0;
}
