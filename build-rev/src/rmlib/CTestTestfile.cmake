# CMake generated Testfile for 
# Source directory: /root/repo/src/rmlib
# Build directory: /root/repo/build-rev/src/rmlib
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
