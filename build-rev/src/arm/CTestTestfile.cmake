# CMake generated Testfile for 
# Source directory: /root/repo/src/arm
# Build directory: /root/repo/build-rev/src/arm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
