# CMake generated Testfile for 
# Source directory: /root/repo/src/vnet
# Build directory: /root/repo/build-rev/src/vnet
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
