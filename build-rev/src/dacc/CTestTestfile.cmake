# CMake generated Testfile for 
# Source directory: /root/repo/src/dacc
# Build directory: /root/repo/build-rev/src/dacc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
