# CMake generated Testfile for 
# Source directory: /root/repo/src/maui
# Build directory: /root/repo/build-rev/src/maui
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
