# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-rev/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("trace")
subdirs("vnet")
subdirs("minimpi")
subdirs("gpusim")
subdirs("svc")
subdirs("faults")
subdirs("dacc")
subdirs("torque")
subdirs("maui")
subdirs("rmlib")
subdirs("arm")
subdirs("core")
subdirs("workload")
