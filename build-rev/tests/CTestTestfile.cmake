# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-rev/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-rev/tests/util_test[1]_include.cmake")
include("/root/repo/build-rev/tests/trace_test[1]_include.cmake")
include("/root/repo/build-rev/tests/vnet_test[1]_include.cmake")
include("/root/repo/build-rev/tests/vnet_stress_test[1]_include.cmake")
include("/root/repo/build-rev/tests/svc_test[1]_include.cmake")
include("/root/repo/build-rev/tests/svc_stress_test[1]_include.cmake")
include("/root/repo/build-rev/tests/minimpi_test[1]_include.cmake")
include("/root/repo/build-rev/tests/core_test[1]_include.cmake")
include("/root/repo/build-rev/tests/core_stress_test[1]_include.cmake")
include("/root/repo/build-rev/tests/harness_test[1]_include.cmake")
include("/root/repo/build-rev/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build-rev/tests/dacc_test[1]_include.cmake")
include("/root/repo/build-rev/tests/torque_test[1]_include.cmake")
include("/root/repo/build-rev/tests/faults_test[1]_include.cmake")
include("/root/repo/build-rev/tests/maui_test[1]_include.cmake")
include("/root/repo/build-rev/tests/rmlib_test[1]_include.cmake")
include("/root/repo/build-rev/tests/arm_test[1]_include.cmake")
include("/root/repo/build-rev/tests/workload_test[1]_include.cmake")
include("/root/repo/build-rev/tests/analyzer_test[1]_include.cmake")
