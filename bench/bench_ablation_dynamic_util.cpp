// Ablation A7: the paper's motivating claim (§I, §VI) — dynamic allocation
// "contributes to optimized utilization of cluster resources". Three jobs
// each need 2 accelerators for only a short phase of their runtime, with a
// pool of 4:
//
//   static strategy   qsub -l nodes=1:acpn=2 — accelerators are held for the
//                     whole job, so only two jobs fit at a time and the
//                     third queues;
//   dynamic strategy  acpn=0 + AC_Get(2)/AC_Free around the phase — all
//                     three jobs run concurrently and share the pool.
//
// Expected: dynamic cuts makespan and raises the useful share of
// accelerator hold time; the cost is that a phase's AC_Get may be rejected
// under contention (reported).
#include <atomic>
#include <cstdio>
#include "simtime/clock.hpp"
#include "util/sync.hpp"
#include <thread>

#include "bench/harness.hpp"
#include "core/cluster.hpp"
#include "util/clock.hpp"
#include "workload/workload.hpp"

using namespace dac;

namespace {

struct Tally {
  Mutex mu{"bench.tally"};
  double held_node_seconds = 0.0;   // accelerator-seconds held
  double useful_node_seconds = 0.0; // held while the accel phase computed
  int rejections = 0;

  void add(double held, double useful) {
    ScopedLock lock(mu);
    held_node_seconds += held;
    useful_node_seconds += useful;
  }
  void reject() {
    ScopedLock lock(mu);
    ++rejections;
  }
};

constexpr auto kCpuPhase = std::chrono::milliseconds(150);
constexpr auto kAccelPhase = std::chrono::milliseconds(60);
constexpr int kAccelsPerJob = 2;
constexpr int kJobs = 3;

struct Result {
  double makespan = 0.0;
  double held = 0.0;
  double useful = 0.0;
  int rejections = 0;
};

Result run_strategy(bool dynamic) {
  auto config = core::DacClusterConfig::fast();
  config.compute_nodes = 3;
  config.accel_nodes = 4;
  core::DacCluster cluster(config);
  Tally tally;

  cluster.register_program("phased", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    util::Stopwatch hold;
    auto statics = s.ac_init();
    // Static strategy: the accelerators are held from here to finalize.

    dac::simtime::sleep_for(kCpuPhase);

    double useful = 0.0;
    std::uint64_t client = 0;
    int have = static_cast<int>(statics.size());
    util::Stopwatch dyn_hold;
    if (ctx.info().acpn == 0) {
      auto got = s.ac_get(kAccelsPerJob);
      if (!got.granted) {
        tally.reject();
      } else {
        client = got.client_id;
        have = kAccelsPerJob;
        dyn_hold.reset();
      }
    }
    if (have > 0) {
      util::Stopwatch phase;
      dac::simtime::sleep_for(kAccelPhase);  // the accelerator phase
      useful = have * phase.elapsed_seconds();
    }
    if (client != 0) {
      tally.add(kAccelsPerJob * dyn_hold.elapsed_seconds(), useful);
      s.ac_free(client);
    }

    dac::simtime::sleep_for(kCpuPhase);
    if (ctx.info().acpn > 0) {
      tally.add(ctx.info().acpn * hold.elapsed_seconds(), useful);
    }
    s.ac_finalize();
  });

  std::vector<torque::JobId> ids;
  for (int i = 0; i < kJobs; ++i) {
    ids.push_back(cluster.submit_program(
        "phased", 1, dynamic ? 0 : kAccelsPerJob, {},
        std::chrono::milliseconds(2000)));
  }
  for (const auto id : ids) {
    if (!cluster.wait_job(id, std::chrono::milliseconds(60'000))) {
      std::fprintf(stderr, "job did not complete\n");
      std::exit(1);
    }
  }
  const auto metrics =
      workload::analyze(cluster.client().stat_jobs(), config.compute_nodes);
  Result r;
  r.makespan = metrics.makespan_s;
  {
    ScopedLock lock(tally.mu);
    r.held = tally.held_node_seconds;
    r.useful = tally.useful_node_seconds;
    r.rejections = tally.rejections;
  }
  return r;
}

}  // namespace

int main() {
  bench::print_title(
      "Ablation A7: static-hold vs. dynamic accelerator provisioning",
      "3 jobs, each needs 2 of 4 accelerators for ~17% of its runtime");
  bench::print_columns({"strategy", "makespan[s]", "held[ac*s]",
                        "useful/held", "rejections"});

  for (const bool dynamic : {false, true}) {
    const auto r = run_strategy(dynamic);
    bench::print_row({dynamic ? "dynamic" : "static-hold",
                      bench::cell(r.makespan), bench::cell(r.held),
                      bench::cell(r.held > 0 ? r.useful / r.held : 0.0),
                      std::to_string(r.rejections)});
  }
  std::printf(
      "\nExpected shape: dynamic provisioning shortens the makespan (all"
      " jobs run concurrently) and raises the useful fraction of"
      " accelerator hold time; occasional rejections are the price under"
      " contention.\n");
  return 0;
}
