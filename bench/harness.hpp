// Shared harness for the figure-reproduction benchmarks: fixed-trial runs
// (the paper reports means over 10 trials), paper-style table output, and
// small synchronization helpers to coordinate the benchmark driver with job
// programs running inside the virtual cluster.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "simtime/clock.hpp"
#include "util/stats.hpp"
#include "util/sync.hpp"

namespace dac::bench {

inline int trials() {
  if (const char* env = std::getenv("DACSCHED_BENCH_TRIALS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 10;  // the paper's trial count
}

inline void print_title(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
}

inline void print_columns(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%-16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%-16s", "----");
  std::printf("\n");
}

inline std::string cell(double mean, double stddev) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f±%.4f", mean, stddev);
  return buf;
}

inline std::string cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

inline void print_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-16s", c.c_str());
  std::printf("\n");
}

// A one-shot gate: job programs block in wait() until the driver opens it.
class Gate {
 public:
  void open() {
    {
      ScopedLock lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    UniqueLock lock(mu_);
    while (!open_) cv_.wait(lock);
  }
  void reset() {
    ScopedLock lock(mu_);
    open_ = false;
  }

 private:
  Mutex mu_{"bench.gate"};
  CondVar cv_;
  bool open_ DAC_GUARDED_BY(mu_) = false;
};

// A typed rendezvous slot: the program deposits a measurement, the driver
// collects it.
template <typename T>
class Slot {
 public:
  void put(T value) {
    {
      ScopedLock lock(mu_);
      value_ = std::move(value);
    }
    cv_.notify_all();
  }
  std::optional<T> take(std::chrono::milliseconds timeout) {
    const auto deadline = dac::simtime::now() + timeout;
    UniqueLock lock(mu_);
    while (!value_.has_value()) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          !value_.has_value()) {
        return std::nullopt;
      }
    }
    auto v = std::move(value_);
    value_.reset();
    return v;
  }

 private:
  Mutex mu_{"bench.slot"};
  CondVar cv_;
  std::optional<T> value_ DAC_GUARDED_BY(mu_);
};

}  // namespace dac::bench
