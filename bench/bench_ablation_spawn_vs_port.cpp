// Ablation A5: communicator establishment via ports
// (MPI_Open_port/Comm_connect/Comm_accept — the static path) vs.
// MPI_Comm_spawn + merge (the dynamic path). The paper argues spawn is the
// easier mechanism for dynamic additions (§III-D); this measures the raw
// protocol cost of both against the same daemon count, with daemon startup
// cost zeroed so only the MPI machinery is compared.
#include <cstdio>

#include "bench/harness.hpp"
#include "dacc/daemon.hpp"
#include "dacc/protocol.hpp"
#include "minimpi/proc.hpp"
#include "util/clock.hpp"
#include "vnet/cluster.hpp"

using namespace dac;

int main() {
  vnet::ClusterTopology topo;
  topo.node_count = 8;
  topo.network.latency = std::chrono::microseconds(200);
  topo.process_start_delay = std::chrono::microseconds(0);
  vnet::Cluster cluster(topo);
  minimpi::Runtime runtime(cluster);
  dacc::DeviceManager devices;
  dacc::register_daemon_executables(runtime, devices);

  const int n_trials = bench::trials();
  struct Result {
    std::vector<double> port_s;   // per y
    std::vector<double> spawn_s;  // per y
  };
  bench::Slot<Result> slot;
  int trial_counter = 0;

  runtime.register_executable(
      "bench_cn", [&](minimpi::Proc& p, const util::Bytes&) {
        Result result;
        for (int y = 1; y <= 6; ++y) {
          std::vector<vnet::NodeId> placement;
          for (int i = 0; i < y; ++i) placement.push_back(1 + i);

          // Port path: daemons publish + accept, compute node connects.
          const std::string port =
              "a5-" + std::to_string(trial_counter) + "-" + std::to_string(y);
          util::ByteWriter args;
          args.put_string(port);
          args.put<std::uint64_t>(0);
          auto handle = runtime.launch_world(dacc::kStaticDaemonExe,
                                             placement,
                                             std::move(args).take());
          util::Stopwatch w;
          minimpi::Comm inter = p.comm_connect(port, p.self(), 0);
          minimpi::Comm merged = p.intercomm_merge(inter, false);
          result.port_s.push_back(w.lap_seconds());
          for (int r = 1; r < merged.size(); ++r) {
            p.send(merged, r, dacc::kCtlShutdown, {});
          }
          p.barrier(merged);
          handle.join();
          runtime.close_port(port);

          // Spawn path: MPI_Comm_spawn + merge.
          minimpi::WorldHandle children;
          w.reset();
          minimpi::Comm inter2 =
              p.comm_spawn(p.self(), 0, dacc::kSpawnedDaemonExe, {},
                           placement, &children);
          minimpi::Comm merged2 = p.intercomm_merge(inter2, false);
          result.spawn_s.push_back(w.lap_seconds());
          for (int r = 1; r < merged2.size(); ++r) {
            p.send(merged2, r, dacc::kCtlShutdown, {});
          }
          p.barrier(merged2);
          children.join();
        }
        slot.put(result);
      });

  std::vector<util::Samples> port(7);
  std::vector<util::Samples> spawn(7);
  for (int t = 0; t < n_trials; ++t) {
    trial_counter = t;
    auto handle = runtime.launch_world("bench_cn", {7}, {});
    auto r = slot.take(std::chrono::milliseconds(120'000));
    handle.join();
    if (!r) {
      std::fprintf(stderr, "trial failed\n");
      return 1;
    }
    for (int y = 1; y <= 6; ++y) {
      port[static_cast<std::size_t>(y)].add(
          r->port_s[static_cast<std::size_t>(y - 1)]);
      spawn[static_cast<std::size_t>(y)].add(
          r->spawn_s[static_cast<std::size_t>(y - 1)]);
    }
  }

  bench::print_title(
      "Ablation A5: port/connect/accept vs. comm_spawn/merge",
      "communicator establishment with y daemons, startup cost excluded; "
      "mean over " + std::to_string(n_trials) + " trials");
  bench::print_columns({"daemons", "port-path[s]", "spawn-path[s]"});
  for (int y = 1; y <= 6; ++y) {
    bench::print_row({std::to_string(y),
                      bench::cell(port[static_cast<std::size_t>(y)].mean(),
                                  port[static_cast<std::size_t>(y)].stddev()),
                      bench::cell(spawn[static_cast<std::size_t>(y)].mean(),
                                  spawn[static_cast<std::size_t>(y)].stddev())});
  }
  std::printf(
      "\nExpected shape: both are a few round trips; spawn additionally"
      " waits for child INIT_DONE messages but needs no port polling —"
      " comparable costs, which is why the paper picks spawn for its"
      " simpler communicator handling.\n");
  return 0;
}
