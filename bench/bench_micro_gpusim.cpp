// Microbenchmarks of the gpusim substrate (google-benchmark): device memory
// management, host<->device copies, and kernel execution throughput. These
// isolate the simulated-device layer underneath the DAC offload stack.
#include <benchmark/benchmark.h>

#include <vector>

#include "gpusim/device.hpp"

namespace {

using namespace dac;

gpusim::Device& device() {
  static gpusim::Device* dev = [] {
    gpusim::DeviceConfig cfg;
    cfg.memory_bytes = 256u << 20;
    cfg.time_scale = 0.0;  // measure the implementation, not the cost model
    auto* d = new gpusim::Device(cfg);
    gpusim::register_builtin_kernels(*d);
    return d;
  }();
  return *dev;
}

void BM_MemAllocFree(benchmark::State& state) {
  auto& dev = device();
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto ptr = dev.mem_alloc(size);
    dev.mem_free(ptr);
    benchmark::DoNotOptimize(ptr);
  }
}
BENCHMARK(BM_MemAllocFree)->Arg(256)->Arg(4096)->Arg(1 << 20);

void BM_AllocFragmentation(benchmark::State& state) {
  auto& dev = device();
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<gpusim::DevicePtr> ptrs;
    ptrs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) ptrs.push_back(dev.mem_alloc(4096));
    // Free every other block first to force coalescing work.
    for (int i = 0; i < n; i += 2) {
      dev.mem_free(ptrs[static_cast<std::size_t>(i)]);
    }
    for (int i = 1; i < n; i += 2) {
      dev.mem_free(ptrs[static_cast<std::size_t>(i)]);
    }
  }
}
BENCHMARK(BM_AllocFragmentation)->Arg(64)->Arg(512);

void BM_MemcpyH2D(benchmark::State& state) {
  auto& dev = device();
  const auto size = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> host(size);
  auto ptr = dev.mem_alloc(size);
  for (auto _ : state) {
    dev.memcpy_h2d(ptr, host.data(), size);
  }
  dev.mem_free(ptr);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_MemcpyH2D)->Arg(4096)->Arg(1 << 20)->Arg(16 << 20);

void BM_KernelVectorAdd(benchmark::State& state) {
  auto& dev = device();
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto bytes = n * sizeof(double);
  auto a = dev.mem_alloc(bytes);
  auto b = dev.mem_alloc(bytes);
  auto c = dev.mem_alloc(bytes);
  dac::util::ByteWriter w;
  w.put<std::uint64_t>(c);
  w.put<std::uint64_t>(a);
  w.put<std::uint64_t>(b);
  w.put<std::uint64_t>(n);
  const auto args = w.bytes();
  for (auto _ : state) {
    dev.launch("vector_add", {1, 1, 1}, {256, 1, 1}, args);
  }
  dev.mem_free(a);
  dev.mem_free(b);
  dev.mem_free(c);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KernelVectorAdd)->Arg(1024)->Arg(1 << 16)->Arg(1 << 20);

void BM_KernelMatmul(benchmark::State& state) {
  auto& dev = device();
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto bytes = n * n * sizeof(double);
  auto a = dev.mem_alloc(bytes);
  auto b = dev.mem_alloc(bytes);
  auto c = dev.mem_alloc(bytes);
  dac::util::ByteWriter w;
  w.put<std::uint64_t>(c);
  w.put<std::uint64_t>(a);
  w.put<std::uint64_t>(b);
  w.put<std::uint64_t>(n);
  w.put<std::uint64_t>(n);
  w.put<std::uint64_t>(n);
  const auto args = w.bytes();
  for (auto _ : state) {
    dev.launch("matmul", {1, 1, 1}, {64, 1, 1}, args);
  }
  dev.mem_free(a);
  dev.mem_free(b);
  dev.mem_free(c);
}
BENCHMARK(BM_KernelMatmul)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
