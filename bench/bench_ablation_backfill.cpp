// Ablation A4: EASY backfill vs. strict FIFO on a mixed workload — the Maui
// feature the paper cites as its reason to use Maui over TORQUE's built-in
// FIFO scheduler (§III-A). The workload wedges a wide job behind a running
// one; narrow short jobs can run "through the hole" only under backfill.
// Expected: backfill improves makespan and mean wait, FIFO blocks.
#include <cstdio>

#include "bench/harness.hpp"
#include "core/cluster.hpp"
#include "workload/workload.hpp"

using namespace dac;

namespace {

workload::ScheduleMetrics run_policy(maui::Policy policy) {
  auto config = core::DacClusterConfig::fast();
  config.compute_nodes = 3;
  config.accel_nodes = 1;
  config.policy = policy;
  core::DacCluster cluster(config);

  auto submit_sleep = [&](int nodes, int runtime_ms, int walltime_ms,
                          const std::string& name) {
    torque::JobSpec spec;
    spec.name = name;
    spec.program = core::kSleepProgram;
    util::ByteWriter w;
    w.put<std::uint64_t>(static_cast<std::uint64_t>(runtime_ms));
    spec.program_args = std::move(w).take();
    spec.resources.nodes = nodes;
    spec.resources.ppn = 8;  // whole-node jobs: exclusive compute nodes
    spec.resources.walltime = std::chrono::milliseconds(walltime_ms);
    return cluster.submit(spec);
  };

  std::vector<torque::JobId> ids;
  // Wide job that occupies 2 of 3 compute nodes for a while.
  ids.push_back(submit_sleep(2, 400, 500, "wide-running"));
  // Full-width job: blocked until the wide one ends; under backfill it gets
  // a reservation instead of blocking the whole queue.
  ids.push_back(submit_sleep(3, 100, 150, "blocked-full-width"));
  // Narrow short jobs that fit in the remaining node and finish before the
  // reservation's shadow time.
  for (int i = 0; i < 6; ++i) {
    ids.push_back(submit_sleep(1, 60, 80, "narrow-" + std::to_string(i)));
  }

  for (const auto id : ids) {
    if (!cluster.wait_job(id, std::chrono::milliseconds(60'000))) {
      std::fprintf(stderr, "job %llu did not complete\n",
                   static_cast<unsigned long long>(id));
      std::exit(1);
    }
  }
  return workload::analyze(cluster.client().stat_jobs(),
                           config.compute_nodes);
}

}  // namespace

int main() {
  bench::print_title(
      "Ablation A4: EASY backfill vs. strict FIFO",
      "3 compute nodes; a full-width job wedges behind a wide running job; "
      "6 narrow short jobs may backfill");
  bench::print_columns(
      {"policy", "makespan[s]", "mean-wait[s]", "max-wait[s]", "util"});

  for (const auto& [name, policy] :
       {std::pair{std::string("fifo"), maui::Policy::kFifo},
        std::pair{std::string("backfill"), maui::Policy::kBackfill}}) {
    const auto m = run_policy(policy);
    bench::print_row({name, bench::cell(m.makespan_s),
                      bench::cell(m.mean_wait_s), bench::cell(m.max_wait_s),
                      bench::cell(m.node_utilization)});
  }
  std::printf(
      "\nExpected shape: backfill runs the narrow jobs during the wide"
      " job's tail => lower makespan and mean wait, higher utilization.\n");
  return 0;
}
