// Sensitivity study S1: how the reproduced quantities depend on the modeled
// interconnect latency — the main free parameter of the substitution (see
// DESIGN.md §2). For a 4x range of per-hop latency around the calibrated
// value, the *shapes* the paper reports must be invariant even though the
// absolute numbers move: AC_Init stays daemon-startup-dominated, and the
// dynamic request stays batch-system-dominated.
#include <cstdio>

#include "bench/harness.hpp"
#include "core/cluster.hpp"

using namespace dac;

namespace {

struct Point {
  double init_wait = 0.0;
  double init_connect = 0.0;
  double dyn_batch = 0.0;
  double dyn_mpi = 0.0;
};

Point measure(std::chrono::microseconds latency, int trials) {
  auto config = core::DacClusterConfig::paper_testbed(1, 6);
  config.network.latency = latency;
  core::DacCluster cluster(config);

  bench::Slot<Point> slot;
  cluster.register_program("sens", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    rmlib::InitTiming t;
    (void)s.ac_init(&t);
    auto got = s.ac_get(3);
    Point p;
    p.init_wait = t.waiting_s;
    p.init_connect = t.connect_s;
    if (got.granted) {
      p.dyn_batch = got.batch_s;
      p.dyn_mpi = got.mpi_s;
      s.ac_free(got.client_id);
    }
    s.ac_finalize();
    slot.put(p);
  });

  util::Samples wait;
  util::Samples connect;
  util::Samples batch;
  util::Samples mpi;
  for (int t = 0; t < trials; ++t) {
    const auto id = cluster.submit_program("sens", 1, 2);
    auto p = slot.take(std::chrono::milliseconds(120'000));
    if (!p || !cluster.wait_job(id, std::chrono::milliseconds(60'000))) {
      std::fprintf(stderr, "trial failed\n");
      std::exit(1);
    }
    wait.add(p->init_wait);
    connect.add(p->init_connect);
    batch.add(p->dyn_batch);
    mpi.add(p->dyn_mpi);
  }
  return Point{wait.mean(), connect.mean(), batch.mean(), mpi.mean()};
}

}  // namespace

int main() {
  const int trials = std::max(3, bench::trials() / 2);
  bench::print_title(
      "Sensitivity S1: per-hop network latency (calibrated value: 200 us)",
      "AC_Init(x=2) split and AC_Get(3) split vs. latency; mean over " +
          std::to_string(trials) + " trials");
  bench::print_columns({"latency[us]", "init-wait[s]", "init-conn[s]",
                        "dyn-batch[s]", "dyn-mpi[s]"});
  for (const int us : {50, 200, 800}) {
    const auto p = measure(std::chrono::microseconds(us), trials);
    bench::print_row({std::to_string(us), bench::cell(p.init_wait),
                      bench::cell(p.init_connect), bench::cell(p.dyn_batch),
                      bench::cell(p.dyn_mpi)});
  }
  std::printf(
      "\nExpected shape: absolute costs grow with latency, but the"
      " orderings the paper reports are latency-invariant — waiting >>"
      " connect, batch >> MPI.\n");
  return 0;
}
