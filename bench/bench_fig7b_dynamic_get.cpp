// Figure 7(b): time for completion of a dynamic request for 1..6 additional
// accelerators, split into the batch-system share (pbs_dynget round trip:
// dynqueued scheduling, allocation, mom DYNJOIN forwarding) and the
// resource-management-library share (MPI_Comm_spawn + MPI_Intercomm_merge).
//
// Paper shape: the batch-system share dominates and grows with the count;
// the MPI share stays roughly flat; totals stay sub-second.
#include <cstdio>

#include "bench/harness.hpp"
#include "core/cluster.hpp"

using namespace dac;

namespace {
struct Measurement {
  double batch_s = 0.0;
  double mpi_s = 0.0;
  bool granted = false;
};
}  // namespace

int main() {
  core::DacCluster cluster(core::DacClusterConfig::paper_testbed(1, 6));

  bench::Slot<Measurement> slot;
  cluster.register_program("fig7b", [&](core::JobContext& ctx) {
    util::ByteReader r(ctx.info().program_args);
    const auto y = r.get<std::int32_t>();
    auto& s = ctx.session();
    (void)s.ac_init();  // no static accelerators
    auto got = s.ac_get(y);
    Measurement m{got.batch_s, got.mpi_s, got.granted};
    if (got.granted) s.ac_free(got.client_id);
    s.ac_finalize();
    slot.put(m);
  });

  const int n_trials = bench::trials();
  bench::print_title(
      "Figure 7(b): Time for completion of a dynamic request",
      "1 compute node dynamically requesting y accelerators; mean over " +
          std::to_string(n_trials) + " trials");
  bench::print_columns(
      {"accelerators", "batch[s]", "rm-lib(MPI)[s]", "total[s]"});

  for (int y = 1; y <= 6; ++y) {
    util::Samples batch;
    util::Samples mpi;
    util::Samples total;
    for (int t = 0; t < n_trials; ++t) {
      util::ByteWriter args;
      args.put<std::int32_t>(y);
      const auto id =
          cluster.submit_program("fig7b", 1, 0, std::move(args).take());
      auto m = slot.take(std::chrono::milliseconds(60'000));
      if (!m || !m->granted) {
        std::fprintf(stderr, "dynamic request failed (y=%d)\n", y);
        return 1;
      }
      if (!cluster.wait_job(id, std::chrono::milliseconds(60'000))) {
        std::fprintf(stderr, "job did not complete (y=%d)\n", y);
        return 1;
      }
      batch.add(m->batch_s);
      mpi.add(m->mpi_s);
      total.add(m->batch_s + m->mpi_s);
    }
    bench::print_row({std::to_string(y),
                      bench::cell(batch.mean(), batch.stddev()),
                      bench::cell(mpi.mean(), mpi.stddev()),
                      bench::cell(total.mean(), total.stddev())});
  }
  std::printf(
      "\nExpected shape (paper): batch-system share dominates and grows"
      " with y; MPI share roughly flat; total sub-second.\n");
  return 0;
}
