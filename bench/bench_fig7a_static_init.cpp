// Figure 7(a): time for completion of AC_Init() for 1..6 statically
// allocated network-attached accelerators, split into the waiting share
// (until all accelerator daemons were prepared on the remote nodes) and the
// connect share (establishing the MPI communicator).
//
// Paper shape: waiting dominates and grows with the accelerator count;
// ~0.3 s total at 6 accelerators. Setup mirrors the paper's testbed: 8 nodes
// = 1 head + 1 compute node + 6 accelerator nodes.
#include <cstdio>

#include "bench/harness.hpp"
#include "core/cluster.hpp"

using namespace dac;

int main() {
  core::DacCluster cluster(core::DacClusterConfig::paper_testbed(1, 6));

  bench::Slot<rmlib::InitTiming> slot;
  cluster.register_program("fig7a", [&](core::JobContext& ctx) {
    rmlib::InitTiming timing;
    (void)ctx.session().ac_init(&timing);
    ctx.session().ac_finalize();
    slot.put(timing);
  });

  const int n_trials = bench::trials();
  bench::print_title(
      "Figure 7(a): Time for completion of AC_Init()",
      "1 compute node, x statically allocated accelerators; mean over " +
          std::to_string(n_trials) + " trials");
  bench::print_columns(
      {"accelerators", "waiting[s]", "connect[s]", "total[s]"});

  for (int x = 1; x <= 6; ++x) {
    util::Samples waiting;
    util::Samples connect;
    util::Samples total;
    for (int t = 0; t < n_trials; ++t) {
      const auto id = cluster.submit_program("fig7a", 1, x);
      auto timing = slot.take(std::chrono::milliseconds(60'000));
      if (!timing) {
        std::fprintf(stderr, "trial timed out (x=%d)\n", x);
        return 1;
      }
      if (!cluster.wait_job(id, std::chrono::milliseconds(60'000))) {
        std::fprintf(stderr, "job did not complete (x=%d)\n", x);
        return 1;
      }
      waiting.add(timing->waiting_s);
      connect.add(timing->connect_s);
      total.add(timing->total_s());
    }
    bench::print_row({std::to_string(x),
                      bench::cell(waiting.mean(), waiting.stddev()),
                      bench::cell(connect.mean(), connect.stddev()),
                      bench::cell(total.mean(), total.stddev())});
  }
  std::printf(
      "\nExpected shape (paper): waiting >> connect, total grows with x,"
      " sub-0.5s at x=6.\n");
  return 0;
}
