// Scheduler-throughput benchmark for the high-throughput scheduling path
// (docs/SCHEDULING.md): a 1,000-node cluster pushes 10,000 jobs — half of
// them issuing a dynamic request mid-flight — through the full TORQUE/Maui
// pipeline on the discrete-event clock, once with batched kDynDecide
// servicing and once with the serial per-request kRunDyn/kRejectDyn path.
// All times are *virtual*: the modeled scheduling costs, not host speed,
// determine the latencies, so results are comparable across machines.
//
//   ./bench_sched_throughput [nodes] [jobs]     (defaults: 1000 10000)
//
// Reports client-observed dynget latency (p50/p99, measured around the
// pbs_dynget round trip inside the job) and scheduler cycles per virtual
// second, and writes BENCH_sched_throughput.json. CI's bench-trend step
// compares cycles/virtual-second against the committed baseline and fails
// on a >20% drop. Exits nonzero if any job is lost or any dynamic request
// goes undecided — a bench that loses work measures nothing.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "simtime/clock.hpp"
#include "util/clock.hpp"
#include "util/stats.hpp"
#include "util/sync.hpp"

using namespace dac;

namespace {

constexpr const char* kGetterProgram = "schedbench.getter";

util::Bytes sleep_args(std::uint64_t ms) {
  util::ByteWriter w;
  w.put<std::uint64_t>(ms);
  return std::move(w).take();
}

struct AblationResult {
  std::size_t completed = 0;
  std::size_t dyn_jobs = 0;
  std::size_t dyn_decided = 0;
  std::size_t dyn_granted = 0;
  double dynget_p50_ms = 0.0;
  double dynget_p99_ms = 0.0;
  double virtual_seconds = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t cycles = 0;
  double cycles_per_vsec = 0.0;
};

// Shared between the driver and the getter jobs of one ablation run.
struct DynMeter {
  Mutex mu{"bench.dyn_meter"};
  util::Samples wait_s;
  std::size_t decided = 0;
  std::size_t granted = 0;
};

bool run_ablation(bool batched, std::size_t nodes, std::size_t jobs,
                  AblationResult* out) {
  core::DacClusterConfig cfg = core::DacClusterConfig::fast();
  // bigsim's 1:8 CN:AC split (compute front-ends have np=8) and relaxed
  // heartbeat cadence, so heartbeats are not the dominant event stream.
  cfg.compute_nodes = std::max<std::size_t>(1, (nodes - 1) / 9);
  cfg.accel_nodes = nodes - 1 - cfg.compute_nodes;
  cfg.timing.mom_heartbeat_interval = std::chrono::milliseconds(1000);
  cfg.sched_batched_dyn = batched;  // the ablation under test

  DynMeter meter;
  const auto wall0 = std::chrono::steady_clock::now();  // NOLINT-DACSCHED(raw-clock)

  core::DacCluster cluster(cfg);
  cluster.register_program(kGetterProgram, [&meter](core::JobContext& ctx) {
    core::interruptible_sleep(ctx, std::chrono::milliseconds(5));
    // Align to a shared 50 ms virtual-time grid so a whole wave's requests
    // reach the server inside one scheduler cycle. The wake gate fires a
    // cycle per arrival, so unaligned requests get serviced one at a time
    // and the batched/serial ablation would measure batches of size one.
    // sleep_until (not interruptible_sleep) for exact, jitter-free ties.
    const auto grid = std::chrono::milliseconds(50);
    const auto since = simtime::now().time_since_epoch();
    simtime::sleep_until(simtime::TimePoint(since - (since % grid) + grid));
    const auto t0 = simtime::now();
    auto grant = ctx.grow_compute(1, 1);
    const double waited = util::to_seconds(simtime::now() - t0);
    {
      ScopedLock lock(meter.mu);
      meter.wait_s.add(waited);
      ++meter.decided;
      if (grant.granted) ++meter.granted;
    }
    // Hold the grant long enough for the MOM_DYN_ADD/DYNJOIN handshake to
    // settle before releasing: a job that exits milliseconds after a grant
    // leaves its mother superior blocked joining a dead process, and that
    // stall is the mom's, not the scheduler's — not what this measures.
    core::interruptible_sleep(ctx, std::chrono::milliseconds(50));
    if (grant.granted) ctx.release_compute(grant.client_id);
  });

  const auto virt0 = simtime::now();

  // Bounded submission waves, same rationale as examples/bigsim.cpp: the
  // Maui cycle is O(queued x nodes) and quiescence detection wants the
  // runnable set small relative to the core count.
  const std::size_t wave = std::min<std::size_t>(cfg.accel_nodes, 16);
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t dyn_jobs = 0;
  while (submitted < jobs) {
    std::vector<torque::JobId> ids;
    const std::size_t batch = std::min(wave, jobs - submitted);
    for (std::size_t i = 0; i < batch; ++i, ++submitted) {
      // Three of every four jobs are dynamic requesters — the storm that
      // batched servicing exists for. The rest are static sleep jobs
      // holding one CN slot and one accelerator, keeping the static path
      // loaded alongside the dynamic one.
      if (submitted % 4 != 3) {
        ids.push_back(cluster.submit_program(kGetterProgram, 1, 0));
        ++dyn_jobs;
      } else {
        ids.push_back(cluster.submit_program(core::kSleepProgram, 1, 1,
                                             sleep_args(10)));
      }
    }
    for (const auto id : ids) {
      if (cluster.wait_job(id, std::chrono::milliseconds(300'000))) {
        ++completed;
      }
    }
  }

  const auto virt1 = simtime::now();
  const auto stats = cluster.scheduler_stats();
  cluster.shutdown();
  const auto wall1 = std::chrono::steady_clock::now();  // NOLINT-DACSCHED(raw-clock)

  out->completed = completed;
  out->dyn_jobs = dyn_jobs;
  {
    ScopedLock lock(meter.mu);
    out->dyn_decided = meter.decided;
    out->dyn_granted = meter.granted;
    out->dynget_p50_ms = meter.wait_s.percentile(50.0) * 1e3;
    out->dynget_p99_ms = meter.wait_s.percentile(99.0) * 1e3;
  }
  out->virtual_seconds = util::to_seconds(virt1 - virt0);
  out->wall_seconds = util::to_seconds(wall1 - wall0);
  out->cycles = stats.cycles;
  out->cycles_per_vsec =
      static_cast<double>(stats.cycles) / out->virtual_seconds;

  if (completed != jobs) {
    std::fprintf(stderr, "FAIL(%s): %zu/%zu jobs completed\n",
                 batched ? "batched" : "serial", completed, jobs);
    return false;
  }
  if (out->dyn_decided != dyn_jobs) {
    std::fprintf(stderr, "FAIL(%s): %zu/%zu dynamic requests decided\n",
                 batched ? "batched" : "serial", out->dyn_decided, dyn_jobs);
    return false;
  }
  return true;
}

void print_result(const char* name, const AblationResult& r) {
  std::printf(
      "%-8s: %zu jobs (%zu dyn, %zu granted) | dynget p50 %.2f ms, p99 "
      "%.2f ms | %llu cycles over %.1f virtual s (%.1f cyc/vs) | wall %.1f s\n",
      name, r.completed, r.dyn_jobs, r.dyn_granted, r.dynget_p50_ms,
      r.dynget_p99_ms, static_cast<unsigned long long>(r.cycles),
      r.virtual_seconds, r.cycles_per_vsec, r.wall_seconds);
}

void emit_json(const char* key, const AblationResult& r, std::FILE* out,
               bool trailing_comma) {
  std::fprintf(out,
               "  \"%s\": {\n"
               "    \"completed\": %zu,\n"
               "    \"dyn_jobs\": %zu,\n"
               "    \"dyn_granted\": %zu,\n"
               "    \"dynget_p50_ms\": %.3f,\n"
               "    \"dynget_p99_ms\": %.3f,\n"
               "    \"virtual_seconds\": %.3f,\n"
               "    \"wall_seconds\": %.3f,\n"
               "    \"cycles\": %llu,\n"
               "    \"cycles_per_vsec\": %.1f\n"
               "  }%s\n",
               key, r.completed, r.dyn_jobs, r.dyn_granted, r.dynget_p50_ms,
               r.dynget_p99_ms, r.virtual_seconds, r.wall_seconds,
               static_cast<unsigned long long>(r.cycles), r.cycles_per_vsec,
               trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  // Virtual time is the whole point: force DiscreteEvent regardless of
  // DACSCHED_CLOCK, exactly like examples/bigsim.cpp.
  simtime::Clock::instance().set_mode(simtime::Mode::kDiscreteEvent);

  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1000;
  const std::size_t jobs =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 10000;

  std::printf("bench_sched_throughput: %zu nodes, %zu jobs per ablation\n",
              nodes, jobs);

  AblationResult batched;
  if (!run_ablation(/*batched=*/true, nodes, jobs, &batched)) return 1;
  print_result("batched", batched);

  AblationResult serial;
  if (!run_ablation(/*batched=*/false, nodes, jobs, &serial)) return 1;
  print_result("serial", serial);

  const double p99_improvement =
      batched.dynget_p99_ms > 0.0 ? serial.dynget_p99_ms / batched.dynget_p99_ms
                                  : 0.0;
  std::printf("dynget p99 improvement (serial/batched): %.2fx\n",
              p99_improvement);

  std::FILE* out = std::fopen("BENCH_sched_throughput.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"nodes\": %zu,\n  \"jobs\": %zu,\n", nodes, jobs);
    emit_json("batched", batched, out, /*trailing_comma=*/true);
    emit_json("serial", serial, out, /*trailing_comma=*/true);
    std::fprintf(out, "  \"dynget_p99_improvement\": %.2f\n}\n",
                 p99_improvement);
    std::fclose(out);
  }
  return 0;
}
