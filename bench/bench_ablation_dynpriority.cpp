// Ablation A3: the paper schedules dynamic requests with top priority
// (§III-E). This ablation disables that policy (dynamic requests are
// serviced after the static queue) and measures the dynamic allocation
// latency under a queue of pending qsub requests. Expected: dynamic-first
// keeps the latency near the unloaded case; without it the request pays for
// the whole static queue every cycle.
#include <atomic>
#include <cstdio>
#include <thread>

#include "simtime/clock.hpp"
#include "bench/harness.hpp"
#include "core/cluster.hpp"

using namespace dac;

namespace {

double measure(bool dynamic_first, int load, int n_trials) {
  auto config = core::DacClusterConfig::paper_testbed(1, 6);
  config.dynamic_first = dynamic_first;
  core::DacCluster cluster(config);

  bench::Gate* gate = nullptr;
  std::atomic<bool> ready{false};
  bench::Slot<double> slot;
  cluster.register_program("dynprio", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    ready.store(true);
    gate->wait();
    auto got = s.ac_get(1);
    if (got.granted) s.ac_free(got.client_id);
    s.ac_finalize();
    slot.put(got.granted ? got.batch_s : -1.0);
  });

  auto client = cluster.client();
  util::Samples samples;
  for (int t = 0; t < n_trials; ++t) {
    bench::Gate g;
    gate = &g;
    ready.store(false);
    const auto id = cluster.submit_program("dynprio", 1, 0);
    while (!ready.load()) {
      dac::simtime::sleep_for(std::chrono::milliseconds(1));
    }
    std::vector<torque::JobId> background;
    for (int i = 0; i < load; ++i) {
      torque::JobSpec spec;
      spec.name = "load";
      spec.resources.nodes = 64;  // never runnable: pure scheduling load
      background.push_back(client.submit(spec));
    }
    const auto c0 = cluster.scheduler_stats().cycles;
    while (cluster.scheduler_stats().cycles == c0) {
      dac::simtime::sleep_for(std::chrono::milliseconds(1));
    }
    dac::simtime::sleep_for(std::chrono::milliseconds(10));
    g.open();
    auto v = slot.take(std::chrono::milliseconds(120'000));
    if (!v || *v < 0.0 ||
        !cluster.wait_job(id, std::chrono::milliseconds(60'000))) {
      std::fprintf(stderr, "trial failed\n");
      std::exit(1);
    }
    for (const auto b : background) client.delete_job(b);
    samples.add(*v);
  }
  return samples.mean();
}

}  // namespace

int main() {
  const int n_trials = bench::trials();
  bench::print_title(
      "Ablation A3: dynamic-requests-first priority vs. plain queue order",
      "pbs_dynget latency for 1 accelerator with 12 pending qsub requests; "
      "mean over " + std::to_string(n_trials) + " trials");
  bench::print_columns({"policy", "dynget[s]"});

  const double with_priority = measure(true, 12, n_trials);
  const double without_priority = measure(false, 12, n_trials);
  bench::print_row({"dynamic-first", bench::cell(with_priority)});
  bench::print_row({"queue-order", bench::cell(without_priority)});
  std::printf(
      "\nExpected shape: without the paper's dynamic-first policy the"
      " request additionally waits behind the static queue evaluation in"
      " its service cycle.\n");
  return 0;
}
