// Figure 8: time to dynamically allocate one accelerator while the Maui
// scheduler is busy servicing 0 / 16 / 20 other qsub requests, split into
// the time spent waiting for the scheduler to finish the earlier requests
// (queue wait) and the time servicing the dynamic request itself.
//
// As in the paper, the background jobs never touch the DAC nodes: they
// request more compute nodes than the cluster has, so they only cost
// scheduling time. Paper shape: the larger the load, the longer the wait.
#include <atomic>
#include <cstdio>
#include <thread>

#include "simtime/clock.hpp"
#include "bench/harness.hpp"
#include "core/cluster.hpp"

using namespace dac;

namespace {
struct Measurement {
  double queue_wait_s = 0.0;
  double service_s = 0.0;
  bool granted = false;
};
}  // namespace

int main() {
  core::DacCluster cluster(core::DacClusterConfig::paper_testbed(1, 6));

  bench::Gate* gate = nullptr;
  std::atomic<bool> ready{false};
  bench::Slot<Measurement> slot;
  cluster.register_program("fig8", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    ready.store(true);
    gate->wait();  // driver releases once the background load is submitted
    auto got = s.ac_get(1);
    Measurement m{got.reply.queue_wait_seconds, got.reply.service_seconds,
                  got.granted};
    if (got.granted) s.ac_free(got.client_id);
    s.ac_finalize();
    slot.put(m);
  });

  const int n_trials = bench::trials();
  bench::print_title(
      "Figure 8: Dynamic allocation of one accelerator under scheduler load",
      "background qsub requests keep Maui busy; mean over " +
          std::to_string(n_trials) + " trials");
  bench::print_columns(
      {"load[jobs]", "sched-other[s]", "dyn-service[s]", "total[s]"});

  auto client = cluster.client();
  for (const int load : {0, 16, 20}) {
    util::Samples waits;
    util::Samples services;
    util::Samples totals;
    for (int t = 0; t < n_trials; ++t) {
      bench::Gate g;
      gate = &g;
      ready.store(false);
      const auto id = cluster.submit_program("fig8", 1, 0);
      // The requesting job must already be running (and parked at the gate)
      // before the background load exists, as in the paper's setup.
      while (!ready.load()) {
        dac::simtime::sleep_for(std::chrono::milliseconds(1));
      }

      // Submit the background load: jobs that can never run (they ask for
      // more compute nodes than exist), so they stay queued and cost
      // evaluation time every cycle without touching the DAC nodes.
      std::vector<torque::JobId> background;
      for (int i = 0; i < load; ++i) {
        torque::JobSpec spec;
        spec.name = "load-" + std::to_string(i);
        spec.resources.nodes = 64;
        background.push_back(client.submit(spec));
      }
      // Fire the dynamic request into the middle of a scheduling cycle that
      // covers the whole background load: wait for the next cycle to begin
      // (its queue snapshot is taken within the first millisecond), then
      // release the requester.
      if (load > 0) {
        const auto c0 = cluster.scheduler_stats().cycles;
        while (cluster.scheduler_stats().cycles == c0) {
          dac::simtime::sleep_for(std::chrono::milliseconds(1));
        }
        dac::simtime::sleep_for(std::chrono::milliseconds(10));
      }
      g.open();

      auto m = slot.take(std::chrono::milliseconds(120'000));
      if (!m || !m->granted) {
        std::fprintf(stderr, "dynamic request failed (load=%d)\n", load);
        return 1;
      }
      if (!cluster.wait_job(id, std::chrono::milliseconds(60'000))) {
        std::fprintf(stderr, "job did not complete (load=%d)\n", load);
        return 1;
      }
      for (const auto b : background) client.delete_job(b);
      waits.add(m->queue_wait_s);
      services.add(m->service_s);
      totals.add(m->queue_wait_s + m->service_s);
    }
    bench::print_row({std::to_string(load),
                      bench::cell(waits.mean(), waits.stddev()),
                      bench::cell(services.mean(), services.stddev()),
                      bench::cell(totals.mean(), totals.stddev())});
  }
  std::printf(
      "\nExpected shape (paper): the larger the workload Maui is handling"
      " when the dynamic request arrives, the longer the wait.\n");
  return 0;
}
