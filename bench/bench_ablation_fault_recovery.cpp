// Ablation A10: fault-detection and job-recovery latency vs. heartbeat
// interval. The fault subsystem's two-phase detector (suspect, then down)
// trades monitoring traffic against reaction time: the server declares a
// node down after heartbeat_stale_factor silent intervals, reclaims its
// resources, and requeues the jobs it ran (job_requeue_limit permitting).
//
// For each heartbeat interval this measures, per trial on a fresh cluster:
//
//   detect   fail_node() -> server reports the node down (pbsnodes view);
//   recover  fail_node() -> the requeued job completed on a survivor.
//
// Expected: both scale linearly with the interval (the stale factor is
// fixed), with a near-constant requeue+rerun overhead on top of detection.
#include <atomic>
#include <cstdio>
#include <string>

#include "bench/harness.hpp"
#include "core/cluster.hpp"
#include "util/clock.hpp"
#include "util/queue.hpp"

using namespace dac;

namespace {

struct Point {
  double detect_mean_s = 0.0;
  double detect_std_s = 0.0;
  double recover_mean_s = 0.0;
  double recover_std_s = 0.0;
  int failures = 0;
};

Point measure(std::chrono::milliseconds interval, int trials) {
  util::Samples detect;
  util::Samples recover;
  Point p;

  for (int t = 0; t < trials; ++t) {
    auto cfg = core::DacClusterConfig::fast();
    cfg.compute_nodes = 2;
    cfg.accel_nodes = 1;
    cfg.timing.mom_heartbeat_interval = interval;
    cfg.timing.heartbeat_stale_factor = 8;
    cfg.timing.heartbeat_suspect_factor = 4;
    cfg.timing.job_requeue_limit = 1;
    core::DacCluster cluster(cfg);

    // First attempt blocks until its node dies; the requeued attempt
    // finishes immediately, so `recover` isolates the batch-system path.
    std::atomic<int> runs{0};
    util::BlockingQueue<int> started;
    cluster.register_program("victim", [&](core::JobContext& ctx) {
      if (runs.fetch_add(1) == 0) {
        (void)started.push(0);
        core::interruptible_sleep(ctx, std::chrono::milliseconds(60'000));
      }
    });

    const auto id = cluster.submit_program("victim", 1, 0);
    if (!started.pop().has_value()) {
      ++p.failures;
      continue;
    }
    auto running = cluster.client().stat_job(id);
    if (!running) {
      ++p.failures;
      continue;
    }
    const auto host = running->compute_hosts.front();

    util::Stopwatch watch;
    cluster.fail_node(host == "cn0" ? 1 : 2);
    if (!cluster.await_node_liveness(host, torque::Liveness::kDown,
                                     std::chrono::milliseconds(30'000))) {
      ++p.failures;
      continue;
    }
    detect.add(watch.elapsed_seconds());
    const auto info =
        cluster.wait_job(id, std::chrono::milliseconds(60'000));
    if (!info || info->state != torque::JobState::kComplete ||
        info->requeues != 1) {
      ++p.failures;
      continue;
    }
    recover.add(watch.elapsed_seconds());
  }

  p.detect_mean_s = detect.mean();
  p.detect_std_s = detect.stddev();
  p.recover_mean_s = recover.mean();
  p.recover_std_s = recover.stddev();
  return p;
}

}  // namespace

int main() {
  const int trials = bench::trials();
  bench::print_title(
      "Ablation A10: failure detection & recovery vs. heartbeat interval",
      "compute-node kill -> down detection -> requeue -> rerun; stale factor"
      " 8, mean over " + std::to_string(trials) + " trials");
  bench::print_columns({"hb[ms]", "detect[s]", "recover[s]", "overhead[s]",
                        "failures"});

  for (const auto interval_ms : {10, 25, 50, 100}) {
    const auto p = measure(std::chrono::milliseconds(interval_ms), trials);
    bench::print_row({std::to_string(interval_ms),
                      bench::cell(p.detect_mean_s, p.detect_std_s),
                      bench::cell(p.recover_mean_s, p.recover_std_s),
                      bench::cell(p.recover_mean_s - p.detect_mean_s),
                      std::to_string(p.failures)});
    std::printf(
        "{\"bench\":\"ablation_fault_recovery\",\"heartbeat_ms\":%d,"
        "\"detect_s\":%.6f,\"detect_std_s\":%.6f,\"recover_s\":%.6f,"
        "\"recover_std_s\":%.6f,\"failures\":%d}\n",
        interval_ms, p.detect_mean_s, p.detect_std_s, p.recover_mean_s,
        p.recover_std_s, p.failures);
  }

  std::printf(
      "\nExpected shape: detection time ~= stale_factor x interval, so both"
      " curves scale linearly with the heartbeat interval; the gap between"
      " recover and detect is the near-constant requeue + reschedule +"
      " rerun cost.\n");
  return 0;
}
