// Microbenchmarks of the wire layer (google-benchmark): byte-buffer
// serialization, the rpc envelope, and the batch system's larger payloads
// (job info, queue snapshots). These bound the per-message CPU costs under
// the protocol latencies measured elsewhere.
#include <benchmark/benchmark.h>

#include "torque/job.hpp"
#include "torque/server.hpp"
#include "util/bytes.hpp"

namespace {

using namespace dac;

void BM_ScalarRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    util::ByteWriter w;
    for (int i = 0; i < 16; ++i) w.put<std::uint64_t>(i);
    util::ByteReader r(w.bytes());
    std::uint64_t sum = 0;
    for (int i = 0; i < 16; ++i) sum += r.get<std::uint64_t>();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ScalarRoundTrip);

void BM_StringVector(benchmark::State& state) {
  std::vector<std::string> hosts;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    hosts.push_back("node" + std::to_string(i));
  }
  for (auto _ : state) {
    util::ByteWriter w;
    w.put_string_vector(hosts);
    util::ByteReader r(w.bytes());
    auto out = r.get_string_vector();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StringVector)->Arg(8)->Arg(64);

void BM_BulkPayload(benchmark::State& state) {
  util::Bytes data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    util::ByteWriter w;
    w.put_bytes(data);
    util::ByteReader r(w.bytes());
    auto out = r.get_bytes();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BulkPayload)->Arg(4096)->Arg(1 << 20);

torque::JobInfo sample_job() {
  torque::JobInfo j;
  j.id = 42;
  j.spec.name = "simulation-run-17";
  j.spec.owner = "alice";
  j.spec.program = "app";
  j.spec.resources = {4, 8, 2, std::chrono::milliseconds(3'600'000)};
  j.state = torque::JobState::kRunning;
  j.compute_hosts = {"cn0", "cn1", "cn2", "cn3"};
  j.accel_hosts = {"ac0", "ac1", "ac2", "ac3", "ac4", "ac5", "ac6", "ac7"};
  j.dyn_accel_hosts = {"ac8", "ac9"};
  return j;
}

void BM_JobInfoRoundTrip(benchmark::State& state) {
  const auto job = sample_job();
  for (auto _ : state) {
    util::ByteWriter w;
    torque::put_job_info(w, job);
    util::ByteReader r(w.bytes());
    auto out = torque::get_job_info(r);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_JobInfoRoundTrip);

void BM_QueueSnapshot(benchmark::State& state) {
  torque::QueueSnapshot snap;
  snap.now = 123.0;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    auto j = sample_job();
    j.id = static_cast<torque::JobId>(i + 1);
    snap.jobs.push_back(std::move(j));
  }
  snap.dyn.push_back({1, 1, 2, 2, torque::NodeKind::kAccelerator, 1.0});
  for (auto _ : state) {
    util::ByteWriter w;
    torque::put_queue_snapshot(w, snap);
    util::ByteReader r(w.bytes());
    auto out = torque::get_queue_snapshot(r);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QueueSnapshot)->Arg(20)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
