// Ablation A1: pipelined vs. unpipelined large data transfers (paper §II-C:
// "an efficient communication protocol which includes pipelining large data
// transfers"). Pipelined mode streams every chunk and waits for one final
// acknowledgement; unpipelined mode waits for an ack per chunk, paying a
// round trip each. Expected: pipelining wins, increasingly so for larger
// transfers.
#include <cstdio>

#include "bench/harness.hpp"
#include "core/cluster.hpp"
#include "util/clock.hpp"

using namespace dac;

namespace {
struct Row {
  std::size_t mib;
  double pipelined_s;
  double acked_s;
};
}  // namespace

int main() {
  auto config = core::DacClusterConfig::paper_testbed(1, 1);
  core::DacCluster cluster(config);

  bench::Slot<std::vector<Row>> slot;
  cluster.register_program("pipeline", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    auto handles = s.ac_init();
    const auto ac = handles.at(0);
    const auto& comm = s.current_comm();

    std::vector<Row> rows;
    const int n_trials = bench::trials();
    for (const std::size_t mib : {1u, 4u, 16u}) {
      const std::size_t bytes = mib << 20;
      util::Bytes host(bytes);
      const auto dptr = s.ac_mem_alloc(ac, bytes);
      util::Samples piped;
      util::Samples acked;
      for (int t = 0; t < n_trials; ++t) {
        dacc::TransferOptions opts;
        opts.pipelined = true;
        util::Stopwatch w;
        dacc::frontend::memcpy_h2d(ctx.mpi(), comm, ac.rank, dptr, host,
                                   opts);
        piped.add(w.lap_seconds());
        opts.pipelined = false;
        dacc::frontend::memcpy_h2d(ctx.mpi(), comm, ac.rank, dptr, host,
                                   opts);
        acked.add(w.lap_seconds());
      }
      rows.push_back(Row{mib, piped.mean(), acked.mean()});
      s.ac_mem_free(ac, dptr);
    }
    s.ac_finalize();
    slot.put(rows);
  });

  bench::print_title(
      "Ablation A1: pipelined vs. per-chunk-acknowledged H2D transfers",
      "256 KiB chunks over the modeled interconnect; mean over " +
          std::to_string(bench::trials()) + " trials");
  bench::print_columns(
      {"size[MiB]", "pipelined[s]", "per-ack[s]", "speedup"});

  const auto id = cluster.submit_program("pipeline", 1, 1);
  auto rows = slot.take(std::chrono::milliseconds(300'000));
  if (!rows || !cluster.wait_job(id, std::chrono::milliseconds(60'000))) {
    std::fprintf(stderr, "pipeline benchmark failed\n");
    return 1;
  }
  for (const auto& r : *rows) {
    bench::print_row({std::to_string(r.mib), bench::cell(r.pipelined_s),
                      bench::cell(r.acked_s),
                      bench::cell(r.acked_s / r.pipelined_s)});
  }
  std::printf("\nExpected shape: pipelining hides the per-chunk round trip;"
              " speedup grows with transfer size toward latency/wire"
              " ratio.\n");
  return 0;
}
