// Figure 9: three compute nodes (A, B, C) from three distinct jobs send one
// dynamic request each at the same time. The server/scheduler pair services
// dynamic requests serially, so the completion times step up: C > B > A.
// As in the paper the reported time excludes the MPI operations.
#include <atomic>
#include <cstdio>

#include "simtime/clock.hpp"
#include "bench/harness.hpp"
#include "core/cluster.hpp"

using namespace dac;

namespace {
struct Measurement {
  double batch_s = 0.0;
  bool granted = false;
};
}  // namespace

int main() {
  // 8 nodes: 1 head + 3 compute + 4 accelerators.
  core::DacCluster cluster(core::DacClusterConfig::paper_testbed(3, 4));

  bench::Gate* gate = nullptr;
  std::atomic<int>* ready = nullptr;
  bench::Slot<std::vector<double>>* out = nullptr;
  Mutex results_mu{"bench.results"};
  std::vector<double> results;

  cluster.register_program("fig9", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    ready->fetch_add(1);
    gate->wait();
    auto got = s.ac_get(1);
    if (got.granted) s.ac_free(got.client_id);
    s.ac_finalize();
    ScopedLock lock(results_mu);
    results.push_back(got.granted ? got.batch_s : -1.0);
    if (results.size() == 3) out->put(results);
  });

  const int n_trials = bench::trials();
  bench::print_title(
      "Figure 9: Three concurrent dynamic requests (compute nodes A, B, C)",
      "per-request dynamic allocation time, MPI operations excluded; mean "
      "over " + std::to_string(n_trials) + " trials");
  bench::print_columns({"compute-node", "dyn-alloc[s]"});

  util::Samples a;
  util::Samples b;
  util::Samples c;
  for (int t = 0; t < n_trials; ++t) {
    bench::Gate g;
    std::atomic<int> r{0};
    bench::Slot<std::vector<double>> slot;
    gate = &g;
    ready = &r;
    out = &slot;
    {
      ScopedLock lock(results_mu);
      results.clear();
    }

    std::vector<torque::JobId> ids;
    for (int i = 0; i < 3; ++i) {
      ids.push_back(cluster.submit_program("fig9", 1, 0));
    }
    while (r.load() < 3) {
      dac::simtime::sleep_for(std::chrono::milliseconds(1));
    }
    g.open();

    auto times = slot.take(std::chrono::milliseconds(120'000));
    if (!times || times->size() != 3) {
      std::fprintf(stderr, "trial %d failed\n", t);
      return 1;
    }
    for (const auto id : ids) {
      if (!cluster.wait_job(id, std::chrono::milliseconds(60'000))) {
        std::fprintf(stderr, "job %llu did not complete\n",
                     static_cast<unsigned long long>(id));
        return 1;
      }
    }
    for (const double v : *times) {
      if (v < 0.0) {
        std::fprintf(stderr, "a dynamic request was rejected\n");
        return 1;
      }
    }
    std::sort(times->begin(), times->end());
    a.add((*times)[0]);
    b.add((*times)[1]);
    c.add((*times)[2]);
  }

  bench::print_row({"A", bench::cell(a.mean(), a.stddev())});
  bench::print_row({"B", bench::cell(b.mean(), b.stddev())});
  bench::print_row({"C", bench::cell(c.mean(), c.stddev())});
  std::printf(
      "\nExpected shape (paper): serial processing of dynamic requests =>"
      " C > B > A in roughly equal steps.\n");
  return 0;
}
