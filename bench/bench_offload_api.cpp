// Ablation A6: cost of the offload computation API — the per-call round-trip
// latency of the control operations and the achieved H2D/D2H throughput
// through the pipelined protocol, measured end to end through the deployed
// batch system (job -> merged communicator -> remote daemon -> simulated
// device).
#include <cstdio>

#include "bench/harness.hpp"
#include "core/cluster.hpp"
#include "util/clock.hpp"

using namespace dac;

namespace {
struct Report {
  double alloc_us = 0.0;
  double kernel_us = 0.0;
  double h2d_mib_s = 0.0;
  double d2h_mib_s = 0.0;
};
}  // namespace

int main() {
  auto config = core::DacClusterConfig::paper_testbed(1, 1);
  core::DacCluster cluster(config);

  bench::Slot<Report> slot;
  cluster.register_program("offload_api", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    const auto ac = s.ac_init().at(0);
    const int reps = 50;
    Report rep;

    {
      util::Stopwatch w;
      for (int i = 0; i < reps; ++i) {
        const auto p = s.ac_mem_alloc(ac, 4096);
        s.ac_mem_free(ac, p);
      }
      rep.alloc_us = w.elapsed_seconds() / (2.0 * reps) * 1e6;
    }
    {
      const auto k = s.ac_kernel_create(ac, "fill");
      const auto dptr = s.ac_mem_alloc(ac, 1024 * sizeof(double));
      util::ByteWriter args;
      args.put<std::uint64_t>(dptr);
      args.put<double>(1.0);
      args.put<std::uint64_t>(1024);
      s.ac_kernel_set_args(ac, k, std::move(args).take());
      util::Stopwatch w;
      for (int i = 0; i < reps; ++i) {
        s.ac_kernel_run(ac, k, {1, 1, 1}, {1024, 1, 1});
      }
      rep.kernel_us = w.elapsed_seconds() / reps * 1e6;
      s.ac_mem_free(ac, dptr);
    }
    {
      const std::size_t bytes = 16u << 20;
      util::Bytes host(bytes);
      const auto dptr = s.ac_mem_alloc(ac, bytes);
      util::Stopwatch w;
      s.ac_memcpy_h2d(ac, dptr, host);
      rep.h2d_mib_s = 16.0 / w.lap_seconds();
      (void)s.ac_memcpy_d2h(ac, dptr, bytes);
      rep.d2h_mib_s = 16.0 / w.lap_seconds();
      s.ac_mem_free(ac, dptr);
    }
    s.ac_finalize();
    slot.put(rep);
  });

  const auto id = cluster.submit_program("offload_api", 1, 1);
  auto rep = slot.take(std::chrono::milliseconds(300'000));
  if (!rep || !cluster.wait_job(id, std::chrono::milliseconds(60'000))) {
    std::fprintf(stderr, "offload api benchmark failed\n");
    return 1;
  }

  bench::print_title(
      "Ablation A6: offload computation API costs",
      "through the full stack (job -> MPI -> daemon -> simulated device)");
  bench::print_columns({"metric", "value"});
  bench::print_row({"alloc/free RTT", bench::cell(rep->alloc_us) + " us"});
  bench::print_row({"kernel launch RTT", bench::cell(rep->kernel_us) + " us"});
  bench::print_row({"H2D throughput", bench::cell(rep->h2d_mib_s) + " MiB/s"});
  bench::print_row({"D2H throughput", bench::cell(rep->d2h_mib_s) + " MiB/s"});
  std::printf(
      "\nExpected shape: control RTTs ~= 2x network latency; transfer"
      " throughput approaches the modeled link bandwidth.\n");
  return 0;
}
