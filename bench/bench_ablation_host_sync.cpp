// Ablation A9: host-synchronized vs. daemon-autonomous iteration. The
// paper's architectural argument for network-attached accelerators (§I) is
// that "MPI kernels can run for an extended period of time without
// involving the host", hiding the host<->accelerator bandwidth/latency
// penalty. This measures a distributed Jacobi run two ways:
//
//   autonomous   one dispatch; the daemons iterate and exchange halos among
//                themselves, the host only collects the final state;
//   host-synced  the host dispatches every iteration (one round trip to
//                every daemon per step), as a node-attached design with
//                host-orchestrated exchanges would.
//
// Expected: the host-synced run pays ~2x network latency x iterations; the
// autonomous run pays daemon-to-daemon halo latency only.
#include <cstdio>

#include "bench/harness.hpp"
#include "core/cluster.hpp"
#include "dacc/frontend.hpp"
#include "util/clock.hpp"

using namespace dac;

namespace {
struct Result {
  double autonomous_s = 0.0;
  double host_synced_s = 0.0;
};
}  // namespace

int main() {
  core::DacCluster cluster(core::DacClusterConfig::paper_testbed(1, 4));

  constexpr std::uint64_t kSlab = 512;
  constexpr std::uint32_t kIters = 200;
  constexpr int kDaemons = 4;

  bench::Slot<Result> slot;
  cluster.register_program("hostsync", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    auto handles = s.ac_init();
    const auto& comm = s.current_comm();

    std::vector<gpusim::DevicePtr> fields;
    std::vector<double> init(kSlab, 1.0);
    for (const auto ac : handles) {
      const auto ptr = s.ac_mem_alloc(ac, kSlab * sizeof(double));
      s.ac_memcpy_h2d(ac, ptr, std::as_bytes(std::span(init)));
      fields.push_back(ptr);
    }

    Result r;
    const int n_trials = bench::trials();
    util::Samples autonomous;
    util::Samples host_synced;
    for (int t = 0; t < n_trials; ++t) {
      util::Stopwatch w;
      dacc::frontend::stencil_run(ctx.mpi(), comm, 1, fields, kSlab, kIters,
                                  0.0, 0.0);
      autonomous.add(w.lap_seconds());

      w.reset();
      for (std::uint32_t i = 0; i < kIters; ++i) {
        // One dispatch + completion round trip per iteration: the host in
        // the loop.
        dacc::frontend::stencil_run(ctx.mpi(), comm, 1, fields, kSlab, 1,
                                    0.0, 0.0);
      }
      host_synced.add(w.lap_seconds());
    }
    r.autonomous_s = autonomous.mean();
    r.host_synced_s = host_synced.mean();
    s.ac_finalize();
    slot.put(r);
  });

  const auto id = cluster.submit_program("hostsync", 1, kDaemons);
  auto r = slot.take(std::chrono::milliseconds(600'000));
  if (!r || !cluster.wait_job(id, std::chrono::milliseconds(60'000))) {
    std::fprintf(stderr, "benchmark failed\n");
    return 1;
  }

  bench::print_title(
      "Ablation A9: daemon-autonomous vs. host-synchronized iteration",
      std::to_string(kIters) + " Jacobi iterations across " +
          std::to_string(kDaemons) + " accelerators; mean over " +
          std::to_string(bench::trials()) + " trials");
  bench::print_columns({"mode", "total[s]", "per-iter[ms]"});
  bench::print_row({"autonomous", bench::cell(r->autonomous_s),
                    bench::cell(r->autonomous_s / kIters * 1e3)});
  bench::print_row({"host-synced", bench::cell(r->host_synced_s),
                    bench::cell(r->host_synced_s / kIters * 1e3)});
  bench::print_row({"speedup",
                    bench::cell(r->host_synced_s / r->autonomous_s), ""});
  std::printf(
      "\nExpected shape: keeping the host out of the loop removes a"
      " dispatch+completion round trip per iteration — the paper's case"
      " for autonomously communicating network-attached accelerators.\n");
  return 0;
}
