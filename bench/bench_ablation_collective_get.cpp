// Ablation A2: individual vs. collective AC_Get from a multi-compute-node
// job (paper §III-D). Individually, the server services one dynamic request
// per job at a time, so the k compute nodes serialize; collectively, rank 0
// aggregates the counts into one request. Expected: the collective call
// completes in roughly the time of one request; individual requests stack.
#include <cstdio>

#include "bench/harness.hpp"
#include "core/cluster.hpp"
#include "util/clock.hpp"

using namespace dac;

int main() {
  // 2 compute nodes, each requesting 2 accelerators (4 accelerator nodes).
  core::DacCluster cluster(core::DacClusterConfig::paper_testbed(2, 4));

  bench::Slot<double>* out = nullptr;

  cluster.register_program("individual", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    ctx.mpi().barrier(ctx.world());
    util::Stopwatch w;
    auto got = s.ac_get(2);  // both compute nodes request concurrently
    const double t = w.lap_seconds();
    const double slowest =
        ctx.mpi().allreduce(ctx.world(), t, minimpi::ReduceOp::kMax);
    if (got.granted) s.ac_free(got.client_id);
    s.ac_finalize();
    if (ctx.rank() == 0) out->put(got.granted ? slowest : -1.0);
  });

  cluster.register_program("collective", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    ctx.mpi().barrier(ctx.world());
    util::Stopwatch w;
    auto got = s.ac_get_collective(ctx.world(), 2);
    const double t = w.lap_seconds();
    const double slowest =
        ctx.mpi().allreduce(ctx.world(), t, minimpi::ReduceOp::kMax);
    if (got.granted) s.ac_free_collective(ctx.world(), got.client_id);
    s.ac_finalize();
    if (ctx.rank() == 0) out->put(got.granted ? slowest : -1.0);
  });

  const int n_trials = bench::trials();
  bench::print_title(
      "Ablation A2: individual vs. collective AC_Get (2 CNs x 2 accelerators)",
      "time until the slowest compute node holds its accelerators; mean "
      "over " + std::to_string(n_trials) + " trials");
  bench::print_columns({"mode", "slowest-CN[s]"});

  for (const std::string mode : {"individual", "collective"}) {
    util::Samples samples;
    for (int t = 0; t < n_trials; ++t) {
      bench::Slot<double> slot;
      out = &slot;
      const auto id = cluster.submit_program(mode, 2, 0);
      auto v = slot.take(std::chrono::milliseconds(120'000));
      if (!v || *v < 0.0 ||
          !cluster.wait_job(id, std::chrono::milliseconds(60'000))) {
        std::fprintf(stderr, "%s trial failed\n", mode.c_str());
        return 1;
      }
      samples.add(*v);
    }
    bench::print_row({mode, bench::cell(samples.mean(), samples.stddev())});
  }
  std::printf(
      "\nExpected shape: individual requests serialize at the server"
      " (slowest CN waits ~2x one request); the collective call needs one"
      " request, at the cost of all-or-nothing semantics.\n");
  return 0;
}
