// Ablation A8: the prototypical standalone ARM of §II vs. the
// batch-integrated allocation of §III. The ARM grants immediately from its
// pool (no queue, no scheduler, no job association); pbs_dynget pays the
// scheduling machinery. This quantifies what the batch-system integration
// costs — and the readme of what it buys (job association, policies,
// fairness, accounting) is the paper's §III.
#include <atomic>
#include <cstdio>

#include "arm/arm.hpp"
#include "bench/harness.hpp"
#include "core/cluster.hpp"
#include "util/clock.hpp"

using namespace dac;

namespace {

double measure_arm(int count, int n_trials) {
  vnet::ClusterTopology topo;
  topo.node_count = 8;
  topo.network.latency = std::chrono::microseconds(200);
  topo.process_start_delay = std::chrono::microseconds(0);
  vnet::Cluster cluster(topo);
  std::vector<arm::PrototypeArm::PoolEntry> pool;
  for (vnet::NodeId id = 2; id <= 7; ++id) {
    pool.push_back({id, "ac" + std::to_string(id - 2)});
  }
  arm::PrototypeArm service(cluster.node(0), std::move(pool));
  auto proc = cluster.node(0).spawn(
      {.name = "arm"}, [&](vnet::Process& p) { service.run(p); });

  arm::ArmClient client(cluster.node(1), service.address());
  util::Samples samples;
  for (int t = 0; t < n_trials; ++t) {
    util::Stopwatch w;
    auto a = client.alloc(count);
    samples.add(w.lap_seconds());
    if (a.granted) client.free_set(a.set_id);
  }
  proc->request_stop();
  proc->join();
  return samples.mean();
}

double measure_batch(int count, int n_trials) {
  core::DacCluster cluster(core::DacClusterConfig::paper_testbed(1, 6));
  bench::Slot<double> slot;
  cluster.register_program("a8", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    util::ByteReader r(ctx.info().program_args);
    const auto y = r.get<std::int32_t>();
    auto got = s.ac_get(y);
    const double t = got.batch_s;  // allocation only, excluding MPI
    if (got.granted) s.ac_free(got.client_id);
    s.ac_finalize();
    slot.put(got.granted ? t : -1.0);
  });

  util::Samples samples;
  for (int t = 0; t < n_trials; ++t) {
    util::ByteWriter args;
    args.put<std::int32_t>(count);
    const auto id = cluster.submit_program("a8", 1, 0,
                                           std::move(args).take());
    auto v = slot.take(std::chrono::milliseconds(120'000));
    if (!v || *v < 0.0 ||
        !cluster.wait_job(id, std::chrono::milliseconds(60'000))) {
      std::fprintf(stderr, "batch trial failed\n");
      std::exit(1);
    }
    samples.add(*v);
  }
  return samples.mean();
}

}  // namespace

int main() {
  const int n_trials = bench::trials();
  bench::print_title(
      "Ablation A8: standalone prototype ARM vs. batch-integrated dynget",
      "allocation latency for y accelerators, idle system; mean over " +
          std::to_string(n_trials) + " trials");
  bench::print_columns({"accelerators", "arm[s]", "batch(dynget)[s]"});
  for (const int y : {1, 3, 6}) {
    const double arm_s = measure_arm(y, n_trials);
    const double batch_s = measure_batch(y, n_trials);
    bench::print_row({std::to_string(y), bench::cell(arm_s),
                      bench::cell(batch_s)});
  }
  std::printf(
      "\nExpected shape: the ARM answers in ~one round trip; the batch"
      " system adds queueing + scheduling cost, buying job association,"
      " policy control and accounting (paper §III).\n");
  return 0;
}
