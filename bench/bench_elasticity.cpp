// Elasticity at scale: what scheduler-initiated reclaim buys on a 1,000-node
// virtual cluster (ROADMAP item 5's perf trajectory, first installment).
//
// Setup: a 1,000-node cluster (1 head + compute front-ends + a 64-deep
// network-attached accelerator pool, the scarce resource). Hog jobs grab
// the whole AC pool and sit on it idle — the paper's motivating waste (§I).
// A stream of requester jobs then each wants one accelerator for a short
// burst of real work. Two runs:
//
//   without elasticity  no policy installed: every starved dynget is
//                       rejected, the pool stays hoarded, useful
//                       utilization ~0;
//   with elasticity     ShrinkUnderPressure negotiates hog sets back one
//                       offer at a time; starved dyngets defer, get served
//                       from reclaimed capacity, and freed slots recycle to
//                       the rest of the stream.
//
// Reported to BENCH_elasticity.json: requester-observed grant latency
// p50/p99 (the reclaim path IS the slow tail), grant counts, and the
// useful-work share of the accelerator pool for both runs. Runs on the
// DiscreteEvent clock, so the 1k-node cluster costs seconds of wall time.
//
//   ./bench_elasticity [nodes] [requesters]   (defaults: 1000 256)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "elastic/agent.hpp"
#include "elastic/policy.hpp"
#include "simtime/clock.hpp"
#include "util/clock.hpp"
#include "util/stats.hpp"
#include "util/sync.hpp"

using namespace dac;
using namespace std::chrono_literals;

namespace {

constexpr int kHogs = 16;
constexpr auto kWorkBurst = std::chrono::milliseconds(10);

struct RunResult {
  std::size_t requesters = 0;
  std::size_t granted = 0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double useful_ac_seconds = 0.0;
  double phase_seconds = 0.0;  // virtual time, submit -> last completion
  double pool_utilization = 0.0;
};

RunResult run(bool elastic_on, std::size_t nodes, std::size_t requesters) {
  core::DacClusterConfig cfg = core::DacClusterConfig::fast();
  // The paper's setting: accelerators are the scarce, contended resource.
  // Cap the AC pool at 64 and make the rest compute front-ends — idle moms
  // cost nothing in virtual time, but every *held* AC runs a live acd
  // daemon, so a fully-hoarded 900-AC pool would be a thread benchmark,
  // not a scheduling one.
  cfg.accel_nodes = std::min<std::size_t>(64, std::max<std::size_t>(
                                                  kHogs, (nodes - 1) / 2));
  cfg.compute_nodes = nodes - 1 - cfg.accel_nodes;
  // 1,000 moms at the 25 ms test cadence would drown the event stream.
  cfg.timing.mom_heartbeat_interval = std::chrono::milliseconds(1000);
  if (elastic_on) {
    cfg.elastic_policy = std::make_shared<elastic::ShrinkUnderPressurePolicy>(
        elastic::ShrinkUnderPressurePolicy::Config{.queue_threshold = 1,
                                                   .min_wait_s = 0.0});
  }
  core::DacCluster cluster(cfg);

  std::atomic<bool> done{false};
  Mutex mu{"bench.elasticity"};
  util::Samples latency_ms;
  double useful_ac_seconds = 0.0;

  // Hog: grabs its share of the pool and idles on it. With elasticity it
  // registers shrinkable and hands sets back as the broker reclaims them;
  // without, it holds everything until the stream is over.
  cluster.register_program("hog", [&](core::JobContext& ctx) {
    util::ByteReader r(ctx.info().program_args);
    const auto sets = r.get<std::int32_t>();
    auto& ses = ctx.session();
    (void)ses.ac_init();
    std::vector<std::uint64_t> held;
    for (std::int32_t i = 0; i < sets; ++i) {
      auto got = ses.ac_get(1);
      if (got.granted) held.push_back(got.client_id);
    }
    if (elastic_on) {
      auto ecfg = ctx.elastic_config();
      ecfg.accept_shrink = true;
      elastic::ElasticAgent agent(ctx.mpi().process(), ecfg);
      agent.on_shrink([&](const elastic::Reconfig& rc) {
        ses.ac_detach(rc.client_id);
        if (!held.empty() && held.back() == rc.client_id) held.pop_back();
      });
      agent.announce();
      while (!done.load()) (void)agent.service(5ms);
      const auto grace = simtime::now() + 200ms;
      while (simtime::now() < grace) (void)agent.service(5ms);
      agent.stop();
    } else {
      while (!done.load()) core::interruptible_sleep(ctx, 25ms);
    }
    while (!held.empty()) {
      ses.ac_free(held.back());
      held.pop_back();
    }
    ses.ac_finalize();
  });

  // Requester: one accelerator for one short burst of work. Its observed
  // grant latency is the reclaim latency when the pool is hoarded.
  cluster.register_program("requester", [&](core::JobContext& ctx) {
    auto& ses = ctx.session();
    (void)ses.ac_init();
    const auto t0 = simtime::now();
    auto got = ses.ac_get(1);
    if (got.granted) {
      const double waited_ms =
          std::chrono::duration<double, std::milli>(simtime::now() - t0)
              .count();
      core::interruptible_sleep(ctx, kWorkBurst);  // the useful work
      ses.ac_free(got.client_id);
      ScopedLock lock(mu);
      latency_ms.add(waited_ms);
      useful_ac_seconds +=
          std::chrono::duration<double>(kWorkBurst).count();
    }
    ses.ac_finalize();
  });

  // Hogs cover the pool exactly — any slot left free would serve requests
  // without pressure and hide the negotiation path.
  const auto pool = static_cast<std::int32_t>(cfg.accel_nodes);
  std::vector<torque::JobId> hog_ids;
  for (int i = 0; i < kHogs; ++i) {
    const std::int32_t share =
        pool / kHogs + (i < pool % kHogs ? 1 : 0);
    util::ByteWriter w;
    w.put<std::int32_t>(share);
    hog_ids.push_back(
        cluster.submit_program("hog", 1, 0, std::move(w).take()));
  }
  // Wait until the pool is fully hoarded before opening the stream.
  while (true) {
    int used = 0;
    for (const auto& n : cluster.client().stat_nodes()) {
      if (n.kind == torque::NodeKind::kAccelerator) used += n.used;
    }
    if (used >= pool) break;
    simtime::sleep_for(25ms);
  }

  const auto phase0 = simtime::now();
  const std::size_t wave = 16;
  std::size_t submitted = 0;
  while (submitted < requesters) {
    std::vector<torque::JobId> ids;
    const std::size_t batch = std::min(wave, requesters - submitted);
    for (std::size_t i = 0; i < batch; ++i, ++submitted) {
      ids.push_back(cluster.submit_program("requester", 1, 0));
    }
    for (const auto id : ids) {
      if (!cluster.wait_job(id, std::chrono::milliseconds(120'000))) {
        std::fprintf(stderr, "requester did not complete\n");
        std::exit(1);
      }
    }
  }
  const auto phase1 = simtime::now();
  done = true;
  for (const auto id : hog_ids) {
    if (!cluster.wait_job(id, std::chrono::milliseconds(120'000))) {
      std::fprintf(stderr, "hog did not complete\n");
      std::exit(1);
    }
  }

  RunResult res;
  res.requesters = requesters;
  res.phase_seconds = util::to_seconds(phase1 - phase0);
  {
    ScopedLock lock(mu);
    res.granted = latency_ms.count();
    res.useful_ac_seconds = useful_ac_seconds;
    if (latency_ms.count() > 0) {
      res.latency_p50_ms = latency_ms.percentile(50.0);
      res.latency_p99_ms = latency_ms.percentile(99.0);
    }
  }
  res.pool_utilization =
      res.phase_seconds > 0.0
          ? res.useful_ac_seconds /
                (static_cast<double>(cfg.accel_nodes) * res.phase_seconds)
          : 0.0;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  // 1k nodes is only affordable in virtual time: force DiscreteEvent.
  simtime::Clock::instance().set_mode(simtime::Mode::kDiscreteEvent);

  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1000;
  const std::size_t requesters =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 256;

  std::printf("bench_elasticity: %zu nodes, %d hogs hoarding the pool, "
              "%zu requesters\n",
              nodes, kHogs, requesters);

  const auto wall0 = std::chrono::steady_clock::now();  // NOLINT-DACSCHED(raw-clock)
  const RunResult off = run(/*elastic_on=*/false, nodes, requesters);
  const RunResult on = run(/*elastic_on=*/true, nodes, requesters);
  const auto wall1 = std::chrono::steady_clock::now();  // NOLINT-DACSCHED(raw-clock)

  std::FILE* out = std::fopen("BENCH_elasticity.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n"
        "  \"nodes\": %zu,\n"
        "  \"requesters\": %zu,\n"
        "  \"without_elasticity\": {\n"
        "    \"granted\": %zu,\n"
        "    \"pool_utilization\": %.6f,\n"
        "    \"phase_seconds\": %.3f\n"
        "  },\n"
        "  \"with_elasticity\": {\n"
        "    \"granted\": %zu,\n"
        "    \"reclaim_latency_p50_ms\": %.3f,\n"
        "    \"reclaim_latency_p99_ms\": %.3f,\n"
        "    \"pool_utilization\": %.6f,\n"
        "    \"phase_seconds\": %.3f\n"
        "  },\n"
        "  \"wall_seconds\": %.3f\n"
        "}\n",
        nodes, requesters, off.granted, off.pool_utilization,
        off.phase_seconds, on.granted, on.latency_p50_ms, on.latency_p99_ms,
        on.pool_utilization, on.phase_seconds,
        util::to_seconds(wall1 - wall0));
    std::fclose(out);
  }

  std::printf(
      "without elasticity: %zu/%zu granted, useful utilization %.4f\n"
      "with elasticity:    %zu/%zu granted, useful utilization %.4f, "
      "reclaim latency p50 %.1f ms / p99 %.1f ms\n",
      off.granted, off.requesters, off.pool_utilization, on.granted,
      on.requesters, on.pool_utilization, on.latency_p50_ms,
      on.latency_p99_ms);
  // The bench's own acceptance: elasticity must actually serve the starved
  // stream the baseline rejects.
  return on.granted == requesters && on.granted > off.granted ? 0 : 1;
}
