// Scheduler-policy comparison on a replayed synthetic workload: the same
// 40-job trace (mixed widths, runtimes and owners, Poisson arrivals) is
// replayed under FIFO, priority and EASY backfill, reporting the schedule
// metrics Maui-class schedulers are judged by. Complements ablation A4's
// hand-wedged queue with a statistically generated mix.
#include <cstdio>
#include <thread>

#include "simtime/clock.hpp"
#include "bench/harness.hpp"
#include "core/cluster.hpp"
#include "util/clock.hpp"
#include "workload/workload.hpp"

using namespace dac;

namespace {

std::vector<workload::GeneratedJob> make_trace() {
  workload::WorkloadConfig wc;
  wc.seed = 20130701;  // deterministic: same trace for every policy
  wc.job_count = 40;
  wc.arrival_rate_hz = 120.0;

  workload::JobTemplate narrow;
  narrow.name = "narrow";
  narrow.nodes = 1;
  narrow.runtime = std::chrono::milliseconds(30);
  narrow.walltime = std::chrono::milliseconds(60);
  narrow.weight = 6.0;

  workload::JobTemplate wide;
  wide.name = "wide";
  wide.owner = "bob";
  wide.nodes = 3;
  wide.runtime = std::chrono::milliseconds(80);
  wide.walltime = std::chrono::milliseconds(140);
  wide.weight = 2.0;

  workload::JobTemplate full;
  full.name = "full";
  full.owner = "carol";
  full.nodes = 4;
  full.runtime = std::chrono::milliseconds(50);
  full.walltime = std::chrono::milliseconds(100);
  full.weight = 1.0;

  wc.mix = {narrow, wide, full};
  return workload::WorkloadGenerator(wc).generate();
}

workload::ScheduleMetrics run_policy(
    maui::Policy policy, const std::vector<workload::GeneratedJob>& trace) {
  auto config = core::DacClusterConfig::fast();
  config.compute_nodes = 4;
  config.accel_nodes = 1;
  config.policy = policy;
  core::DacCluster cluster(config);

  auto client = cluster.client();
  std::vector<torque::JobId> ids;
  util::Stopwatch clock;
  for (const auto& j : trace) {
    const double lead = j.arrival_s - clock.elapsed_seconds();
    if (lead > 0) {
      dac::simtime::sleep_for(std::chrono::duration<double>(lead));
    }
    auto spec = workload::to_spec(j, core::kSleepProgram);
    spec.resources.ppn = 8;  // whole-node jobs
    ids.push_back(client.submit(spec));
  }
  for (const auto id : ids) {
    if (!cluster.wait_job(id, std::chrono::milliseconds(120'000))) {
      std::fprintf(stderr, "job %llu did not complete\n",
                   static_cast<unsigned long long>(id));
      std::exit(1);
    }
  }
  return workload::analyze(client.stat_jobs(), config.compute_nodes);
}

}  // namespace

int main() {
  const auto trace = make_trace();
  bench::print_title(
      "Workload replay: scheduling policies on one 40-job trace",
      "4 compute nodes; narrow/wide/full-width mix, Poisson arrivals");
  bench::print_columns(
      {"policy", "makespan[s]", "mean-wait[s]", "max-wait[s]", "util"});

  const std::vector<std::pair<std::string, maui::Policy>> policies = {
      {"fifo", maui::Policy::kFifo},
      {"priority", maui::Policy::kPriority},
      {"backfill", maui::Policy::kBackfill},
  };
  for (const auto& [name, policy] : policies) {
    const auto m = run_policy(policy, trace);
    bench::print_row({name, bench::cell(m.makespan_s),
                      bench::cell(m.mean_wait_s), bench::cell(m.max_wait_s),
                      bench::cell(m.node_utilization)});
  }
  std::printf(
      "\nExpected shape: FIFO head-of-line blocking inflates waits when a"
      " wide job wedges; priority reorders but can still idle nodes;"
      " backfill recovers utilization and cuts the mean wait.\n");
  return 0;
}
