// Seeded violation: nondeterministic RNG seeding.
#include <random>

unsigned fixture_seed() {
  std::random_device rd;  // line 5: nondet-seed
  return rd();
}
