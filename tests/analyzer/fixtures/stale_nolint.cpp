// Seeded violation: a suppression that suppresses nothing.
namespace fixture {
inline int harmless() { return 0; }  // NOLINT-DACSCHED(raw-sync) line 3
}  // namespace fixture
