// Mini handler registrations. Scanned as src/mini/server.cpp. kAlpha is
// registered twice (duplicate) and kOmega is not in the enum (unknown);
// kBeta is never registered; kGamma comes in through a helper lambda.
#include "mini_protocol.hpp"

namespace fixture {

void register_handlers(ServiceLoop& loop) {
  loop.on(MsgType::kAlpha, ExecClass::kMutating, handler);       // line 9
  loop.on(MsgType::kAlpha, ExecClass::kMutating, handler);       // line 10
  loop.on(MsgType::kOmega, ExecClass::kMutating, handler);       // line 11
  const auto reg = [&](MsgType type, Handler h) {
    loop.on(type, ExecClass::kReadOnly, h);
  };
  reg(MsgType::kGamma, handler);
}

}  // namespace fixture
