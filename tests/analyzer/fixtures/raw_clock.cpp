// Seeded violation: reading the ambient clock instead of simtime::now().
#include <chrono>

namespace {
void fixture_read_clock() {
  auto t = std::chrono::steady_clock::now();  // line 6
  (void)t;
}
}  // namespace
