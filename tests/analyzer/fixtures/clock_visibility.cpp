// Seeded violations: native synchronization reachable from an ActorThread
// entry. DACSCHED_CLOCK=virtual cannot see threads parked on a std::latch
// or a raw join, so the discrete-event advancer would declare quiescence
// and stall the sim. stop_good() shows the sanctioned escape hatch.
#include <latch>
#include <thread>

#include "simtime/clock.hpp"

namespace fixture {

void wait_native();

struct Pool {
  std::thread worker;

  void stop_bad() {
    worker.join();  // line 18: native join, no ExternalWaitScope
  }

  void stop_good() {
    dac::simtime::ExternalWaitScope scope;
    worker.join();  // clock-visible: the scope parks this thread as quiescent
  }
};

struct Runner {
  void drive() {
    dac::simtime::ActorThread actor([] { wait_native(); });
    actor.join();
    Pool pool;
    pool.stop_bad();
    pool.stop_good();
  }
};

void wait_native() {
  std::latch gate{1};  // line 38: invisible to the DE clock
  gate.wait();
}

}  // namespace fixture
