// A file every rule accepts: dac:: sync wrappers, joined threads, seeded
// RNG, named deadlines, side-effect-free checks.
#include <random>
#include <thread>

#include "svc/caller.hpp"
#include "svc/deadlines.hpp"
#include "util/check.hpp"
#include "util/sync.hpp"

namespace fixture {

struct Worker {
  dac::util::Mutex mu;
  int value = 0;

  int read() {
    dac::util::ScopedLock lock(mu);
    return value;
  }
};

inline unsigned roll(unsigned seed) {
  std::mt19937 rng(seed);
  return static_cast<unsigned>(rng());
}

inline void run(const dac::svc::Caller& caller, dac::util::Bytes body) {
  DAC_CHECK(!body.empty(), "body required");
  (void)caller.call(dac::svc::MsgType{}, std::move(body),
                    {.deadline = dac::svc::deadlines::kDefault});
  std::thread t([] {});
  t.join();
}

}  // namespace fixture
