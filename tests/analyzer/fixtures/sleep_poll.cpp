// Seeded violation: sleep_for polling (only flagged in test files).
#include <chrono>
#include <thread>

void fixture_poll() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // line 6
}
