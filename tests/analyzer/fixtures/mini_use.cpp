// Mini call sites for unchecked-status. Scanned as src/mini/use.cpp.
#include "mini_api.hpp"

namespace fixture {

void use() {
  do_thing(1);                            // line 7: result dropped
  (void)do_thing(2);                      // explicit opt-out: fine
  const Status s = do_other(3);           // checked: fine
  if (s == Status::kFail) do_other(4);    // not a statement start: fine
}

}  // namespace fixture
