// Seeded violation: a blocking RPC reachable through two calls while a dac
// guard is live — invisible to the scope-local rule, caught by the
// whole-program blocking-reachable-under-lock pass (the chain's lower hops
// live in blocking_reachable_lib.cpp to prove cross-file resolution).
#include "util/sync.hpp"

namespace fixture {

void relay_hop();

struct Gateway {
  dac::util::Mutex mu{"fixture.gateway"};

  void notify() {
    dac::util::ScopedLock lock(mu);
    relay_hop();  // line 16: transitively reaches Caller::call
  }

  void quiet() {
    { dac::util::ScopedLock lock(mu); }
    relay_hop();  // guard dead before the call: clean
  }
};

}  // namespace fixture
