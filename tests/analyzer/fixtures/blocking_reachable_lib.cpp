// Companion to blocking_reachable.cpp: the lower hops of the blocking
// chain. Neither function holds a lock, so the scope-local rule stays quiet
// here too — only the call-graph fixpoint connects the dots.
#include "svc/caller.hpp"
#include "svc/deadlines.hpp"

namespace fixture {

dac::svc::Caller* the_caller();

void transmit_rpc() {
  (void)the_caller()->call(dac::svc::MsgType{}, {},
                           {.deadline = dac::svc::deadlines::kDefault});
}

void relay_hop() { transmit_rpc(); }

}  // namespace fixture
