// Seeded violation: header without #pragma once (line 3 is the first
// meaningful line) and a parent-relative include.
#include "../somewhere/else.hpp"

namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture
