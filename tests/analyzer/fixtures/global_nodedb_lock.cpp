// Seeded violations: taking the whole-NodeDb guard outside node_db itself,
// via the lock_all() accessor and via the guard type spelled out.
struct NodeDb;

void fixture_take_global_lock(const NodeDb& db) {
  const auto all = db.lock_all();  // line 6
  (void)all;
}

void fixture_name_guard_type(const NodeDb& db) {
  const NodeDb::ExclusiveAll guard(db);  // line 11
}

void fixture_shard_api_is_clean(const NodeDb& db) {
  // Mentions of lock_all without a call (docs, identifiers like
  // lock_all_shards_counter) are not flagged.
  const int lock_all_count = 0;
  (void)lock_all_count;
  (void)db;
}
