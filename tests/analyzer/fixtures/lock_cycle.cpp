// Seeded violation: a 3-mutex static lock-order cycle (cycle.alpha ->
// cycle.beta -> cycle.gamma -> cycle.alpha). No execution ever takes all
// three paths, so the runtime lock-order detector never sees it; the static
// acquired-while-holding graph does.
#include "util/sync.hpp"

namespace fixture {

struct Tangle {
  dac::util::Mutex a{"cycle.alpha"};
  dac::util::Mutex b{"cycle.beta"};
  dac::util::Mutex c{"cycle.gamma"};

  void ab() {
    dac::util::ScopedLock la(a);
    dac::util::ScopedLock lb(b);  // line 16: cycle.alpha -> cycle.beta
  }

  void bc() {
    dac::util::ScopedLock lb(b);
    dac::util::ScopedLock lc(c);  // cycle.beta -> cycle.gamma
  }

  void ca() {
    dac::util::ScopedLock lc(c);
    dac::util::ScopedLock la(a);  // cycle.gamma -> cycle.alpha
  }
};

}  // namespace fixture
