// Seeded violation: a side-effecting expression inside a check macro.
#include "util/check.hpp"

void fixture_check(int items) {
  int seen = 0;
  DAC_CHECK(++seen <= items, "consumed too many");  // line 6
  DAC_CHECK(seen <= items, "fine: no side effect");
}
