// Mini span table. Scanned as src/svc/wire.cpp. kGamma has no case (span
// coverage hole) and kBeta reuses kAlpha's span name (uniqueness hole).
#include "mini_protocol.hpp"

namespace fixture {

const char* msg_type_name(unsigned type) {  // line 7: missing-span anchor
  switch (type) {
    case as_u32(MsgType::kAlpha): return "ALPHA";
    case as_u32(MsgType::kBeta): return "ALPHA";  // line 10: duplicate name
    case as_u32(MsgType::kEvSynthetic): return "EV_SYNTHETIC";
    case as_u32(MsgType::kReply): return "REPLY";
    default: return "?";
  }
}

}  // namespace fixture
