// Seeded violations: a Caller::call with no explicit deadline, and one with
// a bare chrono literal. Scanned with a non-test path (the rule is relaxed
// for tests).
#include "svc/caller.hpp"

namespace fixture {

void calls(const dac::svc::Caller& caller, dac::util::Bytes body) {
  (void)caller.call(dac::svc::MsgType{}, body);  // line 9: implicit default
  (void)caller.call(dac::svc::MsgType{}, body,  // diagnostic anchors here (10)
                    {.deadline = std::chrono::milliseconds(500)});
}

}  // namespace fixture
