// Mini wire enum for the cross-file rules. The test scans this with the
// path src/torque/protocol.hpp so it is picked up as the wire-enum source.
#pragma once

namespace fixture {

enum class MsgType : unsigned {
  kAlpha = 1,
  kBeta,       // line 9: no handler registered -> handler-coverage
  kGamma,
  kEvSynthetic,  // auto-exempt from handler coverage
  kReply,        // auto-exempt from handler coverage
};

}  // namespace fixture
