// Seeded violation: raw std sync primitive outside util/sync.hpp.
#include <mutex>

namespace fixture {
std::mutex g_lock;  // line 5: raw-sync
}  // namespace fixture
