// Seeded violation: detached thread.
#include <thread>

void fixture_detach() {
  std::thread worker([] {});
  worker.detach();  // line 6: detach
}
