// Seeded violation: a blocking RPC while a dac lock guard is live.
#include "svc/caller.hpp"
#include "svc/deadlines.hpp"
#include "util/sync.hpp"

namespace fixture {

struct Daemon {
  dac::util::Mutex mu;
  dac::svc::Caller* caller = nullptr;

  void bad(dac::util::Bytes body) {
    dac::util::ScopedLock lock(mu);
    (void)caller->call(dac::svc::MsgType{}, std::move(body),  // line 14
                       {.deadline = dac::svc::deadlines::kDefault});
  }

  void good(dac::util::Bytes body) {
    {
      dac::util::ScopedLock lock(mu);
    }
    (void)caller->call(dac::svc::MsgType{}, std::move(body),
                       {.deadline = dac::svc::deadlines::kDefault});
  }
};

}  // namespace fixture
