// Mini must-check API surface. Scanned as src/mini/api.hpp.
#pragma once

namespace fixture {

enum class Status { kOk, kFail };

Status do_thing(int arg);                 // line 8: missing [[nodiscard]]
[[nodiscard]] Status do_other(int arg);   // fine

}  // namespace fixture
