// Tests for the dacsched-analyzer rule engine: one seeded violation per rule
// from the fixture files, exact file/line/rule-id assertions, suppression
// accounting, the baseline comparator, CLI exit codes, and — the gate that
// matters — a clean run over the real repository tree.
//
// The fixture directory is excluded from the analyzer's own tree scan, so
// the seeded violations never leak into CI runs. Where a fixture needs a
// specific path scope (src/ vs tests/), the test remaps the path when
// building the SourceFile.
#include "analyzer/analyzer.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dac::analyzer {
namespace {

std::string fixture_text(const std::string& name) {
  const std::string path = std::string(DACSCHED_ANALYZER_FIXTURES) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

SourceFile fixture(const std::string& name, const std::string& as_path,
                   bool is_test = false) {
  return SourceFile{as_path, is_test, fixture_text(name)};
}

// The analyzer's suppression tag, assembled so this test file never trips
// the stale-nolint scan of the real tree.
std::string nolint(const std::string& rules) {
  return std::string("// NOLINT-DACSCHED") + "(" + rules + ")";
}

std::string diag_key(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ":" + rule_id(d.rule);
}

TEST(RuleTable, IdsRoundTrip) {
  for (const Rule rule : all_rules()) {
    Rule parsed{};
    ASSERT_TRUE(rule_from_id(rule_id(rule), &parsed)) << rule_id(rule);
    EXPECT_EQ(parsed, rule);
  }
  Rule out{};
  EXPECT_FALSE(rule_from_id("no-such-rule", &out));
}

TEST(PerFileRules, RawSync) {
  const auto report =
      analyze({fixture("raw_sync.cpp", "src/fixture/raw_sync.cpp")});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(diag_key(report.diagnostics[0]),
            "src/fixture/raw_sync.cpp:5:raw-sync");
}

TEST(PerFileRules, Detach) {
  const auto report = analyze({fixture("detach.cpp", "src/fixture/detach.cpp")});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(diag_key(report.diagnostics[0]), "src/fixture/detach.cpp:6:detach");
}

TEST(PerFileRules, SleepPollFlagsTestsOnly) {
  const auto in_test =
      analyze({fixture("sleep_poll.cpp", "tests/fixture/sleep_poll.cpp",
                       /*is_test=*/true)});
  ASSERT_EQ(in_test.diagnostics.size(), 1u);
  EXPECT_EQ(diag_key(in_test.diagnostics[0]),
            "tests/fixture/sleep_poll.cpp:6:sleep-poll");
  // The same content outside tests/ is not sleep-poll — there the raw-clock
  // rule owns the line: a production this_thread sleep bypasses the simtime
  // clock entirely, so DiscreteEvent mode would stall on it.
  const auto in_src =
      analyze({fixture("sleep_poll.cpp", "src/fixture/sleep_poll.cpp")});
  ASSERT_EQ(in_src.diagnostics.size(), 1u);
  EXPECT_EQ(diag_key(in_src.diagnostics[0]),
            "src/fixture/sleep_poll.cpp:6:raw-clock");
}

TEST(PerFileRules, RawClock) {
  // steady_clock::now() is flagged everywhere except src/simtime/ — in tests
  // too, because a test reading the real clock while the suite runs in
  // DiscreteEvent mode would compare wall time against virtual time.
  const auto in_src =
      analyze({fixture("raw_clock.cpp", "src/fixture/raw_clock.cpp")});
  ASSERT_EQ(in_src.diagnostics.size(), 1u);
  EXPECT_EQ(diag_key(in_src.diagnostics[0]),
            "src/fixture/raw_clock.cpp:6:raw-clock");
  const auto in_test = analyze(
      {fixture("raw_clock.cpp", "tests/fixture/raw_clock.cpp",
               /*is_test=*/true)});
  ASSERT_EQ(in_test.diagnostics.size(), 1u);
  EXPECT_EQ(diag_key(in_test.diagnostics[0]),
            "tests/fixture/raw_clock.cpp:6:raw-clock");
  // src/simtime/ is the one place allowed to touch the real clock (it is
  // the RealTime backend), so the same content there is clean.
  const auto in_simtime =
      analyze({fixture("raw_clock.cpp", "src/simtime/fixture.cpp")});
  EXPECT_TRUE(in_simtime.clean());
}

TEST(PerFileRules, GlobalNodeDbLock) {
  // Both spellings of the whole-DB guard are flagged: the lock_all() call
  // and the ExclusiveAll guard type. The identifier-with-suffix mention on
  // the fixture's last function is not.
  const auto report = analyze({fixture(
      "global_nodedb_lock.cpp", "src/fixture/global_nodedb_lock.cpp")});
  ASSERT_EQ(report.diagnostics.size(), 2u);
  EXPECT_EQ(diag_key(report.diagnostics[0]),
            "src/fixture/global_nodedb_lock.cpp:6:global-nodedb-lock");
  EXPECT_EQ(diag_key(report.diagnostics[1]),
            "src/fixture/global_nodedb_lock.cpp:11:global-nodedb-lock");
  // node_db itself owns the guard: the same content there is clean.
  const auto in_db =
      analyze({fixture("global_nodedb_lock.cpp", "src/torque/node_db.cpp")});
  EXPECT_TRUE(in_db.clean());
}

TEST(PerFileRules, NondetSeed) {
  const auto report =
      analyze({fixture("nondet_seed.cpp", "src/fixture/nondet_seed.cpp")});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(diag_key(report.diagnostics[0]),
            "src/fixture/nondet_seed.cpp:5:nondet-seed");
}

TEST(PerFileRules, IncludeHygiene) {
  const auto report =
      analyze({fixture("include_rule.hpp", "src/fixture/include_rule.hpp")});
  ASSERT_EQ(report.diagnostics.size(), 2u);  // missing pragma + "../" include
  EXPECT_EQ(diag_key(report.diagnostics[0]),
            "src/fixture/include_rule.hpp:3:include");
  EXPECT_EQ(diag_key(report.diagnostics[1]),
            "src/fixture/include_rule.hpp:3:include");
}

TEST(PerFileRules, BlockingUnderLock) {
  const auto report = analyze({fixture("blocking_under_lock.cpp",
                                       "src/fixture/blocking_under_lock.cpp")});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(diag_key(report.diagnostics[0]),
            "src/fixture/blocking_under_lock.cpp:14:blocking-under-lock");
}

TEST(PerFileRules, DeadlineLiteral) {
  const auto report = analyze(
      {fixture("deadline_literal.cpp", "src/fixture/deadline_literal.cpp")});
  ASSERT_EQ(report.diagnostics.size(), 2u);
  // Line 9: implicit default deadline. Line 10: the call whose options carry
  // a bare chrono literal (anchored at the call, not the literal's line).
  EXPECT_EQ(diag_key(report.diagnostics[0]),
            "src/fixture/deadline_literal.cpp:9:deadline-literal");
  EXPECT_EQ(diag_key(report.diagnostics[1]),
            "src/fixture/deadline_literal.cpp:10:deadline-literal");
  // Deadline discipline is relaxed for tests (they probe timeout edges).
  const auto as_test = analyze({fixture(
      "deadline_literal.cpp", "tests/fixture/deadline_literal.cpp", true)});
  EXPECT_TRUE(as_test.clean());
}

TEST(PerFileRules, CheckSideEffect) {
  const auto report = analyze(
      {fixture("check_side_effect.cpp", "src/fixture/check_side_effect.cpp")});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(diag_key(report.diagnostics[0]),
            "src/fixture/check_side_effect.cpp:6:check-side-effect");
}

TEST(PerFileRules, StaleNolint) {
  const auto report =
      analyze({fixture("stale_nolint.cpp", "src/fixture/stale_nolint.cpp")});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(diag_key(report.diagnostics[0]),
            "src/fixture/stale_nolint.cpp:3:stale-nolint");
  EXPECT_EQ(report.total_suppressions(), 0);
}

TEST(PerFileRules, CleanFilePasses) {
  const auto report = analyze({fixture("clean.cpp", "src/fixture/clean.cpp")});
  EXPECT_TRUE(report.clean()) << diag_key(report.diagnostics[0]);
  EXPECT_EQ(report.total_suppressions(), 0);
}

TEST(Suppression, NolintSilencesAndIsCounted) {
  SourceFile f;
  f.path = "src/fixture/suppressed.cpp";
  f.text = "#include <mutex>\nstd::mutex g;  " + nolint("raw-sync") + "\n";
  const auto report = analyze({f});
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.total_suppressions(), 1);
  EXPECT_EQ(report.suppressions.at("raw-sync"), 1);
}

TEST(Suppression, UnknownRuleIdIsAnError) {
  SourceFile f;
  f.path = "src/fixture/typo.cpp";
  f.text = "int x = 0;  " + nolint("raw-snyc") + "\n";
  const auto report = analyze({f});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule, Rule::kStaleNolint);
}

TEST(Suppression, CommaListSuppressesSeveralRules) {
  SourceFile f;
  f.path = "tests/fixture/multi.cpp";
  f.is_test = true;
  f.text = "#include <mutex>\n"
           "void f() { std::mutex m; sleep_for(x); "
           "}  " + nolint("raw-sync,sleep-poll") + "\n";
  const auto report = analyze({f});
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.total_suppressions(), 2);
}

TEST(CrossFileRules, HandlerCoverageAndSpanNames) {
  const auto report = analyze({
      fixture("mini_protocol.hpp", "src/torque/protocol.hpp"),
      fixture("mini_wire.cpp", "src/svc/wire.cpp"),
      fixture("mini_server.cpp", "src/mini/server.cpp"),
  });
  std::vector<std::string> keys;
  for (const auto& d : report.diagnostics) keys.push_back(diag_key(d));
  const std::vector<std::string> expected = {
      "src/mini/server.cpp:10:handler-coverage",   // duplicate kAlpha
      "src/mini/server.cpp:11:handler-coverage",   // unknown kOmega
      "src/svc/wire.cpp:7:span-name",              // kGamma has no span
      "src/svc/wire.cpp:10:span-name",             // duplicate span "ALPHA"
      "src/torque/protocol.hpp:9:handler-coverage" // kBeta unhandled
  };
  EXPECT_EQ(keys, expected);
}

TEST(CrossFileRules, NodiscardAndUncheckedStatus) {
  const auto report = analyze({
      fixture("mini_api.hpp", "src/mini/api.hpp"),
      fixture("mini_use.cpp", "src/mini/use.cpp"),
  });
  std::vector<std::string> keys;
  for (const auto& d : report.diagnostics) keys.push_back(diag_key(d));
  const std::vector<std::string> expected = {
      "src/mini/api.hpp:8:nodiscard",
      "src/mini/use.cpp:7:unchecked-status",
  };
  EXPECT_EQ(keys, expected);
}

TEST(CrossFileRules, AmbiguousNamesLeaveCallSitesAlone) {
  // A second declaration of do_thing returning void makes name-based
  // call-site matching unsafe; the bare call must not be flagged, while the
  // nodiscard hole on the Status-returning declaration still is.
  SourceFile other;
  other.path = "src/mini/other.hpp";
  other.text = "#pragma once\nvoid do_thing(double arg);\n";
  const auto report = analyze({
      fixture("mini_api.hpp", "src/mini/api.hpp"),
      fixture("mini_use.cpp", "src/mini/use.cpp"),
      other,
  });
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(diag_key(report.diagnostics[0]), "src/mini/api.hpp:8:nodiscard");
}

TEST(Baseline, FormatParseRoundTrip) {
  const std::map<std::string, int> counts = {{"raw-sync", 3},
                                             {"sleep-poll", 7}};
  EXPECT_EQ(parse_baseline(format_baseline(counts)), counts);
}

TEST(Baseline, DriftIsReportedBothWays) {
  const std::map<std::string, int> base = {{"raw-sync", 3}, {"detach", 1}};
  EXPECT_TRUE(compare_baseline(base, base).empty());
  // Growth: a new suppression appeared.
  auto grown = base;
  grown["raw-sync"] = 4;
  EXPECT_EQ(compare_baseline(base, grown).size(), 1u);
  // Shrink (including to zero): the baseline is stale.
  const std::map<std::string, int> shrunk = {{"raw-sync", 3}};
  EXPECT_EQ(compare_baseline(base, shrunk).size(), 1u);
}

TEST(Cli, ExitCodesAndExplicitFiles) {
  const std::string bad =
      std::string(DACSCHED_ANALYZER_FIXTURES) + "/raw_sync.cpp";
  const std::string good =
      std::string(DACSCHED_ANALYZER_FIXTURES) + "/clean.cpp";
  {
    const char* argv[] = {"dacsched-analyzer", bad.c_str()};
    EXPECT_EQ(run_cli(2, argv), 1);
  }
  {
    const char* argv[] = {"dacsched-analyzer", good.c_str()};
    EXPECT_EQ(run_cli(2, argv), 0);
  }
  {
    const char* argv[] = {"dacsched-analyzer", "/no/such/file.cpp"};
    EXPECT_EQ(run_cli(2, argv), 2);
  }
  {
    const char* argv[] = {"dacsched-analyzer", "--bogus-flag"};
    EXPECT_EQ(run_cli(2, argv), 2);
  }
}

// ---- whole-program rules ---------------------------------------------------

TEST(WholeProgram, BlockingReachableTwoCallsDeepAcrossFiles) {
  // notify() holds a guard and calls relay_hop() -> transmit_rpc() ->
  // Caller::call, with the lower hops in a second file. The scope-local rule
  // sees nothing; the call-graph fixpoint reports the call site.
  const auto report = analyze(
      {fixture("blocking_reachable.cpp", "src/fixture/blocking_reachable.cpp"),
       fixture("blocking_reachable_lib.cpp",
               "src/fixture/blocking_reachable_lib.cpp")});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(diag_key(report.diagnostics[0]),
            "src/fixture/blocking_reachable.cpp:16:"
            "blocking-reachable-under-lock");
  // The diagnostic carries the full witness chain.
  EXPECT_NE(report.diagnostics[0].message.find(
                "relay_hop -> transmit_rpc -> Caller::call"),
            std::string::npos)
      << report.diagnostics[0].message;
  // Without the companion file the callee never resolves, and an unresolved
  // call contributes nothing (precision-first resolution).
  const auto alone = analyze({fixture("blocking_reachable.cpp",
                                      "src/fixture/blocking_reachable.cpp")});
  EXPECT_TRUE(alone.clean());
}

TEST(WholeProgram, BlockingReachableSuppressionAnchorsAtCallSite) {
  SourceFile caller =
      fixture("blocking_reachable.cpp", "src/fixture/blocking_reachable.cpp");
  const auto pos = caller.text.find("relay_hop();  // line 16");
  ASSERT_NE(pos, std::string::npos);
  caller.text.replace(pos, std::string("relay_hop();").size(),
                      "relay_hop();  " +
                          nolint("blocking-reachable-under-lock"));
  const auto report = analyze(
      {caller, fixture("blocking_reachable_lib.cpp",
                       "src/fixture/blocking_reachable_lib.cpp")});
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressions.at("blocking-reachable-under-lock"), 1);
}

TEST(WholeProgram, LockOrderStaticThreeMutexCycle) {
  const auto report =
      analyze({fixture("lock_cycle.cpp", "src/fixture/lock_cycle.cpp")});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  // One diagnostic per cycle, anchored at its lexically smallest edge.
  EXPECT_EQ(diag_key(report.diagnostics[0]),
            "src/fixture/lock_cycle.cpp:16:lock-order-static");
  EXPECT_NE(report.diagnostics[0].message.find(
                "{cycle.alpha, cycle.beta, cycle.gamma}"),
            std::string::npos)
      << report.diagnostics[0].message;
  // All three edges are exported for the DOT artifact, all cycle-marked.
  ASSERT_EQ(report.lock_edges.size(), 3u);
  for (const auto& e : report.lock_edges) {
    EXPECT_TRUE(e.in_cycle) << e.from << " -> " << e.to;
  }
  const std::string dot = format_lock_dot(report.lock_edges);
  EXPECT_NE(dot.find("digraph lock_order"), std::string::npos);
  EXPECT_NE(dot.find("\"cycle.alpha\" -> \"cycle.beta\""), std::string::npos);
  EXPECT_NE(dot.find("src/fixture/lock_cycle.cpp:16"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(WholeProgram, ClockVisibilityFromActorThread) {
  const auto report = analyze(
      {fixture("clock_visibility.cpp", "src/fixture/clock_visibility.cpp")});
  // The raw join in stop_bad() and the std::latch in the actor entry's
  // callee are flagged; stop_good()'s ExternalWaitScope join is exempt.
  ASSERT_EQ(report.diagnostics.size(), 2u);
  EXPECT_EQ(diag_key(report.diagnostics[0]),
            "src/fixture/clock_visibility.cpp:18:clock-visibility");
  EXPECT_EQ(diag_key(report.diagnostics[1]),
            "src/fixture/clock_visibility.cpp:38:clock-visibility");
  EXPECT_NE(report.diagnostics[1].message.find("spawned via Runner::drive"),
            std::string::npos)
      << report.diagnostics[1].message;
}

// ---- JSON output -----------------------------------------------------------

TEST(Json, FormatPinsSchema) {
  Report r;
  r.files_scanned = 2;
  r.diagnostics.push_back(
      {"src/a.cpp", 7, Rule::kRawSync, "std::mutex is \"banned\""});
  r.suppressions["sleep-poll"] = 3;
  EXPECT_EQ(format_json(r),
            "{\n"
            "  \"files_scanned\": 2,\n"
            "  \"clean\": false,\n"
            "  \"diagnostics\": [\n"
            "    {\"file\": \"src/a.cpp\", \"line\": 7, \"rule\": "
            "\"raw-sync\", \"message\": \"std::mutex is \\\"banned\\\"\"}\n"
            "  ],\n"
            "  \"suppressions\": {\n"
            "    \"sleep-poll\": 3\n"
            "  }\n"
            "}\n");
  Report empty;
  EXPECT_EQ(format_json(empty),
            "{\n"
            "  \"files_scanned\": 0,\n"
            "  \"clean\": true,\n"
            "  \"diagnostics\": [],\n"
            "  \"suppressions\": {}\n"
            "}\n");
}

TEST(Cli, JsonFormatAndLockDot) {
  const std::string good =
      std::string(DACSCHED_ANALYZER_FIXTURES) + "/clean.cpp";
  const std::string cycle =
      std::string(DACSCHED_ANALYZER_FIXTURES) + "/lock_cycle.cpp";
  {
    const char* argv[] = {"dacsched-analyzer", "--format=json", good.c_str()};
    EXPECT_EQ(run_cli(3, argv), 0);
  }
  const std::string dot_path = testing::TempDir() + "dacsched_lock.dot";
  {
    const char* argv[] = {"dacsched-analyzer", "--lock-dot", dot_path.c_str(),
                          cycle.c_str()};
    EXPECT_EQ(run_cli(4, argv), 1);  // the seeded cycle is a diagnostic
  }
  std::ifstream in(dot_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("color=red"), std::string::npos);
}

// The acceptance gate: the real tree is clean and matches the checked-in
// suppression baseline. This is the same invocation the CI analyzer job
// runs, so a regression fails tier-1 locally before it ever reaches CI.
TEST(Tree, RepositoryIsCleanAgainstBaseline) {
  const std::string root = DACSCHED_REPO_ROOT;
  const std::string baseline = root + "/tools/analyzer/baseline.txt";
  const char* argv[] = {"dacsched-analyzer", "--root", root.c_str(),
                        "--baseline", baseline.c_str()};
  EXPECT_EQ(run_cli(5, argv), 0);
}

}  // namespace
}  // namespace dac::analyzer
