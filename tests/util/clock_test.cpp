#include "util/clock.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "simtime/clock.hpp"
#include "util/logging.hpp"

namespace dac::util {
namespace {

using namespace std::chrono_literals;

// The subject under test is the clock itself, so there is no event to
// synchronize on; the Stopwatch reads simtime, so time must pass *through*
// simtime — a real-time spin would never move a DiscreteEvent clock.
void spin_for(std::chrono::milliseconds d) {
  simtime::sleep_for(d);  // NOLINT-DACSCHED(sleep-poll)
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch w;
  spin_for(20ms);
  EXPECT_GE(w.elapsed_ms(), 15.0);
  EXPECT_GE(w.elapsed_seconds(), 0.015);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch w;
  spin_for(20ms);
  w.reset();
  EXPECT_LT(w.elapsed_ms(), 15.0);
}

TEST(Stopwatch, LapSplitsPhases) {
  Stopwatch w;
  spin_for(15ms);
  const double first = w.lap_seconds();
  spin_for(5ms);
  const double second = w.lap_seconds();
  EXPECT_GE(first, 0.010);
  EXPECT_LT(second, first);
}

TEST(Clock, ToSeconds) {
  EXPECT_DOUBLE_EQ(to_seconds(std::chrono::milliseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(to_seconds(Duration::zero()), 0.0);
}

TEST(Logging, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("nonsense"), LogLevel::kWarn);  // default
}

TEST(Logging, SetAndGetLevel) {
  const auto before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Suppressed levels do not crash or emit.
  Logger log("test");
  log.debug("hidden {}", 1);
  log.error("visible once during tests: {} {}", "ok", 2);
  set_log_level(before);
}

}  // namespace
}  // namespace dac::util
