#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace dac::util {
namespace {

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.put<std::uint8_t>(0xAB);
  w.put<std::int32_t>(-12345);
  w.put<std::uint64_t>(0xDEADBEEFCAFEBABEull);
  w.put<double>(3.14159);
  w.put_bool(true);
  w.put_bool(false);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint8_t>(), 0xAB);
  EXPECT_EQ(r.get<std::int32_t>(), -12345);
  EXPECT_EQ(r.get<std::uint64_t>(), 0xDEADBEEFCAFEBABEull);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.14159);
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, RoundTripStrings) {
  ByteWriter w;
  w.put_string("");
  w.put_string("hello");
  w.put_string(std::string(10000, 'x'));

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), std::string(10000, 'x'));
}

TEST(Bytes, RoundTripNestedBytes) {
  ByteWriter inner;
  inner.put<std::int32_t>(42);
  ByteWriter w;
  w.put_bytes(inner.bytes());
  w.put_bytes({});

  ByteReader r(w.bytes());
  auto b = r.get_bytes();
  ByteReader ri(b);
  EXPECT_EQ(ri.get<std::int32_t>(), 42);
  EXPECT_TRUE(r.get_bytes().empty());
}

TEST(Bytes, RoundTripVectors) {
  ByteWriter w;
  w.put_vector<std::int64_t>({1, -2, 3});
  w.put_vector<double>({});
  w.put_string_vector({"a", "", "ccc"});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_vector<std::int64_t>(), (std::vector<std::int64_t>{1, -2, 3}));
  EXPECT_TRUE(r.get_vector<double>().empty());
  EXPECT_EQ(r.get_string_vector(),
            (std::vector<std::string>{"a", "", "ccc"}));
}

TEST(Bytes, RoundTripEnum) {
  enum class Color : std::uint16_t { kRed = 7, kBlue = 9 };
  ByteWriter w;
  w.put_enum(Color::kBlue);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_enum<Color>(), Color::kBlue);
}

TEST(Bytes, TruncatedScalarThrows) {
  ByteWriter w;
  w.put<std::uint8_t>(1);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint8_t>(), 1);
  EXPECT_THROW(r.get<std::uint32_t>(), DecodeError);
}

TEST(Bytes, TruncatedStringThrows) {
  ByteWriter w;
  w.put<std::uint32_t>(100);  // claims 100 bytes follow; none do
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_string(), DecodeError);
}

TEST(Bytes, RemainingTracksPosition) {
  ByteWriter w;
  w.put<std::uint32_t>(5);
  w.put<std::uint32_t>(6);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.get<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 4u);
  (void)r.get<std::uint32_t>();
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, ToBytesCopies) {
  const char data[] = {1, 2, 3};
  auto b = to_bytes(data, 3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(std::to_integer<int>(b[2]), 3);
  EXPECT_TRUE(to_bytes(nullptr, 0).empty());
}

TEST(Bytes, PutRawIsUnprefixed) {
  ByteWriter w;
  const std::uint32_t x = 0x01020304;
  w.put_raw(&x, sizeof(x));
  EXPECT_EQ(w.size(), sizeof(x));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint32_t>(), x);
}

}  // namespace
}  // namespace dac::util
