#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dac::util {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Samples, MeanAndStddevMatchRunningStats) {
  Samples smp;
  RunningStats rs;
  for (double x : {1.0, 2.0, 3.5, 8.25, -1.0}) {
    smp.add(x);
    rs.add(x);
  }
  EXPECT_NEAR(smp.mean(), rs.mean(), 1e-12);
  EXPECT_NEAR(smp.stddev(), rs.stddev(), 1e-12);
}

TEST(Samples, PercentileEndpoints) {
  Samples s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  for (double x : {0.0, 10.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.5);
  EXPECT_DOUBLE_EQ(s.percentile(75), 7.5);
}

TEST(Samples, PercentileClampsOutOfRange) {
  Samples s;
  s.add(5.0);
  s.add(6.0);
  EXPECT_DOUBLE_EQ(s.percentile(-10), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(250), 6.0);
}

TEST(Samples, EmptyIsZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Samples, UnsortedInputSortsForPercentile) {
  Samples s;
  for (double x : {9.0, 1.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

}  // namespace
}  // namespace dac::util
