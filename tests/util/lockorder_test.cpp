// Lock-order detector tests: an A/B then B/A acquisition must fire a
// violation naming both locks (without any actual deadlock), consistent
// orderings must stay silent, and the held-stack bookkeeping must survive
// condition waits and destruction/address reuse.
#include "util/lockorder.hpp"

#include <gtest/gtest.h>

#include <new>
#include <string>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace dac {
namespace {

// Enables the detector (it defaults off in release builds), captures
// violations instead of aborting, and wipes the order graph between tests so
// orderings established by one test cannot leak into the next.
class LockOrderTest : public ::testing::Test {
 protected:
  LockOrderTest() {
    lockorder::reset_for_testing();
    lockorder::set_enabled(true);
    lockorder::set_violation_handler([this](const lockorder::Violation& v) {
      violations_.push_back(v);
    });
  }
  ~LockOrderTest() override {
    lockorder::set_violation_handler(nullptr);
#ifdef NDEBUG
    lockorder::set_enabled(false);
#endif
    lockorder::reset_for_testing();
  }

  std::vector<lockorder::Violation> violations_;
};

TEST_F(LockOrderTest, InversionFiresWithoutDeadlock) {
  Mutex a{"order.a"};
  Mutex b{"order.b"};

  {
    ScopedLock la(a);
    ScopedLock lb(b);  // establishes a -> b
  }
  EXPECT_TRUE(violations_.empty());
  {
    ScopedLock lb(b);
    ScopedLock la(a);  // b -> a closes the cycle
  }

  ASSERT_EQ(violations_.size(), 1u);
  const auto& v = violations_.front();
  EXPECT_EQ(v.first_lock, "order.a");
  EXPECT_EQ(v.second_lock, "order.b");
  // The report names both locks and shows both held stacks.
  EXPECT_NE(v.message.find("order.a"), std::string::npos);
  EXPECT_NE(v.message.find("order.b"), std::string::npos);
  EXPECT_NE(v.message.find("held"), std::string::npos);
}

TEST_F(LockOrderTest, InversionAcrossThreadsIsDetected) {
  Mutex a{"threads.a"};
  Mutex b{"threads.b"};

  std::thread t([&] {
    ScopedLock la(a);
    ScopedLock lb(b);
  });
  t.join();

  // The opposite order on this thread conflicts with the edge the other
  // thread recorded — exactly the schedule-dependent deadlock lockdep-style
  // detection exists for.
  {
    ScopedLock lb(b);
    ScopedLock la(a);
  }
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_.front().first_lock, "threads.a");
}

TEST_F(LockOrderTest, ConsistentOrderStaysSilent) {
  Mutex a{"quiet.a"};
  Mutex b{"quiet.b"};
  Mutex c{"quiet.c"};

  for (int i = 0; i < 3; ++i) {
    ScopedLock la(a);
    ScopedLock lb(b);
    ScopedLock lc(c);
  }
  {
    ScopedLock la(a);
    ScopedLock lc(c);  // skipping b is fine; order is still consistent
  }
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockOrderTest, TransitiveCycleIsDetected) {
  Mutex a{"tri.a"};
  Mutex b{"tri.b"};
  Mutex c{"tri.c"};

  {
    ScopedLock la(a);
    ScopedLock lb(b);  // a -> b
  }
  {
    ScopedLock lb(b);
    ScopedLock lc(c);  // b -> c
  }
  {
    ScopedLock lc(c);
    ScopedLock la(a);  // c -> a: cycle through b
  }
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_.front().first_lock, "tri.a");
  EXPECT_EQ(violations_.front().second_lock, "tri.c");
}

TEST_F(LockOrderTest, CondVarWaitReleasesHeldEntry) {
  // While blocked in cv.wait the mutex is not held; re-acquiring another
  // lock inside the wake path must not look like holding both.
  Mutex m{"wait.m"};
  CondVar cv;
  bool ready = false;

  std::thread waiter([&] {
    UniqueLock lock(m);
    while (!ready) cv.wait(lock);
  });
  // The waker takes the same mutex — only possible because the waiter's
  // held entry was dropped during the wait.
  {
    ScopedLock lock(m);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockOrderTest, DestroyedLockAddressCanBeReused) {
  // A destroyed mutex must drop its graph node: a fresh lock reusing the
  // address must not inherit stale edges that would fake an inversion.
  alignas(Mutex) unsigned char storage[sizeof(Mutex)];
  Mutex b{"reuse.b"};

  auto* a = new (storage) Mutex{"reuse.a"};
  {
    ScopedLock la(*a);
    ScopedLock lb(b);  // a -> b
  }
  a->~Mutex();

  // Same address, fresh lock: the a -> b edge died with a, so the opposite
  // order must not read as an inversion.
  auto* a2 = new (storage) Mutex{"reuse.a2"};
  {
    ScopedLock lb(b);
    ScopedLock la(*a2);
  }
  a2->~Mutex();
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockOrderTest, DisabledDetectorRecordsNothing) {
  lockorder::set_enabled(false);
  Mutex a{"off.a"};
  Mutex b{"off.b"};
  {
    ScopedLock la(a);
    ScopedLock lb(b);
  }
  {
    ScopedLock lb(b);
    ScopedLock la(a);
  }
  EXPECT_TRUE(violations_.empty());
  lockorder::set_enabled(true);
}

}  // namespace
}  // namespace dac
