#include "util/format.hpp"

#include <gtest/gtest.h>

namespace dac::util {
namespace {

TEST(Format, NoPlaceholders) {
  EXPECT_EQ(format("plain text"), "plain text");
}

TEST(Format, SubstitutesInOrder) {
  EXPECT_EQ(format("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
}

TEST(Format, MixedTypes) {
  EXPECT_EQ(format("job {} on '{}' took {}s", 42, "node3", 0.5),
            "job 42 on 'node3' took 0.5s");
}

TEST(Format, SurplusArgumentsAppended) {
  EXPECT_EQ(format("x={}", 1, 2), "x=1 2");
}

TEST(Format, SurplusPlaceholdersKept) {
  EXPECT_EQ(format("{} and {}", 1), "1 and {}");
}

TEST(Format, EmptyFormat) {
  EXPECT_EQ(format(""), "");
}

}  // namespace
}  // namespace dac::util
