// DAC_CHECK / DAC_DCHECK tests: failure-report formatting, pass-through on
// true conditions, death on false ones, and the release-build dead-branch
// behavior of DAC_DCHECK.
#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dac {
namespace {

TEST(CheckTest, FailureMessageNamesExpressionAndLocation) {
  const auto msg =
      detail::check_failure_message("torque/node_db.cpp", 72, "used <= np",
                                    "node ac3 over-assigned: used=5 np=4");
  EXPECT_EQ(msg,
            "DAC_CHECK failed: used <= np (torque/node_db.cpp:72): "
            "node ac3 over-assigned: used=5 np=4");
}

TEST(CheckTest, FailureMessageWithoutDetailOmitsTrailingColon) {
  const auto msg = detail::check_failure_message("a.cpp", 7, "x > 0", "");
  EXPECT_EQ(msg, "DAC_CHECK failed: x > 0 (a.cpp:7)");
}

TEST(CheckTest, FormatHelperFormatsArguments) {
  EXPECT_EQ(detail::check_format(), "");
  EXPECT_EQ(detail::check_format("granted {} of {}", 3, 8), "granted 3 of 8");
}

TEST(CheckTest, PassingCheckHasNoEffect) {
  int evaluations = 0;
  const auto count = [&] {
    ++evaluations;
    return true;
  };
  DAC_CHECK(count(), "never printed");
  DAC_CHECK(count());
  EXPECT_EQ(evaluations, 2);
}

TEST(CheckDeathTest, FailingCheckAbortsWithFormattedMessage) {
  EXPECT_DEATH(DAC_CHECK(false, "boom {}", 7), "DAC_CHECK failed: false .*boom 7");
}

TEST(CheckDeathTest, FailingCheckWithoutMessageAborts) {
  const int used = -1;
  EXPECT_DEATH(DAC_CHECK(used >= 0), "DAC_CHECK failed: used >= 0");
}

TEST(CheckTest, DcheckIsCompiledButInertInRelease) {
  int evaluations = 0;
  const auto count = [&] {
    ++evaluations;
    return true;
  };
  DAC_DCHECK(count(), "counts only in debug");
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_EQ(evaluations, 1);
#endif
}

#ifndef NDEBUG
TEST(CheckDeathTest, DcheckFiresInDebug) {
  EXPECT_DEATH(DAC_DCHECK(false, "debug-only"), "debug-only");
}
#endif

}  // namespace
}  // namespace dac
