#include "util/queue.hpp"
#include "util/sync.hpp"
#include "simtime/clock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace dac::util {
namespace {

using namespace std::chrono_literals;

TEST(BlockingQueue, PushPopFifo) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BlockingQueue, TryPopEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_TRUE(q.push(7));
  EXPECT_EQ(q.try_pop(), 7);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, PopForTimesOut) {
  BlockingQueue<int> q;
  const auto start = dac::simtime::now();
  EXPECT_FALSE(q.pop_for(20ms).has_value());
  EXPECT_GE(dac::simtime::now() - start, 15ms);
}

TEST(BlockingQueue, CloseReleasesBlockedPopper) {
  BlockingQueue<int> q;
  std::atomic<bool> released{false};
  dac::Latch entered{1};
  std::thread t([&] {
    entered.count_down();
    EXPECT_FALSE(q.pop().has_value());
    released = true;
  });
  entered.wait();
  // pop() blocks until close: released can only flip after it.
  EXPECT_FALSE(released);
  q.close();
  t.join();
  EXPECT_TRUE(released);
}

TEST(BlockingQueue, CloseDrainsRemainingItems) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // rejected after close
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, CloseWakesAllBlockedWaiters) {
  // Shutdown must release every waiter, not just one — a single notify_one
  // here would leave threads blocked forever.
  BlockingQueue<int> q;
  constexpr int kWaiters = 6;
  std::atomic<int> released{0};
  dac::Latch entered{kWaiters};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      entered.count_down();
      EXPECT_FALSE(q.pop().has_value());
      released.fetch_add(1);
    });
  }
  entered.wait();
  EXPECT_EQ(released.load(), 0);
  q.close();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(released.load(), kWaiters);
  EXPECT_TRUE(q.closed());
}

TEST(BlockingQueue, CloseIsIdempotentAndPushStaysRejected) {
  BlockingQueue<int> q;
  q.close();
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_FALSE(q.push(2));
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, BlockedPopWakesOnPush) {
  BlockingQueue<int> q;
  std::thread t([&] { EXPECT_TRUE(q.push(42)); });
  EXPECT_EQ(q.pop(), 42);
  t.join();
}

TEST(BlockingQueue, ConcurrentProducersConsumeAll) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; ++i) EXPECT_TRUE(q.push(1));
    });
  }
  int total = 0;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    total += *v;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(total, kProducers * kPerProducer);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueue, SizeReflectsContents) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(BlockingQueue, MoveOnlyPayload) {
  BlockingQueue<std::unique_ptr<int>> q;
  EXPECT_TRUE(q.push(std::make_unique<int>(5)));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

}  // namespace
}  // namespace dac::util
