// Stress and property tests of the virtual-cluster substrate: ordering
// guarantees under concurrent random traffic, link-bandwidth serialization,
// and process churn.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "simtime/clock.hpp"
#include "vnet/cluster.hpp"

namespace dac::vnet {
namespace {

using namespace std::chrono_literals;

ClusterTopology topo(std::size_t n, std::chrono::microseconds latency,
                     double bw = 5e9) {
  ClusterTopology t;
  t.node_count = n;
  t.network.latency = latency;
  t.network.bytes_per_second = bw;
  t.process_start_delay = std::chrono::microseconds(0);
  return t;
}

// Property: messages from one sender to one receiver arrive in send order,
// regardless of size mix, even with many concurrent senders.
class PairFifoProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PairFifoProperty, HoldsUnderConcurrentTraffic) {
  Cluster c(topo(5, std::chrono::microseconds(50), 1e8));
  auto sink = c.node(0).open_endpoint();

  constexpr int kSenders = 4;
  constexpr int kPerSender = 40;
  // ActorThread, not std::thread: the receive below opens a 10 s virtual
  // window, and an unregistered sender that has not reached its first
  // clock-visible wait would let the clock fire it on a loaded machine.
  std::vector<simtime::ActorThread> senders;
  for (int snd = 0; snd < kSenders; ++snd) {
    senders.emplace_back([&, snd] {
      std::mt19937_64 rng(GetParam() * 977 + static_cast<unsigned>(snd));
      auto ep = c.node(static_cast<std::size_t>(1 + snd)).open_endpoint();
      for (int i = 0; i < kPerSender; ++i) {
        util::ByteWriter w;
        w.put<std::int32_t>(snd);
        w.put<std::int32_t>(i);
        // Random size so a non-FIFO fabric would reorder.
        w.put_raw(std::string(rng() % 20000, 'x').data(), rng() % 20000);
        ep->send(sink->address(), 1, std::move(w).take());
        if (rng() % 3 == 0) dac::simtime::sleep_for(100us);  // NOLINT-DACSCHED(sleep-poll)
      }
      // Keep the endpoint alive until everything is delivered.
      dac::simtime::sleep_for(50ms);  // NOLINT-DACSCHED(sleep-poll)
    });
  }

  std::vector<int> next_seq(kSenders, 0);
  for (int i = 0; i < kSenders * kPerSender; ++i) {
    auto msg = sink->recv_for(10'000ms);
    ASSERT_TRUE(msg.has_value());
    util::ByteReader r(msg->payload);
    const auto snd = r.get<std::int32_t>();
    const auto seq = r.get<std::int32_t>();
    EXPECT_EQ(seq, next_seq[static_cast<std::size_t>(snd)])
        << "reordering from sender " << snd;
    next_seq[static_cast<std::size_t>(snd)] = seq + 1;
  }
  for (auto& t : senders) t.join();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairFifoProperty,
                         ::testing::Values(1, 17, 4242));

TEST(LinkModel, BandwidthSerializesBurst) {
  // 8 messages of 100 KB at 10 MB/s: the burst must take >= 8 * 10ms wire
  // time, because one NIC transmits them back to back.
  Cluster c(topo(2, std::chrono::microseconds(10), 1e7));
  auto src = c.node(0).open_endpoint();
  auto dst = c.node(1).open_endpoint();
  const auto start = dac::simtime::now();
  for (int i = 0; i < 8; ++i) {
    src->send(dst->address(), 1, util::Bytes(100'000));
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(dst->recv_for(10'000ms).has_value());
  }
  const auto dt = dac::simtime::now() - start;
  EXPECT_GE(dt, 70ms);
}

TEST(LinkModel, DistinctSendersDoNotSerialize) {
  // The same burst split across two sender nodes halves the wall time.
  Cluster c(topo(3, std::chrono::microseconds(10), 1e7));
  auto a = c.node(0).open_endpoint();
  auto b = c.node(1).open_endpoint();
  auto dst = c.node(2).open_endpoint();
  const auto start = dac::simtime::now();
  for (int i = 0; i < 4; ++i) {
    a->send(dst->address(), 1, util::Bytes(100'000));
    b->send(dst->address(), 1, util::Bytes(100'000));
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(dst->recv_for(10'000ms).has_value());
  }
  const auto dt = dac::simtime::now() - start;
  EXPECT_LT(dt, 70ms);
}

TEST(ProcessChurn, SpawnAndKillManyProcesses) {
  Cluster c(topo(3, std::chrono::microseconds(20)));
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  for (int round = 0; round < 10; ++round) {
    std::vector<ProcessPtr> procs;
    for (std::size_t n = 0; n < c.size(); ++n) {
      procs.push_back(c.node(n).spawn({.name = "churn"},
                                      [&](Process& proc) {
        auto ep = proc.open_endpoint();
        ++started;
        while (auto m = ep->recv()) {
        }
        ++finished;
      }));
    }
    // Kill half of them before they necessarily started.
    for (std::size_t i = 0; i < procs.size(); i += 2) {
      procs[i]->request_stop();
    }
    for (auto& p : procs) p->request_stop();
    for (auto& p : procs) p->join();
    for (std::size_t n = 0; n < c.size(); ++n) c.node(n).reap();
  }
  // Every process that entered its loop also left it.
  EXPECT_EQ(started.load(), finished.load());
}

TEST(ProcessChurn, ManyEndpointsPerProcess) {
  Cluster c(topo(2, std::chrono::microseconds(20)));
  std::atomic<bool> ok{false};
  auto p = c.node(0).spawn({.name = "many"}, [&](Process& proc) {
    std::vector<std::unique_ptr<Endpoint>> eps;
    for (int i = 0; i < 64; ++i) eps.push_back(proc.open_endpoint());
    // Ring of sends through all endpoints on one node.
    for (int i = 0; i < 64; ++i) {
      eps[static_cast<std::size_t>(i)]->send(
          eps[static_cast<std::size_t>((i + 1) % 64)]->address(), 9, {});
    }
    int received = 0;
    for (int i = 0; i < 64; ++i) {
      if (eps[static_cast<std::size_t>(i)]->recv_for(5000ms)) ++received;
    }
    ok = received == 64;
  });
  p->join();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace dac::vnet
