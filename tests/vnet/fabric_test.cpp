#include "vnet/fabric.hpp"
#include "simtime/clock.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "util/bytes.hpp"

namespace dac::vnet {
namespace {

using namespace std::chrono_literals;

util::Bytes payload(std::size_t n) { return util::Bytes(n); }

class FabricTest : public ::testing::Test {
 protected:
  NetworkModel fast_model() {
    NetworkModel m;
    m.latency = std::chrono::microseconds(100);
    m.loopback_latency = std::chrono::microseconds(10);
    m.bytes_per_second = 1e9;
    return m;
  }
};

TEST_F(FabricTest, DeliversToRegisteredMailbox) {
  Fabric fabric(fast_model());
  auto box = std::make_shared<Mailbox>();
  const Address dst{1, 0};
  fabric.register_mailbox(dst, box);

  fabric.send(Message{Address{0, 0}, dst, 7, payload(4)});
  auto msg = box->pop_for(1000ms);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, 7u);
  EXPECT_EQ(msg->payload.size(), 4u);
  EXPECT_EQ(fabric.messages_delivered(), 1u);
}

TEST_F(FabricTest, DropsToUnregisteredAddress) {
  Fabric fabric(fast_model());
  fabric.send(Message{Address{0, 0}, Address{5, 5}, 1, {}});
  // Wait out the latency; the message must be counted as dropped.
  dac::simtime::sleep_for(20ms);  // NOLINT-DACSCHED(sleep-poll)
  EXPECT_EQ(fabric.messages_dropped(), 1u);
  EXPECT_EQ(fabric.messages_delivered(), 0u);
}

TEST_F(FabricTest, CountsDropsPerDestination) {
  Fabric fabric(fast_model());
  const Address dead{5, 5};
  const Address other{6, 6};
  const Address live{1, 0};
  auto box = std::make_shared<Mailbox>();
  fabric.register_mailbox(live, box);

  fabric.send(Message{Address{0, 0}, dead, 1, {}});
  fabric.send(Message{Address{0, 0}, dead, 1, {}});
  fabric.send(Message{Address{0, 0}, other, 1, {}});
  fabric.send(Message{Address{0, 0}, live, 1, {}});

  ASSERT_TRUE(box->pop_for(1000ms).has_value());
  const auto deadline = dac::simtime::now() + 2s;
  while (fabric.messages_dropped() < 3 &&
         dac::simtime::now() < deadline) {
    dac::simtime::sleep_for(1ms);  // NOLINT-DACSCHED(sleep-poll)
  }
  EXPECT_EQ(fabric.drops_to(dead), 2u);
  EXPECT_EQ(fabric.drops_to(other), 1u);
  EXPECT_EQ(fabric.drops_to(live), 0u);
  EXPECT_EQ(fabric.messages_dropped(), 3u);
}

TEST_F(FabricTest, ClosedMailboxCountsAsDrop) {
  Fabric fabric(fast_model());
  const Address dst{1, 0};
  auto box = std::make_shared<Mailbox>();
  fabric.register_mailbox(dst, box);
  box->close();

  fabric.send(Message{Address{0, 0}, dst, 1, {}});
  const auto deadline = dac::simtime::now() + 2s;
  while (fabric.drops_to(dst) < 1 &&
         dac::simtime::now() < deadline) {
    dac::simtime::sleep_for(1ms);  // NOLINT-DACSCHED(sleep-poll)
  }
  EXPECT_EQ(fabric.drops_to(dst), 1u);
}

TEST_F(FabricTest, ChargesCrossNodeLatency) {
  NetworkModel m;
  m.latency = std::chrono::microseconds(30000);  // 30 ms
  m.loopback_latency = std::chrono::microseconds(10);
  Fabric fabric(m);
  auto box = std::make_shared<Mailbox>();
  fabric.register_mailbox(Address{1, 0}, box);

  const auto start = dac::simtime::now();
  fabric.send(Message{Address{0, 0}, Address{1, 0}, 0, {}});
  auto msg = box->pop_for(1000ms);
  const auto dt = dac::simtime::now() - start;
  ASSERT_TRUE(msg.has_value());
  EXPECT_GE(dt, 25ms);
}

TEST_F(FabricTest, LoopbackIsCheaperThanCrossNode) {
  NetworkModel m;
  m.latency = std::chrono::microseconds(30000);
  m.loopback_latency = std::chrono::microseconds(10);
  Fabric fabric(m);
  auto box = std::make_shared<Mailbox>();
  fabric.register_mailbox(Address{0, 1}, box);

  const auto start = dac::simtime::now();
  fabric.send(Message{Address{0, 0}, Address{0, 1}, 0, {}});
  auto msg = box->pop_for(1000ms);
  const auto dt = dac::simtime::now() - start;
  ASSERT_TRUE(msg.has_value());
  EXPECT_LT(dt, 20ms);
}

TEST_F(FabricTest, ChargesBandwidthForLargePayloads) {
  NetworkModel m;
  m.latency = std::chrono::microseconds(100);
  m.bytes_per_second = 1e6;  // 1 MB/s: 50 KB ~ 50 ms
  Fabric fabric(m);
  auto box = std::make_shared<Mailbox>();
  fabric.register_mailbox(Address{1, 0}, box);

  const auto start = dac::simtime::now();
  fabric.send(Message{Address{0, 0}, Address{1, 0}, 0, payload(50000)});
  auto msg = box->pop_for(5000ms);
  const auto dt = dac::simtime::now() - start;
  ASSERT_TRUE(msg.has_value());
  EXPECT_GE(dt, 40ms);
}

TEST_F(FabricTest, PerPairFifoDespiteSizeDifference) {
  NetworkModel m;
  m.latency = std::chrono::microseconds(100);
  m.bytes_per_second = 1e6;  // big message is slow
  Fabric fabric(m);
  auto box = std::make_shared<Mailbox>();
  fabric.register_mailbox(Address{1, 0}, box);

  // Large first, tiny second: FIFO per pair means the large one still
  // arrives first.
  fabric.send(Message{Address{0, 0}, Address{1, 0}, 1, payload(100000)});
  fabric.send(Message{Address{0, 0}, Address{1, 0}, 2, payload(1)});

  auto first = box->pop_for(5000ms);
  auto second = box->pop_for(5000ms);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->type, 1u);
  EXPECT_EQ(second->type, 2u);
}

TEST_F(FabricTest, DifferentPairsMayOvertake) {
  NetworkModel m;
  m.latency = std::chrono::microseconds(100);
  m.bytes_per_second = 1e6;
  Fabric fabric(m);
  auto box = std::make_shared<Mailbox>();
  fabric.register_mailbox(Address{1, 0}, box);

  fabric.send(Message{Address{0, 0}, Address{1, 0}, 1, payload(200000)});
  fabric.send(Message{Address{2, 0}, Address{1, 0}, 2, payload(1)});

  auto first = box->pop_for(5000ms);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, 2u);  // the small message from another sender wins
}

TEST_F(FabricTest, ShutdownStopsDelivery) {
  Fabric fabric(fast_model());
  auto box = std::make_shared<Mailbox>();
  fabric.register_mailbox(Address{1, 0}, box);
  fabric.shutdown();
  fabric.send(Message{Address{0, 0}, Address{1, 0}, 0, {}});
  EXPECT_FALSE(box->pop_for(50ms).has_value());
}

TEST_F(FabricTest, CountsBytes) {
  Fabric fabric(fast_model());
  auto box = std::make_shared<Mailbox>();
  fabric.register_mailbox(Address{1, 0}, box);
  fabric.send(Message{Address{0, 0}, Address{1, 0}, 0, payload(123)});
  (void)box->pop_for(1000ms);
  EXPECT_EQ(fabric.bytes_sent(), 123u);
}

TEST_F(FabricTest, UnregisterDropsSubsequentSends) {
  Fabric fabric(fast_model());
  auto box = std::make_shared<Mailbox>();
  fabric.register_mailbox(Address{1, 0}, box);
  fabric.unregister_mailbox(Address{1, 0});
  fabric.send(Message{Address{0, 0}, Address{1, 0}, 0, {}});
  dac::simtime::sleep_for(10ms);  // NOLINT-DACSCHED(sleep-poll)
  EXPECT_EQ(fabric.messages_dropped(), 1u);
}

}  // namespace
}  // namespace dac::vnet
