#include "vnet/cluster.hpp"
#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace dac::vnet {
namespace {

using namespace std::chrono_literals;

ClusterTopology small_topo() {
  ClusterTopology t;
  t.node_count = 4;
  t.network.latency = std::chrono::microseconds(50);
  t.process_start_delay = std::chrono::microseconds(0);
  return t;
}

TEST(Cluster, CreatesNamedNodes) {
  Cluster c(small_topo());
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.node(0).hostname(), "node0");
  EXPECT_EQ(c.node(3).hostname(), "node3");
}

TEST(Cluster, FindNodeById) {
  Cluster c(small_topo());
  ASSERT_NE(c.find_node(NodeId{2}), nullptr);
  EXPECT_EQ(c.find_node(NodeId{2})->id(), 2);
  EXPECT_EQ(c.find_node(NodeId{17}), nullptr);
  EXPECT_EQ(c.find_node(NodeId{-1}), nullptr);
}

TEST(Cluster, FindNodeByName) {
  Cluster c(small_topo());
  ASSERT_NE(c.find_node("node1"), nullptr);
  EXPECT_EQ(c.find_node("node1")->id(), 1);
  EXPECT_EQ(c.find_node("nope"), nullptr);
}

TEST(Cluster, NodeIndexOutOfRangeThrows) {
  Cluster c(small_topo());
  EXPECT_THROW(c.node(4), std::out_of_range);
}

TEST(Cluster, CrossNodeMessaging) {
  Cluster c(small_topo());
  auto a = c.node(0).open_endpoint();
  auto b = c.node(3).open_endpoint();
  a->send(b->address(), 9, {});
  auto msg = b->recv_for(1000ms);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from.node, 0);
}

TEST(Cluster, ShutdownStopsProcesses) {
  Cluster c(small_topo());
  dac::Latch started{4};
  std::atomic<int> stopped{0};
  for (std::size_t i = 0; i < c.size(); ++i) {
    c.node(i).spawn({.name = "d"}, [&](Process& proc) {
      auto ep = proc.open_endpoint();
      started.count_down();
      while (auto m = ep->recv()) {
      }
      ++stopped;
    });
  }
  // A kill that lands before the entry runs skips the entry entirely (like
  // SIGKILL before exec), so wait until every daemon is actually blocking.
  started.wait();
  c.shutdown();
  EXPECT_EQ(stopped, 4);
}

TEST(Cluster, ShutdownIsIdempotent) {
  Cluster c(small_topo());
  c.shutdown();
  c.shutdown();
}

TEST(Cluster, CustomHostnamePrefix) {
  auto t = small_topo();
  t.hostname_prefix = "ac";
  Cluster c(t);
  EXPECT_EQ(c.node(0).hostname(), "ac0");
}

}  // namespace
}  // namespace dac::vnet
