#include "vnet/message.hpp"

#include <gtest/gtest.h>

#include "vnet/network_model.hpp"

namespace dac::vnet {
namespace {

TEST(Address, ValidityRules) {
  EXPECT_FALSE(Address{}.valid());
  EXPECT_FALSE((Address{kInvalidNode, 3}).valid());
  EXPECT_FALSE((Address{2, -1}).valid());
  EXPECT_TRUE((Address{0, 0}).valid());
}

TEST(Address, OrderingAndEquality) {
  const Address a{1, 2};
  const Address b{1, 3};
  const Address c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (Address{1, 2}));
  EXPECT_NE(a, b);
}

TEST(Address, StringForm) {
  EXPECT_EQ((Address{3, 14}).str(), "3:14");
}

TEST(NetworkModel, LoopbackIgnoresSize) {
  NetworkModel m;
  m.loopback_latency = std::chrono::microseconds(10);
  EXPECT_EQ(m.delay(0, true), m.delay(1 << 20, true));
}

TEST(NetworkModel, CrossNodeScalesWithSize) {
  NetworkModel m;
  m.latency = std::chrono::microseconds(100);
  m.bytes_per_second = 1e6;
  const auto small = m.delay(0, false);
  const auto big = m.delay(1'000'000, false);  // 1 s of wire time
  EXPECT_GE(big - small, std::chrono::milliseconds(900));
}

TEST(NetworkModel, BaseLatencyApplied) {
  NetworkModel m;
  m.latency = std::chrono::microseconds(250);
  EXPECT_GE(m.delay(0, false), std::chrono::microseconds(250));
}

}  // namespace
}  // namespace dac::vnet
