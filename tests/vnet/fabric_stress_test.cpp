// TSan-targeted stress test for the fabric's counters: eight sender threads
// mix deliverable traffic with sends to dead addresses while reader threads
// hammer the delivered/dropped/drops_to counters. The final counts must
// conserve exactly — every live send delivered once, every dead send
// dropped once — without any sleep-and-hope synchronization: each sender
// finishes with a sentinel message, and because every endpoint shares one
// source NIC the fabric's link serialization guarantees all of a sender's
// earlier messages were resolved before its sentinel arrives.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "simtime/clock.hpp"
#include "vnet/fabric.hpp"
#include "vnet/node.hpp"

namespace dac::vnet {
namespace {

NetworkModel fast_model() {
  NetworkModel m;
  m.latency = std::chrono::microseconds(5);
  m.loopback_latency = std::chrono::microseconds(1);
  m.bytes_per_second = 5e9;
  return m;
}

constexpr std::uint32_t kLiveMsg = 1;
constexpr std::uint32_t kSentinel = 2;

TEST(FabricStressTest, CountersConserveUnderConcurrentSendersAndReaders) {
  constexpr int kSenders = 8;
  constexpr int kLivePerSender = 150;
  constexpr int kDeadPerSender = 50;

  Fabric fabric(fast_model());
  Node node(0, "n0", fabric, std::chrono::microseconds(0));

  auto sink = node.open_endpoint();
  const Address sink_addr = sink->address();

  // One dead (never-registered) destination per sender, so per-destination
  // drop counts are attributable.
  std::vector<Address> dead;
  dead.reserve(kSenders);
  for (int i = 0; i < kSenders; ++i) dead.push_back(node.allocate_address());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_delivered = 0;
      std::uint64_t last_dropped = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto delivered = fabric.messages_delivered();
        const auto dropped = fabric.messages_dropped();
        EXPECT_GE(delivered, last_delivered);
        EXPECT_GE(dropped, last_dropped);
        last_delivered = delivered;
        last_dropped = dropped;
        for (const auto& d : dead) {
          EXPECT_LE(fabric.drops_to(d),
                    static_cast<std::uint64_t>(kDeadPerSender));
        }
      }
    });
  }

  // ActorThread, not std::thread: the drain below opens a 10 s virtual
  // window, and on the discrete-event clock an unregistered sender that has
  // not reached its first send yet would let that deadline fire. The readers
  // stay plain threads on purpose — they spin on counters and never touch
  // virtual time.
  std::vector<simtime::ActorThread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      auto ep = node.open_endpoint();
      // Interleave live and dead traffic so drops race with deliveries.
      int live_sent = 0;
      int dead_sent = 0;
      for (int i = 0; i < kLivePerSender + kDeadPerSender; ++i) {
        if (i % 4 == 3 && dead_sent < kDeadPerSender) {
          ep->send(dead[s], kLiveMsg, {});
          ++dead_sent;
        } else if (live_sent < kLivePerSender) {
          ep->send(sink_addr, kLiveMsg, {});
          ++live_sent;
        } else {
          ep->send(dead[s], kLiveMsg, {});
          ++dead_sent;
        }
      }
      // Sent last: once this arrives, all of this thread's sends resolved.
      ep->send(sink_addr, kSentinel, {});
    });
  }

  // Drain the sink until every sender's sentinel arrived.
  int live_received = 0;
  int sentinels = 0;
  while (sentinels < kSenders) {
    auto msg = sink->recv_for(std::chrono::milliseconds(10000));
    ASSERT_TRUE(msg.has_value()) << "fabric stalled with " << sentinels
                                 << " sentinels received";
    if (msg->type == kSentinel) {
      ++sentinels;
    } else {
      ++live_received;
    }
  }

  for (auto& t : senders) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(live_received, kSenders * kLivePerSender);
  EXPECT_EQ(fabric.messages_delivered(),
            static_cast<std::uint64_t>(kSenders) * (kLivePerSender + 1));
  EXPECT_EQ(fabric.messages_dropped(),
            static_cast<std::uint64_t>(kSenders) * kDeadPerSender);
  for (const auto& d : dead) {
    EXPECT_EQ(fabric.drops_to(d), static_cast<std::uint64_t>(kDeadPerSender));
  }
  EXPECT_EQ(fabric.drops_to(sink_addr), 0u);
}

}  // namespace
}  // namespace dac::vnet
