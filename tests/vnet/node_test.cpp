#include "vnet/node.hpp"
#include "util/sync.hpp"
#include "simtime/clock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "vnet/fabric.hpp"

namespace dac::vnet {
namespace {

using namespace std::chrono_literals;

NetworkModel fast_model() {
  NetworkModel m;
  m.latency = std::chrono::microseconds(50);
  m.loopback_latency = std::chrono::microseconds(10);
  return m;
}

class NodeTest : public ::testing::Test {
 protected:
  NodeTest() : fabric_(fast_model()), node_(0, "n0", fabric_, 0us) {}
  Fabric fabric_;
  Node node_;
};

TEST_F(NodeTest, SpawnRunsEntry) {
  std::atomic<bool> ran{false};
  auto p = node_.spawn({.name = "t"}, [&](Process&) { ran = true; });
  p->join();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(p->finished());
}

TEST_F(NodeTest, StartDelayDelaysEntry) {
  const auto start = dac::simtime::now();
  std::atomic<bool> ran{false};
  auto p = node_.spawn({.name = "t", .start_delay = 30000us},
                       [&](Process&) { ran = true; });
  p->join();
  EXPECT_TRUE(ran);
  EXPECT_GE(dac::simtime::now() - start, 25ms);
}

TEST_F(NodeTest, EnvVisibleToEntry) {
  std::string seen;
  auto p = node_.spawn({.name = "t", .env = {{"PBS_JOBID", "42"}}},
                       [&](Process& proc) {
                         seen = proc.getenv("PBS_JOBID").value_or("none");
                         EXPECT_FALSE(proc.getenv("MISSING").has_value());
                       });
  p->join();
  EXPECT_EQ(seen, "42");
}

TEST_F(NodeTest, EndpointRoundTrip) {
  auto a = node_.open_endpoint();
  auto b = node_.open_endpoint();
  a->send(b->address(), 5, util::Bytes(3));
  auto msg = b->recv_for(1000ms);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, 5u);
  EXPECT_EQ(msg->from, a->address());
}

TEST_F(NodeTest, RequestStopClosesProcessEndpoints) {
  std::atomic<bool> returned{false};
  dac::Latch entered{1};
  auto p = node_.spawn({.name = "daemon"}, [&](Process& proc) {
    auto ep = proc.open_endpoint();
    entered.count_down();
    while (auto msg = ep->recv()) {
      // consume forever
    }
    returned = true;
  });
  entered.wait();
  // recv() blocks until the stop: returned can only flip after it.
  EXPECT_FALSE(returned);
  p->request_stop();
  p->join();
  EXPECT_TRUE(returned);
}

TEST_F(NodeTest, StopAllProcessesJoinsEverything) {
  for (int i = 0; i < 3; ++i) {
    node_.spawn({.name = "d" + std::to_string(i)}, [](Process& proc) {
      auto ep = proc.open_endpoint();
      while (auto msg = ep->recv()) {
      }
    });
  }
  EXPECT_EQ(node_.processes().size(), 3u);
  node_.stop_all_processes();
  EXPECT_TRUE(node_.processes().empty());
}

TEST_F(NodeTest, ReapRemovesFinished) {
  auto p = node_.spawn({.name = "quick"}, [](Process&) {});
  p->join();
  node_.reap();
  EXPECT_TRUE(node_.processes().empty());
}

TEST_F(NodeTest, FindProcessByPid) {
  auto p = node_.spawn({.name = "x"}, [](Process& proc) {
    auto ep = proc.open_endpoint();
    while (auto msg = ep->recv()) {
    }
  });
  EXPECT_EQ(node_.find_process(p->pid()), p);
  EXPECT_EQ(node_.find_process(99999), nullptr);
  node_.stop_all_processes();
}

TEST_F(NodeTest, AddressesAreUniquePerNode) {
  auto a1 = node_.allocate_address();
  auto a2 = node_.allocate_address();
  EXPECT_NE(a1.port, a2.port);
  EXPECT_EQ(a1.node, a2.node);
}

TEST_F(NodeTest, ExceptionInEntryDoesNotCrash) {
  auto p = node_.spawn({.name = "bad"}, [](Process&) {
    throw std::runtime_error("boom");
  });
  p->join();
  EXPECT_TRUE(p->finished());
}

TEST_F(NodeTest, SetenvVisibleAfterwards) {
  auto p = node_.spawn({.name = "t"}, [](Process& proc) {
    proc.setenv("KEY", "VAL");
    EXPECT_EQ(proc.getenv("KEY").value_or(""), "VAL");
  });
  p->join();
}

}  // namespace
}  // namespace dac::vnet
