// Tests for the MPI-2 dynamic process management surface — the primitives
// the paper's AC_Init (ports + accept/connect + merge) and AC_Get
// (spawn + merge) are built from.
#include <gtest/gtest.h>

#include <atomic>
#include "simtime/clock.hpp"
#include "util/sync.hpp"

#include "mpi_test_util.hpp"
#include "util/error.hpp"

namespace dac::minimpi {
namespace {

using testing::MpiTest;
using namespace std::chrono_literals;

util::Bytes bytes_of(int v) {
  util::ByteWriter w;
  w.put<std::int32_t>(v);
  return std::move(w).take();
}

int int_of(const util::Bytes& b) {
  util::ByteReader r(b);
  return r.get<std::int32_t>();
}

// ---------------------------------------------------------------- ports

TEST_F(MpiTest, OpenPortNamesAreUnique) {
  run_world(1, [&](Proc& p, const util::Bytes&) {
    EXPECT_NE(p.open_port(), p.open_port());
  });
}

TEST_F(MpiTest, PublishAndLookupPort) {
  run_world(1, [&](Proc& p, const util::Bytes&) {
    p.publish_port("my-port");
    auto addr = p.runtime().lookup_port("my-port");
    ASSERT_TRUE(addr.has_value());
    EXPECT_EQ(*addr, p.address());
    p.runtime().close_port("my-port");
    EXPECT_FALSE(p.runtime().lookup_port("my-port").has_value());
  });
}

// --------------------------------------------------- connect / accept

// The paper's static-allocation topology: a daemon world (the accelerator
// set) accepts, a singleton compute-node process connects.
TEST_F(MpiTest, ConnectAcceptSingletonToWorld) {
  std::atomic<bool> cn_ok{false};
  std::atomic<int> daemons_ok{0};

  runtime_.register_executable("daemons", [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) p.publish_port("acport");
    Comm inter = p.comm_accept("acport", p.world(), 0);
    if (inter.remote_size() == 1 && inter.size() == 3) ++daemons_ok;
    // Echo a message from the compute node.
    if (p.rank() == 0) {
      auto r = p.recv(inter, 0, 1);
      p.send(inter, 0, 2, std::move(r.data));
    }
  });
  runtime_.register_executable("cn", [&](Proc& p, const util::Bytes&) {
    Comm inter = p.comm_connect("acport", p.world(), 0);
    if (inter.remote_size() != 3) return;
    p.send(inter, 0, 1, bytes_of(77));
    auto r = p.recv(inter, 0, 2);
    cn_ok = int_of(r.data) == 77;
  });

  auto daemons = runtime_.launch_world("daemons", {1, 2, 3}, {});
  auto cn = runtime_.launch_world("cn", {0}, {});
  daemons.join();
  cn.join();
  EXPECT_TRUE(cn_ok);
  EXPECT_EQ(daemons_ok, 3);
}

TEST_F(MpiTest, ConnectWaitsForLatePublish) {
  std::atomic<bool> ok{false};
  runtime_.register_executable("late_acceptor",
                               [&](Proc& p, const util::Bytes&) {
    dac::simtime::sleep_for(50ms);  // publish late  // NOLINT-DACSCHED(sleep-poll)
    p.publish_port("lateport");
    (void)p.comm_accept("lateport", p.world(), 0);
  });
  runtime_.register_executable("connector", [&](Proc& p, const util::Bytes&) {
    Comm inter = p.comm_connect("lateport", p.world(), 0, 5000ms);
    ok = inter.remote_size() == 1;
  });
  auto a = runtime_.launch_world("late_acceptor", {1}, {});
  auto c = runtime_.launch_world("connector", {0}, {});
  a.join();
  c.join();
  EXPECT_TRUE(ok);
}

TEST_F(MpiTest, ConnectTimesOutOnMissingPort) {
  std::atomic<bool> threw{false};
  runtime_.register_executable("connector", [&](Proc& p, const util::Bytes&) {
    try {
      (void)p.comm_connect("ghost-port", p.world(), 0, 50ms);
    } catch (const util::ProtocolError&) {
      threw = true;
    }
  });
  auto c = runtime_.launch_world("connector", {0}, {});
  c.join();
  EXPECT_TRUE(threw);
}

// --------------------------------------------------------------- merge

TEST_F(MpiTest, MergeAfterConnectOrdersLowFirst) {
  // CN (connect side, low) must get rank 0; daemons ranks 1..3 — exactly
  // the paper's handle numbering.
  std::atomic<bool> cn_ok{false};
  dac::Mutex mu{"test.mu"};
  std::vector<int> daemon_ranks;

  runtime_.register_executable("daemons", [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) p.publish_port("mergeport");
    Comm inter = p.comm_accept("mergeport", p.world(), 0);
    Comm merged = p.intercomm_merge(inter, /*high=*/true);
    {
      dac::ScopedLock lock(mu);
      daemon_ranks.push_back(merged.rank);
    }
    EXPECT_EQ(merged.size(), 4);
  });
  runtime_.register_executable("cn", [&](Proc& p, const util::Bytes&) {
    Comm inter = p.comm_connect("mergeport", p.world(), 0);
    Comm merged = p.intercomm_merge(inter, /*high=*/false);
    cn_ok = merged.rank == 0 && merged.size() == 4;
  });

  auto daemons = runtime_.launch_world("daemons", {1, 2, 3}, {});
  auto cn = runtime_.launch_world("cn", {0}, {});
  daemons.join();
  cn.join();
  EXPECT_TRUE(cn_ok);
  std::sort(daemon_ranks.begin(), daemon_ranks.end());
  EXPECT_EQ(daemon_ranks, (std::vector<int>{1, 2, 3}));
}

TEST_F(MpiTest, MergedCommCarriesTraffic) {
  std::atomic<int> sum_at_cn{0};
  runtime_.register_executable("daemons", [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) p.publish_port("tport");
    Comm inter = p.comm_accept("tport", p.world(), 0);
    Comm merged = p.intercomm_merge(inter, true);
    p.send(merged, 0, 1, bytes_of(merged.rank));
  });
  runtime_.register_executable("cn", [&](Proc& p, const util::Bytes&) {
    Comm inter = p.comm_connect("tport", p.world(), 0);
    Comm merged = p.intercomm_merge(inter, false);
    int sum = 0;
    for (int i = 0; i < 2; ++i) {
      auto r = p.recv(merged, kAnySource, 1);
      sum += int_of(r.data);
    }
    sum_at_cn = sum;
  });
  auto daemons = runtime_.launch_world("daemons", {1, 2}, {});
  auto cn = runtime_.launch_world("cn", {0}, {});
  daemons.join();
  cn.join();
  EXPECT_EQ(sum_at_cn, 1 + 2);  // daemon merged-ranks 1 and 2
}

// --------------------------------------------------------------- spawn

TEST_F(MpiTest, SpawnCreatesChildrenWithParentComm) {
  std::atomic<int> children_with_parent{0};
  std::atomic<bool> parent_ok{false};

  runtime_.register_executable("child", [&](Proc& p, const util::Bytes&) {
    auto& parent = p.parent_comm();
    if (parent.has_value() && parent->remote_size() == 1) {
      ++children_with_parent;
    }
    // Child worlds are their own COMM_WORLD, per the paper (§III-D).
    EXPECT_EQ(p.size(), 2);
  });
  runtime_.register_executable("parent", [&](Proc& p, const util::Bytes&) {
    WorldHandle children;
    Comm inter = p.comm_spawn(p.world(), 0, "child", {}, {2, 3}, &children);
    parent_ok = inter.remote_size() == 2;
    children.join();
  });

  auto parent = runtime_.launch_world("parent", {0}, {});
  parent.join();
  EXPECT_TRUE(parent_ok);
  EXPECT_EQ(children_with_parent, 2);
}

TEST_F(MpiTest, SpawnMergeProducesPaperRankLayout) {
  // Parent (1 proc) spawns 2 children and merges low: parent rank 0,
  // children ranks 1, 2 — matching AC_Get's x+1..x+y numbering for x=0.
  std::atomic<bool> parent_ok{false};
  dac::Mutex mu{"test.mu"};
  std::vector<int> child_ranks;

  runtime_.register_executable("child", [&](Proc& p, const util::Bytes&) {
    Comm merged = p.intercomm_merge(*p.parent_comm(), /*high=*/true);
    dac::ScopedLock lock(mu);
    child_ranks.push_back(merged.rank);
  });
  runtime_.register_executable("parent", [&](Proc& p, const util::Bytes&) {
    WorldHandle children;
    Comm inter = p.comm_spawn(p.world(), 0, "child", {}, {1, 2}, &children);
    Comm merged = p.intercomm_merge(inter, /*high=*/false);
    parent_ok = merged.rank == 0 && merged.size() == 3;
    children.join();
  });

  auto parent = runtime_.launch_world("parent", {0}, {});
  parent.join();
  EXPECT_TRUE(parent_ok);
  std::sort(child_ranks.begin(), child_ranks.end());
  EXPECT_EQ(child_ranks, (std::vector<int>{1, 2}));
}

TEST_F(MpiTest, SpawnArgsReachChildren) {
  std::atomic<int> ok{0};
  runtime_.register_executable("child", [&](Proc& p, const util::Bytes& args) {
    if (int_of(args) == 31337) ++ok;
    p.intercomm_merge(*p.parent_comm(), true);
  });
  runtime_.register_executable("parent", [&](Proc& p, const util::Bytes&) {
    WorldHandle children;
    Comm inter =
        p.comm_spawn(p.world(), 0, "child", bytes_of(31337), {1}, &children);
    p.intercomm_merge(inter, false);
    children.join();
  });
  runtime_.launch_world("parent", {0}, {}).join();
  EXPECT_EQ(ok, 1);
}

TEST_F(MpiTest, SpawnFromMultiRankParent) {
  // comm_spawn is collective: a 2-rank parent world spawns 2 children; all
  // four merge into one intracomm of size 4.
  std::atomic<int> sizes_ok{0};
  runtime_.register_executable("child", [&](Proc& p, const util::Bytes&) {
    Comm merged = p.intercomm_merge(*p.parent_comm(), true);
    if (merged.size() == 4 && merged.rank >= 2) ++sizes_ok;
  });
  runtime_.register_executable("parent", [&](Proc& p, const util::Bytes&) {
    WorldHandle children;
    Comm inter = p.comm_spawn(p.world(), 0, "child", {}, {2, 3},
                              p.rank() == 0 ? &children : nullptr);
    Comm merged = p.intercomm_merge(inter, false);
    if (merged.size() == 4 && merged.rank == p.rank()) ++sizes_ok;
    if (p.rank() == 0) children.join();
  });
  runtime_.launch_world("parent", {0, 1}, {}).join();
  EXPECT_EQ(sizes_ok, 4);
}

TEST_F(MpiTest, SequentialSpawnsGrowTheSet) {
  // AC_Get twice: merge after each spawn; ranks keep extending (1..x, then
  // x+1..x+y) as the paper describes.
  std::atomic<bool> ok{false};
  runtime_.register_executable("child", [&](Proc& p, const util::Bytes&) {
    Comm merged = p.intercomm_merge(*p.parent_comm(), true);
    // Children of the first spawn also participate in the second spawn.
    util::Bytes round_buf;
    p.bcast(merged, 0, round_buf);
    if (int_of(round_buf) == 1) {
      WorldHandle ignored;
      Comm inter2 = p.comm_spawn(merged, 0, "child2", {}, {},  // placement
                                 nullptr);
      (void)p.intercomm_merge(inter2, false);
    }
  });
  runtime_.register_executable("child2", [&](Proc& p, const util::Bytes&) {
    (void)p.intercomm_merge(*p.parent_comm(), true);
  });
  runtime_.register_executable("parent", [&](Proc& p, const util::Bytes&) {
    WorldHandle c1;
    Comm inter1 = p.comm_spawn(p.world(), 0, "child", {}, {1, 2}, &c1);
    Comm merged1 = p.intercomm_merge(inter1, false);
    util::Bytes round = bytes_of(1);
    p.bcast(merged1, 0, round);

    WorldHandle c2;
    Comm inter2 = p.comm_spawn(merged1, 0, "child2", {}, {3}, &c2);
    Comm merged2 = p.intercomm_merge(inter2, false);
    ok = merged2.size() == 4 && merged2.rank == 0;
    c2.join();
    c1.join();
  });
  runtime_.launch_world("parent", {0}, {}).join();
  EXPECT_TRUE(ok);
}

// ----------------------------------------------------------- disconnect

TEST_F(MpiTest, DisconnectIntercommBothSides) {
  std::atomic<int> done{0};
  runtime_.register_executable("child", [&](Proc& p, const util::Bytes&) {
    p.disconnect(*p.parent_comm());
    ++done;
  });
  runtime_.register_executable("parent", [&](Proc& p, const util::Bytes&) {
    WorldHandle children;
    Comm inter = p.comm_spawn(p.world(), 0, "child", {}, {1, 2}, &children);
    p.disconnect(inter);
    ++done;
    children.join();
  });
  runtime_.launch_world("parent", {0}, {}).join();
  EXPECT_EQ(done, 3);
}

TEST_F(MpiTest, DisconnectIntracomm) {
  std::atomic<int> done{0};
  run_world(3, [&](Proc& p, const util::Bytes&) {
    p.disconnect(p.world());
    ++done;
  });
  EXPECT_EQ(done, 3);
}

}  // namespace
}  // namespace dac::minimpi
