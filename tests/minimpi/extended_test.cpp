// Tests for the extended mini-MPI surface (scatter, sendrecv, vector
// allreduce) plus randomized stress tests of the p2p and collective layers.
#include <gtest/gtest.h>

#include <atomic>
#include <random>

#include "mpi_test_util.hpp"

namespace dac::minimpi {
namespace {

using testing::MpiTest;

TEST_F(MpiTest, ScatterDistributesParts) {
  std::atomic<int> ok{0};
  run_world(3, [&](Proc& p, const util::Bytes&) {
    std::vector<util::Bytes> parts;
    if (p.rank() == 0) {
      for (int r = 0; r < 3; ++r) {
        util::ByteWriter w;
        w.put<std::int32_t>(r * 100);
        parts.push_back(std::move(w).take());
      }
    }
    auto mine = p.scatter(p.world(), 0, parts);
    util::ByteReader r(mine);
    if (r.get<std::int32_t>() == p.rank() * 100) ++ok;
  });
  EXPECT_EQ(ok, 3);
}

TEST_F(MpiTest, ScatterWrongPartCountThrows) {
  std::atomic<bool> threw{false};
  run_world(2, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) {
      try {
        (void)p.scatter(p.world(), 0, {util::Bytes{}});  // needs 2
      } catch (const std::invalid_argument&) {
        threw = true;
        // Unblock rank 1 which waits for its part.
        (void)p.scatter(p.world(), 0, {util::Bytes{}, util::Bytes{}});
      }
    } else {
      (void)p.scatter(p.world(), 0, {});
    }
  });
  EXPECT_TRUE(threw);
}

TEST_F(MpiTest, SendrecvSymmetricExchange) {
  std::atomic<int> ok{0};
  run_world(2, [&](Proc& p, const util::Bytes&) {
    const int other = 1 - p.rank();
    util::ByteWriter w;
    w.put<std::int32_t>(p.rank() + 10);
    auto r = p.sendrecv(p.world(), other, 5, std::move(w).take(), other, 5);
    util::ByteReader rd(r.data);
    if (rd.get<std::int32_t>() == other + 10) ++ok;
  });
  EXPECT_EQ(ok, 2);
}

TEST_F(MpiTest, SendrecvRingShift) {
  std::atomic<int> ok{0};
  run_world(4, [&](Proc& p, const util::Bytes&) {
    const int next = (p.rank() + 1) % 4;
    const int prev = (p.rank() + 3) % 4;
    util::ByteWriter w;
    w.put<std::int32_t>(p.rank());
    auto r = p.sendrecv(p.world(), next, 1, std::move(w).take(), prev, 1);
    util::ByteReader rd(r.data);
    if (rd.get<std::int32_t>() == prev) ++ok;
  });
  EXPECT_EQ(ok, 4);
}

TEST_F(MpiTest, VectorAllreduceSum) {
  std::atomic<int> ok{0};
  run_world(3, [&](Proc& p, const util::Bytes&) {
    std::vector<double> mine{static_cast<double>(p.rank()), 1.0,
                             static_cast<double>(-p.rank())};
    auto out = p.allreduce(p.world(), mine, ReduceOp::kSum);
    if (out == std::vector<double>{3.0, 3.0, -3.0}) ++ok;
  });
  EXPECT_EQ(ok, 3);
}

TEST_F(MpiTest, VectorAllreduceMax) {
  std::atomic<int> ok{0};
  run_world(3, [&](Proc& p, const util::Bytes&) {
    std::vector<double> mine{static_cast<double>(p.rank())};
    auto out = p.allreduce(p.world(), mine, ReduceOp::kMax);
    if (out == std::vector<double>{2.0}) ++ok;
  });
  EXPECT_EQ(ok, 3);
}

TEST_F(MpiTest, VectorAllreduceSingleRank) {
  run_world(1, [&](Proc& p, const util::Bytes&) {
    std::vector<double> v{1.5, 2.5};
    EXPECT_EQ(p.allreduce(p.world(), v, ReduceOp::kSum), v);
  });
}

// ---- stress: randomized traffic must neither deadlock nor corrupt -------

TEST_F(MpiTest, StressRandomP2pTraffic) {
  // Every rank sends 50 messages with random payload sizes to random peers
  // and receives exactly the messages addressed to it (counted via a final
  // allreduce), with payload checksums intact.
  constexpr int kRanks = 4;
  constexpr int kMsgs = 50;
  std::atomic<int> good{0};
  run_world(kRanks, [&](Proc& p, const util::Bytes&) {
    std::mt19937 rng(1234u + static_cast<unsigned>(p.rank()));
    std::uniform_int_distribution<int> peer_dist(0, kRanks - 1);
    std::uniform_int_distribution<std::size_t> size_dist(0, 4096);

    std::vector<std::int64_t> sent_to(kRanks, 0);
    for (int i = 0; i < kMsgs; ++i) {
      const int peer = peer_dist(rng);
      const auto n = size_dist(rng);
      util::Bytes payload(n);
      for (std::size_t b = 0; b < n; ++b) {
        payload[b] = static_cast<std::byte>((b * 7 + i) % 251);
      }
      util::ByteWriter w;
      w.put<std::uint32_t>(static_cast<std::uint32_t>(i));
      w.put_bytes(payload);
      p.send(p.world(), peer, 77, std::move(w).take());
      ++sent_to[static_cast<std::size_t>(peer)];
    }

    // Everyone learns how many messages to expect.
    std::vector<double> sent_d(sent_to.begin(), sent_to.end());
    auto totals = p.allreduce(p.world(), sent_d, ReduceOp::kSum);
    const auto expect =
        static_cast<int>(totals[static_cast<std::size_t>(p.rank())]);

    bool all_good = true;
    for (int i = 0; i < expect; ++i) {
      auto r = p.recv(p.world(), kAnySource, 77);
      util::ByteReader rd(r.data);
      const auto seq = rd.get<std::uint32_t>();
      const auto payload = rd.get_bytes();
      for (std::size_t b = 0; b < payload.size(); ++b) {
        if (payload[b] != static_cast<std::byte>((b * 7 + seq) % 251)) {
          all_good = false;
          break;
        }
      }
    }
    p.barrier(p.world());
    if (all_good) ++good;
  });
  EXPECT_EQ(good, kRanks);
}

TEST_F(MpiTest, StressCollectiveSequence) {
  // A long randomized-but-identical sequence of mixed collectives on every
  // rank; any ordering bug deadlocks or corrupts.
  std::atomic<int> done{0};
  run_world(4, [&](Proc& p, const util::Bytes&) {
    std::mt19937 rng(99);  // same seed everywhere -> same op sequence
    for (int i = 0; i < 40; ++i) {
      switch (rng() % 4) {
        case 0:
          p.barrier(p.world());
          break;
        case 1: {
          util::Bytes data;
          if (p.rank() == static_cast<int>(rng() % 4)) {
            util::ByteWriter w;
            w.put<std::int32_t>(i);
            data = std::move(w).take();
          }
          const int root = static_cast<int>(rng() % 4);
          // Re-derive the root consistently: consume one more value.
          (void)root;
          p.bcast(p.world(), 0, data);
          break;
        }
        case 2: {
          util::ByteWriter w;
          w.put<std::int32_t>(p.rank() + i);
          (void)p.gather(p.world(), i % 4, w.bytes());
          break;
        }
        case 3: {
          const auto v = p.allreduce(
              p.world(), static_cast<std::int64_t>(i), ReduceOp::kMax);
          if (v != i) return;  // corruption: don't count this rank as done
          break;
        }
      }
    }
    ++done;
  });
  EXPECT_EQ(done, 4);
}

}  // namespace
}  // namespace dac::minimpi
